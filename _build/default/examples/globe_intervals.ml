(* Interval routing at its worst, and label optimization.

   Interval routing is Table 1's O(d log n) workhorse for trees,
   outerplanar, and unit circular-arc graphs (one or few intervals per
   arc). Gavoille & Guevremont's globe graphs (reference [8] of the
   paper) are the classical family where shortest-path interval routing
   needs MANY intervals per arc - and reference [5] (the authors' own
   "Optimal interval routing") is about choosing vertex labels to fight
   back. This example shows both.

   Run with: dune exec examples/globe_intervals.exe *)

open Umrs_graph
open Umrs_routing

let () =
  let st = Random.State.make [| 85 |] in
  Format.printf "%-14s %-12s %12s %12s %12s@." "globe" "labelling"
    "max iv/arc" "total ivs" "local bits";
  List.iter
    (fun (m, p) ->
      let g = Generators.globe ~meridians:m ~parallels:p in
      let report name t =
        Format.printf "%-14s %-12s %12d %12d %12d@."
          (Printf.sprintf "(%d,%d) n=%d" m p (Graph.order g))
          name
          (Interval_routing.compactness t)
          (Interval_routing.total_intervals t)
          (Scheme.mem_local (Interval_routing.scheme_of t))
      in
      report "identity"
        (Interval_routing.compile ~labelling:Interval_routing.Identity g);
      report "dfs" (Interval_routing.compile ~labelling:Interval_routing.Dfs g);
      report "optimized" (Interval_routing.optimize_labelling ~steps:1500 st g))
    [ (4, 2); (5, 3); (6, 4) ];
  Format.printf
    "@.trees are 1-IRS under DFS labels; globes are not under any cheap@.\
     labelling - local search ([5]) recovers part of the gap, and the@.\
     remaining intervals are exactly what the O(d log n) upper bound pays.@.";

  (* contrast: a tree stays perfect *)
  let tree = Generators.random_tree st 31 in
  let t = Interval_routing.compile tree in
  Format.printf "@.random tree n=31: %d interval per arc (always 1).@."
    (Interval_routing.compactness t)
