(* Non-uniform link costs - the model extension of the schemes the
   paper cites as [1] and [2] ("allows non uniform cost on the arcs").

   Hop-count routing is blind to link costs; weighted shortest-path
   tables pay the same memory and route optimally. This example puts
   numbers on that difference.

   Run with: dune exec examples/weighted_costs.exe *)

open Umrs_graph
open Umrs_routing

let () =
  let st = Random.State.make [| 2026; 7 |] in
  Format.printf "%-22s %10s %14s %14s@." "graph (costs 1..9)" "local bits"
    "hop-stretch" "weighted-str.";
  List.iter
    (fun (name, g) ->
      let w = Weighted.random st ~max_cost:9 g in
      let weighted = Weighted_tables.build w in
      let hop = Table_scheme.build g in
      let sw = Weighted_tables.stretch w weighted.Scheme.rf in
      let sh = Weighted_tables.stretch w hop.Scheme.rf in
      Format.printf "%-22s %10d %14.3f %14.3f@." (name ^ " [weighted]")
        (Scheme.mem_local weighted) 1.0 sw.Weighted_tables.max_ratio;
      Format.printf "%-22s %10d %14.3f %14.3f@." (name ^ " [hop-count]")
        (Scheme.mem_local hop)
        (Routing_function.stretch hop.Scheme.rf).Routing_function.max_ratio
        sh.Weighted_tables.max_ratio)
    [
      ("torus 5x5", Generators.torus 5 5);
      ("random n=24", Generators.random_connected st ~n:24 ~m:60);
      ("petersen", Generators.petersen ());
    ];
  Format.printf
    "@.same bits, different metric: hop-count tables are weighted-stretch@.\
     suboptimal as soon as costs vary - the reason the cited schemes@.\
     handle weights explicitly.@."
