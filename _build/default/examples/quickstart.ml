(* Quickstart: build a network, put a routing scheme on it, send a
   message, and read off the two quantities the paper is about -
   MEM_local and MEM_global.

   Run with: dune exec examples/quickstart.exe *)

open Umrs_graph
open Umrs_routing

let () =
  (* 1. A network: the Petersen graph (10 routers, 15 links). *)
  let g = Generators.petersen () in
  Format.printf "network: Petersen, n=%d, m=%d, diameter=%d@." (Graph.order g)
    (Graph.size g) (Bfs.diameter g);

  (* 2. A universal routing scheme: full shortest-path tables. *)
  let tables = Table_scheme.build g in

  (* 3. Route a message. The routing function is the paper's (I,H,P)
     triple: the header carries the destination address, and each
     router answers with a local output port. *)
  let trace = Routing_function.route tables.Scheme.rf 0 7 in
  Format.printf "route 0 -> 7: %a (%d hops, distance %d)@."
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.pp_print_string f " -> ")
       Format.pp_print_int)
    trace.Routing_function.path trace.Routing_function.hops (Bfs.dist g 0 7);

  (* 4. Memory requirement, in exact bits of a decodable encoding. *)
  Format.printf "MEM_local(tables)  = %d bits, MEM_global = %d bits@."
    (Scheme.mem_local tables) (Scheme.mem_global tables);

  (* 5. Stretch factor: max over all pairs of route/distance. *)
  let s = Routing_function.stretch tables.Scheme.rf in
  Format.printf "stretch factor = %.3f (mean %.3f)@."
    s.Routing_function.max_ratio s.Routing_function.mean_ratio;

  (* 6. Compare against interval routing, the compact scheme the paper
     cites for trees / outerplanar / circular-arc networks. *)
  let interval = Interval_routing.build g in
  Format.printf "MEM_local(interval) = %d bits, MEM_global = %d bits@."
    (Scheme.mem_local interval) (Scheme.mem_global interval);

  (* 7. And run it as an actual packet network: total exchange with
     one-packet-per-link-per-round contention. *)
  let stats = Simulator.all_pairs tables.Scheme.rf in
  Format.printf "total exchange: %a@." Simulator.pp_stats stats
