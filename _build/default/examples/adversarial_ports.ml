(* Section 1's warm-up example, executed: on the complete graph K_n,
   the memory a router needs depends entirely on who chose the port
   labels.

   - With ports sorted by neighbour label, the routing function is
     computable from the labels alone: O(log n) bits per router.
   - If an adversary permutes each router's ports, the router must
     store its permutation: ceil(log2 (n-1)!) ~ n log n bits.

   The same phenomenon, made robust against relabelling, is what the
   generalized matrices of constraints capture.

   Run with: dune exec examples/adversarial_ports.exe *)

open Umrs_graph
open Umrs_routing

let () =
  let st = Random.State.make [| 0xBAD; 0xCAFE |] in
  Format.printf "%6s %16s %20s %16s@." "n" "sorted ports" "adversarial ports"
    "log2((n-1)!)";
  List.iter
    (fun n ->
      let g = Generators.complete n in
      let direct = Specialized.build_complete_direct g in
      let adversarial = Specialized.build_complete_adversarial st g in
      (* both schemes really route, at stretch 1 *)
      assert (Routing_function.stretch_at_most direct.Scheme.rf ~num:1 ~den:1);
      assert (
        Routing_function.stretch_at_most adversarial.Scheme.rf ~num:1 ~den:1);
      Format.printf "%6d %13d bits %17d bits %16.1f@." n
        (Scheme.mem_local direct)
        (Scheme.mem_local adversarial)
        (Umrs_bitcode.Rank.log2_factorial (n - 1)))
    [ 6; 8; 12; 16; 20; 24; 32; 48 ];
  Format.printf
    "@.sorted ports stay at O(log n); adversarial ports force the router@.\
     to memorize a permutation - the n log n wall the paper shows cannot@.\
     be avoided (for stretch < 2) even with the best labelling.@."
