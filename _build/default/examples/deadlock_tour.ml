(* Deadlock, detected and fixed - reference [3] of the paper.

   Dally & Seitz: a routing function deadlocks (under one-buffer
   channels) iff its channel dependency graph has a cycle. This example
   extracts those graphs from real routing functions and reproduces the
   canon: dimension-order is safe on meshes and hypercubes, unsafe on
   rings and tori, and two virtual channels repair the torus.

   Run with: dune exec examples/deadlock_tour.exe *)

open Umrs_graph
open Umrs_routing

let show name rf =
  match Deadlock.find_cycle rf with
  | None ->
    Format.printf "%-28s deadlock-free (%d dependencies)@." name
      (List.length (Deadlock.dependencies rf))
  | Some cycle ->
    Format.printf "%-28s CYCLE through %d channels: %s ...@." name
      (List.length cycle)
      (String.concat " -> "
         (List.map
            (fun (v, k) -> Printf.sprintf "(%d:%d)" v k)
            (List.filteri (fun i _ -> i < 4) cycle)))

let () =
  show "e-cube / hypercube 16"
    (Specialized.build_ecube (Generators.hypercube 4)).Scheme.rf;
  show "DOR / mesh 5x5"
    (Specialized.build_grid ~w:5 ~h:5 (Generators.grid 5 5)).Scheme.rf;
  show "shortest / ring 8"
    (Specialized.build_ring (Generators.cycle 8)).Scheme.rf;
  show "DOR / torus 4x4"
    (Specialized.build_torus_dor ~dims:[ 4; 4 ] (Generators.torus_nd [ 4; 4 ]))
      .Scheme.rf;
  Format.printf "%-28s %s@." "DOR+2VC / torus 4x4"
    (if
       Specialized.torus_dor_vc_deadlock_free ~dims:[ 4; 4 ]
         (Generators.torus_nd [ 4; 4 ])
     then "deadlock-free (virtual channels split the wrap cycle)"
     else "cycle (unexpected!)");
  show "tables / petersen"
    (Table_scheme.build (Generators.petersen ())).Scheme.rf;
  Format.printf
    "@.a routing function is more than a next-hop table: whether its@.\
     dependencies close a cycle decides if the network can wedge.@."
