examples/adversarial_ports.ml: Format Generators List Random Routing_function Scheme Specialized Umrs_bitcode Umrs_graph Umrs_routing
