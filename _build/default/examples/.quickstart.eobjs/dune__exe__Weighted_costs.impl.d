examples/weighted_costs.ml: Format Generators List Random Routing_function Scheme Table_scheme Umrs_graph Umrs_routing Weighted Weighted_tables
