examples/globe_intervals.ml: Format Generators Graph Interval_routing List Printf Random Scheme Umrs_graph Umrs_routing
