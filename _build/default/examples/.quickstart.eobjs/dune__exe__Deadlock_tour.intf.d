examples/deadlock_tour.mli:
