examples/quickstart.ml: Bfs Format Generators Graph Interval_routing Routing_function Scheme Simulator Table_scheme Umrs_graph Umrs_routing
