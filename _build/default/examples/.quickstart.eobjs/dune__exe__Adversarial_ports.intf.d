examples/adversarial_ports.mli:
