examples/quickstart.mli:
