examples/weighted_costs.mli:
