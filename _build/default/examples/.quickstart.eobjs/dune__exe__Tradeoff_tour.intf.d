examples/tradeoff_tour.mli:
