examples/lower_bound_demo.ml: Bignat Canonical Cgraph Count Enumerate Format List Lower_bound Matrix Reconstruct Umrs_core Umrs_graph Umrs_routing Verify
