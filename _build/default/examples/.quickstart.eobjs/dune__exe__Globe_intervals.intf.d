examples/globe_intervals.mli:
