examples/deadlock_tour.ml: Deadlock Format Generators List Printf Scheme Specialized String Table_scheme Umrs_graph Umrs_routing
