examples/hot_potato.ml: Format Generators List Random Scheme Simulator Table_scheme Umrs_graph Umrs_routing
