examples/hot_potato.mli:
