(* Store-and-forward vs hot-potato (deflection) switching.

   The paper's model produces a static port decision at every router;
   what the network DOES with contention is a separate axis. This
   example drives the same routing functions through two switching
   disciplines on the same traffic and shows the trade:

   - store-and-forward: losers queue; hops stay shortest, delay grows;
   - hot potato: losers deflect onto any free arc; no queues, but paths
     inflate (and, under heavy load, packets can wander).

   Run with: dune exec examples/hot_potato.exe *)

open Umrs_graph
open Umrs_routing

let () =
  let g = Generators.torus 6 6 in
  let rf = (Table_scheme.build g).Scheme.rf in
  Format.printf "torus 6x6, hot spot: many packets to one corner@.";
  Format.printf "%-8s %-16s %9s %7s %7s %10s@." "load" "discipline"
    "delivered" "rounds" "hops" "max queue";
  List.iter
    (fun load ->
      let pairs =
        List.init load (fun i -> ((7 * i + 1) mod 36, 0))
        |> List.filter (fun (a, b) -> a <> b)
      in
      let sf = Simulator.run rf ~pairs in
      let hp =
        Simulator.run_hot_potato (Random.State.make [| load |]) rf ~pairs
      in
      Format.printf "%-8d %-16s %9d %7d %7d %10d@." load "store&forward"
        sf.Simulator.delivered sf.Simulator.rounds sf.Simulator.total_hops
        sf.Simulator.max_queue;
      Format.printf "%-8s %-16s %9d %7d %7d %10d@." "" "hot-potato"
        hp.Simulator.delivered hp.Simulator.rounds hp.Simulator.total_hops
        hp.Simulator.max_queue)
    [ 4; 12; 24 ];
  Format.printf
    "@.hot potato trades queue depth for extra hops - the bits a router@.\
     must store (the paper's MEM) are the same either way; only the@.\
     switching discipline differs.@."
