(* The space / efficiency tradeoff that motivates the whole compact-
   routing line of work (Peleg & Upfal's title!), measured on real
   schemes: how many bits does each router pay, and what stretch does
   it buy, across network families?

   Also runs the packet-level simulator to show that stretch is not the
   whole story: longer routes also mean more congestion.

   Run with: dune exec examples/tradeoff_tour.exe *)

open Umrs_graph
open Umrs_routing

let schemes =
  [
    Table_scheme.scheme;
    Interval_routing.scheme;
    Landmark_scheme.scheme;
    Spanner_scheme.scheme ~k:2;
    Spanner_scheme.scheme ~k:3;
  ]

let () =
  let st = Random.State.make [| 2026 |] in
  let families =
    [
      ("hypercube(32)", Generators.hypercube 5);
      ("torus 6x6", Generators.torus 6 6);
      ("random dense n=32", Generators.random_connected st ~n:32 ~m:200);
      ("random tree n=32", Generators.random_tree st 32);
    ]
  in
  Format.printf "%-20s %-16s %8s %10s %8s@." "graph" "scheme" "local"
    "global" "stretch";
  List.iter
    (fun (gname, g) ->
      List.iter
        (fun scheme ->
          let e = Scheme.evaluate scheme ~graph_name:gname g in
          Format.printf "%-20s %-16s %8d %10d %8.3f@." gname
            e.Scheme.scheme_name e.Scheme.mem_local_bits
            e.Scheme.mem_global_bits e.Scheme.stretch.Routing_function.max_ratio)
        schemes;
      Format.printf "@.")
    families;

  (* congestion: the price of stretch under load *)
  Format.printf "congestion under random traffic (torus 6x6, 200 packets):@.";
  let g = Generators.torus 6 6 in
  List.iter
    (fun scheme ->
      let b = scheme.Scheme.build g in
      let stats =
        Simulator.random_pairs (Random.State.make [| 7; 7 |]) b.Scheme.rf
          ~count:200
      in
      Format.printf "  %-16s rounds=%3d mean_delay=%6.2f max_arc_load=%3d@."
        scheme.Scheme.name stats.Simulator.rounds (Simulator.mean_delay stats)
        stats.Simulator.max_arc_load)
    schemes;
  Format.printf
    "@.shorter tables <-> longer routes <-> busier links: the tradeoff the@.\
     paper's Table 1 quantifies in bits.@."
