(** Combinatorial ranking codes.

    The paper charges [log C(n,q)] bits for the set of target labels
    (its [MB]) and [log (n-1)!] bits for an adversarial port permutation
    on [K_n]. These are exactly combination and permutation ranks. Exact
    codecs work in the machine-int regime; [log2_*] variants give exact
    real-valued lengths for the asymptotic sweeps. *)

val binomial : int -> int -> int
(** [binomial n k] = C(n,k). Raises [Invalid_argument] on overflow or
    bad arguments ([0 <= k <= n]). *)

val log2_binomial : int -> int -> float
(** [log2_binomial n k] = log2 C(n,k), computed in log space (no
    overflow). *)

val log2_factorial : int -> float
(** log2 (n!). *)

(** {1 Combinations} — sorted [k]-subsets of [{0..n-1}]. *)

val rank_combination : n:int -> int array -> int
(** Rank of a strictly increasing array in [0 .. C(n,k)-1]
    (colexicographic-free, standard combinadic order). *)

val unrank_combination : n:int -> k:int -> int -> int array

val write_combination : Bitbuf.t -> n:int -> int array -> unit
(** Encodes in [ceil(log2 C(n,k))] bits. *)

val read_combination : Bitbuf.reader -> n:int -> k:int -> int array

val combination_length : n:int -> k:int -> int
(** [ceil(log2 C(n,k))] — the paper's [MB] for [q = k] targets. *)

(** {1 Permutations} *)

val write_permutation : Bitbuf.t -> Umrs_graph.Perm.t -> unit
(** Lehmer rank in [ceil(log2 n!)] bits; requires [n <= 20]. *)

val read_permutation : Bitbuf.reader -> n:int -> Umrs_graph.Perm.t

val permutation_length : int -> int
(** [ceil(log2 n!)] for [n <= 20]. *)
