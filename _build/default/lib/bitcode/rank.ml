let binomial n k =
  if k < 0 || n < 0 || k > n then invalid_arg "Rank.binomial";
  let k = min k (n - k) in
  let c = ref 1 in
  for i = 1 to k do
    (* c := c * (n - k + i) / i, exact at every step *)
    let next = !c * (n - k + i) in
    if next / (n - k + i) <> !c then invalid_arg "Rank.binomial: overflow";
    c := next / i
  done;
  !c

let log2_binomial n k =
  if k < 0 || n < 0 || k > n then invalid_arg "Rank.log2_binomial";
  let k = min k (n - k) in
  let acc = ref 0.0 in
  for i = 1 to k do
    acc :=
      !acc
      +. (Float.log (float_of_int (n - k + i)) -. Float.log (float_of_int i))
  done;
  !acc /. Float.log 2.0

let log2_factorial n =
  if n < 0 then invalid_arg "Rank.log2_factorial";
  let acc = ref 0.0 in
  for i = 2 to n do
    acc := !acc +. Float.log (float_of_int i)
  done;
  !acc /. Float.log 2.0

let check_combination ~n c =
  let k = Array.length c in
  for i = 0 to k - 1 do
    if c.(i) < 0 || c.(i) >= n then invalid_arg "Rank: element out of range";
    if i > 0 && c.(i) <= c.(i - 1) then
      invalid_arg "Rank: combination not strictly increasing"
  done

(* Standard combinadic: rank of {c_0 < ... < c_{k-1}} among k-subsets of
   {0..n-1} in lexicographic order of the sorted tuples. *)
let rank_combination ~n c =
  check_combination ~n c;
  let k = Array.length c in
  let r = ref 0 in
  let prev = ref (-1) in
  for i = 0 to k - 1 do
    for x = !prev + 1 to c.(i) - 1 do
      r := !r + binomial (n - x - 1) (k - i - 1)
    done;
    prev := c.(i)
  done;
  !r

let unrank_combination ~n ~k r =
  if k < 0 || k > n then invalid_arg "Rank.unrank_combination";
  if r < 0 || r >= binomial n k then
    invalid_arg "Rank.unrank_combination: rank out of range";
  let c = Array.make k 0 in
  let r = ref r in
  let x = ref 0 in
  for i = 0 to k - 1 do
    let rec advance () =
      let block = binomial (n - !x - 1) (k - i - 1) in
      if !r >= block then begin
        r := !r - block;
        incr x;
        advance ()
      end
    in
    advance ();
    c.(i) <- !x;
    incr x
  done;
  c

let combination_length ~n ~k = Codes.ceil_log2 (binomial n k)

let write_combination b ~n c =
  let k = Array.length c in
  let width = combination_length ~n ~k in
  Bitbuf.add_bits b (rank_combination ~n c) ~width

let read_combination r ~n ~k =
  let width = combination_length ~n ~k in
  unrank_combination ~n ~k (Bitbuf.read_bits r ~width)

let permutation_length n =
  Codes.ceil_log2 (Umrs_graph.Perm.factorial n)

let write_permutation b p =
  let n = Array.length p in
  Bitbuf.add_bits b (Umrs_graph.Perm.rank p) ~width:(permutation_length n)

let read_permutation r ~n =
  Umrs_graph.Perm.unrank n (Bitbuf.read_bits r ~width:(permutation_length n))
