lib/bitcode/codes.ml: Array Bitbuf Lazy List
