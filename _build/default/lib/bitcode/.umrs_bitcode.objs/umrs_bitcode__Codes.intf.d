lib/bitcode/codes.mli: Bitbuf
