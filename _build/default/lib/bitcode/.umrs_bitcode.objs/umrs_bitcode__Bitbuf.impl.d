lib/bitcode/bitbuf.ml: Array Bytes Char Format List
