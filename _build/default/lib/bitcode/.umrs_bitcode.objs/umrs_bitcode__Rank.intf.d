lib/bitcode/rank.mli: Bitbuf Umrs_graph
