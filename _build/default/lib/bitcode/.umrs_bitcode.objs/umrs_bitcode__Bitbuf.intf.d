lib/bitcode/bitbuf.mli: Format
