lib/bitcode/rank.ml: Array Bitbuf Codes Float Umrs_graph
