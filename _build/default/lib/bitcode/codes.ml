let bits_needed x =
  if x < 0 then invalid_arg "Codes.bits_needed: negative";
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x lsr 1) in
  go 0 x

let ceil_log2 x =
  if x < 1 then invalid_arg "Codes.ceil_log2: need x >= 1";
  bits_needed (x - 1)

let write_fixed b x ~width = Bitbuf.add_bits b x ~width
let read_fixed r ~width = Bitbuf.read_bits r ~width

let write_unary b x =
  if x < 0 then invalid_arg "Codes.write_unary: negative";
  for _ = 1 to x do
    Bitbuf.add_bit b true
  done;
  Bitbuf.add_bit b false

let read_unary r =
  let x = ref 0 in
  while Bitbuf.read_bit r do
    incr x
  done;
  !x

let unary_length x =
  if x < 0 then invalid_arg "Codes.unary_length: negative";
  x + 1

let write_gamma b x =
  if x < 1 then invalid_arg "Codes.write_gamma: need x >= 1";
  let w = bits_needed x - 1 in
  write_unary b w;
  Bitbuf.add_bits b (x - (1 lsl w)) ~width:w

let read_gamma r =
  let w = read_unary r in
  (1 lsl w) lor Bitbuf.read_bits r ~width:w

let gamma_length x =
  if x < 1 then invalid_arg "Codes.gamma_length: need x >= 1";
  (2 * (bits_needed x - 1)) + 1

let write_delta b x =
  if x < 1 then invalid_arg "Codes.write_delta: need x >= 1";
  let w = bits_needed x - 1 in
  write_gamma b (w + 1);
  Bitbuf.add_bits b (x - (1 lsl w)) ~width:w

let read_delta r =
  let w = read_gamma r - 1 in
  (1 lsl w) lor Bitbuf.read_bits r ~width:w

let delta_length x =
  if x < 1 then invalid_arg "Codes.delta_length: need x >= 1";
  let w = bits_needed x - 1 in
  gamma_length (w + 1) + w

let write_rice b x ~k =
  if x < 0 || k < 0 then invalid_arg "Codes.write_rice";
  write_unary b (x lsr k);
  Bitbuf.add_bits b (x land ((1 lsl k) - 1)) ~width:k

let read_rice r ~k =
  let q = read_unary r in
  (q lsl k) lor Bitbuf.read_bits r ~width:k

let rice_length x ~k =
  if x < 0 || k < 0 then invalid_arg "Codes.rice_length";
  (x lsr k) + 1 + k

(* Fibonacci numbers 1, 2, 3, 5, 8, ... (F.(0) = 1, F.(1) = 2) as used
   by Zeckendorf representations; 86 terms stay within 62-bit ints. *)
let fibs =
  lazy
    (let a = Array.make 86 0 in
     a.(0) <- 1;
     a.(1) <- 2;
     for i = 2 to 85 do
       a.(i) <- a.(i - 1) + a.(i - 2)
     done;
     a)

let zeckendorf x =
  (* greedy: highest Fibonacci term <= x, repeatedly *)
  let f = Lazy.force fibs in
  let rec top i = if i > 0 && f.(i) > x then top (i - 1) else i in
  let rec go x i acc =
    if i < 0 then acc
    else if f.(i) <= x then go (x - f.(i)) (i - 1) (i :: acc)
    else go x (i - 1) acc
  in
  let hi = top 85 in
  go x hi []

let write_fibonacci b x =
  if x < 1 then invalid_arg "Codes.write_fibonacci: need x >= 1";
  let indices = zeckendorf x in
  let hi = List.fold_left max 0 indices in
  for i = 0 to hi do
    Bitbuf.add_bit b (List.mem i indices)
  done;
  Bitbuf.add_bit b true (* terminator: two consecutive ones *)

let read_fibonacci r =
  let f = Lazy.force fibs in
  let rec go i prev acc =
    let bit = Bitbuf.read_bit r in
    if bit && prev then acc
    else go (i + 1) bit (if bit then acc + f.(i) else acc)
  in
  go 0 false 0

let fibonacci_length x =
  if x < 1 then invalid_arg "Codes.fibonacci_length: need x >= 1";
  let hi = List.fold_left max 0 (zeckendorf x) in
  hi + 2

let bounded_length ~bound = ceil_log2 bound

let write_bounded b x ~bound =
  if x < 0 || x >= bound then invalid_arg "Codes.write_bounded: out of range";
  Bitbuf.add_bits b x ~width:(bounded_length ~bound)

let read_bounded r ~bound = Bitbuf.read_bits r ~width:(bounded_length ~bound)
