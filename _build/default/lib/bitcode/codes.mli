(** Integer codes over bit buffers.

    Each [write_*] has a matching [read_*] (round-trip tested), plus a
    [*_length] giving the code length in bits without materializing it —
    used by the memory accountants. *)

val bits_needed : int -> int
(** [bits_needed x] is the number of bits of the binary representation
    of [x >= 0]: 0 for 0, [floor(log2 x) + 1] otherwise. *)

val ceil_log2 : int -> int
(** [ceil_log2 x] for [x >= 1]: number of bits needed to distinguish [x]
    values, i.e. [ceil(log2 x)] (0 when [x = 1]). *)

(** {1 Fixed width} *)

val write_fixed : Bitbuf.t -> int -> width:int -> unit
val read_fixed : Bitbuf.reader -> width:int -> int

(** {1 Unary} — [x >= 0] as [x] ones then a zero. *)

val write_unary : Bitbuf.t -> int -> unit
val read_unary : Bitbuf.reader -> int
val unary_length : int -> int

(** {1 Elias gamma} — [x >= 1], [2 floor(log2 x) + 1] bits. *)

val write_gamma : Bitbuf.t -> int -> unit
val read_gamma : Bitbuf.reader -> int
val gamma_length : int -> int

(** {1 Elias delta} — [x >= 1], asymptotically [log x + 2 log log x]. *)

val write_delta : Bitbuf.t -> int -> unit
val read_delta : Bitbuf.reader -> int
val delta_length : int -> int

(** {1 Rice / Golomb-power-of-two} — [x >= 0] with divisor [2^k]. *)

val write_rice : Bitbuf.t -> int -> k:int -> unit
val read_rice : Bitbuf.reader -> k:int -> int
val rice_length : int -> k:int -> int

(** {1 Fibonacci / Zeckendorf} — [x >= 1]; a universal code ending in
    "11", competitive with delta for mid-range values. *)

val write_fibonacci : Bitbuf.t -> int -> unit
val read_fibonacci : Bitbuf.reader -> int
val fibonacci_length : int -> int

(** {1 Bounded integers} — [x] in [0 .. bound-1] in [ceil_log2 bound]
    bits (the paper's "[log n] bits per label"). *)

val write_bounded : Bitbuf.t -> int -> bound:int -> unit
val read_bounded : Bitbuf.reader -> bound:int -> int
val bounded_length : bound:int -> int
