open Umrs_graph
open Umrs_routing

type census = {
  total : int;
  delivering : int;
  within_stretch : int;
  matching : int;
}

let census (t : Cgraph.t) ~num ~den ~strict =
  let g = t.Cgraph.graph in
  let p, q = Matrix.dims t.Cgraph.matrix in
  let base = Table_scheme.next_hop_matrix g in
  let dist = Bfs.all_pairs g in
  let n = Graph.order g in
  (* which (vertex, dst) cells are free, and their index *)
  let cell = Hashtbl.create (p * q) in
  Array.iteri
    (fun i a ->
      Array.iteri
        (fun j b -> Hashtbl.replace cell (a, b) ((i * q) + j))
        t.Cgraph.targets;
      ignore a)
    t.Cgraph.constrained;
  let radix =
    Array.init (p * q) (fun idx ->
        Graph.degree g t.Cgraph.constrained.(idx / q))
  in
  let digits = Array.make (p * q) 0 in
  let next_hop u v =
    match Hashtbl.find_opt cell (u, v) with
    | Some idx -> digits.(idx) + 1
    | None -> base.(u).(v)
  in
  let evaluate () =
    (* returns (delivers, within_bound) *)
    let rf = Routing_function.of_next_hop g next_hop in
    try
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if u <> v then begin
            let dr = Routing_function.route_length ~max_hops:(4 * n) rf u v in
            let lhs = den * dr and rhs = num * dist.(u).(v) in
            if not (if strict then lhs < rhs else lhs <= rhs) then ok := false
          end
        done
      done;
      (true, !ok)
    with Routing_function.Routing_loop _ | Invalid_argument _ -> (false, false)
  in
  let matches_m () =
    let ok = ref true in
    for i = 0 to p - 1 do
      for j = 0 to q - 1 do
        if digits.((i * q) + j) + 1 <> Matrix.get t.Cgraph.matrix i j then
          ok := false
      done
    done;
    !ok
  in
  let total = ref 0 and delivering = ref 0 in
  let within = ref 0 and matching = ref 0 in
  let rec bump k =
    if k < 0 then false
    else if digits.(k) + 1 < radix.(k) then begin
      digits.(k) <- digits.(k) + 1;
      true
    end
    else begin
      digits.(k) <- 0;
      bump (k - 1)
    end
  in
  let continue = ref true in
  while !continue do
    incr total;
    let delivers, ok = evaluate () in
    if delivers then incr delivering;
    if ok then begin
      incr within;
      if matches_m () then incr matching
    end;
    continue := bump ((p * q) - 1)
  done;
  {
    total = !total;
    delivering = !delivering;
    within_stretch = !within;
    matching = !matching;
  }

let definition1_holds t =
  let c = census t ~num:2 ~den:1 ~strict:true in
  c.within_stretch = 1 && c.matching = 1
