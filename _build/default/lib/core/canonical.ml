open Umrs_graph

type variant = Full | Positional

let normalize_row row =
  let next = ref 0 in
  let rename = Hashtbl.create 8 in
  Array.map
    (fun v ->
      match Hashtbl.find_opt rename v with
      | Some r -> r
      | None ->
        incr next;
        Hashtbl.add rename v !next;
        !next)
    row

let candidate ~variant entries sigma_c =
  let q = Array.length sigma_c in
  let rows =
    Array.map
      (fun row ->
        let permuted = Array.init q (fun j -> row.(sigma_c.(j))) in
        match variant with
        | Full -> normalize_row permuted
        | Positional -> permuted)
      entries
  in
  Array.sort compare rows;
  rows

let canonical ?(variant = Full) m =
  let entries = (m : Matrix.t).entries in
  let q = m.Matrix.q in
  let best = ref None in
  Perm.iter_all q (fun sigma_c ->
      let c = candidate ~variant entries sigma_c in
      match !best with
      | None -> best := Some c
      | Some b -> if compare c b < 0 then best := Some c);
  match !best with
  | Some b ->
    (match variant with
    | Full -> Matrix.create b
    | Positional -> Matrix.create_relaxed b)
  | None -> assert false

let is_canonical ?variant m = Matrix.equal m (canonical ?variant m)

let equivalent ?variant a b =
  let pa, qa = Matrix.dims a and pb, qb = Matrix.dims b in
  pa = pb && qa = qb
  && Matrix.equal (canonical ?variant a) (canonical ?variant b)

let random_equivalent st m =
  let p, q = Matrix.dims m in
  let m = Matrix.permute_rows m (Perm.random st p) in
  let m = Matrix.permute_cols m (Perm.random st q) in
  let rec per_row m i =
    if i >= p then m
    else begin
      let k = Matrix.row_alphabet m i in
      per_row (Matrix.permute_row_entries m i (Perm.random st k)) (i + 1)
    end
  in
  per_row m 0
