type formula = { text : string; bits : n:int -> float }

type row = {
  stretch : string;
  applies : s:float -> bool;
  local_lower : formula;
  local_upper : formula;
  global_lower : formula;
  global_upper : formula;
  source : string;
  from_cited_work : bool;
}

let log2 x = Float.log x /. Float.log 2.0
let fn ~n = float_of_int n

let f text bits = { text; bits }

let n_log_n = f "Theta(n log n)" (fun ~n -> fn ~n *. log2 (fn ~n))
let n2_log_n = f "Theta(n^2 log n)" (fun ~n -> fn ~n *. fn ~n *. log2 (fn ~n))
let n2 = f "Omega(n^2)" (fun ~n -> fn ~n *. fn ~n)
let o_n_log_n = f "O(n log n)" (fun ~n -> fn ~n *. log2 (fn ~n))
let o_n2_log_n = f "O(n^2 log n)" (fun ~n -> fn ~n *. fn ~n *. log2 (fn ~n))

(* Peleg-Upfal global lower bound Omega(n^(1 + 1/(2s+4))) for stretch
   s; evaluated with the row's smallest s. The dagger rows derive the
   local bound as global/n. *)
let pu_global s0 =
  f
    (Printf.sprintf "Omega(n^(1+1/(2s+4))), s=%g" s0)
    (fun ~n -> Float.pow (fn ~n) (1.0 +. (1.0 /. ((2.0 *. s0) +. 4.0))))

let pu_local s0 =
  f
    (Printf.sprintf "Omega(n^(1/(2s+4))) (dagger), s=%g" s0)
    (fun ~n -> Float.pow (fn ~n) (1.0 /. ((2.0 *. s0) +. 4.0)))

(* Awerbuch-Peleg style tradeoff: for stretch O(k), global
   O(n^(1+1/k) log n); local follows via balanced hierarchies. *)
let ap_global k =
  f
    (Printf.sprintf "O(n^(1+1/%d) log n)" k)
    (fun ~n -> Float.pow (fn ~n) (1.0 +. (1.0 /. float_of_int k)) *. log2 (fn ~n))

let ap_local k =
  f
    (Printf.sprintf "O(n^(1/%d) log^2 n)" k)
    (fun ~n ->
      Float.pow (fn ~n) (1.0 /. float_of_int k) *. log2 (fn ~n) *. log2 (fn ~n))

let rows =
  [
    {
      stretch = "s = 1";
      applies = (fun ~s -> s = 1.0);
      local_lower = n_log_n;
      local_upper = o_n_log_n;
      global_lower = n2_log_n;
      global_upper = o_n2_log_n;
      source = "[9] Gavoille & Perennes; tables";
      from_cited_work = false;
    };
    {
      stretch = "1 <= s < 2";
      applies = (fun ~s -> 1.0 <= s && s < 2.0);
      local_lower =
        f "Theta(n log n)  <- THEOREM 1 (this paper)" (fun ~n ->
            fn ~n *. log2 (fn ~n));
      local_upper = o_n_log_n;
      global_lower = n2;
      global_upper = o_n2_log_n;
      source = "Theorem 1; [6] Fraigniaud & Gavoille PODC'96; tables";
      from_cited_work = false;
    };
    {
      stretch = "2 <= s < 3";
      applies = (fun ~s -> 2.0 <= s && s < 3.0);
      local_lower = pu_local 2.0;
      local_upper = o_n_log_n;
      global_lower = pu_global 2.0;
      global_upper = o_n2_log_n;
      source = "[13] Peleg & Upfal (dagger: global/n); tables";
      from_cited_work = true;
    };
    {
      stretch = "3 <= s < 5";
      applies = (fun ~s -> 3.0 <= s && s < 5.0);
      local_lower = pu_local 3.0;
      local_upper = o_n_log_n;
      global_lower = pu_global 3.0;
      global_upper = ap_global 2;
      source = "[13]; [2] Awerbuch & Peleg";
      from_cited_work = true;
    };
    {
      stretch = "s >= 5";
      applies = (fun ~s -> s >= 5.0);
      local_lower = pu_local 5.0;
      local_upper =
        f "O(sqrt(s) n^(2/sqrt(s)) log n)" (fun ~n ->
            let s = 5.0 in
            sqrt s *. Float.pow (fn ~n) (2.0 /. sqrt s) *. log2 (fn ~n));
      global_lower = pu_global 5.0;
      global_upper = ap_global 3;
      source = "[13]; [1] Awerbuch, Bar-Noy, Linial & Peleg; [2]";
      from_cited_work = true;
    };
    {
      stretch = "s = O(log n)";
      applies = (fun ~s -> s > 5.0);
      local_lower = f "Omega(log n) (dagger)" (fun ~n -> log2 (fn ~n));
      local_upper =
        f "O(exp(sqrt(log n log log n)))" (fun ~n ->
            Float.exp (sqrt (log2 (fn ~n) *. log2 (log2 (fn ~n) +. 2.0))));
      global_lower = f "Omega(n)" (fun ~n -> fn ~n);
      global_upper =
        f "O(n log^2 n)" (fun ~n -> fn ~n *. log2 (fn ~n) *. log2 (fn ~n));
      source = "[2] Awerbuch & Peleg";
      from_cited_work = true;
    };
    {
      stretch = "s = O(sqrt(n))";
      applies = (fun ~s -> s > 5.0);
      local_lower = f "Omega(log n) (dagger)" (fun ~n -> log2 (fn ~n));
      local_upper = ap_local 2;
      global_lower = f "Omega(n)" (fun ~n -> fn ~n);
      global_upper = f "O(n log n)" (fun ~n -> fn ~n *. log2 (fn ~n));
      source = "[2] Awerbuch & Peleg";
      from_cited_work = true;
    };
  ]

let row_for ~s =
  match List.find_opt (fun r -> r.applies ~s) rows with
  | Some r -> r
  | None -> invalid_arg "Bounds_table.row_for: stretch below 1"

let print ?n fmt () =
  Format.fprintf fmt
    "@[<v>Table 1: memory requirement of universal routing schemes vs stretch@,";
  Format.fprintf fmt
    "%-14s | %-42s | %-42s@," "stretch" "local memory (lower / upper)"
    "global memory (lower / upper)";
  Format.fprintf fmt "%s@," (String.make 104 '-');
  List.iter
    (fun r ->
      Format.fprintf fmt "%-14s | %-42s | %-42s@," r.stretch
        (r.local_lower.text ^ " / " ^ r.local_upper.text)
        (r.global_lower.text ^ " / " ^ r.global_upper.text);
      (match n with
      | Some n ->
        Format.fprintf fmt "%-14s |   @ n=%d: %.3e / %.3e bits | %.3e / %.3e bits@,"
          "" n
          (r.local_lower.bits ~n)
          (r.local_upper.bits ~n)
          (r.global_lower.bits ~n)
          (r.global_upper.bits ~n)
      | None -> ());
      Format.fprintf fmt "%-14s |   source: %s%s@," "" r.source
        (if r.from_cited_work then " (reconstructed from cited work)" else ""))
    rows;
  Format.fprintf fmt "@]"
