(* Little-endian base-2^31 limbs; no leading zero limb except for 0
   itself, which is the empty array. *)

let base_bits = 31
let base = 1 lsl base_bits
let mask = base - 1

type t = int array

let zero : t = [||]
let is_zero x = Array.length x = 0

let normalize a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int x =
  if x < 0 then invalid_arg "Bignat.of_int: negative";
  let rec limbs x = if x = 0 then [] else (x land mask) :: limbs (x lsr base_bits) in
  Array.of_list (limbs x)

let one = of_int 1

let to_int_opt x =
  let rec go i acc shift =
    if i >= Array.length x then Some acc
    else if shift >= 62 then None
    else begin
      let v = x.(i) lsl shift in
      if v lsr shift <> x.(i) then None
      else go (i + 1) (acc lor v) (shift + base_bits)
    end
  in
  (* reject values with limbs beyond the 62-bit range *)
  if Array.length x > 3 then None
  else if Array.length x = 3 && x.(2) lsr (62 - (2 * base_bits)) <> 0 then None
  else go 0 0 0

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let equal a b = compare a b = 0

let add a b =
  let la = Array.length a and lb = Array.length b in
  let l = max la lb + 1 in
  let r = Array.make l 0 in
  let carry = ref 0 in
  for i = 0 to l - 1 do
    let s =
      !carry
      + (if i < la then a.(i) else 0)
      + if i < lb then b.(i) else 0
    in
    r.(i) <- s land mask;
    carry := s lsr base_bits
  done;
  normalize r

let sub a b =
  if compare a b < 0 then invalid_arg "Bignat.sub: negative result";
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let s = a.(i) - !borrow - if i < lb then b.(i) else 0 in
    if s < 0 then begin
      r.(i) <- s + base;
      borrow := 1
    end
    else begin
      r.(i) <- s;
      borrow := 0
    end
  done;
  normalize r

let mul_int a x =
  if x < 0 then invalid_arg "Bignat.mul_int: negative";
  if x = 0 || is_zero a then zero
  else if x land mask = x then begin
    let la = Array.length a in
    let r = Array.make (la + 2) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let p = (a.(i) * x) + !carry in
      r.(i) <- p land mask;
      carry := p lsr base_bits
    done;
    let i = ref la in
    while !carry <> 0 do
      r.(!i) <- !carry land mask;
      carry := !carry lsr base_bits;
      incr i
    done;
    normalize r
  end
  else invalid_arg "Bignat.mul_int: factor too large (use mul)"

let mul a b =
  if is_zero a || is_zero b then zero
  else begin
    let la = Array.length a and lb = Array.length b in
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      for j = 0 to lb - 1 do
        (* a.(i) * b.(j) < 2^62: fits. Accumulate with existing limb and
           carry, both < 2^31: still fits. *)
        let p = (a.(i) * b.(j)) + r.(i + j) + !carry in
        r.(i + j) <- p land mask;
        carry := p lsr base_bits
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let p = r.(!k) + !carry in
        r.(!k) <- p land mask;
        carry := p lsr base_bits;
        incr k
      done
    done;
    normalize r
  end

let rec pow b e =
  if e < 0 then invalid_arg "Bignat.pow: negative exponent"
  else if e = 0 then one
  else begin
    let h = pow b (e / 2) in
    let h2 = mul h h in
    if e land 1 = 1 then mul h2 b else h2
  end

let div_int a x =
  if x <= 0 then invalid_arg "Bignat.div_int: need positive divisor";
  if x land mask <> x then invalid_arg "Bignat.div_int: divisor too large";
  let la = Array.length a in
  let q = Array.make la 0 in
  let rem = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!rem lsl base_bits) lor a.(i) in
    q.(i) <- cur / x;
    rem := cur mod x
  done;
  (normalize q, !rem)

let shift_limbs a k =
  if is_zero a then zero
  else Array.append (Array.make k 0) a

let div a b =
  if is_zero b then invalid_arg "Bignat.div: division by zero";
  if compare a b < 0 then zero
  else begin
    (* Schoolbook binary long division on limbs: find quotient by
       repeated doubling per bit. Adequate for the sizes used here. *)
    let bits x =
      if is_zero x then 0
      else begin
        let top = x.(Array.length x - 1) in
        let rec msb i = if top lsr i <> 0 then i + 1 else msb (i - 1) in
        ((Array.length x - 1) * base_bits) + msb (base_bits - 1)
      end
    in
    let shift_bits x k =
      (* multiply by 2^k *)
      let limb = k / base_bits and off = k mod base_bits in
      let x = shift_limbs x limb in
      if off = 0 then x
      else begin
        let r = ref zero in
        let m = 1 lsl off in
        r := mul_int x m;
        !r
      end
    in
    let delta = bits a - bits b in
    let q = ref zero and r = ref a in
    for k = delta downto 0 do
      let shifted = shift_bits b k in
      if compare shifted !r <= 0 then begin
        r := sub !r shifted;
        q := add !q (shift_bits one k)
      end
    done;
    !q
  end

let factorial n =
  if n < 0 then invalid_arg "Bignat.factorial";
  let r = ref one in
  for i = 2 to n do
    r := mul_int !r i
  done;
  !r

let log2 x =
  if is_zero x then invalid_arg "Bignat.log2: zero";
  let l = Array.length x in
  (* Use the top three limbs for the mantissa. *)
  let take i = if i >= 0 && i < l then float_of_int x.(i) else 0.0 in
  let b = float_of_int base in
  let top = (((take (l - 1) *. b) +. take (l - 2)) *. b) +. take (l - 3) in
  (Float.log top /. Float.log 2.0)
  +. (float_of_int ((l - 3) * base_bits) *. 1.0)

let to_string x =
  if is_zero x then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec go x =
      if not (is_zero x) then begin
        let q, r = div_int x 10 in
        go q;
        Buffer.add_char buf (Char.chr (Char.code '0' + r))
      end
    in
    go x;
    Buffer.contents buf
  end

let of_string s =
  if s = "" then invalid_arg "Bignat.of_string: empty";
  String.fold_left
    (fun acc c ->
      if c < '0' || c > '9' then invalid_arg "Bignat.of_string: bad digit";
      add (mul_int acc 10) (of_int (Char.code c - Char.code '0')))
    zero s

let pp fmt x = Format.pp_print_string fmt (to_string x)
