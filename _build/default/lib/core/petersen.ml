open Umrs_graph

type t = {
  graph : Graph.t;
  constrained : Graph.vertex array;
  targets : Graph.vertex array;
  matrix : Matrix.t;
}

let unique_shortest_paths g =
  let n = Graph.order g in
  let ok = ref true in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v && Bfs.count_shortest_paths g u v <> 1 then ok := false
    done
  done;
  !ok

let instance () =
  let g = Generators.petersen () in
  let constrained = Array.init 5 (fun i -> i) in
  let targets = Array.init 5 (fun j -> 5 + j) in
  let dist = Bfs.all_pairs g in
  (* forced port of a_i toward b_j under stretch 1 — unique by girth 5
     and diameter 2 *)
  let forced src dst =
    match
      Verify.usable_ports g ~dist ~src ~dst ~bound:Verify.shortest_paths_only
    with
    | [ k ] -> k
    | ports ->
      invalid_arg
        (Printf.sprintf "Petersen: %d usable ports for (%d,%d)"
           (List.length ports) src dst)
  in
  let raw =
    Array.map
      (fun a -> Array.map (fun b -> forced a b) targets)
      constrained
  in
  (* Renumber ports at each a_i so its row reads 1, 2, ... in first-
     occurrence order ("it is possible to fix the labels of the
     incident arcs of the vertices of A"). *)
  let perms =
    Array.init (Graph.order g) (fun v ->
        if v >= 5 then Perm.identity (Graph.degree g v)
        else begin
          let row = raw.(v) in
          let normalized = Canonical.normalize_row row in
          (* old 0-based port index -> new 0-based index *)
          let deg = Graph.degree g v in
          let mapping = Array.make deg (-1) in
          Array.iteri (fun j old_port -> mapping.(old_port - 1) <- normalized.(j) - 1) row;
          (* ports not used by any target keep the leftover slots *)
          let used = Array.to_list mapping |> List.filter (fun x -> x >= 0) in
          let free =
            List.filter
              (fun s -> not (List.mem s used))
              (List.init deg (fun s -> s))
          in
          let free = ref free in
          Array.iteri
            (fun idx x ->
              if x < 0 then begin
                match !free with
                | s :: rest ->
                  mapping.(idx) <- s;
                  free := rest
                | [] -> assert false
              end)
            mapping;
          mapping
        end)
  in
  let graph = Graph.relabel_ports g perms in
  let matrix =
    Matrix.create (Array.map Canonical.normalize_row raw)
  in
  { graph; constrained; targets; matrix }

let verify t =
  match
    Verify.check t.graph ~constrained:t.constrained ~targets:t.targets
      t.matrix ~bound:Verify.shortest_paths_only
  with
  | Ok () -> true
  | Error _ -> false
