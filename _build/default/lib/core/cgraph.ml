open Umrs_graph

type t = {
  graph : Graph.t;
  matrix : Matrix.t;
  constrained : Graph.vertex array;
  targets : Graph.vertex array;
  middle : Graph.vertex array array;
}

let order_bound ~p ~q ~d = (p * (d + 1)) + q

let of_matrix m =
  let p, q = Matrix.dims m in
  (* Reject non-normalized rows up front: port k of a_i must be the arc
     to c_{i,k}, which needs the row alphabet to be {1..k_i}. *)
  let alphabets = Array.init p (fun i -> Matrix.row_alphabet m i) in
  for i = 0 to p - 1 do
    for j = 0 to q - 1 do
      if Matrix.get m i j > alphabets.(i) then
        invalid_arg "Cgraph.of_matrix: rows must use prefix alphabets"
    done
  done;
  let constrained = Array.init p (fun i -> i) in
  let targets = Array.init q (fun j -> p + j) in
  let next_free = ref (p + q) in
  let middle =
    Array.init p (fun i ->
        Array.init alphabets.(i) (fun _ ->
            let v = !next_free in
            incr next_free;
            v))
  in
  let n = !next_free in
  (* Adjacency built directly to control port order: at a_i, the arc to
     c_{i,k} must sit on port k. *)
  let adj = Array.make n [||] in
  Array.iteri (fun i ai -> adj.(ai) <- Array.copy middle.(i)) constrained;
  (* c_{i,k}: first the arc back to a_i, then arcs to the b_j with
     m_ij = k (port order at middles and targets is irrelevant). *)
  Array.iteri
    (fun i cs ->
      Array.iteri
        (fun k_minus_1 c ->
          let k = k_minus_1 + 1 in
          let bs = ref [] in
          for j = q - 1 downto 0 do
            if Matrix.get m i j = k then bs := targets.(j) :: !bs
          done;
          adj.(c) <- Array.of_list (constrained.(i) :: !bs))
        cs)
    middle;
  Array.iteri
    (fun j bj ->
      let cs = ref [] in
      for i = p - 1 downto 0 do
        let k = Matrix.get m i j in
        cs := middle.(i).(k - 1) :: !cs
      done;
      adj.(bj) <- Array.of_list !cs)
    targets;
  let graph = Graph.of_adjacency adj in
  { graph; matrix = m; constrained; targets; middle }

let pad_to_order t ~n =
  let order = Graph.order t.graph in
  if n < order then invalid_arg "Cgraph.pad_to_order: n below current order";
  if n = order then t
  else begin
    (* anchor on a middle vertex: neither constrained nor a target *)
    let anchor = t.middle.(0).(0) in
    { t with graph = Graph.attach_path t.graph ~anchor ~len:(n - order) }
  end

let forced_port t i j = Matrix.get t.matrix i j
