type params = {
  n : int;
  eps : float;
  p : int;
  q : int;
  d : int;
  order_unpadded : int;
}

let choose_params ~n ~eps =
  if eps <= 0.0 || eps >= 1.0 then
    invalid_arg "Lower_bound.choose_params: need 0 < eps < 1";
  if n < 16 then invalid_arg "Lower_bound.choose_params: n too small";
  let p = max 2 (int_of_float (Float.pow (float_of_int n) eps)) in
  let q = n / 2 in
  let d = max 2 ((n - p - q) / p) in
  let order_unpadded = Cgraph.order_bound ~p ~q ~d in
  if order_unpadded > n then
    invalid_arg "Lower_bound.choose_params: construction does not fit";
  { n; eps; p; q; d; order_unpadded }

type bound = {
  params : params;
  bits_information : float;
  bits_side : float;
  bits_total : float;
  bits_per_router : float;
  table_upper_bits : float;
  ratio : float;
}

let theorem1 ~n ~eps =
  let params = choose_params ~n ~eps in
  let { p; q; d; _ } = params in
  let bits_information = Count.log2_lemma1_bound ~p ~q ~d in
  let mb = Umrs_bitcode.Rank.log2_binomial n q in
  let mc = 3.0 *. float_of_int (Umrs_bitcode.Codes.ceil_log2 n) in
  let bits_side = mb +. mc in
  let bits_total = Float.max 0.0 (bits_information -. bits_side) in
  let bits_per_router = bits_total /. float_of_int p in
  let table_upper_bits =
    float_of_int ((n - 1) * Umrs_bitcode.Codes.ceil_log2 n)
  in
  {
    params;
    bits_information;
    bits_side;
    bits_total;
    bits_per_router;
    table_upper_bits;
    ratio = bits_per_router /. table_upper_bits;
  }

let sweep ~ns ~epss =
  List.concat_map
    (fun n ->
      List.filter_map
        (fun eps ->
          match theorem1 ~n ~eps with
          | b -> Some b
          | exception Invalid_argument _ -> None)
        epss)
    ns

type global_bound = {
  g_n : int;
  g_p : int;
  g_bits_total : float;
  g_table_global_bits : float;
  g_ratio : float;
}

let global_theorem ~n =
  if n < 16 then invalid_arg "Lower_bound.global_theorem: n too small";
  let p = n / 4 in
  let q = p in
  let d = 2 in
  assert (Cgraph.order_bound ~p ~q ~d <= n);
  let bits_information = Count.log2_lemma1_bound ~p ~q ~d in
  let mb = Umrs_bitcode.Rank.log2_binomial n q in
  let mc = 3.0 *. float_of_int (Umrs_bitcode.Codes.ceil_log2 n) in
  let g_bits_total = Float.max 0.0 (bits_information -. mb -. mc) in
  let g_table_global_bits =
    float_of_int n *. float_of_int (n - 1)
    *. float_of_int (Umrs_bitcode.Codes.ceil_log2 n)
  in
  {
    g_n = n;
    g_p = p;
    g_bits_total;
    g_table_global_bits;
    g_ratio = g_bits_total /. (float_of_int n *. float_of_int n);
  }

let global_sweep ~ns = List.map (fun n -> global_theorem ~n) ns

let pp_global fmt b =
  Format.fprintf fmt
    "n=%-8d p=q=%-7d global LB=%-14.0f tables=%-14.0f LB/n^2=%.4f" b.g_n b.g_p
    b.g_bits_total b.g_table_global_bits b.g_ratio

let pp_bound fmt b =
  Format.fprintf fmt
    "n=%-8d eps=%.2f p=%-6d q=%-8d d=%-6d  LB/router=%-12.0f tables=%-12.0f ratio=%.3f"
    b.params.n b.params.eps b.params.p b.params.q b.params.d
    b.bits_per_router b.table_upper_bits b.ratio
