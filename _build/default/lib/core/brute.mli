(** Brute-force verification of Definition 1's universal quantifier.

    {!Verify} decides the forced-port property analytically (an arc is
    usable iff it starts a short-enough path). This module validates
    that analysis independently: enumerate {e every} assignment of
    output ports at the constrained vertices toward the targets, build
    the corresponding destination-based routing function (all other
    decisions fixed to shortest paths), and test it for delivery and
    stretch. Definition 1 holds iff exactly the assignments agreeing
    with [M] on every [(i,j)] survive.

    Cost: [prod_i deg(a_i)^q] routing functions — fine for the small
    canonical sets the test-suite uses. *)


type census = {
  total : int;        (** assignments enumerated *)
  delivering : int;   (** assignments that deliver all pairs *)
  within_stretch : int;  (** ... and meet the stretch bound *)
  matching : int;     (** ... and agree with [M] on every cell *)
}

val census :
  Cgraph.t -> num:int -> den:int -> strict:bool -> census
(** Enumerate assignments on the graph of constraints; an assignment is
    [within_stretch] when every source-target pair meets
    [den * route <= num * dist] ([<] if [strict]) {e and} all other
    ordered pairs are delivered at all. Definition 1 for the bound
    holds iff [within_stretch = matching = 1] (only [M] itself). *)

val definition1_holds : Cgraph.t -> bool
(** [census] at the [s < 2] bound confirms the unique survivor is
    [M]. *)
