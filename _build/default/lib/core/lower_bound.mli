(** Theorem 1 — the headline numbers.

    For [0 < eps < 1] and order [n], choose [p = floor(n^eps)] routers,
    [q = Theta(n)] targets and middle-degree [d = Theta(n^(1-eps))] so
    that the graph of constraints fits in [n] vertices; Lemma 1 +
    Equation (1) then force the [p] constrained routers to hold
    [Omega(n log n)] bits {e each}, for every routing function of
    stretch [< 2] — matching the [O(n log n)] routing-table upper
    bound, i.e. tables cannot be locally compressed. *)

type params = {
  n : int;
  eps : float;
  p : int;   (** [floor(n^eps)], the number of constrained routers *)
  q : int;   (** targets *)
  d : int;   (** middle fan-out *)
  order_unpadded : int;  (** [p(d+1) + q <= n] *)
}

val choose_params : n:int -> eps:float -> params
(** [p = max 2 floor(n^eps)], [q = floor(n/2)],
    [d = max 2 floor((n - p - q) / p)]. Raises [Invalid_argument] when
    [n] is too small to fit the construction ([order_unpadded > n]). *)

type bound = {
  params : params;
  bits_information : float;  (** [log2 |dM(p,q)|] by Lemma 1 (log space) *)
  bits_side : float;         (** [MB + MC + O(log n)] *)
  bits_total : float;        (** net lower bound on [sum_A MEM] *)
  bits_per_router : float;   (** [bits_total / p] *)
  table_upper_bits : float;  (** [(n-1) ceil(log2 n)] — tables on [G_n] *)
  ratio : float;             (** per-router lower bound / table upper bound *)
}

val theorem1 : n:int -> eps:float -> bound

val sweep : ns:int list -> epss:float list -> bound list
(** Cartesian sweep, skipping infeasible combinations. *)

val pp_bound : Format.formatter -> bound -> unit

(** {1 The companion global bound}

    Table 1's global column for [1 <= s < 2] cites the authors' PODC'96
    result (reference [6]): universal schemes of stretch below 2 use
    [Omega(n^2)] bits in total. The same machinery proves it: take
    [d = 2] and [p = q = Theta(n)] — the graph of constraints still
    fits in [n] vertices ([p(d+1) + q = 4p <= n]), and Lemma 1 gives
    [log |2M(p,q)| >= pq - p - p log p - q log q = Omega(n^2)] bits
    spread over the [p] constrained routers. *)

type global_bound = {
  g_n : int;
  g_p : int;                  (** [= q = floor(n/4)] *)
  g_bits_total : float;       (** net global lower bound (bits) *)
  g_table_global_bits : float;(** [n (n-1) ceil(log2 n)] tables upper bound *)
  g_ratio : float;            (** total bound / n^2 — the [Omega(n^2)] constant *)
}

val global_theorem : n:int -> global_bound
(** Requires [n >= 16]. *)

val global_sweep : ns:int list -> global_bound list
val pp_global : Format.formatter -> global_bound -> unit
