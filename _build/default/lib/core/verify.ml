open Umrs_graph

type stretch_bound = { num : int; den : int; strict : bool }

let shortest_paths_only = { num = 1; den = 1; strict = false }
let below_two = { num = 2; den = 1; strict = true }

let usable_ports g ~dist ~src ~dst ~bound =
  if src = dst then invalid_arg "Verify.usable_ports: src = dst";
  let d = dist.(src).(dst) in
  if d = Bfs.infinity then invalid_arg "Verify.usable_ports: unreachable";
  let ok k =
    let w = Graph.neighbor g src ~port:k in
    let dw = dist.(w).(dst) in
    dw <> Bfs.infinity
    &&
    let lhs = bound.den * (1 + dw) and rhs = bound.num * d in
    if bound.strict then lhs < rhs else lhs <= rhs
  in
  List.filter ok (List.init (Graph.degree g src) (fun k -> k + 1))

type violation = {
  row : int;
  col : int;
  expected : Graph.port;
  usable : Graph.port list;
}

let check g ~constrained ~targets m ~bound =
  let p, q = Matrix.dims m in
  if Array.length constrained <> p || Array.length targets <> q then
    invalid_arg "Verify.check: dimension mismatch";
  let dist = Bfs.all_pairs g in
  let violations = ref [] in
  for i = p - 1 downto 0 do
    for j = q - 1 downto 0 do
      let usable =
        usable_ports g ~dist ~src:constrained.(i) ~dst:targets.(j) ~bound
      in
      let expected = Matrix.get m i j in
      if usable <> [ expected ] then
        violations := { row = i; col = j; expected; usable } :: !violations
    done
  done;
  match !violations with [] -> Ok () | vs -> Error vs

let check_cgraph (t : Cgraph.t) ~bound =
  check t.Cgraph.graph ~constrained:t.Cgraph.constrained
    ~targets:t.Cgraph.targets t.Cgraph.matrix ~bound

let forced_fraction (t : Cgraph.t) ~bound =
  let p, q = Matrix.dims t.Cgraph.matrix in
  match check_cgraph t ~bound with
  | Ok () -> 1.0
  | Error vs ->
    let bad = List.length vs in
    float_of_int ((p * q) - bad) /. float_of_int (p * q)
