(** Orbits of the Definition-2 group action, and a Monte-Carlo
    estimator of [|dM(p,q)|] beyond the exhaustive-enumeration regime.

    The group acting on raw [p x q] matrices over [{1..d}] combines row
    permutations, column permutations, and per-row injective renamings
    of the row's values within [{1..d}] (the value-relabelling freedom
    behind Definition 2's [pi_i]; on normalized rows it restricts to
    alphabet permutations). Orbits partition the [d^(pq)] raw matrices,
    and [|dM(p,q)|] is the number of orbits.

    By orbit counting, [|dM(p,q)| = sum_raw 1/|orbit(raw)|], so
    sampling raw matrices uniformly and averaging [1/|orbit|] gives an
    unbiased estimator — usable where [d^(pq)] is far beyond
    enumeration but orbits are still small enough to generate. *)

val size : d:int -> Matrix.t -> int
(** Exact orbit cardinality of a raw matrix under the full group, by
    explicit generation ([q! p!] times the row-renaming arrangements;
    keep [p, q <= 4] and [d <= 4]). *)

val size_positional : Matrix.t -> int
(** Orbit under row and column permutations only. *)

val random_raw : Random.State.t -> p:int -> q:int -> d:int -> Matrix.t
(** Uniform raw matrix (relaxed form). *)

type estimate = {
  samples : int;
  mean : float;          (** estimated [|dM(p,q)|] *)
  std_error : float;     (** standard error of the estimate *)
}

val estimate_classes :
  ?positional:bool ->
  Random.State.t -> samples:int -> p:int -> q:int -> d:int -> estimate
(** Monte-Carlo estimate of the number of classes. With enumerable
    parameters it converges to {!Enumerate.count} (tested); elsewhere it
    extends the Lemma-1 validation. *)
