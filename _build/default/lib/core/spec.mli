(** The paper as an executable checklist.

    Each function mechanically checks one numbered claim of Fraigniaud
    & Gavoille (1996) at a configurable (finite) scale and returns
    whether it held. [all ()] runs the default instantiations — the
    single entry point for "is the reproduction intact?"
    ([routing_lab check] on the command line). *)

val definition1_figure1 : unit -> bool
(** Figure 1's instance satisfies Definition 1 on the Petersen graph at
    stretch 1, with every row a full prefix alphabet. *)

val lemma1 : p:int -> q:int -> d:int -> bool
(** [|dM(p,q)| >= d^(pq) / (p! q! (d!)^p)], exact count vs exact
    bound. *)

val lemma2 : Matrix.t -> bool
(** The graph of constraints of [M] has order at most [p(d+1)+q], is
    connected, and forces port [m_ij] for every routing function of
    stretch below 2. *)

val lemma2_universal : p:int -> q:int -> d:int -> bool
(** {!lemma2} over the whole canonical set [dM(p,q)]. *)

val theorem1_mechanism : p:int -> q:int -> d:int -> bool
(** The decoder of Section 4: any shortest-path routing functions on
    the graphs of constraints determine the matrices, injectively over
    [dM(p,q)], including after padding. *)

val theorem1_asymptotics : n:int -> eps:float -> bool
(** The calculator's sanity: the per-router lower bound is positive,
    below the table upper bound, and its ratio to [n log n] does not
    vanish as [n] doubles. *)

val global_bound_quadratic : n:int -> bool
(** The companion [Omega(n^2)] global bound ([6]) evaluates to at least
    [n^2/32] net bits at order [n]. *)

val table1_consistency : n:int -> bool
(** Every Table-1 row evaluates with lower bounds at most the matching
    upper bounds at order [n]. *)

val stretch_two_phase_transition : unit -> bool
(** Forcing is total below stretch 2 and collapses at 2 on a reference
    graph of constraints (the conclusion's open-question boundary). *)

val all : unit -> (string * bool) list
(** Default instantiations of everything above, labelled. *)
