(** Generalized graphs of constraints (Section 3, Lemma 2).

    For a matrix [M] with normalized rows, the 3-level graph [G]:
    - level A: constrained vertices [a_1 .. a_p];
    - level C: middle vertices [c_{i,k}] for every row [i] and every
      value [k] in row [i]'s alphabet;
    - level B: target vertices [b_1 .. b_q];
    - edges [a_i - c_{i,k}] for all [k <= k_i], with the port of
      [a_i] on that arc equal to [k] (this is the arc-naming [phi_i]);
    - edges [c_{i,k} - b_j] iff [m_ij = k].

    Then [dist(a_i, b_j) = 2], the path [a_i, c_{i,m_ij}, b_j] is the
    unique one of length [< 4], and hence [M] is a matrix of
    constraints of [G] for every stretch factor [s < 2]. The order of
    [G] is at most [p(d+1) + q]. *)

open Umrs_graph

type t = {
  graph : Graph.t;
  matrix : Matrix.t;
  constrained : Graph.vertex array;  (** [a_1 .. a_p] = vertices [0 .. p-1] *)
  targets : Graph.vertex array;      (** [b_1 .. b_q] = vertices [p .. p+q-1] *)
  middle : Graph.vertex array array; (** [middle.(i).(k-1)] is [c_{i,k}] *)
}

val of_matrix : Matrix.t -> t
(** Requires normalized rows ({!Matrix.create} acceptance). *)

val order_bound : p:int -> q:int -> d:int -> int
(** [p * (d+1) + q], the Lemma 2 bound. *)

val pad_to_order : t -> n:int -> t
(** Theorem 1's transformation [G -> G_n]: attach a path of
    [n - order] fresh vertices to a middle vertex (neither constrained
    nor target), leaving the constraint structure intact. Raises
    [Invalid_argument] if [n < order]. *)

val forced_port : t -> int -> int -> Graph.port
(** [forced_port t i j] is [m_ij] — the port every stretch-[<2] routing
    function must use from [a_i] toward [b_j]. *)
