(** Table 1 — the state of the art on local and global memory
    requirements of universal routing schemes, as a function of the
    stretch factor [s], with Theorem 1's improvement applied to the
    [1 <= s < 2] row.

    Each row carries the asymptotic formulas (as printable strings) and
    float evaluators at a concrete [n] (constants taken as 1, [log] =
    [log2]) so the benchmark can print the table alongside the memory
    this suite's schemes actually measure. Rows quoting the paper's own
    results are exact; rows quoting the cited literature ([1,2,12,13])
    reconstruct the formulas from those papers and are marked
    [from_cited_work] (see EXPERIMENTS.md). *)

type formula = {
  text : string;                  (** e.g. ["Theta(n log n)"] *)
  bits : n:int -> float;          (** evaluated at order [n] *)
}

type row = {
  stretch : string;               (** e.g. ["1 <= s < 2"] *)
  applies : s:float -> bool;      (** does a concrete stretch fall in this row *)
  local_lower : formula;
  local_upper : formula;
  global_lower : formula;
  global_upper : formula;
  source : string;                (** citation keys *)
  from_cited_work : bool;         (** true when not provable from this paper *)
}

val rows : row list
(** The seven stretch regimes of Table 1, post-Theorem 1. *)

val row_for : s:float -> row
(** The regime a concrete stretch factor falls into. *)

val print : ?n:int -> Format.formatter -> unit -> unit
(** Render the table; when [n] is given, formulas are also evaluated. *)
