open Umrs_routing

let from_routing (t : Cgraph.t) (rf : Routing_function.t) =
  let p, q = Matrix.dims t.Cgraph.matrix in
  let entries =
    Array.init p (fun i ->
        Array.init q (fun j ->
            let a = t.Cgraph.constrained.(i) and b = t.Cgraph.targets.(j) in
            let h = rf.Routing_function.init a b in
            match rf.Routing_function.port a h with
            | Some k -> k
            | None -> invalid_arg "Reconstruct: routing delivered at source"))
  in
  Matrix.create_relaxed entries

let reconstruct t rf = Canonical.canonical (from_routing t rf)

type sampled = {
  s_samples : int;
  s_all_forced : bool;
  s_all_recovered : bool;
}

let run_sampled ?(bound = Verify.below_two) st ~samples ~p ~q ~d ~scheme () =
  if samples < 1 then invalid_arg "Reconstruct.run_sampled";
  let all_forced = ref true and all_recovered = ref true in
  for _ = 1 to samples do
    let raw = Orbit.random_raw st ~p ~q ~d in
    (* normalize rows so the cgraph construction applies; this is the
       port-relabelling step the proof performs "w.l.o.g." *)
    let m =
      Matrix.create
        (Array.init p (fun i ->
             Canonical.normalize_row
               (Array.init q (fun j -> Matrix.get raw i j))))
    in
    let t = Cgraph.of_matrix m in
    (match Verify.check_cgraph t ~bound with
    | Ok () -> ()
    | Error _ -> all_forced := false);
    let built = scheme t.Cgraph.graph in
    let recovered = Canonical.canonical (from_routing t built.Scheme.rf) in
    if not (Matrix.equal recovered (Canonical.canonical m)) then
      all_recovered := false
  done;
  {
    s_samples = samples;
    s_all_forced = !all_forced;
    s_all_recovered = !all_recovered;
  }

type outcome = {
  classes : int;
  injective : bool;
  all_forced : bool;
  all_recovered : bool;
  bits_information : float;
  bits_side : float;
  bits_net : float;
}

let run_experiment ?pad_to ?(bound = Verify.below_two) ~p ~q ~d ~scheme () =
  let set = Enumerate.canonical_set ~p ~q ~d () in
  let classes = List.length set in
  let seen = Hashtbl.create classes in
  let all_forced = ref true in
  let all_recovered = ref true in
  let order = ref 0 in
  List.iter
    (fun m ->
      let t = Cgraph.of_matrix m in
      let t =
        match pad_to with Some n -> Cgraph.pad_to_order t ~n | None -> t
      in
      order := max !order (Umrs_graph.Graph.order t.Cgraph.graph);
      (match Verify.check_cgraph t ~bound with
      | Ok () -> ()
      | Error _ -> all_forced := false);
      let built = scheme t.Cgraph.graph in
      let recovered = reconstruct t built.Scheme.rf in
      if not (Matrix.equal recovered (Canonical.canonical m)) then
        all_recovered := false;
      Hashtbl.replace seen (Matrix.to_string recovered) ())
    set;
  let injective = Hashtbl.length seen = classes in
  let n = max 2 !order in
  let bits_information = Bignat.log2 (Bignat.of_int classes) in
  let mb = Umrs_bitcode.Rank.log2_binomial n (min q n) in
  let mc = 3.0 *. float_of_int (Umrs_bitcode.Codes.ceil_log2 n) in
  let bits_side = mb +. mc in
  {
    classes;
    injective;
    all_forced = !all_forced;
    all_recovered = !all_recovered;
    bits_information;
    bits_side;
    bits_net = Float.max 0.0 (bits_information -. bits_side);
  }
