(** The Theorem-1 argument, run end to end.

    The proof's key step: the routers of the constrained vertices of
    [G(M)] can jointly {e rebuild} [M] — query each router [a_i] with
    the label of each target [b_j], record the answering output port,
    and canonicalize. Because any stretch-[<2] routing function is
    forced onto port [m_ij], this map is well defined; because it is
    injective on [dM(p,q)], the routers' total memory must be at least
    [log2 |dM(p,q)|] minus the side information ([MB] for the target
    labels, [MC] + [O(log n)] for the canonicalization procedure and
    parameters) — Equation (1) of the paper. *)

open Umrs_graph

val from_routing : Cgraph.t -> Umrs_routing.Routing_function.t -> Matrix.t
(** Interrogate a routing function on a graph of constraints: entry
    [(i,j)] is the first port it uses from [a_i] toward [b_j]. Raw
    (non-canonicalized) result. *)

val reconstruct : Cgraph.t -> Umrs_routing.Routing_function.t -> Matrix.t
(** [canonical (from_routing ...)] — the decoder of the proof. *)

type sampled = {
  s_samples : int;
  s_all_forced : bool;
  s_all_recovered : bool;
}

val run_sampled :
  ?bound:Verify.stretch_bound ->
  Random.State.t ->
  samples:int ->
  p:int -> q:int -> d:int ->
  scheme:(Graph.t -> Umrs_routing.Scheme.built) ->
  unit -> sampled
(** The same pipeline on uniformly sampled raw matrices instead of the
    whole canonical set — scales the mechanism check to parameter
    ranges whose [dM(p,q)] is too large to enumerate (injectivity is
    meaningless on a sample, so only forcing and recovery are
    reported). Recovery compares canonical forms. *)

type outcome = {
  classes : int;             (** [|dM(p,q)|] *)
  injective : bool;          (** distinct matrices gave distinct reconstructions *)
  all_forced : bool;         (** every instance passed {!Verify.below_two} *)
  all_recovered : bool;      (** reconstruction = canonical of original *)
  bits_information : float;  (** [log2 |dM(p,q)|] *)
  bits_side : float;         (** [MB + MC + O(log n)] charged *)
  bits_net : float;          (** information minus side bits (>= 0 clamp) *)
}

val run_experiment :
  ?pad_to:int ->
  ?bound:Verify.stretch_bound ->
  p:int -> q:int -> d:int ->
  scheme:(Graph.t -> Umrs_routing.Scheme.built) ->
  unit -> outcome
(** For every [M] in [dM(p,q)]: build [G(M)] (optionally padded to
    order [pad_to]), run [scheme] on it, reconstruct, and check
    recovery and global injectivity. [scheme] must produce a
    stretch-[<2] routing function (e.g. routing tables). [bound]
    (default {!Verify.below_two}) selects the forcing regime checked on
    each instance — {!Verify.shortest_paths_only} runs the [s = 1]
    variant of the argument (the Gavoille-Perennes regime of Table 1's
    first row). The side-bit charge uses [MB = log2 C(n,q)] and
    [MC + params = 3 ceil(log2 n)] as in Section 4. *)
