(** Arbitrary-precision natural numbers.

    Vendored minimal implementation (zarith is not available in the
    sealed build environment): just enough arithmetic for the exact
    evaluation of Lemma 1's counting bound
    [d^(pq) / (p! q! (d!)^p)] on enumerable parameters. Numbers are
    little-endian arrays of base-[2^31] limbs. *)

type t

val zero : t
val one : t
val of_int : int -> t
(** Requires a non-negative argument. *)

val to_int_opt : t -> int option
(** [None] when the value exceeds [max_int]. *)

val add : t -> t -> t
val sub : t -> t -> t
(** Truncated subtraction: raises [Invalid_argument] if the result
    would be negative. *)

val mul : t -> t -> t
val mul_int : t -> int -> t
val pow : t -> int -> t
val div_int : t -> int -> t * int
(** [div_int a b = (quotient, remainder)] for [b > 0]. *)

val div : t -> t -> t
(** Floor division (schoolbook; fine at the scale used here). *)

val factorial : int -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool

val log2 : t -> float
(** [log2 x] for [x > 0], accurate to double precision. *)

val to_string : t -> string
(** Decimal representation. *)

val of_string : string -> t
(** Parses a decimal string of digits. *)

val pp : Format.formatter -> t -> unit
