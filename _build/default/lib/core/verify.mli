(** Machine verification that a matrix really constrains a graph
    (Definition 1), by exhaustive path analysis.

    An out-arc of [src] on port [k] is {e usable} for [dst] at stretch
    bound [s = num/den] when some routing path through it meets the
    bound, i.e. [den * (1 + dist(head, dst)) <= num * dist(src, dst)]
    ([<] when [strict], modelling the open bound [s < 2] of Lemma 2).
    [M] is a matrix of constraints iff for every [(i,j)] the usable set
    for [(a_i, b_j)] is exactly [{m_ij}]. *)

open Umrs_graph

type stretch_bound = { num : int; den : int; strict : bool }

val shortest_paths_only : stretch_bound
(** [1/1], non-strict: usable = first arcs of shortest paths. *)

val below_two : stretch_bound
(** [2/1], strict: the Lemma 2 regime (every [s < 2]). *)

val usable_ports :
  Graph.t -> dist:int array array -> src:Graph.vertex -> dst:Graph.vertex ->
  bound:stretch_bound -> Graph.port list
(** All usable out-ports of [src] for [dst], ascending. *)

type violation = {
  row : int;                  (** [i], 0-based *)
  col : int;                  (** [j], 0-based *)
  expected : Graph.port;      (** [m_ij] *)
  usable : Graph.port list;   (** what the graph actually forces *)
}

val check :
  Graph.t ->
  constrained:Graph.vertex array ->
  targets:Graph.vertex array ->
  Matrix.t ->
  bound:stretch_bound ->
  (unit, violation list) result
(** All [(i,j)] pairs; [Ok ()] when the forced-port property holds
    everywhere. *)

val check_cgraph : Cgraph.t -> bound:stretch_bound -> (unit, violation list) result
(** {!check} applied to a graph of constraints and its own matrix. *)

val forced_fraction : Cgraph.t -> bound:stretch_bound -> float
(** Fraction of [(i,j)] pairs whose usable set is the singleton
    [{m_ij}] — 1.0 below stretch 2 by Lemma 2, degrading above (the
    conclusion's open-problem ablation). *)
