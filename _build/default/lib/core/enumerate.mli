(** Exhaustive enumeration of [dM(p,q)] — the canonical representatives
    of all [p x q] matrices with entries in [{1..d}] (the paper's
    notation for the set whose cardinality drives Theorem 1).

    Only feasible for small parameters ([d^(pq)] inputs); this is the
    ground truth against which Lemma 1's counting bound is tested, and
    the instance generator for the end-to-end Theorem-1 reconstruction
    experiment. *)

val iter_matrices : p:int -> q:int -> d:int -> (Matrix.t -> unit) -> unit
(** All [d^(pq)] raw matrices (relaxed form), row-major counting
    order. *)

val canonical_set :
  ?variant:Canonical.variant -> p:int -> q:int -> d:int -> unit -> Matrix.t list
(** [dM(p,q)] for entry bound [d], sorted by [Matrix.compare_lex].
    Defaults to the [Full] Definition-2 group; [Positional] reproduces
    the paper's displayed 7-element example for [p = q = d = 2].
    Raises [Invalid_argument] when [d^(pq)] exceeds [2^22] (guard
    against accidental blow-up). *)

val count : ?variant:Canonical.variant -> p:int -> q:int -> d:int -> unit -> int
(** [|dM(p,q)|] = length of [canonical_set]. *)

val class_size :
  ?variant:Canonical.variant -> p:int -> q:int -> d:int -> Matrix.t -> int
(** Number of raw matrices (entries in [{1..d}]) equivalent to the
    given one. Summing over [canonical_set] recovers [d^(pq)]. *)
