(* Overflow-safe power with a cap: returns [cap + 1] as soon as the
   true value exceeds [cap]. *)
let pow_capped b e ~cap =
  if e < 0 then invalid_arg "pow_capped";
  let rec go acc e =
    if e = 0 then acc
    else if acc > cap / b then cap + 1
    else go (acc * b) (e - 1)
  in
  go 1 e

let iter_matrices ~p ~q ~d f =
  if p < 1 || q < 1 || d < 1 then invalid_arg "Enumerate.iter_matrices";
  let cells = p * q in
  let digits = Array.make cells 0 in
  (* digits in {0..d-1}, row-major; entry = digit + 1 *)
  let emit () =
    let entries =
      Array.init p (fun i -> Array.init q (fun j -> digits.((i * q) + j) + 1))
    in
    f (Matrix.create_relaxed entries)
  in
  let rec bump i =
    if i < 0 then false
    else if digits.(i) + 1 < d then begin
      digits.(i) <- digits.(i) + 1;
      true
    end
    else begin
      digits.(i) <- 0;
      bump (i - 1)
    end
  in
  let continue = ref true in
  while !continue do
    emit ();
    continue := bump (cells - 1)
  done

let guard ~p ~q ~d =
  let cells = p * q in
  let cap = 1 lsl 22 in
  if d > 1 && pow_capped d cells ~cap > cap then
    invalid_arg "Enumerate: d^(pq) too large to enumerate"

let canonical_set ?variant ~p ~q ~d () =
  guard ~p ~q ~d;
  let seen = Hashtbl.create 256 in
  iter_matrices ~p ~q ~d (fun m ->
      let c = Canonical.canonical ?variant m in
      let key = Matrix.to_string c in
      if not (Hashtbl.mem seen key) then Hashtbl.add seen key c);
  Hashtbl.fold (fun _ c acc -> c :: acc) seen []
  |> List.sort Matrix.compare_lex

let count ?variant ~p ~q ~d () = List.length (canonical_set ?variant ~p ~q ~d ())

let class_size ?variant ~p ~q ~d m =
  guard ~p ~q ~d;
  let target = Canonical.canonical ?variant m in
  let count = ref 0 in
  iter_matrices ~p ~q ~d (fun m' ->
      if Matrix.equal (Canonical.canonical ?variant m') target then incr count);
  !count
