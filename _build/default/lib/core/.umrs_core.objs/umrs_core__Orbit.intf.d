lib/core/orbit.mli: Matrix Random
