lib/core/matrix.ml: Array Bignat Format List Printf String Umrs_graph
