lib/core/canonical.mli: Matrix Random
