lib/core/orbit.ml: Array Float Hashtbl List Matrix Perm Random Umrs_graph
