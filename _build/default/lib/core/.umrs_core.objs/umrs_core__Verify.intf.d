lib/core/verify.mli: Cgraph Graph Matrix Umrs_graph
