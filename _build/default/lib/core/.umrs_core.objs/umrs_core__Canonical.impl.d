lib/core/canonical.ml: Array Hashtbl Matrix Perm Umrs_graph
