lib/core/cgraph.ml: Array Graph Matrix Umrs_graph
