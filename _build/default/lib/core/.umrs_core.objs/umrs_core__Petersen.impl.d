lib/core/petersen.ml: Array Bfs Canonical Generators Graph List Matrix Perm Printf Umrs_graph Verify
