lib/core/count.ml: Bignat Enumerate Float Hashtbl List Option Perm Umrs_bitcode Umrs_graph
