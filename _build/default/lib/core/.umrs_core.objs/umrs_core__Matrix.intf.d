lib/core/matrix.mli: Bignat Format Umrs_graph
