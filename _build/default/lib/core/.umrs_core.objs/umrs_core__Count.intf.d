lib/core/count.mli: Bignat
