lib/core/spec.ml: Bounds_table Cgraph Count Enumerate Fun List Lower_bound Matrix Petersen Reconstruct Umrs_graph Umrs_routing Verify
