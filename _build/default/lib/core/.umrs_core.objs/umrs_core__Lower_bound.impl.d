lib/core/lower_bound.ml: Cgraph Count Float Format List Umrs_bitcode
