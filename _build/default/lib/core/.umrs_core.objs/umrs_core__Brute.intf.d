lib/core/brute.mli: Cgraph
