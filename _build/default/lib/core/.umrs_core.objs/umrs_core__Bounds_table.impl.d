lib/core/bounds_table.ml: Float Format List Printf String
