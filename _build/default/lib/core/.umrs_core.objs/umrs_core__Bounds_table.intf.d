lib/core/bounds_table.mli: Format
