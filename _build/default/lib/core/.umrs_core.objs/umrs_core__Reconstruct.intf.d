lib/core/reconstruct.mli: Cgraph Graph Matrix Random Umrs_graph Umrs_routing Verify
