lib/core/reconstruct.ml: Array Bignat Canonical Cgraph Enumerate Float Hashtbl List Matrix Orbit Routing_function Scheme Umrs_bitcode Umrs_graph Umrs_routing Verify
