lib/core/verify.ml: Array Bfs Cgraph Graph List Matrix Umrs_graph
