lib/core/enumerate.ml: Array Canonical Hashtbl List Matrix
