lib/core/brute.ml: Array Bfs Cgraph Graph Hashtbl Matrix Routing_function Table_scheme Umrs_graph Umrs_routing
