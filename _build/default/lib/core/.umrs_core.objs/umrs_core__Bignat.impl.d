lib/core/bignat.ml: Array Buffer Char Float Format Stdlib String
