lib/core/spec.mli: Matrix
