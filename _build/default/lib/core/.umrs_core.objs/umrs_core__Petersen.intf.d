lib/core/petersen.mli: Graph Matrix Umrs_graph
