lib/core/enumerate.mli: Canonical Matrix
