lib/core/cgraph.mli: Graph Matrix Umrs_graph
