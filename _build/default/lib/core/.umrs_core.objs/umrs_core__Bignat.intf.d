lib/core/bignat.mli: Format
