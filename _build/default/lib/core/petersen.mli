(** Figure 1 — a 5x5 shortest-path matrix of constraints on the
    Petersen graph.

    The Petersen graph has diameter 2 and girth 5, so between any two
    distinct vertices there is a {e unique} shortest path; with
    constrained vertices [A] = the outer cycle and targets [B] = the
    inner star, every entry of the forced-port matrix is therefore well
    defined, and port labels at [A] can be chosen so the matrix is
    normalized — exactly the situation the figure depicts (e.g. every
    shortest path from [a_1] to [b_1] must leave on arc [(a_1, b_1)]). *)

open Umrs_graph

type t = {
  graph : Graph.t;            (** Petersen, ports at [A] renumbered *)
  constrained : Graph.vertex array;  (** [a_1..a_5] = outer vertices 0-4 *)
  targets : Graph.vertex array;      (** [b_1..b_5] = inner vertices 5-9 *)
  matrix : Matrix.t;          (** the 5x5 forced-port matrix *)
}

val instance : unit -> t
(** Builds the figure: computes the forced shortest-path ports, then
    relabels each constrained vertex's ports so rows are normalized. *)

val verify : t -> bool
(** Machine check of Definition 1 at stretch 1
    ({!Verify.shortest_paths_only}). *)

val unique_shortest_paths : Graph.t -> bool
(** True iff every vertex pair of the graph has exactly one shortest
    path (holds for Petersen; the property behind the figure). *)
