(** Graphviz export for graphs and routing artifacts. *)

val to_dot :
  ?name:string ->
  ?highlight:Graph.vertex list ->
  ?labels:(Graph.vertex -> string) ->
  ?show_ports:bool ->
  Graph.t ->
  string
(** Render as an undirected [graph]. [highlight] vertices are filled;
    [labels] overrides node labels; [show_ports] annotates each edge
    end with its local port number (as [taillabel]/[headlabel] on a
    directed rendering). *)

val path_to_dot : ?name:string -> Graph.t -> Graph.vertex list -> string
(** The graph with a routing path's edges emphasized. *)
