(** Structural predicates and statistics on graphs. *)

val is_tree : Graph.t -> bool
(** Connected with exactly [n - 1] edges. *)

val is_regular : Graph.t -> bool

val degree_histogram : Graph.t -> (int * int) list
(** [(degree, count)] pairs, sorted by degree. *)

val girth : Graph.t -> int option
(** Length of a shortest cycle, [None] for forests. *)

val is_bipartite : Graph.t -> bool

val average_degree : Graph.t -> float

val is_chordal : Graph.t -> bool
(** Chordality test via maximum-cardinality search and perfect
    elimination ordering verification. *)

val bridges : Graph.t -> (Graph.vertex * Graph.vertex) list
(** Edges whose removal disconnects their component (Tarjan low-link),
    as [(u, v)] with [u < v]. A dead link on a bridge necessarily
    strands traffic — see {!Umrs_routing.Simulator.run_with_dead_links}. *)

val articulation_points : Graph.t -> Graph.vertex list
(** Vertices whose removal disconnects their component, ascending. *)

val is_biconnected : Graph.t -> bool
(** Connected, at least 3 vertices, and no articulation point. *)
