type t = { g : Graph.t; costs : int array array }

let of_graph g cost =
  let n = Graph.order g in
  let costs =
    Array.init n (fun v ->
        Array.init (Graph.degree g v) (fun k ->
            let c = cost v (k + 1) in
            if c <= 0 then invalid_arg "Weighted: costs must be positive";
            c))
  in
  (* symmetry: cost of (u -> v) equals cost of (v -> u) *)
  Graph.iter_arcs g (fun u k v ->
      let back =
        match Graph.port_to g ~src:v ~dst:u with
        | Some kb -> kb
        | None -> assert false
      in
      if costs.(u).(k - 1) <> costs.(v).(back - 1) then
        invalid_arg "Weighted: asymmetric edge cost");
  { g; costs }

let uniform g = of_graph g (fun _ _ -> 1)

let random st ~max_cost g =
  if max_cost < 1 then invalid_arg "Weighted.random";
  (* draw one cost per undirected edge *)
  let tbl = Hashtbl.create (Graph.size g) in
  let cost v k =
    let w = Graph.neighbor g v ~port:k in
    let key = if v < w then (v, w) else (w, v) in
    match Hashtbl.find_opt tbl key with
    | Some c -> c
    | None ->
      let c = 1 + Random.State.int st max_cost in
      Hashtbl.add tbl key c;
      c
  in
  of_graph g cost

let graph t = t.g

let cost t v k =
  if k < 1 || k > Graph.degree t.g v then invalid_arg "Weighted.cost: port";
  t.costs.(v).(k - 1)

let edge_cost t u v =
  match Graph.port_to t.g ~src:u ~dst:v with
  | Some k -> t.costs.(u).(k - 1)
  | None -> invalid_arg "Weighted.edge_cost: not adjacent"

let dijkstra t src =
  let n = Graph.order t.g in
  if src < 0 || src >= n then invalid_arg "Weighted.dijkstra: source";
  let dist = Array.make n Bfs.infinity in
  let heap = Heap.create () in
  dist.(src) <- 0;
  Heap.push heap ~priority:0 src;
  let rec drain () =
    match Heap.pop_min heap with
    | None -> ()
    | Some (d, v) ->
      if d = dist.(v) then
        Array.iteri
          (fun k w ->
            let nd = d + t.costs.(v).(k) in
            if nd < dist.(w) then begin
              dist.(w) <- nd;
              Heap.push heap ~priority:nd w
            end)
          (Graph.neighbors t.g v);
      drain ()
  in
  drain ();
  dist

let all_pairs t = Array.init (Graph.order t.g) (dijkstra t)

let path_cost t path =
  let rec go acc = function
    | [] | [ _ ] -> acc
    | u :: (v :: _ as rest) -> go (acc + edge_cost t u v) rest
  in
  go 0 path

let shortest_path t src dst =
  let dist = dijkstra t src in
  if dist.(dst) = Bfs.infinity then None
  else begin
    (* walk back greedily from dst *)
    let rec back v acc =
      if v = src then v :: acc
      else begin
        let pred = ref (-1) in
        Array.iteri
          (fun k w ->
            if
              !pred = -1
              && dist.(w) + t.costs.(v).(k) = dist.(v)
              && dist.(w) < dist.(v)
            then pred := w)
          (Graph.neighbors t.g v);
        assert (!pred >= 0);
        back !pred (v :: acc)
      end
    in
    Some (back dst [])
  end
