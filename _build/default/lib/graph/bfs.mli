(** Breadth-first search, distances, and shortest paths.

    All distances are hop counts (uniform arc costs, as in the paper).
    Unreachable vertices get distance [infinity = max_int]. *)

val infinity : int
(** Distance of unreachable vertices ([max_int]). *)

val distances : Graph.t -> Graph.vertex -> int array
(** [distances g src] is the array of hop distances from [src]. *)

val distances_with_parents : Graph.t -> Graph.vertex -> int array * int array
(** As [distances], also returning a BFS parent array ([-1] for the
    source and unreachable vertices). Parents follow smallest-port-first
    tie-breaking. *)

val all_pairs : Graph.t -> int array array
(** [all_pairs g] is the full distance matrix ([n] BFS runs). *)

val dist : Graph.t -> Graph.vertex -> Graph.vertex -> int
(** One-off distance query (runs a BFS). *)

val shortest_path : Graph.t -> Graph.vertex -> Graph.vertex -> Graph.vertex list option
(** [shortest_path g u v] is a shortest path [u; ...; v] if any. *)

val eccentricity : Graph.t -> Graph.vertex -> int
(** Max distance from the vertex; [infinity] if the graph is
    disconnected. *)

val diameter : Graph.t -> int
(** Max eccentricity over all vertices; 0 for the empty/1-vertex graph. *)

val radius : Graph.t -> int
(** Min eccentricity over all vertices. *)

val center : Graph.t -> Graph.vertex
(** A vertex of minimum eccentricity (smallest index wins ties). *)

val bfs_tree : Graph.t -> Graph.vertex -> Graph.t
(** [bfs_tree g src] is the spanning BFS tree rooted at [src] as a graph
    on the same vertex set (requires [g] connected). Port order at each
    vertex: parent arc first, then children by increasing vertex id. *)

val count_shortest_paths : Graph.t -> Graph.vertex -> Graph.vertex -> int
(** Number of distinct shortest paths between two vertices (may be large
    but fits an [int] on the graph sizes used here). *)
