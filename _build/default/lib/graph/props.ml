let is_tree g = Graph.is_connected g && Graph.size g = Graph.order g - 1

let is_regular g =
  let n = Graph.order g in
  n = 0
  ||
  let d = Graph.degree g 0 in
  let rec go v = v >= n || (Graph.degree g v = d && go (v + 1)) in
  go 1

let degree_histogram g =
  let tbl = Hashtbl.create 16 in
  for v = 0 to Graph.order g - 1 do
    let d = Graph.degree g v in
    Hashtbl.replace tbl d (1 + Option.value ~default:0 (Hashtbl.find_opt tbl d))
  done;
  List.sort compare (Hashtbl.fold (fun d c acc -> (d, c) :: acc) tbl [])

let girth g =
  (* BFS from every vertex; a non-tree arc closing at depth levels d and
     d' gives a cycle of length d + d' + 1. *)
  let n = Graph.order g in
  let best = ref max_int in
  for src = 0 to n - 1 do
    let dist = Array.make n (-1) in
    let parent = Array.make n (-1) in
    let queue = Queue.create () in
    dist.(src) <- 0;
    Queue.add src queue;
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      Array.iter
        (fun w ->
          if dist.(w) = -1 then begin
            dist.(w) <- dist.(v) + 1;
            parent.(w) <- v;
            Queue.add w queue
          end
          else if parent.(v) <> w && w <> v then
            best := min !best (dist.(v) + dist.(w) + 1))
        (Graph.neighbors g v)
    done
  done;
  if !best = max_int then None else Some !best

let is_bipartite g =
  let n = Graph.order g in
  let color = Array.make n (-1) in
  let ok = ref true in
  for src = 0 to n - 1 do
    if color.(src) = -1 then begin
      color.(src) <- 0;
      let queue = Queue.create () in
      Queue.add src queue;
      while not (Queue.is_empty queue) do
        let v = Queue.pop queue in
        Array.iter
          (fun w ->
            if color.(w) = -1 then begin
              color.(w) <- 1 - color.(v);
              Queue.add w queue
            end
            else if color.(w) = color.(v) then ok := false)
          (Graph.neighbors g v)
      done
    end
  done;
  !ok

let average_degree g =
  let n = Graph.order g in
  if n = 0 then 0.0 else 2.0 *. float_of_int (Graph.size g) /. float_of_int n

(* Tarjan's low-link DFS, iterative-free (graphs here are small enough
   for recursion). Returns (disc, low, parent). *)
let lowlink g =
  let n = Graph.order g in
  let disc = Array.make n (-1) in
  let low = Array.make n max_int in
  let parent = Array.make n (-1) in
  let timer = ref 0 in
  let rec dfs v =
    disc.(v) <- !timer;
    low.(v) <- !timer;
    incr timer;
    Array.iter
      (fun w ->
        if disc.(w) = -1 then begin
          parent.(w) <- v;
          dfs w;
          low.(v) <- min low.(v) low.(w)
        end
        else if w <> parent.(v) then low.(v) <- min low.(v) disc.(w))
      (Graph.neighbors g v)
  in
  for v = 0 to n - 1 do
    if disc.(v) = -1 then dfs v
  done;
  (disc, low, parent)

let bridges g =
  let disc, low, parent = lowlink g in
  let acc = ref [] in
  for v = 0 to Graph.order g - 1 do
    let p = parent.(v) in
    if p >= 0 && low.(v) > disc.(p) then
      acc := (min p v, max p v) :: !acc
  done;
  List.sort compare !acc

let articulation_points g =
  let disc, low, parent = lowlink g in
  let n = Graph.order g in
  let result = Array.make n false in
  (* root: articulation iff it has >= 2 DFS children *)
  let children = Array.make n 0 in
  for v = 0 to n - 1 do
    if parent.(v) >= 0 then children.(parent.(v)) <- children.(parent.(v)) + 1
  done;
  for v = 0 to n - 1 do
    if parent.(v) = -1 then result.(v) <- children.(v) >= 2
    else
      Array.iter
        (fun w ->
          if parent.(w) = v && low.(w) >= disc.(v) then result.(v) <- true)
        (Graph.neighbors g v)
  done;
  List.filter (fun v -> result.(v)) (List.init n Fun.id)

let is_biconnected g =
  Graph.order g >= 3 && Graph.is_connected g && articulation_points g = []

let is_chordal g =
  let n = Graph.order g in
  if n = 0 then true
  else begin
    (* Maximum cardinality search produces a reverse perfect elimination
       ordering iff the graph is chordal. *)
    let weight = Array.make n 0 in
    let placed = Array.make n false in
    let order = Array.make n (-1) in
    for i = n - 1 downto 0 do
      let v = ref (-1) in
      for u = 0 to n - 1 do
        if (not placed.(u)) && (!v = -1 || weight.(u) > weight.(!v)) then v := u
      done;
      order.(i) <- !v;
      placed.(!v) <- true;
      Array.iter (fun w -> if not placed.(w) then weight.(w) <- weight.(w) + 1) (Graph.neighbors g !v)
    done;
    let pos = Array.make n 0 in
    Array.iteri (fun i v -> pos.(v) <- i) order;
    (* Check: for each v, its later neighbours' earliest one is adjacent
       to the rest (standard PEO verification). *)
    let adjacent u w = Graph.mem_edge g u w in
    let ok = ref true in
    for i = 0 to n - 1 do
      let v = order.(i) in
      let later =
        Array.to_list (Graph.neighbors g v)
        |> List.filter (fun w -> pos.(w) > i)
      in
      match later with
      | [] -> ()
      | _ ->
        let u =
          List.fold_left (fun a w -> if pos.(w) < pos.(a) then w else a)
            (List.hd later) later
        in
        List.iter (fun w -> if w <> u && not (adjacent u w) then ok := false) later
    done;
    !ok
  end
