let require_nonempty xs =
  if Array.length xs = 0 then invalid_arg "Stats: empty input"

let mean xs =
  require_nonempty xs;
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let stddev xs =
  require_nonempty xs;
  let n = Array.length xs in
  if n = 1 then 0.0
  else begin
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    sqrt (ss /. float_of_int (n - 1))
  end

let sorted xs =
  let c = Array.copy xs in
  Array.sort compare c;
  c

let percentile xs ~p =
  require_nonempty xs;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: range";
  let s = sorted xs in
  let n = Array.length s in
  let rank =
    int_of_float (Float.ceil (p /. 100.0 *. float_of_int n)) - 1
  in
  s.(max 0 (min (n - 1) rank))

let median xs = percentile xs ~p:50.0

let minimum xs =
  require_nonempty xs;
  Array.fold_left min xs.(0) xs

let maximum xs =
  require_nonempty xs;
  Array.fold_left max xs.(0) xs

let histogram xs ~buckets =
  require_nonempty xs;
  if buckets < 1 then invalid_arg "Stats.histogram: need buckets >= 1";
  let lo = minimum xs and hi = maximum xs in
  let width =
    if hi > lo then (hi -. lo) /. float_of_int buckets else 1.0
  in
  let counts = Array.make buckets 0 in
  Array.iter
    (fun x ->
      let b = int_of_float ((x -. lo) /. width) in
      let b = max 0 (min (buckets - 1) b) in
      counts.(b) <- counts.(b) + 1)
    xs;
  List.init buckets (fun b ->
      ( lo +. (float_of_int b *. width),
        lo +. (float_of_int (b + 1) *. width),
        counts.(b) ))

let summary xs =
  Printf.sprintf "n=%d mean=%.2f sd=%.2f min=%.2f p50=%.2f p99=%.2f max=%.2f"
    (Array.length xs) (mean xs) (stddev xs) (minimum xs) (median xs)
    (percentile xs ~p:99.0) (maximum xs)
