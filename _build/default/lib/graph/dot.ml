let escape s = String.concat "\\\"" (String.split_on_char '"' s)

let to_dot ?(name = "g") ?(highlight = []) ?labels ?(show_ports = false) g =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  if show_ports then add "digraph \"%s\" {\n" (escape name)
  else add "graph \"%s\" {\n" (escape name);
  add "  node [shape=circle];\n";
  for v = 0 to Graph.order g - 1 do
    let label =
      match labels with Some f -> f v | None -> string_of_int v
    in
    let style =
      if List.mem v highlight then " style=filled fillcolor=lightblue" else ""
    in
    add "  %d [label=\"%s\"%s];\n" v (escape label) style
  done;
  if show_ports then
    Graph.iter_arcs g (fun u k v ->
        add "  %d -> %d [taillabel=\"%d\"];\n" u v k)
  else
    List.iter (fun (u, v) -> add "  %d -- %d;\n" u v) (Graph.edges g);
  add "}\n";
  Buffer.contents buf

let path_to_dot ?(name = "route") g path =
  let on_path = Hashtbl.create 16 in
  let rec mark = function
    | u :: (v :: _ as rest) ->
      Hashtbl.replace on_path (min u v, max u v) ();
      mark rest
    | _ -> ()
  in
  mark path;
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "graph \"%s\" {\n  node [shape=circle];\n" (escape name);
  List.iter
    (fun v ->
      add "  %d [style=filled fillcolor=lightyellow];\n" v)
    path;
  List.iter
    (fun (u, v) ->
      if Hashtbl.mem on_path (u, v) then
        add "  %d -- %d [penwidth=3 color=red];\n" u v
      else add "  %d -- %d;\n" u v)
    (Graph.edges g);
  add "}\n";
  Buffer.contents buf
