(** Plain-text serialization of graphs, ports included.

    Format: first line ["n"], then one line per vertex listing its
    neighbours in port order (possibly empty); lines starting with
    ['#'] are comments. Because the paper's model gives meaning to the
    local port numbering, the adjacency-row format is used so a
    round-trip reproduces the graph {e exactly}, ports included
    (tested). *)

val to_string : Graph.t -> string
val of_string : string -> Graph.t

val save : Graph.t -> path:string -> unit
val load : path:string -> Graph.t
