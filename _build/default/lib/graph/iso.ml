(* Backtracking isomorphism with an invariant-based candidate filter:
   vertices are compatible when their degrees match and the sorted
   degree multisets of their neighbourhoods match. Vertices of g are
   assigned in descending-degree order (most constrained first). *)

let neighbour_degree_signature g v =
  let sig_ = Array.map (Graph.degree g) (Graph.neighbors g v) in
  Array.sort compare sig_;
  sig_

let find g h =
  let n = Graph.order g in
  if Graph.order h <> n || Graph.size g <> Graph.size h then None
  else begin
    let sig_g = Array.init n (neighbour_degree_signature g) in
    let sig_h = Array.init n (neighbour_degree_signature h) in
    let compatible u x =
      Graph.degree g u = Graph.degree h x && sig_g.(u) = sig_h.(x)
    in
    (* quick rejection: degree sequences must agree *)
    let degs gr = List.sort compare (List.init n (Graph.degree gr)) in
    if degs g <> degs h then None
    else begin
      let order =
        let vs = Array.init n (fun i -> i) in
        Array.sort (fun a b -> compare (Graph.degree g b) (Graph.degree g a)) vs;
        vs
      in
      let mapping = Array.make n (-1) in
      let used = Array.make n false in
      let ok u x =
        (* adjacency with already-mapped vertices must be preserved *)
        Array.for_all
          (fun w ->
            mapping.(w) = -1 || Graph.mem_edge h x mapping.(w))
          (Graph.neighbors g u)
        && Array.for_all
             (fun y ->
               let pre = ref true in
               (* x's mapped neighbours must come from u's neighbours *)
               Array.iteri
                 (fun w img ->
                   if img = y && not (Graph.mem_edge g u w) then pre := false)
                 mapping;
               !pre)
             (Graph.neighbors h x)
      in
      let rec assign i =
        if i = n then true
        else begin
          let u = order.(i) in
          let rec try_candidates x =
            if x >= n then false
            else if (not used.(x)) && compatible u x && ok u x then begin
              mapping.(u) <- x;
              used.(x) <- true;
              if assign (i + 1) then true
              else begin
                mapping.(u) <- -1;
                used.(x) <- false;
                try_candidates (x + 1)
              end
            end
            else try_candidates (x + 1)
          in
          try_candidates 0
        end
      in
      if assign 0 then Some (Array.copy mapping) else None
    end
  end

let are_isomorphic g h = find g h <> None
