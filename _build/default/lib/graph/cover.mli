(** Sparse neighbourhood covers (Awerbuch & Peleg — reference [2] of
    the paper), by region growing.

    A radius-[r] cover is a set of connected clusters such that every
    vertex [v] has a {e home} cluster containing its whole ball
    [B(v, r)]. Region growing keeps cluster radii within
    [r * (log2 n + 2)]: grow a ball around an unserved vertex, doubling
    as long as the next [r]-annulus at least doubles the population
    (possible at most [log2 n] times), then serve its core. *)

type cluster = {
  center : Graph.vertex;
  radius : int;              (** ball radius in the host graph *)
  members : Graph.vertex array;  (** sorted *)
}

type t = {
  r : int;
  clusters : cluster array;
  home : int array;  (** [home.(v)] = index of the cluster containing [B(v,r)] *)
}

val build : Graph.t -> r:int -> t
(** Requires a connected graph and [r >= 0]. *)

val max_cluster_radius : t -> int
val max_membership : Graph.t -> t -> int
(** Largest number of clusters any single vertex belongs to. *)

val covers_balls : Graph.t -> t -> bool
(** Check the defining property: [B(v, r)] inside [v]'s home cluster,
    for every [v] (exhaustive; used by the test-suite). *)
