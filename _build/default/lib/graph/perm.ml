type t = int array

let identity n = Array.init n (fun i -> i)

let is_valid p =
  let n = Array.length p in
  let seen = Array.make n false in
  let ok = ref true in
  for i = 0 to n - 1 do
    let x = p.(i) in
    if x < 0 || x >= n || seen.(x) then ok := false else seen.(x) <- true
  done;
  !ok

let inverse p =
  let n = Array.length p in
  let q = Array.make n 0 in
  for i = 0 to n - 1 do
    q.(p.(i)) <- i
  done;
  q

let compose p q =
  if Array.length p <> Array.length q then
    invalid_arg "Perm.compose: size mismatch";
  Array.map (fun i -> p.(i)) q

let apply p i =
  if i < 0 || i >= Array.length p then invalid_arg "Perm.apply: out of range";
  p.(i)

let of_list l =
  let p = Array.of_list l in
  if not (is_valid p) then invalid_arg "Perm.of_list: not a permutation";
  p

let random st n =
  let p = identity n in
  for i = n - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let tmp = p.(i) in
    p.(i) <- p.(j);
    p.(j) <- tmp
  done;
  p

let swap p i j =
  let tmp = p.(i) in
  p.(i) <- p.(j);
  p.(j) <- tmp

let reverse_suffix p from =
  let i = ref from and j = ref (Array.length p - 1) in
  while !i < !j do
    swap p !i !j;
    incr i;
    decr j
  done

(* Classic Dijkstra next-permutation: find the longest non-increasing
   suffix, swap its pivot with the smallest larger element, reverse. *)
let next p =
  let n = Array.length p in
  if n <= 1 then false
  else begin
    let i = ref (n - 2) in
    while !i >= 0 && p.(!i) >= p.(!i + 1) do
      decr i
    done;
    if !i < 0 then begin
      reverse_suffix p 0;
      false
    end
    else begin
      let j = ref (n - 1) in
      while p.(!j) <= p.(!i) do
        decr j
      done;
      swap p !i !j;
      reverse_suffix p (!i + 1);
      true
    end
  end

let iter_all n f =
  let p = identity n in
  let continue = ref true in
  while !continue do
    f p;
    continue := next p
  done

let fold_all n f init =
  let acc = ref init in
  iter_all n (fun p -> acc := f !acc p);
  !acc

let factorial n =
  if n < 0 || n > 20 then invalid_arg "Perm.factorial: need 0 <= n <= 20";
  let r = ref 1 in
  for i = 2 to n do
    r := !r * i
  done;
  !r

let rank p =
  let n = Array.length p in
  if n > 20 then invalid_arg "Perm.rank: n too large";
  let r = ref 0 in
  for i = 0 to n - 1 do
    (* count elements after position i that are smaller than p.(i) *)
    let smaller = ref 0 in
    for j = i + 1 to n - 1 do
      if p.(j) < p.(i) then incr smaller
    done;
    r := (!r * (n - i)) + !smaller
  done;
  !r

let unrank n r =
  if n > 20 then invalid_arg "Perm.unrank: n too large";
  if r < 0 || r >= factorial n then invalid_arg "Perm.unrank: rank out of range";
  let digits = Array.make n 0 in
  let r = ref r in
  for i = n - 1 downto 0 do
    digits.(i) <- !r mod (n - i);
    r := !r / (n - i)
  done;
  let avail = ref (List.init n (fun i -> i)) in
  Array.map
    (fun d ->
      let x = List.nth !avail d in
      avail := List.filter (fun y -> y <> x) !avail;
      x)
    digits

let count_inversions p =
  let n = Array.length p in
  let c = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if p.(i) > p.(j) then incr c
    done
  done;
  !c

let pp fmt p =
  Format.fprintf fmt "[%a]"
    (Format.pp_print_array
       ~pp_sep:(fun f () -> Format.pp_print_string f ";")
       Format.pp_print_int)
    p
