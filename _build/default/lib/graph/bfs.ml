let infinity = max_int

let distances_with_parents g src =
  let n = Graph.order g in
  if src < 0 || src >= n then invalid_arg "Bfs: bad source";
  let dist = Array.make n infinity in
  let parent = Array.make n (-1) in
  let queue = Queue.create () in
  dist.(src) <- 0;
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    let dv = dist.(v) in
    Array.iter
      (fun w ->
        if dist.(w) = infinity then begin
          dist.(w) <- dv + 1;
          parent.(w) <- v;
          Queue.add w queue
        end)
      (Graph.neighbors g v)
  done;
  (dist, parent)

let distances g src = fst (distances_with_parents g src)

let all_pairs g = Array.init (Graph.order g) (fun v -> distances g v)

let dist g u v = (distances g u).(v)

let shortest_path g u v =
  let dist, parent = distances_with_parents g u in
  if dist.(v) = infinity then None
  else begin
    let rec build acc x = if x = u then u :: acc else build (x :: acc) parent.(x) in
    Some (build [] v)
  end

let eccentricity g v =
  Array.fold_left max 0 (distances g v)

let extreme_eccentricity ~better g =
  let n = Graph.order g in
  if n = 0 then (0, 0)
  else begin
    let best_v = ref 0 and best_e = ref (eccentricity g 0) in
    for v = 1 to n - 1 do
      let e = eccentricity g v in
      if better e !best_e then begin
        best_v := v;
        best_e := e
      end
    done;
    (!best_v, !best_e)
  end

let diameter g = snd (extreme_eccentricity ~better:(fun a b -> a > b) g)
let radius g = snd (extreme_eccentricity ~better:(fun a b -> a < b) g)
let center g = fst (extreme_eccentricity ~better:(fun a b -> a < b) g)

let bfs_tree g src =
  let n = Graph.order g in
  let _, parent = distances_with_parents g src in
  for v = 0 to n - 1 do
    if v <> src && parent.(v) = -1 then
      invalid_arg "Bfs.bfs_tree: graph is not connected"
  done;
  (* Children of each vertex, by increasing id (parent arrays already
     break ties by smallest port; child order here is by vertex id). *)
  let children = Array.make n [] in
  for v = n - 1 downto 0 do
    if v <> src then children.(parent.(v)) <- v :: children.(parent.(v))
  done;
  let adj =
    Array.init n (fun v ->
        let kids = Array.of_list children.(v) in
        if v = src then kids else Array.append [| parent.(v) |] kids)
  in
  Graph.of_adjacency adj

let count_shortest_paths g u v =
  let dist = distances g u in
  if dist.(v) = infinity then 0
  else begin
    (* Count by dynamic programming over vertices sorted by distance. *)
    let n = Graph.order g in
    let order = Array.init n (fun i -> i) in
    Array.sort (fun a b -> compare dist.(a) dist.(b)) order;
    let count = Array.make n 0 in
    count.(u) <- 1;
    Array.iter
      (fun x ->
        if count.(x) > 0 then
          Array.iter
            (fun w -> if dist.(w) = dist.(x) + 1 then count.(w) <- count.(w) + count.(x))
            (Graph.neighbors g x))
      order;
    count.(v)
  end
