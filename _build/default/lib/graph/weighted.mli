(** Graphs with positive integer arc costs.

    The paper's model is uniform-cost, but two of Table 1's cited
    schemes (Awerbuch et al. [1]; Awerbuch & Peleg [2]) "allow
    non-uniform cost on the arcs"; this module provides the weighted
    substrate for those comparisons. Costs are symmetric per edge. *)

type t

val of_graph : Graph.t -> (Graph.vertex -> Graph.port -> int) -> t
(** [of_graph g cost] attaches [cost v k > 0] to the arc on port [k] of
    [v]. Raises [Invalid_argument] if costs are not positive or the two
    arcs of an edge disagree. *)

val uniform : Graph.t -> t
(** All edges cost 1 — distances coincide with BFS hop counts. *)

val random : Random.State.t -> max_cost:int -> Graph.t -> t
(** Uniform edge costs in [1 .. max_cost]. *)

val graph : t -> Graph.t
val cost : t -> Graph.vertex -> Graph.port -> int

val edge_cost : t -> Graph.vertex -> Graph.vertex -> int
(** Cost of the edge between two adjacent vertices. *)

val dijkstra : t -> Graph.vertex -> int array
(** Single-source weighted distances ([Bfs.infinity] when
    unreachable). *)

val all_pairs : t -> int array array

val path_cost : t -> Graph.vertex list -> int
(** Total cost along a path of adjacent vertices. *)

val shortest_path : t -> Graph.vertex -> Graph.vertex -> Graph.vertex list option
