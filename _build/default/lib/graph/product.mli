(** Cartesian graph products.

    Hypercubes, meshes and tori are all cartesian products of paths /
    cycles / [K_2] — used by the test suite to validate the dedicated
    generators against an independent construction. *)

val cartesian : Graph.t -> Graph.t -> Graph.t
(** [cartesian g h]: vertex [(a, b)] is the integer [b * order g + a];
    [(a,b) ~ (a',b')] iff ([a = a'] and [b ~ b']) or ([b = b'] and
    [a ~ a']). Ports: the [g]-dimension arcs first (in [g]'s port
    order), then the [h]-dimension arcs. *)

val power : Graph.t -> int -> Graph.t
(** [power g k] is the [k]-fold cartesian product of [g] with itself
    ([k >= 1]). [power (complete 2) k] is the [k]-cube. *)
