lib/graph/stats.mli:
