lib/graph/graph_io.ml: Array Buffer Fun Graph List String
