lib/graph/generators.ml: Array Float Fun Graph Hashtbl Int List Perm Random Set
