lib/graph/product.ml: Array Graph
