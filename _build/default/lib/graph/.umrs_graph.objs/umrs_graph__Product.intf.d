lib/graph/product.mli: Graph
