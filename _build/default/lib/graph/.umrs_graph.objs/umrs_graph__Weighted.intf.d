lib/graph/weighted.mli: Graph Random
