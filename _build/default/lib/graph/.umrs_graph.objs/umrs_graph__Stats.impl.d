lib/graph/stats.ml: Array Float List Printf
