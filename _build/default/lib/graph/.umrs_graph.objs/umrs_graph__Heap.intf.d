lib/graph/heap.mli:
