lib/graph/props.ml: Array Fun Graph Hashtbl List Option Queue
