lib/graph/cover.mli: Graph
