lib/graph/parallel.ml: Array Bfs Domain Graph List Weighted
