lib/graph/cover.ml: Array Bfs Graph Hashtbl List
