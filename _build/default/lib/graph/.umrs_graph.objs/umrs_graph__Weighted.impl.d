lib/graph/weighted.ml: Array Bfs Graph Hashtbl Heap Random
