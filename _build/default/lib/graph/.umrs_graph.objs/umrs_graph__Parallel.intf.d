lib/graph/parallel.mli: Graph Weighted
