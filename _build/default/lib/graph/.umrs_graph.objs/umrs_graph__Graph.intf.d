lib/graph/graph.mli: Format Perm
