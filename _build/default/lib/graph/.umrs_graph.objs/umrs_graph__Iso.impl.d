lib/graph/iso.ml: Array Graph List
