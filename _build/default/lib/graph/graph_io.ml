let to_string g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (string_of_int (Graph.order g));
  Buffer.add_char buf '\n';
  for v = 0 to Graph.order g - 1 do
    let row = Graph.neighbors g v in
    Buffer.add_string buf
      (String.concat " " (List.map string_of_int (Array.to_list row)));
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let of_string s =
  (* keep blank lines: an isolated vertex has an empty row; only strip
     comment lines and a trailing newline *)
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> String.length l = 0 || l.[0] <> '#')
  in
  match lines with
  | [] -> invalid_arg "Graph_io.of_string: empty input"
  | header :: rest ->
    let n =
      try int_of_string (String.trim header)
      with Failure _ -> invalid_arg "Graph_io.of_string: bad header"
    in
    let rows = Array.of_list rest in
    if Array.length rows < n then
      invalid_arg "Graph_io.of_string: missing adjacency rows";
    let adj =
      Array.init n (fun v ->
          String.split_on_char ' ' rows.(v)
          |> List.filter (( <> ) "")
          |> List.map int_of_string
          |> Array.of_list)
    in
    Graph.of_adjacency adj

let save g ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string g))

let load ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
