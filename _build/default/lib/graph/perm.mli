(** Permutations of [{0, ..., n-1}], represented as arrays [p] where
    [p.(i)] is the image of [i].

    Used throughout the suite: port relabellings of graphs, the row /
    column / entry permutations defining the equivalence of matrices of
    constraints, and Lehmer-code ranking for bit-exact permutation
    encodings. *)

type t = int array

val identity : int -> t
(** [identity n] is the identity permutation on [{0..n-1}]. *)

val is_valid : t -> bool
(** [is_valid p] checks that [p] is a bijection of [{0..n-1}]. *)

val inverse : t -> t
(** [inverse p] is the permutation [q] with [q.(p.(i)) = i]. *)

val compose : t -> t -> t
(** [compose p q] maps [i] to [p.(q.(i))] (apply [q] first). *)

val apply : t -> int -> int
(** [apply p i] is [p.(i)]; raises [Invalid_argument] out of range. *)

val of_list : int list -> t
(** [of_list l] builds a permutation, validating it. *)

val random : Random.State.t -> int -> t
(** [random st n] draws a uniform permutation (Fisher-Yates). *)

val next : t -> bool
(** [next p] advances [p] in place to the lexicographically next
    permutation, returning [false] (and leaving [p] sorted ascending)
    when [p] was the last one. Start from [identity n] to enumerate all
    [n!] permutations. *)

val iter_all : int -> (t -> unit) -> unit
(** [iter_all n f] calls [f] on every permutation of [{0..n-1}] in
    lexicographic order. The array passed to [f] is reused; copy it if
    you keep it. *)

val fold_all : int -> ('a -> t -> 'a) -> 'a -> 'a
(** [fold_all n f init] folds [f] over all permutations of [{0..n-1}]. *)

val rank : t -> int
(** [rank p] is the Lehmer rank of [p] in [0 .. n!-1] (lexicographic).
    Requires [n <= 20] to fit in an [int]. *)

val unrank : int -> int -> t
(** [unrank n r] is the permutation of [{0..n-1}] with Lehmer rank [r]. *)

val factorial : int -> int
(** [factorial n] for [n <= 20]. *)

val count_inversions : t -> int
(** [count_inversions p] is the number of pairs [i < j] with
    [p.(i) > p.(j)]. *)

val pp : Format.formatter -> t -> unit
