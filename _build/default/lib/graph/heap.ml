type 'a t = {
  mutable keys : int array;
  mutable data : 'a option array;
  mutable len : int;
}

let create () = { keys = Array.make 16 0; data = Array.make 16 None; len = 0 }

let is_empty h = h.len = 0
let size h = h.len

let swap h i j =
  let k = h.keys.(i) in
  h.keys.(i) <- h.keys.(j);
  h.keys.(j) <- k;
  let d = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- d

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.keys.(parent) > h.keys.(i) then begin
      swap h parent i;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.len && h.keys.(l) < h.keys.(!smallest) then smallest := l;
  if r < h.len && h.keys.(r) < h.keys.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h ~priority x =
  if h.len = Array.length h.keys then begin
    let cap = 2 * h.len in
    let keys = Array.make cap 0 and data = Array.make cap None in
    Array.blit h.keys 0 keys 0 h.len;
    Array.blit h.data 0 data 0 h.len;
    h.keys <- keys;
    h.data <- data
  end;
  h.keys.(h.len) <- priority;
  h.data.(h.len) <- Some x;
  h.len <- h.len + 1;
  sift_up h (h.len - 1)

let pop_min h =
  if h.len = 0 then None
  else begin
    let key = h.keys.(0) in
    let value =
      match h.data.(0) with Some v -> v | None -> assert false
    in
    h.len <- h.len - 1;
    h.keys.(0) <- h.keys.(h.len);
    h.data.(0) <- h.data.(h.len);
    h.data.(h.len) <- None;
    if h.len > 0 then sift_down h 0;
    Some (key, value)
  end

let peek_min h =
  if h.len = 0 then None
  else
    match h.data.(0) with
    | Some v -> Some (h.keys.(0), v)
    | None -> assert false
