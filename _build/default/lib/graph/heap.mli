(** Minimal binary min-heap on integer priorities, for Dijkstra.

    Supports decrease-key implicitly through lazy deletion: push the
    same element again with a smaller priority and ignore stale pops. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> priority:int -> 'a -> unit

val pop_min : 'a t -> (int * 'a) option
(** Removes and returns the (priority, element) pair with the smallest
    priority; [None] on an empty heap. Ties broken arbitrarily. *)

val peek_min : 'a t -> (int * 'a) option
