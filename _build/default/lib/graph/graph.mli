(** Finite connected symmetric digraphs with locally labelled output
    ports — the network model of Fraigniaud & Gavoille (1996).

    Vertices are integers [0 .. n-1]. Each vertex [v] has [degree g v]
    output ports labelled [1 .. degree g v] (1-based, as in the paper);
    port [k] of [v] leads to the neighbour [neighbor g v ~port:k]. Every
    edge [{u,v}] is represented by the two symmetric arcs [(u,v)] and
    [(v,u)], each with its own local port label. Graphs are simple (no
    loops, no multi-edges). *)

type t

type vertex = int
type port = int (** 1-based local output-port label. *)

(** {1 Construction} *)

val of_edges : n:int -> (vertex * vertex) list -> t
(** [of_edges ~n edges] builds the graph on [n] vertices with the given
    undirected edges. Port labels at each vertex follow the order in
    which its incident edges appear in [edges]. Raises
    [Invalid_argument] on loops, duplicate edges, or out-of-range
    endpoints. *)

val of_adjacency : vertex array array -> t
(** [of_adjacency adj] takes [adj.(v)] = neighbours of [v] in port order
    (index [k] = port [k+1]). Validates simplicity and symmetry. *)

val empty : int -> t
(** [empty n] is the edgeless graph on [n] vertices (not connected for
    [n > 1]; useful as a builder seed). *)

(** {1 Accessors} *)

val order : t -> int
(** Number of vertices, [n]. *)

val size : t -> int
(** Number of (undirected) edges. *)

val degree : t -> vertex -> int
val max_degree : t -> int

val neighbor : t -> vertex -> port:port -> vertex
(** [neighbor g v ~port] is the head of the arc leaving [v] on [port].
    Raises [Invalid_argument] if [port] is not in [1 .. degree g v]. *)

val neighbors : t -> vertex -> vertex array
(** Fresh array of the neighbours of [v], in port order. *)

val port_to : t -> src:vertex -> dst:vertex -> port option
(** The local port of [src] whose arc leads to [dst], if adjacent. *)

val mem_edge : t -> vertex -> vertex -> bool

val iter_arcs : t -> (vertex -> port -> vertex -> unit) -> unit
(** [iter_arcs g f] calls [f u k v] for every arc: [v] is on port [k]
    of [u]. Each edge is visited twice, once per direction. *)

val edges : t -> (vertex * vertex) list
(** Each undirected edge once, as [(u, v)] with [u < v]. *)

val fold_vertices : t -> ('a -> vertex -> 'a) -> 'a -> 'a

(** {1 Transformations} *)

val relabel_ports : t -> Perm.t array -> t
(** [relabel_ports g perms]: [perms.(v)] is a permutation of
    [{0 .. degree g v - 1}]; the neighbour previously on (0-based) port
    index [k] of [v] moves to port index [perms.(v).(k)]. Vertex names
    are unchanged. *)

val permute_vertices : t -> Perm.t -> t
(** [permute_vertices g p] renames vertex [v] to [p.(v)], preserving
    each vertex's port order. *)

val attach_path : t -> anchor:vertex -> len:int -> t
(** [attach_path g ~anchor ~len] appends a fresh path of [len] vertices
    [n, n+1, ..., n+len-1], connecting [anchor] to vertex [n]. The new
    arc gets the last port of [anchor]. Used by Theorem 1 to pad a graph
    of constraints to order exactly [n]. *)

val disjoint_union : t -> t -> t
(** Vertices of the second graph are shifted by [order] of the first. *)

val add_edge : t -> vertex -> vertex -> t
(** Functional edge addition; the new arc gets the last port at each
    endpoint. Raises [Invalid_argument] on loops / duplicates. *)

(** {1 Predicates} *)

val is_connected : t -> bool

val equal : t -> t -> bool
(** Structural equality including port labels. *)

val pp : Format.formatter -> t -> unit
(** Multi-line dump: one line per vertex with its port-ordered
    neighbour list. *)
