let cartesian g h =
  let ng = Graph.order g and nh = Graph.order h in
  if ng = 0 || nh = 0 then invalid_arg "Product.cartesian: empty factor";
  let id a b = (b * ng) + a in
  let adj =
    Array.init (ng * nh) (fun v ->
        let a = v mod ng and b = v / ng in
        Array.append
          (Array.map (fun a' -> id a' b) (Graph.neighbors g a))
          (Array.map (fun b' -> id a b') (Graph.neighbors h b)))
  in
  Graph.of_adjacency adj

let rec power g k =
  if k < 1 then invalid_arg "Product.power: need k >= 1"
  else if k = 1 then g
  else cartesian (power g (k - 1)) g
