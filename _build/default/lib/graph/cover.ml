type cluster = {
  center : Graph.vertex;
  radius : int;
  members : Graph.vertex array;
}

type t = { r : int; clusters : cluster array; home : int array }

let ball_members dist limit =
  let acc = ref [] in
  Array.iteri (fun v d -> if d <= limit then acc := v :: !acc) dist;
  Array.of_list (List.rev !acc)

let build g ~r =
  if r < 0 then invalid_arg "Cover.build: negative radius";
  if not (Graph.is_connected g) then
    invalid_arg "Cover.build: need a connected graph";
  let n = Graph.order g in
  let home = Array.make n (-1) in
  let clusters = ref [] in
  let count = ref 0 in
  for v = 0 to n - 1 do
    if home.(v) = -1 then begin
      let dist = Bfs.distances g v in
      (* grow: rho += r while the (rho+r)-ball more than doubles the
         rho-ball *)
      let size limit =
        Array.fold_left (fun acc d -> if d <= limit then acc + 1 else acc) 0 dist
      in
      let rho = ref 0 in
      while size (!rho + r) > 2 * size !rho do
        rho := !rho + r
      done;
      let c =
        { center = v; radius = !rho + r; members = ball_members dist (!rho + r) }
      in
      let idx = !count in
      incr count;
      clusters := c :: !clusters;
      (* serve the unserved core: their r-balls fit inside the cluster *)
      Array.iteri
        (fun u d -> if d <= !rho && home.(u) = -1 then home.(u) <- idx)
        dist
    end
  done;
  { r; clusters = Array.of_list (List.rev !clusters); home }

let max_cluster_radius t =
  Array.fold_left (fun acc c -> max acc c.radius) 0 t.clusters

let max_membership g t =
  let n = Graph.order g in
  let count = Array.make n 0 in
  Array.iter
    (fun c -> Array.iter (fun v -> count.(v) <- count.(v) + 1) c.members)
    t.clusters;
  Array.fold_left max 0 count

let covers_balls g t =
  let n = Graph.order g in
  let ok = ref true in
  for v = 0 to n - 1 do
    let c = t.clusters.(t.home.(v)) in
    let inside = Hashtbl.create (Array.length c.members) in
    Array.iter (fun m -> Hashtbl.replace inside m ()) c.members;
    let dist = Bfs.distances g v in
    for u = 0 to n - 1 do
      if dist.(u) <= t.r && not (Hashtbl.mem inside u) then ok := false
    done
  done;
  !ok
