(** Graph isomorphism for small graphs (backtracking with degree and
    neighbourhood pruning; fine up to a few dozen vertices).

    Used to validate constructions against independent ones (e.g. the
    hypercube generator vs a product of [K_2]'s) — port labels are
    ignored, only the adjacency structure matters. *)

val find : Graph.t -> Graph.t -> Perm.t option
(** [find g h] is a vertex bijection [f] with
    [u ~ v  <=>  f u ~ f v], if one exists. *)

val are_isomorphic : Graph.t -> Graph.t -> bool
