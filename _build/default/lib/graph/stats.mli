(** Small summary-statistics helpers used by the simulator and the
    benchmark reports. All functions tolerate unsorted input. *)

val mean : float array -> float
(** Raises [Invalid_argument] on empty input. *)

val stddev : float array -> float
(** Sample standard deviation (n-1 denominator); 0 for singletons. *)

val percentile : float array -> p:float -> float
(** [percentile xs ~p] for [0 <= p <= 100], nearest-rank on the sorted
    copy. *)

val median : float array -> float

val minimum : float array -> float
val maximum : float array -> float

val histogram : float array -> buckets:int -> (float * float * int) list
(** [(lo, hi, count)] per bucket over the value range; the last bucket
    is closed. Requires [buckets >= 1]. *)

val summary : float array -> string
(** One line: [n mean stddev min p50 p99 max]. *)
