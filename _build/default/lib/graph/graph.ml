type vertex = int
type port = int

type t = { adj : vertex array array }

let order g = Array.length g.adj
let degree g v = Array.length g.adj.(v)

let size g =
  let s = Array.fold_left (fun acc row -> acc + Array.length row) 0 g.adj in
  s / 2

let max_degree g = Array.fold_left (fun m row -> max m (Array.length row)) 0 g.adj

let check_simple_symmetric adj =
  let n = Array.length adj in
  Array.iteri
    (fun v row ->
      let seen = Hashtbl.create (Array.length row) in
      Array.iter
        (fun w ->
          if w < 0 || w >= n then invalid_arg "Graph: endpoint out of range";
          if w = v then invalid_arg "Graph: loop";
          if Hashtbl.mem seen w then invalid_arg "Graph: duplicate edge";
          Hashtbl.add seen w ();
          if not (Array.exists (fun x -> x = v) adj.(w)) then
            invalid_arg "Graph: not symmetric")
        row)
    adj

let of_adjacency adj =
  let adj = Array.map Array.copy adj in
  check_simple_symmetric adj;
  { adj }

let empty n =
  if n < 0 then invalid_arg "Graph.empty";
  { adj = Array.init n (fun _ -> [||]) }

let of_edges ~n edges =
  if n < 0 then invalid_arg "Graph.of_edges: negative order";
  let deg = Array.make n 0 in
  let check (u, v) =
    if u < 0 || u >= n || v < 0 || v >= n then
      invalid_arg "Graph.of_edges: endpoint out of range";
    if u = v then invalid_arg "Graph.of_edges: loop"
  in
  List.iter
    (fun (u, v) ->
      check (u, v);
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    edges;
  let adj = Array.init n (fun v -> Array.make deg.(v) (-1)) in
  let fill = Array.make n 0 in
  List.iter
    (fun (u, v) ->
      adj.(u).(fill.(u)) <- v;
      fill.(u) <- fill.(u) + 1;
      adj.(v).(fill.(v)) <- u;
      fill.(v) <- fill.(v) + 1)
    edges;
  check_simple_symmetric adj;
  { adj }

let neighbor g v ~port =
  if v < 0 || v >= order g then invalid_arg "Graph.neighbor: bad vertex";
  if port < 1 || port > degree g v then invalid_arg "Graph.neighbor: bad port";
  g.adj.(v).(port - 1)

let neighbors g v = Array.copy g.adj.(v)

let port_to g ~src ~dst =
  let row = g.adj.(src) in
  let rec find k =
    if k >= Array.length row then None
    else if row.(k) = dst then Some (k + 1)
    else find (k + 1)
  in
  find 0

let mem_edge g u v = port_to g ~src:u ~dst:v <> None

let iter_arcs g f =
  Array.iteri (fun u row -> Array.iteri (fun k v -> f u (k + 1) v) row) g.adj

let edges g =
  let acc = ref [] in
  iter_arcs g (fun u _ v -> if u < v then acc := (u, v) :: !acc);
  List.rev !acc

let fold_vertices g f init =
  let acc = ref init in
  for v = 0 to order g - 1 do
    acc := f !acc v
  done;
  !acc

let relabel_ports g perms =
  if Array.length perms <> order g then
    invalid_arg "Graph.relabel_ports: need one permutation per vertex";
  let adj =
    Array.mapi
      (fun v row ->
        let p = perms.(v) in
        if Array.length p <> Array.length row || not (Perm.is_valid p) then
          invalid_arg "Graph.relabel_ports: invalid permutation";
        let row' = Array.make (Array.length row) (-1) in
        Array.iteri (fun k w -> row'.(p.(k)) <- w) row;
        row')
      g.adj
  in
  { adj }

let permute_vertices g p =
  if Array.length p <> order g || not (Perm.is_valid p) then
    invalid_arg "Graph.permute_vertices: invalid permutation";
  let n = order g in
  let adj = Array.make n [||] in
  for v = 0 to n - 1 do
    adj.(p.(v)) <- Array.map (fun w -> p.(w)) g.adj.(v)
  done;
  { adj }

let attach_path g ~anchor ~len =
  if len < 0 then invalid_arg "Graph.attach_path: negative length";
  if len = 0 then g
  else begin
    let n = order g in
    if anchor < 0 || anchor >= n then invalid_arg "Graph.attach_path: anchor";
    let adj =
      Array.init (n + len) (fun v ->
          if v < n then
            if v = anchor then Array.append g.adj.(v) [| n |]
            else Array.copy g.adj.(v)
          else begin
            let prev = if v = n then anchor else v - 1 in
            if v = n + len - 1 then [| prev |] else [| prev; v + 1 |]
          end)
    in
    { adj }
  end

let disjoint_union g1 g2 =
  let n1 = order g1 in
  let adj =
    Array.append
      (Array.map Array.copy g1.adj)
      (Array.map (Array.map (fun w -> w + n1)) g2.adj)
  in
  { adj }

let add_edge g u v =
  let n = order g in
  if u < 0 || u >= n || v < 0 || v >= n then invalid_arg "Graph.add_edge: range";
  if u = v then invalid_arg "Graph.add_edge: loop";
  if mem_edge g u v then invalid_arg "Graph.add_edge: duplicate";
  let adj =
    Array.mapi
      (fun x row ->
        if x = u then Array.append row [| v |]
        else if x = v then Array.append row [| u |]
        else Array.copy row)
      g.adj
  in
  { adj }

let is_connected g =
  let n = order g in
  if n = 0 then true
  else begin
    let seen = Array.make n false in
    let queue = Queue.create () in
    Queue.add 0 queue;
    seen.(0) <- true;
    let count = ref 1 in
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      Array.iter
        (fun w ->
          if not seen.(w) then begin
            seen.(w) <- true;
            incr count;
            Queue.add w queue
          end)
        g.adj.(v)
    done;
    !count = n
  end

let equal g1 g2 =
  order g1 = order g2
  && Array.for_all2 (fun r1 r2 -> r1 = r2) g1.adj g2.adj

let pp fmt g =
  Format.fprintf fmt "@[<v>graph on %d vertices, %d edges@," (order g) (size g);
  Array.iteri
    (fun v row ->
      Format.fprintf fmt "%d: %a@," v
        (Format.pp_print_array
           ~pp_sep:(fun f () -> Format.pp_print_string f " ")
           Format.pp_print_int)
        row)
    g.adj;
  Format.fprintf fmt "@]"
