(** Routing over a greedy [(2k-1)]-spanner: full next-hop tables are
    kept only for the spanner subgraph, trading stretch [2k-1] for a
    per-entry width of [ceil(log2 deg_H)] instead of
    [ceil(log2 deg_G)] — the table-based end of the space/efficiency
    tradeoff of Peleg & Upfal and Table 1's [s >= 3] rows.

    Following Section 1 (the scheme picks the arc labelling), the host
    graph's ports are relabelled so that each vertex's spanner
    neighbours occupy its first ports in spanner order; routers then
    store nothing but their spanner table. The returned routing function
    runs on the relabelled (isomorphic) host graph. *)

open Umrs_graph

val build : k:int -> Graph.t -> Scheme.built
(** Stretch at most [2k-1]; [k = 1] degenerates to plain tables. *)

val scheme : k:int -> Scheme.t
(** Named ["spanner-<2k-1>"]. *)
