open Umrs_graph
open Umrs_bitcode

let runs_of table ~skip =
  (* the port sequence over destinations <> skip, as (port, length) runs *)
  let runs = ref [] in
  Array.iteri
    (fun dst port ->
      if dst <> skip then begin
        match !runs with
        | (p, len) :: rest when p = port -> runs := (p, len + 1) :: rest
        | _ -> runs := (port, 1) :: !runs
      end)
    table;
  List.rev !runs

let encode_table ~degree table ~skip =
  let buf = Bitbuf.create () in
  let runs = runs_of table ~skip in
  Codes.write_gamma buf (List.length runs + 1);
  let width = Codes.ceil_log2 (max 2 degree) in
  List.iter
    (fun (port, len) ->
      Codes.write_fixed buf (port - 1) ~width;
      Codes.write_gamma buf len)
    runs;
  buf

let decode_table buf ~order ~degree ~self =
  let r = Bitbuf.reader buf in
  let nruns = Codes.read_gamma r - 1 in
  let width = Codes.ceil_log2 (max 2 degree) in
  let table = Array.make order 0 in
  let dst = ref 0 in
  let skip () = if !dst = self then incr dst in
  for _ = 1 to nruns do
    let port = 1 + Codes.read_fixed r ~width in
    let len = Codes.read_gamma r in
    for _ = 1 to len do
      skip ();
      table.(!dst) <- port;
      incr dst
    done
  done;
  skip ();
  if !dst <> order then invalid_arg "Compressed_tables.decode_table: length";
  table

let build g =
  let m = Table_scheme.next_hop_matrix g in
  let rf = Routing_function.of_next_hop g (fun u v -> m.(u).(v)) in
  {
    Scheme.rf;
    local_encoding =
      (fun v -> encode_table ~degree:(Graph.degree g v) m.(v) ~skip:v);
    description = "run-length-compressed shortest-path tables";
  }

let scheme =
  { Scheme.name = "tables-rle"; stretch_bound = Some 1.0; build }

let compression_ratio g =
  let rle = Scheme.mem_global (build g) in
  let plain = Scheme.mem_global (Table_scheme.build g) in
  if plain = 0 then 1.0 else float_of_int rle /. float_of_int plain
