open Umrs_graph
open Umrs_bitcode

let log2_exact n =
  let d = Codes.ceil_log2 n in
  if 1 lsl d <> n then invalid_arg "not a power of two";
  d

(* ---------- e-cube on hypercubes ---------- *)

let validate_hypercube g =
  let n = Graph.order g in
  if n < 1 then invalid_arg "ecube: empty graph";
  let dim = log2_exact n in
  for v = 0 to n - 1 do
    if Graph.degree g v <> dim then invalid_arg "ecube: not a hypercube";
    for k = 1 to dim do
      if Graph.neighbor g v ~port:k <> v lxor (1 lsl (k - 1)) then
        invalid_arg "ecube: ports must flip bit (port-1)"
    done
  done;
  dim

let lowest_bit_index x =
  let rec go i = if (x lsr i) land 1 = 1 then i else go (i + 1) in
  if x = 0 then invalid_arg "lowest_bit_index: zero" else go 0

let build_ecube g =
  let dim = validate_hypercube g in
  let rf =
    Routing_function.of_next_hop g (fun u v ->
        1 + lowest_bit_index (u lxor v))
  in
  {
    Scheme.rf;
    local_encoding =
      (fun v ->
        let buf = Bitbuf.create () in
        Codes.write_gamma buf (dim + 1);
        if dim > 0 then Codes.write_fixed buf v ~width:dim;
        buf);
    description = "e-cube (dimension-order) hypercube routing";
  }

let ecube =
  { Scheme.name = "ecube"; stretch_bound = Some 1.0; build = build_ecube }

(* ---------- rings ---------- *)

let validate_cycle g =
  let n = Graph.order g in
  if n < 3 then invalid_arg "ring: need a cycle";
  for v = 0 to n - 1 do
    if Graph.degree g v <> 2 then invalid_arg "ring: not a cycle";
    let nb = Graph.neighbors g v in
    let expect = [ (v + 1) mod n; (v + n - 1) mod n ] in
    if List.sort compare (Array.to_list nb) <> List.sort compare expect then
      invalid_arg "ring: vertices must be labelled consecutively"
  done

let build_ring g =
  validate_cycle g;
  let n = Graph.order g in
  let next u v =
    let cw = (v - u + n) mod n in
    let target = if 2 * cw <= n then (u + 1) mod n else (u + n - 1) mod n in
    match Graph.port_to g ~src:u ~dst:target with
    | Some k -> k
    | None -> assert false
  in
  let rf = Routing_function.of_next_hop g next in
  {
    Scheme.rf;
    local_encoding =
      (fun v ->
        let buf = Bitbuf.create () in
        Codes.write_delta buf n;
        Codes.write_bounded buf v ~bound:n;
        (* which local port leads clockwise: 1 bit *)
        Bitbuf.add_bit buf
          (Graph.neighbor g v ~port:1 = (v + 1) mod n);
        buf);
    description = "shorter-side ring routing";
  }

let ring = { Scheme.name = "ring"; stretch_bound = Some 1.0; build = build_ring }

(* ---------- meshes ---------- *)

let build_grid ~w ~h g =
  if Graph.order g <> w * h then invalid_arg "grid: order mismatch";
  let coord v = (v mod w, v / w) in
  let id x y = (y * w) + x in
  (* validate adjacency *)
  Graph.iter_arcs g (fun u _ v ->
      let ux, uy = coord u and vx, vy = coord v in
      if abs (ux - vx) + abs (uy - vy) <> 1 then
        invalid_arg "grid: not a mesh labelling");
  if Graph.size g <> ((w - 1) * h) + ((h - 1) * w) then
    invalid_arg "grid: wrong edge count";
  let next u v =
    let ux, uy = coord u and vx, vy = coord v in
    let target =
      if ux < vx then id (ux + 1) uy
      else if ux > vx then id (ux - 1) uy
      else if uy < vy then id ux (uy + 1)
      else id ux (uy - 1)
    in
    match Graph.port_to g ~src:u ~dst:target with
    | Some k -> k
    | None -> assert false
  in
  let rf = Routing_function.of_next_hop g next in
  {
    Scheme.rf;
    local_encoding =
      (fun v ->
        let buf = Bitbuf.create () in
        Codes.write_delta buf w;
        Codes.write_delta buf h;
        Codes.write_bounded buf v ~bound:(w * h);
        (* direction of each port: 2 bits per incident arc (<= 4) *)
        Array.iter
          (fun nb ->
            let vx, vy = coord v and nx, ny = coord nb in
            let dir =
              if nx > vx then 0
              else if nx < vx then 1
              else if ny > vy then 2
              else 3
            in
            Codes.write_fixed buf dir ~width:2)
          (Graph.neighbors g v);
        buf);
    description = "dimension-order (X then Y) mesh routing";
  }

let grid ~w ~h =
  {
    Scheme.name = Printf.sprintf "grid-%dx%d" w h;
    stretch_bound = Some 1.0;
    build = build_grid ~w ~h;
  }

(* ---------- k-dimensional torus ---------- *)

let build_torus_dor ~dims g =
  if dims = [] then invalid_arg "torus_dor: no dimensions";
  let dims_a = Array.of_list dims in
  let k = Array.length dims_a in
  let n = Array.fold_left ( * ) 1 dims_a in
  if Graph.order g <> n then invalid_arg "torus_dor: order mismatch";
  let coords v =
    let c = Array.make k 0 in
    let rest = ref v in
    for i = 0 to k - 1 do
      c.(i) <- !rest mod dims_a.(i);
      rest := !rest / dims_a.(i)
    done;
    c
  in
  (* validate the port convention *)
  for v = 0 to n - 1 do
    if Graph.degree g v <> 2 * k then invalid_arg "torus_dor: wrong degree";
    let c = coords v in
    for i = 0 to k - 1 do
      let fwd = Graph.neighbor g v ~port:((2 * i) + 1) in
      let bwd = Graph.neighbor g v ~port:((2 * i) + 2) in
      let cf = coords fwd and cb = coords bwd in
      if cf.(i) <> (c.(i) + 1) mod dims_a.(i) || cb.(i) <> (c.(i) + dims_a.(i) - 1) mod dims_a.(i)
      then invalid_arg "torus_dor: unexpected port wiring";
      for j = 0 to k - 1 do
        if j <> i && (cf.(j) <> c.(j) || cb.(j) <> c.(j)) then
          invalid_arg "torus_dor: unexpected port wiring"
      done
    done
  done;
  let next u v =
    let cu = coords u and cv = coords v in
    let rec dim i =
      if i >= k then invalid_arg "torus_dor: next on equal coords"
      else if cu.(i) <> cv.(i) then i
      else dim (i + 1)
    in
    let i = dim 0 in
    let forward = (cv.(i) - cu.(i) + dims_a.(i)) mod dims_a.(i) in
    if 2 * forward <= dims_a.(i) then (2 * i) + 1 else (2 * i) + 2
  in
  let rf = Routing_function.of_next_hop g next in
  {
    Scheme.rf;
    local_encoding =
      (fun v ->
        let buf = Bitbuf.create () in
        Codes.write_gamma buf (k + 1);
        List.iter (fun d -> Codes.write_delta buf d) dims;
        Codes.write_bounded buf v ~bound:n;
        buf);
    description =
      Printf.sprintf "dimension-order routing on a %d-dimensional torus" k;
  }

let torus_dor_vc_dependencies ~dims g =
  let b = build_torus_dor ~dims g in
  let rf = b.Scheme.rf in
  let dims_a = Array.of_list dims in
  let k = Array.length dims_a in
  let coords v =
    let c = Array.make k 0 in
    let rest = ref v in
    for i = 0 to k - 1 do
      c.(i) <- !rest mod dims_a.(i);
      rest := !rest / dims_a.(i)
    done;
    c
  in
  let n = Graph.order g in
  let deps = Hashtbl.create 256 in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v then begin
        let path = (Routing_function.route rf u v).Routing_function.path in
        (* annotate each hop with (dimension, wrapped-before-this-hop) *)
        let wrapped = Array.make k false in
        let channel x y =
          let cx = coords x and cy = coords y in
          let rec dim i = if cx.(i) <> cy.(i) then i else dim (i + 1) in
          let i = dim 0 in
          let vc = if wrapped.(i) then 1 else 0 in
          let is_wrap = abs (cx.(i) - cy.(i)) > 1 in
          if is_wrap then wrapped.(i) <- true;
          let port =
            match Graph.port_to g ~src:x ~dst:y with
            | Some p -> p
            | None -> assert false
          in
          (x, port, vc)
        in
        let rec walk prev = function
          | x :: (y :: _ as rest) ->
            let c = channel x y in
            (match prev with
            | Some p -> Hashtbl.replace deps (p, c) ()
            | None -> ());
            walk (Some c) rest
          | _ -> ()
        in
        walk None path
      end
    done
  done;
  List.sort compare (Hashtbl.fold (fun d () acc -> d :: acc) deps [])

let torus_dor_vc_deadlock_free ~dims g =
  Deadlock.acyclic (torus_dor_vc_dependencies ~dims g)

let torus_dor ~dims =
  {
    Scheme.name =
      "torus-dor-"
      ^ String.concat "x" (List.map string_of_int dims);
    stretch_bound = Some 1.0;
    build = build_torus_dor ~dims;
  }

(* ---------- complete graphs ---------- *)

let validate_complete_sorted g =
  let n = Graph.order g in
  for v = 0 to n - 1 do
    if Graph.degree g v <> n - 1 then invalid_arg "complete: not K_n";
    Array.iteri
      (fun k w ->
        let expect = if k < v then k else k + 1 in
        if w <> expect then
          invalid_arg "complete: ports must be sorted by neighbour label")
      (Graph.neighbors g v)
  done

let build_complete_direct g =
  validate_complete_sorted g;
  let n = Graph.order g in
  let next u v = if v < u then v + 1 else v in
  let rf = Routing_function.of_next_hop g next in
  {
    Scheme.rf;
    local_encoding =
      (fun v ->
        let buf = Bitbuf.create () in
        Codes.write_delta buf n;
        Codes.write_bounded buf v ~bound:n;
        buf);
    description = "direct K_n routing under sorted port labelling";
  }

let complete_direct =
  {
    Scheme.name = "complete-direct";
    stretch_bound = Some 1.0;
    build = build_complete_direct;
  }

let build_complete_adversarial st g =
  validate_complete_sorted g;
  let n = Graph.order g in
  let perms = Array.init n (fun _ -> Perm.random st (n - 1)) in
  let g' = Graph.relabel_ports g perms in
  (* With sorted ports, neighbour v sat on 0-based index (v or v-1);
     after relabelling it sits on perms.(u) applied to that index. *)
  let next u v =
    let sorted_index = if v < u then v else v - 1 in
    perms.(u).(sorted_index) + 1
  in
  let rf = Routing_function.of_next_hop g' next in
  {
    Scheme.rf;
    local_encoding =
      (fun v ->
        let buf = Bitbuf.create () in
        Codes.write_delta buf n;
        Codes.write_bounded buf v ~bound:n;
        if n - 1 <= 20 then Rank.write_permutation buf perms.(v)
        else begin
          (* table fallback: (n-1) entries of ceil(log2 (n-1)) bits *)
          let width = Codes.ceil_log2 (n - 1) in
          Array.iter (fun x -> Codes.write_fixed buf x ~width) perms.(v)
        end;
        buf);
    description = "K_n routing under adversarial port labelling";
  }
