open Umrs_graph
open Umrs_bitcode

(* Per-cluster tree data for one member vertex. *)
type node = {
  parent_port : Graph.port; (* 0 at the root *)
  dfs : int;
  children : (Graph.port * int * int) array; (* port, dfs lo, dfs hi *)
}

type cluster_tree = {
  nodes : (Graph.vertex, node) Hashtbl.t;
}

type scale = {
  cover : Cover.t;
  trees : cluster_tree array; (* one per cluster *)
}

let log2_ceil n =
  let rec go acc x = if x >= n then acc else go (acc + 1) (2 * x) in
  go 0 1

(* BFS tree of the subgraph induced by [members], rooted at [center];
   children ordered by the port leading to them. *)
let build_tree g center members =
  let inside = Hashtbl.create (Array.length members) in
  Array.iter (fun v -> Hashtbl.replace inside v ()) members;
  let parent = Hashtbl.create (Array.length members) in
  let kids = Hashtbl.create (Array.length members) in
  let visited = Hashtbl.create (Array.length members) in
  Hashtbl.replace visited center ();
  let queue = Queue.create () in
  Queue.add center queue;
  while not (Queue.is_empty queue) do
    let x = Queue.pop queue in
    Array.iter
      (fun y ->
        if Hashtbl.mem inside y && not (Hashtbl.mem visited y) then begin
          Hashtbl.replace visited y ();
          Hashtbl.replace parent y x;
          let cur = Option.value ~default:[] (Hashtbl.find_opt kids x) in
          Hashtbl.replace kids x (y :: cur);
          Queue.add y queue
        end)
      (Graph.neighbors g x)
  done;
  if Hashtbl.length visited <> Array.length members then
    invalid_arg "Tree_cover: cluster is not connected";
  let port x y =
    match Graph.port_to g ~src:x ~dst:y with
    | Some k -> k
    | None -> assert false
  in
  let children_of x =
    Option.value ~default:[] (Hashtbl.find_opt kids x)
    |> List.sort (fun a b -> compare (port x a) (port x b))
  in
  (* DFS numbering *)
  let dfs_no = Hashtbl.create (Array.length members) in
  let hi = Hashtbl.create (Array.length members) in
  let counter = ref 0 in
  let rec visit x =
    Hashtbl.replace dfs_no x !counter;
    incr counter;
    List.iter visit (children_of x);
    Hashtbl.replace hi x (!counter - 1)
  in
  visit center;
  let nodes = Hashtbl.create (Array.length members) in
  Array.iter
    (fun x ->
      let parent_port =
        match Hashtbl.find_opt parent x with
        | Some p -> port x p
        | None -> 0
      in
      let children =
        children_of x
        |> List.map (fun c ->
               (port x c, Hashtbl.find dfs_no c, Hashtbl.find hi c))
        |> Array.of_list
      in
      Hashtbl.replace nodes x
        { parent_port; dfs = Hashtbl.find dfs_no x; children })
    members;
  { nodes }

let prepare g =
  if not (Graph.is_connected g) then
    invalid_arg "Tree_cover: need a connected graph";
  let diam = max 1 (Bfs.diameter g) in
  let nscales = 1 + log2_ceil diam in
  let scales =
    Array.init nscales (fun i ->
        let cover = Cover.build g ~r:(1 lsl i) in
        let trees =
          Array.map
            (fun (c : Cover.cluster) -> build_tree g c.Cover.center c.Cover.members)
            cover.Cover.clusters
        in
        { cover; trees })
  in
  scales

let routing_function g scales =
  let member_node i c v = Hashtbl.find_opt scales.(i).trees.(c).nodes v in
  let init u v =
    (* smallest scale at which u sits in v's home cluster *)
    let rec pick i =
      if i >= Array.length scales then
        invalid_arg "Tree_cover: no common cluster (disconnected?)"
      else begin
        let hc = scales.(i).cover.Cover.home.(v) in
        match member_node i hc u with
        | Some _ -> (i, hc)
        | None -> pick (i + 1)
      end
    in
    let i, hc = pick 0 in
    let dfs_v =
      match member_node i hc v with
      | Some node -> node.dfs
      | None -> assert false (* home cluster contains v *)
    in
    Routing_function.Packed [| v; i; hc; dfs_v |]
  in
  let port x h =
    match h with
    | Routing_function.Packed [| v; i; hc; dfs_v |] ->
      if x = v then None
      else begin
        match member_node i hc x with
        | None -> invalid_arg "Tree_cover: left the cluster"
        | Some node ->
          let rec scan k =
            if k >= Array.length node.children then None
            else begin
              let p, lo, hi = node.children.(k) in
              if lo <= dfs_v && dfs_v <= hi then Some p else scan (k + 1)
            end
          in
          (match scan 0 with
          | Some p -> Some p
          | None ->
            assert (node.parent_port > 0);
            Some node.parent_port)
      end
    | _ -> invalid_arg "Tree_cover: malformed header"
  in
  { Routing_function.graph = g; init; port; next_header = (fun _ h -> h) }

let encode_vertex g scales v =
  let n = Graph.order g in
  let deg = Graph.degree g v in
  let vwidth = Codes.ceil_log2 (max 2 n) in
  let pwidth = Codes.ceil_log2 (max 2 deg) in
  let buf = Bitbuf.create () in
  Codes.write_delta buf n;
  Codes.write_gamma buf (Array.length scales + 1);
  Array.iter
    (fun s ->
      let ncl = Array.length s.cover.Cover.clusters in
      let cwidth = Codes.ceil_log2 (max 2 ncl) in
      let containing = ref [] in
      Array.iteri
        (fun c tree ->
          match Hashtbl.find_opt tree.nodes v with
          | Some node -> containing := (c, node) :: !containing
          | None -> ())
        s.trees;
      let containing = List.rev !containing in
      Codes.write_gamma buf (List.length containing + 1);
      List.iter
        (fun (c, node) ->
          Codes.write_fixed buf c ~width:cwidth;
          Codes.write_fixed buf node.parent_port ~width:(pwidth + 1);
          Codes.write_fixed buf node.dfs ~width:vwidth;
          Codes.write_gamma buf (Array.length node.children + 1);
          Array.iter
            (fun (p, lo, hi) ->
              Codes.write_fixed buf (p - 1) ~width:pwidth;
              Codes.write_fixed buf lo ~width:vwidth;
              Codes.write_fixed buf hi ~width:vwidth)
            node.children)
        containing)
    scales;
  buf

let build g =
  let scales = prepare g in
  {
    Scheme.rf = routing_function g scales;
    local_encoding = encode_vertex g scales;
    description =
      Printf.sprintf "tree-cover routing, %d scales" (Array.length scales);
  }

let scheme =
  { Scheme.name = "tree-cover"; stretch_bound = None; build }

let stretch_guarantee g =
  let n = float_of_int (max 2 (Graph.order g)) in
  4.0 *. ((Float.log n /. Float.log 2.0) +. 2.0)
