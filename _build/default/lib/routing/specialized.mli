(** Specialized (partial) routing schemes with [O(log n)] local memory,
    witnessing Section 1's upper-bound examples: e-cube routing on the
    hypercube ([MEM_local(H_n, 1) = O(log n)]), shortest-side routing on
    rings, dimension-order routing on meshes, and direct routing on
    [K_n] under a {e suitable} port labelling.

    Each [build_*] validates that the graph really is the expected
    family (raises [Invalid_argument] otherwise): these are partial
    schemes in the paper's sense. *)

open Umrs_graph

val build_ecube : Graph.t -> Scheme.built
(** Requires a hypercube with port [k] flipping bit [k-1]
    (as produced by {!Umrs_graph.Generators.hypercube}). Routes by
    correcting the lowest differing bit; stretch 1. Memory per router:
    its own label + the dimension. *)

val ecube : Scheme.t

val build_ring : Graph.t -> Scheme.built
(** Requires a cycle labelled consecutively
    ({!Umrs_graph.Generators.cycle}). Routes the shorter way around. *)

val ring : Scheme.t

val build_grid : w:int -> h:int -> Graph.t -> Scheme.built
(** Requires the [w x h] mesh of {!Umrs_graph.Generators.grid}.
    Dimension-order (X then Y) routing. *)

val grid : w:int -> h:int -> Scheme.t

val build_torus_dor : dims:int list -> Graph.t -> Scheme.built
(** Dimension-order routing on the k-dimensional torus of
    {!Umrs_graph.Generators.torus_nd} (same port convention): correct
    one coordinate at a time, the shorter way around. Stretch 1,
    [O(log n)] bits per router. *)

val torus_dor : dims:int list -> Scheme.t

val torus_dor_vc_dependencies :
  dims:int list -> Graph.t -> ((Graph.vertex * Graph.port * int) * (Graph.vertex * Graph.port * int)) list
(** Channel dependencies of torus dimension-order routing under the
    Dally-Seitz two-virtual-channel discipline: a packet uses virtual
    channel 0 in each dimension until it crosses that dimension's
    wrap-around edge, and virtual channel 1 afterwards. Channels are
    [(vertex, port, vc)]. *)

val torus_dor_vc_deadlock_free : dims:int list -> Graph.t -> bool
(** Acyclicity of the virtual-channel dependency graph — true on every
    torus, the Dally-Seitz theorem that motivated virtual channels
    (whereas the plain channel graph of the same routing function is
    cyclic). *)

val build_complete_direct : Graph.t -> Scheme.built
(** Requires [K_n] with the sorted port labelling of
    {!Umrs_graph.Generators.complete}: the port to [w] from [v] is
    computable from labels alone, so each router stores only [O(log n)]
    bits. *)

val complete_direct : Scheme.t

val build_complete_adversarial : Random.State.t -> Graph.t -> Scheme.built
(** [K_n] after an adversarial (random) relabelling of every router's
    ports: each router must store the full port permutation —
    [ceil(log2 (n-1)!)] ~ [n log n] bits (Section 1's example). The
    returned routing function runs on the relabelled graph. *)
