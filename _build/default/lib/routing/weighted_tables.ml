open Umrs_graph
open Umrs_bitcode

let next_hop_matrix w =
  let g = Weighted.graph w in
  let n = Graph.order g in
  let dist = Weighted.all_pairs w in
  let m = Array.make_matrix n n 0 in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v then begin
        if dist.(u).(v) = Bfs.infinity then
          invalid_arg "Weighted_tables: disconnected graph";
        let deg = Graph.degree g u in
        let rec find k =
          if k > deg then assert false
          else begin
            let x = Graph.neighbor g u ~port:k in
            if Weighted.cost w u k + dist.(x).(v) = dist.(u).(v) then k
            else find (k + 1)
          end
        in
        m.(u).(v) <- find 1
      end
    done
  done;
  m

let build w =
  let g = Weighted.graph w in
  let m = next_hop_matrix w in
  let rf = Routing_function.of_next_hop g (fun u v -> m.(u).(v)) in
  let encode v =
    let n = Graph.order g in
    let deg = Graph.degree g v in
    let buf = Bitbuf.create () in
    if deg > 0 then begin
      let width = Codes.ceil_log2 (max 2 deg) in
      for dst = 0 to n - 1 do
        if dst <> v then Codes.write_fixed buf (m.(v).(dst) - 1) ~width
      done
    end;
    buf
  in
  {
    Scheme.rf;
    local_encoding = encode;
    description = "weighted shortest-path next-hop tables";
  }

type weighted_stretch = {
  max_ratio : float;
  worst_pair : Graph.vertex * Graph.vertex;
  mean_ratio : float;
}

let routed_cost w rf u v =
  let trace = Routing_function.route rf u v in
  Weighted.path_cost w trace.Routing_function.path

let stretch w rf =
  let g = Weighted.graph w in
  let n = Graph.order g in
  let dist = Weighted.all_pairs w in
  let worst = ref (0, 0) and wr = ref 0 and wd = ref 1 in
  let sum = ref 0.0 and count = ref 0 in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v then begin
        let c = routed_cost w rf u v in
        let d = dist.(u).(v) in
        if c * !wd > !wr * d then begin
          worst := (u, v);
          wr := c;
          wd := d
        end;
        sum := !sum +. (float_of_int c /. float_of_int d);
        incr count
      end
    done
  done;
  {
    max_ratio = float_of_int !wr /. float_of_int !wd;
    worst_pair = !worst;
    mean_ratio = (if !count = 0 then 1.0 else !sum /. float_of_int !count);
  }

let stretch_at_most w rf ~num ~den =
  let g = Weighted.graph w in
  let n = Graph.order g in
  let dist = Weighted.all_pairs w in
  try
    for u = 0 to n - 1 do
      for v = 0 to n - 1 do
        if u <> v && den * routed_cost w rf u v > num * dist.(u).(v) then
          raise Exit
      done
    done;
    true
  with Exit -> false
