(** Hierarchical tree-cover routing (Awerbuch & Peleg, reference [2]) —
    the scheme behind Table 1's [s = O(log n)] row.

    For each scale [2^i] (up to the diameter), build a sparse cover
    ({!Umrs_graph.Cover}); every cluster carries a BFS tree of its
    induced subgraph, DFS-numbered for interval descent. A vertex's
    {e address} lists, per scale, its home cluster and its DFS number
    in that cluster's tree — the [O(log^2 n)]-bit labels the paper
    explicitly notes for this scheme. The sender picks the smallest
    scale at which it belongs to the destination's home cluster
    (guaranteed at scale [>= log2 dist]) and the packet follows the
    tree: up toward the root until the destination's DFS number falls
    into a child interval, then down.

    Route length is at most twice the cluster radius, i.e.
    [O(dist * log n)] — logarithmic stretch for polylogarithmic
    per-router memory, the regime's trademark tradeoff (measured, not
    assumed, by the benchmarks). *)

open Umrs_graph

val build : Graph.t -> Scheme.built

val scheme : Scheme.t
(** ["tree-cover"]; no constant stretch bound (logarithmic). *)

val stretch_guarantee : Graph.t -> float
(** The provable bound for this graph:
    [4 * (log2 n + 2)] (choose scale [2^i < 2 dist], pay at most twice
    a cluster radius of [2^i (log2 n + 2)]). The measured stretch is
    checked against it in the tests. *)
