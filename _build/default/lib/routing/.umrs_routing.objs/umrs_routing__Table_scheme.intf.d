lib/routing/table_scheme.mli: Graph Scheme Umrs_bitcode Umrs_graph
