lib/routing/spanner_scheme.ml: Array Bitbuf Codes Graph Printf Routing_function Scheme Table_scheme Umrs_bitcode Umrs_graph Umrs_spanner
