lib/routing/landmark_scheme.ml: Array Bfs Bitbuf Codes Float Graph List Perm Printf Queue Random Routing_function Scheme Umrs_bitcode Umrs_graph
