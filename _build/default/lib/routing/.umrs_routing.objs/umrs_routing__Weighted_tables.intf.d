lib/routing/weighted_tables.mli: Graph Routing_function Scheme Umrs_graph Weighted
