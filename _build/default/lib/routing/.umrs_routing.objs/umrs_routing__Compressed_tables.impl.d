lib/routing/compressed_tables.ml: Array Bitbuf Codes Graph List Routing_function Scheme Table_scheme Umrs_bitcode Umrs_graph
