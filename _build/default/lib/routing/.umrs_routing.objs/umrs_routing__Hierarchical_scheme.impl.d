lib/routing/hierarchical_scheme.ml: Array Bfs Bitbuf Codes Float Graph Hashtbl List Printf Routing_function Scheme Umrs_bitcode Umrs_graph
