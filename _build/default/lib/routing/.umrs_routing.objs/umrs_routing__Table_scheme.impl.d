lib/routing/table_scheme.ml: Array Bfs Bitbuf Codes Graph Parallel Routing_function Scheme Umrs_bitcode Umrs_graph
