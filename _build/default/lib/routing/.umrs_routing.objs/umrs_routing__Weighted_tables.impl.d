lib/routing/weighted_tables.ml: Array Bfs Bitbuf Codes Graph Routing_function Scheme Umrs_bitcode Umrs_graph Weighted
