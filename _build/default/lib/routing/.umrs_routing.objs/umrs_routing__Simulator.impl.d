lib/routing/simulator.ml: Array Format Fun Graph Hashtbl List Option Perm Random Routing_function Stats Umrs_graph
