lib/routing/deadlock.mli: Graph Routing_function Umrs_graph
