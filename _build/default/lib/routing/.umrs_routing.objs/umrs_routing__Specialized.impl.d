lib/routing/specialized.ml: Array Bitbuf Codes Deadlock Graph Hashtbl List Perm Printf Rank Routing_function Scheme String Umrs_bitcode Umrs_graph
