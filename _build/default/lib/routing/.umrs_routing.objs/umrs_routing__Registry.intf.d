lib/routing/registry.mli: Scheme Umrs_graph
