lib/routing/deadlock.ml: Graph Hashtbl List Option Routing_function Umrs_graph
