lib/routing/tree_cover_scheme.mli: Graph Scheme Umrs_graph
