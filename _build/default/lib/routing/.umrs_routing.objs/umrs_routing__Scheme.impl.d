lib/routing/scheme.ml: Array Format Graph Routing_function Umrs_bitcode Umrs_graph
