lib/routing/routing_function.mli: Format Graph Random Umrs_graph
