lib/routing/landmark_scheme.mli: Graph Scheme Umrs_bitcode Umrs_graph
