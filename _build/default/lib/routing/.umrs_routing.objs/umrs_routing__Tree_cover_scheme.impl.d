lib/routing/tree_cover_scheme.ml: Array Bfs Bitbuf Codes Cover Float Graph Hashtbl List Option Printf Queue Routing_function Scheme Umrs_bitcode Umrs_graph
