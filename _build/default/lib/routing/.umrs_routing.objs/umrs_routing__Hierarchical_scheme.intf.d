lib/routing/hierarchical_scheme.mli: Graph Scheme Umrs_graph
