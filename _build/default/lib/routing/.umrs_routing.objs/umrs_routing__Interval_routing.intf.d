lib/routing/interval_routing.mli: Graph Random Scheme Umrs_bitcode Umrs_graph
