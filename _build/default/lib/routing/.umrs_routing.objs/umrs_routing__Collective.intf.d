lib/routing/collective.mli: Graph Routing_function Umrs_graph
