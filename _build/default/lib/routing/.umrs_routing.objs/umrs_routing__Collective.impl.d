lib/routing/collective.ml: Array Bfs Fun Graph List Routing_function Simulator Umrs_graph
