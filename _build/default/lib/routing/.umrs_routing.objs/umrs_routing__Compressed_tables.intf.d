lib/routing/compressed_tables.mli: Graph Scheme Umrs_bitcode Umrs_graph
