lib/routing/scheme.mli: Format Graph Routing_function Umrs_bitcode Umrs_graph
