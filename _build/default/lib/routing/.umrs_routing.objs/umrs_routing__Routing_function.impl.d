lib/routing/routing_function.ml: Array Bfs Format Graph List Printf Random Umrs_bitcode Umrs_graph
