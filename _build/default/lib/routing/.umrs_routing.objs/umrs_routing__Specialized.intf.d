lib/routing/specialized.mli: Graph Random Scheme Umrs_graph
