lib/routing/simulator.mli: Format Graph Random Routing_function Umrs_graph
