lib/routing/spanner_scheme.mli: Graph Scheme Umrs_graph
