lib/routing/interval_routing.ml: Array Bitbuf Codes Graph List Perm Printf Random Routing_function Scheme Table_scheme Umrs_bitcode Umrs_graph
