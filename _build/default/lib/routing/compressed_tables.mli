(** Run-length-compressed routing tables — Theorem 1 made tangible.

    The table of router [v] is the sequence of next-hop ports indexed
    by destination. On structured networks (rings, hypercubes, grids)
    long runs of equal ports make that sequence highly compressible; on
    the paper's graphs of constraints the port sequence at a
    constrained vertex {e is} the (incompressible) row of a random
    matrix of constraints, so run-length coding buys nothing — which is
    exactly what "routing tables cannot be locally compressed" predicts
    an encoder will experience.

    Encoding per router: runs of [(port, length)] with gamma-coded
    lengths, fixed-width ports, and a gamma-coded run count. Decodes
    back to the exact table (tested). *)

open Umrs_graph

val encode_table : degree:int -> Graph.port array -> skip:Graph.vertex -> Umrs_bitcode.Bitbuf.t
(** Compress one router's next-hop column ([skip] = the router itself,
    whose entry is meaningless and omitted). *)

val decode_table :
  Umrs_bitcode.Bitbuf.t -> order:int -> degree:int -> self:Graph.vertex -> Graph.port array
(** Inverse of [encode_table]; entry [self] is 0. *)

val build : Graph.t -> Scheme.built
(** Same routing behaviour as {!Table_scheme}, RLE-compressed state. *)

val scheme : Scheme.t
(** ["tables-rle"], stretch 1. *)

val compression_ratio : Graph.t -> float
(** [mem_global(tables-rle) / mem_global(tables)] — below 1 when
    structure helps, around or above 1 on incompressible tables. *)
