(** Two-level hierarchical (cluster) routing in the style of Kleinrock
    & Kamoun — the ancestor of the hierarchical schemes cited in
    Table 1.

    Vertices are partitioned into BFS balls of radius [r] around
    greedily chosen centers. A router [x] stores (a) a port toward every
    cluster {e center} and (b) a port toward every vertex within
    distance [2r] of [x] (its "ball" entries): about
    [#clusters + ball size] entries instead of [n]. Headers carry
    [(destination, its cluster)]. A packet heads for the destination's
    cluster center until the destination enters the current router's
    ball, then descends on exact entries.

    Delivery is guaranteed: phase 1 strictly decreases the distance to
    the target's center, and the center's ball contains the target
    (distance [<= r <= 2r]); in phase 2 the distance to the target
    strictly decreases, and [dist(y, v) < dist(x, v) <= 2r] keeps the
    target inside every subsequent ball. Worst-case stretch is bounded
    only through [r]; the benchmarks measure it (the compromise
    Table 1's hierarchical rows quantify). *)

open Umrs_graph

val partition : radius:int -> Graph.t -> int array * Graph.vertex array
(** [partition ~radius g] returns [(cluster_of, centers)]:
    [cluster_of.(v)] is the cluster index of [v] and [centers.(c)] its
    center. Greedy: the smallest unassigned vertex becomes a center and
    claims all unassigned vertices within [radius]. *)

val default_radius : Graph.t -> int
(** Smallest radius whose partition has at most [ceil(sqrt n)]
    clusters. *)

val build : ?radius:int -> Graph.t -> Scheme.built

val scheme : Scheme.t
(** ["hierarchical"] with the default radius; no stretch guarantee. *)
