(** Deadlock analysis after Dally & Seitz (the paper's reference [3],
    "Deadlock-free message routing in multiprocessor interconnection
    networks").

    A routing function is deadlock-free for wormhole/store-and-forward
    switching with one buffer per channel iff its {e channel dependency
    graph} — arcs as nodes, with an edge from channel [c1] to [c2]
    whenever some route uses [c2] immediately after [c1] — is acyclic.

    Classical facts reproduced by the test-suite:
    - e-cube on the hypercube is deadlock-free (dimension order);
    - dimension-order routing on a {e mesh} is deadlock-free;
    - shortest-path routing on a {e ring} (and dimension-order on a
      {e torus}) is not — the wrap-around closes a dependency cycle,
      which is exactly why virtual channels were invented. *)

open Umrs_graph

type channel = Graph.vertex * Graph.port
(** A directed channel: the arc leaving a vertex on a local port. *)

val dependencies : Routing_function.t -> (channel * channel) list
(** All immediate channel dependencies induced by routing every ordered
    pair (exhaustive route replay), deduplicated, sorted. *)

val is_deadlock_free : Routing_function.t -> bool
(** Acyclicity of the channel dependency graph. *)

val find_cycle : Routing_function.t -> channel list option
(** A witness dependency cycle ([c1 -> c2 -> ... -> c1]), if any. *)

val acyclic : ('c * 'c) list -> bool
(** Generic acyclicity of a dependency relation (used by the
    virtual-channel analyses, whose channels carry extra structure). *)
