(** Landmark-based universal compact routing with worst-case stretch 3
    (Cowen / Thorup-Zwick style).

    This stands in for the hierarchical schemes cited in Table 1 for
    stretch [s >= 3] (Awerbuch et al.; Awerbuch & Peleg; Peleg & Upfal):
    sublinear local memory at the price of bounded stretch. Like the
    scheme of reference [3] in the paper, it is a {e labelled} scheme —
    headers carry an [O(log n)]-bit address [(id, landmark index, DFS
    number in the landmark's BFS tree)].

    Construction, for a landmark set [L]:
    - every router stores a shortest-path port to each landmark;
    - router [u] additionally stores a direct port for every [w] with
      [dist(u,w) < dist(w,L)] (the "cluster" entries);
    - every router stores, in each landmark's BFS tree, one DFS interval
      per child arc, enabling descent from the landmark to the target.

    Routing [u -> v]: deliver if local; use the direct entry if [v] is
    in the cluster table; descend if [v] is in a child interval of the
    current vertex in [ℓ(v)]'s tree; otherwise forward toward [ℓ(v)].

    Stretch [<= 3]: either [dist(u,v) < dist(v,L)] and the cluster entry
    routes on a shortest path, or the route via [ℓ(v)] costs at most
    [dist(u,v) + 2 dist(v, ℓ(v)) <= 3 dist(u,v)]. *)

open Umrs_graph

val default_landmark_count : int -> int
(** [ceil(sqrt(n * (1 + log2 n)))] clamped to [1..n] — balances the
    landmark-port cost against the expected cluster size. *)

type strategy =
  | Random_landmarks   (** uniform sample (Cowen's analysis) *)
  | High_degree        (** the [l] largest-degree vertices *)
  | K_center           (** greedy farthest-point (2-approx k-center) *)

val build :
  ?seed:int -> ?landmarks:int -> ?strategy:strategy -> Graph.t -> Scheme.built
(** Landmark set chosen by [strategy] (default [Random_landmarks], drawn
    from [seed], default 0xC0C0A). *)

val scheme : Scheme.t
(** ["landmark-3"] with default parameters; stretch bound 3. *)

val cluster_sizes :
  ?seed:int -> ?landmarks:int -> ?strategy:strategy -> Graph.t -> int array
(** Per-vertex cluster-table sizes (for the memory-balance ablation). *)

(** {1 Decoding} *)

type decoded = {
  dec_order : int;
  dec_self : Graph.vertex;
  dec_landmark_ports : int array;  (** one per landmark; 0 = self *)
  dec_cluster : (Graph.vertex * Graph.port) array;
  dec_children : (Graph.port * int * int) array array;
      (** per landmark tree: (port, dfs lo, dfs hi) per child *)
}

val decode_vertex : Umrs_bitcode.Bitbuf.t -> degree:int -> decoded
(** Inverse of the per-router encoding (round-trip tested): everything
    a landmark router stores is recoverable from its bits plus its
    degree. *)
