open Umrs_graph
open Umrs_bitcode

let partition ~radius g =
  if radius < 0 then invalid_arg "Hierarchical: negative radius";
  let n = Graph.order g in
  let cluster_of = Array.make n (-1) in
  let centers = ref [] in
  for v = 0 to n - 1 do
    if cluster_of.(v) = -1 then begin
      let c = List.length !centers in
      centers := v :: !centers;
      (* claim unassigned vertices within [radius] of v *)
      let dist = Bfs.distances g v in
      for w = 0 to n - 1 do
        if cluster_of.(w) = -1 && dist.(w) <= radius then cluster_of.(w) <- c
      done
    end
  done;
  (cluster_of, Array.of_list (List.rev !centers))

let default_radius g =
  let n = Graph.order g in
  let target = int_of_float (Float.ceil (sqrt (float_of_int n))) in
  let diam = Bfs.diameter g in
  let rec search r =
    if r >= diam then diam
    else begin
      let _, centers = partition ~radius:r g in
      if Array.length centers <= target then r else search (r + 1)
    end
  in
  search 1

(* smallest port at [u] leading one hop closer to the vertex whose
   distance array is [dist_to] *)
let port_toward g dist_to u =
  let deg = Graph.degree g u in
  let rec find k =
    if k > deg then assert false
    else if dist_to.(Graph.neighbor g u ~port:k) = dist_to.(u) - 1 then k
    else find (k + 1)
  in
  find 1

let build ?radius g =
  if not (Graph.is_connected g) then
    invalid_arg "Hierarchical: need a connected graph";
  let n = Graph.order g in
  let radius = match radius with Some r -> r | None -> default_radius g in
  let cluster_of, centers = partition ~radius g in
  let ncl = Array.length centers in
  (* distances to every center, and to every vertex (for intra entries,
     reuse per-destination BFS lazily: compute all BFS once per member
     destination needed). *)
  let center_dist = Array.map (fun c -> Bfs.distances g c) centers in
  (* inter-cluster: port of v toward center c *)
  let inter =
    Array.init n (fun v ->
        Array.init ncl (fun c ->
            if centers.(c) = v then 0
            else port_toward g center_dist.(c) v))
  in
  (* ball entries: for each destination w, every router within distance
     2r of w stores a shortest-path port toward w. Phase-2 soundness:
     once the target is inside the current ball, the next hop is
     strictly closer, so the target stays inside every later ball. *)
  let ball = Array.init n (fun _ -> Hashtbl.create 8) in
  for w = 0 to n - 1 do
    let dist = Bfs.distances g w in
    for v = 0 to n - 1 do
      if v <> w && dist.(v) <= 2 * radius then
        Hashtbl.replace ball.(v) w (port_toward g dist v)
    done
  done;
  let intra = ball in
  let init _u v = Routing_function.Packed [| v; cluster_of.(v) |] in
  let port x h =
    match h with
    | Routing_function.Packed [| v; c |] ->
      if x = v then None
      else begin
        match Hashtbl.find_opt intra.(x) v with
        | Some p -> Some p
        | None -> Some inter.(x).(c)
      end
    | _ -> invalid_arg "hierarchical: malformed header"
  in
  let rf =
    { Routing_function.graph = g; init; port; next_header = (fun _ h -> h) }
  in
  let encode v =
    let deg = Graph.degree g v in
    let pwidth = Codes.ceil_log2 (max 2 deg) in
    let vwidth = Codes.ceil_log2 (max 2 n) in
    let buf = Bitbuf.create () in
    Codes.write_delta buf n;
    Codes.write_gamma buf (ncl + 1);
    Codes.write_bounded buf cluster_of.(v) ~bound:(max 2 ncl);
    (* inter table: one port per center (0 = self) *)
    Array.iter
      (fun p -> Codes.write_fixed buf p ~width:(pwidth + 1))
      inter.(v);
    (* intra table: (member, port) pairs *)
    Codes.write_gamma buf (Hashtbl.length intra.(v) + 1);
    let entries =
      Hashtbl.fold (fun w p acc -> (w, p) :: acc) intra.(v) []
      |> List.sort compare
    in
    List.iter
      (fun (w, p) ->
        Codes.write_fixed buf w ~width:vwidth;
        Codes.write_fixed buf (p - 1) ~width:pwidth)
      entries;
    buf
  in
  {
    Scheme.rf;
    local_encoding = encode;
    description =
      Printf.sprintf "hierarchical routing, %d clusters of radius %d" ncl
        radius;
  }

let scheme =
  {
    Scheme.name = "hierarchical";
    stretch_bound = None;
    build = (fun g -> build g);
  }
