open Umrs_graph
open Umrs_bitcode

let next_hop_matrix_with_dist g dist =
  let n = Graph.order g in
  let m = Array.make_matrix n n 0 in
  for u = 0 to n - 1 do
    let du = dist.(u) in
    for v = 0 to n - 1 do
      if u <> v then begin
        if du.(v) = Bfs.infinity then
          invalid_arg "Table_scheme: disconnected graph";
        (* smallest port whose head is one step closer to v *)
        let deg = Graph.degree g u in
        let rec find k =
          if k > deg then assert false
          else begin
            let w = Graph.neighbor g u ~port:k in
            if dist.(w).(v) = du.(v) - 1 then k else find (k + 1)
          end
        in
        m.(u).(v) <- find 1
      end
    done
  done;
  m

let next_hop_matrix g = next_hop_matrix_with_dist g (Bfs.all_pairs g)

let next_hop_matrix_parallel ?domains g =
  next_hop_matrix_with_dist g (Parallel.all_pairs ?domains g)

let encode_vertex g table v =
  let n = Graph.order g in
  let deg = Graph.degree g v in
  let buf = Bitbuf.create () in
  if deg > 0 then begin
    let width = Codes.ceil_log2 deg in
    for dst = 0 to n - 1 do
      if dst <> v then Codes.write_fixed buf (table.(dst) - 1) ~width
    done
  end;
  buf

let decode_table buf ~order ~degree ~self =
  let table = Array.make order 0 in
  if degree > 0 then begin
    let width = Codes.ceil_log2 degree in
    let r = Bitbuf.reader buf in
    for dst = 0 to order - 1 do
      if dst <> self then table.(dst) <- 1 + Codes.read_fixed r ~width
    done
  end;
  table

let build g =
  let m = next_hop_matrix g in
  let rf = Routing_function.of_next_hop g (fun u v -> m.(u).(v)) in
  {
    Scheme.rf;
    local_encoding = (fun v -> encode_vertex g m.(v) v);
    description = "full shortest-path next-hop tables";
  }

let scheme = { Scheme.name = "routing-tables"; stretch_bound = Some 1.0; build }
