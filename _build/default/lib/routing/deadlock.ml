open Umrs_graph

type channel = Graph.vertex * Graph.port

let dependencies rf =
  let g = rf.Routing_function.graph in
  let n = Graph.order g in
  let seen = Hashtbl.create 256 in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v then begin
        let trace = Routing_function.route rf u v in
        (* channels along the path *)
        let rec walk = function
          | x :: (y :: _ as rest) ->
            let port x y =
              match Graph.port_to g ~src:x ~dst:y with
              | Some k -> k
              | None -> assert false
            in
            (match rest with
            | y' :: z :: _ ->
              ignore y';
              Hashtbl.replace seen ((x, port x y), (y, port y z)) ()
            | _ -> ());
            walk rest
          | _ -> ()
        in
        walk trace.Routing_function.path
      end
    done
  done;
  List.sort compare (Hashtbl.fold (fun dep () acc -> dep :: acc) seen [])

let adjacency deps =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (a, b) ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt tbl a) in
      Hashtbl.replace tbl a (b :: cur))
    deps;
  tbl

let find_cycle rf =
  let deps = dependencies rf in
  let adj = adjacency deps in
  (* DFS with colors; reconstruct the cycle from the stack *)
  let color = Hashtbl.create 64 in
  let result = ref None in
  let rec dfs stack c =
    match Hashtbl.find_opt color c with
    | Some `Done -> ()
    | Some `Active ->
      if !result = None then begin
        (* stack is most-recent-first and starts with this revisit of
           [c]; the cycle is everything down to the previous [c] *)
        let rec collect = function
          | [] -> []
          | x :: rest -> if x = c then [ x ] else x :: collect rest
        in
        match stack with
        | _ :: tl -> result := Some (List.rev (collect tl))
        | [] -> ()
      end
    | None ->
      Hashtbl.replace color c `Active;
      List.iter
        (fun next -> if !result = None then dfs (next :: stack) next)
        (Option.value ~default:[] (Hashtbl.find_opt adj c));
      Hashtbl.replace color c `Done
  in
  List.iter
    (fun (a, _) -> if !result = None then dfs [ a ] a)
    deps;
  !result

let is_deadlock_free rf = find_cycle rf = None

let acyclic deps =
  let adj = adjacency deps in
  let color = Hashtbl.create 64 in
  let cyclic = ref false in
  let rec dfs c =
    match Hashtbl.find_opt color c with
    | Some `Done -> ()
    | Some `Active -> cyclic := true
    | None ->
      Hashtbl.replace color c `Active;
      List.iter
        (fun next -> if not !cyclic then dfs next)
        (Option.value ~default:[] (Hashtbl.find_opt adj c));
      Hashtbl.replace color c `Done
  in
  List.iter (fun (a, _) -> if not !cyclic then dfs a) deps;
  not !cyclic
