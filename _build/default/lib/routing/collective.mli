(** Collective communication on top of routing functions — the
    parallel-network workloads of the paper's venue.

    Two ways to broadcast from a root:
    - {e unicast}: the root sends one packet per destination through the
      routing function (memory-free but floods the root's links);
    - {e tree}: flood along a BFS tree (each vertex forwards to its
      children once), the classical collective.

    Both run on the contention simulator, so the cost difference is
    measured in rounds, not asserted. *)

open Umrs_graph

type broadcast_result = {
  rounds : int;          (** rounds until the last vertex is reached *)
  messages : int;        (** total link crossings *)
  reached : int;         (** vertices reached (= n on success) *)
}

val broadcast_unicast :
  ?round_limit:int -> Routing_function.t -> root:Graph.vertex -> broadcast_result
(** One simulator packet per destination, all injected at round 0. *)

val broadcast_tree : Graph.t -> root:Graph.vertex -> broadcast_result
(** Synchronous flood on the BFS tree: a vertex reached in round [r]
    forwards to all its tree children in round [r+1] (one message per
    child link — links are distinct, so no contention). [rounds] equals
    the root's eccentricity and [messages] is [n - 1]. *)

val convergecast_tree : Graph.t -> root:Graph.vertex -> broadcast_result
(** The reverse collective (leaves toward the root): [rounds] is again
    the eccentricity — depth-limited by the deepest leaf — and
    [messages] is [n - 1]. *)
