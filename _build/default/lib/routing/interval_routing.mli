(** Shortest-path interval routing (Santoro & Khatib; van Leeuwen &
    Tan) — the universal scheme behind Table 1's [O(d log n)] rows for
    trees, outerplanar, and unit circular-arc graphs.

    Destinations assigned to each output arc are grouped into cyclic
    intervals of vertex labels; router [v] stores, per arc, its interval
    boundaries. The number of intervals per arc depends on the vertex
    labelling: a DFS labelling gives one interval per arc on every tree. *)

open Umrs_graph

type labelling =
  | Identity  (** vertices keep their natural labels *)
  | Dfs       (** DFS preorder labels from vertex 0 *)

type interval = { lo : int; hi : int }
(** Cyclic interval of labels: [lo <= hi] means [lo..hi]; [lo > hi]
    wraps through [n-1] to [0]. *)

val intervals_of_labels : n:int -> int list -> interval list
(** Minimal cyclic-interval cover of a set of labels in [{0..n-1}]. *)

val mem_interval : n:int -> interval -> int -> bool

type t
(** A compiled interval labelling scheme on a graph. *)

val compile : ?labelling:labelling -> Graph.t -> t
(** Compute vertex labels, the shortest-path next-hop assignment, and
    per-arc interval sets. Requires a connected graph. *)

val compactness : t -> int
(** Maximum number of intervals on any arc (the IRS compactness
    parameter [k] of [k]-IRS). *)

val linear_compactness : t -> int
(** Compactness when wrap-around (cyclic) intervals are forbidden —
    the LIRS variant of the literature; always [>= compactness]. *)

val arc_intervals : t -> Graph.vertex -> Graph.port -> interval list

val label_of : t -> Graph.vertex -> int
val vertex_of : t -> int -> Graph.vertex

val scheme_of : t -> Scheme.built
(** Scheme instance over an already-compiled labelling (e.g. the result
    of {!optimize_labelling}). *)

val build : ?labelling:labelling -> Graph.t -> Scheme.built
(** Scheme instance. Headers carry the destination's {e label}; each
    router stores its own label plus, per arc, a gamma-coded interval
    count and fixed-width interval bounds. *)

val decode_vertex :
  Umrs_bitcode.Bitbuf.t -> order:int -> degree:int -> int * interval list array
(** Inverse of the per-router encoding: [(own label, intervals per
    arc)]. Round-trip tested against [build]'s encodings — the memory
    numbers are real, decodable state. *)

val scheme : Scheme.t
(** DFS-labelled interval routing, stretch 1. *)

val scheme_identity : Scheme.t
(** Identity-labelled variant (usually needs more intervals). *)

(** {1 Labelling optimization}

    Fraigniaud & Gavoille's own earlier work (reference [5], "Optimal
    interval routing") studies choosing the vertex labelling that
    minimizes the number of intervals per arc. This is a local-search
    heuristic for that objective. *)

val total_intervals : t -> int
(** Sum of interval counts over all arcs (the optimization
    objective; [compactness] is its max-per-arc companion). *)

val optimize_labelling :
  ?steps:int -> Random.State.t -> Graph.t -> t
(** Hill climbing over label transpositions from a DFS start: swap two
    vertex labels, keep the swap when it does not increase
    [(compactness, total_intervals)] lexicographically. [steps]
    defaults to [20 * n]. The result never has worse compactness than
    the DFS labelling. *)

val scheme_optimized : ?steps:int -> seed:int -> unit -> Scheme.t
(** ["interval-opt"]: interval routing under the optimized labelling. *)

val min_compactness_exhaustive : Graph.t -> int
(** Minimum compactness over {e all} [n!] vertex labellings, for the
    canonical (smallest-port) shortest-path assignment — an exact
    [8]-style lower-bound computation for tiny graphs (requires
    [order <= 8]). E.g. no labelling makes the (3,2) globe a 1-IRS,
    while every cycle and tree admits one. (The quantity is relative to
    the fixed tie-break; minimizing additionally over shortest-path
    choices could only be smaller.) *)
