(** Shortest-path routing tables under non-uniform arc costs — the
    weighted counterpart of {!Table_scheme}, covering the "non-uniform
    cost" variants of Table 1's cited schemes.

    The routing function runs on the underlying graph; optimality and
    stretch are judged against the weighted metric. *)

open Umrs_graph

val next_hop_matrix : Weighted.t -> Graph.port array array
(** [m.(u).(v)] is a port at [u] whose arc starts a minimum-cost path
    toward [v] (smallest such port). *)

val build : Weighted.t -> Scheme.built

type weighted_stretch = {
  max_ratio : float;
  worst_pair : Graph.vertex * Graph.vertex;
  mean_ratio : float;
}

val stretch : Weighted.t -> Routing_function.t -> weighted_stretch
(** Ratio of routed cost to weighted distance over all ordered pairs. *)

val stretch_at_most :
  Weighted.t -> Routing_function.t -> num:int -> den:int -> bool
