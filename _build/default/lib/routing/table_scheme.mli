(** Full shortest-path routing tables — the universal scheme whose
    [O(n log n)]-bits-per-router cost Theorem 1 proves optimal for every
    stretch [s < 2].

    Each router [v] stores, for every destination, the local output port
    of a shortest-path next hop (ties broken toward the smallest port),
    [ceil(log2 deg v)] bits per entry. *)

open Umrs_graph

val next_hop_matrix : Graph.t -> Graph.port array array
(** [m.(u).(v)] is the chosen shortest-path port at [u] toward [v]
    (undefined 0 on the diagonal). Requires a connected graph. *)

val next_hop_matrix_with_dist : Graph.t -> int array array -> Graph.port array array
(** Same, reusing a precomputed distance matrix. *)

val next_hop_matrix_parallel : ?domains:int -> Graph.t -> Graph.port array array
(** [next_hop_matrix] with the all-pairs BFS spread over OCaml domains
    ({!Umrs_graph.Parallel}); identical output (tested). *)

val build : Graph.t -> Scheme.built
(** Routing function + per-router table encodings. *)

val scheme : Scheme.t
(** Named scheme ["routing-tables"], stretch bound 1. *)

val decode_table :
  Umrs_bitcode.Bitbuf.t -> order:int -> degree:int -> self:Graph.vertex -> Graph.port array
(** Decode a router's table back from its encoding: entry [v] is the
    port for destination [v] (self entry is 0). Round-trip tested. *)
