open Umrs_graph
open Umrs_bitcode

(* The scheme chooses the port labelling (Section 1: labelings are
   picked to make the coding compact): relabel the host graph so each
   vertex's spanner neighbours occupy its first ports, in the spanner's
   port order. Routers then store only the spanner table — next-hop
   entries of width ceil(log2 deg_H) — and no port translation map. *)
let spanner_first_relabelling g h =
  Array.init (Graph.order g) (fun v ->
      let deg = Graph.degree g v in
      let in_h = Array.make deg (-1) in
      Array.iteri
        (fun hk w ->
          match Graph.port_to g ~src:v ~dst:w with
          | Some gp -> in_h.(gp - 1) <- hk
          | None -> assert false)
        (Graph.neighbors h v);
      let degh = Graph.degree h v in
      let next_free = ref degh in
      Array.mapi
        (fun old hk ->
          ignore old;
          if hk >= 0 then hk
          else begin
            let slot = !next_free in
            incr next_free;
            slot
          end)
        in_h)

let build ~k g =
  let h = Umrs_spanner.Spanner.greedy g ~k in
  let g' = Graph.relabel_ports g (spanner_first_relabelling g h) in
  let m = Table_scheme.next_hop_matrix h in
  (* In g', the spanner's port p at v is the host port p. *)
  let next u v = m.(u).(v) in
  let rf = Routing_function.of_next_hop g' next in
  {
    Scheme.rf;
    local_encoding =
      (fun v ->
        let n = Graph.order g in
        let degh = Graph.degree h v in
        let buf = Bitbuf.create () in
        Codes.write_gamma buf (degh + 1);
        if degh > 0 then begin
          let hw = Codes.ceil_log2 (max 2 degh) in
          for dst = 0 to n - 1 do
            if dst <> v then Codes.write_fixed buf (m.(v).(dst) - 1) ~width:hw
          done
        end;
        buf);
    description =
      Printf.sprintf "tables over a greedy %d-spanner (%d of %d edges kept)"
        ((2 * k) - 1) (Graph.size h) (Graph.size g);
  }

let scheme ~k =
  {
    Scheme.name = Printf.sprintf "spanner-%d" ((2 * k) - 1);
    stretch_bound = Some (float_of_int ((2 * k) - 1));
    build = (fun g -> build ~k g);
  }
