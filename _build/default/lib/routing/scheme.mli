(** Universal routing schemes and their memory accounting.

    A scheme maps any graph to a routing function together with a
    bit-exact encoding of each router's local state — the concrete
    stand-in for the paper's Kolmogorov-complexity measure
    [MEM_G(R, x)]. [MEM_local] and [MEM_global] are Definition-level
    quantities of Section 1. *)

open Umrs_graph

type built = {
  rf : Routing_function.t;
  local_encoding : Graph.vertex -> Umrs_bitcode.Bitbuf.t;
      (** The bits router [x] must store. Encodings are self-contained
          per scheme (decodable given only the scheme and [x]'s label,
          degree, and the bits). *)
  description : string;
}

type t = {
  name : string;
  stretch_bound : float option;
      (** Guaranteed worst-case stretch, if the scheme has one. *)
  build : Graph.t -> built;
}

val mem_at : built -> Graph.vertex -> int
(** Bits stored at one router. *)

val mem_local : built -> int
(** [max_x MEM(x)] — the paper's local memory requirement of the
    produced routing function. *)

val mem_global : built -> int
(** [sum_x MEM(x)]. *)

val mem_profile : built -> int array
(** Per-vertex bit counts. *)

type evaluation = {
  scheme_name : string;
  graph_name : string;
  order : int;
  edges : int;
  mem_local_bits : int;
  mem_global_bits : int;
  stretch : Routing_function.stretch_report;
}

val evaluate :
  ?dist:int array array -> t -> graph_name:string -> Graph.t -> evaluation
(** Build the scheme on the graph and measure memory and exhaustive
    stretch. *)

val pp_evaluation : Format.formatter -> evaluation -> unit
