open Umrs_graph
open Umrs_bitcode

type labelling = Identity | Dfs

type interval = { lo : int; hi : int }

let mem_interval ~n iv x =
  if x < 0 || x >= n then invalid_arg "mem_interval: label out of range";
  if iv.lo <= iv.hi then iv.lo <= x && x <= iv.hi
  else x >= iv.lo || x <= iv.hi

let intervals_of_labels ~n labels =
  match List.sort_uniq compare labels with
  | [] -> []
  | sorted ->
    List.iter
      (fun x ->
        if x < 0 || x >= n then invalid_arg "intervals_of_labels: range")
      sorted;
    let s = List.length sorted in
    if s = n then [ { lo = 0; hi = n - 1 } ]
    else begin
      (* Split into maximal runs of consecutive labels. *)
      let runs =
        List.fold_left
          (fun runs x ->
            match runs with
            | (lo, hi) :: rest when x = hi + 1 -> (lo, x) :: rest
            | _ -> (x, x) :: runs)
          []
          sorted
        |> List.rev
      in
      (* Merge a wrap-around: last run ending at n-1 with first starting
         at 0 becomes one cyclic interval. *)
      match runs with
      | [ _ ] -> List.map (fun (lo, hi) -> { lo; hi }) runs
      | (first_lo, first_hi) :: _ ->
        let rec last = function
          | [ x ] -> x
          | _ :: tl -> last tl
          | [] -> assert false
        in
        let last_lo, last_hi = last runs in
        if first_lo = 0 && last_hi = n - 1 then begin
          let middle =
            runs |> List.tl
            |> List.filter (fun r -> r <> (last_lo, last_hi))
          in
          { lo = last_lo; hi = first_hi }
          :: List.map (fun (lo, hi) -> { lo; hi }) middle
        end
        else List.map (fun (lo, hi) -> { lo; hi }) runs
      | [] -> assert false
    end

let dfs_preorder g =
  let n = Graph.order g in
  let label = Array.make n (-1) in
  let counter = ref 0 in
  let rec visit v =
    label.(v) <- !counter;
    incr counter;
    Array.iter (fun w -> if label.(w) = -1 then visit w) (Graph.neighbors g v)
  in
  visit 0;
  if !counter <> n then invalid_arg "Interval_routing: disconnected graph";
  label

type t = {
  graph : Graph.t;
  label : int array;        (* vertex -> label *)
  unlabel : int array;      (* label -> vertex *)
  next_hop : Graph.port array array;
  arcs : interval list array array;  (* arcs.(v).(port-1) *)
}

let of_labels g next_hop label =
  let n = Graph.order g in
  let unlabel = Array.make n (-1) in
  Array.iteri (fun v l -> unlabel.(l) <- v) label;
  if Array.exists (fun x -> x = -1) unlabel then
    invalid_arg "Interval_routing: labels must be a permutation";
  let arcs =
    Array.init n (fun v ->
        let deg = Graph.degree g v in
        let dests = Array.make deg [] in
        for dst = 0 to n - 1 do
          if dst <> v then begin
            let k = next_hop.(v).(dst) in
            dests.(k - 1) <- label.(dst) :: dests.(k - 1)
          end
        done;
        Array.map (intervals_of_labels ~n) dests)
  in
  { graph = g; label; unlabel; next_hop; arcs }

let compile ?(labelling = Dfs) g =
  let n = Graph.order g in
  let label =
    match labelling with
    | Identity -> Array.init n (fun v -> v)
    | Dfs -> dfs_preorder g
  in
  of_labels g (Table_scheme.next_hop_matrix g) label

let compactness t =
  Array.fold_left
    (fun acc per_arc ->
      Array.fold_left (fun acc ivs -> max acc (List.length ivs)) acc per_arc)
    0 t.arcs

let linear_compactness t =
  let n = Graph.order t.graph in
  let worst = ref 0 in
  for v = 0 to n - 1 do
    let deg = Graph.degree t.graph v in
    let dests = Array.make deg [] in
    for dst = 0 to n - 1 do
      if dst <> v then begin
        let k = t.next_hop.(v).(dst) in
        dests.(k - 1) <- t.label.(dst) :: dests.(k - 1)
      end
    done;
    Array.iter
      (fun labels ->
        (* number of maximal runs, no wrap merge *)
        let sorted = List.sort_uniq compare labels in
        let runs =
          List.fold_left
            (fun (count, prev) x ->
              match prev with
              | Some p when x = p + 1 -> (count, Some x)
              | _ -> (count + 1, Some x))
            (0, None) sorted
          |> fst
        in
        worst := max !worst runs)
      dests
  done;
  !worst

let arc_intervals t v port =
  if port < 1 || port > Graph.degree t.graph v then
    invalid_arg "arc_intervals: bad port";
  t.arcs.(v).(port - 1)

let label_of t v = t.label.(v)
let vertex_of t l = t.unlabel.(l)

let port_for t v dst_label =
  let n = Graph.order t.graph in
  let deg = Graph.degree t.graph v in
  let rec scan k =
    if k > deg then
      invalid_arg
        (Printf.sprintf "Interval_routing: label %d unassigned at %d"
           dst_label v)
    else if
      List.exists (fun iv -> mem_interval ~n iv dst_label) t.arcs.(v).(k - 1)
    then k
    else scan (k + 1)
  in
  scan 1

let encode_vertex t v =
  let n = Graph.order t.graph in
  let buf = Bitbuf.create () in
  let width = Codes.ceil_log2 (max 2 n) in
  (* own label, then per arc: interval count (gamma, shifted) + bounds *)
  Codes.write_fixed buf t.label.(v) ~width;
  Array.iter
    (fun ivs ->
      Codes.write_gamma buf (List.length ivs + 1);
      List.iter
        (fun iv ->
          Codes.write_fixed buf iv.lo ~width;
          Codes.write_fixed buf iv.hi ~width)
        ivs)
    t.arcs.(v);
  buf

let decode_vertex buf ~order ~degree =
  let width = Codes.ceil_log2 (max 2 order) in
  let r = Bitbuf.reader buf in
  let own = Codes.read_fixed r ~width in
  let arcs =
    Array.init degree (fun _ ->
        let count = Codes.read_gamma r - 1 in
        List.init count (fun _ ->
            let lo = Codes.read_fixed r ~width in
            let hi = Codes.read_fixed r ~width in
            { lo; hi }))
  in
  (own, arcs)

let build_of_compiled t =
  let rf =
    {
      Routing_function.graph = t.graph;
      init = (fun _ dst -> Routing_function.Dest t.label.(dst));
      port =
        (fun v h ->
          match h with
          | Routing_function.Dest l ->
            if t.label.(v) = l then None else Some (port_for t v l)
          | Routing_function.Packed _ ->
            invalid_arg "interval routing: unexpected header");
      next_header = (fun _ h -> h);
    }
  in
  {
    Scheme.rf;
    local_encoding = encode_vertex t;
    description =
      Printf.sprintf "interval routing (%d interval(s) per arc max)"
        (compactness t);
  }

let scheme_of = build_of_compiled

let build ?labelling g = build_of_compiled (compile ?labelling g)

let scheme =
  {
    Scheme.name = "interval-dfs";
    stretch_bound = Some 1.0;
    build = (fun g -> build ~labelling:Dfs g);
  }

let scheme_identity =
  {
    Scheme.name = "interval-identity";
    stretch_bound = Some 1.0;
    build = (fun g -> build ~labelling:Identity g);
  }

let total_intervals t =
  Array.fold_left
    (fun acc per_arc ->
      Array.fold_left (fun acc ivs -> acc + List.length ivs) acc per_arc)
    0 t.arcs

let objective t = (compactness t, total_intervals t)

let optimize_labelling ?steps st g =
  let n = Graph.order g in
  let steps = match steps with Some s -> s | None -> 20 * n in
  let next_hop = Table_scheme.next_hop_matrix g in
  let label = Array.copy (dfs_preorder g) in
  let best = ref (of_labels g next_hop label) in
  let best_obj = ref (objective !best) in
  for _ = 1 to steps do
    if n >= 2 then begin
      let i = Random.State.int st n in
      let j = Random.State.int st n in
      if i <> j then begin
        let tmp = label.(i) in
        label.(i) <- label.(j);
        label.(j) <- tmp;
        let cand = of_labels g next_hop label in
        let obj = objective cand in
        if obj <= !best_obj then begin
          best := cand;
          best_obj := obj
        end
        else begin
          (* revert *)
          let tmp = label.(i) in
          label.(i) <- label.(j);
          label.(j) <- tmp
        end
      end
    end
  done;
  !best

let min_compactness_exhaustive g =
  let n = Graph.order g in
  if n > 8 then invalid_arg "Interval_routing: order <= 8 for exhaustive search";
  let next_hop = Table_scheme.next_hop_matrix g in
  let best = ref max_int in
  Perm.iter_all n (fun label ->
      let c = compactness (of_labels g next_hop (Array.copy label)) in
      if c < !best then best := c);
  !best

let scheme_optimized ?steps ~seed () =
  {
    Scheme.name = "interval-opt";
    stretch_bound = Some 1.0;
    build =
      (fun g ->
        build_of_compiled
          (optimize_labelling ?steps (Random.State.make [| seed |]) g));
  }
