open Umrs_graph

type broadcast_result = { rounds : int; messages : int; reached : int }

let broadcast_unicast ?round_limit rf ~root =
  let n = Graph.order rf.Routing_function.graph in
  let pairs =
    List.filter_map
      (fun v -> if v = root then None else Some (root, v))
      (List.init n Fun.id)
  in
  let s = Simulator.run ?round_limit rf ~pairs in
  {
    rounds = s.Simulator.rounds;
    messages = s.Simulator.total_hops;
    reached = s.Simulator.delivered + 1;
  }

let tree_depths g root =
  let dist, parent = Bfs.distances_with_parents g root in
  let n = Graph.order g in
  for v = 0 to n - 1 do
    if v <> root && parent.(v) = -1 then
      invalid_arg "Collective: graph is not connected"
  done;
  dist

let broadcast_tree g ~root =
  let dist = tree_depths g root in
  let n = Graph.order g in
  {
    rounds = Array.fold_left max 0 dist;
    messages = n - 1;
    reached = n;
  }

let convergecast_tree g ~root =
  (* symmetric cost: the deepest leaf bounds the schedule *)
  broadcast_tree g ~root
