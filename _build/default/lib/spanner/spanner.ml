open Umrs_graph

(* Bounded-depth BFS in an adjacency-list-under-construction. *)
let within_distance adj n u v limit =
  if u = v then true
  else begin
    let dist = Array.make n (-1) in
    let queue = Queue.create () in
    dist.(u) <- 0;
    Queue.add u queue;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let x = Queue.pop queue in
      if dist.(x) < limit then
        List.iter
          (fun w ->
            if dist.(w) = -1 then begin
              dist.(w) <- dist.(x) + 1;
              if w = v then found := true;
              Queue.add w queue
            end)
          adj.(x)
    done;
    !found
  end

let greedy g ~k =
  if k < 1 then invalid_arg "Spanner.greedy: need k >= 1";
  if not (Graph.is_connected g) then
    invalid_arg "Spanner.greedy: graph must be connected";
  let n = Graph.order g in
  let limit = (2 * k) - 1 in
  let adj = Array.make n [] in
  let kept = Hashtbl.create (Graph.size g) in
  List.iter
    (fun (u, v) ->
      if not (within_distance adj n u v limit) then begin
        adj.(u) <- v :: adj.(u);
        adj.(v) <- u :: adj.(v);
        Hashtbl.add kept (u, v) ()
      end)
    (Graph.edges g);
  (* Rebuild with g's port order restricted to kept edges. *)
  let edges = ref [] in
  Graph.iter_arcs g (fun u _ v ->
      if u < v && Hashtbl.mem kept (u, v) then edges := (u, v) :: !edges);
  Graph.of_edges ~n (List.rev !edges)

let is_spanner g ~sub ~t =
  if Graph.order sub <> Graph.order g then false
  else if
    not
      (List.for_all (fun (u, v) -> Graph.mem_edge g u v) (Graph.edges sub))
  then false
  else begin
    let dg = Bfs.all_pairs g and dh = Bfs.all_pairs sub in
    let n = Graph.order g in
    let ok = ref true in
    for u = 0 to n - 1 do
      for v = 0 to n - 1 do
        if u <> v then
          if dh.(u).(v) = Bfs.infinity || dh.(u).(v) > t * dg.(u).(v) then
            ok := false
      done
    done;
    !ok
  end

let max_stretch g ~sub =
  let dg = Bfs.all_pairs g and dh = Bfs.all_pairs sub in
  let n = Graph.order g in
  let best = ref 1.0 in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v && dg.(u).(v) <> Bfs.infinity then begin
        if dh.(u).(v) = Bfs.infinity then invalid_arg "max_stretch: sub disconnected";
        let r = float_of_int dh.(u).(v) /. float_of_int dg.(u).(v) in
        if r > !best then best := r
      end
    done
  done;
  !best

let edge_ratio g ~sub = float_of_int (Graph.size sub) /. float_of_int (Graph.size g)
