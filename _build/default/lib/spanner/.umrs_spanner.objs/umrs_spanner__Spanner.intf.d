lib/spanner/spanner.mli: Graph Umrs_graph
