lib/spanner/spanner.ml: Array Bfs Graph Hashtbl List Queue Umrs_graph
