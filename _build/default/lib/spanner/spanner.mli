(** Graph spanners (Peleg & Schaffer; Althoefer et al.) — the sparse
    substitutes that buy the memory/stretch tradeoffs of Table 1's
    large-stretch rows.

    A subgraph [H] of [G] is a [t]-spanner when
    [dist_H(u,v) <= t * dist_G(u,v)] for all [u, v]. *)

open Umrs_graph

val greedy : Graph.t -> k:int -> Graph.t
(** [greedy g ~k] is the greedy [(2k-1)]-spanner: scan the edges and
    keep [(u,v)] unless the partial spanner already joins [u] and [v]
    within [2k-1] hops. The result is connected, spans all vertices of
    [g], has girth [> 2k], hence [O(n^(1+1/k))] edges, and is a
    [(2k-1)]-spanner. Port order in the result follows [g]. Requires
    [k >= 1] and [g] connected. *)

val is_spanner : Graph.t -> sub:Graph.t -> t:int -> bool
(** Exhaustively check the spanner inequality with factor [t]
    (also verifies [sub]'s edges all exist in the host graph). *)

val max_stretch : Graph.t -> sub:Graph.t -> float
(** [max_{u<>v} dist_sub / dist_g]. *)

val edge_ratio : Graph.t -> sub:Graph.t -> float
(** [size sub / size g]. *)
