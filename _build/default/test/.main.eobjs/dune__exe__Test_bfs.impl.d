test/test_bfs.ml: Alcotest Array Bfs Generators Graph Helpers List Random Umrs_graph
