test/main.mli:
