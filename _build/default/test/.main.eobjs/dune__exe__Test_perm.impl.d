test/test_perm.ml: Alcotest Array Format Hashtbl Helpers Perm QCheck Random Umrs_graph
