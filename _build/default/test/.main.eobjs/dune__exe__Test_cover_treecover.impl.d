test/test_cover_treecover.ml: Array Cover Float Generators Graph Helpers List Random Routing_function Scheme Table_scheme Tree_cover_scheme Umrs_graph Umrs_routing
