test/helpers.ml: Alcotest Array Format Generators Graph QCheck QCheck_alcotest Random Umrs_core Umrs_graph
