test/test_bignat.ml: Alcotest Bignat Float Helpers List QCheck Umrs_core
