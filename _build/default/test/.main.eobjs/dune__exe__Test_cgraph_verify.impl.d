test/test_cgraph_verify.ml: Alcotest Array Bfs Brute Canonical Cgraph Enumerate Graph Helpers List Matrix QCheck Random Umrs_core Umrs_graph Verify
