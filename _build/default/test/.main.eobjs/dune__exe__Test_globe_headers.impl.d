test/test_globe_headers.ml: Bfs Generators Graph Helpers Interval_routing Landmark_scheme Printf QCheck Routing_function Scheme Table_scheme Umrs_core Umrs_graph Umrs_routing
