test/test_deadlock.ml: Alcotest Deadlock Generators Hashtbl Helpers List Scheme Specialized Table_scheme Umrs_graph Umrs_routing
