test/test_bitcode.ml: Alcotest Array Bitbuf Codes Float Fun Helpers List Printf QCheck Random Rank String Umrs_bitcode Umrs_graph
