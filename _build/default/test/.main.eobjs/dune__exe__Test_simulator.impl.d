test/test_simulator.ml: Array Generators Graph Helpers List Routing_function Scheme Simulator Table_scheme Umrs_graph Umrs_routing
