test/test_io_decode.ml: Array Filename Fun Generators Graph Graph_io Helpers Landmark_scheme Scheme Sys Table_scheme Umrs_bitcode Umrs_graph Umrs_routing
