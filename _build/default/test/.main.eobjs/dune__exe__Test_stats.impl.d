test/test_stats.ml: Alcotest Array Generators Helpers List QCheck Stats String Umrs_graph Umrs_routing
