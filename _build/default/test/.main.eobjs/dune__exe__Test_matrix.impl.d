test/test_matrix.ml: Alcotest Array Bignat Helpers List Matrix Perm QCheck Umrs_core Umrs_graph
