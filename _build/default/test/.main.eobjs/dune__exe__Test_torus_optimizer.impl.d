test/test_torus_optimizer.ml: Bfs Generators Graph Helpers Interval_routing List Props Routing_function Scheme Specialized Umrs_graph Umrs_routing
