test/test_interval.ml: Array Fun Generators Graph Helpers Interval_routing List Routing_function Scheme Table_scheme Umrs_graph Umrs_routing
