test/test_routing.ml: Alcotest Array Bfs Generators Graph Helpers List Registry Routing_function Scheme String Table_scheme Umrs_graph Umrs_routing
