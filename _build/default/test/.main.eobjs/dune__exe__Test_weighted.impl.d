test/test_weighted.ml: Alcotest Array Bfs Format Generators Graph Heap Helpers List QCheck Random Routing_function Scheme Table_scheme Umrs_graph Umrs_routing Weighted Weighted_tables
