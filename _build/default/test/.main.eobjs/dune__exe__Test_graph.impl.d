test/test_graph.ml: Graph Helpers List Perm Umrs_graph
