test/test_canonical.ml: Alcotest Array Canonical Fun Helpers List Matrix Umrs_core Umrs_graph
