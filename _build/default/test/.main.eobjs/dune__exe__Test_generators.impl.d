test/test_generators.ml: Alcotest Array Bfs Generators Graph Helpers List Props Umrs_graph
