test/test_specialized.ml: Array Generators Graph Helpers Perm Routing_function Scheme Specialized Umrs_bitcode Umrs_graph Umrs_routing
