test/test_orbit_failures.ml: Array Bignat Canonical Count Dot Enumerate Float Generators Helpers List Matrix Orbit Printf Scheme Simulator String Table_scheme Umrs_core Umrs_graph Umrs_routing
