test/test_props.ml: Alcotest Generators Graph Helpers List Props Umrs_graph
