test/test_product_iso_hotpotato.ml: Alcotest Array Bfs Generators Graph Helpers Iso List Perm Product Scheme Simulator Table_scheme Umrs_graph Umrs_routing
