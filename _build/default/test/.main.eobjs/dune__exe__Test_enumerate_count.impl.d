test/test_enumerate_count.ml: Alcotest Bignat Canonical Count Enumerate Float Helpers List Matrix Orbit Printf QCheck Umrs_core
