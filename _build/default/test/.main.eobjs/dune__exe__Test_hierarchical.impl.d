test/test_hierarchical.ml: Array Bfs Generators Graph Helpers Hierarchical_scheme List Printf Random Routing_function Scheme Umrs_graph Umrs_routing
