test/test_collective.ml: Bfs Collective Generators Graph Helpers Routing_function Scheme Spanner_scheme Table_scheme Umrs_graph Umrs_routing
