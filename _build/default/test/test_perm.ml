open Umrs_graph
open Helpers

let perm_gen =
  QCheck.Gen.map
    (fun (seed, n) -> Perm.random (Random.State.make [| seed |]) (1 + (abs n mod 10)))
    QCheck.Gen.(pair int int)

let arbitrary_perm = QCheck.make ~print:(Format.asprintf "%a" Perm.pp) perm_gen

let test_identity () =
  check_true "identity valid" (Perm.is_valid (Perm.identity 5));
  check_int "identity image" 3 (Perm.apply (Perm.identity 5) 3);
  check_true "identity of 0" (Perm.identity 0 = [||])

let test_is_valid () =
  check_true "valid" (Perm.is_valid [| 2; 0; 1 |]);
  check_true "repeat invalid" (not (Perm.is_valid [| 0; 0; 1 |]));
  check_true "range invalid" (not (Perm.is_valid [| 0; 3; 1 |]));
  check_true "negative invalid" (not (Perm.is_valid [| 0; -1; 2 |]))

let test_inverse_compose () =
  let p = [| 2; 0; 1 |] in
  check_true "inv" (Perm.inverse p = [| 1; 2; 0 |]);
  check_true "p . inv p = id" (Perm.compose p (Perm.inverse p) = Perm.identity 3);
  check_true "inv p . p = id" (Perm.compose (Perm.inverse p) p = Perm.identity 3)

let test_of_list () =
  check_true "of_list" (Perm.of_list [ 1; 0 ] = [| 1; 0 |]);
  Alcotest.check_raises "of_list invalid"
    (Invalid_argument "Perm.of_list: not a permutation") (fun () ->
      ignore (Perm.of_list [ 1; 1 ]))

let test_next_enumerates_all () =
  let seen = Hashtbl.create 24 in
  Perm.iter_all 4 (fun p -> Hashtbl.replace seen (Array.copy p) ());
  check_int "4! perms" 24 (Hashtbl.length seen)

let test_next_lexicographic () =
  let prev = ref None in
  Perm.iter_all 4 (fun p ->
      (match !prev with
      | Some q -> check_true "increasing" (compare q p < 0)
      | None -> ());
      prev := Some (Array.copy p))

let test_next_final () =
  let p = [| 2; 1; 0 |] in
  check_true "last returns false" (not (Perm.next p));
  check_true "wraps to identity" (p = [| 0; 1; 2 |])

let test_rank_unrank_explicit () =
  check_int "rank id" 0 (Perm.rank (Perm.identity 4));
  check_int "rank last" (Perm.factorial 4 - 1) (Perm.rank [| 3; 2; 1; 0 |]);
  check_true "unrank 0" (Perm.unrank 4 0 = Perm.identity 4)

let test_factorial () =
  check_int "0!" 1 (Perm.factorial 0);
  check_int "5!" 120 (Perm.factorial 5);
  check_int "12!" 479001600 (Perm.factorial 12)

let test_inversions () =
  check_int "sorted" 0 (Perm.count_inversions (Perm.identity 4));
  check_int "reversed" 6 (Perm.count_inversions [| 3; 2; 1; 0 |])

let test_fold_all () =
  check_int "sum over perms of 3" 6 (Perm.fold_all 3 (fun acc _ -> acc + 1) 0)

let suite =
  [
    case "identity" test_identity;
    case "is_valid" test_is_valid;
    case "inverse/compose" test_inverse_compose;
    case "of_list" test_of_list;
    case "next enumerates n!" test_next_enumerates_all;
    case "next is lexicographic" test_next_lexicographic;
    case "next wraps at the end" test_next_final;
    case "rank/unrank endpoints" test_rank_unrank_explicit;
    case "factorial" test_factorial;
    case "inversions" test_inversions;
    case "fold_all" test_fold_all;
    prop "rank . unrank = id" arbitrary_perm (fun p ->
        Perm.unrank (Array.length p) (Perm.rank p) = p);
    prop "inverse is an involution" arbitrary_perm (fun p ->
        Perm.inverse (Perm.inverse p) = p);
    prop "compose with inverse is identity" arbitrary_perm (fun p ->
        Perm.compose p (Perm.inverse p) = Perm.identity (Array.length p));
    prop "random perms are valid" arbitrary_perm Perm.is_valid;
    prop "rank in range" arbitrary_perm (fun p ->
        let r = Perm.rank p in
        0 <= r && r < Perm.factorial (Array.length p));
  ]
