open Umrs_graph
open Umrs_routing
open Helpers

(* ---------- heap ---------- *)

let test_heap_basic () =
  let h = Heap.create () in
  check_true "empty" (Heap.is_empty h);
  Heap.push h ~priority:5 "e";
  Heap.push h ~priority:1 "a";
  Heap.push h ~priority:3 "c";
  check_int "size" 3 (Heap.size h);
  check_true "peek" (Heap.peek_min h = Some (1, "a"));
  check_true "pop1" (Heap.pop_min h = Some (1, "a"));
  check_true "pop2" (Heap.pop_min h = Some (3, "c"));
  check_true "pop3" (Heap.pop_min h = Some (5, "e"));
  check_true "pop empty" (Heap.pop_min h = None)

let test_heap_sorts () =
  let st = rng () in
  let h = Heap.create () in
  let xs = Array.init 500 (fun _ -> Random.State.int st 10000) in
  Array.iter (fun x -> Heap.push h ~priority:x x) xs;
  let out = ref [] in
  let rec drain () =
    match Heap.pop_min h with
    | Some (k, _) ->
      out := k :: !out;
      drain ()
    | None -> ()
  in
  drain ();
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  check_true "heap sorts" (List.rev !out = Array.to_list sorted)

(* ---------- weighted graphs ---------- *)

let test_uniform_matches_bfs () =
  let g = Generators.petersen () in
  let w = Weighted.uniform g in
  for v = 0 to 9 do
    check_true "dijkstra = bfs" (Weighted.dijkstra w v = Bfs.distances g v)
  done

let test_weights_validated () =
  let g = Generators.path 3 in
  check_true "non-positive rejected"
    (try ignore (Weighted.of_graph g (fun _ _ -> 0)); false
     with Invalid_argument _ -> true);
  (* asymmetric cost rejected *)
  check_true "asymmetric rejected"
    (try
       ignore (Weighted.of_graph g (fun v k -> if v = 0 && k = 1 then 5 else 1));
       false
     with Invalid_argument _ -> true)

let test_weighted_shortcut () =
  (* triangle with one heavy edge: shortest path avoids it *)
  let g = Graph.of_edges ~n:3 [ (0, 1); (1, 2); (0, 2) ] in
  let cost v k =
    let w = Graph.neighbor g v ~port:k in
    if (min v w, max v w) = (0, 2) then 10 else 1
  in
  let w = Weighted.of_graph g cost in
  check_int "dist avoids heavy edge" 2 (Weighted.dijkstra w 0).(2);
  check_true "path goes around" (Weighted.shortest_path w 0 2 = Some [ 0; 1; 2 ]);
  check_int "edge cost accessor" 10 (Weighted.edge_cost w 0 2);
  check_int "path cost" 2 (Weighted.path_cost w [ 0; 1; 2 ])

let test_weighted_tables_optimal () =
  let st = rng () in
  let g = Generators.random_connected st ~n:12 ~m:24 in
  let w = Weighted.random st ~max_cost:9 g in
  let b = Weighted_tables.build w in
  check_true "delivers" (Routing_function.delivers_all b.Scheme.rf);
  check_true "weighted stretch 1"
    (Weighted_tables.stretch_at_most w b.Scheme.rf ~num:1 ~den:1);
  let s = Weighted_tables.stretch w b.Scheme.rf in
  Alcotest.(check (float 1e-9)) "ratio 1" 1.0 s.Weighted_tables.max_ratio

let test_hop_tables_suboptimal_on_weights () =
  (* unweighted tables ignore costs: on the heavy-edge triangle they
     route 0 -> 2 directly, paying 10 instead of 2 *)
  let g = Graph.of_edges ~n:3 [ (0, 1); (1, 2); (0, 2) ] in
  let cost v k =
    let x = Graph.neighbor g v ~port:k in
    if (min v x, max v x) = (0, 2) then 10 else 1
  in
  let w = Weighted.of_graph g cost in
  let hop_tables = Table_scheme.build g in
  check_true "hop routing is weight-suboptimal"
    (not (Weighted_tables.stretch_at_most w hop_tables.Scheme.rf ~num:1 ~den:1));
  let s = Weighted_tables.stretch w hop_tables.Scheme.rf in
  Alcotest.(check (float 1e-9)) "pays 5x" 5.0 s.Weighted_tables.max_ratio

let weighted_arb =
  let gen =
    QCheck.Gen.map
      (fun (seed, n, extra) ->
        let n = 3 + (abs n mod 12) in
        let m = min (n * (n - 1) / 2) (n - 1 + (abs extra mod n)) in
        let st = Random.State.make [| seed; n |] in
        let g = Generators.random_connected st ~n ~m in
        Weighted.random st ~max_cost:7 g)
      QCheck.Gen.(triple int int int)
  in
  QCheck.make ~print:(fun w -> Format.asprintf "%a" Graph.pp (Weighted.graph w)) gen

let suite =
  [
    case "heap basics" test_heap_basic;
    case "heap sorts 500 elements" test_heap_sorts;
    case "uniform dijkstra = bfs" test_uniform_matches_bfs;
    case "weights validated" test_weights_validated;
    case "heavy edge avoided" test_weighted_shortcut;
    case "weighted tables are optimal" test_weighted_tables_optimal;
    case "hop tables suboptimal under weights" test_hop_tables_suboptimal_on_weights;
    prop ~count:40 "dijkstra triangle inequality" weighted_arb (fun w ->
        let g = Weighted.graph w in
        let n = Graph.order g in
        let dist = Weighted.all_pairs w in
        let ok = ref true in
        for u = 0 to n - 1 do
          Graph.iter_arcs g (fun x k y ->
              if dist.(u).(y) > dist.(u).(x) + Weighted.cost w x k then
                ok := false)
        done;
        !ok);
    prop ~count:40 "dijkstra symmetric" weighted_arb (fun w ->
        let n = Graph.order (Weighted.graph w) in
        let dist = Weighted.all_pairs w in
        let ok = ref true in
        for u = 0 to n - 1 do
          for v = 0 to n - 1 do
            if dist.(u).(v) <> dist.(v).(u) then ok := false
          done
        done;
        !ok);
    prop ~count:40 "shortest_path cost equals distance" weighted_arb (fun w ->
        let n = Graph.order (Weighted.graph w) in
        let st = rng () in
        let u = Random.State.int st n and v = Random.State.int st n in
        u = v
        ||
        match Weighted.shortest_path w u v with
        | Some p -> Weighted.path_cost w p = (Weighted.dijkstra w u).(v)
        | None -> false);
    prop ~count:30 "weighted tables stretch 1 (random)" weighted_arb (fun w ->
        Weighted_tables.stretch_at_most w
          (Weighted_tables.build w).Scheme.rf ~num:1 ~den:1);
  ]
