open Umrs_graph
open Umrs_routing
open Helpers

(* Classical results of Dally & Seitz (reference [3] of the paper),
   machine-checked via channel dependency graphs. *)

let test_ecube_deadlock_free () =
  let g = Generators.hypercube 4 in
  let b = Specialized.build_ecube g in
  check_true "e-cube is deadlock-free (the classic result)"
    (Deadlock.is_deadlock_free b.Scheme.rf)

let test_mesh_dor_deadlock_free () =
  let g = Generators.grid 4 4 in
  let b = Specialized.build_grid ~w:4 ~h:4 g in
  check_true "mesh dimension-order is deadlock-free"
    (Deadlock.is_deadlock_free b.Scheme.rf)

let test_ring_has_cycle () =
  let g = Generators.cycle 6 in
  let b = Specialized.build_ring g in
  check_true "ring routing deadlocks (wrap-around cycle)"
    (not (Deadlock.is_deadlock_free b.Scheme.rf));
  match Deadlock.find_cycle b.Scheme.rf with
  | Some cycle -> check_true "witness is non-trivial" (List.length cycle >= 3)
  | None -> Alcotest.fail "expected a dependency cycle"

let test_torus_dor_has_cycle () =
  let dims = [ 4; 4 ] in
  let g = Generators.torus_nd dims in
  let b = Specialized.build_torus_dor ~dims g in
  check_true "torus DOR deadlocks without virtual channels"
    (not (Deadlock.is_deadlock_free b.Scheme.rf))

let test_virtual_channels_fix_torus () =
  (* the Dally-Seitz theorem: two virtual channels per link make torus
     dimension-order routing deadlock-free *)
  List.iter
    (fun dims ->
      let g = Generators.torus_nd dims in
      let b = Specialized.build_torus_dor ~dims g in
      check_true "plain channels cycle"
        (not (Deadlock.is_deadlock_free b.Scheme.rf));
      check_true "virtual channels are acyclic"
        (Specialized.torus_dor_vc_deadlock_free ~dims g))
    [ [ 4; 4 ]; [ 5; 3 ]; [ 4; 3; 4 ] ];
  (* subtlety: a 3-wide dimension never chains two hops, so the 3^3
     torus does not deadlock even without virtual channels *)
  let g333 = Generators.torus_nd [ 3; 3; 3 ] in
  check_true "3^3 torus is deadlock-free even without VCs"
    (Deadlock.is_deadlock_free
       (Specialized.build_torus_dor ~dims:[ 3; 3; 3 ] g333).Scheme.rf)

let test_acyclic_helper () =
  check_true "empty" (Deadlock.acyclic []);
  check_true "chain" (Deadlock.acyclic [ (1, 2); (2, 3) ]);
  check_true "cycle" (not (Deadlock.acyclic [ (1, 2); (2, 3); (3, 1) ]));
  check_true "self loop" (not (Deadlock.acyclic [ (7, 7) ]))

let test_tree_routing_deadlock_free () =
  let st = rng () in
  for _ = 1 to 5 do
    let t = Generators.random_tree st 16 in
    let b = Table_scheme.build t in
    check_true "up*/down* on trees is deadlock-free"
      (Deadlock.is_deadlock_free b.Scheme.rf)
  done

let test_dependencies_sane () =
  let g = Generators.path 4 in
  let b = Table_scheme.build g in
  let deps = Deadlock.dependencies b.Scheme.rf in
  (* path channels chain forward and backward; 2 + 2 dependencies *)
  check_int "chain dependencies" 4 (List.length deps);
  check_true "acyclic" (Deadlock.is_deadlock_free b.Scheme.rf)

let test_cycle_witness_is_consistent () =
  let g = Generators.cycle 8 in
  let b = Specialized.build_ring g in
  match Deadlock.find_cycle b.Scheme.rf with
  | None -> Alcotest.fail "expected a cycle"
  | Some cycle ->
    let deps = Deadlock.dependencies b.Scheme.rf in
    let dep_set = Hashtbl.create 32 in
    List.iter (fun d -> Hashtbl.replace dep_set d ()) deps;
    (* consecutive cycle elements are real dependencies, and it closes *)
    let rec check_links = function
      | a :: (b :: _ as rest) ->
        check_true "link exists" (Hashtbl.mem dep_set (a, b));
        check_links rest
      | [ last ] ->
        check_true "closes" (Hashtbl.mem dep_set (last, List.hd cycle))
      | [] -> ()
    in
    check_links cycle

let suite =
  [
    case "e-cube deadlock-free" test_ecube_deadlock_free;
    case "mesh DOR deadlock-free" test_mesh_dor_deadlock_free;
    case "ring routing deadlocks" test_ring_has_cycle;
    case "torus DOR deadlocks" test_torus_dor_has_cycle;
    case "virtual channels fix the torus" test_virtual_channels_fix_torus;
    case "acyclic helper" test_acyclic_helper;
    case "tree routing deadlock-free" test_tree_routing_deadlock_free;
    case "dependency extraction" test_dependencies_sane;
    case "cycle witness consistent" test_cycle_witness_is_consistent;
    prop ~count:25 "trees are always deadlock-free" arbitrary_tree (fun t ->
        Deadlock.is_deadlock_free (Table_scheme.build t).Scheme.rf);
    prop ~count:20 "find_cycle agrees with is_deadlock_free"
      arbitrary_connected_graph (fun g ->
        let rf = (Table_scheme.build g).Scheme.rf in
        Deadlock.is_deadlock_free rf = (Deadlock.find_cycle rf = None));
  ]
