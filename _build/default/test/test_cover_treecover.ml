open Umrs_graph
open Umrs_routing
open Helpers

(* ---------- sparse covers ---------- *)

let test_cover_covers () =
  List.iter
    (fun (name, g, r) ->
      let c = Cover.build g ~r in
      check_true (name ^ " covers balls") (Cover.covers_balls g c))
    [
      ("cycle", Generators.cycle 16, 2);
      ("grid", Generators.grid 5 5, 1);
      ("petersen", Generators.petersen (), 1);
      ("tree", Generators.random_tree (rng ()) 20, 3);
    ]

let test_cover_radius_bound () =
  let g = Generators.grid 6 6 in
  let r = 2 in
  let c = Cover.build g ~r in
  let n = Graph.order g in
  let bound = r * (1 + int_of_float (Float.log (float_of_int n) /. Float.log 2.0) + 1) in
  check_true "radius within r(log n + 2)" (Cover.max_cluster_radius c <= bound)

let test_cover_radius_zero () =
  let g = Generators.path 6 in
  let c = Cover.build g ~r:0 in
  check_true "singleton-ish clusters"
    (Array.for_all (fun (cl : Cover.cluster) -> cl.Cover.radius = 0) c.Cover.clusters);
  check_true "still covers" (Cover.covers_balls g c)

let test_cover_membership_reasonable () =
  let g = Generators.torus 5 5 in
  let c = Cover.build g ~r:1 in
  check_true "membership sane" (Cover.max_membership g c <= 25)

(* ---------- tree cover routing ---------- *)

let test_treecover_petersen () =
  let g = Generators.petersen () in
  let b = Tree_cover_scheme.build g in
  check_true "delivers" (Routing_function.delivers_all b.Scheme.rf);
  let s = Routing_function.stretch b.Scheme.rf in
  check_true "within guarantee"
    (s.Routing_function.max_ratio <= Tree_cover_scheme.stretch_guarantee g)

let test_treecover_families () =
  List.iter
    (fun (name, g) ->
      let b = Tree_cover_scheme.build g in
      check_true (name ^ " delivers") (Routing_function.delivers_all b.Scheme.rf);
      let s = Routing_function.stretch b.Scheme.rf in
      check_true
        (name ^ " within O(log n) guarantee")
        (s.Routing_function.max_ratio <= Tree_cover_scheme.stretch_guarantee g))
    [
      ("cycle 18", Generators.cycle 18);
      ("grid 5x5", Generators.grid 5 5);
      ("hypercube 16", Generators.hypercube 4);
      ("random tree", Generators.random_tree (rng ()) 20);
    ]

let test_treecover_memory_vs_tables () =
  (* polylog-ish per-router state: on a long cycle the tree-cover tables
     stay far below the n-entry tables in entry count; in bits the
     verdict depends on n - just check both are measured and positive *)
  let g = Generators.cycle 32 in
  let tc = Tree_cover_scheme.build g in
  let tb = Table_scheme.build g in
  check_true "positive" (Scheme.mem_local tc > 0 && Scheme.mem_local tb > 0)

let suite =
  [
    case "covers cover r-balls" test_cover_covers;
    case "cluster radius bound" test_cover_radius_bound;
    case "radius zero" test_cover_radius_zero;
    case "membership reasonable" test_cover_membership_reasonable;
    case "tree-cover on petersen" test_treecover_petersen;
    case "tree-cover across families" test_treecover_families;
    case "tree-cover memory measured" test_treecover_memory_vs_tables;
    prop ~count:25 "covers cover on random graphs" arbitrary_connected_graph
      (fun g ->
        let st = rng () in
        let r = Random.State.int st 3 in
        Cover.covers_balls g (Cover.build g ~r));
    prop ~count:20 "tree-cover delivers within guarantee on random graphs"
      arbitrary_connected_graph (fun g ->
        let b = Tree_cover_scheme.build g in
        Routing_function.delivers_all b.Scheme.rf
        &&
        let s = Routing_function.stretch b.Scheme.rf in
        s.Routing_function.max_ratio <= Tree_cover_scheme.stretch_guarantee g);
  ]
