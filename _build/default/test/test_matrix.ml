open Umrs_core
open Umrs_graph
open Helpers

let m_ex () = Matrix.create [| [| 1; 2; 1 |]; [| 1; 1; 2 |] |]

let test_create_validates () =
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  check_true "prefix ok" (Matrix.dims (m_ex ()) = (2, 3));
  check_true "non-prefix rejected"
    (raises (fun () -> Matrix.create [| [| 2; 3 |] |]));
  check_true "zero rejected" (raises (fun () -> Matrix.create [| [| 0; 1 |] |]));
  check_true "ragged rejected"
    (raises (fun () -> Matrix.create_relaxed [| [| 1 |]; [| 1; 2 |] |]));
  check_true "empty rejected" (raises (fun () -> Matrix.create [||]));
  (* relaxed accepts non-prefix rows *)
  check_true "relaxed accepts"
    (Matrix.dims (Matrix.create_relaxed [| [| 3; 5 |] |]) = (1, 2))

let test_accessors () =
  let m = m_ex () in
  check_int "get" 2 (Matrix.get m 0 1);
  check_int "row alphabet" 2 (Matrix.row_alphabet m 0);
  check_int "max entry" 2 (Matrix.max_entry m)

let test_index () =
  (* the paper's index example: digits m_ij - 1 read in base d *)
  let m = Matrix.create [| [| 1; 2 |]; [| 1; 1 |] |] in
  check_true "index 9 in base 3"
    (Bignat.to_int_opt (Matrix.index m ~base:3) = Some 9);
  let m' = Matrix.create [| [| 1; 1 |]; [| 1; 2 |] |] in
  check_true "index 1 in base 3"
    (Bignat.to_int_opt (Matrix.index m' ~base:3) = Some 1)

let test_compare_lex_consistent_with_index () =
  let a = Matrix.create [| [| 1; 1 |]; [| 1; 2 |] |] in
  let b = Matrix.create [| [| 1; 2 |]; [| 1; 1 |] |] in
  check_true "lex order" (Matrix.compare_lex a b < 0);
  check_true "index order"
    (Bignat.compare (Matrix.index a ~base:3) (Matrix.index b ~base:3) < 0)

let test_permute_rows_cols () =
  let m = m_ex () in
  let mr = Matrix.permute_rows m [| 1; 0 |] in
  check_true "row content" (Matrix.get mr 0 0 = 1 && Matrix.get mr 0 1 = 1 && Matrix.get mr 0 2 = 2);
  let mc = Matrix.permute_cols m [| 2; 0; 1 |] in
  (* new column j = old column sigma(j) *)
  check_true "col content" (Matrix.get mc 0 0 = 1 && Matrix.get mc 0 1 = 1 && Matrix.get mc 0 2 = 2)

let test_permute_row_entries () =
  let m = m_ex () in
  let m' = Matrix.permute_row_entries m 0 [| 1; 0 |] in
  check_true "row 0 relabelled"
    (Matrix.get m' 0 0 = 2 && Matrix.get m' 0 1 = 1 && Matrix.get m' 0 2 = 2);
  check_true "row 1 untouched" (Matrix.get m' 1 0 = 1 && Matrix.get m' 1 2 = 2)

let test_string_roundtrip () =
  let m = m_ex () in
  Alcotest.(check string) "to_string" "[1 2 1; 1 1 2]" (Matrix.to_string m);
  check_true "roundtrip" (Matrix.equal m (Matrix.of_string (Matrix.to_string m)))

let suite =
  [
    case "create validates" test_create_validates;
    case "accessors" test_accessors;
    case "index (paper example)" test_index;
    case "compare_lex consistent with index" test_compare_lex_consistent_with_index;
    case "permute rows/cols" test_permute_rows_cols;
    case "permute row entries" test_permute_row_entries;
    case "string roundtrip" test_string_roundtrip;
    prop "string roundtrip (random)" arbitrary_matrix (fun m ->
        Matrix.equal m (Matrix.of_string (Matrix.to_string m)));
    prop "row permutation preserves multiset of rows" arbitrary_matrix
      (fun m ->
        let p, _ = Matrix.dims m in
        let st = rng () in
        let m' = Matrix.permute_rows m (Perm.random st p) in
        let rows mm =
          List.sort compare
            (List.init p (fun i ->
                 Array.to_list
                   (Array.init (snd (Matrix.dims mm)) (Matrix.get mm i))))
        in
        rows m = rows m');
    prop "lex order is total and antisymmetric" (QCheck.pair arbitrary_matrix arbitrary_matrix)
      (fun (a, b) ->
        let pa, qa = Matrix.dims a and pb, qb = Matrix.dims b in
        pa <> pb || qa <> qb
        ||
        let c1 = Matrix.compare_lex a b and c2 = Matrix.compare_lex b a in
        (c1 = 0 && c2 = 0 && Matrix.equal a b)
        || (c1 < 0 && c2 > 0)
        || (c1 > 0 && c2 < 0));
  ]
