open Umrs_graph
open Helpers

let triangle () = Graph.of_edges ~n:3 [ (0, 1); (1, 2); (2, 0) ]

let test_of_edges_basic () =
  let g = triangle () in
  check_int "order" 3 (Graph.order g);
  check_int "size" 3 (Graph.size g);
  check_int "degree" 2 (Graph.degree g 0);
  check_int "max degree" 2 (Graph.max_degree g)

let test_port_semantics () =
  (* ports follow edge insertion order *)
  let g = Graph.of_edges ~n:3 [ (0, 1); (0, 2) ] in
  check_int "port 1 of 0" 1 (Graph.neighbor g 0 ~port:1);
  check_int "port 2 of 0" 2 (Graph.neighbor g 0 ~port:2);
  check_true "port_to" (Graph.port_to g ~src:0 ~dst:2 = Some 2);
  check_true "port_to absent" (Graph.port_to g ~src:1 ~dst:2 = None)

let test_invalid_inputs () =
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  check_true "loop rejected" (raises (fun () -> Graph.of_edges ~n:2 [ (0, 0) ]));
  check_true "dup rejected"
    (raises (fun () -> Graph.of_edges ~n:2 [ (0, 1); (1, 0) ]));
  check_true "range rejected" (raises (fun () -> Graph.of_edges ~n:2 [ (0, 5) ]));
  check_true "bad port"
    (raises (fun () -> Graph.neighbor (triangle ()) 0 ~port:3))

let test_of_adjacency_symmetric () =
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  check_true "asymmetric rejected"
    (raises (fun () -> Graph.of_adjacency [| [| 1 |]; [||] |]));
  let g = Graph.of_adjacency [| [| 1 |]; [| 0 |] |] in
  check_int "edge count" 1 (Graph.size g)

let test_edges_iter_arcs () =
  let g = triangle () in
  check_true "edges" (List.sort compare (Graph.edges g) = [ (0, 1); (0, 2); (1, 2) ]);
  let arcs = ref 0 in
  Graph.iter_arcs g (fun _ _ _ -> incr arcs);
  check_int "arc count = 2m" 6 !arcs

let test_relabel_ports () =
  let g = Graph.of_edges ~n:3 [ (0, 1); (0, 2) ] in
  let perms = [| [| 1; 0 |]; [| 0 |]; [| 0 |] |] in
  let g' = Graph.relabel_ports g perms in
  check_int "swapped port 1" 2 (Graph.neighbor g' 0 ~port:1);
  check_int "swapped port 2" 1 (Graph.neighbor g' 0 ~port:2);
  check_int "other vertex unchanged" 0 (Graph.neighbor g' 1 ~port:1)

let test_permute_vertices () =
  let g = Graph.of_edges ~n:3 [ (0, 1) ] in
  let g' = Graph.permute_vertices g [| 2; 0; 1 |] in
  check_true "edge moved" (Graph.mem_edge g' 2 0);
  check_true "old edge gone" (not (Graph.mem_edge g' 0 1))

let test_attach_path () =
  let g = triangle () in
  let g' = Graph.attach_path g ~anchor:1 ~len:3 in
  check_int "order" 6 (Graph.order g');
  check_int "size" 6 (Graph.size g');
  check_true "chain" (Graph.mem_edge g' 1 3 && Graph.mem_edge g' 3 4 && Graph.mem_edge g' 4 5);
  check_int "tail degree" 1 (Graph.degree g' 5);
  check_true "len 0 is id" (Graph.equal g (Graph.attach_path g ~anchor:0 ~len:0))

let test_disjoint_union () =
  let g = Graph.disjoint_union (triangle ()) (triangle ()) in
  check_int "order" 6 (Graph.order g);
  check_true "shifted edge" (Graph.mem_edge g 3 4);
  check_true "not connected" (not (Graph.is_connected g))

let test_add_edge () =
  let g = Graph.add_edge (Graph.empty 2) 0 1 in
  check_true "edge added" (Graph.mem_edge g 0 1);
  check_true "connected now" (Graph.is_connected g)

let test_is_connected () =
  check_true "triangle" (Graph.is_connected (triangle ()));
  check_true "empty graph" (Graph.is_connected (Graph.empty 0));
  check_true "singleton" (Graph.is_connected (Graph.empty 1));
  check_true "two isolated" (not (Graph.is_connected (Graph.empty 2)))

let suite =
  [
    case "of_edges basics" test_of_edges_basic;
    case "port semantics" test_port_semantics;
    case "invalid inputs" test_invalid_inputs;
    case "of_adjacency symmetry" test_of_adjacency_symmetric;
    case "edges and arcs" test_edges_iter_arcs;
    case "relabel_ports" test_relabel_ports;
    case "permute_vertices" test_permute_vertices;
    case "attach_path" test_attach_path;
    case "disjoint_union" test_disjoint_union;
    case "add_edge" test_add_edge;
    case "is_connected" test_is_connected;
    prop "generated graphs are connected" arbitrary_connected_graph
      Graph.is_connected;
    prop "arc count is twice edge count" arbitrary_connected_graph (fun g ->
        let arcs = ref 0 in
        Graph.iter_arcs g (fun _ _ _ -> incr arcs);
        !arcs = 2 * Graph.size g);
    prop "port_to agrees with neighbor" arbitrary_connected_graph (fun g ->
        Graph.fold_vertices g
          (fun ok v ->
            ok
            && List.for_all
                 (fun k ->
                   Graph.port_to g ~src:v ~dst:(Graph.neighbor g v ~port:k)
                   = Some k)
                 (List.init (Graph.degree g v) (fun k -> k + 1)))
          true);
    prop "vertex permutation preserves size" arbitrary_connected_graph (fun g ->
        let st = rng () in
        let p = Perm.random st (Graph.order g) in
        Graph.size (Graph.permute_vertices g p) = Graph.size g);
  ]
