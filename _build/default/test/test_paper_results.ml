(* Figure 1, Theorem 1 reconstruction, the Theorem 1 calculator, and
   Table 1 — the experiments of EXPERIMENTS.md as regression tests. *)

open Umrs_core
open Umrs_graph
open Helpers

(* ---------- Figure 1: Petersen ---------- *)

let test_petersen_unique_sp () =
  check_true "petersen has unique shortest paths"
    (Petersen.unique_shortest_paths (Generators.petersen ()))

let test_petersen_instance () =
  let t = Petersen.instance () in
  check_true "verified as matrix of constraints" (Petersen.verify t);
  let p, q = Matrix.dims t.Petersen.matrix in
  check_int "5 rows" 5 p;
  check_int "5 cols" 5 q;
  (* every row normalized and using all 3 ports (degree 3) *)
  for i = 0 to 4 do
    check_int "row alphabet 3" 3 (Matrix.row_alphabet t.Petersen.matrix i)
  done

let test_petersen_relabelled_graph_is_petersen () =
  let t = Petersen.instance () in
  let g = t.Petersen.graph in
  check_int "order" 10 (Graph.order g);
  check_int "size" 15 (Graph.size g);
  check_true "3-regular" (Props.is_regular g);
  check_true "girth 5" (Props.girth g = Some 5)

let test_petersen_spoke_entry () =
  (* the figure's flagship claim: every shortest path a_i -> b_i (its
     spoke neighbour) starts with the direct arc *)
  let t = Petersen.instance () in
  let g = t.Petersen.graph in
  let dist = Bfs.all_pairs g in
  for i = 0 to 4 do
    let a = t.Petersen.constrained.(i) and b = t.Petersen.targets.(i) in
    match
      Verify.usable_ports g ~dist ~src:a ~dst:b
        ~bound:Verify.shortest_paths_only
    with
    | [ k ] -> check_int "direct arc" b (Graph.neighbor g a ~port:k)
    | _ -> Alcotest.fail "spoke port not unique"
  done

(* ---------- Theorem 1: reconstruction ---------- *)

let table_scheme = Umrs_routing.Table_scheme.build

let test_reconstruct_roundtrip_223 () =
  let o = Reconstruct.run_experiment ~p:2 ~q:2 ~d:3 ~scheme:table_scheme () in
  check_int "classes" 3 o.Reconstruct.classes;
  check_true "injective" o.Reconstruct.injective;
  check_true "forced" o.Reconstruct.all_forced;
  check_true "recovered" o.Reconstruct.all_recovered

let test_reconstruct_roundtrip_232 () =
  let o = Reconstruct.run_experiment ~p:2 ~q:3 ~d:2 ~scheme:table_scheme () in
  check_true "injective" o.Reconstruct.injective;
  check_true "recovered" o.Reconstruct.all_recovered;
  check_true "info bits positive" (o.Reconstruct.bits_information > 0.0)

let test_reconstruct_with_padding () =
  let o =
    Reconstruct.run_experiment ~pad_to:24 ~p:2 ~q:2 ~d:2 ~scheme:table_scheme ()
  in
  check_true "padded graphs still reconstruct"
    (o.Reconstruct.injective && o.Reconstruct.all_recovered
   && o.Reconstruct.all_forced)

let test_reconstruct_with_interval_scheme () =
  (* any shortest-path scheme must reconstruct, not just tables *)
  let o =
    Reconstruct.run_experiment ~p:2 ~q:2 ~d:3
      ~scheme:(fun g -> Umrs_routing.Interval_routing.build g)
      ()
  in
  check_true "interval scheme reconstructs"
    (o.Reconstruct.injective && o.Reconstruct.all_recovered)

let test_from_routing_is_forced_matrix () =
  let m = Matrix.create [| [| 1; 2; 1 |]; [| 1; 1; 2 |] |] in
  let t = Cgraph.of_matrix m in
  let built = table_scheme t.Cgraph.graph in
  let m' = Reconstruct.from_routing t built.Umrs_routing.Scheme.rf in
  check_true "raw reconstruction equals M" (Matrix.equal m m')

(* ---------- Theorem 1: calculator ---------- *)

let test_params_fit () =
  List.iter
    (fun (n, eps) ->
      let p = Lower_bound.choose_params ~n ~eps in
      check_true "order fits" (p.Lower_bound.order_unpadded <= n);
      check_true "p >= 2" (p.Lower_bound.p >= 2);
      check_true "d >= 2" (p.Lower_bound.d >= 2))
    [ (64, 0.5); (1024, 0.25); (1024, 0.5); (65536, 0.75) ]

let test_bound_positive_and_below_tables () =
  let b = Lower_bound.theorem1 ~n:16384 ~eps:0.5 in
  check_true "positive" (b.Lower_bound.bits_per_router > 0.0);
  check_true "below upper bound"
    (b.Lower_bound.bits_per_router <= b.Lower_bound.table_upper_bits);
  check_true "same order of magnitude" (b.Lower_bound.ratio > 0.05)

let test_ratio_improves_with_n () =
  (* Theta(n log n) lower vs O(n log n) upper: the ratio must not
     degrade as n grows (it converges to a constant) *)
  let r n = (Lower_bound.theorem1 ~n ~eps:0.5).Lower_bound.ratio in
  check_true "non-degrading" (r 262144 > r 1024)

let test_global_bound () =
  let b = Lower_bound.global_theorem ~n:4096 in
  check_true "quadratic"
    (b.Lower_bound.g_bits_total > 0.5 *. (4096.0 *. 4096.0) /. 16.0);
  check_true "below table total"
    (b.Lower_bound.g_bits_total <= b.Lower_bound.g_table_global_bits);
  (* the Omega(n^2) constant approaches 1/16 from below *)
  let r n = (Lower_bound.global_theorem ~n).Lower_bound.g_ratio in
  check_true "ratio grows toward 1/16" (r 65536 > r 1024 && r 65536 < 0.0625)

let test_sweep_skips_infeasible () =
  let bounds = Lower_bound.sweep ~ns:[ 16; 1024 ] ~epss:[ 0.5; 0.99 ] in
  (* eps=0.99 at n=16 gives p ~ 15, infeasible; survivors only *)
  check_true "some results" (List.length bounds >= 1);
  List.iter
    (fun b ->
      check_true "all feasible"
        (b.Lower_bound.params.Lower_bound.order_unpadded
        <= b.Lower_bound.params.Lower_bound.n))
    bounds

(* ---------- Table 1 ---------- *)

let test_rows_cover_stretches () =
  List.iter
    (fun s ->
      let r = Bounds_table.row_for ~s in
      check_true "applies" (r.Bounds_table.applies ~s))
    [ 1.0; 1.5; 2.0; 2.5; 3.0; 4.0; 5.0; 100.0 ]

let test_theorem_row () =
  let r = Bounds_table.row_for ~s:1.5 in
  check_true "this paper's row" (not r.Bounds_table.from_cited_work);
  check_true "mentions theorem"
    (String.length r.Bounds_table.local_lower.Bounds_table.text > 0);
  (* local lower = local upper asymptotically: tables are optimal *)
  let n = 4096 in
  Alcotest.(check (float 1.0))
    "tight row"
    (r.Bounds_table.local_upper.Bounds_table.bits ~n)
    (r.Bounds_table.local_lower.Bounds_table.bits ~n)

let test_formulas_monotone_in_n () =
  List.iter
    (fun r ->
      let lo = r.Bounds_table.local_lower.Bounds_table.bits in
      check_true "monotone" (lo ~n:65536 >= lo ~n:256))
    Bounds_table.rows

let test_print_renders () =
  let s = Format.asprintf "%a" (fun fmt () -> Bounds_table.print ~n:1024 fmt ()) () in
  check_true "has header" (String.length s > 200);
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  check_true "mentions theorem 1" (contains s "THEOREM 1")


let test_spec_checklist () =
  List.iter
    (fun (name, passed) -> check_true name passed)
    (Spec.all ())


let test_sampled_reconstruction () =
  let st = rng () in
  let s =
    Reconstruct.run_sampled st ~samples:8 ~p:3 ~q:4 ~d:3
      ~scheme:Umrs_routing.Table_scheme.build ()
  in
  check_true "forced on samples" s.Reconstruct.s_all_forced;
  check_true "recovered on samples" s.Reconstruct.s_all_recovered

let suite =
  [
    case "petersen unique shortest paths" test_petersen_unique_sp;
    case "petersen figure instance verifies" test_petersen_instance;
    case "petersen relabelling preserves structure"
      test_petersen_relabelled_graph_is_petersen;
    case "petersen spoke entries forced" test_petersen_spoke_entry;
    case "reconstruct dM(2,2,3) via tables" test_reconstruct_roundtrip_223;
    case "reconstruct dM(2,3,2)" test_reconstruct_roundtrip_232;
    case "reconstruct with padded graphs" test_reconstruct_with_padding;
    case "reconstruct via interval routing" test_reconstruct_with_interval_scheme;
    case "raw reconstruction = M" test_from_routing_is_forced_matrix;
    case "theorem-1 parameters fit" test_params_fit;
    case "lower bound positive, below tables" test_bound_positive_and_below_tables;
    case "ratio improves with n" test_ratio_improves_with_n;
    case "sweep skips infeasible" test_sweep_skips_infeasible;
    case "global Omega(n^2) bound ([6])" test_global_bound;
    case "executable checklist (Spec.all)" test_spec_checklist;
    case "sampled reconstruction at (3,4,3)" test_sampled_reconstruction;
    case "table rows cover all stretches" test_rows_cover_stretches;
    case "theorem row is tight" test_theorem_row;
    case "formulas monotone in n" test_formulas_monotone_in_n;
    case "table printing" test_print_renders;
  ]
