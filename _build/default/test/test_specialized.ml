open Umrs_graph
open Umrs_routing
open Helpers

let test_ecube_correct () =
  let g = Generators.hypercube 4 in
  let b = Specialized.build_ecube g in
  check_true "delivers" (Routing_function.delivers_all b.Scheme.rf);
  check_true "stretch 1"
    (Routing_function.stretch_at_most b.Scheme.rf ~num:1 ~den:1)

let test_ecube_memory_logarithmic () =
  let bits dim = Scheme.mem_local (Specialized.build_ecube (Generators.hypercube dim)) in
  let b3 = bits 3 and b6 = bits 6 in
  (* memory grows like dim = log n, far below n *)
  check_true "O(log n)" (b6 <= b3 + 10);
  check_true "small" (b6 < 32)

let test_ecube_rejects_non_cube () =
  check_true "cycle rejected"
    (try ignore (Specialized.build_ecube (Generators.cycle 8)); false
     with Invalid_argument _ -> true);
  (* right order and degree but wrong port labelling *)
  let g = Generators.hypercube 3 in
  let perms =
    Array.init 8 (fun v -> if v = 0 then [| 1; 0; 2 |] else Perm.identity 3)
  in
  check_true "bad ports rejected"
    (try ignore (Specialized.build_ecube (Graph.relabel_ports g perms)); false
     with Invalid_argument _ -> true)

let test_ring_correct () =
  for n = 3 to 12 do
    let b = Specialized.build_ring (Generators.cycle n) in
    check_true "delivers" (Routing_function.delivers_all b.Scheme.rf);
    check_true "stretch 1"
      (Routing_function.stretch_at_most b.Scheme.rf ~num:1 ~den:1)
  done

let test_ring_memory () =
  let b = Specialized.build_ring (Generators.cycle 64) in
  check_true "O(log n) bits" (Scheme.mem_local b < 40)

let test_grid_correct () =
  let g = Generators.grid 4 5 in
  let b = Specialized.build_grid ~w:4 ~h:5 g in
  check_true "delivers" (Routing_function.delivers_all b.Scheme.rf);
  check_true "stretch 1"
    (Routing_function.stretch_at_most b.Scheme.rf ~num:1 ~den:1)

let test_grid_rejects_mismatch () =
  check_true "wrong dims"
    (try ignore (Specialized.build_grid ~w:3 ~h:3 (Generators.grid 4 5)); false
     with Invalid_argument _ -> true)

let test_complete_direct () =
  let g = Generators.complete 9 in
  let b = Specialized.build_complete_direct g in
  check_true "delivers" (Routing_function.delivers_all b.Scheme.rf);
  check_true "stretch 1"
    (Routing_function.stretch_at_most b.Scheme.rf ~num:1 ~den:1);
  check_true "O(log n) memory" (Scheme.mem_local b < 16)

let test_complete_adversarial () =
  let st = rng () in
  let g = Generators.complete 9 in
  let b = Specialized.build_complete_adversarial st g in
  check_true "delivers" (Routing_function.delivers_all b.Scheme.rf);
  check_true "stretch 1"
    (Routing_function.stretch_at_most b.Scheme.rf ~num:1 ~den:1)

let test_adversarial_memory_gap () =
  (* Section 1's example: adversarial port labels force ~log2((n-1)!)
     bits; a good labelling needs only O(log n). *)
  let st = rng () in
  let g = Generators.complete 12 in
  let direct = Specialized.build_complete_direct g in
  let adv = Specialized.build_complete_adversarial st g in
  let gap = Scheme.mem_local adv - Scheme.mem_local direct in
  check_true "permutation cost"
    (gap >= Umrs_bitcode.Rank.permutation_length 11);
  check_true "direct is tiny" (Scheme.mem_local direct < 16)

let test_adversarial_grows_n_log_n () =
  let st = rng () in
  let bits n =
    Scheme.mem_local (Specialized.build_complete_adversarial st (Generators.complete n))
  in
  let b8 = bits 8 and b16 = bits 16 in
  (* log2(15!) ~ 40 vs log2(7!) ~ 12: superlinear in n *)
  check_true "superlinear growth" (b16 > 2 * b8)

let suite =
  [
    case "ecube correct on H16" test_ecube_correct;
    case "ecube memory O(log n)" test_ecube_memory_logarithmic;
    case "ecube validates input" test_ecube_rejects_non_cube;
    case "ring correct C3..C12" test_ring_correct;
    case "ring memory" test_ring_memory;
    case "grid dimension-order" test_grid_correct;
    case "grid validates input" test_grid_rejects_mismatch;
    case "K_n direct routing" test_complete_direct;
    case "K_n adversarial routing" test_complete_adversarial;
    case "adversarial memory gap (Section 1)" test_adversarial_memory_gap;
    case "adversarial bits grow superlinearly" test_adversarial_grows_n_log_n;
  ]
