(* Boundary and negative cases that document where properties STOP
   holding - as informative as the positive suites. *)

open Umrs_core
open Umrs_graph
open Umrs_routing
open Helpers

let test_petersen_not_forced_below_two () =
  (* Figure 1 is a matrix of constraints of SHORTEST PATHS: at the
     stretch-<2 bound, odd cycles open length-3 alternatives, so the
     same matrix is no longer forced - the figure's stretch-1 phrasing
     is essential *)
  let t = Petersen.instance () in
  match
    Verify.check t.Petersen.graph ~constrained:t.Petersen.constrained
      ~targets:t.Petersen.targets t.Petersen.matrix ~bound:Verify.below_two
  with
  | Ok () -> Alcotest.fail "below-two forcing should fail on Petersen"
  | Error vs -> check_true "some pairs open up" (List.length vs > 0)

let test_treecover_addresses_polylog () =
  (* the O(log^2 n) labels the paper notes for [2]-style schemes *)
  List.iter
    (fun g ->
      let b = Tree_cover_scheme.build g in
      let n = Graph.order g in
      let log2n = Float.log (float_of_int n) /. Float.log 2.0 in
      let bound = int_of_float (8.0 *. (log2n +. 2.0) *. (log2n +. 2.0)) in
      check_true "header O(log^2 n)"
        (Routing_function.max_header_bits b.Scheme.rf <= bound))
    [ Generators.cycle 24; Generators.grid 5 5; Generators.petersen () ]

let test_hierarchical_radius_zero () =
  let g = Generators.cycle 8 in
  let b = Hierarchical_scheme.build ~radius:0 g in
  check_true "singleton clusters still deliver"
    (Routing_function.delivers_all b.Scheme.rf)

let test_attach_path_bad_anchor () =
  check_true "anchor out of range"
    (try ignore (Graph.attach_path (Generators.path 3) ~anchor:7 ~len:2); false
     with Invalid_argument _ -> true);
  check_true "negative length"
    (try ignore (Graph.attach_path (Generators.path 3) ~anchor:0 ~len:(-1)); false
     with Invalid_argument _ -> true)

let test_usable_ports_same_vertex () =
  let g = Generators.cycle 5 in
  let dist = Bfs.all_pairs g in
  check_true "src=dst rejected"
    (try
       ignore
         (Verify.usable_ports g ~dist ~src:1 ~dst:1
            ~bound:Verify.shortest_paths_only);
       false
     with Invalid_argument _ -> true)

let test_lower_bound_rejects_bad_eps () =
  List.iter
    (fun eps ->
      check_true "bad eps"
        (try ignore (Lower_bound.choose_params ~n:1024 ~eps); false
         with Invalid_argument _ -> true))
    [ 0.0; 1.0; -0.5; 2.0 ]

let test_matrix_of_string_errors () =
  let rejects s =
    try ignore (Matrix.of_string s); false
    with Invalid_argument _ | Failure _ -> true
  in
  check_true "no brackets" (rejects "1 2; 1 1");
  check_true "empty" (rejects "[]");
  check_true "garbage" (rejects "[a b]")

let test_cgraph_rejects_relaxed_rows () =
  (* a relaxed (non-prefix) matrix cannot wire ports *)
  let m = Matrix.create_relaxed [| [| 2; 3 |] |] in
  check_true "rejected"
    (try ignore (Cgraph.of_matrix m); false
     with Invalid_argument _ -> true)

let test_spanner_rejects_disconnected () =
  check_true "rejected"
    (try ignore (Umrs_spanner.Spanner.greedy (Graph.empty 3) ~k:2); false
     with Invalid_argument _ -> true)

let test_simulator_rejects_self_pair () =
  let rf = (Table_scheme.build (Generators.path 3)).Scheme.rf in
  check_true "rejected"
    (try ignore (Simulator.run rf ~pairs:[ (1, 1) ]); false
     with Invalid_argument _ -> true)

let test_interval_disconnected () =
  check_true "rejected"
    (try ignore (Interval_routing.compile (Graph.empty 4)); false
     with Invalid_argument _ -> true)

let test_bignat_reconstruction () =
  let st = rng () in
  for _ = 1 to 50 do
    let a = Random.State.int st 1000000 and b = 1 + Random.State.int st 9999 in
    let big =
      Bignat.mul (Bignat.pow (Bignat.of_int 10) 12) (Bignat.of_int a)
    in
    let q, r = Bignat.div_int big b in
    check_true "a = q*b + r"
      (Bignat.equal big (Bignat.add (Bignat.mul_int q b) (Bignat.of_int r)))
  done


let test_large_scale_smoke () =
  (* performance guard: n = 512 builds and routes without quadratic
     blow-ups in the encodings *)
  let st = rng () in
  let g = Generators.random_connected st ~n:512 ~m:1200 in
  let tables = Table_scheme.build g in
  check_true "tables local sane"
    (Scheme.mem_local tables <= 511 * 8);
  let iv = Interval_routing.build g in
  check_true "interval built" (Scheme.mem_local iv > 0);
  (* spot-check routes *)
  for _ = 1 to 20 do
    let u = Random.State.int st 512 and v = Random.State.int st 512 in
    if u <> v then begin
      let t = Routing_function.route tables.Scheme.rf u v in
      check_true "delivered" (t.Routing_function.hops >= 1)
    end
  done;
  check_true "sampled stretch 1"
    (Routing_function.sampled_stretch st tables.Scheme.rf ~pairs:30 <= 1.0 +. 1e-9)

let suite =
  [
    case "petersen matrix not forced at stretch <2"
      test_petersen_not_forced_below_two;
    case "tree-cover addresses are polylog" test_treecover_addresses_polylog;
    case "hierarchical radius 0" test_hierarchical_radius_zero;
    case "attach_path validation" test_attach_path_bad_anchor;
    case "usable_ports src=dst" test_usable_ports_same_vertex;
    case "lower bound bad eps" test_lower_bound_rejects_bad_eps;
    case "matrix parse errors" test_matrix_of_string_errors;
    case "cgraph rejects relaxed rows" test_cgraph_rejects_relaxed_rows;
    case "spanner rejects disconnected" test_spanner_rejects_disconnected;
    case "simulator rejects self pairs" test_simulator_rejects_self_pair;
    case "interval rejects disconnected" test_interval_disconnected;
    case "bignat division reconstruction" test_bignat_reconstruction;
    case "large-scale smoke (n=512)" test_large_scale_smoke;
  ]
