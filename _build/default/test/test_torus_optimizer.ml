open Umrs_graph
open Umrs_routing
open Helpers

(* ---------- torus_nd + dimension-order routing ---------- *)

let test_torus_nd_structure () =
  let g = Generators.torus_nd [ 3; 4; 5 ] in
  check_int "order" 60 (Graph.order g);
  check_true "6-regular" (Props.is_regular g && Graph.degree g 0 = 6);
  check_true "connected" (Graph.is_connected g);
  (* matches the 2-d generator metrically *)
  let g2 = Generators.torus_nd [ 4; 4 ] and t2 = Generators.torus 4 4 in
  check_int "same diameter as torus 4x4" (Bfs.diameter t2) (Bfs.diameter g2)

let test_torus_nd_validation () =
  check_true "dim >= 3"
    (try ignore (Generators.torus_nd [ 2; 3 ]); false
     with Invalid_argument _ -> true);
  check_true "nonempty"
    (try ignore (Generators.torus_nd []); false
     with Invalid_argument _ -> true)

let test_dor_correct () =
  List.iter
    (fun dims ->
      let g = Generators.torus_nd dims in
      let b = Specialized.build_torus_dor ~dims g in
      check_true "delivers" (Routing_function.delivers_all b.Scheme.rf);
      check_true "stretch 1"
        (Routing_function.stretch_at_most b.Scheme.rf ~num:1 ~den:1))
    [ [ 3; 3 ]; [ 4; 5 ]; [ 3; 3; 3 ] ]

let test_dor_memory_logarithmic () =
  let bits dims =
    Scheme.mem_local (Specialized.build_torus_dor ~dims (Generators.torus_nd dims))
  in
  check_true "O(log n)" (bits [ 8; 8; 8 ] < 48)

let test_dor_rejects_wrong_graph () =
  check_true "hypercube rejected"
    (try
       ignore (Specialized.build_torus_dor ~dims:[ 4; 4 ] (Generators.hypercube 4));
       false
     with Invalid_argument _ -> true);
  check_true "wrong dims rejected"
    (try
       ignore
         (Specialized.build_torus_dor ~dims:[ 3; 3 ] (Generators.torus_nd [ 3; 4 ]));
       false
     with Invalid_argument _ -> true)

(* ---------- interval labelling optimizer ---------- *)

let test_optimizer_never_worse_than_dfs () =
  let st = rng () in
  for _ = 1 to 5 do
    let g = Generators.random_connected st ~n:14 ~m:25 in
    let dfs = Interval_routing.compile ~labelling:Interval_routing.Dfs g in
    let opt = Interval_routing.optimize_labelling ~steps:100 st g in
    check_true "compactness no worse"
      (Interval_routing.compactness opt <= Interval_routing.compactness dfs)
  done

let test_optimizer_reaches_one_on_cycles () =
  let st = rng () in
  let g = Generators.cycle 12 in
  let opt = Interval_routing.optimize_labelling st g in
  check_int "1-IRS on cycles" 1 (Interval_routing.compactness opt)

let test_optimizer_improves_globe () =
  let st = rng () in
  let g = Generators.globe ~meridians:5 ~parallels:3 in
  let dfs = Interval_routing.compile ~labelling:Interval_routing.Dfs g in
  let opt = Interval_routing.optimize_labelling ~steps:800 st g in
  check_true "total intervals reduced or equal"
    (Interval_routing.total_intervals opt
    <= Interval_routing.total_intervals dfs)

let test_optimized_scheme_is_valid () =
  let scheme = Interval_routing.scheme_optimized ~steps:120 ~seed:7 () in
  let st = rng () in
  let g = Generators.random_connected st ~n:12 ~m:20 in
  let b = scheme.Scheme.build g in
  check_true "stretch 1"
    (Routing_function.stretch_at_most b.Scheme.rf ~num:1 ~den:1)

let suite =
  [
    case "torus_nd structure" test_torus_nd_structure;
    case "torus_nd validation" test_torus_nd_validation;
    case "dimension-order routing correct" test_dor_correct;
    case "dor memory O(log n)" test_dor_memory_logarithmic;
    case "dor validates wiring" test_dor_rejects_wrong_graph;
    case "optimizer never worse than DFS" test_optimizer_never_worse_than_dfs;
    case "optimizer perfects cycles" test_optimizer_reaches_one_on_cycles;
    case "optimizer attacks the globe" test_optimizer_improves_globe;
    case "optimized scheme valid" test_optimized_scheme_is_valid;
    prop ~count:20 "optimized labelling still routes shortest"
      arbitrary_connected_graph (fun g ->
        let st = rng () in
        let t = Interval_routing.optimize_labelling ~steps:60 st g in
        ignore (Interval_routing.compactness t);
        (* rebuild a scheme from the optimized labels through the public
           scheme constructor and check it *)
        let scheme = Interval_routing.scheme_optimized ~steps:60 ~seed:3 () in
        Routing_function.stretch_at_most (scheme.Scheme.build g).Scheme.rf
          ~num:1 ~den:1);
  ]
