(* Shared test utilities: fixed-seed RNG, qcheck generators for graphs
   and matrices, and alcotest shortcuts. *)

open Umrs_graph

let rng () = Random.State.make [| 0x5EED; 42 |]

let check_true name b = Alcotest.(check bool) name true b
let check_int name expected got = Alcotest.(check int) name expected got

let case name f = Alcotest.test_case name `Quick f

let prop ?(count = 100) name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen f)

(* A small random connected graph: n in [2, 24], m up to ~2n. *)
let connected_graph_gen =
  let open QCheck.Gen in
  let build (seed, n, extra) =
    let n = 2 + (abs n mod 23) in
    let max_m = n * (n - 1) / 2 in
    let m = min max_m (n - 1 + (abs extra mod (n + 1))) in
    let st = Random.State.make [| seed; n; m |] in
    Generators.random_connected st ~n ~m
  in
  map build (triple int int int)

let arbitrary_connected_graph =
  QCheck.make
    ~print:(fun g ->
      Format.asprintf "%a" Graph.pp g)
    connected_graph_gen

(* A random tree on [2, 32] vertices. *)
let tree_gen =
  let open QCheck.Gen in
  let build (seed, n) =
    let n = 2 + (abs n mod 31) in
    Generators.random_tree (Random.State.make [| seed; n; 7 |]) n
  in
  map build (pair int int)

let arbitrary_tree =
  QCheck.make ~print:(fun g -> Format.asprintf "%a" Graph.pp g) tree_gen

(* Random constraint matrix with normalized rows: p,q in [1,4], d <= 4. *)
let matrix_gen =
  let open QCheck.Gen in
  let build (seed, p, q) =
    let p = 1 + (abs p mod 4) and q = 1 + (abs q mod 4) in
    let st = Random.State.make [| seed; p; q |] in
    let entries =
      Array.init p (fun _ ->
          Umrs_core.Canonical.normalize_row
            (Array.init q (fun _ -> 1 + Random.State.int st 4)))
    in
    Umrs_core.Matrix.create entries
  in
  map build (triple int int int)

let arbitrary_matrix =
  QCheck.make ~print:Umrs_core.Matrix.to_string matrix_gen
