open Umrs_graph
open Helpers

let test_path_distances () =
  let g = Generators.path 5 in
  let d = Bfs.distances g 0 in
  check_true "line distances" (d = [| 0; 1; 2; 3; 4 |]);
  check_int "dist endpoint" 4 (Bfs.dist g 0 4)

let test_unreachable () =
  let g = Graph.empty 3 in
  let d = Bfs.distances g 0 in
  check_int "self" 0 d.(0);
  check_true "others infinite" (d.(1) = Bfs.infinity && d.(2) = Bfs.infinity)

let test_cycle_metric () =
  let g = Generators.cycle 6 in
  check_int "antipodal" 3 (Bfs.dist g 0 3);
  check_int "diameter" 3 (Bfs.diameter g);
  check_int "radius" 3 (Bfs.radius g)

let test_star_center () =
  let g = Generators.star 7 in
  check_int "center is hub" 0 (Bfs.center g);
  check_int "radius" 1 (Bfs.radius g);
  check_int "diameter" 2 (Bfs.diameter g)

let test_shortest_path () =
  let g = Generators.path 4 in
  (match Bfs.shortest_path g 0 3 with
  | Some p -> check_true "path" (p = [ 0; 1; 2; 3 ])
  | None -> Alcotest.fail "expected a path");
  check_true "no path" (Bfs.shortest_path (Graph.empty 2) 0 1 = None)

let test_hypercube_distances_are_hamming () =
  let g = Generators.hypercube 4 in
  let d = Bfs.all_pairs g in
  let popcount x =
    let rec go acc x = if x = 0 then acc else go (acc + (x land 1)) (x lsr 1) in
    go 0 x
  in
  for u = 0 to 15 do
    for v = 0 to 15 do
      check_int "hamming" (popcount (u lxor v)) d.(u).(v)
    done
  done

let test_bfs_tree () =
  let g = Generators.cycle 5 in
  let t = Bfs.bfs_tree g 0 in
  check_int "spanning tree edges" 4 (Graph.size t);
  check_true "tree is connected" (Graph.is_connected t);
  (* distances in the tree from the root equal graph distances *)
  check_true "root distances preserved" (Bfs.distances t 0 = Bfs.distances g 0)

let test_count_shortest_paths () =
  check_int "cycle even antipodal" 2
    (Bfs.count_shortest_paths (Generators.cycle 6) 0 3);
  check_int "path unique" 1 (Bfs.count_shortest_paths (Generators.path 5) 0 4);
  (* hypercube: k! shortest paths at distance k *)
  check_int "cube diagonal" 6
    (Bfs.count_shortest_paths (Generators.hypercube 3) 0 7);
  check_int "disconnected" 0 (Bfs.count_shortest_paths (Graph.empty 2) 0 1)

let symmetric_matrix d =
  let n = Array.length d in
  let ok = ref true in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if d.(u).(v) <> d.(v).(u) then ok := false
    done
  done;
  !ok

let triangle_inequality g d =
  let n = Graph.order g in
  let ok = ref true in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      Array.iter
        (fun w -> if d.(u).(v) > d.(u).(w) + 1 then ok := false)
        (Graph.neighbors g v)
    done
  done;
  !ok

let suite =
  [
    case "path distances" test_path_distances;
    case "unreachable is infinity" test_unreachable;
    case "cycle metric" test_cycle_metric;
    case "star center" test_star_center;
    case "shortest_path extraction" test_shortest_path;
    case "hypercube = hamming" test_hypercube_distances_are_hamming;
    case "bfs_tree" test_bfs_tree;
    case "count_shortest_paths" test_count_shortest_paths;
    prop "all_pairs symmetric" arbitrary_connected_graph (fun g ->
        symmetric_matrix (Bfs.all_pairs g));
    prop "adjacent distance relaxation" arbitrary_connected_graph (fun g ->
        triangle_inequality g (Bfs.all_pairs g));
    prop "diameter >= radius" arbitrary_connected_graph (fun g ->
        Bfs.diameter g >= Bfs.radius g);
    prop "shortest_path length = distance" arbitrary_connected_graph (fun g ->
        let st = rng () in
        let n = Graph.order g in
        let u = Random.State.int st n and v = Random.State.int st n in
        match Bfs.shortest_path g u v with
        | Some p -> List.length p - 1 = Bfs.dist g u v
        | None -> false);
    prop "bfs tree preserves root distances" arbitrary_connected_graph
      (fun g -> Bfs.distances (Bfs.bfs_tree g 0) 0 = Bfs.distances g 0);
  ]
