open Umrs_core
open Helpers

let nat = QCheck.make ~print:string_of_int QCheck.Gen.(map (fun x -> abs x mod 1000000000) int)

let test_of_to_int () =
  check_true "zero" (Bignat.to_int_opt Bignat.zero = Some 0);
  check_true "one" (Bignat.to_int_opt Bignat.one = Some 1);
  check_true "big" (Bignat.to_int_opt (Bignat.of_int 123456789012345) = Some 123456789012345)

let test_to_string () =
  Alcotest.(check string) "0" "0" (Bignat.to_string Bignat.zero);
  Alcotest.(check string) "decimal" "123456789" (Bignat.to_string (Bignat.of_int 123456789));
  Alcotest.(check string)
    "2^100"
    "1267650600228229401496703205376"
    (Bignat.to_string (Bignat.pow (Bignat.of_int 2) 100))

let test_of_string () =
  check_true "roundtrip"
    (Bignat.equal
       (Bignat.of_string "987654321987654321987654321")
       (let x = Bignat.of_string "987654321987654321987654321" in
        Bignat.of_string (Bignat.to_string x)));
  check_true "small" (Bignat.to_int_opt (Bignat.of_string "42") = Some 42)

let test_factorial () =
  Alcotest.(check string)
    "20!" "2432902008176640000"
    (Bignat.to_string (Bignat.factorial 20));
  Alcotest.(check string)
    "25!" "15511210043330985984000000"
    (Bignat.to_string (Bignat.factorial 25))

let test_sub () =
  let a = Bignat.pow (Bignat.of_int 10) 20 in
  check_true "a - a = 0" (Bignat.is_zero (Bignat.sub a a));
  check_true "borrow chain"
    (Bignat.equal
       (Bignat.sub (Bignat.pow (Bignat.of_int 2) 64) Bignat.one)
       (Bignat.of_string "18446744073709551615"));
  check_true "negative raises"
    (try ignore (Bignat.sub Bignat.zero Bignat.one); false
     with Invalid_argument _ -> true)

let test_div () =
  let a = Bignat.factorial 30 in
  let b = Bignat.factorial 20 in
  (* 30!/20! = 21*22*...*30 *)
  let expect =
    List.fold_left (fun acc i -> Bignat.mul_int acc i) Bignat.one
      [ 21; 22; 23; 24; 25; 26; 27; 28; 29; 30 ]
  in
  check_true "30!/20!" (Bignat.equal (Bignat.div a b) expect);
  check_true "floor" (Bignat.equal (Bignat.div (Bignat.of_int 7) (Bignat.of_int 2)) (Bignat.of_int 3));
  check_true "smaller / larger = 0" (Bignat.is_zero (Bignat.div b a))

let test_div_int () =
  let q, r = Bignat.div_int (Bignat.of_int 1000003) 10 in
  check_true "q" (Bignat.to_int_opt q = Some 100000);
  check_int "r" 3 r

let test_log2 () =
  Alcotest.(check (float 1e-6)) "log2 1" 0.0 (Bignat.log2 Bignat.one);
  Alcotest.(check (float 1e-6)) "log2 2^80" 80.0 (Bignat.log2 (Bignat.pow (Bignat.of_int 2) 80));
  Alcotest.(check (float 0.001))
    "log2 10^30"
    (30.0 *. Float.log 10.0 /. Float.log 2.0)
    (Bignat.log2 (Bignat.pow (Bignat.of_int 10) 30))

let test_compare () =
  check_true "lt" (Bignat.compare (Bignat.of_int 5) (Bignat.of_int 9) < 0);
  check_true "eq" (Bignat.compare (Bignat.factorial 15) (Bignat.factorial 15) = 0);
  check_true "multi-limb"
    (Bignat.compare (Bignat.pow (Bignat.of_int 2) 99) (Bignat.pow (Bignat.of_int 2) 100) < 0)

let suite =
  [
    case "of/to int" test_of_to_int;
    case "to_string" test_to_string;
    case "of_string" test_of_string;
    case "factorial" test_factorial;
    case "sub" test_sub;
    case "div" test_div;
    case "div_int" test_div_int;
    case "log2" test_log2;
    case "compare" test_compare;
    prop "add commutes with int addition" (QCheck.pair nat nat)
      (fun (a, b) ->
        Bignat.to_int_opt (Bignat.add (Bignat.of_int a) (Bignat.of_int b))
        = Some (a + b));
    prop "mul commutes with int multiplication" (QCheck.pair nat nat)
      (fun (a, b) ->
        let a = a mod 100000 and b = b mod 100000 in
        Bignat.to_int_opt (Bignat.mul (Bignat.of_int a) (Bignat.of_int b))
        = Some (a * b));
    prop "sub inverts add" (QCheck.pair nat nat) (fun (a, b) ->
        Bignat.to_int_opt
          (Bignat.sub (Bignat.add (Bignat.of_int a) (Bignat.of_int b)) (Bignat.of_int b))
        = Some a);
    prop "div_int inverts mul_int" (QCheck.pair nat nat) (fun (a, b) ->
        let b = 1 + (b mod 1000) in
        let q, r = Bignat.div_int (Bignat.mul_int (Bignat.of_int a) b) b in
        r = 0 && Bignat.to_int_opt q = Some a);
    prop "string roundtrip" nat (fun a ->
        Bignat.to_int_opt (Bignat.of_string (string_of_int a)) = Some a);
    prop "pow matches repeated mul" nat (fun a ->
        let a = a mod 50 in
        let e = 5 in
        let rec rep acc k = if k = 0 then acc else rep (Bignat.mul acc (Bignat.of_int a)) (k - 1) in
        Bignat.equal (Bignat.pow (Bignat.of_int a) e) (rep Bignat.one e));
  ]
