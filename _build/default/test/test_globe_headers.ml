open Umrs_graph
open Umrs_routing
open Helpers

(* ---------- globe graphs (reference [8] worst cases) ---------- *)

let test_globe_structure () =
  let g = Generators.globe ~meridians:4 ~parallels:3 in
  check_int "order" 14 (Graph.order g);
  check_int "size" (4 * 4) (Graph.size g);
  check_int "pole degree" 4 (Graph.degree g 0);
  check_int "pole degree 2" 4 (Graph.degree g 1);
  check_true "connected" (Graph.is_connected g);
  check_int "pole distance" 4 (Bfs.dist g 0 1)

let test_globe_single_parallel () =
  let g = Generators.globe ~meridians:3 ~parallels:1 in
  check_int "order" 5 (Graph.order g);
  check_int "pole distance" 2 (Bfs.dist g 0 1);
  check_int "theta-graph paths" 3 (Bfs.count_shortest_paths g 0 1)

let test_globe_interval_compactness_grows () =
  (* on globes, shortest-path interval routing needs more than one
     interval per arc at the poles - the [8] worst-case phenomenon *)
  let g = Generators.globe ~meridians:6 ~parallels:4 in
  let c = Interval_routing.compile ~labelling:Interval_routing.Dfs g in
  check_true "not 1-IRS" (Interval_routing.compactness c > 1);
  (* still a valid shortest-path routing *)
  check_true "stretch 1"
    (Routing_function.stretch_at_most (Interval_routing.build g).Scheme.rf
       ~num:1 ~den:1)

let test_globe_invalid () =
  check_true "needs >= 2 meridians"
    (try ignore (Generators.globe ~meridians:1 ~parallels:2); false
     with Invalid_argument _ -> true)

(* ---------- header accounting ---------- *)

let test_header_bits () =
  check_int "dest header" 5
    (Routing_function.header_bits ~order:20 (Routing_function.Dest 3));
  check_int "packed header" 3
    (Routing_function.header_bits ~order:20 (Routing_function.Packed [| 1; 1; 1 |]));
  check_true "packed grows with fields"
    (Routing_function.header_bits ~order:20 (Routing_function.Packed [| 255; 255 |])
     = 16)

let test_max_header_bits_tables () =
  let g = Generators.petersen () in
  let rf = (Table_scheme.build g).Scheme.rf in
  check_int "dest headers: ceil(log2 10)" 4 (Routing_function.max_header_bits rf)

let test_max_header_bits_landmark_larger () =
  (* landmark headers carry (dst, landmark index, dfs number): more bits
     than a plain destination - the cost MEM excludes *)
  let g = Generators.torus 4 4 in
  let tables = (Table_scheme.build g).Scheme.rf in
  let landmark = (Landmark_scheme.build g).Scheme.rf in
  check_true "landmark headers wider"
    (Routing_function.max_header_bits landmark
    > Routing_function.max_header_bits tables)

(* ---------- enumerate guard overflow ---------- *)

let test_guard_rejects_huge_spaces () =
  let rejects p q d =
    try
      ignore (Umrs_core.Enumerate.canonical_set ~p ~q ~d ());
      false
    with Invalid_argument _ -> true
  in
  check_true "5^36 rejected (used to overflow int)" (rejects 6 6 5);
  check_true "4^16 rejected" (rejects 4 4 4);
  check_true "2^24 rejected" (rejects 4 6 2);
  (* boundary: small spaces still enumerate *)
  check_true "2^9 accepted"
    (Umrs_core.Enumerate.count ~p:3 ~q:3 ~d:2 () > 0)

let suite =
  [
    case "globe structure" test_globe_structure;
    case "globe with one parallel (theta graph)" test_globe_single_parallel;
    case "globe breaks 1-IRS" test_globe_interval_compactness_grows;
    case "globe validation" test_globe_invalid;
    case "header_bits" test_header_bits;
    case "tables carry log n headers" test_max_header_bits_tables;
    case "landmark headers are wider" test_max_header_bits_landmark_larger;
    case "enumeration guard is overflow-safe" test_guard_rejects_huge_spaces;
    prop ~count:30 "globe poles are antipodal-ish"
      (QCheck.make ~print:(fun (m, p) -> Printf.sprintf "m=%d p=%d" m p)
         QCheck.Gen.(map (fun (m, p) -> (2 + (abs m mod 5), 1 + (abs p mod 5)))
                       (pair int int)))
      (fun (m, p) ->
        let g = Generators.globe ~meridians:m ~parallels:p in
        Bfs.dist g 0 1 = min (p + 1) (Bfs.diameter g)
        && Graph.order g = 2 + (m * p));
  ]
