open Umrs_graph
open Umrs_routing
open Helpers

let tables g = (Table_scheme.build g).Scheme.rf

let test_tree_broadcast_star () =
  let g = Generators.star 9 in
  let r = Collective.broadcast_tree g ~root:0 in
  check_int "rounds = ecc" 1 r.Collective.rounds;
  check_int "messages = n-1" 8 r.Collective.messages;
  check_int "all reached" 9 r.Collective.reached

let test_tree_broadcast_path () =
  let g = Generators.path 10 in
  let r = Collective.broadcast_tree g ~root:0 in
  check_int "rounds = 9" 9 r.Collective.rounds;
  let mid = Collective.broadcast_tree g ~root:5 in
  check_int "center is faster" 5 mid.Collective.rounds

let test_unicast_vs_tree () =
  (* the star root must serialize unicasts over each spoke - but each
     spoke is a distinct link, so contention hits only shared prefixes.
     On a path, unicast from an endpoint piles onto the first link. *)
  let g = Generators.path 12 in
  let uni = Collective.broadcast_unicast (tables g) ~root:0 in
  let tree = Collective.broadcast_tree g ~root:0 in
  check_int "unicast reaches everyone" 12 uni.Collective.reached;
  check_true "tree needs fewer messages"
    (tree.Collective.messages < uni.Collective.messages);
  check_true "tree is no slower" (tree.Collective.rounds <= uni.Collective.rounds)

let test_convergecast () =
  let g = Generators.grid 4 4 in
  let r = Collective.convergecast_tree g ~root:0 in
  check_int "rounds = ecc" (Bfs.eccentricity g 0) r.Collective.rounds;
  check_int "messages" 15 r.Collective.messages

let test_disconnected_rejected () =
  check_true "raises"
    (try ignore (Collective.broadcast_tree (Graph.empty 3) ~root:0); false
     with Invalid_argument _ -> true)

let test_sampled_stretch () =
  let st = rng () in
  let g = Generators.torus 5 5 in
  let exact = (Routing_function.stretch (tables g)).Routing_function.max_ratio in
  let sampled = Routing_function.sampled_stretch st (tables g) ~pairs:60 in
  check_true "sampled <= exact" (sampled <= exact +. 1e-9);
  check_true "sampled >= 1" (sampled >= 1.0);
  (* on a detour-heavy function, sampling finds stretch > 1 quickly *)
  let b = Spanner_scheme.build ~k:2 (Generators.complete 16) in
  check_true "detects stretch"
    (Routing_function.sampled_stretch st b.Scheme.rf ~pairs:120 > 1.0)

let test_parallel_table_build () =
  let st = rng () in
  let g = Generators.random_connected st ~n:40 ~m:90 in
  check_true "parallel = sequential"
    (Table_scheme.next_hop_matrix_parallel ~domains:4 g
    = Table_scheme.next_hop_matrix g)

let suite =
  [
    case "tree broadcast on a star" test_tree_broadcast_star;
    case "tree broadcast on a path" test_tree_broadcast_path;
    case "unicast vs tree broadcast" test_unicast_vs_tree;
    case "convergecast" test_convergecast;
    case "disconnected rejected" test_disconnected_rejected;
    case "sampled stretch" test_sampled_stretch;
    case "parallel table build" test_parallel_table_build;
    prop ~count:25 "tree broadcast reaches everyone in ecc rounds"
      arbitrary_connected_graph (fun g ->
        let r = Collective.broadcast_tree g ~root:0 in
        r.Collective.reached = Graph.order g
        && r.Collective.rounds = Bfs.eccentricity g 0
        && r.Collective.messages = Graph.order g - 1);
    prop ~count:20 "unicast broadcast reaches everyone"
      arbitrary_connected_graph (fun g ->
        (Collective.broadcast_unicast (tables g) ~root:0).Collective.reached
        = Graph.order g);
  ]
