open Umrs_graph
open Umrs_routing
open Helpers

let tables g = (Table_scheme.build g).Scheme.rf

let test_single_packet () =
  let rf = tables (Generators.path 5) in
  let s = Simulator.run rf ~pairs:[ (0, 4) ] in
  check_int "delivered" 1 s.Simulator.delivered;
  check_int "hops" 4 s.Simulator.total_hops;
  check_int "rounds = hops (no contention)" 4 s.Simulator.rounds

let test_no_packets () =
  let rf = tables (Generators.path 3) in
  let s = Simulator.run rf ~pairs:[] in
  check_int "none" 0 s.Simulator.packets;
  check_int "rounds" 0 s.Simulator.rounds

let test_contention_serializes () =
  (* two packets over the same directed arc of an edge: one must wait *)
  let rf = tables (Generators.path 3) in
  let s = Simulator.run rf ~pairs:[ (0, 2); (0, 2) ] in
  check_int "both arrive" 2 s.Simulator.delivered;
  check_true "second is delayed" (s.Simulator.rounds > 2);
  check_true "queue observed" (s.Simulator.max_queue >= 2)

let test_all_pairs_star () =
  (* star: hub arcs are the bottleneck; total hops = 2*(n-1)(n-2) + 2(n-1) *)
  let n = 6 in
  let rf = tables (Generators.star n) in
  let s = Simulator.all_pairs rf in
  check_int "packets" (n * (n - 1)) s.Simulator.packets;
  check_int "all delivered" (n * (n - 1)) s.Simulator.delivered;
  let expected_hops = ((n - 1) * (n - 2) * 2) + (2 * (n - 1)) in
  check_int "total hops" expected_hops s.Simulator.total_hops;
  (* each leaf's inbound arc carries n-2 transit + 1 direct packets *)
  check_int "arc load" (n - 1) s.Simulator.max_arc_load

let test_random_pairs () =
  let st = rng () in
  let rf = tables (Generators.torus 4 4) in
  let s = Simulator.random_pairs st rf ~count:50 in
  check_int "injected" 50 s.Simulator.packets;
  check_int "delivered" 50 s.Simulator.delivered;
  check_true "mean delay sane"
    (Simulator.mean_delay s >= 1.0 && Simulator.mean_delay s < 100.0)

let test_round_limit_stops () =
  let rf = tables (Generators.path 50) in
  let s = Simulator.run ~round_limit:3 rf ~pairs:[ (0, 49) ] in
  check_int "not delivered" 0 s.Simulator.delivered

let test_delays_exceed_hops_under_contention () =
  let rf = tables (Generators.path 4) in
  let pairs = List.init 8 (fun _ -> (0, 3)) in
  let s = Simulator.run rf ~pairs in
  Array.iter
    (fun r ->
      check_true "delivered_at >= hops"
        (r.Simulator.delivered_at >= r.Simulator.hops))
    s.Simulator.results;
  check_true "last delivery delayed" (s.Simulator.rounds >= 3 + 7)


let test_permutation_traffic () =
  let st = rng () in
  let rf = tables (Generators.torus 4 4) in
  let s = Simulator.permutation_traffic st rf in
  check_true "most vertices send" (s.Simulator.packets >= 12);
  check_int "all delivered" s.Simulator.packets s.Simulator.delivered;
  (* each vertex sends at most one packet *)
  let sources = Array.map (fun r -> r.Simulator.src) s.Simulator.results in
  check_true "sources distinct"
    (Array.length sources
    = List.length (List.sort_uniq compare (Array.to_list sources)))

let suite =
  [
    case "single packet" test_single_packet;
    case "no packets" test_no_packets;
    case "contention serializes" test_contention_serializes;
    case "all-pairs on a star" test_all_pairs_star;
    case "random pairs on torus" test_random_pairs;
    case "permutation traffic" test_permutation_traffic;
    case "round limit stops" test_round_limit_stops;
    case "delay >= hops under contention" test_delays_exceed_hops_under_contention;
    prop ~count:25 "all-pairs total-exchange delivers everything"
      arbitrary_connected_graph (fun g ->
        let s = Simulator.all_pairs (tables g) in
        let n = Graph.order g in
        s.Simulator.delivered = n * (n - 1));
    prop ~count:25 "simulated hops match route lengths without contention"
      arbitrary_connected_graph (fun g ->
        let rf = tables g in
        let s = Simulator.run rf ~pairs:[ (0, Graph.order g - 1) ] in
        s.Simulator.total_hops = Routing_function.route_length rf 0 (Graph.order g - 1));
  ]
