open Umrs_graph
open Umrs_routing
open Helpers

(* ---------- cartesian products ---------- *)

let test_product_dimensions () =
  let g = Product.cartesian (Generators.path 3) (Generators.cycle 4) in
  check_int "order" 12 (Graph.order g);
  (* |E| = n1*m2 + n2*m1 = 3*4 + 4*2 *)
  check_int "size" 20 (Graph.size g);
  check_true "connected" (Graph.is_connected g)

let test_product_metric_is_sum () =
  let p = Generators.path 4 and c = Generators.cycle 5 in
  let g = Product.cartesian p c in
  let dp = Bfs.all_pairs p and dc = Bfs.all_pairs c and dg = Bfs.all_pairs g in
  for a = 0 to 3 do
    for b = 0 to 4 do
      for a' = 0 to 3 do
        for b' = 0 to 4 do
          check_int "additive metric"
            (dp.(a).(a') + dc.(b).(b'))
            dg.((b * 4) + a).((b' * 4) + a')
        done
      done
    done
  done

let test_power_is_hypercube () =
  let cube = Product.power (Generators.complete 2) 4 in
  check_true "Q4 via products" (Iso.are_isomorphic cube (Generators.hypercube 4))

let test_product_of_cycles_is_torus () =
  let t = Product.cartesian (Generators.cycle 4) (Generators.cycle 5) in
  check_true "C4 x C5 = torus 4x5"
    (Iso.are_isomorphic t (Generators.torus 4 5))

(* ---------- isomorphism ---------- *)

let test_iso_reflexive_and_relabelled () =
  let g = Generators.petersen () in
  check_true "reflexive" (Iso.are_isomorphic g g);
  let st = rng () in
  let g' = Graph.permute_vertices g (Perm.random st 10) in
  (match Iso.find g g' with
  | Some f ->
    check_true "witness is valid"
      (List.for_all
         (fun (u, v) -> Graph.mem_edge g' f.(u) f.(v))
         (Graph.edges g))
  | None -> Alcotest.fail "relabelled copy not recognized")

let test_iso_negative () =
  check_true "path vs cycle"
    (not (Iso.are_isomorphic (Generators.path 6) (Generators.cycle 6)));
  check_true "different sizes"
    (not (Iso.are_isomorphic (Generators.cycle 5) (Generators.cycle 6)));
  (* same degree sequence, non-isomorphic: C6 vs two triangles *)
  let two_triangles =
    Graph.of_edges ~n:6 [ (0, 1); (1, 2); (2, 0); (3, 4); (4, 5); (5, 3) ]
  in
  check_true "C6 vs 2xC3"
    (not (Iso.are_isomorphic (Generators.cycle 6) two_triangles))

let test_iso_petersen_vs_gp52 () =
  check_true "petersen = GP(5,2)"
    (Iso.are_isomorphic (Generators.petersen ()) (Generators.generalized_petersen 5 2))

(* ---------- hot potato ---------- *)

let tables g = (Table_scheme.build g).Scheme.rf

let test_hot_potato_no_contention () =
  let st = rng () in
  let rf = tables (Generators.torus 4 4) in
  let s = Simulator.run_hot_potato st rf ~pairs:[ (0, 10) ] in
  check_int "delivered" 1 s.Simulator.delivered;
  (* alone, never deflected: hops = distance *)
  check_int "shortest" (Bfs.dist (Generators.torus 4 4) 0 10) s.Simulator.total_hops

let test_hot_potato_deflects_not_queues () =
  let st = rng () in
  let g = Generators.torus 4 4 in
  let rf = tables g in
  let pairs = List.init 12 (fun _ -> (0, 10)) in
  let hot = Simulator.run_hot_potato st rf ~pairs in
  let store = Simulator.run rf ~pairs in
  check_int "all delivered" 12 hot.Simulator.delivered;
  (* deflection converts waiting into extra hops *)
  check_true "hops inflate" (hot.Simulator.total_hops >= store.Simulator.total_hops);
  check_true "sane" (hot.Simulator.rounds > 0)

let test_hot_potato_random_traffic () =
  let st = rng () in
  let rf = tables (Generators.hypercube 4) in
  let s = Simulator.random_pairs st rf ~count:1 in
  ignore s;
  let pairs = List.init 40 (fun i -> (i mod 16, (i * 7 + 3) mod 16))
              |> List.filter (fun (a, b) -> a <> b) in
  let hot = Simulator.run_hot_potato st rf ~pairs in
  check_true "most delivered"
    (hot.Simulator.delivered >= (List.length pairs * 9) / 10)

let suite =
  [
    case "product dimensions" test_product_dimensions;
    case "product metric is additive" test_product_metric_is_sum;
    case "K2^4 is the 4-cube" test_power_is_hypercube;
    case "C4 x C5 is the 4x5 torus" test_product_of_cycles_is_torus;
    case "iso: reflexive + relabelled" test_iso_reflexive_and_relabelled;
    case "iso: negatives" test_iso_negative;
    case "iso: petersen = GP(5,2)" test_iso_petersen_vs_gp52;
    case "hot potato: solo = shortest" test_hot_potato_no_contention;
    case "hot potato: deflects instead of queueing" test_hot_potato_deflects_not_queues;
    case "hot potato: random traffic mostly delivered" test_hot_potato_random_traffic;
    prop ~count:25 "product with K1 is identity-ish" arbitrary_connected_graph
      (fun g ->
        let p = Product.cartesian g (Generators.complete 1) in
        Iso.are_isomorphic p g);
    prop ~count:25 "iso invariant under vertex permutation"
      arbitrary_connected_graph (fun g ->
        let st = rng () in
        Iso.are_isomorphic g
          (Graph.permute_vertices g (Perm.random st (Graph.order g))));
    prop ~count:20 "hot potato delivers under light load"
      arbitrary_connected_graph (fun g ->
        let st = rng () in
        let n = Graph.order g in
        let rf = tables g in
        let pairs = [ (0, n - 1) ] in
        let s = Simulator.run_hot_potato st rf ~pairs in
        s.Simulator.delivered = 1);
  ]
