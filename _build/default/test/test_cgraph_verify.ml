open Umrs_core
open Umrs_graph
open Helpers

let sample_matrix () = Matrix.create [| [| 1; 2; 1 |]; [| 1; 1; 2 |] |]

let test_structure () =
  let m = sample_matrix () in
  let t = Cgraph.of_matrix m in
  let g = t.Cgraph.graph in
  (* p=2 rows with alphabet 2 each: 2 + 3 + 4 = 9 vertices *)
  check_int "order" 9 (Graph.order g);
  check_true "within bound" (Graph.order g <= Cgraph.order_bound ~p:2 ~q:3 ~d:2);
  check_true "connected" (Graph.is_connected g);
  (* port k of a_i leads to c_{i,k} *)
  Array.iteri
    (fun i ai ->
      Array.iteri
        (fun k_minus_1 c ->
          check_int "port wiring" c (Graph.neighbor g ai ~port:(k_minus_1 + 1)))
        t.Cgraph.middle.(i))
    t.Cgraph.constrained

let test_distances () =
  let t = Cgraph.of_matrix (sample_matrix ()) in
  let g = t.Cgraph.graph in
  let dist = Bfs.all_pairs g in
  Array.iter
    (fun a ->
      Array.iter
        (fun b -> check_int "dist(a,b)=2" 2 dist.(a).(b))
        t.Cgraph.targets)
    t.Cgraph.constrained

let test_unique_short_path () =
  let t = Cgraph.of_matrix (sample_matrix ()) in
  let g = t.Cgraph.graph in
  Array.iter
    (fun a ->
      Array.iter
        (fun b -> check_int "unique 2-path" 1 (Bfs.count_shortest_paths g a b))
        t.Cgraph.targets)
    t.Cgraph.constrained

let test_forced_below_two () =
  let t = Cgraph.of_matrix (sample_matrix ()) in
  check_true "forced"
    (match Verify.check_cgraph t ~bound:Verify.below_two with
    | Ok () -> true
    | Error _ -> false)

let test_not_forced_at_two () =
  (* at stretch exactly 2 (paths of length 4 allowed), alternatives can
     appear whenever a row has >= 2 values and targets share middles *)
  let t = Cgraph.of_matrix (sample_matrix ()) in
  let bound = { Verify.num = 2; den = 1; strict = false } in
  let frac = Verify.forced_fraction t ~bound in
  check_true "degrades at s = 2" (frac < 1.0)

let test_all_small_matrices_forced () =
  List.iter
    (fun m ->
      let t = Cgraph.of_matrix m in
      check_true
        (Matrix.to_string m)
        (match Verify.check_cgraph t ~bound:Verify.below_two with
        | Ok () -> true
        | Error _ -> false))
    (Enumerate.canonical_set ~p:2 ~q:3 ~d:2 ())

let test_pad_to_order () =
  let t = Cgraph.of_matrix (sample_matrix ()) in
  let t' = Cgraph.pad_to_order t ~n:20 in
  check_int "padded order" 20 (Graph.order t'.Cgraph.graph);
  check_true "still connected" (Graph.is_connected t'.Cgraph.graph);
  check_true "still forced"
    (match Verify.check_cgraph t' ~bound:Verify.below_two with
    | Ok () -> true
    | Error _ -> false);
  check_true "same matrix" (Matrix.equal t.Cgraph.matrix t'.Cgraph.matrix);
  check_true "noop pad" (Cgraph.pad_to_order t ~n:9 == t)

let test_violation_reporting () =
  (* a wrong matrix must be flagged with the right usable set *)
  let m = sample_matrix () in
  let t = Cgraph.of_matrix m in
  let wrong = Matrix.create_relaxed [| [| 2; 2; 1 |]; [| 1; 1; 2 |] |] in
  match
    Verify.check t.Cgraph.graph ~constrained:t.Cgraph.constrained
      ~targets:t.Cgraph.targets wrong ~bound:Verify.below_two
  with
  | Ok () -> Alcotest.fail "wrong matrix accepted"
  | Error [ v ] ->
    check_int "row" 0 v.Verify.row;
    check_int "col" 0 v.Verify.col;
    check_int "expected entry" 2 v.Verify.expected;
    check_true "true forced port" (v.Verify.usable = [ 1 ])
  | Error _ -> Alcotest.fail "expected exactly one violation"

let test_usable_ports_semantics () =
  (* on C6, going to the antipode: both directions usable at stretch 1 *)
  let g = Umrs_graph.Generators.cycle 6 in
  let dist = Bfs.all_pairs g in
  let u =
    Verify.usable_ports g ~dist ~src:0 ~dst:3 ~bound:Verify.shortest_paths_only
  in
  check_int "two usable" 2 (List.length u);
  (* to a neighbour: only the direct edge under strict < 2 (other way
     has length 5 > 2*1) *)
  let u2 = Verify.usable_ports g ~dist ~src:0 ~dst:1 ~bound:Verify.below_two in
  check_int "one usable" 1 (List.length u2)


let test_brute_force_definition1 () =
  (* independent of Verify: enumerate every assignment of ports at the
     constrained vertices; only M itself delivers within stretch < 2 *)
  List.iter
    (fun m ->
      let t = Cgraph.of_matrix m in
      let c = Brute.census t ~num:2 ~den:1 ~strict:true in
      check_true (Matrix.to_string m) (Brute.definition1_holds t);
      check_int "unique survivor" 1 c.Brute.within_stretch;
      check_true "wrong assignments loop" (c.Brute.delivering <= c.Brute.total))
    (Enumerate.canonical_set ~p:2 ~q:2 ~d:3 ())

let test_brute_force_relaxed_bound () =
  (* at stretch <= 4 (non-strict), alternative assignments survive:
     the forcing is specific to the < 2 regime *)
  let m = Matrix.create [| [| 1; 2 |]; [| 1; 2 |] |] in
  let t = Cgraph.of_matrix m in
  let c = Brute.census t ~num:4 ~den:1 ~strict:false in
  check_true "more survivors at stretch 4" (c.Brute.within_stretch >= 1)

let suite =
  [
    case "3-level structure and port wiring" test_structure;
    case "constrained-target distance is 2" test_distances;
    case "unique shortest path" test_unique_short_path;
    case "forced ports below stretch 2" test_forced_below_two;
    case "forcing fails at stretch 2" test_not_forced_at_two;
    case "all of dM(2,3) forced" test_all_small_matrices_forced;
    case "pad_to_order" test_pad_to_order;
    case "violations are reported" test_violation_reporting;
    case "brute force: only M survives stretch < 2" test_brute_force_definition1;
    case "brute force: survivors reappear at stretch 4" test_brute_force_relaxed_bound;
    case "usable_ports semantics" test_usable_ports_semantics;
    prop ~count:150 "cgraph respects Lemma 2 on random matrices"
      arbitrary_matrix (fun m ->
        let t = Cgraph.of_matrix m in
        let g = t.Cgraph.graph in
        let p, q = Matrix.dims m in
        let d = Matrix.max_entry m in
        Graph.order g <= Cgraph.order_bound ~p ~q ~d
        && Graph.is_connected g
        &&
        match Verify.check_cgraph t ~bound:Verify.below_two with
        | Ok () -> true
        | Error _ -> false);
    prop ~count:15 "brute census agrees with Verify on small matrices"
      (QCheck.make ~print:Umrs_core.Matrix.to_string
         (QCheck.Gen.map
            (fun (seed, pq) ->
              let p = 1 + (abs pq mod 2) and q = 2 in
              let st = Random.State.make [| seed |] in
              Matrix.create
                (Array.init p (fun _ ->
                     Canonical.normalize_row
                       (Array.init q (fun _ -> 1 + Random.State.int st 3)))))
            QCheck.Gen.(pair int int)))
      (fun m ->
        let t = Cgraph.of_matrix m in
        (* Verify says forced below 2; Brute must then find exactly one
           surviving assignment, namely M *)
        Brute.definition1_holds t);
    prop ~count:60 "padding preserves the forced property" arbitrary_matrix
      (fun m ->
        let t = Cgraph.of_matrix m in
        let n = Graph.order t.Cgraph.graph + 5 in
        let t' = Cgraph.pad_to_order t ~n in
        Graph.order t'.Cgraph.graph = n
        &&
        match Verify.check_cgraph t' ~bound:Verify.below_two with
        | Ok () -> true
        | Error _ -> false);
  ]
