open Umrs_graph
open Umrs_routing
open Helpers

let test_intervals_of_labels () =
  let open Interval_routing in
  check_true "empty" (intervals_of_labels ~n:8 [] = []);
  check_true "all" (intervals_of_labels ~n:4 [ 0; 1; 2; 3 ] = [ { lo = 0; hi = 3 } ]);
  check_true "one run"
    (intervals_of_labels ~n:8 [ 2; 3; 4 ] = [ { lo = 2; hi = 4 } ]);
  check_true "two runs"
    (intervals_of_labels ~n:8 [ 1; 2; 5 ] = [ { lo = 1; hi = 2 }; { lo = 5; hi = 5 } ]);
  check_true "wrap merges"
    (intervals_of_labels ~n:8 [ 0; 1; 7 ] = [ { lo = 7; hi = 1 } ]);
  check_true "duplicates collapse"
    (intervals_of_labels ~n:8 [ 3; 3; 3 ] = [ { lo = 3; hi = 3 } ])

let test_mem_interval () =
  let open Interval_routing in
  check_true "inside" (mem_interval ~n:8 { lo = 2; hi = 5 } 3);
  check_true "boundary" (mem_interval ~n:8 { lo = 2; hi = 5 } 2);
  check_true "outside" (not (mem_interval ~n:8 { lo = 2; hi = 5 } 6));
  check_true "wrapped in" (mem_interval ~n:8 { lo = 6; hi = 1 } 7);
  check_true "wrapped in 2" (mem_interval ~n:8 { lo = 6; hi = 1 } 0);
  check_true "wrapped out" (not (mem_interval ~n:8 { lo = 6; hi = 1 } 3))

let test_tree_is_one_interval () =
  let st = rng () in
  for n = 2 to 16 do
    let t = Generators.random_tree st n in
    let c = Interval_routing.compile ~labelling:Interval_routing.Dfs t in
    check_int "1-IRS on trees" 1 (Interval_routing.compactness c)
  done

let test_path_identity_one_interval () =
  (* consecutive labels on a path: identity labelling is already 1-IRS *)
  let c =
    Interval_routing.compile ~labelling:Interval_routing.Identity
      (Generators.path 9)
  in
  check_int "1 interval" 1 (Interval_routing.compactness c)

let test_labels_bijective () =
  let g = Generators.petersen () in
  let c = Interval_routing.compile g in
  for v = 0 to 9 do
    check_int "label roundtrip" v
      (Interval_routing.vertex_of c (Interval_routing.label_of c v))
  done

let test_routing_is_shortest () =
  let g = Generators.petersen () in
  let b = Interval_routing.build g in
  check_true "stretch 1"
    (Routing_function.stretch_at_most b.Scheme.rf ~num:1 ~den:1)

let test_memory_smaller_than_tables_on_bounded_degree () =
  (* interval routing costs O(d log n) per router vs O(n log d) for
     tables: on a long path the gap is decisive *)
  let t = Generators.path 128 in
  let iv = Interval_routing.build t in
  let tb = Table_scheme.build t in
  check_true "interval beats tables on a long path"
    (Scheme.mem_global iv < Scheme.mem_global tb);
  check_true "locally too" (Scheme.mem_local iv < Scheme.mem_local tb)

let test_encoding_roundtrip () =
  let g = Generators.petersen () in
  let c = Interval_routing.compile g in
  let b = Interval_routing.build g in
  for v = 0 to 9 do
    let own, arcs =
      Interval_routing.decode_vertex (b.Scheme.local_encoding v) ~order:10
        ~degree:(Graph.degree g v)
    in
    check_int "own label" (Interval_routing.label_of c v) own;
    for k = 1 to Graph.degree g v do
      check_true "arc intervals"
        (arcs.(k - 1) = Interval_routing.arc_intervals c v k)
    done
  done


let test_min_compactness_exhaustive () =
  (* cycles and paths admit a 1-interval labelling *)
  check_int "C6" 1 (Interval_routing.min_compactness_exhaustive (Generators.cycle 6));
  check_int "P7" 1 (Interval_routing.min_compactness_exhaustive (Generators.path 7));
  check_int "star" 1 (Interval_routing.min_compactness_exhaustive (Generators.star 7));
  (* the (3,2) globe: NO labelling reaches 1 interval per arc - the
     worst-case phenomenon of [8], proved exhaustively at n=8 *)
  let globe = Generators.globe ~meridians:3 ~parallels:2 in
  check_true "globe(3,2) is not 1-IRS under any labelling"
    (Interval_routing.min_compactness_exhaustive globe >= 2);
  check_true "order guard"
    (try ignore (Interval_routing.min_compactness_exhaustive (Generators.cycle 12)); false
     with Invalid_argument _ -> true)

let suite =
  [
    case "intervals_of_labels" test_intervals_of_labels;
    case "encoding decode roundtrip" test_encoding_roundtrip;
    case "exhaustive min compactness (globe not 1-IRS)" test_min_compactness_exhaustive;
    case "mem_interval" test_mem_interval;
    case "DFS gives 1-IRS on trees" test_tree_is_one_interval;
    case "identity 1-IRS on paths" test_path_identity_one_interval;
    case "labels bijective" test_labels_bijective;
    case "interval routing is shortest-path" test_routing_is_shortest;
    case "interval memory < tables on bounded degree"
      test_memory_smaller_than_tables_on_bounded_degree;
    prop ~count:40 "interval routing: stretch 1 on random graphs"
      arbitrary_connected_graph (fun g ->
        Routing_function.stretch_at_most
          (Interval_routing.build g).Scheme.rf ~num:1 ~den:1);
    prop ~count:40 "identity labelling also stretch 1"
      arbitrary_connected_graph (fun g ->
        Routing_function.stretch_at_most
          (Interval_routing.build ~labelling:Interval_routing.Identity g).Scheme.rf
          ~num:1 ~den:1);
    prop ~count:60 "interval cover is exact" arbitrary_connected_graph (fun g ->
        let c = Interval_routing.compile g in
        let n = Graph.order g in
        (* every destination label is claimed by exactly one arc *)
        Graph.fold_vertices g
          (fun ok v ->
            ok
            && List.for_all
                 (fun l ->
                   let claims = ref 0 in
                   for k = 1 to Graph.degree g v do
                     if
                       List.exists
                         (fun iv -> Interval_routing.mem_interval ~n iv l)
                         (Interval_routing.arc_intervals c v k)
                     then incr claims
                   done;
                   !claims = 1)
                 (List.filter
                    (fun l -> Interval_routing.vertex_of c l <> v)
                    (List.init n Fun.id)))
          true);
    prop ~count:40 "dfs compactness <= identity compactness + slack"
      arbitrary_tree (fun t ->
        Interval_routing.compactness (Interval_routing.compile ~labelling:Interval_routing.Dfs t)
        = 1);
  ]
