open Umrs_core
open Helpers

let test_normalize_row () =
  check_true "example" (Canonical.normalize_row [| 3; 1; 3; 2 |] = [| 1; 2; 1; 3 |]);
  check_true "already normal" (Canonical.normalize_row [| 1; 2; 3 |] = [| 1; 2; 3 |]);
  check_true "constant" (Canonical.normalize_row [| 7; 7 |] = [| 1; 1 |]);
  check_true "reversed" (Canonical.normalize_row [| 2; 1 |] = [| 1; 2 |])

let test_canonical_explicit () =
  (* the paper's worked pair: [1 2; 1 1] reduces to [1 1; 1 2] *)
  let m = Matrix.create [| [| 1; 2 |]; [| 1; 1 |] |] in
  let c = Canonical.canonical m in
  Alcotest.(check string) "canonical" "[1 1; 1 2]" (Matrix.to_string c)

let test_canonical_uses_column_perm () =
  (* [2 1; 1 1] needs a column swap (after row relabel) to reach the
     minimum *)
  let m = Matrix.create_relaxed [| [| 2; 1 |]; [| 1; 1 |] |] in
  Alcotest.(check string)
    "canonical" "[1 1; 1 2]"
    (Matrix.to_string (Canonical.canonical m))

let test_canonical_full_relabels () =
  (* opposite-direction rows merge under the Full variant only *)
  let m = Matrix.create [| [| 1; 2 |]; [| 2; 1 |] |] in
  Alcotest.(check string)
    "full" "[1 2; 1 2]"
    (Matrix.to_string (Canonical.canonical ~variant:Canonical.Full m));
  Alcotest.(check string)
    "positional" "[1 2; 2 1]"
    (Matrix.to_string (Canonical.canonical ~variant:Canonical.Positional m))

let test_equivalent () =
  let a = Matrix.create [| [| 1; 2 |]; [| 1; 1 |] |] in
  let b = Matrix.create [| [| 1; 1 |]; [| 2; 1 |] |] in
  check_true "equivalent" (Canonical.equivalent a b);
  let c = Matrix.create [| [| 1; 2 |]; [| 1; 2 |] |] in
  check_true "not equivalent" (not (Canonical.equivalent a c))

let test_is_canonical () =
  check_true "min is canonical"
    (Canonical.is_canonical (Matrix.create [| [| 1; 1 |]; [| 1; 2 |] |]));
  check_true "non-min is not"
    (not (Canonical.is_canonical (Matrix.create [| [| 1; 2 |]; [| 1; 1 |] |])))

let suite =
  [
    case "normalize_row" test_normalize_row;
    case "canonical (paper pair)" test_canonical_explicit;
    case "canonical uses column perms" test_canonical_uses_column_perm;
    case "full vs positional variants" test_canonical_full_relabels;
    case "equivalent" test_equivalent;
    case "is_canonical" test_is_canonical;
    prop ~count:200 "canonical is idempotent" arbitrary_matrix (fun m ->
        let c = Canonical.canonical m in
        Matrix.equal c (Canonical.canonical c));
    prop ~count:200 "canonical invariant under random group action"
      arbitrary_matrix (fun m ->
        let st = rng () in
        let m' = Canonical.random_equivalent st m in
        Matrix.equal (Canonical.canonical m) (Canonical.canonical m'));
    prop ~count:200 "canonical result has normalized rows" arbitrary_matrix
      (fun m ->
        let c = Canonical.canonical m in
        let p, q = Matrix.dims c in
        List.for_all
          (fun i ->
            Canonical.normalize_row (Array.init q (Matrix.get c i))
            = Array.init q (Matrix.get c i))
          (List.init p Fun.id));
    prop ~count:200 "canonical <= input in lex order" arbitrary_matrix
      (fun m -> Matrix.compare_lex (Canonical.canonical m) m <= 0);
    prop ~count:100 "positional canonical also idempotent/invariant"
      arbitrary_matrix (fun m ->
        let st = rng () in
        let pc = Canonical.canonical ~variant:Canonical.Positional in
        let m' =
          (* positional group action: rows and columns only *)
          let p, q = Matrix.dims m in
          Matrix.permute_cols
            (Matrix.permute_rows m (Umrs_graph.Perm.random st p))
            (Umrs_graph.Perm.random st q)
        in
        Matrix.equal (pc m) (pc m') && Matrix.equal (pc m) (pc (pc m)));
  ]
