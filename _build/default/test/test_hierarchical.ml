open Umrs_graph
open Umrs_routing
open Helpers

let test_partition_covers () =
  let g = Generators.torus 5 5 in
  let cluster_of, centers = Hierarchical_scheme.partition ~radius:1 g in
  check_true "everyone assigned" (Array.for_all (fun c -> c >= 0) cluster_of);
  Array.iteri
    (fun c center -> check_int "center in own cluster" c cluster_of.(center))
    centers;
  (* radius respected: every member within 1 of its center *)
  Array.iteri
    (fun v c -> check_true "radius" (Bfs.dist g centers.(c) v <= 1))
    cluster_of

let test_partition_radius_zero () =
  let g = Generators.path 5 in
  let _, centers = Hierarchical_scheme.partition ~radius:0 g in
  check_int "singletons" 5 (Array.length centers)

let test_default_radius_bounds_clusters () =
  let g = Generators.grid 6 6 in
  let r = Hierarchical_scheme.default_radius g in
  let _, centers = Hierarchical_scheme.partition ~radius:r g in
  check_true "at most sqrt n clusters" (Array.length centers <= 6)

let test_delivers_on_torus () =
  let g = Generators.torus 5 5 in
  let b = Hierarchical_scheme.build g in
  check_true "delivers" (Routing_function.delivers_all b.Scheme.rf);
  (* stretch finite and modest on a torus *)
  let s = Routing_function.stretch b.Scheme.rf in
  check_true "stretch sane" (s.Routing_function.max_ratio < 5.0)

let test_entry_count_win_on_big_cycle () =
  (* The classical Kleinrock-Kamoun claim is about table ENTRIES: a
     router keeps #clusters + |ball(2r)| entries instead of n-1. (In
     exact bits, the explicit vertex ids in the ball table eat much of
     the gain at this scale - measured honestly by the benches.) *)
  let g = Generators.cycle 96 in
  let r = Hierarchical_scheme.default_radius g in
  let cluster_of, centers = Hierarchical_scheme.partition ~radius:r g in
  ignore cluster_of;
  let max_ball =
    let worst = ref 0 in
    for v = 0 to 95 do
      let d = Bfs.distances g v in
      let b = Array.fold_left (fun acc x -> if x > 0 && x <= 2 * r then acc + 1 else acc) 0 d in
      worst := max !worst b
    done;
    !worst
  in
  check_true "entries shrink"
    (Array.length centers + max_ball < Graph.order g - 1)

let test_radius_tradeoff () =
  (* larger radius: fewer clusters, bigger balls; both deliver *)
  let g = Generators.grid 5 5 in
  List.iter
    (fun r ->
      let b = Hierarchical_scheme.build ~radius:r g in
      check_true
        (Printf.sprintf "radius %d delivers" r)
        (Routing_function.delivers_all b.Scheme.rf))
    [ 1; 2; 3 ]

let suite =
  [
    case "partition covers" test_partition_covers;
    case "radius 0 = singletons" test_partition_radius_zero;
    case "default radius bounds clusters" test_default_radius_bounds_clusters;
    case "delivers on torus" test_delivers_on_torus;
    case "entry count shrinks on a large cycle" test_entry_count_win_on_big_cycle;
    case "radius tradeoff" test_radius_tradeoff;
    prop ~count:30 "hierarchical delivers on random graphs"
      arbitrary_connected_graph (fun g ->
        Routing_function.delivers_all (Hierarchical_scheme.build g).Scheme.rf);
    prop ~count:30 "partition is a cover at any radius"
      arbitrary_connected_graph (fun g ->
        let st = rng () in
        let radius = Random.State.int st 3 in
        let cluster_of, centers = Hierarchical_scheme.partition ~radius g in
        Array.for_all (fun c -> c >= 0 && c < Array.length centers) cluster_of);
  ]
