open Umrs_graph
open Umrs_routing
open Umrs_spanner
open Helpers

(* ---------- landmark (stretch-3) scheme ---------- *)

let test_landmark_delivers_petersen () =
  let b = Landmark_scheme.build (Generators.petersen ()) in
  check_true "delivers" (Routing_function.delivers_all b.Scheme.rf);
  check_true "stretch <= 3"
    (Routing_function.stretch_at_most b.Scheme.rf ~num:3 ~den:1)

let test_landmark_extreme_counts () =
  let g = Generators.cycle 12 in
  (* one landmark: everything routes via trees; still <= 3? With l=1 the
     cluster rule guarantees stretch 3 only when d(v,L) <= d(u,v);
     single landmark can violate that... the scheme bound holds because
     cluster(u) covers w with d(u,w) < d(w,L). Check empirically. *)
  let b1 = Landmark_scheme.build ~landmarks:1 g in
  check_true "l=1 delivers" (Routing_function.delivers_all b1.Scheme.rf);
  check_true "l=1 stretch <= 3"
    (Routing_function.stretch_at_most b1.Scheme.rf ~num:3 ~den:1);
  let ball = Landmark_scheme.build ~landmarks:12 g in
  check_true "l=n delivers" (Routing_function.delivers_all ball.Scheme.rf);
  check_true "l=n stretch 1"
    (Routing_function.stretch_at_most ball.Scheme.rf ~num:1 ~den:1)

let test_landmark_count_default () =
  check_int "n=1" 1 (Landmark_scheme.default_landmark_count 1);
  let c100 = Landmark_scheme.default_landmark_count 100 in
  check_true "sane range" (c100 >= 10 && c100 <= 60)

let test_landmark_clusters_shrink_with_landmarks () =
  (* With every vertex a landmark the cluster radii are zero; with few
     landmarks clusters carry most of the graph. *)
  let g = Generators.cycle 24 in
  let all = Landmark_scheme.cluster_sizes ~landmarks:24 g in
  check_true "all-landmark clusters empty" (Array.for_all (fun s -> s = 0) all);
  let few = Landmark_scheme.cluster_sizes ~landmarks:1 g in
  check_true "single-landmark clusters large"
    (Array.exists (fun s -> s > 4) few);
  let total xs = Array.fold_left ( + ) 0 xs in
  check_true "monotone burden" (total all < total few)

let test_cluster_sizes () =
  let g = Generators.cycle 16 in
  let sizes = Landmark_scheme.cluster_sizes g in
  check_int "per-vertex array" 16 (Array.length sizes);
  Array.iter (fun s -> check_true "bounded" (s >= 0 && s < 16)) sizes

(* ---------- spanners ---------- *)

let test_spanner_k1_identity () =
  let g = Generators.petersen () in
  let h = Spanner.greedy g ~k:1 in
  check_int "1-spanner keeps everything" (Graph.size g) (Graph.size h)

let test_spanner_sparsifies_complete () =
  let g = Generators.complete 16 in
  let h = Spanner.greedy g ~k:2 in
  check_true "3-spanner property" (Spanner.is_spanner g ~sub:h ~t:3);
  check_true "sparser" (Graph.size h < Graph.size g);
  (* girth > 4 => no triangles and no C4 *)
  match Props.girth h with
  | None -> ()
  | Some gi -> check_true "girth > 2k" (gi > 4)

let test_spanner_of_tree_is_tree () =
  let st = rng () in
  let t = Generators.random_tree st 20 in
  let h = Spanner.greedy t ~k:3 in
  check_int "tree unchanged" (Graph.size t) (Graph.size h)

let test_spanner_metrics () =
  let g = Generators.complete 10 in
  let h = Spanner.greedy g ~k:2 in
  check_true "max_stretch <= 3" (Spanner.max_stretch g ~sub:h <= 3.0);
  check_true "edge ratio < 1" (Spanner.edge_ratio g ~sub:h < 1.0)

let test_spanner_scheme () =
  (* memory shrinks globally: entry widths follow the spanner's smaller
     degrees (the Peleg-Upfal space/efficiency tradeoff) *)
  let st = Random.State.make [| 7 |] in
  let g = Generators.random_connected st ~n:32 ~m:240 in
  let b = Spanner_scheme.build ~k:2 g in
  check_true "delivers" (Routing_function.delivers_all b.Scheme.rf);
  check_true "stretch <= 3"
    (Routing_function.stretch_at_most b.Scheme.rf ~num:3 ~den:1);
  let tb = Table_scheme.build g in
  check_true "global memory halves on a dense graph"
    (2 * Scheme.mem_global b < Scheme.mem_global tb)


let test_landmark_strategies () =
  let g = Generators.grid 5 5 in
  List.iter
    (fun (name, strategy) ->
      let b = Landmark_scheme.build ~strategy g in
      check_true (name ^ " delivers") (Routing_function.delivers_all b.Scheme.rf);
      check_true (name ^ " stretch <= 3")
        (Routing_function.stretch_at_most b.Scheme.rf ~num:3 ~den:1))
    [
      ("random", Landmark_scheme.Random_landmarks);
      ("high-degree", Landmark_scheme.High_degree);
      ("k-center", Landmark_scheme.K_center);
    ]

let test_kcenter_spreads () =
  (* on a path, k-center picks far-apart landmarks, shrinking the
     largest cluster table relative to clumped high-degree picks *)
  let g = Generators.path 40 in
  let worst strategy =
    Array.fold_left max 0 (Landmark_scheme.cluster_sizes ~landmarks:4 ~strategy g)
  in
  check_true "k-center no worse than high-degree on a path"
    (worst Landmark_scheme.K_center <= worst Landmark_scheme.High_degree)

let test_build_deterministic () =
  (* same seed, same graph: identical encodings (no hidden global RNG) *)
  let g = Generators.torus 4 4 in
  List.iter
    (fun scheme ->
      let b1 = scheme.Scheme.build g and b2 = scheme.Scheme.build g in
      for v = 0 to 15 do
        check_true
          (scheme.Scheme.name ^ " deterministic")
          (Umrs_bitcode.Bitbuf.to_bool_array (b1.Scheme.local_encoding v)
          = Umrs_bitcode.Bitbuf.to_bool_array (b2.Scheme.local_encoding v))
      done)
    (Registry.universal ())

let suite =
  [
    case "landmark delivers on petersen" test_landmark_delivers_petersen;
    case "landmark extreme counts" test_landmark_extreme_counts;
    case "default landmark count" test_landmark_count_default;
    case "clusters shrink with landmark count"
      test_landmark_clusters_shrink_with_landmarks;
    case "cluster sizes" test_cluster_sizes;
    case "landmark strategies" test_landmark_strategies;
    case "k-center spreads landmarks" test_kcenter_spreads;
    case "all schemes build deterministically" test_build_deterministic;
    case "1-spanner is the graph" test_spanner_k1_identity;
    case "3-spanner of K16" test_spanner_sparsifies_complete;
    case "spanner of a tree" test_spanner_of_tree_is_tree;
    case "spanner metrics" test_spanner_metrics;
    case "spanner routing scheme" test_spanner_scheme;
    prop ~count:30 "landmark: delivers within stretch 3 on random graphs"
      arbitrary_connected_graph (fun g ->
        Routing_function.stretch_at_most (Landmark_scheme.build g).Scheme.rf
          ~num:3 ~den:1);
    prop ~count:30 "greedy (2k-1)-spanner property, k=2"
      arbitrary_connected_graph (fun g ->
        Spanner.is_spanner g ~sub:(Spanner.greedy g ~k:2) ~t:3);
    prop ~count:30 "greedy (2k-1)-spanner property, k=3"
      arbitrary_connected_graph (fun g ->
        Spanner.is_spanner g ~sub:(Spanner.greedy g ~k:3) ~t:5);
    prop ~count:30 "spanner scheme stretch bound, k=2"
      arbitrary_connected_graph (fun g ->
        Routing_function.stretch_at_most
          (Spanner_scheme.build ~k:2 g).Scheme.rf ~num:3 ~den:1);
    prop ~count:30 "spanner is connected and spanning"
      arbitrary_connected_graph (fun g ->
        let h = Spanner.greedy g ~k:4 in
        Graph.order h = Graph.order g && Graph.is_connected h);
  ]
