open Umrs_graph
open Helpers

let xs () = [| 5.0; 1.0; 3.0; 2.0; 4.0 |]

let test_mean_stddev () =
  Alcotest.(check (float 1e-9)) "mean" 3.0 (Stats.mean (xs ()));
  Alcotest.(check (float 1e-9))
    "stddev"
    (sqrt 2.5)
    (Stats.stddev (xs ()));
  Alcotest.(check (float 1e-9)) "singleton sd" 0.0 (Stats.stddev [| 7.0 |])

let test_percentiles () =
  Alcotest.(check (float 1e-9)) "median" 3.0 (Stats.median (xs ()));
  Alcotest.(check (float 1e-9)) "p0 is min" 1.0 (Stats.percentile (xs ()) ~p:0.0);
  Alcotest.(check (float 1e-9)) "p100 is max" 5.0 (Stats.percentile (xs ()) ~p:100.0);
  Alcotest.(check (float 1e-9)) "p20" 1.0 (Stats.percentile (xs ()) ~p:20.0)

let test_minmax () =
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.minimum (xs ()));
  Alcotest.(check (float 1e-9)) "max" 5.0 (Stats.maximum (xs ()))

let test_histogram () =
  let h = Stats.histogram (xs ()) ~buckets:2 in
  check_int "two buckets" 2 (List.length h);
  let total = List.fold_left (fun acc (_, _, c) -> acc + c) 0 h in
  check_int "all counted" 5 total;
  (* constant data: single-width buckets still work *)
  let hc = Stats.histogram [| 2.0; 2.0; 2.0 |] ~buckets:3 in
  check_int "constant data counted" 3
    (List.fold_left (fun acc (_, _, c) -> acc + c) 0 hc)

let test_empty_raises () =
  check_true "empty mean raises"
    (try ignore (Stats.mean [||]); false with Invalid_argument _ -> true)

let test_summary_string () =
  let s = Stats.summary (xs ()) in
  check_true "mentions n" (String.length s > 10)

let test_simulator_delays () =
  let g = Generators.path 5 in
  let rf = (Umrs_routing.Table_scheme.build g).Umrs_routing.Scheme.rf in
  let s = Umrs_routing.Simulator.run rf ~pairs:[ (0, 4); (4, 0) ] in
  let d = Umrs_routing.Simulator.delays s in
  check_int "two delays" 2 (Array.length d);
  check_true "summary renders"
    (Umrs_routing.Simulator.delay_summary s <> "(no deliveries)")

let float_array_arb =
  QCheck.make
    ~print:(fun a -> String.concat ";" (List.map string_of_float (Array.to_list a)))
    QCheck.Gen.(map (fun l -> Array.of_list (List.map float_of_int l))
                  (list_size (int_range 1 50) (int_range (-100) 100)))

let suite =
  [
    case "mean/stddev" test_mean_stddev;
    case "percentiles" test_percentiles;
    case "min/max" test_minmax;
    case "histogram" test_histogram;
    case "empty input raises" test_empty_raises;
    case "summary" test_summary_string;
    case "simulator delay stats" test_simulator_delays;
    prop "median between min and max" float_array_arb (fun a ->
        let m = Stats.median a in
        Stats.minimum a <= m && m <= Stats.maximum a);
    prop "percentile monotone in p" float_array_arb (fun a ->
        Stats.percentile a ~p:25.0 <= Stats.percentile a ~p:75.0);
    prop "histogram conserves count" float_array_arb (fun a ->
        let h = Stats.histogram a ~buckets:7 in
        List.fold_left (fun acc (_, _, c) -> acc + c) 0 h = Array.length a);
  ]
