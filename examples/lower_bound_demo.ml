(* A guided tour of the paper's proof, executed for real.

   Theorem 1 says: for any stretch s < 2 and constant 0 < eps < 1,
   there are n-node networks where Theta(n^eps) routers need
   Theta(n log n) bits each. The proof has four moving parts, and this
   example runs each of them:

     1. matrices of constraints and their canonical forms (Section 2),
     2. Lemma 1's counting bound,
     3. graphs of constraints and the forced-port property (Section 3),
     4. the reconstruction decoder and the final accounting (Section 4).

   Run with: dune exec examples/lower_bound_demo.exe *)

open Umrs_core

let banner s = Format.printf "@.--- %s ---@." s

let () =
  banner "1. Matrices of constraints, canonicalization";
  let m = Matrix.create [| [| 1; 2 |]; [| 1; 1 |] |] in
  Format.printf "M = %s, canonical(M) = %s@." (Matrix.to_string m)
    (Matrix.to_string (Canonical.canonical m));
  let set = Enumerate.canonical_set ~p:2 ~q:2 ~d:3 () in
  Format.printf "3M(2,2) has %d classes:@." (List.length set);
  List.iter (fun m -> Format.printf "  %s@." (Matrix.to_string m)) set;

  banner "2. Lemma 1: counting";
  List.iter
    (fun (p, q, d) ->
      Format.printf
        "(p=%d,q=%d,d=%d): bound %s <= exact %d, so the bound holds: %b@." p q
        d
        (Bignat.to_string (Count.lemma1_bound ~p ~q ~d))
        (Enumerate.count ~p ~q ~d ())
        (Count.holds_exactly ~p ~q ~d ()))
    [ (2, 2, 2); (2, 3, 2); (2, 2, 3) ];

  banner "3. Graphs of constraints: the forced-port property";
  let m = Matrix.create [| [| 1; 2; 1 |]; [| 1; 1; 2 |] |] in
  let t = Cgraph.of_matrix m in
  Format.printf "G(M) for M = %s has order %d (bound %d)@."
    (Matrix.to_string m)
    (Umrs_graph.Graph.order t.Cgraph.graph)
    (Cgraph.order_bound ~p:2 ~q:3 ~d:2);
  (match Verify.check_cgraph t ~bound:Verify.below_two with
  | Ok () ->
    Format.printf
      "every routing function of stretch < 2 must use port m_ij from a_i to \
       b_j: verified@."
  | Error _ -> Format.printf "UNEXPECTED: forcing failed@.");
  let frac_at_2 =
    Verify.forced_fraction t ~bound:{ Verify.num = 2; den = 1; strict = false }
  in
  Format.printf "at stretch exactly 2 the forcing collapses: %.0f%% forced@."
    (100.0 *. frac_at_2);

  banner "4. The decoder: routers of A rebuild M";
  let o =
    Reconstruct.run_experiment ~p:2 ~q:2 ~d:3 ~scheme:Umrs_routing.Table_scheme.build ()
  in
  Format.printf
    "over all %d classes: injective=%b, all graphs forced=%b, all matrices \
     recovered=%b@."
    o.Reconstruct.classes o.Reconstruct.injective o.Reconstruct.all_forced
    o.Reconstruct.all_recovered;

  banner "5. Theorem 1 at scale";
  List.iter
    (fun b -> Format.printf "%a@." Lower_bound.pp_bound b)
    (Lower_bound.sweep ~ns:[ 4096; 65536; 1048576 ] ~epss:[ 0.5 ]);
  Format.printf
    "@.the per-router lower bound is a constant fraction of the@.\
     (n-1)ceil(log2 n)-bit table encoding: routing tables cannot be@.\
     asymptotically compressed for any stretch factor below 2.@."
