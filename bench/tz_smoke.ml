(* Thorup-Zwick smoke benchmark (dune alias @tz-smoke).

   Hard correctness gates first (any failure is fatal): on seeded
   Barabasi-Albert and Chung-Lu power-law graphs the TZ scheme must
   deliver every pair within stretch 3, its average stretch on the BA
   graph must sit well under 1.5 (the Krioukov/Fall/Yang regime), its
   global memory must stay within the ~n^(3/2) TZ bound, and both its
   local and global footprints must undercut the Cowen-style landmark
   scheme on the same graph. Then build and routing throughput are
   timed through the shared Umrs_bench harness and gated against the
   committed BENCH_tz.json baseline. *)

open Umrs_graph
open Umrs_routing
module B = Umrs_bench

let die fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("tz_smoke: " ^ s);
      exit 1)
    fmt

let check_graph name g ~mean_limit =
  let n = Graph.order g in
  let b = Tz_scheme.build g in
  let d = Stretch_dist.exact b.Scheme.rf in
  if d.Stretch_dist.ds_max > 3.0 +. 1e-9 then
    die "%s: max stretch %.4f exceeds the stretch-3 guarantee" name
      d.Stretch_dist.ds_max;
  (match mean_limit with
  | Some lim ->
    if d.Stretch_dist.ds_mean >= lim then
      die "%s: mean stretch %.4f not below %.2f" name d.Stretch_dist.ds_mean
        lim
  | None -> ());
  (* the TZ memory bound: O(n^(3/2)) table entries of O(log n) bits *)
  let log2n = Umrs_bitcode.Codes.ceil_log2 (max 2 n) in
  let bound = 12 * int_of_float (float_of_int n ** 1.5) * log2n in
  let global = Scheme.mem_global b in
  if global > bound then
    die "%s: global memory %d bits above the TZ bound %d" name global bound;
  let lm = Landmark_scheme.build g in
  if global >= Scheme.mem_global lm then
    die "%s: global memory %d not below landmark-3's %d" name global
      (Scheme.mem_global lm);
  if Scheme.mem_local b >= Scheme.mem_local lm then
    die "%s: local memory %d not below landmark-3's %d" name
      (Scheme.mem_local b) (Scheme.mem_local lm);
  Printf.printf
    "%-14s n=%d mean=%.3f p50=%.3f p95=%.3f max=%.3f local=%d global=%d \
     (landmark-3: %d/%d)\n"
    name n d.Stretch_dist.ds_mean d.Stretch_dist.ds_p50
    d.Stretch_dist.ds_p95 d.Stretch_dist.ds_max (Scheme.mem_local b) global
    (Scheme.mem_local lm) (Scheme.mem_global lm);
  (b, d)

let () =
  let st = Random.State.make [| 0x72; 0x5EED |] in
  let ba = Generators.barabasi_albert st ~n:256 ~m:2 in
  let pl = Generators.chung_lu st ~n:256 ~exponent:2.5 in
  let b_ba, d_ba = check_graph "ba-256" ba ~mean_limit:(Some 1.5) in
  let _b_pl, d_pl = check_graph "powerlaw-256" pl ~mean_limit:None in
  (* timing benches, gated loosely (build/route jitter across machines) *)
  B.Harness.register ~name:"tz/build(ba-256)"
    ~budget:{ B.Harness.warmup = 1; min_iters = 3; max_iters = 15;
              max_seconds = 2.0 }
    ~threshold:1.0
    (fun () -> ignore (Tz_scheme.build ba));
  let rf = b_ba.Scheme.rf in
  let pair_st = Random.State.make [| 0xAB; 256 |] in
  let pairs =
    Array.init 2000 (fun _ ->
        let u = Random.State.int pair_st 256 in
        let rec draw () =
          let v = Random.State.int pair_st 256 in
          if v = u then draw () else v
        in
        (u, draw ()))
  in
  B.Harness.register ~name:"tz/route(ba-256)"
    ~budget:{ B.Harness.warmup = 1; min_iters = 3; max_iters = 25;
              max_seconds = 2.0 }
    ~items_per_iter:(float_of_int (Array.length pairs)) ~threshold:1.0
    (fun () ->
      Array.iter
        (fun (u, v) -> ignore (Routing_function.route_length rf u v))
        pairs);
  let report =
    B.Harness.run_all ~suite:"tz"
      ~context:
        [ ("ba_mean_stretch", B.Json.Num d_ba.Stretch_dist.ds_mean);
          ("ba_p95_stretch", B.Json.Num d_ba.Stretch_dist.ds_p95);
          ("ba_max_stretch", B.Json.Num d_ba.Stretch_dist.ds_max);
          ("powerlaw_mean_stretch", B.Json.Num d_pl.Stretch_dist.ds_mean);
          ("ba_mem_global_bits",
           B.Json.Num (float_of_int (Scheme.mem_global b_ba))) ]
      ()
  in
  B.Cli.finish ~default_json:"BENCH_tz.json" report;
  Printf.printf "tz_smoke: OK\n"
