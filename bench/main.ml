(* Benchmark harness: regenerates every table and figure of the paper
   (printed as report sections) and times the machinery with Bechamel
   (one Test per experiment).

   Sections (see DESIGN.md's experiment index):
     T1  Table 1     bound formulas + measured memory of real schemes
     F1  Figure 1    Petersen matrix of constraints, machine-verified
     E1  Section 2   the canonical sets dM(p,q) (both variants)
     E2  Equation 2  the graphs of constraints of 3M(2,2)
     L1  Lemma 1     counting bound vs exhaustive counts
     TH1 Theorem 1   end-to-end reconstruction + asymptotic sweep
     S1  Section 1   K_n adversarial vs sorted port labelling
     U1  Section 1   O(log n) / O(d log n) upper-bound families,
                     plus the globe worst case of [8] and the labelling
                     optimizer of [5]
     A1-A5 ablations: stretch threshold sweep; memory balance; header
                     sizes (excluded from MEM); RLE table compression;
                     landmark selection strategies
     X1-X4 extensions: non-uniform arc costs; fault injection;
                     deadlock analysis via channel dependency graphs;
                     broadcast collectives

   Pass --fast to shrink workloads, --no-timings to skip Bechamel. *)

open Umrs_graph
open Umrs_routing
open Umrs_core

let pf fmt = Format.printf fmt

let section title =
  pf "@.%s@.%s@." title (String.make (String.length title) '=')

(* ------------------------------------------------------------------ *)
(* T1: Table 1                                                         *)
(* ------------------------------------------------------------------ *)

let schemes_for_table = Registry.universal ()

let csv_rows : Scheme.evaluation list ref = ref []

let report_table1 ~fast () =
  section "T1. Table 1: memory requirement vs stretch factor";
  Bounds_table.print ~n:(if fast then 256 else 4096) Format.std_formatter ();
  let size = if fast then 16 else 32 in
  pf "@.Measured columns (graph corpus of order ~%d, bits):@." size;
  pf "%-18s %-18s %5s %6s %9s %10s %8s %8s %8s %8s@." "scheme" "graph" "n" "m"
    "local" "global" "stretch" "mean" "p50" "p95";
  let st = Random.State.make [| 0xBE5C; size |] in
  let corpus = Generators.corpus st ~size in
  List.iter
    (fun scheme ->
      List.iter
        (fun (gname, g) ->
          let e = Scheme.evaluate scheme ~graph_name:gname g in
          csv_rows := e :: !csv_rows;
          pf "%-18s %-18s %5d %6d %9d %10d %8.3f %8.3f %8.3f %8.3f@."
            e.Scheme.scheme_name e.Scheme.graph_name e.Scheme.order
            e.Scheme.edges e.Scheme.mem_local_bits e.Scheme.mem_global_bits
            e.Scheme.stretch.Routing_function.max_ratio
            e.Scheme.stretch.Routing_function.mean_ratio
            e.Scheme.stretch.Routing_function.p50_ratio
            e.Scheme.stretch.Routing_function.p95_ratio)
        corpus)
    schemes_for_table;
  pf "@.Reading: stretch-1 schemes (tables, interval) sit on the s=1 row;@.";
  pf "the landmark and Thorup-Zwick schemes realize the s=3 regime;@.";
  pf "spanner schemes the s=3/s=5 regimes with global memory well below@.";
  pf "full tables. p50/p95 are per-pair stretch quantiles.@."

let report_table1_scaling ~fast () =
  section "T1b. Table 1, the shape: local memory growth with n";
  let sizes = if fast then [ 16; 32 ] else [ 16; 32; 64 ] in
  let families size =
    let st = Random.State.make [| 0x5CA1E; size |] in
    [
      ("random_sparse", Generators.random_connected st ~n:size ~m:(2 * size));
      ("hypercube", Generators.hypercube (Umrs_bitcode.Codes.ceil_log2 size));
      ("random_tree", Generators.random_tree st size);
    ]
  in
  pf "%-18s %-16s" "scheme" "graph";
  List.iter (fun n -> pf " %8s" (Printf.sprintf "n=%d" n)) sizes;
  pf "   (MEM_local bits)@.";
  List.iter
    (fun scheme ->
      List.iter
        (fun fam ->
          pf "%-18s %-16s" scheme.Scheme.name fam;
          List.iter
            (fun size ->
              let g = List.assoc fam (families size) in
              let b = scheme.Scheme.build g in
              pf " %8d" (Scheme.mem_local b))
            sizes;
          pf "@.")
        [ "random_sparse"; "hypercube"; "random_tree" ])
    schemes_for_table;
  (* large-n row: memory exactly, stretch by sampling *)
  let big = if fast then 128 else 256 in
  let stb = Random.State.make [| 0xB16; big |] in
  let gbig = Generators.random_connected stb ~n:big ~m:(2 * big) in
  pf "@.large n = %d (random_sparse; stretch sampled on 100 pairs):@." big;
  List.iter
    (fun scheme ->
      let b = scheme.Scheme.build gbig in
      pf "  %-18s local=%6d bits  sampled stretch >= %.3f@."
        scheme.Scheme.name (Scheme.mem_local b)
        (Routing_function.sampled_stretch stb b.Scheme.rf ~pairs:100))
    [ Table_scheme.scheme; Interval_routing.scheme; Landmark_scheme.scheme;
      Spanner_scheme.scheme ~k:2; Hierarchical_scheme.scheme ];
  pf "@.tables grow ~n log d; interval ~d log n; landmark/tree-cover grow@.";
  pf "sublinearly in their table parts but pay polylog structures - the@.";
  pf "growth exponents, not the constants, are Table 1's content.@."

(* ------------------------------------------------------------------ *)
(* F1: Figure 1                                                        *)
(* ------------------------------------------------------------------ *)

let report_figure1 () =
  section "F1. Figure 1: matrix of constraints of shortest path, Petersen graph";
  let t = Petersen.instance () in
  pf "constrained vertices A = outer cycle {0..4}; targets B = inner {5..9}@.";
  pf "forced-port matrix (rows a_1..a_5, columns b_1..b_5):@.%a@." Matrix.pp
    t.Petersen.matrix;
  pf "unique shortest paths in Petersen: %b@."
    (Petersen.unique_shortest_paths t.Petersen.graph);
  pf "machine verification (Definition 1, stretch 1): %b@." (Petersen.verify t)

(* ------------------------------------------------------------------ *)
(* E1: canonical sets                                                  *)
(* ------------------------------------------------------------------ *)

let report_example_sets () =
  section "E1. Canonical sets dM(p,q) (Section 2)";
  let show variant label (p, q, d) =
    let set = Enumerate.canonical_set ~variant ~p ~q ~d () in
    pf "%s %dM(%d,%d): %d classes@." label d p q (List.length set);
    List.iter
      (fun m ->
        pf "  %-14s (class size %d)@." (Matrix.to_string m)
          (Enumerate.class_size ~variant ~p ~q ~d m))
      set
  in
  show Canonical.Positional "positional (paper's displayed example)" (2, 2, 2);
  show Canonical.Full "full Definition-2 group" (2, 2, 2);
  show Canonical.Full "full Definition-2 group" (2, 2, 3);
  pf "the paper's worked pair: canonical([1 2; 1 1]) = %s@."
    (Matrix.to_string
       (Canonical.canonical (Matrix.create [| [| 1; 2 |]; [| 1; 1 |] |])));
  pf "@.Burnside closed form (positional variant) vs enumeration:@.";
  List.iter
    (fun (p, q, d) ->
      let burnside = Count.positional_exact ~p ~q ~d in
      let exact =
        match Enumerate.count ~variant:Canonical.Positional ~p ~q ~d () with
        | x -> string_of_int x
        | exception Invalid_argument _ -> "(beyond enumeration)"
      in
      pf "  (%d,%d,%d): burnside=%s exact=%s@." p q d
        (Bignat.to_string burnside) exact)
    [ (2, 2, 2); (2, 3, 2); (3, 3, 2); (3, 3, 3); (4, 4, 4); (6, 6, 5) ];
  pf "@.Wreath-product Burnside: exact |dM(p,q)| under the FULL group:@.";
  List.iter
    (fun (p, q, d) ->
      let exact =
        if Float.pow (float_of_int d) (float_of_int (p * q)) > 131072.0 then
          "(beyond quick enumeration)"
        else string_of_int (Enumerate.count ~p ~q ~d ())
      in
      pf "  (%d,%d,%d): closed form=%s enumeration=%s@." p q d
        (Bignat.to_string (Count.full_exact ~p ~q ~d))
        exact)
    [ (2, 2, 3); (3, 3, 3); (3, 4, 3); (4, 4, 4); (6, 6, 5); (8, 8, 8) ];
  pf "@.Monte-Carlo estimate of |dM(p,q)| (full group) via orbit sampling:@.";
  let st = Random.State.make [| 0x0B17 |] in
  List.iter
    (fun (p, q, d) ->
      let e = Orbit.estimate_classes st ~samples:200 ~p ~q ~d in
      let exact =
        (* keep the cross-check cheap: enumerate only tiny spaces *)
        if Float.pow (float_of_int d) (float_of_int (p * q)) > 131072.0 then
          "(beyond quick enumeration)"
        else string_of_int (Enumerate.count ~p ~q ~d ())
      in
      pf "  (%d,%d,%d): estimate=%.1f +- %.1f exact=%s@." p q d e.Orbit.mean
        e.Orbit.std_error exact)
    [ (2, 2, 3); (3, 3, 3); (3, 4, 3) ]

(* ------------------------------------------------------------------ *)
(* E3: the enumeration engine, timed                                   *)
(* ------------------------------------------------------------------ *)

type enum_bench_row = {
  eb_p : int;
  eb_q : int;
  eb_d : int;
  eb_classes : int;
  eb_seconds_seq : float;
  eb_seconds_par : float;
  eb_domains : int;
}

let enum_bench_rows : enum_bench_row list ref = ref []

let report_enumeration_engine ~fast () =
  section "E3. Enumeration engine: canonical_set wall times (seq vs sharded)";
  (* Measure the parallel column at the recommended domain count, not at
     [Parallel.default_domains ()] (= recommended - 1), which collapses
     to 1 on small machines and made seconds_par a second sequential
     measurement. *)
  let domains = Domain.recommended_domain_count () in
  let wall f =
    let t0 = Unix.gettimeofday () in
    let x = f () in
    (x, Unix.gettimeofday () -. t0)
  in
  let instances =
    if fast then [ (2, 2, 3); (2, 3, 3); (3, 3, 2) ]
    else [ (2, 2, 3); (2, 3, 3); (3, 3, 2); (2, 2, 4); (2, 4, 3); (3, 4, 3) ]
  in
  pf "%-10s %10s %8s %12s %12s %8s@." "(p,q,d)" "d^(pq)" "classes"
    "seq (s)" (Printf.sprintf "par x%d (s)" domains) "speedup";
  List.iter
    (fun (p, q, d) ->
      let seq, t_seq =
        wall (fun () -> Enumerate.canonical_set ~domains:1 ~p ~q ~d ())
      in
      let par, t_par =
        wall (fun () -> Enumerate.canonical_set ~domains ~p ~q ~d ())
      in
      assert (List.for_all2 Matrix.equal seq par);
      let classes = List.length seq in
      (* Shard count actually used: [Parallel] caps domains at the raw
         matrix count, so tiny instances may use fewer than requested. *)
      let used =
        Array.length
          (Parallel.chunks ~domains (Enumerate.checked_total ~p ~q ~d ()))
      in
      enum_bench_rows :=
        { eb_p = p; eb_q = q; eb_d = d; eb_classes = classes;
          eb_seconds_seq = t_seq; eb_seconds_par = t_par;
          eb_domains = used }
        :: !enum_bench_rows;
      pf "%-10s %10.0f %8d %12.4f %12.4f %8.2f@."
        (Printf.sprintf "(%d,%d,%d)" p q d)
        (Float.pow (float_of_int d) (float_of_int (p * q)))
        classes t_seq t_par
        (if t_par > 0.0 then t_seq /. t_par else Float.nan))
    instances;
  pf "@.sharded and sequential outputs verified identical on every row;@.";
  pf "BENCH_enumerate.json records this table for cross-PR tracking.@."

let write_enum_bench_json ~fast path =
  let oc = open_out path in
  let row r =
    Printf.sprintf
      "    {\"p\": %d, \"q\": %d, \"d\": %d, \"classes\": %d, \
       \"seconds_seq\": %.6f, \"seconds_par\": %.6f, \"domains_used\": %d}"
      r.eb_p r.eb_q r.eb_d r.eb_classes r.eb_seconds_seq r.eb_seconds_par
      r.eb_domains
  in
  Printf.fprintf oc
    "{\n  \"schema\": \"umrs/bench-enumerate/v2\",\n  \"mode\": \"%s\",\n\
    \  \"recommended_domains\": %d,\n  \"instances\": [\n%s\n  ]\n}\n"
    (if fast then "fast" else "full")
    (Domain.recommended_domain_count ())
    (String.concat ",\n" (List.rev_map row !enum_bench_rows));
  close_out oc;
  pf "@.enumeration benchmark written to %s@." path

(* ------------------------------------------------------------------ *)
(* E2: Equation 2, graphs of constraints                               *)
(* ------------------------------------------------------------------ *)

let report_equation2 () =
  section "E2. Equation 2: graphs of constraints of 3M(2,2) (Lemma 2)";
  pf "%-14s %6s %6s %9s %7s@." "matrix" "order" "bound" "forced<2" "unique";
  List.iter
    (fun m ->
      let t = Cgraph.of_matrix m in
      let g = t.Cgraph.graph in
      let forced =
        match Verify.check_cgraph t ~bound:Verify.below_two with
        | Ok () -> true
        | Error _ -> false
      in
      let unique =
        Array.for_all
          (fun a ->
            Array.for_all
              (fun b -> Bfs.count_shortest_paths g a b = 1)
              t.Cgraph.targets)
          t.Cgraph.constrained
      in
      pf "%-14s %6d %6d %9b %7b@." (Matrix.to_string m) (Graph.order g)
        (Cgraph.order_bound ~p:2 ~q:2 ~d:3)
        forced unique)
    (Enumerate.canonical_set ~p:2 ~q:2 ~d:3 ())

(* ------------------------------------------------------------------ *)
(* L1: Lemma 1                                                         *)
(* ------------------------------------------------------------------ *)

let report_lemma1 () =
  section "L1. Lemma 1: d^(pq)/(p! q! (d!)^p) <= |dM(p,q)|";
  pf "%-12s %14s %14s %8s@." "(p,q,d)" "lemma-1 bound" "exact |dM|" "holds";
  List.iter
    (fun (p, q, d) ->
      let bound = Count.lemma1_bound ~p ~q ~d in
      let exact = Enumerate.count ~p ~q ~d () in
      pf "%-12s %14s %14d %8b@."
        (Printf.sprintf "(%d,%d,%d)" p q d)
        (Bignat.to_string bound) exact
        (Count.holds_exactly ~p ~q ~d ()))
    [ (1, 2, 2); (2, 2, 2); (2, 2, 3); (2, 3, 2); (3, 2, 2); (2, 2, 4);
      (3, 3, 2); (2, 4, 2); (1, 4, 3); (2, 5, 2) ];
  pf "@.log-space bound at Theorem-1 scale:@.";
  List.iter
    (fun (p, q, d) ->
      pf "  (p=%d, q=%d, d=%d): log2 |dM| >= %.0f bits@." p q d
        (Count.log2_lemma1_bound ~p ~q ~d))
    [ (32, 512, 15); (128, 8192, 63); (512, 131072, 255) ]

(* ------------------------------------------------------------------ *)
(* TH1: Theorem 1                                                      *)
(* ------------------------------------------------------------------ *)

let report_theorem1 ~fast () =
  section "TH1. Theorem 1: reconstruction experiment + asymptotic sweep";
  pf "end-to-end reconstruction over entire canonical sets:@.";
  pf "%-16s %8s %10s %8s %10s %10s@." "(p,q,d)" "classes" "injective"
    "forced" "recovered" "net bits";
  let cases =
    if fast then [ (2, 2, 2, None); (2, 2, 3, None) ]
    else
      [
        (2, 2, 2, None); (2, 2, 3, None); (2, 3, 2, None); (3, 2, 2, None);
        (2, 2, 2, Some 32); (2, 3, 2, Some 48);
      ]
  in
  List.iter
    (fun (p, q, d, pad_to) ->
      let o =
        Reconstruct.run_experiment ?pad_to ~p ~q ~d ~scheme:Table_scheme.build
          ()
      in
      pf "%-16s %8d %10b %8b %10b %10.1f@."
        (Printf.sprintf "(%d,%d,%d)%s" p q d
           (match pad_to with
           | Some n -> Printf.sprintf "+pad%d" n
           | None -> ""))
        o.Reconstruct.classes o.Reconstruct.injective o.Reconstruct.all_forced
        o.Reconstruct.all_recovered o.Reconstruct.bits_net)
    cases;
  let st = Random.State.make [| 0x5A11 |] in
  let sam =
    Reconstruct.run_sampled st ~samples:(if fast then 10 else 40) ~p:3 ~q:4
      ~d:3 ~scheme:Table_scheme.build ()
  in
  pf "sampled mechanism at (3,4,3) (|dM| = %s by Burnside): %d samples, forced=%b recovered=%b@."
    (Bignat.to_string (Count.full_exact ~p:3 ~q:4 ~d:3))
    sam.Reconstruct.s_samples sam.Reconstruct.s_all_forced
    sam.Reconstruct.s_all_recovered;
  pf "(net bits = information minus side information; at these toy sizes@.";
  pf " the MB + MC charge dominates - the asymptotic accounting is below)@.";
  pf "@.Theorem-1 lower bound vs the routing-table upper bound:@.";
  let ns =
    if fast then [ 1024; 16384 ]
    else [ 1024; 4096; 16384; 65536; 262144; 1048576 ]
  in
  List.iter
    (fun b -> pf "%a@." Lower_bound.pp_bound b)
    (Lower_bound.sweep ~ns ~epss:[ 0.25; 0.5; 0.75 ]);
  pf "@.Reading: per-router lower bound grows as Theta(n log n), a constant@.";
  pf "fraction of the table upper bound (ratio column converges upward):@.";
  pf "tables cannot be locally compressed for any stretch below 2.@.";
  pf "@.Companion global bound ([6], Table 1's global column for s < 2):@.";
  List.iter
    (fun b -> pf "%a@." Lower_bound.pp_global b)
    (Lower_bound.global_sweep ~ns);
  pf "LB/n^2 converges to 1/16 with this parameterization: Omega(n^2) total.@."

(* ------------------------------------------------------------------ *)
(* S1: K_n port labellings                                             *)
(* ------------------------------------------------------------------ *)

let report_kn_ports ~fast () =
  section "S1. Section 1 example: K_n under sorted vs adversarial ports";
  let st = Random.State.make [| 0xADA; 1 |] in
  pf "%6s %14s %18s %14s@." "n" "sorted (bits)" "adversarial (bits)"
    "log2((n-1)!)";
  List.iter
    (fun n ->
      let g = Generators.complete n in
      let direct = Specialized.build_complete_direct g in
      let adv = Specialized.build_complete_adversarial st g in
      pf "%6d %14d %18d %14.1f@." n
        (Scheme.mem_local direct)
        (Scheme.mem_local adv)
        (Umrs_bitcode.Rank.log2_factorial (n - 1)))
    (if fast then [ 8; 16 ] else [ 8; 12; 16; 20; 24; 32 ])

(* ------------------------------------------------------------------ *)
(* U1: O(log n) upper-bound families                                   *)
(* ------------------------------------------------------------------ *)

let report_upper_bounds ~fast () =
  section "U1. Section 1 upper bounds: specialized schemes";
  let rows = ref [] in
  let add name built =
    let stretch = Routing_function.stretch built.Scheme.rf in
    rows :=
      ( name,
        Graph.order built.Scheme.rf.Routing_function.graph,
        Scheme.mem_local built,
        stretch.Routing_function.max_ratio )
      :: !rows
  in
  let dim = if fast then 4 else 6 in
  add "ecube/hypercube" (Specialized.build_ecube (Generators.hypercube dim));
  add "ring"
    (Specialized.build_ring (Generators.cycle (if fast then 16 else 64)));
  let w = if fast then 4 else 8 in
  add "grid-dimension-order"
    (Specialized.build_grid ~w ~h:w (Generators.grid w w));
  add "K_n-direct"
    (Specialized.build_complete_direct
       (Generators.complete (if fast then 12 else 24)));
  let dims = if fast then [ 3; 4 ] else [ 4; 4; 4 ] in
  add "torus-nd-dor"
    (Specialized.build_torus_dor ~dims (Generators.torus_nd dims));
  let st = Random.State.make [| 3; 14 |] in
  let tree = Generators.random_tree st (if fast then 24 else 48) in
  add "interval/tree (1-IRS)" (Interval_routing.build tree);
  (match
     Generators.unit_circular_arc st ~n:(if fast then 16 else 32) ~arc:0.25
   with
  | Some g -> add "interval/circular-arc" (Interval_routing.build g)
  | None -> ());
  let outer = Generators.maximal_outerplanar st (if fast then 16 else 32) in
  add "interval/outerplanar" (Interval_routing.build outer);
  pf "%-24s %6s %12s %8s@." "scheme/family" "n" "local bits" "stretch";
  List.iter
    (fun (name, n, bits, s) -> pf "%-24s %6d %12d %8.3f@." name n bits s)
    (List.rev !rows);
  (* the [8] worst case for interval routing, and the [5] optimizer *)
  let globe = Generators.globe ~meridians:(if fast then 4 else 6)
      ~parallels:(if fast then 3 else 4) in
  let dfs = Interval_routing.compile ~labelling:Interval_routing.Dfs globe in
  let opt =
    Interval_routing.optimize_labelling ~steps:(if fast then 200 else 2000)
      (Random.State.make [| 8; 5 |]) globe
  in
  pf "@.interval compactness on the globe graph (worst-case family of [8]):@.";
  pf "  DFS labelling:       %d intervals/arc max, %d total@."
    (Interval_routing.compactness dfs)
    (Interval_routing.total_intervals dfs);
  pf "  optimized labelling: %d intervals/arc max, %d total (local search, [5])@."
    (Interval_routing.compactness opt)
    (Interval_routing.total_intervals opt)

(* ------------------------------------------------------------------ *)
(* A1/A2: ablations                                                    *)
(* ------------------------------------------------------------------ *)

let report_ablation_stretch () =
  section "A1. Ablation: where does forcing break? (conclusion, question 2)";
  let m = Matrix.create [| [| 1; 2; 1 |]; [| 1; 1; 2 |] |] in
  let t = Cgraph.of_matrix m in
  pf "forced fraction of (i,j) pairs on G([1 2 1; 1 1 2]) vs stretch bound:@.";
  List.iter
    (fun (num, den, strict) ->
      let bound = { Verify.num; den; strict } in
      pf "  s %s %d/%d: %.2f@."
        (if strict then "<" else "<=")
        num den
        (Verify.forced_fraction t ~bound))
    [ (1, 1, false); (3, 2, false); (2, 1, true); (2, 1, false); (3, 1, false) ];
  pf "forcing is total for every bound below 2 and collapses at 2 -@.";
  pf "exactly the phase transition Theorem 1 needs.@."

let report_ablation_balance ~fast () =
  section "A2. Ablation: local vs global balance (Section 1 motivation)";
  let size = if fast then 16 else 32 in
  let st = Random.State.make [| 0xBA1; size |] in
  let g = Generators.random_connected st ~n:size ~m:(3 * size) in
  pf "per-router bits on a random graph (n=%d, m=%d):@." size (3 * size);
  pf "%-18s %8s %8s %10s@." "scheme" "min" "max" "global";
  List.iter
    (fun scheme ->
      let b = scheme.Scheme.build g in
      let profile = Scheme.mem_profile b in
      pf "%-18s %8d %8d %10d@." scheme.Scheme.name
        (Array.fold_left min max_int profile)
        (Array.fold_left max 0 profile)
        (Scheme.mem_global b))
    schemes_for_table;
  pf "@.per-pair stretch distributions (same graph):@.";
  List.iter
    (fun scheme ->
      let b = scheme.Scheme.build g in
      pf "  %-18s %s@." scheme.Scheme.name
        (Umrs_graph.Stats.summary (Routing_function.stretch_ratios b.Scheme.rf)))
    [ Landmark_scheme.scheme; Spanner_scheme.scheme ~k:2;
      Hierarchical_scheme.scheme; Tree_cover_scheme.scheme ];
  pf "@.";
  pf "MEM_global alone hides imbalance: interval/tables are even,@.";
  pf "landmark concentrates bits at landmarks (cf. Section 1's remark).@."

let report_ablation_headers ~fast () =
  section "A3. Ablation: header sizes (excluded from MEM by the model)";
  let size = if fast then 16 else 25 in
  let side = int_of_float (sqrt (float_of_int size)) in
  let g = Generators.torus (max 4 side) (max 4 side) in
  pf "max header bits on a torus (n=%d); MEM charges none of these:@."
    (Graph.order g);
  List.iter
    (fun scheme ->
      let b = scheme.Scheme.build g in
      pf "  %-18s %3d header bits, %6d memory bits local@."
        scheme.Scheme.name
        (Routing_function.max_header_bits b.Scheme.rf)
        (Scheme.mem_local b))
    [
      Table_scheme.scheme; Interval_routing.scheme; Landmark_scheme.scheme;
      Hierarchical_scheme.scheme;
    ];
  pf "the paper allows unbounded headers to keep the lower bound fully@.";
  pf "general; real schemes pay a few extra log-n fields.@."

let report_ablation_landmarks ~fast () =
  section "A5. Ablation: landmark selection strategy";
  let size = if fast then 20 else 36 in
  let side = int_of_float (sqrt (float_of_int size)) in
  let g = Generators.grid (max 4 side) (max 4 side) in
  pf "grid %dx%d, default landmark count:@." (max 4 side) (max 4 side);
  pf "  %-14s %10s %10s %12s@." "strategy" "local" "global" "max stretch";
  List.iter
    (fun (name, strategy) ->
      let b = Landmark_scheme.build ~strategy g in
      let st = Routing_function.stretch b.Scheme.rf in
      pf "  %-14s %10d %10d %12.3f@." name (Scheme.mem_local b)
        (Scheme.mem_global b) st.Routing_function.max_ratio)
    [
      ("random", Landmark_scheme.Random_landmarks);
      ("high-degree", Landmark_scheme.High_degree);
      ("k-center", Landmark_scheme.K_center);
    ];
  pf "spread-out landmarks (k-center) shrink the worst cluster tables;@.";
  pf "the stretch-3 guarantee holds under every strategy.@."

let report_ablation_compression ~fast () =
  section "A4. Ablation: trying to compress tables anyway (Theorem 1, felt)";
  pf "run-length coding of next-hop tables, global ratio vs plain tables:@.";
  let n = if fast then 32 else 64 in
  List.iter
    (fun (name, g) ->
      pf "  %-22s %.3f@." name (Compressed_tables.compression_ratio g))
    [
      (Printf.sprintf "cycle %d" n, Generators.cycle n);
      ("grid 6x6", Generators.grid 6 6);
      ("hypercube 32", Generators.hypercube 5);
      (Printf.sprintf "star %d" n, Generators.star n);
    ];
  (* constrained routers of graphs of constraints: the rows are
     incompressible by construction *)
  let ms =
    [
      Matrix.create [| [| 1; 2; 3; 1; 3; 2; 2; 1; 3 |]; [| 1; 1; 2; 3; 2; 1; 3; 3; 2 |] |];
      Matrix.create [| [| 1; 2; 1; 3; 2; 3; 1; 2; 3 |]; [| 1; 2; 3; 3; 1; 2; 2; 3; 1 |] |];
    ]
  in
  List.iter
    (fun m ->
      let t = Cgraph.of_matrix m in
      let g = t.Cgraph.graph in
      let plain = Table_scheme.build g and rle = Compressed_tables.build g in
      let a = t.Cgraph.constrained.(0) in
      pf "  G(%s): at a constrained router, RLE %d bits vs plain %d bits@."
        (Matrix.to_string m)
        (Umrs_routing.Scheme.mem_at rle a)
        (Umrs_routing.Scheme.mem_at plain a))
    ms;
  pf "structured tables compress; constraint-graph rows do not - the@.";
  pf "incompressibility Theorem 1 proves, observed on a real encoder.@."

let report_extension_weights ~fast () =
  section "X1. Extension: non-uniform arc costs (Table 1 comments on [1],[2])";
  let st = Random.State.make [| 0x3E1; 6 |] in
  let n = if fast then 12 else 20 in
  let g = Generators.random_connected st ~n ~m:(2 * n) in
  let w = Weighted.random st ~max_cost:9 g in
  let weighted = Weighted_tables.build w in
  let hop = Table_scheme.build g in
  let sw = Weighted_tables.stretch w weighted.Scheme.rf in
  let sh = Weighted_tables.stretch w hop.Scheme.rf in
  pf "random graph n=%d, m=%d, edge costs 1..9:@." n (2 * n);
  pf "  weighted tables: weighted stretch %.3f (mean %.3f), %d bits local@."
    sw.Weighted_tables.max_ratio sw.Weighted_tables.mean_ratio
    (Scheme.mem_local weighted);
  pf "  hop tables:      weighted stretch %.3f (mean %.3f), %d bits local@."
    sh.Weighted_tables.max_ratio sh.Weighted_tables.mean_ratio
    (Scheme.mem_local hop);
  pf "same memory, but cost-blind routing pays real stretch under@.";
  pf "non-uniform costs - why [1],[2] treat weighted arcs explicitly.@."

let report_extension_collectives ~fast () =
  section "X4. Extension: collectives (broadcast on the simulator)";
  let side = if fast then 4 else 6 in
  let g = Generators.grid side side in
  let rf = (Table_scheme.build g).Scheme.rf in
  let uni = Collective.broadcast_unicast rf ~root:0 in
  let tree = Collective.broadcast_tree g ~root:0 in
  pf "grid %dx%d, broadcast from a corner:@." side side;
  pf "  unicast storm: %3d rounds, %4d messages@." uni.Collective.rounds
    uni.Collective.messages;
  pf "  BFS tree:      %3d rounds, %4d messages@." tree.Collective.rounds
    tree.Collective.messages;
  pf "the tree collective pays n-1 messages and eccentricity rounds;@.";
  pf "unicasts re-pay shared prefixes and queue on the root's links.@."

let report_extension_deadlock () =
  section "X3. Extension: deadlock analysis (Dally & Seitz, reference [3])";
  pf "channel-dependency-graph acyclicity of classical scheme/topology pairs:@.";
  let check name rf =
    match Deadlock.find_cycle rf with
    | None -> pf "  %-26s deadlock-FREE@." name
    | Some cycle ->
      pf "  %-26s dependency cycle of length %d@." name (List.length cycle)
  in
  check "e-cube / hypercube 16"
    (Specialized.build_ecube (Generators.hypercube 4)).Scheme.rf;
  check "DOR / mesh 4x4"
    (Specialized.build_grid ~w:4 ~h:4 (Generators.grid 4 4)).Scheme.rf;
  check "DOR / torus 4x4"
    (Specialized.build_torus_dor ~dims:[ 4; 4 ] (Generators.torus_nd [ 4; 4 ])).Scheme.rf;
  check "shortest / ring 8"
    (Specialized.build_ring (Generators.cycle 8)).Scheme.rf;
  check "tables / random tree"
    (Table_scheme.build (Generators.random_tree (Random.State.make [| 3 |]) 16)).Scheme.rf;
  pf "  %-26s %s@." "DOR+2VCs / torus 4x4"
    (if Specialized.torus_dor_vc_deadlock_free ~dims:[ 4; 4 ]
          (Generators.torus_nd [ 4; 4 ])
     then "deadlock-FREE (virtual channels)"
     else "cycle (unexpected)");
  pf "dimension order is deadlock-free exactly when wrap-around is absent;@.";
  pf "two virtual channels restore it on tori - the [3] results, recovered@.";
  pf "from the routing functions themselves.@."

let report_extension_failures ~fast () =
  section "X2. Extension: fault injection (simulator)";
  let st = Random.State.make [| 0xFA11 |] in
  let g = Generators.torus 5 5 in
  let rf = (Table_scheme.build g).Scheme.rf in
  let pairs =
    List.init (if fast then 40 else 120) (fun i -> ((i * 7) mod 25, (i * 11 + 3) mod 25))
    |> List.filter (fun (a, b) -> a <> b)
  in
  let clean = Umrs_routing.Simulator.run rf ~pairs in
  pf "torus 5x5, %d packets:@." (List.length pairs);
  pf "  clean:        %a@." Simulator.pp_stats clean;
  List.iter
    (fun loss ->
      let s = Simulator.run_flaky st ~loss rf ~pairs in
      pf "  loss %.2f:    %a@." loss Simulator.pp_stats s;
      pf "                delays: %s@." (Simulator.delay_summary s))
    [ 0.1; 0.3; 0.5 ];
  let hp = Simulator.run_hot_potato st rf ~pairs in
  pf "  hot-potato:   %a@." Simulator.pp_stats hp;
  pf "                delays: %s@." (Simulator.delay_summary hp);
  let dead = [ (0, 1); (7, 12) ] in
  let s = Simulator.run_with_dead_links ~dead rf ~pairs in
  pf "  2 dead links: %a@." Simulator.pp_stats s;
  pf "static routing functions drop traffic on dead links - the paper's@.";
  pf "model is static; recomputation cost is out of scope but measurable.@."

(* ------------------------------------------------------------------ *)
(* Bechamel timings                                                    *)
(* ------------------------------------------------------------------ *)

let timing_tests ~fast =
  let open Bechamel in
  let st = Random.State.make [| 0x7E57 |] in
  let size = if fast then 12 else 24 in
  let g_corpus = Generators.random_connected st ~n:size ~m:(2 * size) in
  let petersen = Generators.petersen () in
  let m322 = Matrix.create [| [| 1; 2 |]; [| 1; 2 |] |] in
  [
    Test.make ~name:"table1/routing-tables"
      (Staged.stage (fun () -> ignore (Table_scheme.build g_corpus)));
    Test.make ~name:"table1/interval-dfs"
      (Staged.stage (fun () -> ignore (Interval_routing.build g_corpus)));
    Test.make ~name:"table1/landmark-3"
      (Staged.stage (fun () -> ignore (Landmark_scheme.build g_corpus)));
    Test.make ~name:"table1/spanner-3"
      (Staged.stage (fun () -> ignore (Spanner_scheme.build ~k:2 g_corpus)));
    Test.make ~name:"figure1/petersen-verify"
      (Staged.stage (fun () -> ignore (Petersen.verify (Petersen.instance ()))));
    Test.make ~name:"example/canonicalize"
      (Staged.stage (fun () -> ignore (Canonical.canonical m322)));
    Test.make ~name:"example/enumerate-3M22"
      (Staged.stage (fun () ->
           ignore (Enumerate.canonical_set ~p:2 ~q:2 ~d:3 ())));
    Test.make ~name:"equation2/cgraph-build"
      (Staged.stage (fun () -> ignore (Cgraph.of_matrix m322)));
    Test.make ~name:"lemma1/exact-bound"
      (Staged.stage (fun () -> ignore (Count.lemma1_bound ~p:3 ~q:3 ~d:4)));
    Test.make ~name:"theorem1/reconstruct-223"
      (Staged.stage (fun () ->
           ignore
             (Reconstruct.run_experiment ~p:2 ~q:2 ~d:3
                ~scheme:Table_scheme.build ())));
    Test.make ~name:"theorem1/bound-sweep"
      (Staged.stage (fun () -> ignore (Lower_bound.theorem1 ~n:65536 ~eps:0.5)));
    Test.make ~name:"kn/adversarial-encode"
      (Staged.stage (fun () ->
           ignore
             (Specialized.build_complete_adversarial st
                (Generators.complete 16))));
    Test.make ~name:"upper/ecube-build"
      (Staged.stage (fun () ->
           ignore (Specialized.build_ecube (Generators.hypercube 6))));
    Test.make ~name:"substrate/bfs-petersen"
      (Staged.stage (fun () -> ignore (Bfs.all_pairs petersen)));
    Test.make ~name:"substrate/simulate-all-pairs"
      (Staged.stage (fun () ->
           ignore (Simulator.all_pairs (Table_scheme.build petersen).Scheme.rf)));
    Test.make ~name:"table1/hierarchical"
      (Staged.stage (fun () -> ignore (Hierarchical_scheme.build g_corpus)));
    Test.make ~name:"extension/weighted-tables"
      (Staged.stage
         (let w = Weighted.random (Random.State.make [| 9 |]) ~max_cost:9 g_corpus in
          fun () -> ignore (Weighted_tables.build w)));
    Test.make ~name:"example/burnside-full-888"
      (Staged.stage (fun () -> ignore (Count.full_exact ~p:8 ~q:8 ~d:8)));
    Test.make ~name:"upper/min-compactness-n8"
      (Staged.stage
         (let th = Generators.globe ~meridians:3 ~parallels:2 in
          fun () -> ignore (Interval_routing.min_compactness_exhaustive th)));
    Test.make ~name:"example/burnside-665"
      (Staged.stage (fun () -> ignore (Count.positional_exact ~p:6 ~q:6 ~d:5)));
    Test.make ~name:"example/orbit-333"
      (Staged.stage
         (let m = Matrix.create [| [| 1; 2; 3 |]; [| 1; 1; 2 |]; [| 1; 2; 1 |] |] in
          fun () -> ignore (Orbit.size ~d:3 m)));
    Test.make ~name:"substrate/hot-potato"
      (Staged.stage
         (let rf = (Table_scheme.build petersen).Scheme.rf in
          let pairs = [ (0, 7); (1, 8); (2, 9); (3, 5) ] in
          fun () ->
            ignore
              (Simulator.run_hot_potato (Random.State.make [| 4 |]) rf ~pairs)));
    Test.make ~name:"upper/tree-cover-build"
      (Staged.stage (fun () -> ignore (Tree_cover_scheme.build petersen)));
    Test.make ~name:"extension/deadlock-check"
      (Staged.stage
         (let rf = (Table_scheme.build petersen).Scheme.rf in
          fun () -> ignore (Deadlock.is_deadlock_free rf)));
    Test.make ~name:"substrate/parallel-apsp"
      (Staged.stage
         (let big = Generators.torus 8 8 in
          fun () -> ignore (Parallel.all_pairs ~domains:4 big)));
    Test.make ~name:"upper/interval-optimize"
      (Staged.stage (fun () ->
           ignore
             (Interval_routing.optimize_labelling ~steps:50
                (Random.State.make [| 5 |])
                petersen)));
  ]

let run_timings ~fast () =
  section "Timings (Bechamel, monotonic clock, ns/run)";
  let open Bechamel in
  let open Toolkit in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let quota = Time.second (if fast then 0.05 else 0.25) in
  let cfg = Benchmark.cfg ~limit:2000 ~quota ~kde:None () in
  let tests =
    Test.make_grouped ~name:"umrs" ~fmt:"%s/%s" (timing_tests ~fast)
  in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name o acc -> (name, o) :: acc) results [] in
  List.iter
    (fun (name, o) ->
      let ns =
        match Analyze.OLS.estimates o with Some (x :: _) -> x | _ -> Float.nan
      in
      pf "%-44s %14.1f ns/run@." name ns)
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)

let flag_value name =
  let rec scan i =
    if i >= Array.length Sys.argv - 1 then None
    else if Sys.argv.(i) = name then Some Sys.argv.(i + 1)
    else scan (i + 1)
  in
  scan 1

let csv_path () = flag_value "--csv"

let enum_json_path () =
  Option.value (flag_value "--enum-json") ~default:"BENCH_enumerate.json"

let () =
  let fast = Array.exists (( = ) "--fast") Sys.argv in
  let no_timings = Array.exists (( = ) "--no-timings") Sys.argv in
  (match flag_value "--telemetry" with
  | Some path -> Telemetry.open_file path
  | None -> ());
  pf "umrs benchmark harness - Fraigniaud & Gavoille (1996) reproduction@.";
  pf "mode: %s@." (if fast then "fast" else "full");
  report_table1 ~fast ();
  report_table1_scaling ~fast ();
  report_figure1 ();
  report_example_sets ();
  report_enumeration_engine ~fast ();
  report_equation2 ();
  report_lemma1 ();
  report_theorem1 ~fast ();
  report_kn_ports ~fast ();
  report_upper_bounds ~fast ();
  report_ablation_stretch ();
  report_ablation_balance ~fast ();
  report_ablation_headers ~fast ();
  report_ablation_compression ~fast ();
  report_ablation_landmarks ~fast ();
  report_extension_weights ~fast ();
  report_extension_failures ~fast ();
  report_extension_deadlock ();
  report_extension_collectives ~fast ();
  (match csv_path () with
  | Some path ->
    let oc = open_out path in
    output_string oc (Registry.to_csv (List.rev !csv_rows));
    close_out oc;
    pf "@.measured Table-1 columns written to %s@." path
  | None -> ());
  write_enum_bench_json ~fast (enum_json_path ());
  if not no_timings then run_timings ~fast ();
  Telemetry.close ();
  pf "@.done.@."
