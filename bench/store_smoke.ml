(* Sub-second corpus-store smoke check (dune alias @store-smoke).

   Exercises the full persistence loop on a tiny instance: build a
   corpus with checkpointing, crash the build right after the first
   checkpoint (via the on_checkpoint hook), resume it, and check that
   the resumed corpus is byte-identical to an uninterrupted build and
   reads back as a sorted canonical set of the expected size. *)

open Umrs_core

exception Crash

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let () =
  let dir = Filename.temp_file "umrs_store_smoke" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let p, q, d = (2, 4, 3) in
  let straight = Filename.concat dir "straight.corpus" in
  let resumed = Filename.concat dir "resumed.corpus" in
  let ckdir = Filename.concat dir "ck" in
  let h0 =
    (Umrs_store.Builder.build ~p ~q ~d ~out:straight ()).Umrs_store.Builder.o_header
  in
  (* Crash after the first checkpoint... *)
  (try
     ignore
       (Umrs_store.Builder.build ~p ~q ~d ~out:resumed ~checkpoint_dir:ckdir
          ~checkpoint_every:500
          ~on_checkpoint:(fun ~shard:_ ~done_hi:_ -> raise Crash)
          ());
     prerr_endline "store_smoke: crash hook never fired";
     exit 1
   with Crash -> ());
  if Sys.file_exists resumed then begin
    prerr_endline "store_smoke: crashed build still wrote a corpus";
    exit 1
  end;
  let o =
    Umrs_store.Builder.build ~p ~q ~d ~out:resumed ~checkpoint_dir:ckdir
      ~resume:true ()
  in
  if o.Umrs_store.Builder.o_resumed_from = 0 then begin
    prerr_endline "store_smoke: resume made no use of the checkpoint";
    exit 1
  end;
  if read_file straight <> read_file resumed then begin
    prerr_endline "store_smoke: resumed corpus differs from straight build";
    exit 1
  end;
  let h1, set = Umrs_store.Corpus.load ~path:resumed in
  let expected = List.length (Enumerate.canonical_set ~p ~q ~d ()) in
  if h1.Umrs_store.Corpus.checksum <> h0.Umrs_store.Corpus.checksum
     || List.length set <> expected
  then begin
    prerr_endline "store_smoke: corpus content mismatch after reload";
    exit 1
  end;
  let v = Umrs_store.Corpus.verify ~path:resumed in
  if v.Umrs_store.Corpus.v_problems <> [] then begin
    List.iter prerr_endline v.Umrs_store.Corpus.v_problems;
    exit 1
  end;
  Printf.printf
    "store_smoke: OK (%d classes, resumed past %d of %d raw matrices, \
     checksum %016Lx)\n"
    expected o.Umrs_store.Builder.o_resumed_from o.Umrs_store.Builder.o_total
    h1.Umrs_store.Corpus.checksum
