(* Corpus-store smoke check and bench (dune alias @store-smoke).

   Correctness first, exactly as before: build a corpus with
   checkpointing, crash the build right after the first checkpoint (via
   the on_checkpoint hook), resume it, and check that the resumed
   corpus is byte-identical to an uninterrupted build and reads back as
   a sorted canonical set of the expected size.

   Then the timing: straight builds run through the shared Umrs_bench
   harness (fresh output path per iteration) and the report is gated
   against the committed BENCH_store.json. The (2,4,3) build is
   millisecond-scale, so in practice the gate's tiny-timing floor
   applies — the bench exists for the history trajectory and to catch
   order-of-magnitude collapses. *)

open Umrs_core
module B = Umrs_bench

exception Crash

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let () =
  let dir = Filename.temp_file "umrs_store_smoke" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let p, q, d = (2, 4, 3) in
  let straight = Filename.concat dir "straight.corpus" in
  let resumed = Filename.concat dir "resumed.corpus" in
  let ckdir = Filename.concat dir "ck" in
  let h0 =
    (Umrs_store.Builder.build ~p ~q ~d ~out:straight ()).Umrs_store.Builder.o_header
  in
  (* Crash after the first checkpoint... *)
  (try
     ignore
       (Umrs_store.Builder.build ~p ~q ~d ~out:resumed ~checkpoint_dir:ckdir
          ~checkpoint_every:500
          ~on_checkpoint:(fun ~shard:_ ~done_hi:_ -> raise Crash)
          ());
     prerr_endline "store_smoke: crash hook never fired";
     exit 1
   with Crash -> ());
  if Sys.file_exists resumed then begin
    prerr_endline "store_smoke: crashed build still wrote a corpus";
    exit 1
  end;
  let o =
    Umrs_store.Builder.build ~p ~q ~d ~out:resumed ~checkpoint_dir:ckdir
      ~resume:true ()
  in
  if o.Umrs_store.Builder.o_resumed_from = 0 then begin
    prerr_endline "store_smoke: resume made no use of the checkpoint";
    exit 1
  end;
  if read_file straight <> read_file resumed then begin
    prerr_endline "store_smoke: resumed corpus differs from straight build";
    exit 1
  end;
  let h1, set = Umrs_store.Corpus.load ~path:resumed in
  let expected = List.length (Enumerate.canonical_set ~p ~q ~d ()) in
  if h1.Umrs_store.Corpus.checksum <> h0.Umrs_store.Corpus.checksum
     || List.length set <> expected
  then begin
    prerr_endline "store_smoke: corpus content mismatch after reload";
    exit 1
  end;
  let v = Umrs_store.Corpus.verify ~path:resumed in
  if v.Umrs_store.Corpus.v_problems <> [] then begin
    List.iter prerr_endline v.Umrs_store.Corpus.v_problems;
    exit 1
  end;
  Printf.printf
    "store_smoke: correctness OK (%d classes, resumed past %d of %d raw \
     matrices, checksum %016Lx)\n"
    expected o.Umrs_store.Builder.o_resumed_from o.Umrs_store.Builder.o_total
    h1.Umrs_store.Corpus.checksum;

  (* timing: straight builds, fresh target each iteration *)
  let bytes = float_of_int (String.length (read_file straight)) in
  let scratch = Filename.concat dir "bench.corpus" in
  let m =
    B.Harness.measure
      ~budget:{ B.Harness.warmup = 1; min_iters = 3; max_iters = 50;
                max_seconds = 1.0 }
      (fun () ->
        if Sys.file_exists scratch then Sys.remove scratch;
        ignore (Umrs_store.Builder.build ~p ~q ~d ~out:scratch ()))
  in
  let bench =
    B.Harness.bench_of_measured
      ~name:(Printf.sprintf "store/build(%d,%d,%d)" p q d)
      ~items_per_iter:(float_of_int expected) ~threshold:1.0
      ~extra:
        [ B.Report.metric ~unit_:"B/s" ~better:B.Report.Higher
            "bytes_per_sec"
            (bytes *. float_of_int m.B.Harness.iters /. m.B.Harness.seconds) ]
      m
  in
  let report =
    B.Report.make ~suite:"store"
      ~context:
        [ ("instance",
           B.Json.Obj
             [ ("p", B.Json.Num (float_of_int p));
               ("q", B.Json.Num (float_of_int q));
               ("d", B.Json.Num (float_of_int d));
               ("records", B.Json.Num (float_of_int expected)) ]) ]
      [ bench ]
  in
  B.Cli.finish ~default_json:"BENCH_store.json" report;
  Printf.printf "store_smoke: OK\n"
