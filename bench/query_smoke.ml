(* Query-engine smoke check and micro-benchmark (dune alias
   @query-smoke).

   Builds the (3,4,3) reference corpus, indexes it, and (a) checks
   nth/mem/rank/range_prefix and batches against the loaded corpus on
   every record, (b) times indexed point lookups against the no-index
   baseline (a full-file scan per lookup) through the shared Umrs_bench
   harness. Fails if the indexed path does not beat the scan; the
   committed BENCH_query.json gates the indexed-vs-scan speedup ratio
   (machine-relative, so stable across CI hosts) rather than the raw
   microsecond timings, which sit under the noise floor. *)

open Umrs_core
module B = Umrs_bench
module Q = Umrs_store.Query

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("query_smoke: " ^ s);
                                exit 1) fmt

let () =
  let dir = Filename.temp_file "umrs_query_smoke" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let p, q, d = (3, 4, 3) in
  let path = Filename.concat dir "ref.corpus" in
  ignore (Umrs_store.Builder.build ~p ~q ~d ~out:path ());
  let stride = 8 in
  (match Q.build ~corpus:path ~stride () with
  | Ok _ -> ()
  | Error e -> die "index build: %s" (Q.error_to_string e));
  let t =
    match Q.open_ ~corpus:path () with
    | Ok t -> t
    | Error e -> die "open: %s" (Q.error_to_string e)
  in
  let _, ms = Umrs_store.Corpus.load ~path in
  let arr = Array.of_list ms in
  let n = Array.length arr in

  (* (a) differential check against the loaded corpus *)
  Array.iteri
    (fun i m ->
      if Matrix.compare_lex (Q.nth t i) m <> 0 then die "nth %d mismatch" i;
      if not (Q.mem t m) then die "mem false negative at %d" i;
      if Q.rank t m <> i then die "rank mismatch at %d" i)
    arr;
  let lo, hi = Q.range_prefix t [||] in
  if lo <> 0 || hi <> n then die "empty-prefix range not the whole corpus";
  let reqs =
    Array.init (4 * n) (fun k ->
        match k mod 4 with
        | 0 -> Q.Nth (k / 4)
        | 1 -> Q.Mem arr.(k / 4)
        | 2 -> Q.Rank arr.(k / 4)
        | _ -> Q.Range_prefix [| 1 + (k mod d) |])
  in
  let one = Q.batch ~domains:1 t reqs in
  let many = Q.batch ~domains:4 t reqs in
  if one <> many then die "batch answers differ across domain counts";

  (* (b) indexed point lookup vs full-file scan, one lookup per
     iteration so seconds_p50 is per-lookup latency *)
  let pick = ref 0 in
  let next () =
    pick := !pick + 1;
    !pick * 7919 mod n
  in
  let indexed =
    B.Harness.measure
      ~budget:{ B.Harness.warmup = 10; min_iters = 200; max_iters = 200;
                max_seconds = 5.0 }
      (fun () -> ignore (Q.nth t (next ())))
  in
  let scan_nth i =
    (* the no-index baseline: walk the file from the top *)
    let seen = ref 0 and res = ref None in
    ignore
      (Umrs_store.Corpus.iter ~path (fun m ->
           if !seen = i then res := Some m;
           incr seen));
    match !res with Some m -> m | None -> die "scan_nth out of range"
  in
  let scanned =
    B.Harness.measure
      ~budget:{ B.Harness.warmup = 2; min_iters = 50; max_iters = 50;
                max_seconds = 10.0 }
      (fun () -> ignore (scan_nth (next ())))
  in
  let i50 = B.Quantile.p50 indexed.B.Harness.runs in
  let s50 = B.Quantile.p50 scanned.B.Harness.runs in
  if i50 >= s50 then
    die "indexed lookup (p50 %.1fus) does not beat full scan (p50 %.1fus)"
      (1e6 *. i50) (1e6 *. s50);
  let benches =
    [ B.Harness.bench_of_measured ~name:"query/indexed_nth" ~gate_time:false
        indexed;
      B.Harness.bench_of_measured ~name:"query/scan_nth" ~gate_time:false
        scanned;
      (* the gated ratio: both sides measured on the same box *)
      { B.Report.b_name = "query/speedup"; b_iters = indexed.B.Harness.iters;
        b_warmup = 0;
        b_seconds = indexed.B.Harness.seconds +. scanned.B.Harness.seconds;
        b_metrics =
          [ B.Report.metric ~unit_:"x" ~better:B.Report.Higher ~gated:true
              ~threshold:0.5 "speedup_p50" (s50 /. i50) ] } ]
  in
  let report =
    B.Report.make ~suite:"query"
      ~context:
        [ ("instance",
           B.Json.Obj
             [ ("p", B.Json.Num (float_of_int p));
               ("q", B.Json.Num (float_of_int q));
               ("d", B.Json.Num (float_of_int d));
               ("records", B.Json.Num (float_of_int n)) ]);
          ("stride", B.Json.Num (float_of_int stride)) ]
      benches
  in
  Q.close t;
  Printf.printf
    "query_smoke: %d records; indexed p50 %.1fus, scan p50 %.1fus, speedup \
     %.1fx\n"
    n (1e6 *. i50) (1e6 *. s50) (s50 /. i50);
  B.Cli.finish ~default_json:"BENCH_query.json" report;
  Printf.printf "query_smoke: OK\n"
