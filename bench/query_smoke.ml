(* Query-engine smoke check and micro-benchmark (dune alias
   @query-smoke).

   Builds the (3,4,3) reference corpus, indexes it, and (a) checks
   nth/mem/rank/range_prefix and batches against the loaded corpus on
   every record, (b) times indexed point lookups against the no-index
   baseline (a full-file scan per lookup) and writes the p50/p95
   latencies to BENCH_query.json (override with --json PATH). Fails if
   the indexed path does not beat the scan. *)

open Umrs_core
module Q = Umrs_store.Query

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("query_smoke: " ^ s);
                                exit 1) fmt

let percentile sorted p =
  let n = Array.length sorted in
  sorted.(max 0 (min (n - 1) (int_of_float (ceil (p /. 100. *. float_of_int n)) - 1)))

let time_one f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

let flag_value name =
  let rec go i =
    if i + 1 >= Array.length Sys.argv then None
    else if Sys.argv.(i) = name then Some Sys.argv.(i + 1)
    else go (i + 1)
  in
  go 1

let () =
  let dir = Filename.temp_file "umrs_query_smoke" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let p, q, d = (3, 4, 3) in
  let path = Filename.concat dir "ref.corpus" in
  ignore (Umrs_store.Builder.build ~p ~q ~d ~out:path ());
  let stride = 8 in
  (match Q.build ~corpus:path ~stride () with
  | Ok _ -> ()
  | Error e -> die "index build: %s" (Q.error_to_string e));
  let t =
    match Q.open_ ~corpus:path () with
    | Ok t -> t
    | Error e -> die "open: %s" (Q.error_to_string e)
  in
  let _, ms = Umrs_store.Corpus.load ~path in
  let arr = Array.of_list ms in
  let n = Array.length arr in

  (* (a) differential check against the loaded corpus *)
  Array.iteri
    (fun i m ->
      if Matrix.compare_lex (Q.nth t i) m <> 0 then die "nth %d mismatch" i;
      if not (Q.mem t m) then die "mem false negative at %d" i;
      if Q.rank t m <> i then die "rank mismatch at %d" i)
    arr;
  let lo, hi = Q.range_prefix t [||] in
  if lo <> 0 || hi <> n then die "empty-prefix range not the whole corpus";
  let reqs =
    Array.init (4 * n) (fun k ->
        match k mod 4 with
        | 0 -> Q.Nth (k / 4)
        | 1 -> Q.Mem arr.(k / 4)
        | 2 -> Q.Rank arr.(k / 4)
        | _ -> Q.Range_prefix [| 1 + (k mod d) |])
  in
  let one = Q.batch ~domains:1 t reqs in
  let many = Q.batch ~domains:4 t reqs in
  if one <> many then die "batch answers differ across domain counts";

  (* (b) indexed point lookup vs full-file scan *)
  let iters = 200 in
  let pick k = (k * 7919) mod n in
  let indexed =
    Array.init iters (fun k -> time_one (fun () -> ignore (Q.nth t (pick k))))
  in
  let scan_nth i =
    (* the no-index baseline: walk the file from the top *)
    let seen = ref 0 and res = ref None in
    ignore
      (Umrs_store.Corpus.iter ~path (fun m ->
           if !seen = i then res := Some m;
           incr seen));
    match !res with Some m -> m | None -> die "scan_nth out of range"
  in
  let scanned =
    Array.init iters (fun k -> time_one (fun () -> ignore (scan_nth (pick k))))
  in
  Array.sort compare indexed;
  Array.sort compare scanned;
  let i50 = percentile indexed 50. and i95 = percentile indexed 95. in
  let s50 = percentile scanned 50. and s95 = percentile scanned 95. in
  if i50 >= s50 then
    die "indexed lookup (p50 %.1fus) does not beat full scan (p50 %.1fus)"
      (1e6 *. i50) (1e6 *. s50);
  let json = Option.value (flag_value "--json") ~default:"BENCH_query.json" in
  let oc = open_out json in
  Printf.fprintf oc
    "{\n  \"schema\": \"umrs/bench-query/v1\",\n\
    \  \"instance\": {\"p\": %d, \"q\": %d, \"d\": %d, \"records\": %d},\n\
    \  \"stride\": %d,\n  \"iterations\": %d,\n\
    \  \"indexed_seconds\": {\"p50\": %.9f, \"p95\": %.9f},\n\
    \  \"scan_seconds\": {\"p50\": %.9f, \"p95\": %.9f},\n\
    \  \"speedup_p50\": %.2f\n}\n"
    p q d n stride iters i50 i95 s50 s95 (s50 /. i50);
  close_out oc;
  Q.close t;
  Printf.printf
    "query_smoke: OK (%d records; indexed p50 %.1fus p95 %.1fus, scan p50 \
     %.1fus p95 %.1fus, speedup %.1fx; %s)\n"
    n (1e6 *. i50) (1e6 *. i95) (1e6 *. s50) (1e6 *. s95) (s50 /. i50) json
