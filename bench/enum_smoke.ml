(* Enumeration smoke benchmark (dune alias @bench-smoke).

   Cross-checks Enumerate.canonical_set class counts against the
   Burnside closed form on a handful of small instances (any mismatch
   is fatal), then times each instance through the shared Umrs_bench
   harness and gates the timings against the committed BENCH_enum.json
   baseline: sub-floor instances are noise-skipped, the larger ones
   fail the run when enumeration slows past their threshold. *)

open Umrs_core
module B = Umrs_bench

let () =
  let instances = [ (2, 2, 3); (2, 3, 3); (3, 3, 2); (2, 2, 4); (2, 4, 3) ] in
  let failures = ref 0 in
  Printf.printf "%-10s %8s %10s\n" "(p,q,d)" "classes" "burnside";
  List.iter
    (fun (p, q, d) ->
      let set = Enumerate.canonical_set ~p ~q ~d () in
      let classes = List.length set in
      let expected = Bignat.to_int_opt (Count.full_exact ~p ~q ~d) in
      let ok = expected = Some classes in
      if not ok then incr failures;
      Printf.printf "%-10s %8d %10s%s\n" (Printf.sprintf "(%d,%d,%d)" p q d)
        classes
        (match expected with Some e -> string_of_int e | None -> "?")
        (if ok then "" else "  MISMATCH");
      (* enumeration timing varies across machines more than server rps
         does, so the gate only fires on a 2x slowdown *)
      B.Harness.register
        ~name:(Printf.sprintf "enum/(%d,%d,%d)" p q d)
        ~budget:{ B.Harness.warmup = 1; min_iters = 3; max_iters = 25;
                  max_seconds = 1.0 }
        ~items_per_iter:(float_of_int classes) ~threshold:1.0
        (fun () -> ignore (Enumerate.canonical_set ~p ~q ~d ())))
    instances;
  if !failures > 0 then begin
    Printf.eprintf "enum_smoke: %d mismatches\n" !failures;
    exit 1
  end;
  let report =
    B.Harness.run_all ~suite:"enum"
      ~context:
        [ ("instances",
           B.Json.Arr
             (List.map
                (fun (p, q, d) ->
                  B.Json.Str (Printf.sprintf "(%d,%d,%d)" p q d))
                instances)) ]
      ()
  in
  B.Cli.finish ~default_json:"BENCH_enum.json" report;
  Printf.printf "enum_smoke: OK\n"
