(* Sub-second enumeration smoke benchmark (dune alias @bench-smoke).

   Times Enumerate.canonical_set on a handful of small instances,
   cross-checks the class counts against the Burnside closed form, and
   exits non-zero on any mismatch — cheap enough for tier-1-adjacent
   verification, honest enough to catch gross perf or correctness
   regressions in the enumeration engine. *)

open Umrs_core

let wall f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

let () =
  let instances = [ (2, 2, 3); (2, 3, 3); (3, 3, 2); (2, 2, 4); (2, 4, 3) ] in
  let failures = ref 0 in
  Printf.printf "%-10s %8s %10s %10s\n" "(p,q,d)" "classes" "seconds" "burnside";
  List.iter
    (fun (p, q, d) ->
      let set, secs = wall (fun () -> Enumerate.canonical_set ~p ~q ~d ()) in
      let classes = List.length set in
      let expected = Bignat.to_int_opt (Count.full_exact ~p ~q ~d) in
      let ok = expected = Some classes in
      if not ok then incr failures;
      Printf.printf "%-10s %8d %10.4f %10s%s\n"
        (Printf.sprintf "(%d,%d,%d)" p q d)
        classes secs
        (match expected with Some e -> string_of_int e | None -> "?")
        (if ok then "" else "  MISMATCH"))
    instances;
  if !failures > 0 then begin
    Printf.eprintf "enum_smoke: %d mismatches\n" !failures;
    exit 1
  end
