(* Server load-test smoke check (dune alias @serve-smoke).

   Builds a small reference corpus, serves it from a FORKED child
   process (so the client's descriptor budget never competes with the
   server's), and drives it with a load matrix: connections x in-flight
   pipeline depth. The small levels (1x4, 4x8) use the PR-4 threaded
   driver for baseline comparability; the big levels (1000x8, 10000x4)
   use a non-blocking event-loop driver - ten thousand client threads
   would measure the bench, not the server. Every request is
   well-formed, the server queue is sized above the largest in-flight
   total, and the run FAILS if any such request is dropped, shed, or
   answered with the wrong payload - backpressure may only ever hit
   overload traffic, not this.

   Also asserts the accept path is event-driven: the p50 of 32
   sequential connect+hello round-trips must come in under 20 ms (the
   old acceptor polled with a fixed 50 ms select tick).

   Reporting and gating go through Umrs_bench: each level is a bench
   (serve/<conns>x<depth>) in the umrs/bench/v1 report written to
   BENCH_serve.json (--json PATH overrides), appended to the history,
   and with --baseline PATH gated on its rps at 50% — identical
   back-to-back runs swing ~30% on a shared box, so the default 25%
   gate would flake, while a real collapse (broken event loop, dead
   worker pool) loses far more than half. Finally drains the server
   (SIGTERM) and verifies the socket is gone. *)

module B = Umrs_bench
module Q = Umrs_store.Query
module Wire = Umrs_server.Wire
module Server = Umrs_server.Server
module Evloop = Umrs_server.Evloop
module C = Umrs_client

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("serve_smoke: " ^ s);
                                exit 1) fmt

(* one monotonic origin for every latency measurement in the run *)
let now_s =
  let t0 = B.Clock.now_ns () in
  fun () -> B.Clock.since_s t0

(* ---------- server child ---------- *)

(* Queue above the deepest in-flight total (10000 conns x depth 4) so a
   well-formed request is never shed; max_conns above the widest level
   so none is refused. *)
let server_main sock corpus =
  ignore (Evloop.raise_nofile 16_000);
  let cfg =
    { (Server.default_config (Wire.Unix_sock sock)) with
      Server.corpus = Some corpus; workers = 2; queue_capacity = 65_536;
      max_conns = 12_000 }
  in
  match Server.start cfg with
  | Error e -> die "server start: %s" e
  | Ok srv ->
    Server.install_signal_handlers srv;
    Server.wait srv;
    exit 0

(* ---------- request mix ---------- *)

(* Cycles through the corpus read operations so the mix exercises every
   data-plane opcode the corpus serves. *)
let request ~records k =
  match k mod 3 with
  | 0 -> Wire.Nth (k mod records)
  | 1 -> Wire.Range_prefix [||]
  | _ -> Wire.Cgraph_of (k mod records)

let well_shaped = function
  | Wire.R_matrix _ | Wire.R_range _ | Wire.R_graph _ -> true
  | _ -> false

(* ---------- threaded driver (small levels; PR-4 comparable) ---------- *)

let drive addr ~records ~depth ~total =
  let c =
    match C.connect ~retries:10 addr with
    | Ok c -> c
    | Error e -> die "connect: %s" (C.error_to_string e)
  in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  let latencies = Array.make total 0.0 in
  let sent_at = Hashtbl.create (2 * depth) in
  let in_flight = Queue.create () in
  let sent = ref 0 and received = ref 0 in
  let send_one () =
    let k = !sent in
    let ticket =
      match C.send c (request ~records k) with
      | Ok t -> t
      | Error e -> die "send %d: %s" k (C.error_to_string e)
    in
    Hashtbl.replace sent_at ticket (now_s ());
    Queue.push (k, ticket) in_flight;
    incr sent
  in
  let recv_one () =
    let k, ticket = Queue.pop in_flight in
    (match C.recv c ticket with
    | Ok r when well_shaped r -> ()
    | Ok _ -> die "request %d: response of the wrong shape" k
    | Error e ->
      die "request %d dropped by the server: %s" k (C.error_to_string e));
    latencies.(k) <- now_s () -. Hashtbl.find sent_at ticket;
    Hashtbl.remove sent_at ticket;
    incr received
  in
  while !sent < min depth total do send_one () done;
  while !received < total do
    recv_one ();
    if !sent < total then send_one ()
  done;
  latencies

let run_threaded addr ~records ~conns ~depth ~per_conn =
  let slots = Array.make conns [||] in
  let threads =
    List.init conns (fun i ->
        Thread.create
          (fun () -> slots.(i) <- drive addr ~records ~depth ~total:per_conn)
          ())
  in
  List.iter Thread.join threads;
  Array.concat (Array.to_list slots)

(* ---------- event-loop driver (big levels) ---------- *)

(* One non-blocking client connection: the hello and the first [depth]
   requests go out optimistically in one burst (the server parses hello
   then frames from the same buffer), replies are matched by id, and
   each reply refills the pipeline until the budget is spent. *)
type cc = {
  fd : Unix.file_descr;
  mutable hello_done : bool;
  mutable rbuf : Bytes.t;
  mutable rlen : int;
  mutable wbuf : Bytes.t;
  mutable woff : int;
  mutable wlen : int;
  mutable want_w : bool;
  sent_at : float array;
  lat : float array;
  mutable sent : int;
  mutable recvd : int;
  mutable closed : bool;
}

let grow_to b needed =
  let cap = ref (max 1 (Bytes.length b)) in
  while !cap < needed do cap := !cap * 2 done;
  let nb = Bytes.create !cap in
  Bytes.blit b 0 nb 0 (Bytes.length b);
  nb

let cc_append cc b =
  let n = Bytes.length b in
  if cc.woff + cc.wlen + n > Bytes.length cc.wbuf then begin
    if cc.woff > 0 then begin
      Bytes.blit cc.wbuf cc.woff cc.wbuf 0 cc.wlen;
      cc.woff <- 0
    end;
    if cc.wlen + n > Bytes.length cc.wbuf then
      cc.wbuf <- grow_to cc.wbuf (cc.wlen + n)
  end;
  Bytes.blit b 0 cc.wbuf (cc.woff + cc.wlen) n;
  cc.wlen <- cc.wlen + n

let frame payload =
  let n = Bytes.length payload in
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_le b 0 (Int32.of_int n);
  Bytes.blit payload 0 b 4 n;
  b

let cc_send_next ~records cc =
  let k = cc.sent in
  cc.sent_at.(k) <- now_s ();
  cc_append cc (frame (Wire.encode_request ~id:k ~deadline_ms:0
                         (request ~records k)));
  cc.sent <- cc.sent + 1

let drive_evloop addr ~records ~conns ~depth ~per_conn =
  let sa =
    match addr with
    | Wire.Unix_sock p -> Unix.ADDR_UNIX p
    | Wire.Tcp _ -> die "event-loop driver expects a unix socket"
  in
  let loop = Evloop.create () in
  let by_fd = Hashtbl.create conns in
  let finished = ref 0 in
  let started = ref 0 in
  let results = Array.make conns [||] in
  let connect_window = 64 in
  let connect_retries = ref 0 in
  let flush cc =
    let continue = ref true in
    while !continue && cc.wlen > 0 do
      match Unix.write cc.fd cc.wbuf cc.woff cc.wlen with
      | 0 -> continue := false
      | n ->
        cc.woff <- cc.woff + n;
        cc.wlen <- cc.wlen - n;
        if cc.wlen = 0 then cc.woff <- 0
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK
                                   | Unix.EINTR), _, _) ->
        continue := false
      | exception Unix.Unix_error (e, _, _) ->
        die "client write: %s" (Unix.error_message e)
    done;
    let w = cc.wlen > 0 in
    if w <> cc.want_w then begin
      cc.want_w <- w;
      Evloop.modify loop cc.fd ~readable:true ~writable:w
    end
  in
  let finish cc =
    cc.closed <- true;
    Evloop.remove loop cc.fd;
    Hashtbl.remove by_fd (Evloop.int_of_fd cc.fd);
    (try Unix.close cc.fd with Unix.Unix_error _ -> ());
    results.(!finished) <- cc.lat;
    incr finished
  in
  let parse cc =
    let off = ref 0 in
    if (not cc.hello_done) && cc.rlen >= Wire.hello_bytes then begin
      (match Wire.check_hello (Bytes.sub cc.rbuf 0 Wire.hello_bytes) with
      | Ok () -> ()
      | Error _ -> die "server hello rejected");
      cc.hello_done <- true;
      off := Wire.hello_bytes
    end;
    if cc.hello_done then begin
      let continue = ref true in
      while !continue && cc.rlen - !off >= 4 do
        let len = Int32.to_int (Bytes.get_int32_le cc.rbuf !off) in
        if cc.rlen - !off - 4 >= len then begin
          let payload = Bytes.sub cc.rbuf (!off + 4) len in
          off := !off + 4 + len;
          (match Wire.decode_outcome payload with
          | exception Invalid_argument m -> die "undecodable reply: %s" m
          | id, Wire.Reply r when well_shaped r ->
            cc.lat.(id) <- now_s () -. cc.sent_at.(id);
            cc.recvd <- cc.recvd + 1
          | id, Wire.Reply _ -> die "request %d: wrong response shape" id
          | id, outcome ->
            die "request %d dropped by the server: %s" id
              (match outcome with
              | Wire.Overloaded -> "overloaded"
              | Wire.Timed_out -> "timed out"
              | Wire.Rejected m -> "rejected: " ^ m
              | Wire.Reply _ -> assert false));
          if cc.sent < per_conn then cc_send_next ~records cc
        end
        else continue := false
      done
    end;
    if !off > 0 then begin
      let rem = cc.rlen - !off in
      if rem > 0 then Bytes.blit cc.rbuf !off cc.rbuf 0 rem;
      cc.rlen <- rem
    end;
    if cc.recvd >= per_conn then finish cc else flush cc
  in
  let handle_readable cc =
    if Bytes.length cc.rbuf - cc.rlen < 4096 then
      cc.rbuf <- grow_to cc.rbuf (cc.rlen + 4096);
    match
      Unix.read cc.fd cc.rbuf cc.rlen (Bytes.length cc.rbuf - cc.rlen)
    with
    | 0 -> die "server closed a connection mid-run"
    | n ->
      cc.rlen <- cc.rlen + n;
      parse cc
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK
                                 | Unix.EINTR), _, _) -> ()
    | exception Unix.Unix_error (e, _, _) ->
      die "client read: %s" (Unix.error_message e)
  in
  (* Connects go out in a bounded window: a 10k simultaneous connect
     storm would only measure listen-backlog overflow retries.  A unix
     socket connect with a full backlog fails EAGAIN immediately (it is
     not in progress) - retry it later. *)
  let try_start_one () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.set_nonblock fd;
    match Unix.connect fd sa with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK
                                 | Unix.ECONNREFUSED | Unix.EINTR), _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      incr connect_retries;
      if !connect_retries > 200_000 then die "connect storm never drains";
      false
    | exception Unix.Unix_error (e, _, _) ->
      die "connect: %s" (Unix.error_message e)
    | () ->
      let cc =
        { fd; hello_done = false;
          rbuf = Bytes.create 4096; rlen = 0;
          wbuf = Bytes.create 1024; woff = 0; wlen = 0; want_w = false;
          sent_at = Array.make per_conn 0.0; lat = Array.make per_conn 0.0;
          sent = 0; recvd = 0; closed = false }
      in
      cc_append cc (Wire.hello ());
      for _ = 1 to min depth per_conn do
        cc_send_next ~records cc
      done;
      Hashtbl.replace by_fd (Evloop.int_of_fd fd) cc;
      Evloop.add loop fd ~readable:true ~writable:false;
      flush cc;
      incr started;
      true
  in
  let deadline = now_s () +. 300.0 in
  while !finished < conns do
    if now_s () > deadline then
      die "level %dx%d: 300 s deadline exceeded (%d/%d connections done)"
        conns depth !finished conns;
    (* at most [connect_window] fresh connects per loop pass, so the
       fleet ramps up without overflowing the listen backlog *)
    let budget = ref connect_window in
    while !budget > 0 && !started < conns && try_start_one () do
      decr budget
    done;
    let handler fd ~readable ~writable ~hup:_ =
      match Hashtbl.find_opt by_fd (Evloop.int_of_fd fd) with
      | None -> ()
      | Some cc ->
        if readable then handle_readable cc;
        if (not cc.closed) && writable then flush cc
    in
    ignore (Evloop.wait loop ~timeout_ms:100 ~handler)
  done;
  Evloop.close loop;
  Array.concat (Array.to_list results)

(* ---------- connect latency ---------- *)

let connect_samples addr =
  Array.init 32 (fun _ ->
      let t0 = now_s () in
      (match C.connect addr with
      | Ok c -> C.close c
      | Error e -> die "connect-latency probe: %s" (C.error_to_string e));
      now_s () -. t0)

(* ---------- main ---------- *)

let () =
  (match Sys.argv with
  | [| _; "--server"; sock; corpus |] -> server_main sock corpus
  | _ -> ());
  ignore (Evloop.raise_nofile 16_000);
  let dir = Filename.temp_file "umrs_serve_smoke" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let p, q, d = (2, 3, 3) in
  let corpus = Filename.concat dir "ref.corpus" in
  ignore (Umrs_store.Builder.build ~p ~q ~d ~out:corpus ());
  (match Q.build ~corpus () with
  | Ok _ -> ()
  | Error e -> die "index build: %s" (Q.error_to_string e));
  let records =
    match Q.open_ ~corpus () with
    | Ok t ->
      let n = (Q.header t).Umrs_store.Corpus.count in
      Q.close t;
      n
    | Error e -> die "open: %s" (Q.error_to_string e)
  in
  let sock = Filename.concat dir "serve.sock" in
  let addr = Wire.Unix_sock sock in
  let exe = Sys.executable_name in
  let child =
    Unix.create_process exe [| exe; "--server"; sock; corpus |] Unix.stdin
      Unix.stdout Unix.stderr
  in
  (* wait until the child is accepting *)
  (match C.connect ~retries:20 addr with
  | Ok c -> C.close c
  | Error e -> die "server never came up: %s" (C.error_to_string e));
  let conn_samples = connect_samples addr in
  let conn_p50 = B.Quantile.p50 (B.Quantile.of_array conn_samples) in
  if conn_p50 > 0.020 then
    die "connect latency p50 %.1f ms exceeds 20 ms - accept path is not \
         event-driven" (1e3 *. conn_p50);
  (* (connections x depth x per-connection budget): small levels keep
     each level's total work comparable with the PR-4 numbers; big
     levels hold 8k and 40k requests in flight across the fleet *)
  let levels =
    [ (1, 4, 400, `Threads); (4, 8, 150, `Threads);
      (1000, 8, 32, `Evloop); (10_000, 4, 4, `Evloop) ]
  in
  let benches =
    List.map
      (fun (conns, depth, per_conn, driver) ->
        let t0 = now_s () in
        let latencies =
          match driver with
          | `Threads -> run_threaded addr ~records ~conns ~depth ~per_conn
          | `Evloop -> drive_evloop addr ~records ~conns ~depth ~per_conn
        in
        let seconds = now_s () -. t0 in
        (* every level shares one box with the server's poller and
           workers, and identical back-to-back runs were measured
           swinging ~30% in rps, so the default 25% gate would flake;
           50% still catches a real collapse (a broken event loop or
           dead worker pool halves throughput and more) *)
        let threshold = Some 0.5 in
        B.Harness.of_samples
          ~name:(Printf.sprintf "serve/%dx%d" conns depth)
          ~seconds ?threshold latencies)
      levels
  in
  (* graceful drain via the signal path, like a real deployment *)
  Unix.kill child Sys.sigterm;
  (match Unix.waitpid [] child with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED n -> die "server child exited %d" n
  | _, (Unix.WSIGNALED s | Unix.WSTOPPED s) -> die "server child died on signal %d" s);
  if Sys.file_exists sock then die "socket file survived the drain";
  let connect_bench =
    B.Harness.of_samples ~name:"serve/connect"
      ~seconds:(Array.fold_left ( +. ) 0. conn_samples)
      ~rate_name:"connects_per_sec" ~gate_rate:false conn_samples
  in
  let report =
    B.Report.make ~suite:"serve"
      ~context:
        [ ("instance",
           B.Json.Obj
             [ ("p", B.Json.Num (float_of_int p));
               ("q", B.Json.Num (float_of_int q));
               ("d", B.Json.Num (float_of_int d));
               ("records", B.Json.Num (float_of_int records)) ]);
          ("workers", B.Json.Num 2.); ("backend", B.Json.Str "epoll") ]
      (connect_bench :: benches)
  in
  List.iter
    (fun (b : B.Report.bench) ->
      match
        (B.Report.find_metric b "rps", B.Report.find_metric b "latency_p50",
         B.Report.find_metric b "latency_p95")
      with
      | Some rps, Some l50, Some l95 ->
        Printf.printf
          "serve_smoke: %s: %d requests, %.0f req/s, p50 %.1fus p95 %.1fus\n"
          b.B.Report.b_name b.B.Report.b_iters rps.B.Report.m_value
          (1e6 *. l50.B.Report.m_value) (1e6 *. l95.B.Report.m_value)
      | _ -> ())
    benches;
  Printf.printf "serve_smoke: connect p50 %.2f ms\n" (1e3 *. conn_p50);
  B.Cli.finish ~default_json:"BENCH_serve.json" report;
  Printf.printf "serve_smoke: OK (%d records served, drained cleanly)\n"
    records
