(* Server load-test smoke check (dune alias @serve-smoke).

   Builds a small reference corpus, serves it over a Unix-domain socket
   in a temp dir, and drives it with a configurable load matrix:
   connections x in-flight pipeline depth. Every request is well-formed,
   the queue is sized above the largest in-flight total, and the run
   FAILS if any such request is dropped, shed, or answered with the
   wrong payload - backpressure may only ever hit overload traffic, not
   this. Records throughput and per-request p50/p95 latency at each
   concurrency level to BENCH_serve.json (override with --json PATH),
   then drains the server gracefully and verifies the socket is gone. *)

module Q = Umrs_store.Query
module Wire = Umrs_server.Wire
module Server = Umrs_server.Server
module C = Umrs_client

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("serve_smoke: " ^ s);
                                exit 1) fmt

let percentile sorted p =
  let n = Array.length sorted in
  sorted.(max 0 (min (n - 1) (int_of_float (ceil (p /. 100. *. float_of_int n)) - 1)))

let flag_value name =
  let rec go i =
    if i + 1 >= Array.length Sys.argv then None
    else if Sys.argv.(i) = name then Some Sys.argv.(i + 1)
    else go (i + 1)
  in
  go 1

(* One connection's worth of load: [total] requests kept [depth] deep in
   the pipeline; returns per-request latencies. Requests cycle through
   the corpus read operations so the mix exercises every data-plane
   opcode the corpus serves. *)
let drive addr ~records ~depth ~total =
  let c =
    match C.connect ~retries:10 addr with
    | Ok c -> c
    | Error e -> die "connect: %s" (C.error_to_string e)
  in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  let request k =
    match k mod 3 with
    | 0 -> Wire.Nth (k mod records)
    | 1 -> Wire.Range_prefix [||]
    | _ -> Wire.Cgraph_of (k mod records)
  in
  let latencies = Array.make total 0.0 in
  let sent_at = Hashtbl.create (2 * depth) in
  let in_flight = Queue.create () in
  let sent = ref 0 and received = ref 0 in
  let send_one () =
    let k = !sent in
    let ticket =
      match C.send c (request k) with
      | Ok t -> t
      | Error e -> die "send %d: %s" k (C.error_to_string e)
    in
    Hashtbl.replace sent_at ticket (Unix.gettimeofday ());
    Queue.push (k, ticket) in_flight;
    incr sent
  in
  let recv_one () =
    let k, ticket = Queue.pop in_flight in
    (match C.recv c ticket with
    | Ok (Wire.R_matrix _ | Wire.R_range _ | Wire.R_graph _) -> ()
    | Ok _ -> die "request %d: response of the wrong shape" k
    | Error e ->
      die "request %d dropped by the server: %s" k (C.error_to_string e));
    latencies.(k) <- Unix.gettimeofday () -. Hashtbl.find sent_at ticket;
    Hashtbl.remove sent_at ticket;
    incr received
  in
  while !sent < min depth total do send_one () done;
  while !received < total do
    recv_one ();
    if !sent < total then send_one ()
  done;
  latencies

let () =
  let dir = Filename.temp_file "umrs_serve_smoke" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let p, q, d = (2, 3, 3) in
  let corpus = Filename.concat dir "ref.corpus" in
  ignore (Umrs_store.Builder.build ~p ~q ~d ~out:corpus ());
  (match Q.build ~corpus () with
  | Ok _ -> ()
  | Error e -> die "index build: %s" (Q.error_to_string e));
  let records =
    match Q.open_ ~corpus () with
    | Ok t ->
      let n = (Q.header t).Umrs_store.Corpus.count in
      Q.close t;
      n
    | Error e -> die "open: %s" (Q.error_to_string e)
  in
  let sock = Filename.concat dir "serve.sock" in
  let addr = Wire.Unix_sock sock in
  let cfg =
    { (Server.default_config addr) with
      Server.corpus = Some corpus; workers = 2; queue_capacity = 256 }
  in
  let srv =
    match Server.start cfg with
    | Ok srv -> srv
    | Error e -> die "server start: %s" e
  in
  (* (connections x depth): per-connection request budget keeps each
     level's total work comparable *)
  let levels = [ (1, 4, 400); (4, 8, 150) ] in
  let results =
    List.map
      (fun (conns, depth, per_conn) ->
        let t0 = Unix.gettimeofday () in
        let slots = Array.make conns [||] in
        let threads =
          List.init conns (fun i ->
              Thread.create
                (fun () ->
                  slots.(i) <- drive addr ~records ~depth ~total:per_conn)
                ())
        in
        List.iter Thread.join threads;
        let latencies = Array.concat (Array.to_list slots) in
        let seconds = Unix.gettimeofday () -. t0 in
        Array.sort compare latencies;
        let requests = Array.length latencies in
        (conns, depth, requests, seconds,
         float_of_int requests /. seconds,
         percentile latencies 50., percentile latencies 95.))
      levels
  in
  Server.shutdown srv;
  Server.wait srv;
  if Sys.file_exists sock then die "socket file survived the drain";
  let json = Option.value (flag_value "--json") ~default:"BENCH_serve.json" in
  let oc = open_out json in
  Printf.fprintf oc
    "{\n  \"schema\": \"umrs/bench-serve/v1\",\n\
    \  \"instance\": {\"p\": %d, \"q\": %d, \"d\": %d, \"records\": %d},\n\
    \  \"workers\": %d,\n  \"levels\": [\n%s\n  ]\n}\n"
    p q d records cfg.Server.workers
    (String.concat ",\n"
       (List.map
          (fun (conns, depth, requests, seconds, rps, p50, p95) ->
            Printf.sprintf
              "    {\"connections\": %d, \"depth\": %d, \"requests\": %d, \
               \"seconds\": %.6f, \"rps\": %.1f, \
               \"latency_seconds\": {\"p50\": %.9f, \"p95\": %.9f}}"
              conns depth requests seconds rps p50 p95)
          results));
  close_out oc;
  List.iter
    (fun (conns, depth, requests, _, rps, p50, p95) ->
      Printf.printf
        "serve_smoke: %dx%d: %d requests, %.0f req/s, p50 %.1fus p95 %.1fus\n"
        conns depth requests rps (1e6 *. p50) (1e6 *. p95))
    results;
  Printf.printf "serve_smoke: OK (%d records served, drained cleanly; %s)\n"
    records json
