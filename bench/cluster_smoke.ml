(* Cluster load-test smoke check (dune alias @cluster-smoke).

   Builds a (2,4,3) reference corpus, splits it across a 3-shard
   cluster with one replica per shard (6 nodes, all in-process, each
   with its own poller and worker domains), and drives it through the
   routing client two ways:

   - throughput levels (threads x per-thread budget): every call is a
     routed read - nth by global rank, rank/mem by key, and the
     all-shard scatter Range_prefix [||] - and every reply is verified
     against the locally loaded corpus, so a wrong answer fails the
     run, not just a slow one;

   - a node-loss storm: reader threads hammer the keyspace while every
     primary is killed mid-storm, one per shard group. Replicas must
     absorb the load invisibly: any dropped or wrong answer is a
     SILENT-LOSS failure. The run also fails if no failovers were
     recorded (the kills must actually have been felt) or if any
     worker domain crashed;

   - a multi-process membership timeline (cluster/multiproc): a
     coordinator plus four routing_lab node processes over real TCP,
     with a SIGKILLed primary, a live shard split and a replica
     catch-up all under the same verified load - see the level's own
     header below.

   Each level is a bench (cluster/<threads>t) in the umrs/bench/v1
   report written to BENCH_cluster.json (--json PATH overrides) and
   appended to the history; with --baseline PATH every level's rps is
   gated at 50% — looser than the single-server gate because six
   servers, their pollers and the client fleet all share one CI box. *)

module B = Umrs_bench
module Corpus = Umrs_store.Corpus
module Q = Umrs_store.Query
module Wire = Umrs_server.Wire
module C = Umrs_client
module Cluster = Umrs_cluster.Cluster
module Cl = Umrs_cluster.Client

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("cluster_smoke: " ^ s);
                                exit 1) fmt

(* one monotonic origin for every latency measurement in the run *)
let now_s =
  let t0 = B.Clock.now_ns () in
  fun () -> B.Clock.since_s t0

let shards = 3
let replicas = 1
let workers = 2

(* ---------- verified request mix ---------- *)

(* Every reply is checked against the local corpus: the bench measures
   a cluster that is RIGHT, not merely fast. *)
let verified_call client records k =
  let n = Array.length records in
  let i = k mod n in
  match k mod 4 with
  | 0 -> (
    match Cl.nth client i with
    | Ok m when Umrs_core.Matrix.equal m records.(i) -> ()
    | Ok _ -> die "nth %d: wrong record" i
    | Error e -> die "nth %d: %s" i (C.error_to_string e))
  | 1 -> (
    match Cl.rank client records.(i) with
    | Ok r when r = i -> ()
    | Ok r -> die "rank of record %d answered %d" i r
    | Error e -> die "rank %d: %s" i (C.error_to_string e))
  | 2 -> (
    match Cl.mem client records.(i) with
    | Ok true -> ()
    | Ok false -> die "mem of stored record %d answered false" i
    | Error e -> die "mem %d: %s" i (C.error_to_string e))
  | _ -> (
    (* the all-shard scatter: every shard answers, replies merge *)
    match Cl.range_prefix client [||] with
    | Ok (0, h) when h = n -> ()
    | Ok (l, h) -> die "empty-prefix range answered (%d, %d), want (0, %d)" l h n
    | Error e -> die "range: %s" (C.error_to_string e))

(* ---------- throughput levels ---------- *)

let run_level bootstrap records ~threads ~per_thread =
  let slots = Array.make threads [||] in
  let spawned =
    List.init threads (fun t ->
        Thread.create
          (fun () ->
            let client =
              match Cl.fetch bootstrap with
              | Ok c -> c
              | Error e -> die "fetch: %s" (C.error_to_string e)
            in
            Fun.protect ~finally:(fun () -> Cl.close client) @@ fun () ->
            let lat = Array.make per_thread 0.0 in
            for k = 0 to per_thread - 1 do
              let t0 = now_s () in
              verified_call client records ((t * 7919) + k);
              lat.(k) <- now_s () -. t0
            done;
            slots.(t) <- lat)
          ())
  in
  List.iter Thread.join spawned;
  Array.concat (Array.to_list slots)

(* ---------- node-loss storm ---------- *)

let storm cl bootstrap records ~threads =
  let stop = Atomic.make false in
  let ops = Array.make threads 0 in
  let failovers = Array.make threads 0 in
  let spawned =
    List.init threads (fun t ->
        Thread.create
          (fun () ->
            let client =
              match Cl.fetch bootstrap with
              | Ok c -> c
              | Error e -> die "storm fetch: %s" (C.error_to_string e)
            in
            Fun.protect ~finally:(fun () -> Cl.close client) @@ fun () ->
            let k = ref 0 in
            while not (Atomic.get stop) do
              verified_call client records ((t * 104_729) + !k);
              incr k
            done;
            ops.(t) <- !k;
            failovers.(t) <- (Cl.stats client).Cl.s_failovers)
          ())
  in
  (* let the storm reach steady state, then take out every primary *)
  Unix.sleepf 0.3;
  for k = 0 to Cluster.shard_count cl - 1 do
    Cluster.kill_primary cl k;
    Unix.sleepf 0.15
  done;
  Unix.sleepf 0.5;
  Atomic.set stop true;
  List.iter Thread.join spawned;
  ( Array.fold_left ( + ) 0 ops,
    Array.fold_left ( + ) 0 failovers )

(* ---------- multi-process level ---------- *)

(* The in-process levels prove the data plane; this one proves the
   membership plane the way it ships: separate OS processes over real
   TCP, driven through the routing_lab CLI. A coordinator and four
   nodes form a two-shard cluster under verified load; the bench then
   SIGKILLs a primary (the detector must promote its replica), splits
   a shard online (double-serving must hide the handoff), and restarts
   the corpse in its old data dir (its pre-split piece is now stale,
   so the join must re-fetch the narrowed range and end up
   byte-identical with the shard's primary). Any dropped or wrong
   answer anywhere in that timeline is a silent-loss failure. *)

module Ms = Umrs_cluster.Membership

let mp_threads = 4
let mp_nodes = 4
let mp_beat_ms = 100

let routing_lab () =
  match Sys.getenv_opt "UMRS_ROUTING_LAB" with
  | Some p -> p
  | None ->
    (* bench/cluster_smoke.exe and bin/routing_lab.exe share a build *)
    let guess =
      Filename.concat
        (Filename.concat
           (Filename.dirname (Filename.dirname Sys.executable_name))
           "bin")
        "routing_lab.exe"
    in
    if Sys.file_exists guess then guess
    else die "routing_lab.exe not found; set UMRS_ROUTING_LAB"

let addr_of_string s =
  match String.split_on_char ':' (String.trim s) with
  | "unix" :: (_ :: _ as rest) -> Some (Wire.Unix_sock (String.concat ":" rest))
  | [ "tcp"; host; port ] -> (
    match int_of_string_opt port with
    | Some p -> Some (Wire.Tcp (host, p))
    | None -> None)
  | _ -> None

let addr_str = Wire.addr_to_string

(* every spawned process dies with the bench, pass or fail *)
let children = ref []

let () =
  at_exit (fun () ->
      List.iter
        (fun pid ->
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
        !children)

let spawn argv ~log =
  let fd = Unix.openfile log [ Unix.O_WRONLY; O_CREAT; O_TRUNC ] 0o644 in
  let pid = Unix.create_process argv.(0) argv Unix.stdin fd fd in
  Unix.close fd;
  children := pid :: !children;
  pid

let forget pid = children := List.filter (fun p -> p <> pid) !children

let reap pid =
  forget pid;
  try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()

let terminate pid =
  (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
  let rec drain n =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
      if n = 0 then begin
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()
      end
      else begin
        Unix.sleepf 0.1;
        drain (n - 1)
      end
    | _ -> ()
    | exception Unix.Unix_error _ -> ()
  in
  drain 50;
  forget pid

let await ?(timeout = 30.0) what f =
  let t0 = now_s () in
  let rec go () =
    match f () with
    | Some v -> v
    | None ->
      if now_s () -. t0 > timeout then die "timed out waiting for %s" what;
      Unix.sleepf 0.05;
      go ()
  in
  go ()

let await_addr file =
  await ("address in " ^ file) (fun () ->
      if not (Sys.file_exists file) then None
      else begin
        let ic = open_in file in
        let line = try input_line ic with End_of_file -> "" in
        close_in ic;
        if line = "" then None else addr_of_string line
      end)

(* one coordinator-status poll: [None] while unreachable or the
   predicate is unsatisfied *)
let probe_status co f =
  match C.connect co with
  | Error _ -> None
  | Ok conn ->
    Fun.protect ~finally:(fun () -> C.close conn) @@ fun () ->
    (match C.cluster_status conn with
    | Ok (v, pub, ms) -> f v pub ms
    | Error _ -> None)

let ready_in_map ms =
  List.filter (fun m -> m.Wire.mi_state = Wire.Ready && m.Wire.mi_in_map) ms

let live_shards ms =
  List.sort_uniq compare (List.map (fun m -> m.Wire.mi_shard) (ready_in_map ms))

let read_file p =
  let ic = open_in_bin p in
  Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
  really_input_string ic (in_channel_length ic)

let count name v =
  B.Report.metric ~better:B.Report.Higher name (float_of_int v)

let multiproc ~corpus ~records =
  let lab = routing_lab () in
  let dir = Filename.temp_file "umrs_cluster_mp" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let tele_dir = "BENCH_cluster_nodes" in
  if not (Sys.file_exists tele_dir) then Unix.mkdir tele_dir 0o755;
  let t0 = now_s () in
  (* coordinator: fast beats so failure detection fits a bench run *)
  let co_addr_file = Filename.concat dir "co.addr" in
  let co_pid =
    spawn
      [| lab; "cluster"; "coordinator"; "--corpus"; corpus;
         "--dir"; Filename.concat dir "co"; "--shards"; "2";
         "--heartbeat-ms"; string_of_int mp_beat_ms; "--miss"; "5";
         "--addr-file"; co_addr_file;
         "--telemetry"; Filename.concat tele_dir "coordinator.jsonl" |]
      ~log:(Filename.concat dir "co.log")
  in
  let co = await_addr co_addr_file in
  let join_node ?listen k tag =
    let ndir = Filename.concat dir (Printf.sprintf "n%d" k) in
    let afile = Filename.concat dir (Printf.sprintf "n%d.%s.addr" k tag) in
    let argv =
      [ lab; "cluster"; "join"; "--coordinator"; addr_str co; "--dir"; ndir;
        "--heartbeat-ms"; string_of_int mp_beat_ms; "--addr-file"; afile;
        "--telemetry";
        Filename.concat tele_dir (Printf.sprintf "node%d.%s.jsonl" k tag) ]
      @ (match listen with Some a -> [ "--listen"; addr_str a ] | None -> [])
    in
    let pid =
      spawn (Array.of_list argv)
        ~log:(Filename.concat dir (Printf.sprintf "n%d.%s.log" k tag))
    in
    let addr = await_addr afile in
    (pid, ndir, addr)
  in
  let nodes = Array.init mp_nodes (fun k -> join_node (k + 1) "a") in
  ignore
    (await "cluster formation" (fun () ->
         probe_status co (fun _ pub ms ->
             let live = ready_in_map ms in
             if
               pub
               && List.length live = mp_nodes
               && live_shards ms = [ 0; 1 ]
               && List.length (List.filter (fun m -> m.Wire.mi_primary) live)
                  = 2
             then Some ()
             else None)));
  (* verified load for the whole membership timeline *)
  let stop = Atomic.make false in
  let ops = Array.make mp_threads 0 in
  let fails = Array.make mp_threads 0 in
  let load =
    List.init mp_threads (fun t ->
        Thread.create
          (fun () ->
            let client =
              match Cl.fetch co with
              | Ok c -> c
              | Error e -> die "multiproc fetch: %s" (C.error_to_string e)
            in
            Fun.protect ~finally:(fun () -> Cl.close client) @@ fun () ->
            let k = ref 0 in
            while not (Atomic.get stop) do
              verified_call client records ((t * 104_729) + !k);
              incr k
            done;
            ops.(t) <- !k;
            fails.(t) <- (Cl.stats client).Cl.s_failovers)
          ())
  in
  Unix.sleepf 0.3;
  (* phase 1: SIGKILL the primary of shard 1; the detector must declare
     it dead and promote its replica while the load keeps verifying *)
  let victim_addr =
    await "a primary for shard 1" (fun () ->
        probe_status co (fun _ pub ms ->
            if not pub then None
            else
              Option.map
                (fun m -> m.Wire.mi_addr)
                (List.find_opt
                   (fun m -> m.Wire.mi_shard = 1 && m.Wire.mi_primary)
                   (ready_in_map ms))))
  in
  let victim_ix =
    let found = ref (-1) in
    Array.iteri
      (fun i (_, _, a) -> if addr_str a = addr_str victim_addr then found := i)
      nodes;
    if !found < 0 then die "victim %s is not one of ours" (addr_str victim_addr);
    !found
  in
  let victim_pid, _, _ = nodes.(victim_ix) in
  Unix.kill victim_pid Sys.sigkill;
  reap victim_pid;
  ignore
    (await "failure detection and promotion" (fun () ->
         probe_status co (fun _ pub ms ->
             let dead =
               List.exists
                 (fun m ->
                   addr_str m.Wire.mi_addr = addr_str victim_addr
                   && m.Wire.mi_state = Wire.Dead)
                 ms
             in
             let promoted =
               List.exists
                 (fun m ->
                   m.Wire.mi_shard = 1 && m.Wire.mi_primary
                   && addr_str m.Wire.mi_addr <> addr_str victim_addr)
                 (ready_in_map ms)
             in
             if pub && dead && promoted then Some () else None)));
  (* phase 2: split shard 1 online — a node is poached from shard 0,
     streams the upper half, and the map flips under the load *)
  (match C.connect co with
  | Error e -> die "reshard connect: %s" (C.error_to_string e)
  | Ok conn ->
    Fun.protect ~finally:(fun () -> C.close conn) @@ fun () ->
    (match C.reshard conn (Wire.Split 1) with
    | Ok _ -> ()
    | Error e -> die "split: %s" (C.error_to_string e)));
  ignore
    (await "split flip" (fun () ->
         probe_status co (fun _ pub ms ->
             if pub && live_shards ms = [ 0; 1; 2 ] then Some () else None)));
  (* phase 3: restart the corpse on its old address and data dir. Its
     piece on disk still spans the pre-split range, so the checksum no
     longer matches the canonical value — the join must re-fetch the
     narrowed range for real before the coordinator lets it back in *)
  let r_pid, r_dir, r_addr = join_node ~listen:victim_addr (victim_ix + 1) "b" in
  if addr_str r_addr <> addr_str victim_addr then
    die "restarted node came back as %s, want %s" (addr_str r_addr)
      (addr_str victim_addr);
  let r_shard =
    await "replica catch-up" (fun () ->
        probe_status co (fun _ pub ms ->
            match
              List.find_opt
                (fun m -> addr_str m.Wire.mi_addr = addr_str r_addr)
                (ready_in_map ms)
            with
            | Some me when pub && me.Wire.mi_checksum <> 0L -> (
              match
                List.find_opt
                  (fun m ->
                    m.Wire.mi_shard = me.Wire.mi_shard && m.Wire.mi_primary)
                  (ready_in_map ms)
              with
              | Some p
                when p.Wire.mi_checksum = me.Wire.mi_checksum
                     && addr_str p.Wire.mi_addr <> addr_str r_addr ->
                Some (me.Wire.mi_shard, p.Wire.mi_addr)
              | _ -> None)
            | _ -> None))
  in
  Unix.sleepf 0.3;
  Atomic.set stop true;
  List.iter Thread.join load;
  (* catch-up must be byte-exact, not merely checksum-happy: the
     returning node's piece file and the primary's must be identical *)
  let shard_k, primary_addr = r_shard in
  let lo, hi =
    match C.connect co with
    | Error e -> die "map fetch: %s" (C.error_to_string e)
    | Ok conn ->
      Fun.protect ~finally:(fun () -> C.close conn) @@ fun () ->
      (match C.shard_map conn with
      | Ok sm ->
        let sh = sm.Wire.sm_shards.(shard_k) in
        (sh.Wire.sh_lo, sh.Wire.sh_hi)
      | Error e -> die "map fetch: %s" (C.error_to_string e))
  in
  let primary_dir =
    let found = ref None in
    Array.iter
      (fun (_, d, a) ->
        if addr_str a = addr_str primary_addr then found := Some d)
      nodes;
    match !found with
    | Some d -> d
    | None -> die "primary %s is not one of ours" (addr_str primary_addr)
  in
  let mine = read_file (Ms.piece_path r_dir lo hi) in
  let theirs = read_file (Ms.piece_path primary_dir lo hi) in
  if mine <> theirs then
    die "caught-up piece [%d, %d) differs from the primary's copy" lo hi;
  (match Unix.waitpid [ Unix.WNOHANG ] co_pid with
  | 0, _ -> ()
  | _ -> die "coordinator exited mid-run");
  (* graceful teardown: nodes leave, the coordinator drains *)
  Array.iteri
    (fun i (pid, _, _) -> if i <> victim_ix then terminate pid)
    nodes;
  terminate r_pid;
  terminate co_pid;
  let seconds = now_s () -. t0 in
  let mp_ops = Array.fold_left ( + ) 0 ops in
  let mp_failovers = Array.fold_left ( + ) 0 fails in
  if mp_failovers = 0 then
    die "multiproc: no failovers recorded: the kill was never felt";
  if mp_ops < mp_threads * 10 then
    die "multiproc: load too small to mean anything (%d ops)" mp_ops;
  Printf.printf
    "cluster_smoke: multiproc: %d processes, %d verified requests, 1 \
     primary killed, %d failovers, 1 split, catch-up byte-identical\n"
    (mp_nodes + 2) mp_ops mp_failovers;
  { B.Report.b_name = "cluster/multiproc"; b_iters = mp_ops; b_warmup = 0;
    b_seconds = seconds;
    b_metrics =
      [ count "requests" mp_ops;
        count "processes" (mp_nodes + 2);
        count "primaries_killed" 1;
        count "failovers" mp_failovers;
        count "reshards" 1;
        count "catchups" 1;
        B.Report.metric "silent_losses" 0. ] }

(* ---------- main ---------- *)

let () =
  let dir = Filename.temp_file "umrs_cluster_smoke" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let p, q, d = (2, 4, 3) in
  let corpus = Filename.concat dir "ref.corpus" in
  ignore (Umrs_store.Builder.build ~p ~q ~d ~out:corpus ());
  (match Q.build ~corpus () with
  | Ok _ -> ()
  | Error e -> die "index build: %s" (Q.error_to_string e));
  let _, record_list = Corpus.load ~path:corpus in
  let records = Array.of_list record_list in
  let n = Array.length records in
  if n < shards then die "corpus too small to shard %d ways" shards;
  let cdir = Filename.concat dir "cluster" in
  let cl =
    match Cluster.start ~corpus ~shards ~dir:cdir ~replicas ~workers () with
    | Ok t -> t
    | Error e -> die "cluster start: %s" e
  in
  let nodes = shards * (replicas + 1) in
  if Cluster.live_nodes cl <> nodes then die "not every node came up";
  let bootstrap = Cluster.addr cl ~shard:0 ~role:0 in
  (* throughput: single caller, then a small fleet *)
  let levels = [ (1, 600); (8, 250) ] in
  let level_benches =
    List.map
      (fun (threads, per_thread) ->
        let t0 = now_s () in
        let latencies = run_level bootstrap records ~threads ~per_thread in
        let seconds = now_s () -. t0 in
        (* six servers plus the client fleet share one CI box: every
           level gets the looser 50% rps floor *)
        B.Harness.of_samples
          ~name:(Printf.sprintf "cluster/%dt" threads)
          ~seconds ~threshold:0.5 latencies)
      levels
  in
  (* the storm: every primary dies under live, verified load *)
  let storm_threads = 4 in
  let t0 = now_s () in
  let storm_ops, storm_failovers = storm cl bootstrap records ~threads:storm_threads in
  let storm_seconds = now_s () -. t0 in
  if Cluster.live_nodes cl <> nodes - shards then
    die "kills did not stick: %d nodes live" (Cluster.live_nodes cl);
  if storm_failovers = 0 then
    die "no failovers recorded: the storm never felt the kills";
  if storm_ops < storm_threads * 10 then
    die "storm too small to mean anything (%d ops)" storm_ops;
  let crashes = Cluster.worker_crashes cl in
  if crashes <> 0 then die "%d worker domains crashed" crashes;
  Cluster.shutdown cl;
  Cluster.wait cl;
  let storm_bench =
    { B.Report.b_name = "cluster/storm"; b_iters = storm_ops; b_warmup = 0;
      b_seconds = storm_seconds;
      b_metrics =
        [ count "requests" storm_ops;
          count "primaries_killed" shards;
          count "failovers" storm_failovers;
          B.Report.metric "silent_losses" 0.;
          B.Report.metric "worker_crashes" (float_of_int crashes) ] }
  in
  (* the in-process cluster is down; the multi-process one gets the box *)
  let multiproc_bench = multiproc ~corpus ~records in
  let report =
    B.Report.make ~suite:"cluster"
      ~context:
        [ ("instance",
           B.Json.Obj
             [ ("p", B.Json.Num (float_of_int p));
               ("q", B.Json.Num (float_of_int q));
               ("d", B.Json.Num (float_of_int d));
               ("records", B.Json.Num (float_of_int n)) ]);
          ("topology",
           B.Json.Obj
             [ ("shards", B.Json.Num (float_of_int shards));
               ("replicas", B.Json.Num (float_of_int replicas));
               ("nodes", B.Json.Num (float_of_int nodes));
               ("workers", B.Json.Num (float_of_int workers)) ]) ]
      (level_benches @ [ storm_bench; multiproc_bench ])
  in
  List.iter
    (fun (b : B.Report.bench) ->
      match
        (B.Report.find_metric b "rps", B.Report.find_metric b "latency_p50",
         B.Report.find_metric b "latency_p95")
      with
      | Some rps, Some l50, Some l95 ->
        Printf.printf
          "cluster_smoke: %s: %d requests, %.0f req/s, p50 %.1fus p95 %.1fus\n"
          b.B.Report.b_name b.B.Report.b_iters rps.B.Report.m_value
          (1e6 *. l50.B.Report.m_value) (1e6 *. l95.B.Report.m_value)
      | _ -> ())
    level_benches;
  Printf.printf
    "cluster_smoke: storm: %d verified requests, %d primaries killed, \
     %d failovers, 0 silent losses\n"
    storm_ops shards storm_failovers;
  B.Cli.finish ~default_json:"BENCH_cluster.json" report;
  Printf.printf "cluster_smoke: OK (%d records over %d nodes)\n" n nodes
