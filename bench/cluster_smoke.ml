(* Cluster load-test smoke check (dune alias @cluster-smoke).

   Builds a (2,4,3) reference corpus, splits it across a 3-shard
   cluster with one replica per shard (6 nodes, all in-process, each
   with its own poller and worker domains), and drives it through the
   routing client two ways:

   - throughput levels (threads x per-thread budget): every call is a
     routed read - nth by global rank, rank/mem by key, and the
     all-shard scatter Range_prefix [||] - and every reply is verified
     against the locally loaded corpus, so a wrong answer fails the
     run, not just a slow one;

   - a node-loss storm: reader threads hammer the keyspace while every
     primary is killed mid-storm, one per shard group. Replicas must
     absorb the load invisibly: any dropped or wrong answer is a
     SILENT-LOSS failure. The run also fails if no failovers were
     recorded (the kills must actually have been felt) or if any
     worker domain crashed.

   Records multi-node throughput and p50/p95 latency per level to
   BENCH_cluster.json, schema umrs/bench-cluster/v1 (override with
   --json PATH). With --baseline PATH every level present in the
   committed baseline is gated at 50% of its rps - looser than the
   single-server gate because six servers, their pollers and the
   client fleet all share one CI box. *)

module Corpus = Umrs_store.Corpus
module Q = Umrs_store.Query
module Wire = Umrs_server.Wire
module C = Umrs_client
module Cluster = Umrs_cluster.Cluster
module Cl = Umrs_cluster.Client

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("cluster_smoke: " ^ s);
                                exit 1) fmt

let percentile sorted p =
  let n = Array.length sorted in
  sorted.(max 0 (min (n - 1) (int_of_float (ceil (p /. 100. *. float_of_int n)) - 1)))

let flag_value name =
  let rec go i =
    if i + 1 >= Array.length Sys.argv then None
    else if Sys.argv.(i) = name then Some Sys.argv.(i + 1)
    else go (i + 1)
  in
  go 1

let shards = 3
let replicas = 1
let workers = 2

(* ---------- verified request mix ---------- *)

(* Every reply is checked against the local corpus: the bench measures
   a cluster that is RIGHT, not merely fast. *)
let verified_call client records k =
  let n = Array.length records in
  let i = k mod n in
  match k mod 4 with
  | 0 -> (
    match Cl.nth client i with
    | Ok m when Umrs_core.Matrix.equal m records.(i) -> ()
    | Ok _ -> die "nth %d: wrong record" i
    | Error e -> die "nth %d: %s" i (C.error_to_string e))
  | 1 -> (
    match Cl.rank client records.(i) with
    | Ok r when r = i -> ()
    | Ok r -> die "rank of record %d answered %d" i r
    | Error e -> die "rank %d: %s" i (C.error_to_string e))
  | 2 -> (
    match Cl.mem client records.(i) with
    | Ok true -> ()
    | Ok false -> die "mem of stored record %d answered false" i
    | Error e -> die "mem %d: %s" i (C.error_to_string e))
  | _ -> (
    (* the all-shard scatter: every shard answers, replies merge *)
    match Cl.range_prefix client [||] with
    | Ok (0, h) when h = n -> ()
    | Ok (l, h) -> die "empty-prefix range answered (%d, %d), want (0, %d)" l h n
    | Error e -> die "range: %s" (C.error_to_string e))

(* ---------- throughput levels ---------- *)

let run_level bootstrap records ~threads ~per_thread =
  let slots = Array.make threads [||] in
  let spawned =
    List.init threads (fun t ->
        Thread.create
          (fun () ->
            let client =
              match Cl.fetch bootstrap with
              | Ok c -> c
              | Error e -> die "fetch: %s" (C.error_to_string e)
            in
            Fun.protect ~finally:(fun () -> Cl.close client) @@ fun () ->
            let lat = Array.make per_thread 0.0 in
            for k = 0 to per_thread - 1 do
              let t0 = Unix.gettimeofday () in
              verified_call client records ((t * 7919) + k);
              lat.(k) <- Unix.gettimeofday () -. t0
            done;
            slots.(t) <- lat)
          ())
  in
  List.iter Thread.join spawned;
  Array.concat (Array.to_list slots)

(* ---------- node-loss storm ---------- *)

let storm cl bootstrap records ~threads =
  let stop = Atomic.make false in
  let ops = Array.make threads 0 in
  let failovers = Array.make threads 0 in
  let spawned =
    List.init threads (fun t ->
        Thread.create
          (fun () ->
            let client =
              match Cl.fetch bootstrap with
              | Ok c -> c
              | Error e -> die "storm fetch: %s" (C.error_to_string e)
            in
            Fun.protect ~finally:(fun () -> Cl.close client) @@ fun () ->
            let k = ref 0 in
            while not (Atomic.get stop) do
              verified_call client records ((t * 104_729) + !k);
              incr k
            done;
            ops.(t) <- !k;
            failovers.(t) <- (Cl.stats client).Cl.s_failovers)
          ())
  in
  (* let the storm reach steady state, then take out every primary *)
  Unix.sleepf 0.3;
  for k = 0 to Cluster.shard_count cl - 1 do
    Cluster.kill_primary cl k;
    Unix.sleepf 0.15
  done;
  Unix.sleepf 0.5;
  Atomic.set stop true;
  List.iter Thread.join spawned;
  ( Array.fold_left ( + ) 0 ops,
    Array.fold_left ( + ) 0 failovers )

(* ---------- baseline gate ---------- *)

let baseline_rps path ~threads =
  let ic = open_in path in
  let needle = Printf.sprintf "\"threads\": %d," threads in
  let found = ref None in
  (try
     while !found = None do
       let line = input_line ic in
       let has s sub =
         let n = String.length sub in
         let rec go i =
           i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
         in
         go 0
       in
       if has line needle then begin
         let key = "\"rps\": " in
         let rec find i =
           if i + String.length key > String.length line then None
           else if String.sub line i (String.length key) = key then
             Some (i + String.length key)
           else find (i + 1)
         in
         match find 0 with
         | None -> ()
         | Some s ->
           let e = ref s in
           while
             !e < String.length line
             && (match line.[!e] with
                | '0' .. '9' | '.' | '-' -> true
                | _ -> false)
           do incr e done;
           found := Some (float_of_string (String.sub line s (!e - s)))
       end
     done
   with End_of_file -> ());
  close_in ic;
  !found

(* ---------- main ---------- *)

let () =
  let dir = Filename.temp_file "umrs_cluster_smoke" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let p, q, d = (2, 4, 3) in
  let corpus = Filename.concat dir "ref.corpus" in
  ignore (Umrs_store.Builder.build ~p ~q ~d ~out:corpus ());
  (match Q.build ~corpus () with
  | Ok _ -> ()
  | Error e -> die "index build: %s" (Q.error_to_string e));
  let _, record_list = Corpus.load ~path:corpus in
  let records = Array.of_list record_list in
  let n = Array.length records in
  if n < shards then die "corpus too small to shard %d ways" shards;
  let cdir = Filename.concat dir "cluster" in
  let cl =
    match Cluster.start ~corpus ~shards ~dir:cdir ~replicas ~workers () with
    | Ok t -> t
    | Error e -> die "cluster start: %s" e
  in
  let nodes = shards * (replicas + 1) in
  if Cluster.live_nodes cl <> nodes then die "not every node came up";
  let bootstrap = Cluster.addr cl ~shard:0 ~role:0 in
  (* throughput: single caller, then a small fleet *)
  let levels = [ (1, 600); (8, 250) ] in
  let results =
    List.map
      (fun (threads, per_thread) ->
        let t0 = Unix.gettimeofday () in
        let latencies = run_level bootstrap records ~threads ~per_thread in
        let seconds = Unix.gettimeofday () -. t0 in
        Array.sort compare latencies;
        let requests = Array.length latencies in
        (threads, requests, seconds,
         float_of_int requests /. seconds,
         percentile latencies 50., percentile latencies 95.))
      levels
  in
  (* the storm: every primary dies under live, verified load *)
  let storm_threads = 4 in
  let storm_ops, storm_failovers = storm cl bootstrap records ~threads:storm_threads in
  if Cluster.live_nodes cl <> nodes - shards then
    die "kills did not stick: %d nodes live" (Cluster.live_nodes cl);
  if storm_failovers = 0 then
    die "no failovers recorded: the storm never felt the kills";
  if storm_ops < storm_threads * 10 then
    die "storm too small to mean anything (%d ops)" storm_ops;
  let crashes = Cluster.worker_crashes cl in
  if crashes <> 0 then die "%d worker domains crashed" crashes;
  Cluster.shutdown cl;
  Cluster.wait cl;
  let json = Option.value (flag_value "--json") ~default:"BENCH_cluster.json" in
  let oc = open_out json in
  Printf.fprintf oc
    "{\n  \"schema\": \"umrs/bench-cluster/v1\",\n\
    \  \"instance\": {\"p\": %d, \"q\": %d, \"d\": %d, \"records\": %d},\n\
    \  \"topology\": {\"shards\": %d, \"replicas\": %d, \"nodes\": %d, \
     \"workers\": %d},\n\
    \  \"levels\": [\n%s\n  ],\n\
    \  \"chaos\": {\"threads\": %d, \"requests\": %d, \"primaries_killed\": %d, \
     \"failovers\": %d, \"silent_losses\": 0}\n}\n"
    p q d n shards replicas nodes workers
    (String.concat ",\n"
       (List.map
          (fun (threads, requests, seconds, rps, p50, p95) ->
            Printf.sprintf
              "    {\"threads\": %d, \"requests\": %d, \"seconds\": %.6f, \
               \"rps\": %.1f, \
               \"latency_seconds\": {\"p50\": %.9f, \"p95\": %.9f}}"
              threads requests seconds rps p50 p95)
          results))
    storm_threads storm_ops shards storm_failovers;
  close_out oc;
  List.iter
    (fun (threads, requests, _, rps, p50, p95) ->
      Printf.printf
        "cluster_smoke: %d threads: %d requests, %.0f req/s, p50 %.1fus p95 %.1fus\n"
        threads requests rps (1e6 *. p50) (1e6 *. p95))
    results;
  Printf.printf
    "cluster_smoke: storm: %d verified requests, %d primaries killed, \
     %d failovers, 0 silent losses\n"
    storm_ops shards storm_failovers;
  (match flag_value "--baseline" with
  | None -> ()
  | Some path ->
    List.iter
      (fun (threads, _, _, rps, _, _) ->
        match baseline_rps path ~threads with
        | None ->
          Printf.printf "cluster_smoke: no %d-thread level in %s; gate skipped\n"
            threads path
        | Some base ->
          if rps < 0.5 *. base then
            die "%d-thread rps %.1f regressed more than 50%% below baseline %.1f"
              threads rps base
          else
            Printf.printf
              "cluster_smoke: %d-thread baseline gate OK (%.1f vs %.1f rps)\n"
              threads rps base)
      results);
  Printf.printf "cluster_smoke: OK (%d records over %d nodes; %s)\n" n nodes json
