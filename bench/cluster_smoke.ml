(* Cluster load-test smoke check (dune alias @cluster-smoke).

   Builds a (2,4,3) reference corpus, splits it across a 3-shard
   cluster with one replica per shard (6 nodes, all in-process, each
   with its own poller and worker domains), and drives it through the
   routing client two ways:

   - throughput levels (threads x per-thread budget): every call is a
     routed read - nth by global rank, rank/mem by key, and the
     all-shard scatter Range_prefix [||] - and every reply is verified
     against the locally loaded corpus, so a wrong answer fails the
     run, not just a slow one;

   - a node-loss storm: reader threads hammer the keyspace while every
     primary is killed mid-storm, one per shard group. Replicas must
     absorb the load invisibly: any dropped or wrong answer is a
     SILENT-LOSS failure. The run also fails if no failovers were
     recorded (the kills must actually have been felt) or if any
     worker domain crashed.

   Each level is a bench (cluster/<threads>t) in the umrs/bench/v1
   report written to BENCH_cluster.json (--json PATH overrides) and
   appended to the history; with --baseline PATH every level's rps is
   gated at 50% — looser than the single-server gate because six
   servers, their pollers and the client fleet all share one CI box. *)

module B = Umrs_bench
module Corpus = Umrs_store.Corpus
module Q = Umrs_store.Query
module Wire = Umrs_server.Wire
module C = Umrs_client
module Cluster = Umrs_cluster.Cluster
module Cl = Umrs_cluster.Client

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("cluster_smoke: " ^ s);
                                exit 1) fmt

(* one monotonic origin for every latency measurement in the run *)
let now_s =
  let t0 = B.Clock.now_ns () in
  fun () -> B.Clock.since_s t0

let shards = 3
let replicas = 1
let workers = 2

(* ---------- verified request mix ---------- *)

(* Every reply is checked against the local corpus: the bench measures
   a cluster that is RIGHT, not merely fast. *)
let verified_call client records k =
  let n = Array.length records in
  let i = k mod n in
  match k mod 4 with
  | 0 -> (
    match Cl.nth client i with
    | Ok m when Umrs_core.Matrix.equal m records.(i) -> ()
    | Ok _ -> die "nth %d: wrong record" i
    | Error e -> die "nth %d: %s" i (C.error_to_string e))
  | 1 -> (
    match Cl.rank client records.(i) with
    | Ok r when r = i -> ()
    | Ok r -> die "rank of record %d answered %d" i r
    | Error e -> die "rank %d: %s" i (C.error_to_string e))
  | 2 -> (
    match Cl.mem client records.(i) with
    | Ok true -> ()
    | Ok false -> die "mem of stored record %d answered false" i
    | Error e -> die "mem %d: %s" i (C.error_to_string e))
  | _ -> (
    (* the all-shard scatter: every shard answers, replies merge *)
    match Cl.range_prefix client [||] with
    | Ok (0, h) when h = n -> ()
    | Ok (l, h) -> die "empty-prefix range answered (%d, %d), want (0, %d)" l h n
    | Error e -> die "range: %s" (C.error_to_string e))

(* ---------- throughput levels ---------- *)

let run_level bootstrap records ~threads ~per_thread =
  let slots = Array.make threads [||] in
  let spawned =
    List.init threads (fun t ->
        Thread.create
          (fun () ->
            let client =
              match Cl.fetch bootstrap with
              | Ok c -> c
              | Error e -> die "fetch: %s" (C.error_to_string e)
            in
            Fun.protect ~finally:(fun () -> Cl.close client) @@ fun () ->
            let lat = Array.make per_thread 0.0 in
            for k = 0 to per_thread - 1 do
              let t0 = now_s () in
              verified_call client records ((t * 7919) + k);
              lat.(k) <- now_s () -. t0
            done;
            slots.(t) <- lat)
          ())
  in
  List.iter Thread.join spawned;
  Array.concat (Array.to_list slots)

(* ---------- node-loss storm ---------- *)

let storm cl bootstrap records ~threads =
  let stop = Atomic.make false in
  let ops = Array.make threads 0 in
  let failovers = Array.make threads 0 in
  let spawned =
    List.init threads (fun t ->
        Thread.create
          (fun () ->
            let client =
              match Cl.fetch bootstrap with
              | Ok c -> c
              | Error e -> die "storm fetch: %s" (C.error_to_string e)
            in
            Fun.protect ~finally:(fun () -> Cl.close client) @@ fun () ->
            let k = ref 0 in
            while not (Atomic.get stop) do
              verified_call client records ((t * 104_729) + !k);
              incr k
            done;
            ops.(t) <- !k;
            failovers.(t) <- (Cl.stats client).Cl.s_failovers)
          ())
  in
  (* let the storm reach steady state, then take out every primary *)
  Unix.sleepf 0.3;
  for k = 0 to Cluster.shard_count cl - 1 do
    Cluster.kill_primary cl k;
    Unix.sleepf 0.15
  done;
  Unix.sleepf 0.5;
  Atomic.set stop true;
  List.iter Thread.join spawned;
  ( Array.fold_left ( + ) 0 ops,
    Array.fold_left ( + ) 0 failovers )

(* ---------- main ---------- *)

let () =
  let dir = Filename.temp_file "umrs_cluster_smoke" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let p, q, d = (2, 4, 3) in
  let corpus = Filename.concat dir "ref.corpus" in
  ignore (Umrs_store.Builder.build ~p ~q ~d ~out:corpus ());
  (match Q.build ~corpus () with
  | Ok _ -> ()
  | Error e -> die "index build: %s" (Q.error_to_string e));
  let _, record_list = Corpus.load ~path:corpus in
  let records = Array.of_list record_list in
  let n = Array.length records in
  if n < shards then die "corpus too small to shard %d ways" shards;
  let cdir = Filename.concat dir "cluster" in
  let cl =
    match Cluster.start ~corpus ~shards ~dir:cdir ~replicas ~workers () with
    | Ok t -> t
    | Error e -> die "cluster start: %s" e
  in
  let nodes = shards * (replicas + 1) in
  if Cluster.live_nodes cl <> nodes then die "not every node came up";
  let bootstrap = Cluster.addr cl ~shard:0 ~role:0 in
  (* throughput: single caller, then a small fleet *)
  let levels = [ (1, 600); (8, 250) ] in
  let level_benches =
    List.map
      (fun (threads, per_thread) ->
        let t0 = now_s () in
        let latencies = run_level bootstrap records ~threads ~per_thread in
        let seconds = now_s () -. t0 in
        (* six servers plus the client fleet share one CI box: every
           level gets the looser 50% rps floor *)
        B.Harness.of_samples
          ~name:(Printf.sprintf "cluster/%dt" threads)
          ~seconds ~threshold:0.5 latencies)
      levels
  in
  (* the storm: every primary dies under live, verified load *)
  let storm_threads = 4 in
  let t0 = now_s () in
  let storm_ops, storm_failovers = storm cl bootstrap records ~threads:storm_threads in
  let storm_seconds = now_s () -. t0 in
  if Cluster.live_nodes cl <> nodes - shards then
    die "kills did not stick: %d nodes live" (Cluster.live_nodes cl);
  if storm_failovers = 0 then
    die "no failovers recorded: the storm never felt the kills";
  if storm_ops < storm_threads * 10 then
    die "storm too small to mean anything (%d ops)" storm_ops;
  let crashes = Cluster.worker_crashes cl in
  if crashes <> 0 then die "%d worker domains crashed" crashes;
  Cluster.shutdown cl;
  Cluster.wait cl;
  let count name v =
    B.Report.metric ~better:B.Report.Higher name (float_of_int v)
  in
  let storm_bench =
    { B.Report.b_name = "cluster/storm"; b_iters = storm_ops; b_warmup = 0;
      b_seconds = storm_seconds;
      b_metrics =
        [ count "requests" storm_ops;
          count "primaries_killed" shards;
          count "failovers" storm_failovers;
          B.Report.metric "silent_losses" 0.;
          B.Report.metric "worker_crashes" (float_of_int crashes) ] }
  in
  let report =
    B.Report.make ~suite:"cluster"
      ~context:
        [ ("instance",
           B.Json.Obj
             [ ("p", B.Json.Num (float_of_int p));
               ("q", B.Json.Num (float_of_int q));
               ("d", B.Json.Num (float_of_int d));
               ("records", B.Json.Num (float_of_int n)) ]);
          ("topology",
           B.Json.Obj
             [ ("shards", B.Json.Num (float_of_int shards));
               ("replicas", B.Json.Num (float_of_int replicas));
               ("nodes", B.Json.Num (float_of_int nodes));
               ("workers", B.Json.Num (float_of_int workers)) ]) ]
      (level_benches @ [ storm_bench ])
  in
  List.iter
    (fun (b : B.Report.bench) ->
      match
        (B.Report.find_metric b "rps", B.Report.find_metric b "latency_p50",
         B.Report.find_metric b "latency_p95")
      with
      | Some rps, Some l50, Some l95 ->
        Printf.printf
          "cluster_smoke: %s: %d requests, %.0f req/s, p50 %.1fus p95 %.1fus\n"
          b.B.Report.b_name b.B.Report.b_iters rps.B.Report.m_value
          (1e6 *. l50.B.Report.m_value) (1e6 *. l95.B.Report.m_value)
      | _ -> ())
    level_benches;
  Printf.printf
    "cluster_smoke: storm: %d verified requests, %d primaries killed, \
     %d failovers, 0 silent losses\n"
    storm_ops shards storm_failovers;
  B.Cli.finish ~default_json:"BENCH_cluster.json" report;
  Printf.printf "cluster_smoke: OK (%d records over %d nodes)\n" n nodes
