(* Chaos smoke check (dune alias @chaos-smoke).

   Two halves, both seeded and reproducible:

   1. Crash matrix: Umrs_chaos.Harness.crash_matrix sweeps a simulated
      power loss across every fault point of a checkpointed (2, 4, 3)
      corpus build, single-domain and 3-domain, asserting the store's
      atomic-publication and byte-identical-resume invariants at each
      point. Any failure is fatal and printed with the (seed, point)
      pair that reproduces it.

   2. Storm: Umrs_chaos.Storm.run_level drives a live server through a
      seeded fault schedule at two intensities with resilient clients.
      Fatal conditions: a hang (the driver finishing is the check), a
      level error (malformed reply accounting lives inside the level),
      a post-storm probe failure, or zero worker crashes across both
      levels (the supervisor path must actually have been exercised).

   Results go to BENCH_chaos.json (override with --json PATH), schema
   umrs/bench-chaos/v1. Override the seed with UMRS_TEST_SEED. *)

module Q = Umrs_store.Query
module Wire = Umrs_server.Wire
module Harness = Umrs_chaos.Harness
module Storm = Umrs_chaos.Storm

let die fmt =
  Printf.ksprintf (fun s -> prerr_endline ("chaos_smoke: " ^ s); exit 1) fmt

let flag_value name =
  let rec go i =
    if i + 1 >= Array.length Sys.argv then None
    else if Sys.argv.(i) = name then Some Sys.argv.(i + 1)
    else go (i + 1)
  in
  go 1

let () =
  let seed =
    match Sys.getenv_opt "UMRS_TEST_SEED" with
    | Some s -> int_of_string s
    | None -> 0x5EED42
  in
  let dir = Filename.temp_file "umrs_chaos_smoke" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let p, q, d = (2, 4, 3) in

  (* 1: crash matrix, 1 domain then 3 *)
  let matrices =
    List.map
      (fun domains ->
        let scratch =
          Filename.concat dir (Printf.sprintf "matrix_d%d" domains)
        in
        let s =
          Harness.crash_matrix ~domains ~checkpoint_every:1024 ~seed ~p ~q ~d
            ~scratch ()
        in
        List.iter
          (fun f ->
            Printf.eprintf
              "chaos_smoke: crash matrix (%d domains) point %d FAILED: %s\n\
               chaos_smoke: reproduce with UMRS_TEST_SEED=%d (point seed %d)\n"
              domains f.Harness.f_at f.Harness.f_detail seed f.Harness.f_seed)
          s.Harness.s_failures;
        Printf.printf
          "chaos_smoke: crash matrix (%d,%d,%d) x %d domains: %d points, %d \
           crashes, %d failures\n%!"
          p q d domains s.Harness.s_points s.Harness.s_crashes
          (List.length s.Harness.s_failures);
        s)
      [ 1; 3 ]
  in
  if List.exists (fun s -> s.Harness.s_failures <> []) matrices then
    die "crash matrix failed (seed %d)" seed;

  (* 2: storm levels against a live server *)
  let corpus = Filename.concat dir "storm.corpus" in
  ignore (Umrs_store.Builder.build ~p ~q ~d ~out:corpus ());
  (match Q.build ~corpus () with
  | Ok _ -> ()
  | Error e -> die "index build: %s" (Q.error_to_string e));
  let levels =
    List.map
      (fun intensity ->
        let sock =
          Filename.concat dir (Printf.sprintf "storm_%.0f.sock"
                                 (1000. *. intensity))
        in
        match
          Storm.run_level ~seed ~requests:300 ~intensity ~corpus
            ~addr:(Wire.Unix_sock sock) ()
        with
        | Error e -> die "storm level %.2f: %s (seed %d)" intensity e seed
        | Ok l ->
          if Sys.file_exists sock then
            die "storm level %.2f: socket survived the drain" intensity;
          if l.Storm.l_success + l.Storm.l_degraded + l.Storm.l_failed
             <> l.Storm.l_requests
          then
            die "storm level %.2f: %d requests but %d+%d+%d accounted - a \
                 request was silently lost"
              intensity l.Storm.l_requests l.Storm.l_success
              l.Storm.l_degraded l.Storm.l_failed;
          Printf.printf
            "chaos_smoke: storm %.2f: %d ok / %d degraded / %d failed, %d \
             worker crashes, recovery p50 %.1fms p95 %.1fms (%.2fs)\n%!"
            intensity l.Storm.l_success l.Storm.l_degraded l.Storm.l_failed
            l.Storm.l_worker_crashes
            (1e3 *. l.Storm.l_recovery_p50)
            (1e3 *. l.Storm.l_recovery_p95)
            l.Storm.l_seconds;
          l)
      [ 0.02; 0.10 ]
  in
  let crashes =
    List.fold_left (fun acc l -> acc + l.Storm.l_worker_crashes) 0 levels
  in
  if crashes = 0 then
    die "no worker crash was injected across any level (seed %d) - the \
         supervisor went unexercised"
      seed;

  let json = Option.value (flag_value "--json") ~default:"BENCH_chaos.json" in
  let oc = open_out json in
  Printf.fprintf oc
    "{\n  \"schema\": \"umrs/bench-chaos/v1\",\n  \"seed\": %d,\n\
    \  \"crash_matrix\": [\n%s\n  ],\n  \"levels\": [\n%s\n  ]\n}\n"
    seed
    (String.concat ",\n"
       (List.map
          (fun s ->
            Printf.sprintf
              "    {\"instance\": {\"p\": %d, \"q\": %d, \"d\": %d}, \
               \"domains\": %d, \"points\": %d, \"crashes\": %d, \
               \"failures\": %d}"
              s.Harness.s_p s.Harness.s_q s.Harness.s_d s.Harness.s_domains
              s.Harness.s_points s.Harness.s_crashes
              (List.length s.Harness.s_failures))
          matrices))
    (String.concat ",\n"
       (List.map
          (fun l ->
            Printf.sprintf
              "    {\"intensity\": %.3f, \"requests\": %d, \"success\": %d, \
               \"degraded\": %d, \"failed\": %d, \"worker_crashes\": %d, \
               \"breaker_opens\": %d, \"breaker_fastfails\": %d, \
               \"recovery_latency_seconds\": {\"p50\": %.9f, \"p95\": %.9f}, \
               \"seconds\": %.6f}"
              l.Storm.l_intensity l.Storm.l_requests l.Storm.l_success
              l.Storm.l_degraded l.Storm.l_failed l.Storm.l_worker_crashes
              l.Storm.l_breaker_opens l.Storm.l_breaker_fastfails
              l.Storm.l_recovery_p50 l.Storm.l_recovery_p95 l.Storm.l_seconds)
          levels));
  close_out oc;
  Printf.printf "chaos_smoke: OK (seed %d; %s)\n" seed json
