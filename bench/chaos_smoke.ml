(* Chaos smoke check (dune alias @chaos-smoke).

   Two halves, both seeded and reproducible:

   1. Crash matrix: Umrs_chaos.Harness.crash_matrix sweeps a simulated
      power loss across every fault point of a checkpointed (2, 4, 3)
      corpus build, single-domain and 3-domain, asserting the store's
      atomic-publication and byte-identical-resume invariants at each
      point. Any failure is fatal and printed with the (seed, point)
      pair that reproduces it.

   2. Storm: Umrs_chaos.Storm.run_level drives a live server through a
      seeded fault schedule at two intensities with resilient clients.
      Fatal conditions: a hang (the driver finishing is the check), a
      level error (malformed reply accounting lives inside the level),
      a post-storm probe failure, or zero worker crashes across both
      levels (the supervisor path must actually have been exercised).

   Results land in BENCH_chaos.json as a umrs/bench/v1 report (--json
   PATH overrides) and append to the history; with --baseline PATH the
   storm levels' recovery_p95 is gated against the committed baseline —
   the metric the resilience layer exists to bound. Override the seed
   with UMRS_TEST_SEED. *)

module B = Umrs_bench
module Q = Umrs_store.Query
module Wire = Umrs_server.Wire
module Harness = Umrs_chaos.Harness
module Storm = Umrs_chaos.Storm

let die fmt =
  Printf.ksprintf (fun s -> prerr_endline ("chaos_smoke: " ^ s); exit 1) fmt

let count_metric name v =
  B.Report.metric ~better:B.Report.Higher name (float_of_int v)

let () =
  let seed =
    match Sys.getenv_opt "UMRS_TEST_SEED" with
    | Some s -> int_of_string s
    | None -> 0x5EED42
  in
  let dir = Filename.temp_file "umrs_chaos_smoke" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let p, q, d = (2, 4, 3) in

  (* 1: crash matrix, 1 domain then 3 *)
  let matrices =
    List.map
      (fun domains ->
        let scratch =
          Filename.concat dir (Printf.sprintf "matrix_d%d" domains)
        in
        let s, secs =
          B.Clock.time @@ fun () ->
          Harness.crash_matrix ~domains ~checkpoint_every:1024 ~seed ~p ~q ~d
            ~scratch ()
        in
        List.iter
          (fun f ->
            Printf.eprintf
              "chaos_smoke: crash matrix (%d domains) point %d FAILED: %s\n\
               chaos_smoke: reproduce with UMRS_TEST_SEED=%d (point seed %d)\n"
              domains f.Harness.f_at f.Harness.f_detail seed f.Harness.f_seed)
          s.Harness.s_failures;
        Printf.printf
          "chaos_smoke: crash matrix (%d,%d,%d) x %d domains: %d points, %d \
           crashes, %d failures\n%!"
          p q d domains s.Harness.s_points s.Harness.s_crashes
          (List.length s.Harness.s_failures);
        (s, secs))
      [ 1; 3 ]
  in
  if List.exists (fun (s, _) -> s.Harness.s_failures <> []) matrices then
    die "crash matrix failed (seed %d)" seed;

  (* 2: storm levels against a live server *)
  let corpus = Filename.concat dir "storm.corpus" in
  ignore (Umrs_store.Builder.build ~p ~q ~d ~out:corpus ());
  (match Q.build ~corpus () with
  | Ok _ -> ()
  | Error e -> die "index build: %s" (Q.error_to_string e));
  let levels =
    List.map
      (fun intensity ->
        let sock =
          Filename.concat dir (Printf.sprintf "storm_%.0f.sock"
                                 (1000. *. intensity))
        in
        match
          Storm.run_level ~seed ~requests:300 ~intensity ~corpus
            ~addr:(Wire.Unix_sock sock) ()
        with
        | Error e -> die "storm level %.2f: %s (seed %d)" intensity e seed
        | Ok l ->
          if Sys.file_exists sock then
            die "storm level %.2f: socket survived the drain" intensity;
          if l.Storm.l_success + l.Storm.l_degraded + l.Storm.l_failed
             <> l.Storm.l_requests
          then
            die "storm level %.2f: %d requests but %d+%d+%d accounted - a \
                 request was silently lost"
              intensity l.Storm.l_requests l.Storm.l_success
              l.Storm.l_degraded l.Storm.l_failed;
          Printf.printf
            "chaos_smoke: storm %.2f: %d ok / %d degraded / %d failed, %d \
             worker crashes, recovery p50 %.1fms p95 %.1fms (%.2fs)\n%!"
            intensity l.Storm.l_success l.Storm.l_degraded l.Storm.l_failed
            l.Storm.l_worker_crashes
            (1e3 *. l.Storm.l_recovery_p50)
            (1e3 *. l.Storm.l_recovery_p95)
            l.Storm.l_seconds;
          l)
      [ 0.02; 0.10 ]
  in
  let crashes =
    List.fold_left (fun acc l -> acc + l.Storm.l_worker_crashes) 0 levels
  in
  if crashes = 0 then
    die "no worker crash was injected across any level (seed %d) - the \
         supervisor went unexercised"
      seed;

  let matrix_benches =
    List.map
      (fun (s, secs) ->
        { B.Report.b_name =
            Printf.sprintf "chaos/matrix_d%d" s.Harness.s_domains;
          b_iters = s.Harness.s_points; b_warmup = 0; b_seconds = secs;
          b_metrics =
            [ count_metric "points" s.Harness.s_points;
              count_metric "crashes" s.Harness.s_crashes;
              B.Report.metric "failures"
                (float_of_int (List.length s.Harness.s_failures)) ] })
      matrices
  in
  let storm_benches =
    List.map
      (fun l ->
        { B.Report.b_name =
            Printf.sprintf "chaos/storm_%.2f" l.Storm.l_intensity;
          b_iters = l.Storm.l_requests; b_warmup = 0;
          b_seconds = l.Storm.l_seconds;
          b_metrics =
            [ B.Report.metric ~unit_:"s" "recovery_p50"
                l.Storm.l_recovery_p50;
              (* the metric the resilience layer exists to bound: how
                 long a faulted request takes to come back healthy.
                 Identical runs swing ~3x on one box, so the gate only
                 fires past 5x baseline — a real resilience regression
                 (broken breaker, runaway backoff) lands at 100x *)
              B.Report.metric ~unit_:"s" ~gated:true ~threshold:4.0
                "recovery_p95" l.Storm.l_recovery_p95;
              count_metric "success" l.Storm.l_success;
              count_metric "degraded" l.Storm.l_degraded;
              count_metric "failed" l.Storm.l_failed;
              count_metric "worker_crashes" l.Storm.l_worker_crashes;
              count_metric "breaker_opens" l.Storm.l_breaker_opens;
              count_metric "breaker_fastfails" l.Storm.l_breaker_fastfails ]
        })
      levels
  in
  let report =
    B.Report.make ~suite:"chaos"
      ~context:
        [ ("seed", B.Json.Num (float_of_int seed));
          ("instance",
           B.Json.Obj
             [ ("p", B.Json.Num (float_of_int p));
               ("q", B.Json.Num (float_of_int q));
               ("d", B.Json.Num (float_of_int d)) ]) ]
      (matrix_benches @ storm_benches)
  in
  B.Cli.finish ~default_json:"BENCH_chaos.json" report;
  Printf.printf "chaos_smoke: OK (seed %d)\n" seed
