(* Corruption-robustness smoke check (dune alias @fuzz-smoke).

   Seeded byte-flip and truncation sweep over a real corpus and its
   index. The contract under fuzz (same as test/test_fuzz.ml, which
   runs more shapes):

   - [Corpus.verify] either reports problems or raises
     [Invalid_argument]/[Sys_error] - never any other exception - and
     detects every mutation of the record region and every truncation;
   - [Query.open_] NEVER raises: every mutation or truncation of the
     index file (whose checksum covers its own header) comes back as
     [Error _].

   Detection is a hard pass/fail; the Umrs_bench report carries the
   sweep throughput (trials/sec, ungated — corruption checking speed is
   trajectory data, not a gate) into BENCH_fuzz.json and the history. *)

module B = Umrs_bench
module Q = Umrs_store.Query

let die fmt =
  Printf.ksprintf (fun s -> prerr_endline ("fuzz_smoke: " ^ s); exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  Bytes.of_string s

let write_file path b =
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let () =
  let dir = Filename.temp_file "umrs_fuzz_smoke" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let p, q, d = (2, 4, 3) in
  let corpus = Filename.concat dir "c.umrs" in
  ignore (Umrs_store.Builder.build ~p ~q ~d ~out:corpus ());
  (match Q.build ~corpus () with
  | Ok _ -> ()
  | Error e -> die "index build: %s" (Q.error_to_string e));
  let index = Q.index_path corpus in
  let corpus_bytes = read_file corpus and index_bytes = read_file index in
  let st = Random.State.make [| 0xF52; p; q; d |] in
  let mutant = Filename.concat dir "mutant" in
  let corpus_detected = ref 0 and index_detected = ref 0 in
  let trials = 300 in

  (* byte flips in the corpus: verify must stay inside its error
     vocabulary, and must detect any record-region damage (header
     damage may hide in reserved, un-checksummed bytes). *)
  let (), corpus_secs =
    B.Clock.time @@ fun () ->
    for k = 1 to trials do
      let b = Bytes.copy corpus_bytes in
      let off = Random.State.int st (Bytes.length b) in
      let old = Bytes.get_uint8 b off in
      let fresh = (old + 1 + Random.State.int st 255) land 0xFF in
      Bytes.set_uint8 b off fresh;
      write_file mutant b;
      match Umrs_store.Corpus.verify ~path:mutant with
      | v ->
        if v.Umrs_store.Corpus.v_problems <> [] then incr corpus_detected
        else if off >= Umrs_store.Corpus.header_bytes then
          die "record-byte flip at %d undetected (trial %d)" off k
      | exception Invalid_argument _ -> incr corpus_detected
      | exception Sys_error _ -> incr corpus_detected
      | exception e ->
        die "corpus flip at %d: unexpected %s" off (Printexc.to_string e)
    done
  in

  (* byte flips in the index: open_ must return Error, never raise. *)
  let (), index_secs =
    B.Clock.time @@ fun () ->
    for k = 1 to trials do
      let b = Bytes.copy index_bytes in
      let off = Random.State.int st (Bytes.length b) in
      let old = Bytes.get_uint8 b off in
      Bytes.set_uint8 b off ((old + 1 + Random.State.int st 255) land 0xFF);
      write_file mutant b;
      match Q.open_ ~corpus ~index:mutant () with
      | Error _ -> incr index_detected
      | Ok _ -> die "index flip at %d accepted (trial %d)" off k
      | exception e ->
        die "index flip at %d: raised %s" off (Printexc.to_string e)
    done
  in

  (* truncations of both files at every prefix length *)
  let truncations = Bytes.length corpus_bytes + Bytes.length index_bytes in
  let (), trunc_secs =
    B.Clock.time @@ fun () ->
    for len = 0 to Bytes.length corpus_bytes - 1 do
      write_file mutant (Bytes.sub corpus_bytes 0 len);
      match Umrs_store.Corpus.verify ~path:mutant with
      | v ->
        if v.Umrs_store.Corpus.v_problems = [] then
          die "corpus truncation to %d undetected" len
      | exception Invalid_argument _ -> ()
      | exception Sys_error _ -> ()
      | exception e ->
        die "corpus truncation to %d: unexpected %s" len (Printexc.to_string e)
    done;
    for len = 0 to Bytes.length index_bytes - 1 do
      write_file mutant (Bytes.sub index_bytes 0 len);
      match Q.open_ ~corpus ~index:mutant () with
      | Error _ -> ()
      | Ok _ -> die "index truncation to %d accepted" len
      | exception e ->
        die "index truncation to %d: raised %s" len (Printexc.to_string e)
    done
  in

  let sweep_bench name ~trials ~detected ~seconds =
    { B.Report.b_name = name; b_iters = trials; b_warmup = 0;
      b_seconds = seconds;
      b_metrics =
        [ B.Report.metric ~unit_:"1/s" ~better:B.Report.Higher
            "trials_per_sec" (float_of_int trials /. seconds);
          B.Report.metric ~better:B.Report.Higher "detected"
            (float_of_int detected) ] }
  in
  let report =
    B.Report.make ~suite:"fuzz"
      ~context:
        [ ("instance",
           B.Json.Obj
             [ ("p", B.Json.Num (float_of_int p));
               ("q", B.Json.Num (float_of_int q));
               ("d", B.Json.Num (float_of_int d)) ]) ]
      [ sweep_bench "fuzz/corpus_flips" ~trials ~detected:!corpus_detected
          ~seconds:corpus_secs;
        sweep_bench "fuzz/index_flips" ~trials ~detected:!index_detected
          ~seconds:index_secs;
        sweep_bench "fuzz/truncations" ~trials:truncations
          ~detected:truncations ~seconds:trunc_secs ]
  in
  Printf.printf
    "fuzz_smoke: %d/%d corpus flips detected, %d/%d index flips detected, \
     %d truncations rejected\n"
    !corpus_detected trials !index_detected trials truncations;
  B.Cli.finish ~default_json:"BENCH_fuzz.json" report;
  Printf.printf "fuzz_smoke: OK\n"
