type t = { mutable bits : Bytes.t; mutable len : int }

let create () = { bits = Bytes.make 16 '\000'; len = 0 }

let length b = b.len

let ensure b extra =
  let need = (b.len + extra + 7) / 8 in
  if need > Bytes.length b.bits then begin
    let cap = max need (2 * Bytes.length b.bits) in
    let fresh = Bytes.make cap '\000' in
    Bytes.blit b.bits 0 fresh 0 (Bytes.length b.bits);
    b.bits <- fresh
  end

let add_bit b bit =
  ensure b 1;
  if bit then begin
    let byte = b.len / 8 and off = b.len mod 8 in
    Bytes.set b.bits byte
      (Char.chr (Char.code (Bytes.get b.bits byte) lor (1 lsl off)))
  end;
  b.len <- b.len + 1

let add_bits b x ~width =
  if width < 0 || width > 62 then invalid_arg "Bitbuf.add_bits: width";
  if x < 0 || (width < 62 && x lsr width <> 0) then
    invalid_arg "Bitbuf.add_bits: value does not fit";
  for i = width - 1 downto 0 do
    add_bit b ((x lsr i) land 1 = 1)
  done

let get b i =
  if i < 0 || i >= b.len then invalid_arg "Bitbuf: index out of range";
  Char.code (Bytes.get b.bits (i / 8)) land (1 lsl (i mod 8)) <> 0

let append dst src =
  for i = 0 to src.len - 1 do
    add_bit dst (get src i)
  done

let to_bool_array b = Array.init b.len (get b)

let to_bytes b = Bytes.sub b.bits 0 ((b.len + 7) / 8)

let of_bytes bytes ~len =
  if len < 0 || len > 8 * Bytes.length bytes then
    invalid_arg "Bitbuf.of_bytes: len does not fit the bytes";
  let b = { bits = Bytes.sub bytes 0 ((len + 7) / 8); len } in
  (* Re-zero the padding bits of the last byte so equal bit sequences
     have equal byte images regardless of the caller's padding. *)
  if len mod 8 <> 0 && Bytes.length b.bits > 0 then begin
    let last = Bytes.length b.bits - 1 in
    let keep = (1 lsl (len mod 8)) - 1 in
    Bytes.set b.bits last
      (Char.chr (Char.code (Bytes.get b.bits last) land keep))
  end;
  b

let of_bool_array a =
  let b = create () in
  Array.iter (add_bit b) a;
  b

let concat l =
  let b = create () in
  List.iter (append b) l;
  b

type reader = { buf : t; mutable pos : int }

let reader buf = { buf; pos = 0 }

let read_bit r =
  if r.pos >= r.buf.len then invalid_arg "Bitbuf.read_bit: past end";
  let bit = get r.buf r.pos in
  r.pos <- r.pos + 1;
  bit

let reader_pos r = r.pos

let seek r pos =
  if pos < 0 || pos > r.buf.len then invalid_arg "Bitbuf.seek: out of range";
  r.pos <- pos

let read_bits r ~width =
  if width < 0 || width > 62 then invalid_arg "Bitbuf.read_bits: width";
  (* Check up front so a failed read never half-consumes the reader. *)
  if r.buf.len - r.pos < width then invalid_arg "Bitbuf.read_bits: past end";
  let x = ref 0 in
  for _ = 1 to width do
    x := (!x lsl 1) lor if read_bit r then 1 else 0
  done;
  !x

let remaining r = r.buf.len - r.pos

let pp fmt b =
  for i = 0 to b.len - 1 do
    Format.pp_print_char fmt (if get b i then '1' else '0')
  done
