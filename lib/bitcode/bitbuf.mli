(** Append-only bit buffers and sequential bit readers.

    The paper measures routing memory in bits (its [MEM] is Kolmogorov
    complexity relative to a fixed coding). Every scheme in this suite
    encodes its per-router state into a [Bitbuf.t]; [length] is the
    exact bit count charged to that router. Decoders use [reader]. *)

type t

val create : unit -> t

val length : t -> int
(** Number of bits written so far. *)

val add_bit : t -> bool -> unit

val add_bits : t -> int -> width:int -> unit
(** [add_bits b x ~width] appends the [width] low bits of [x], most
    significant first. Requires [0 <= width <= 62] and [x] to fit. *)

val append : t -> t -> unit
(** [append dst src] appends all bits of [src] to [dst]. *)

val to_bool_array : t -> bool array

val of_bool_array : bool array -> t

val to_bytes : t -> Bytes.t
(** The packed byte image: [ceil(length/8)] bytes where bit [i] of the
    buffer is bit [i mod 8] (LSB first) of byte [i / 8]; padding bits
    of the last byte are zero. The on-disk representation used by the
    corpus store ({!Umrs_store.Corpus}). *)

val of_bytes : Bytes.t -> len:int -> t
(** Inverse of {!to_bytes} given the bit length: reads [len] bits from
    the packed image (padding bits are ignored). Raises
    [Invalid_argument] if [len] exceeds [8 * Bytes.length]. *)

val concat : t list -> t

(** {1 Reading} *)

type reader

val reader : t -> reader

val read_bit : reader -> bool
(** Raises [Invalid_argument] past the end. *)

val reader_pos : reader -> int
(** Current position, in bits from the start of the buffer. *)

val seek : reader -> int -> unit
(** Reposition the reader to an absolute bit offset in [0, length].
    Together with {!reader_pos} this makes a reader seekable, so one
    reader over a block of records can decode them in any order (the
    corpus query engine's random-access path). Raises
    [Invalid_argument] outside the range. *)

val read_bits : reader -> width:int -> int
(** Raises [Invalid_argument] if fewer than [width] bits remain; the
    reader position is unchanged on failure. *)

val remaining : reader -> int

val pp : Format.formatter -> t -> unit
(** Bits as a ['0'/'1'] string (for tests and debugging). *)
