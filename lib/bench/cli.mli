(** Shared command-line driver for the smokes under [bench/].

    Every smoke ends the same way: write the report, append the
    history, and — when [--baseline PATH] is given — compare against
    the committed baseline, print the delta table, mirror it to a
    markdown file for the CI job summary, and exit non-zero on any
    regression. This module is that ending, written once. *)

val flag : string -> string option
(** [flag "--json"] returns the argument following the flag on the
    command line, if present. *)

val finish : default_json:string -> Report.t -> unit
(** The common epilogue:

    - save the report to [--json PATH] (default [default_json]);
    - append every bench to the history file ({!History.resolved_path});
    - with [--baseline PATH]: load it (a malformed baseline is fatal —
      a gate that cannot read its baseline must not pass silently),
      run {!Gate.compare_reports}, print {!Gate.render} to stdout,
      write {!Gate.render_markdown} to [BENCH_GATE_<suite>.md] next to
      the report, and [exit 1] when {!Gate.ok} is false;
    - without [--baseline]: print that the gate was skipped.

    Gate thresholds come from the metrics themselves (their [gated] and
    [threshold] fields); [UMRS_GATE_THRESHOLD] / [UMRS_GATE_FLOOR_MS]
    override the config defaults for local experiments. *)
