let flag name =
  let rec go i =
    if i + 1 >= Array.length Sys.argv then None
    else if Sys.argv.(i) = name then Some Sys.argv.(i + 1)
    else go (i + 1)
  in
  go 1

let env_float name default =
  match Option.bind (Sys.getenv_opt name) float_of_string_opt with
  | Some v -> v
  | None -> default

let config () =
  { Gate.threshold =
      env_float "UMRS_GATE_THRESHOLD" Gate.default_config.Gate.threshold;
    floor_seconds =
      env_float "UMRS_GATE_FLOOR_MS"
        (1e3 *. Gate.default_config.Gate.floor_seconds)
      /. 1e3 }

let finish ~default_json (report : Report.t) =
  let suite = report.Report.r_suite in
  let json = Option.value (flag "--json") ~default:default_json in
  Report.save ~path:json report;
  History.append report;
  Printf.printf "%s: report %s (+%s)\n%!" suite json
    (History.resolved_path ());
  match flag "--baseline" with
  | None -> Printf.printf "%s: no --baseline given; gate skipped\n%!" suite
  | Some path -> (
    match Report.load ~path with
    | Error e ->
      Printf.eprintf "%s: cannot read baseline %s: %s\n%!" suite path e;
      exit 1
    | Ok baseline ->
      let r = Gate.compare_reports ~config:(config ()) ~baseline report in
      print_string (Gate.render r);
      let md = Printf.sprintf "BENCH_GATE_%s.md" suite in
      let oc = open_out md in
      Printf.fprintf oc "### `%s` baseline gate (vs %s)\n\n%s" suite path
        (Gate.render_markdown r);
      close_out oc;
      if not (Gate.ok r) then begin
        Printf.eprintf
          "%s: baseline gate FAILED against %s (see table above)\n%!" suite
          path;
        exit 1
      end)
