/* Monotonic clock for benchmark timing.

   Unix.gettimeofday is wall time: NTP slews and steps flow straight
   into measured latencies. CLOCK_MONOTONIC is immune, and a single
   int64 of nanoseconds keeps the hot timing path allocation-cheap
   (one boxed int64 per reading). */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value umrs_bench_monotonic_ns(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec);
}
