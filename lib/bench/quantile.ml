type t = float array (* sorted ascending *)

let of_array a =
  if Array.length a = 0 then invalid_arg "Quantile.of_array: empty sample";
  let s = Array.copy a in
  Array.sort Float.compare s;
  s

let of_list l = of_array (Array.of_list l)
let count = Array.length

let value t p =
  if not (p >= 0. && p <= 100.) then
    invalid_arg "Quantile.value: percentile outside [0, 100]";
  let n = Array.length t in
  let rank = int_of_float (Float.ceil (p /. 100. *. float_of_int n)) in
  t.(Stdlib.max 1 (Stdlib.min n rank) - 1)

let p50 t = value t 50.
let p95 t = value t 95.
let p99 t = value t 99.
let min t = t.(0)
let max t = t.(Array.length t - 1)
let total t = Array.fold_left ( +. ) 0. t
let mean t = total t /. float_of_int (Array.length t)
