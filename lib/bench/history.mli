(** Append-only perf history: one JSONL line per (commit, bench) so the
    cross-PR trajectory of every metric is queryable with a one-liner
    instead of being lost in overwritten snapshots.

    Line shape:

    {v {"ts": 1754650000, "commit": "<sha>", "suite": "serve",
        "bench": "serve/1000x8", "seconds": 0.674,
        "metrics": {"rps": 47460.3, "latency_p50": 0.1105, ...}} v}

    The file is opened [O_APPEND] and each line is a single [write], so
    concurrent smokes interleave whole lines. A torn final line (power
    loss, ctrl-C) must never poison the file: [load] skips unparsable
    lines and reports how many it skipped. *)

type entry = {
  h_ts : float;
  h_commit : string;
  h_suite : string;
  h_bench : string;
  h_seconds : float;
  h_metrics : (string * float) list;
}

val default_path : string
(** ["BENCH_HISTORY.jsonl"], overridden by the [UMRS_BENCH_HISTORY]
    environment variable. *)

val resolved_path : ?path:string -> unit -> string

val append : ?path:string -> Report.t -> unit
(** Append one line per bench in the report. Best-effort: an unwritable
    path is reported on stderr, never an exception — history must not
    fail a bench run. *)

val load : ?path:string -> unit -> entry list * int
(** All parsable entries in file order, plus the count of skipped
    (corrupt or truncated) lines. A missing file is [([], 0)]. *)
