(** Baseline comparator: the CI regression gate.

    Compares a freshly measured report against the committed baseline
    and produces one row per gated metric with a verdict:

    - [Pass] / [Improved] — within threshold, or better than baseline;
    - [Regressed] — worse than baseline by more than the threshold
      (the metric's own [m_threshold] if set, else the config default
      of 25%) — this is what fails CI;
    - [Floor_skipped] — a seconds-valued metric whose baseline and
      current values both sit under the absolute floor (default 5 ms):
      timings that small on a shared CI box are scheduler noise, and
      gating them would only manufacture flakes;
    - [Missing_baseline] — the current run has a gated bench or metric
      the baseline lacks: reported, never fatal, so a PR can add a
      bench and commit its baseline in the same change.

    A bench present in the baseline but absent from the run IS fatal:
    deleting a bench must force a baseline refresh, otherwise a gate
    can be silently disarmed. *)

type verdict = Pass | Improved | Regressed | Floor_skipped | Missing_baseline

type row = {
  g_bench : string;
  g_metric : string;
  g_unit : string;
  g_base : float option;  (** [None] iff [Missing_baseline] *)
  g_current : float;
  g_delta_pct : float;  (** signed; positive means the metric moved up *)
  g_threshold : float;  (** the threshold this row was judged against *)
  g_verdict : verdict;
}

type config = {
  threshold : float;  (** default regression fraction; 0.25 = 25% *)
  floor_seconds : float;
      (** absolute floor under which seconds-valued metrics are not
          gated; kills noise-flakes on tiny timings *)
}

val default_config : config
(** [{threshold = 0.25; floor_seconds = 0.005}] *)

type result = {
  rows : row list;
  vanished : string list;
      (** benches the baseline has but the run does not — fatal *)
  config : config;
}

val compare_reports :
  ?config:config -> baseline:Report.t -> Report.t -> result
(** [compare_reports ~baseline current]. *)

val ok : result -> bool
(** No [Regressed] row and no vanished bench. *)

val render : result -> string
(** Human-readable aligned delta table, one row per gated metric, with
    a verdict column and a one-line summary — what a red CI log shows. *)

val render_markdown : result -> string
(** The same table as GitHub-flavored markdown for the job summary. *)
