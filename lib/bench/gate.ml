type verdict = Pass | Improved | Regressed | Floor_skipped | Missing_baseline

type row = {
  g_bench : string;
  g_metric : string;
  g_unit : string;
  g_base : float option;
  g_current : float;
  g_delta_pct : float;
  g_threshold : float;
  g_verdict : verdict;
}

type config = { threshold : float; floor_seconds : float }

let default_config = { threshold = 0.25; floor_seconds = 0.005 }

type result = { rows : row list; vanished : string list; config : config }

let judge cfg (m : Report.metric) ~base =
  let thr = Option.value m.Report.m_threshold ~default:cfg.threshold in
  let cur = m.Report.m_value in
  let delta_pct =
    if base = 0.0 then 0.0 else (cur -. base) /. base *. 100.0
  in
  let floored =
    m.Report.m_unit = "s"
    && Float.max base cur < cfg.floor_seconds
  in
  let verdict =
    if floored then Floor_skipped
    else begin
      match m.Report.m_better with
      | Report.Higher ->
        if cur < (1.0 -. thr) *. base then Regressed
        else if cur > base then Improved
        else Pass
      | Report.Lower ->
        if cur > (1.0 +. thr) *. base then Regressed
        else if cur < base then Improved
        else Pass
    end
  in
  (delta_pct, thr, verdict)

let compare_reports ?(config = default_config) ~(baseline : Report.t)
    (current : Report.t) =
  let rows =
    List.concat_map
      (fun (b : Report.bench) ->
        let base_bench = Report.find_bench baseline b.Report.b_name in
        List.filter_map
          (fun (m : Report.metric) ->
            if not m.Report.m_gated then None
            else begin
              let mk ?base ~delta ~thr verdict =
                Some
                  { g_bench = b.Report.b_name;
                    g_metric = m.Report.m_name;
                    g_unit = m.Report.m_unit;
                    g_base = base;
                    g_current = m.Report.m_value;
                    g_delta_pct = delta;
                    g_threshold = thr;
                    g_verdict = verdict }
              in
              match
                Option.bind base_bench (fun bb -> Report.find_metric bb m.Report.m_name)
              with
              | None ->
                mk ~delta:0.0
                  ~thr:(Option.value m.Report.m_threshold
                          ~default:config.threshold)
                  Missing_baseline
              | Some bm ->
                let base = bm.Report.m_value in
                let delta, thr, verdict = judge config m ~base in
                mk ~base ~delta ~thr verdict
            end)
          b.Report.b_metrics)
      current.Report.r_benches
  in
  let vanished =
    List.filter_map
      (fun (b : Report.bench) ->
        match Report.find_bench current b.Report.b_name with
        | Some _ -> None
        | None -> Some b.Report.b_name)
      baseline.Report.r_benches
  in
  { rows; vanished; config }

let ok r =
  r.vanished = []
  && not (List.exists (fun row -> row.g_verdict = Regressed) r.rows)

(* ---------- rendering ---------- *)

let verdict_label = function
  | Pass -> "pass"
  | Improved -> "improved"
  | Regressed -> "REGRESSED"
  | Floor_skipped -> "floor-skip"
  | Missing_baseline -> "no-baseline"

(* Values render in their unit's natural scale so the table is legible
   at a glance: seconds in us/ms/s, rates and ratios as plain numbers. *)
let show_value unit_ v =
  if unit_ = "s" then begin
    if Float.abs v < 0.001 then Printf.sprintf "%.1fus" (1e6 *. v)
    else if Float.abs v < 1.0 then Printf.sprintf "%.2fms" (1e3 *. v)
    else Printf.sprintf "%.3fs" v
  end
  else if Float.is_integer v && Float.abs v < 1e9 then
    Printf.sprintf "%.0f%s" v (if unit_ = "" then "" else " " ^ unit_)
  else Printf.sprintf "%.1f%s" v (if unit_ = "" then "" else " " ^ unit_)

let row_cells row =
  [ row.g_bench; row.g_metric;
    (match row.g_base with
    | None -> "-"
    | Some b -> show_value row.g_unit b);
    show_value row.g_unit row.g_current;
    (match row.g_base with
    | None -> "-"
    | Some _ -> Printf.sprintf "%+.1f%%" row.g_delta_pct);
    Printf.sprintf "%.0f%%" (100. *. row.g_threshold);
    verdict_label row.g_verdict ]

let header = [ "bench"; "metric"; "baseline"; "current"; "delta"; "gate"; "verdict" ]

let summary_line r =
  let count v = List.length (List.filter (fun x -> x.g_verdict = v) r.rows) in
  Printf.sprintf
    "%s: %d gated metric(s): %d pass, %d improved, %d regressed, %d \
     floor-skipped, %d without baseline%s"
    (if ok r then "gate OK" else "gate FAILED")
    (List.length r.rows)
    (count Pass) (count Improved) (count Regressed) (count Floor_skipped)
    (count Missing_baseline)
    (match r.vanished with
    | [] -> ""
    | v ->
      Printf.sprintf "; %d baseline bench(es) VANISHED from the run: %s"
        (List.length v) (String.concat ", " v))

let render r =
  let rows = List.map row_cells r.rows in
  let widths =
    List.fold_left
      (fun ws cells -> List.map2 (fun w c -> Stdlib.max w (String.length c)) ws cells)
      (List.map String.length header)
      rows
  in
  let line cells =
    String.concat "  "
      (List.map2
         (fun w c -> Printf.sprintf "%-*s" w c)
         widths cells)
  in
  let b = Buffer.create 512 in
  Buffer.add_string b (line header);
  Buffer.add_char b '\n';
  Buffer.add_string b
    (String.concat "  " (List.map (fun w -> String.make w '-') widths));
  Buffer.add_char b '\n';
  List.iter
    (fun cells ->
      Buffer.add_string b (line cells);
      Buffer.add_char b '\n')
    rows;
  Buffer.add_string b (summary_line r);
  Buffer.add_char b '\n';
  Buffer.contents b

let render_markdown r =
  let b = Buffer.create 512 in
  let cells l = "| " ^ String.concat " | " l ^ " |\n" in
  Buffer.add_string b (cells header);
  Buffer.add_string b (cells (List.map (fun _ -> "---") header));
  List.iter
    (fun row ->
      let c = row_cells row in
      let c =
        if row.g_verdict = Regressed then
          List.map (fun s -> "**" ^ s ^ "**") c
        else c
      in
      Buffer.add_string b (cells c))
    r.rows;
  Buffer.add_char b '\n';
  Buffer.add_string b (summary_line r);
  Buffer.add_char b '\n';
  Buffer.contents b
