type budget = {
  warmup : int;
  min_iters : int;
  max_iters : int;
  max_seconds : float;
}

let default_budget =
  { warmup = 1; min_iters = 3; max_iters = 1000; max_seconds = 1.0 }

let once = { warmup = 0; min_iters = 1; max_iters = 1; max_seconds = 0.0 }

type measured = {
  runs : Quantile.t;
  iters : int;
  warmup_done : int;
  seconds : float;
}

let measure ?(budget = default_budget) f =
  if budget.max_iters < 1 || budget.min_iters < 1 then
    invalid_arg "Harness.measure: iteration budget must be positive";
  for _ = 1 to budget.warmup do f () done;
  let samples = ref [] in
  let iters = ref 0 in
  let spent = ref 0.0 in
  let continue () =
    !iters < budget.max_iters
    && (!iters < budget.min_iters || !spent < budget.max_seconds)
  in
  while continue () do
    let (), dt = Clock.time f in
    samples := dt :: !samples;
    spent := !spent +. dt;
    incr iters
  done;
  let runs = Quantile.of_list !samples in
  if Telemetry.enabled () then
    Telemetry.emit "bench.run"
      [ ("iters", Telemetry.Int !iters); ("seconds", Telemetry.Float !spent) ];
  { runs; iters = !iters; warmup_done = budget.warmup; seconds = !spent }

let bench_of_measured ~name ?items_per_iter ?(gate_time = true)
    ?(gate_rate = false) ?threshold ?(extra = []) m =
  let time_metrics =
    [ Report.metric ~unit_:"s" ~better:Report.Lower ~gated:gate_time
        ?threshold "seconds_p50" (Quantile.p50 m.runs);
      Report.metric ~unit_:"s" ~better:Report.Lower "seconds_min"
        (Quantile.min m.runs) ]
  in
  let rate_metrics =
    match items_per_iter with
    | None -> []
    | Some items ->
      [ Report.metric ~unit_:"1/s" ~better:Report.Higher ~gated:gate_rate
          ?threshold "items_per_sec"
          (items *. float_of_int m.iters /. m.seconds) ]
  in
  { Report.b_name = name; b_iters = m.iters; b_warmup = m.warmup_done;
    b_seconds = m.seconds; b_metrics = time_metrics @ rate_metrics @ extra }

let of_samples ~name ~seconds ?(warmup = 0) ?(rate_name = "rps")
    ?(gate_rate = true) ?(gate_p95 = false) ?threshold ?(extra = []) lat =
  let q = Quantile.of_array lat in
  let n = Quantile.count q in
  let metrics =
    [ Report.metric ~unit_:"1/s" ~better:Report.Higher ~gated:gate_rate
        ?threshold rate_name
        (float_of_int n /. seconds);
      Report.metric ~unit_:"s" "latency_p50" (Quantile.p50 q);
      Report.metric ~unit_:"s" ~gated:gate_p95 ?threshold "latency_p95"
        (Quantile.p95 q);
      Report.metric ~unit_:"s" "latency_p99" (Quantile.p99 q) ]
  in
  { Report.b_name = name; b_iters = n; b_warmup = warmup;
    b_seconds = seconds; b_metrics = metrics @ extra }

(* ---------- registry ---------- *)

type entry = { e_name : string; e_run : unit -> Report.bench }

let registry : entry list ref = ref []

let register ~name ?budget ?items_per_iter ?gate_time ?gate_rate ?threshold f
    =
  let e =
    { e_name = name;
      e_run =
        (fun () ->
          bench_of_measured ~name ?items_per_iter ?gate_time ?gate_rate
            ?threshold (measure ?budget f)) }
  in
  registry := List.filter (fun x -> x.e_name <> name) !registry @ [ e ]

let clear () = registry := []

let run_all ~suite ?context () =
  let benches =
    List.map
      (fun e ->
        let b = e.e_run () in
        Printf.printf "%s: %s: %d iter(s) in %.3fs%s\n%!" suite e.e_name
          b.Report.b_iters b.Report.b_seconds
          (match Report.find_metric b "seconds_p50" with
          | Some m -> Printf.sprintf ", p50 %.3fs" m.Report.m_value
          | None -> "");
        b)
      !registry
  in
  Report.make ~suite ?context benches
