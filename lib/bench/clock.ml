external now_ns : unit -> int64 = "umrs_bench_monotonic_ns"

let since_s t0 = Int64.to_float (Int64.sub (now_ns ()) t0) *. 1e-9

let time f =
  let t0 = now_ns () in
  let x = f () in
  (x, since_s t0)
