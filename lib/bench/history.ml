type entry = {
  h_ts : float;
  h_commit : string;
  h_suite : string;
  h_bench : string;
  h_seconds : float;
  h_metrics : (string * float) list;
}

let default_path = "BENCH_HISTORY.jsonl"

let resolved_path ?path () =
  match path with
  | Some p -> p
  | None ->
    Option.value (Sys.getenv_opt "UMRS_BENCH_HISTORY") ~default:default_path

let line_of_bench (r : Report.t) (b : Report.bench) =
  Json.Obj
    [ ("ts", Json.Num r.Report.r_created);
      ("commit", Json.Str r.Report.r_commit);
      ("suite", Json.Str r.Report.r_suite);
      ("bench", Json.Str b.Report.b_name);
      ("seconds", Json.Num b.Report.b_seconds);
      ("metrics",
       Json.Obj
         (List.map
            (fun (m : Report.metric) ->
              (m.Report.m_name, Json.Num m.Report.m_value))
            b.Report.b_metrics)) ]

let append ?path (r : Report.t) =
  let path = resolved_path ?path () in
  match
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644
  with
  | exception Unix.Unix_error (e, _, _) ->
    Printf.eprintf "bench history: cannot append to %s: %s\n%!" path
      (Unix.error_message e)
  | fd ->
    Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ())
    @@ fun () ->
    List.iter
      (fun b ->
        let line = Json.to_string ~indent:0 (line_of_bench r b) ^ "\n" in
        let bytes = Bytes.of_string line in
        (* one write per line: O_APPEND makes whole-line interleaving *)
        ignore (Unix.write fd bytes 0 (Bytes.length bytes)))
      r.Report.r_benches

let entry_of_line line =
  match Json.parse line with
  | Error _ -> None
  | Ok j ->
    let ( let* ) = Option.bind in
    let* ts = Option.bind (Json.member "ts" j) Json.to_float in
    let* commit = Option.bind (Json.member "commit" j) Json.to_str in
    let* suite = Option.bind (Json.member "suite" j) Json.to_str in
    let* bench = Option.bind (Json.member "bench" j) Json.to_str in
    let* seconds = Option.bind (Json.member "seconds" j) Json.to_float in
    let* metrics_j = Option.bind (Json.member "metrics" j) Json.obj in
    let* metrics =
      List.fold_right
        (fun (k, v) acc ->
          let* acc = acc in
          let* v = Json.to_float v in
          Some ((k, v) :: acc))
        metrics_j (Some [])
    in
    Some
      { h_ts = ts; h_commit = commit; h_suite = suite; h_bench = bench;
        h_seconds = seconds; h_metrics = metrics }

let load ?path () =
  let path = resolved_path ?path () in
  if not (Sys.file_exists path) then ([], 0)
  else begin
    let ic = open_in path in
    Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
    let entries = ref [] and skipped = ref 0 in
    (try
       while true do
         let line = input_line ic in
         if String.trim line <> "" then
           match entry_of_line line with
           | Some e -> entries := e :: !entries
           | None -> incr skipped
       done
     with End_of_file -> ());
    (List.rev !entries, !skipped)
  end
