(** Monotonic timing for benchmarks.

    All bench measurements go through this module, never
    [Unix.gettimeofday]: the wall clock is subject to NTP steps that
    show up as negative or wildly inflated latencies. *)

val now_ns : unit -> int64
(** Nanoseconds on CLOCK_MONOTONIC. Only differences are meaningful. *)

val since_s : int64 -> float
(** [since_s t0] is the seconds elapsed since the reading [t0]. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f] and returns its result with the elapsed seconds. *)
