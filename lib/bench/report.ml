type better = Higher | Lower

type metric = {
  m_name : string;
  m_value : float;
  m_unit : string;
  m_better : better;
  m_gated : bool;
  m_threshold : float option;
}

type bench = {
  b_name : string;
  b_iters : int;
  b_warmup : int;
  b_seconds : float;
  b_metrics : metric list;
}

type t = {
  r_suite : string;
  r_created : float;
  r_commit : string;
  r_machine : (string * Json.t) list;
  r_context : (string * Json.t) list;
  r_benches : bench list;
}

let schema = "umrs/bench/v1"

let metric ?(unit_ = "") ?(better = Lower) ?(gated = false) ?threshold name
    value =
  { m_name = name; m_value = value; m_unit = unit_; m_better = better;
    m_gated = gated; m_threshold = threshold }

(* The commit key for history lines and report envelopes. CI exports
   GITHUB_SHA; locally the smokes run from _build inside the work tree,
   so the git probe works there too. Best-effort: a missing git is
   "unknown", never a failure. *)
let git_commit () =
  match Sys.getenv_opt "GITHUB_SHA" with
  | Some s when s <> "" -> s
  | _ -> (
    match
      let ic = Unix.open_process_in "git rev-parse HEAD 2>/dev/null" in
      let line = try input_line ic with End_of_file -> "" in
      (line, Unix.close_process_in ic)
    with
    | line, Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown"
    | exception _ -> "unknown")

let machine () =
  [ ("hostname", Json.Str (try Unix.gethostname () with _ -> "unknown"));
    ("cores", Json.Num (float_of_int (Domain.recommended_domain_count ())));
    ("os", Json.Str Sys.os_type);
    ("ocaml", Json.Str Sys.ocaml_version);
    ("word_size", Json.Num (float_of_int Sys.word_size)) ]

let make ~suite ?(context = []) benches =
  { r_suite = suite; r_created = Unix.time (); r_commit = git_commit ();
    r_machine = machine (); r_context = context; r_benches = benches }

let find_bench t name =
  List.find_opt (fun b -> b.b_name = name) t.r_benches

let find_metric b name =
  List.find_opt (fun m -> m.m_name = name) b.b_metrics

(* ---------- encoding ---------- *)

let metric_to_json m =
  Json.Obj
    ([ ("name", Json.Str m.m_name); ("value", Json.Num m.m_value);
       ("unit", Json.Str m.m_unit);
       ("better",
        Json.Str (match m.m_better with Higher -> "higher" | Lower -> "lower"));
       ("gated", Json.Bool m.m_gated) ]
    @
    match m.m_threshold with
    | None -> []
    | Some v -> [ ("threshold", Json.Num v) ])

let bench_to_json b =
  Json.Obj
    [ ("name", Json.Str b.b_name);
      ("iterations", Json.Num (float_of_int b.b_iters));
      ("warmup", Json.Num (float_of_int b.b_warmup));
      ("seconds", Json.Num b.b_seconds);
      ("metrics", Json.Arr (List.map metric_to_json b.b_metrics)) ]

let to_json t =
  Json.Obj
    [ ("schema", Json.Str schema); ("suite", Json.Str t.r_suite);
      ("created_unix", Json.Num t.r_created); ("commit", Json.Str t.r_commit);
      ("machine", Json.Obj t.r_machine); ("context", Json.Obj t.r_context);
      ("benches", Json.Arr (List.map bench_to_json t.r_benches)) ]

(* ---------- decoding ---------- *)

let ( let* ) = Result.bind

let field j name conv ~what =
  match Option.bind (Json.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "report: missing or mistyped %s.%s" what name)

let metric_of_json j =
  let* name = field j "name" Json.to_str ~what:"metric" in
  let* value = field j "value" Json.to_float ~what:"metric" in
  let* unit_ = field j "unit" Json.to_str ~what:"metric" in
  let* better_s = field j "better" Json.to_str ~what:"metric" in
  let* better =
    match better_s with
    | "higher" -> Ok Higher
    | "lower" -> Ok Lower
    | s -> Error (Printf.sprintf "report: bad better %S" s)
  in
  let gated =
    match Json.member "gated" j with Some (Json.Bool b) -> b | _ -> false
  in
  let threshold = Option.bind (Json.member "threshold" j) Json.to_float in
  Ok
    { m_name = name; m_value = value; m_unit = unit_; m_better = better;
      m_gated = gated; m_threshold = threshold }

let rec map_result f = function
  | [] -> Ok []
  | x :: xs ->
    let* y = f x in
    let* ys = map_result f xs in
    Ok (y :: ys)

let bench_of_json j =
  let* name = field j "name" Json.to_str ~what:"bench" in
  let* iters = field j "iterations" Json.to_int ~what:"bench" in
  let* warmup = field j "warmup" Json.to_int ~what:"bench" in
  let* seconds = field j "seconds" Json.to_float ~what:"bench" in
  let* metrics_j = field j "metrics" Json.to_list ~what:"bench" in
  let* metrics = map_result metric_of_json metrics_j in
  Ok
    { b_name = name; b_iters = iters; b_warmup = warmup;
      b_seconds = seconds; b_metrics = metrics }

let of_json j =
  let* s = field j "schema" Json.to_str ~what:"report" in
  let* () =
    if s = schema then Ok ()
    else Error (Printf.sprintf "report: schema %S, want %S" s schema)
  in
  let* suite = field j "suite" Json.to_str ~what:"report" in
  let* created = field j "created_unix" Json.to_float ~what:"report" in
  let* commit = field j "commit" Json.to_str ~what:"report" in
  let machine =
    Option.value (Option.bind (Json.member "machine" j) Json.obj) ~default:[]
  in
  let context =
    Option.value (Option.bind (Json.member "context" j) Json.obj) ~default:[]
  in
  let* benches_j = field j "benches" Json.to_list ~what:"report" in
  let* benches = map_result bench_of_json benches_j in
  Ok
    { r_suite = suite; r_created = created; r_commit = commit;
      r_machine = machine; r_context = context; r_benches = benches }

(* ---------- files ---------- *)

let save ~path t =
  let oc = open_out path in
  output_string oc (Json.to_string (to_json t));
  output_char oc '\n';
  close_out oc

let load ~path =
  match
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with
  | exception Sys_error e -> Error (Printf.sprintf "report: %s" e)
  | s ->
    let* j = Json.parse s in
    of_json j
