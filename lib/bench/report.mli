(** The [umrs/bench/v1] report: one versioned, machine-readable schema
    for every benchmark in the repo.

    A report is a suite of named benches. Each bench carries its
    iteration/warmup counts, total measured wall seconds, and a flat
    list of metrics; each metric knows its unit, which direction is
    better, whether the baseline gate checks it, and (optionally) a
    per-metric regression threshold overriding the gate default. The
    envelope records when and where the numbers were taken — git
    commit, hostname, core count, OCaml version — so a committed
    baseline or a history line is interpretable months later.

    Schema (see DESIGN.md for the field-by-field contract):

    {v
    {"schema": "umrs/bench/v1", "suite": "serve",
     "created_unix": 1754650000, "commit": "<40 hex or unknown>",
     "machine": {"hostname": ..., "cores": ..., "os": ...,
                 "ocaml": ..., "word_size": ...},
     "context": {... free-form, e.g. the instance (p,q,d) ...},
     "benches": [
       {"name": "serve/1000x8", "iterations": 32000, "warmup": 0,
        "seconds": 0.674,
        "metrics": [
          {"name": "rps", "value": 47460.3, "unit": "1/s",
           "better": "higher", "gated": true},
          {"name": "latency_p95", "value": 0.3397, "unit": "s",
           "better": "lower", "gated": false}]}]}
    v} *)

type better = Higher | Lower

type metric = {
  m_name : string;
  m_value : float;
  m_unit : string;  (** "s", "1/s", "B/s", "x" (ratio), or "" *)
  m_better : better;
  m_gated : bool;
  m_threshold : float option;
      (** Per-metric regression threshold (fraction, e.g. [0.5] for
          50%) overriding the gate's default; [None] uses the default. *)
}

type bench = {
  b_name : string;
  b_iters : int;
  b_warmup : int;
  b_seconds : float;  (** total measured wall seconds for the bench *)
  b_metrics : metric list;
}

type t = {
  r_suite : string;
  r_created : float;
  r_commit : string;
  r_machine : (string * Json.t) list;
  r_context : (string * Json.t) list;
  r_benches : bench list;
}

val schema : string
(** ["umrs/bench/v1"]. *)

val metric :
  ?unit_:string ->
  ?better:better ->
  ?gated:bool ->
  ?threshold:float ->
  string ->
  float ->
  metric
(** Defaults: unit [""], [Lower] is better, not gated, no per-metric
    threshold. *)

val make :
  suite:string -> ?context:(string * Json.t) list -> bench list -> t
(** Stamps creation time, the current git commit ([GITHUB_SHA], then
    [git rev-parse HEAD], then ["unknown"]) and machine metadata. *)

val find_bench : t -> string -> bench option
val find_metric : bench -> string -> metric option

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result

val save : path:string -> t -> unit
(** Write the pretty-printed report; truncates an existing file. *)

val load : path:string -> (t, string) result
(** Read and validate; I/O and parse failures come back as [Error]. *)
