(** Nearest-rank quantiles over a sample, the one percentile
    implementation every bench shares.

    The smokes used to carry three private copies of this computation,
    each with its own off-by-one on small samples; this module replaces
    them and is tested against a naive sorted oracle (including n = 1,
    n = 2 and all-ties samples) in [test/test_bench.ml].

    Definition: for a sample of size [n] sorted ascending, the p-th
    percentile is the element at rank [max 1 (ceil (p/100 * n))]
    (1-based). So p = 0 is the minimum, p = 100 the maximum, and the
    median of a two-element sample is its smaller element. *)

type t
(** An immutable sorted sample. *)

val of_array : float array -> t
(** Copies and sorts; the argument is not modified.
    @raise Invalid_argument on an empty sample. *)

val of_list : float list -> t

val count : t -> int

val value : t -> float -> float
(** [value t p] for [p] in [[0, 100]].
    @raise Invalid_argument outside that range. *)

val p50 : t -> float
val p95 : t -> float
val p99 : t -> float
val min : t -> float
val max : t -> float
val mean : t -> float
val total : t -> float
(** Sum of all samples. *)
