(** Minimal JSON tree, printer and parser.

    The bench library must read and write its own reports and history
    lines without an external JSON dependency (the container only
    carries the toolchain). The dialect is the subset the [umrs/bench/v1]
    schema needs: null, booleans, IEEE doubles, strings, arrays and
    objects — no surrogate-pair decoding ([\uXXXX] escapes below 0x80
    only), object member order preserved. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : ?indent:int -> t -> string
(** Render with [indent] spaces per level (default 2; 0 means one
    line). Integral [Num]s print without a decimal point; other numbers
    print with up to nanosecond-scale precision, trailing zeros
    trimmed. *)

val parse : string -> (t, string) result
(** Parse one JSON value; trailing garbage, truncation and malformed
    escapes come back as [Error] with a byte offset, never an
    exception. *)

(** {1 Accessors} — each returns [None] on a shape mismatch. *)

val member : string -> t -> t option
val to_float : t -> float option
val to_int : t -> int option
val to_str : t -> string option
val to_list : t -> t list option
val obj : t -> (string * t) list option
