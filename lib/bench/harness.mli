(** Named-benchmark runner: warmup, iteration/time budgets, monotonic
    timing, and the standard metric set.

    Two entry styles cover every smoke in the repo:

    - {b closed-loop} micro/medium benches ([register] + [run_all], or
      [measure] directly): the harness owns the loop, runs [warmup]
      untimed iterations, then keeps iterating until it has at least
      [min_iters] runs and either [max_seconds] of measured time or
      [max_iters] runs — so a fast function gets statistics and a slow
      one still terminates;

    - {b open-loop} load drivers ([of_samples]): serve/cluster/chaos
      drive their own connection fleets and hand the harness the raw
      per-request latency samples plus the wall time, and get back the
      same bench record with rps + p50/p95/p99 computed by the shared
      {!Quantile}.

    Every run emits a [bench.run] telemetry event (guarded, so the
    disabled path allocates nothing beyond the run itself). *)

type budget = {
  warmup : int;  (** untimed runs before measurement *)
  min_iters : int;
  max_iters : int;
  max_seconds : float;  (** measured-time budget, checked after min_iters *)
}

val default_budget : budget
(** [{warmup = 1; min_iters = 3; max_iters = 1000; max_seconds = 1.0}] *)

val once : budget
(** One warmup-free, single-iteration budget for benches whose function
    is too expensive to repeat (full enumerations, corpus builds). *)

type measured = {
  runs : Quantile.t;  (** per-iteration seconds *)
  iters : int;
  warmup_done : int;
  seconds : float;  (** total measured seconds (sum of runs) *)
}

val measure : ?budget:budget -> (unit -> unit) -> measured

val bench_of_measured :
  name:string ->
  ?items_per_iter:float ->
  ?gate_time:bool ->
  ?gate_rate:bool ->
  ?threshold:float ->
  ?extra:Report.metric list ->
  measured ->
  Report.bench
(** Standard closed-loop metrics: [seconds_p50] (unit "s", lower is
    better, gated iff [gate_time], default true) and — when
    [items_per_iter] is given — [items_per_sec] (unit "1/s", higher is
    better, gated iff [gate_rate], default false). [threshold] becomes
    the per-metric override on every gated metric. *)

val of_samples :
  name:string ->
  seconds:float ->
  ?warmup:int ->
  ?rate_name:string ->
  ?gate_rate:bool ->
  ?gate_p95:bool ->
  ?threshold:float ->
  ?extra:Report.metric list ->
  float array ->
  Report.bench
(** Open-loop: [seconds] is driver wall time, the array holds one
    latency sample per completed item. Metrics: [rate_name] (default
    ["rps"], items/[seconds], gated iff [gate_rate], default true) and
    [latency_p50]/[latency_p95]/[latency_p99] ([latency_p95] gated iff
    [gate_p95], default false). *)

(** {1 Registry} *)

val register :
  name:string ->
  ?budget:budget ->
  ?items_per_iter:float ->
  ?gate_time:bool ->
  ?gate_rate:bool ->
  ?threshold:float ->
  (unit -> unit) ->
  unit
(** Add a named closed-loop bench to the process-global registry.
    Re-registering a name replaces the old entry. *)

val run_all :
  suite:string -> ?context:(string * Json.t) list -> unit -> Report.t
(** Run every registered bench in registration order, printing one
    progress line per bench, and return the report. *)

val clear : unit -> unit
(** Empty the registry (tests). *)
