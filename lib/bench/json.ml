type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ---------- printing ---------- *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Readable numbers for committed report files: integers bare, reals
   with up to 9 fractional digits (nanosecond resolution for seconds
   values), trailing zeros trimmed. Falls back to %.17g when 9 digits
   would collapse a nonzero value to zero. *)
let num_to_string v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else begin
    let s = Printf.sprintf "%.9f" v in
    let s =
      let n = ref (String.length s) in
      while !n > 1 && s.[!n - 1] = '0' do decr n done;
      if !n > 1 && s.[!n - 1] = '.' then decr n;
      String.sub s 0 !n
    in
    if float_of_string s = 0.0 && v <> 0.0 then Printf.sprintf "%.17g" v else s
  end

let to_string ?(indent = 2) t =
  let b = Buffer.create 1024 in
  let pad depth =
    if indent > 0 then begin
      Buffer.add_char b '\n';
      Buffer.add_string b (String.make (depth * indent) ' ')
    end
  in
  let rec go depth = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | Num v -> Buffer.add_string b (num_to_string v)
    | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
    | Arr [] -> Buffer.add_string b "[]"
    | Arr xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          pad (depth + 1);
          go (depth + 1) x)
        xs;
      pad depth;
      Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          pad (depth + 1);
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\": ";
          go (depth + 1) v)
        kvs;
      pad depth;
      Buffer.add_char b '}'
  in
  go 0 t;
  Buffer.contents b

(* ---------- parsing ---------- *)

exception Fail of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do advance () done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= n then fail "unterminated escape";
         (match s.[!pos] with
         | '"' -> Buffer.add_char b '"'
         | '\\' -> Buffer.add_char b '\\'
         | '/' -> Buffer.add_char b '/'
         | 'n' -> Buffer.add_char b '\n'
         | 'r' -> Buffer.add_char b '\r'
         | 't' -> Buffer.add_char b '\t'
         | 'b' -> Buffer.add_char b '\b'
         | 'f' -> Buffer.add_char b '\012'
         | 'u' ->
           if !pos + 4 >= n then fail "truncated \\u escape";
           let hex = String.sub s (!pos + 1) 4 in
           let code =
             match int_of_string_opt ("0x" ^ hex) with
             | Some c -> c
             | None -> fail "bad \\u escape"
           in
           if code > 0x7F then fail "\\u escape above 0x7f unsupported";
           Buffer.add_char b (Char.chr code);
           pos := !pos + 4
         | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
         advance ());
        go ()
      | c when Char.code c < 0x20 -> fail "control character in string"
      | c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && num_char s.[!pos] do advance () done;
    if !pos = start then fail "expected a value";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> v
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        Arr (elements [])
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) ->
    Error (Printf.sprintf "json: %s at byte %d" msg at)

(* ---------- accessors ---------- *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let to_float = function Num v -> Some v | _ -> None

let to_int = function
  | Num v when Float.is_integer v -> Some (int_of_float v)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_list = function Arr xs -> Some xs | _ -> None
let obj = function Obj kvs -> Some kvs | _ -> None
