let default_domains () = max 1 (Domain.recommended_domain_count () - 1)

(* Run the inline worker and join every spawned domain, even when one
   of them raises — leaking an unjoined domain would let it keep
   writing to shared state after the caller has started cleaning up.
   The first exception seen (inline worker first, then joins in spawn
   order) is re-raised once all domains have stopped. *)
let run_joining worker0 handles =
  let first = ref None in
  let note e = if !first = None then first := Some e in
  (try worker0 () with e -> note e);
  List.iter (fun h -> try Domain.join h with e -> note e) handles;
  match !first with Some e -> raise e | None -> ()

let map_range ?domains n f =
  if n < 0 then invalid_arg "Parallel.map_range";
  let domains =
    match domains with Some d -> max 1 d | None -> default_domains ()
  in
  if n < 2 || domains <= 1 then Array.init n f
  else begin
    let domains = min domains n in
    let results = Array.make n None in
    let chunk = (n + domains - 1) / domains in
    let worker d () =
      let lo = d * chunk in
      let hi = min n (lo + chunk) - 1 in
      for i = lo to hi do
        results.(i) <- Some (f i)
      done
    in
    let handles =
      List.init (domains - 1) (fun d -> Domain.spawn (worker (d + 1)))
    in
    run_joining (worker 0) handles;
    Array.map
      (function Some x -> x | None -> invalid_arg "Parallel: missing result")
      results
  end

let chunks ~domains n =
  if n < 0 then invalid_arg "Parallel.chunks";
  if n = 0 then [||]
  else begin
    let domains = max 1 (min domains n) in
    let chunk = (n + domains - 1) / domains in
    Array.init domains (fun d -> (d * chunk, min n ((d + 1) * chunk)))
  end

let map_ranges ?domains n f =
  if n < 0 then invalid_arg "Parallel.map_ranges";
  let domains =
    match domains with Some d -> max 1 d | None -> default_domains ()
  in
  if n = 0 then [||]
  else if domains <= 1 then [| f ~lo:0 ~hi:n |]
  else begin
    let ranges = chunks ~domains n in
    let k = Array.length ranges in
    let results = Array.make k None in
    let worker i () =
      let lo, hi = ranges.(i) in
      results.(i) <- Some (f ~lo ~hi)
    in
    let handles = List.init (k - 1) (fun i -> Domain.spawn (worker (i + 1))) in
    run_joining (worker 0) handles;
    Array.map
      (function Some x -> x | None -> invalid_arg "Parallel: missing result")
      results
  end

let map_range_with ?domains ~init ?(finally = fun _ -> ()) n f =
  if n < 0 then invalid_arg "Parallel.map_range_with";
  let domains =
    match domains with Some d -> max 1 d | None -> default_domains ()
  in
  if n = 0 then [||]
  else begin
    let run_chunk (lo, hi) =
      let s = init () in
      Fun.protect
        ~finally:(fun () -> finally s)
        (fun () -> Array.init (hi - lo) (fun i -> f s (lo + i)))
    in
    let per_chunk =
      if domains <= 1 then [| run_chunk (0, n) |]
      else begin
        let ranges = chunks ~domains n in
        let k = Array.length ranges in
        let results = Array.make k None in
        let worker i () = results.(i) <- Some (run_chunk ranges.(i)) in
        let handles =
          List.init (k - 1) (fun i -> Domain.spawn (worker (i + 1)))
        in
        run_joining (worker 0) handles;
        Array.map
          (function Some x -> x | None -> invalid_arg "Parallel: missing result")
          results
      end
    in
    Array.concat (Array.to_list per_chunk)
  end

let all_pairs ?domains g =
  map_range ?domains (Graph.order g) (fun src -> Bfs.distances g src)

let all_pairs_weighted ?domains w =
  map_range ?domains (Graph.order (Weighted.graph w)) (Weighted.dijkstra w)
