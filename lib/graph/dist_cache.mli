(** Process-wide cache of all-pairs distance matrices.

    Every scheme evaluation, stretch report, and verification pass
    needs the same all-pairs distances of the same graph; before this
    cache each caller recomputed a full APSP per scheme per report.
    Matrices are cached per graph {e identity} (physical equality —
    graphs are immutable after construction), bounded to a few dozen
    entries, and computed through {!Parallel.all_pairs} so a cache
    miss also uses the available domains. Thread-safe: callers may
    race from several domains; the worst case is one duplicated
    computation, never a wrong or torn result. *)

val distances : ?domains:int -> Graph.t -> int array array
(** Cached {!Parallel.all_pairs}. The returned matrix is shared —
    treat it as read-only. *)

val distances_weighted : ?domains:int -> Weighted.t -> int array array
(** Cached {!Parallel.all_pairs_weighted}. *)

val stats : unit -> int * int
(** [(hits, misses)] since process start ({!clear} drops the cached
    matrices but keeps the counters running). *)

val clear : unit -> unit
(** Drop all cached matrices (hit/miss counters keep running). *)
