(** Graph families.

    The corpus matches the families cited in Section 1 and Table 1 of
    the paper: hypercubes (e-cube routing, [O(log n)] bits), trees /
    outerplanar / unit circular-arc graphs (interval routing,
    [O(d log n)] bits), chordal graphs, complete graphs (the adversarial
    port-labelling example), plus standard path/cycle/grid/random
    families used by the benchmarks. *)

val path : int -> Graph.t
(** [path n]: vertices [0 - 1 - ... - n-1]. *)

val cycle : int -> Graph.t
(** [cycle n], [n >= 3]. *)

val complete : int -> Graph.t
(** [complete n] is [K_n]; port [k] of vertex [v] leads to the [k]-th
    other vertex in increasing order. *)

val complete_bipartite : int -> int -> Graph.t
(** [complete_bipartite a b] is [K_{a,b}] with the left part
    [0 .. a-1]. *)

val star : int -> Graph.t
(** [star n]: center [0] joined to [1 .. n-1]. *)

val wheel : int -> Graph.t
(** [wheel n], [n >= 4]: a cycle on [1 .. n-1] plus center [0]. *)

val hypercube : int -> Graph.t
(** [hypercube dim] is [H_{2^dim}]. Port [k] of vertex [v] flips bit
    [k-1] of [v] — the labelling assumed by e-cube routing. *)

val grid : int -> int -> Graph.t
(** [grid w h]: the [w x h] mesh; vertex [(x,y)] is [y*w + x]. *)

val torus : int -> int -> Graph.t
(** [torus w h]: the wrapped mesh; needs [w >= 3] and [h >= 3]. *)

val torus_nd : int list -> Graph.t
(** [torus_nd [d1; ...; dk]]: the k-dimensional torus, each [di >= 3].
    Vertex ids are mixed-radix (dimension 0 varies fastest). Ports of
    every vertex: [2i+1] steps [+1] and [2i+2] steps [-1] along
    dimension [i] — the convention assumed by
    {!Umrs_routing.Specialized.build_torus_dor}. *)

val petersen : unit -> Graph.t
(** The Petersen graph: outer 5-cycle [0..4], inner 5-star [5..9],
    spokes [i - i+5]. (Figure 1 of the paper uses a specific relabelled
    copy, built in [Umrs_core.Petersen].) *)

val generalized_petersen : int -> int -> Graph.t
(** [generalized_petersen n k]: outer [n]-cycle, inner [n]-circulant of
    step [k], spokes. [petersen () = generalized_petersen 5 2]. *)

val random_tree : Random.State.t -> int -> Graph.t
(** Uniform labelled tree on [n] vertices (Pruefer sequence). *)

val caterpillar : Random.State.t -> spine:int -> legs:int -> Graph.t
(** Spine path of [spine] vertices with [legs] extra leaves attached to
    uniformly random spine vertices. *)

val k_tree : Random.State.t -> k:int -> int -> Graph.t
(** Random [k]-tree on [n >= k+1] vertices: start from [K_{k+1}], each
    new vertex is joined to a random existing [k]-clique. [k]-trees are
    chordal (Table 1's [O(n log^2 n)] global-memory family). *)

val maximal_outerplanar : Random.State.t -> int -> Graph.t
(** Random maximal outerplanar graph: a cycle on [n >= 3] vertices plus
    a uniformly random triangulation of the inside of the polygon. *)

val unit_circular_arc : Random.State.t -> n:int -> arc:float -> Graph.t option
(** Intersection graph of [n] uniformly placed circular arcs, all of
    angular length [arc] (unit circular-arc graph). [None] when the
    sample is disconnected. *)

val random_connected : Random.State.t -> n:int -> m:int -> Graph.t
(** Uniform-ish connected graph: a random spanning tree plus [m - (n-1)]
    further uniform non-edges. Requires [n-1 <= m <= n(n-1)/2]. *)

val random_regular : Random.State.t -> n:int -> d:int -> Graph.t
(** Random [d]-regular graph by the pairing model (resampled until
    simple and connected). Requires [n * d] even, [d < n]. *)

val globe : meridians:int -> parallels:int -> Graph.t
(** The globe graph of Gavoille & Guevremont's worst-case interval-
    routing bounds (reference [8]): two poles joined by [meridians]
    disjoint paths of [parallels] internal vertices each. Pole 0 is
    vertex 0, pole 1 is vertex 1; meridian [i]'s internal vertices are
    [2 + i*parallels ..]. Needs [meridians >= 2], [parallels >= 1]. *)

val de_bruijn_like : int -> Graph.t
(** Undirected binary de Bruijn graph [UB(dim)] on [2^dim] vertices:
    edges [v ~ (2v mod n)] and [v ~ (2v+1 mod n)], loops and duplicates
    dropped. Diameter [dim] with degree [<= 4]. *)

val barabasi_albert : Random.State.t -> n:int -> m:int -> Graph.t
(** Barabási–Albert preferential attachment: a complete seed graph on
    [m+1] vertices, then each new vertex attaches [m] edges to distinct
    existing vertices drawn proportionally to degree. Connected, min
    degree exactly [m], heavy-tailed degree distribution — the
    Internet-like workload of Krioukov/Fall/Yang's TZ evaluation.
    Requires [n >= m+1], [m >= 1]. *)

val chung_lu : Random.State.t -> n:int -> exponent:float -> Graph.t
(** Chung–Lu expected-degree power law: vertex [i] has weight
    [(n/(i+1))^(1/(exponent-1))] and each pair is an edge independently
    with probability proportional to the weight product, giving degree
    exponent [exponent]. Stray components are deterministically attached
    to the hub vertex [0], so the result is always connected. Requires
    [n >= 2], [exponent > 2]. *)

val corpus : Random.State.t -> size:int -> (string * Graph.t) list
(** A named sample of every family above, each of order approximately
    [size] — the workload set for the Table-1 benchmarks. All graphs
    returned are connected. *)
