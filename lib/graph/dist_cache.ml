(* Keyed by physical identity: Graph.t / Weighted.t are immutable
   after construction (constructors copy their inputs), so [==] is a
   sound and allocation-free identity. Structural keys would defeat
   the point — hashing an adjacency structure costs as much as one
   BFS level. *)

let max_entries = 32

type ('k, 'v) cache = {
  lock : Mutex.t;
  mutable entries : ('k * 'v) list;
  mutable hits : int;
  mutable misses : int;
}

let make () = { lock = Mutex.create (); entries = []; hits = 0; misses = 0 }

let find c g =
  Mutex.lock c.lock;
  let r = List.find_opt (fun (g', _) -> g' == g) c.entries in
  (match r with Some _ -> c.hits <- c.hits + 1 | None -> c.misses <- c.misses + 1);
  Mutex.unlock c.lock;
  Option.map snd r

let store c g d =
  Mutex.lock c.lock;
  if not (List.exists (fun (g', _) -> g' == g) c.entries) then begin
    c.entries <- (g, d) :: c.entries;
    (* bounded: drop the oldest entries beyond the cap *)
    if List.length c.entries > max_entries then
      c.entries <- List.filteri (fun i _ -> i < max_entries) c.entries
  end;
  Mutex.unlock c.lock

(* The distance computation runs outside the lock: two domains racing
   on the same uncached graph duplicate work once rather than
   serializing every lookup behind a BFS. *)
let cached c compute g =
  match find c g with
  | Some d -> d
  | None ->
    let d = compute g in
    store c g d;
    d

let unweighted : (Graph.t, int array array) cache = make ()
let weighted_c : (Weighted.t, int array array) cache = make ()

let distances ?domains g = cached unweighted (Parallel.all_pairs ?domains) g

let distances_weighted ?domains w =
  cached weighted_c (Parallel.all_pairs_weighted ?domains) w

let stats () =
  ( unweighted.hits + weighted_c.hits,
    unweighted.misses + weighted_c.misses )

let clear () =
  List.iter
    (fun f -> f ())
    [
      (fun () ->
        Mutex.lock unweighted.lock;
        unweighted.entries <- [];
        Mutex.unlock unweighted.lock);
      (fun () ->
        Mutex.lock weighted_c.lock;
        weighted_c.entries <- [];
        Mutex.unlock weighted_c.lock);
    ]
