(** Multicore helpers (OCaml 5 domains) for the embarrassingly parallel
    parts of the suite — all-pairs BFS dominates every experiment's
    runtime, and each source is independent.

    No external dependency: plain [Domain.spawn] over contiguous source
    slices. Results are deterministic and equal to the sequential
    versions (tested). *)

val default_domains : unit -> int
(** [max 1 (Domain.recommended_domain_count () - 1)]. *)

val map_range : ?domains:int -> int -> (int -> 'a) -> 'a array
(** [map_range ~domains n f] is [Array.init n f] computed on [domains]
    domains ([f] must be thread-safe; indices are split into contiguous
    chunks). Falls back to sequential for [n < 2] or [domains <= 1]. *)

val chunks : domains:int -> int -> (int * int) array
(** [chunks ~domains n] splits [0, n)] into at most [domains]
    contiguous [(lo, hi)] half-open ranges covering it exactly (empty
    for [n = 0]). *)

val map_ranges : ?domains:int -> int -> (lo:int -> hi:int -> 'a) -> 'a array
(** [map_ranges ~domains n f] applies [f] to each chunk of [0, n)] on
    its own domain and returns the per-chunk results in range order
    ([f] must be thread-safe). The work-sharding primitive behind the
    parallel enumeration engine: unlike {!map_range} it materializes
    one result per {e chunk}, not per index, so the index space can be
    in the millions without allocating an array of that size. *)

val map_range_with :
  ?domains:int ->
  init:(unit -> 's) ->
  ?finally:('s -> unit) ->
  int -> ('s -> int -> 'a) -> 'a array
(** [map_range_with ~init ~finally n f] is {!map_range} with per-domain
    resources: each contiguous chunk of [0, n)] runs [init ()] once,
    passes the resulting state to every [f state i] of the chunk in
    increasing index order, and runs [finally] on it afterwards (also
    on exceptions). Built for workers that share expensive
    single-threaded state across a chunk — a file handle, a decoder
    buffer, a {!Umrs_core.Canonical.workspace} — without sharing it
    across domains. Sequential ([domains <= 1]) runs use one state for
    the whole range. *)

val all_pairs : ?domains:int -> Graph.t -> int array array
(** Parallel {!Bfs.all_pairs}. *)

val all_pairs_weighted : ?domains:int -> Weighted.t -> int array array
(** Parallel {!Weighted.all_pairs}. *)
