let path n =
  if n < 1 then invalid_arg "Generators.path";
  Graph.of_edges ~n (List.init (n - 1) (fun i -> (i, i + 1)))

let cycle n =
  if n < 3 then invalid_arg "Generators.cycle: need n >= 3";
  Graph.of_edges ~n (List.init n (fun i -> (i, (i + 1) mod n)))

let complete n =
  if n < 1 then invalid_arg "Generators.complete";
  let edges = ref [] in
  for u = n - 1 downto 0 do
    for v = n - 1 downto u + 1 do
      edges := (u, v) :: !edges
    done
  done;
  Graph.of_edges ~n !edges

let complete_bipartite a b =
  if a < 1 || b < 1 then invalid_arg "Generators.complete_bipartite";
  let edges = ref [] in
  for u = a - 1 downto 0 do
    for v = a + b - 1 downto a do
      edges := (u, v) :: !edges
    done
  done;
  Graph.of_edges ~n:(a + b) !edges

let star n =
  if n < 2 then invalid_arg "Generators.star";
  Graph.of_edges ~n (List.init (n - 1) (fun i -> (0, i + 1)))

let wheel n =
  if n < 4 then invalid_arg "Generators.wheel: need n >= 4";
  let rim = List.init (n - 1) (fun i -> (1 + i, 1 + ((i + 1) mod (n - 1)))) in
  let spokes = List.init (n - 1) (fun i -> (0, i + 1)) in
  Graph.of_edges ~n (rim @ spokes)

let hypercube dim =
  if dim < 0 || dim > 24 then invalid_arg "Generators.hypercube";
  let n = 1 lsl dim in
  (* Build adjacency directly so that port k flips bit k-1. *)
  let adj =
    Array.init n (fun v -> Array.init dim (fun k -> v lxor (1 lsl k)))
  in
  Graph.of_adjacency adj

let grid w h =
  if w < 1 || h < 1 then invalid_arg "Generators.grid";
  let id x y = (y * w) + x in
  let edges = ref [] in
  for y = h - 1 downto 0 do
    for x = w - 1 downto 0 do
      if x + 1 < w then edges := (id x y, id (x + 1) y) :: !edges;
      if y + 1 < h then edges := (id x y, id x (y + 1)) :: !edges
    done
  done;
  Graph.of_edges ~n:(w * h) !edges

let torus w h =
  if w < 3 || h < 3 then invalid_arg "Generators.torus: need w, h >= 3";
  let id x y = (y * w) + x in
  let edges = ref [] in
  for y = h - 1 downto 0 do
    for x = w - 1 downto 0 do
      edges := (id x y, id ((x + 1) mod w) y) :: !edges;
      edges := (id x y, id x ((y + 1) mod h)) :: !edges
    done
  done;
  Graph.of_edges ~n:(w * h) !edges

let torus_nd dims =
  if dims = [] then invalid_arg "Generators.torus_nd: no dimensions";
  List.iter
    (fun d -> if d < 3 then invalid_arg "Generators.torus_nd: need di >= 3")
    dims;
  let dims = Array.of_list dims in
  let k = Array.length dims in
  let n = Array.fold_left ( * ) 1 dims in
  let coords v =
    let c = Array.make k 0 in
    let rest = ref v in
    for i = 0 to k - 1 do
      c.(i) <- !rest mod dims.(i);
      rest := !rest / dims.(i)
    done;
    c
  in
  let id c =
    let v = ref 0 in
    for i = k - 1 downto 0 do
      v := (!v * dims.(i)) + c.(i)
    done;
    !v
  in
  let adj =
    Array.init n (fun v ->
        let c = coords v in
        Array.init (2 * k) (fun p ->
            let i = p / 2 in
            let delta = if p mod 2 = 0 then 1 else dims.(i) - 1 in
            let c' = Array.copy c in
            c'.(i) <- (c.(i) + delta) mod dims.(i);
            id c'))
  in
  Graph.of_adjacency adj

let generalized_petersen n k =
  if n < 3 || k < 1 || 2 * k >= n then invalid_arg "Generators.generalized_petersen";
  let outer = List.init n (fun i -> (i, (i + 1) mod n)) in
  let inner = List.init n (fun i -> (n + i, n + ((i + k) mod n))) in
  (* In the circulant, edge {i, i+k} appears twice when listed from both
     ends; dedup by canonical order. *)
  let inner =
    List.sort_uniq compare
      (List.map (fun (u, v) -> if u < v then (u, v) else (v, u)) inner)
  in
  let spokes = List.init n (fun i -> (i, n + i)) in
  Graph.of_edges ~n:(2 * n) (outer @ inner @ spokes)

let petersen () = generalized_petersen 5 2

let random_tree st n =
  if n < 1 then invalid_arg "Generators.random_tree";
  if n = 1 then Graph.empty 1
  else if n = 2 then Graph.of_edges ~n [ (0, 1) ]
  else begin
    (* Decode a uniform Pruefer sequence of length n-2. *)
    let seq = Array.init (n - 2) (fun _ -> Random.State.int st n) in
    let deg = Array.make n 1 in
    Array.iter (fun v -> deg.(v) <- deg.(v) + 1) seq;
    let module H = Set.Make (Int) in
    let leaves = ref H.empty in
    for v = 0 to n - 1 do
      if deg.(v) = 1 then leaves := H.add v !leaves
    done;
    let edges = ref [] in
    Array.iter
      (fun v ->
        let leaf = H.min_elt !leaves in
        leaves := H.remove leaf !leaves;
        edges := (leaf, v) :: !edges;
        deg.(v) <- deg.(v) - 1;
        if deg.(v) = 1 then leaves := H.add v !leaves)
      seq;
    (match H.elements !leaves with
    | [ u; v ] -> edges := (u, v) :: !edges
    | _ -> assert false);
    Graph.of_edges ~n !edges
  end

let caterpillar st ~spine ~legs =
  if spine < 1 || legs < 0 then invalid_arg "Generators.caterpillar";
  let n = spine + legs in
  let spine_edges = List.init (spine - 1) (fun i -> (i, i + 1)) in
  let leg_edges =
    List.init legs (fun i -> (Random.State.int st spine, spine + i))
  in
  Graph.of_edges ~n (spine_edges @ leg_edges)

let k_tree st ~k n =
  if k < 1 || n < k + 1 then invalid_arg "Generators.k_tree";
  (* cliques: the list of k-cliques a new vertex may attach to. *)
  let base = ref [] in
  for u = 0 to k do
    for v = u + 1 to k do
      base := (u, v) :: !base
    done
  done;
  let edges = ref !base in
  let cliques = ref [] in
  (* All k-subsets of the initial (k+1)-clique. *)
  for skip = 0 to k do
    cliques :=
      Array.of_list (List.filter (fun v -> v <> skip) (List.init (k + 1) Fun.id))
      :: !cliques
  done;
  let cliques = ref (Array.of_list !cliques) in
  for v = k + 1 to n - 1 do
    let c = !cliques.(Random.State.int st (Array.length !cliques)) in
    Array.iter (fun u -> edges := (u, v) :: !edges) c;
    (* New k-cliques: c with one vertex replaced by v. *)
    let fresh =
      Array.map
        (fun drop -> Array.map (fun u -> if u = drop then v else u) c)
        c
    in
    cliques := Array.append !cliques fresh
  done;
  Graph.of_edges ~n !edges

let maximal_outerplanar st n =
  if n < 3 then invalid_arg "Generators.maximal_outerplanar";
  let edges = ref (List.init n (fun i -> (i, (i + 1) mod n))) in
  (* Random triangulation: recursively split polygon [i..j] (as a fan of
     random apexes). Ears are chosen uniformly among the range. *)
  let rec triangulate i j =
    (* polygon with boundary vertices i, i+1, ..., j; chord (i,j) exists *)
    if j - i >= 2 then begin
      let apex = i + 1 + Random.State.int st (j - i - 1) in
      if apex - i >= 2 then edges := (i, apex) :: !edges;
      if j - apex >= 2 then edges := (apex, j) :: !edges;
      triangulate i apex;
      triangulate apex j
    end
  in
  triangulate 0 (n - 1);
  Graph.of_edges ~n !edges

let unit_circular_arc st ~n ~arc =
  if n < 1 || arc <= 0.0 || arc >= 1.0 then
    invalid_arg "Generators.unit_circular_arc";
  let start = Array.init n (fun _ -> Random.State.float st 1.0) in
  let intersects i j =
    (* Arcs [s, s+arc) on the unit circle (circumference 1). *)
    let gap =
      let d = Float.abs (start.(i) -. start.(j)) in
      Float.min d (1.0 -. d)
    in
    gap < arc
  in
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if intersects i j then edges := (i, j) :: !edges
    done
  done;
  let g = Graph.of_edges ~n !edges in
  if Graph.is_connected g then Some g else None

let random_connected st ~n ~m =
  if n < 1 then invalid_arg "Generators.random_connected";
  let max_m = n * (n - 1) / 2 in
  if m < n - 1 || m > max_m then
    invalid_arg "Generators.random_connected: bad edge count";
  (* Random spanning tree by random attachment (not uniform over trees,
     fine for benchmark workloads), then extra uniform non-edges. *)
  let present = Hashtbl.create (2 * m) in
  let canon u v = if u < v then (u, v) else (v, u) in
  let edges = ref [] in
  let add u v =
    Hashtbl.add present (canon u v) ();
    edges := canon u v :: !edges
  in
  let order = Perm.random st n in
  for i = 1 to n - 1 do
    let u = order.(i) and v = order.(Random.State.int st i) in
    add u v
  done;
  let remaining = ref (m - (n - 1)) in
  while !remaining > 0 do
    let u = Random.State.int st n and v = Random.State.int st n in
    if u <> v && not (Hashtbl.mem present (canon u v)) then begin
      add u v;
      decr remaining
    end
  done;
  Graph.of_edges ~n !edges

let random_regular st ~n ~d =
  if d < 1 || d >= n || (n * d) mod 2 <> 0 then
    invalid_arg "Generators.random_regular";
  let attempt () =
    let stubs = Array.make (n * d) 0 in
    for i = 0 to (n * d) - 1 do
      stubs.(i) <- i / d
    done;
    let p = Perm.random st (n * d) in
    let shuffled = Array.map (fun i -> stubs.(i)) p in
    let canon u v = if u < v then (u, v) else (v, u) in
    let seen = Hashtbl.create (n * d) in
    let edges = ref [] in
    let ok = ref true in
    let i = ref 0 in
    while !ok && !i < n * d do
      let u = shuffled.(!i) and v = shuffled.(!i + 1) in
      if u = v || Hashtbl.mem seen (canon u v) then ok := false
      else begin
        Hashtbl.add seen (canon u v) ();
        edges := canon u v :: !edges
      end;
      i := !i + 2
    done;
    if !ok then begin
      let g = Graph.of_edges ~n !edges in
      if Graph.is_connected g then Some g else None
    end
    else None
  in
  let rec retry k =
    if k = 0 then
      invalid_arg "Generators.random_regular: could not sample a simple graph"
    else
      match attempt () with Some g -> g | None -> retry (k - 1)
  in
  retry 1000

let globe ~meridians ~parallels =
  if meridians < 2 || parallels < 1 then invalid_arg "Generators.globe";
  let n = 2 + (meridians * parallels) in
  let vertex i j = 2 + (i * parallels) + j in
  let edges = ref [] in
  for i = meridians - 1 downto 0 do
    edges := (0, vertex i 0) :: !edges;
    for j = 0 to parallels - 2 do
      edges := (vertex i j, vertex i (j + 1)) :: !edges
    done;
    edges := (vertex i (parallels - 1), 1) :: !edges
  done;
  Graph.of_edges ~n !edges

let de_bruijn_like dim =
  if dim < 1 || dim > 24 then invalid_arg "Generators.de_bruijn_like";
  let n = 1 lsl dim in
  let canon u v = if u < v then (u, v) else (v, u) in
  let seen = Hashtbl.create (4 * n) in
  let edges = ref [] in
  for v = 0 to n - 1 do
    List.iter
      (fun w ->
        if v <> w && not (Hashtbl.mem seen (canon v w)) then begin
          Hashtbl.add seen (canon v w) ();
          edges := canon v w :: !edges
        end)
      [ 2 * v mod n; ((2 * v) + 1) mod n ]
  done;
  Graph.of_edges ~n !edges

let barabasi_albert st ~n ~m =
  if m < 1 || n < m + 1 then invalid_arg "Generators.barabasi_albert";
  (* Preferential attachment seeded with a complete graph on m+1
     vertices: every vertex ends with degree >= m (the last vertex has
     exactly m) and the graph is connected by construction. Sampling is
     by the half-edge multiset, so a vertex is drawn with probability
     proportional to its current degree. *)
  let total_edges = (m * (m + 1) / 2) + ((n - m - 1) * m) in
  let ends = Array.make (max 2 (2 * total_edges)) 0 in
  let fill = ref 0 in
  let edges = ref [] in
  let add_edge u v =
    edges := (u, v) :: !edges;
    ends.(!fill) <- u;
    incr fill;
    ends.(!fill) <- v;
    incr fill
  in
  for u = 0 to m do
    for v = u + 1 to m do
      add_edge u v
    done
  done;
  let chosen = Array.make m (-1) in
  for v = m + 1 to n - 1 do
    let k = ref 0 in
    while !k < m do
      let t = ends.(Random.State.int st !fill) in
      let dup = ref false in
      for j = 0 to !k - 1 do
        if chosen.(j) = t then dup := true
      done;
      if not !dup then begin
        chosen.(!k) <- t;
        incr k
      end
    done;
    (* attach all m edges at once (degrees update between vertices, not
       between the m draws), in sorted target order so port labels are a
       deterministic function of the drawn set *)
    let picks = Array.sub chosen 0 m in
    Array.sort compare picks;
    Array.iter (fun t -> add_edge t v) picks
  done;
  Graph.of_edges ~n (List.rev !edges)

let chung_lu st ~n ~exponent =
  if n < 2 || exponent <= 2.0 then invalid_arg "Generators.chung_lu";
  (* Expected-degree (Chung-Lu) model: weight w_i = (n/(i+1))^(1/(b-1))
     yields a degree power law with exponent b. Each pair {i,j} is an
     edge independently with probability min(1, w_i w_j / sum w). *)
  let p = 1.0 /. (exponent -. 1.0) in
  let w =
    Array.init n (fun i -> (float_of_int n /. float_of_int (i + 1)) ** p)
  in
  let s = Array.fold_left ( +. ) 0.0 w in
  let edges = ref [] in
  for i = n - 1 downto 0 do
    for j = n - 1 downto i + 1 do
      if Random.State.float st 1.0 < w.(i) *. w.(j) /. s then
        edges := (i, j) :: !edges
    done
  done;
  (* The sampled graph may be disconnected; deterministically hang each
     stray component (by its smallest vertex) off vertex 0, the
     largest-weight hub. Cross-component pairs have no edge yet, so no
     duplicates arise. *)
  let parent = Array.init n Fun.id in
  let rec find x =
    if parent.(x) = x then x
    else begin
      let r = find parent.(x) in
      parent.(x) <- r;
      r
    end
  in
  let union u v =
    let a = find u and b = find v in
    if a <> b then parent.(max a b) <- min a b
  in
  List.iter (fun (u, v) -> union u v) !edges;
  for v = 1 to n - 1 do
    if find v <> find 0 then begin
      edges := (0, v) :: !edges;
      union 0 v
    end
  done;
  Graph.of_edges ~n !edges

let n_choose_2 n = n * (n - 1) / 2

let corpus st ~size =
  if size < 8 then invalid_arg "Generators.corpus: need size >= 8";
  let dim =
    (* closest power of two exponent *)
    let rec go d = if 1 lsl (d + 1) > size then d else go (d + 1) in
    go 1
  in
  let side = int_of_float (Float.round (sqrt (float_of_int size))) in
  let side = max 3 side in
  let uca =
    let rec try_arc arc k =
      if k = 0 then None
      else
        match unit_circular_arc st ~n:size ~arc with
        | Some g -> Some g
        | None -> try_arc (Float.min 0.9 (arc *. 1.5)) (k - 1)
    in
    try_arc (4.0 /. float_of_int size) 20
  in
  let base =
    [
      ("path", path size);
      ("cycle", cycle size);
      ("complete", complete size);
      ("star", star size);
      ("wheel", wheel (max 4 size));
      ("hypercube", hypercube dim);
      ("grid", grid side side);
      ("torus", torus side side);
      ("de_bruijn", de_bruijn_like dim);
      ("random_tree", random_tree st size);
      ("caterpillar", caterpillar st ~spine:(max 1 (size / 2)) ~legs:(size - max 1 (size / 2)));
      ("k_tree", k_tree st ~k:3 (max 4 size));
      ("outerplanar", maximal_outerplanar st size);
      ( "random_sparse",
        random_connected st ~n:size ~m:(min (n_choose_2 size) (2 * size)) );
      ( "random_dense",
        random_connected st ~n:size ~m:(min (n_choose_2 size) (size * size / 4)) );
      ("random_regular", random_regular st ~n:(size + (size * 3 mod 2)) ~d:3);
      ("barabasi_albert", barabasi_albert st ~n:size ~m:2);
      ("power_law", chung_lu st ~n:size ~exponent:2.5);
    ]
  in
  match uca with
  | Some g -> base @ [ ("unit_circular_arc", g) ]
  | None -> base
