(** Lemma 1 — counting matrices of constraints.

    [|dM(p,q)| >= d^(pq) / (p! q! (d!)^p)], hence
    [log2 |dM(p,q)| >= pq log2 d - p log2(d!) - q log2 q - p log2 p]
    (up to the floor). Exact big-integer evaluation for verifiable
    parameters, log-space floats for the asymptotic sweeps of
    Theorem 1. *)

val lemma1_bound : p:int -> q:int -> d:int -> Bignat.t
(** [floor(d^(pq) / (p! q! (d!)^p))]. Exact. Requires [d <= 20]
    (so [d!] fits a limb-division step) and [p, q <= 20]. *)

val log2_lemma1_bound : p:int -> q:int -> d:int -> float
(** [pq log2 d - log2 p! - log2 q! - p log2 d!], valid for arbitrary
    magnitudes. May be negative when the bound is vacuous. *)

val total_raw : p:int -> q:int -> d:int -> Bignat.t
(** [d^(pq)] — the number of raw matrices. *)

val holds_exactly :
  ?cap:int -> ?domains:int -> p:int -> q:int -> d:int -> unit -> bool
(** Check Lemma 1 against the exhaustive count of {!Enumerate.count}
    (enumerable parameters only); [cap] and [domains] are passed
    through to the enumeration engine. *)

val full_exact : p:int -> q:int -> d:int -> Bignat.t
(** Exact [|dM(p,q)|] under the {e full} Definition-2 group — row
    permutations, column permutations, and per-row value renamings —
    via Burnside over the wreath-product action
    [(S_d wr S_p) x S_q]:

    for each [(sr, sc)], summing over value permutations row-cycle by
    row-cycle gives
    [prod_R (d!)^(|R|-1) * sum_{tau in S_d} prod_C
       Fix(tau^(lcm(|R|,|C|)/|R|))^gcd(|R|,|C|)],
    divided by [p! q! (d!)^p]. Matches exhaustive enumeration wherever
    enumeration is feasible and the Monte-Carlo estimator elsewhere
    (both tested). Requires [p, q <= 8] and [d <= 8]. *)

val positional_exact : p:int -> q:int -> d:int -> Bignat.t
(** Exact number of classes under the positional (rows + columns)
    variant, by Burnside's lemma over [S_p x S_q]:
    [(1/(p! q!)) sum_{(sr,sc)} d^(sum_{cycles a of sr, b of sc} gcd(|a|,|b|))].
    Agrees with the exhaustive positional count (tested) and gives the
    paper's displayed [|2M(2,2)| = 7]. Requires [p, q <= 8]. *)
