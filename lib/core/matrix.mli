(** Generalized matrices of constraints (Definition 1).

    A [p x q] integer matrix [M = (m_ij)] such that the entries of row
    [i] lie in [{1 .. |union_j {m_ij}|}] — i.e. each row uses a prefix
    alphabet [{1..k_i}] where [k_i] is its number of distinct values.
    Together with vertex sets [A], [B] and arc-naming functions
    [phi_i], such a matrix constrains every routing function of stretch
    at most [s]: the message [a_i -> b_j] must leave [a_i] on the port
    labelled [m_ij]. *)

type t = private {
  p : int;            (** rows = number of constrained vertices *)
  q : int;            (** columns = number of target vertices *)
  entries : int array array;  (** [entries.(i).(j)] is [m_{i+1,j+1}], 1-based values *)
}

val create : int array array -> t
(** Validates shape (rectangular, nonempty) and the prefix-alphabet
    property of every row. *)

val create_relaxed : int array array -> t
(** Validates shape and positivity only — accepts rows whose values are
    not a prefix alphabet (useful as input to
    {!Canonical.canonical}, whose row relabelling restores the
    property). *)

val get : t -> int -> int -> int
(** [get m i j], 0-based, returns the 1-based entry value. *)

val dims : t -> int * int

val row_alphabet : t -> int -> int
(** Number of distinct values in a row (= the row's alphabet size
    [k_i], by the prefix property). *)

val max_entry : t -> int

val equal : t -> t -> bool

val compare_lex : t -> t -> int
(** Row-major lexicographic comparison — the total order whose minimum
    plays the role of the paper's minimal "index".

    {b Stable record-ordering contract.} This order is load-bearing
    beyond canonicalization: corpus files ({!Umrs_store.Corpus}) store
    their records in strictly increasing [compare_lex] order, and the
    sidecar query index ({!Umrs_store.Query}) binary-searches that
    order, so [rank]/[mem]/range answers are only correct if this
    comparison never changes. Treat it as part of the on-disk format:
    any change requires a corpus schema-version bump. *)

val compare_lex_prefix : int array -> t -> int
(** [compare_lex_prefix prefix m] compares a row-major entry prefix
    [m_11, m_12, ...] (length [<= p*q], 1-based values) against the
    first entries of [m], lexicographically. All matrices sharing a
    given prefix form a contiguous run of the [compare_lex] order — the
    fact behind the query engine's range-by-prefix lookups. Raises
    [Invalid_argument] if [prefix] is longer than [p*q]. *)

val index : t -> base:int -> Bignat.t
(** The paper's index: the row-major word [m_11 m_12 ... m_pq] read as
    digits [m_ij - 1] in the given base (must exceed [max_entry m - 1]).
    [compare_lex] agrees with comparing indices at any valid base. *)

val permute_rows : t -> Umrs_graph.Perm.t -> t
(** [permute_rows m sigma]: row [i] of the result is row [sigma(i)] of
    [m]. Result may be relaxed (no property change: rows move intact). *)

val permute_cols : t -> Umrs_graph.Perm.t -> t

val permute_row_entries : t -> int -> Umrs_graph.Perm.t -> t
(** [permute_row_entries m i pi] replaces value [v] by [pi(v-1)+1]
    throughout row [i]; [pi] must be a permutation of the row's
    alphabet [{0..k_i-1}]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
(** Compact one-line form like ["[1 2; 1 1]"]. *)

val of_string : string -> t
(** Parses the [to_string] format (relaxed validation). *)
