(** Canonical representatives of the equivalence [~] (Definition 2).

    Two matrices are equivalent when one maps to the other by a row
    permutation [sigma_r], a column permutation [sigma_c], and per-row
    alphabet permutations [pi_i]. The canonical representative is the
    [compare_lex]-minimal member of the class (the paper's
    minimal-index matrix).

    Exact algorithm: for each of the [q!] column orders, resolve the
    per-row alphabet freedom by first-occurrence relabelling (the unique
    lex-minimal relabelling of a row read left to right), then resolve
    the row freedom by sorting rows lexicographically; take the minimum
    over column orders. Cost [O(q! * p q log p)] — exact in the
    enumerable regime ([q <= 8]). *)

type variant =
  | Full
      (** Definition 2 as stated: row permutations, column permutations,
          and per-row alphabet permutations — the group the Theorem-1
          decoder must quotient out (port labels at each [a_i] are the
          scheme's to choose). *)
  | Positional
      (** Row and column permutations only. The paper's worked example
          of a canonical set displays 7 matrices for [2M(2,2)], which is
          the class count of this variant (the full group gives 3); both
          variants satisfy Lemma 1, whose denominator [(d!)^p] dominates
          either group's row-relabelling factor. See EXPERIMENTS.md. *)

val normalize_row : int array -> int array
(** First-occurrence relabelling: values renamed to [1, 2, ...] in
    order of first appearance — e.g. [3 1 3 2] becomes [1 2 1 3]. The
    result always uses a prefix alphabet. *)

val compare_rows : int -> int array -> int array -> int
(** [compare_rows q a b] compares two length-[q] rows lexicographically
    (monomorphic, early-exit — the comparison the engine is built on). *)

type workspace
(** Reusable scratch state for repeated canonicalization of
    equally-shaped matrices (the enumeration engine's hot path). A
    workspace is single-threaded: share nothing across domains. *)

val workspace : p:int -> q:int -> max_value:int -> workspace
(** [workspace ~p ~q ~max_value] allocates scratch for [p x q] inputs
    whose entries do not exceed [max_value]. *)

val canonical_rows :
  workspace -> variant:variant -> int array array -> int array array
(** [canonical_rows ws ~variant entries] is the canonical form of the
    matrix given as raw rows, computed without per-call allocation and
    with early-exit pruning over column permutations. The result is
    the workspace's internal buffer — valid only until the next call
    on [ws]; copy it to keep it. Rows of [entries] must have length
    [q] and values in [{1..max_value}]. *)

val canonical : ?variant:variant -> Matrix.t -> Matrix.t
(** The class representative (default [Full]). Idempotent; invariant
    under the variant's permutations of the input. Accepts relaxed
    matrices; the [Full] result always has normalized rows. *)

val is_canonical : ?variant:variant -> Matrix.t -> bool

val equivalent : ?variant:variant -> Matrix.t -> Matrix.t -> bool
(** Same equivalence class (compares canonical forms). *)

val random_equivalent : Random.State.t -> Matrix.t -> Matrix.t
(** A uniformly-drawn combination of row, column, and alphabet
    permutations applied to the input — the property-test oracle for
    [canonical]. The input must have normalized rows. *)
