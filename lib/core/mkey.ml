type t =
  | K1 of int
  | K2 of int * int
  | KBig of string

(* Bits needed to represent [n >= 0]; at least 1 so base-1 alphabets
   still consume a digit slot (keeps the layout injective). *)
let bits_for n =
  let rec go b x = if x = 0 then max 1 b else go (b + 1) (x lsr 1) in
  go 0 n

(* Header: p, q, base — 6 bits each. Shapes or bases beyond 63 go to
   the bytes fallback together with oversized payloads. *)
let header_bits = 18

let of_rows ~base rows =
  let p = Array.length rows in
  if p = 0 then invalid_arg "Mkey.of_rows: no rows";
  let q = Array.length rows.(0) in
  if q = 0 then invalid_arg "Mkey.of_rows: no columns";
  if base < 1 then invalid_arg "Mkey.of_rows: base < 1";
  let b = bits_for (base - 1) in
  let total = header_bits + (p * q * b) in
  if p < 64 && q < 64 && base < 64 && total <= 124 then begin
    let w0 = ref 0 and w1 = ref 0 and pos = ref 0 in
    let push v width =
      (if !pos + width <= 62 then w0 := !w0 lor (v lsl !pos)
       else if !pos >= 62 then w1 := !w1 lor (v lsl (!pos - 62))
       else begin
         w0 := !w0 lor ((v lsl !pos) land ((1 lsl 62) - 1));
         w1 := !w1 lor (v lsr (62 - !pos))
       end);
      pos := !pos + width
    in
    push p 6;
    push q 6;
    push base 6;
    for i = 0 to p - 1 do
      let row = rows.(i) in
      if Array.length row <> q then invalid_arg "Mkey.of_rows: ragged rows";
      for j = 0 to q - 1 do
        let x = row.(j) in
        if x < 1 || x > base then
          invalid_arg "Mkey.of_rows: entry outside {1..base}";
        push (x - 1) b
      done
    done;
    if !pos <= 62 then K1 !w0 else K2 (!w0, !w1)
  end
  else begin
    let buf = Buffer.create (16 + (p * q)) in
    Buffer.add_string buf (Printf.sprintf "%d,%d,%d:" p q base);
    Array.iter
      (fun row ->
        if Array.length row <> q then invalid_arg "Mkey.of_rows: ragged rows";
        Array.iter
          (fun x ->
            if x < 1 || x > base then
              invalid_arg "Mkey.of_rows: entry outside {1..base}";
            Buffer.add_string buf (string_of_int x);
            Buffer.add_char buf ';')
          row)
      rows;
    KBig (Buffer.contents buf)
  end

let of_matrix ~base m = of_rows ~base (m : Matrix.t).Matrix.entries

let equal a b =
  match (a, b) with
  | K1 x, K1 y -> x = y
  | K2 (x0, x1), K2 (y0, y1) -> x0 = y0 && x1 = y1
  | KBig x, KBig y -> String.equal x y
  | _ -> false

let compare a b =
  match (a, b) with
  | K1 x, K1 y -> Int.compare x y
  | K2 (x0, x1), K2 (y0, y1) ->
    let c = Int.compare x0 y0 in
    if c <> 0 then c else Int.compare x1 y1
  | KBig x, KBig y -> String.compare x y
  | K1 _, _ -> -1
  | _, K1 _ -> 1
  | K2 _, _ -> -1
  | _, K2 _ -> 1

let hash = function
  | K1 w -> Hashtbl.hash w
  | K2 (w0, w1) -> Hashtbl.hash (w0, w1)
  | KBig s -> Hashtbl.hash s

let is_packed = function K1 _ | K2 _ -> true | KBig _ -> false

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
