open Umrs_graph

(* All injective renamings of a row's distinct values into {1..d},
   applied to the row: returns the list of renamed rows. *)
let row_variants ~d row =
  let distinct = List.sort_uniq compare (Array.to_list row) in
  let k = List.length distinct in
  if k > d then invalid_arg "Orbit: row uses more than d values";
  (* choose an ordered arrangement (v_1..v_k) of targets in {1..d} *)
  let variants = ref [] in
  let rec choose chosen used =
    if List.length chosen = k then begin
      let map = List.combine distinct (List.rev chosen) in
      let renamed = Array.map (fun x -> List.assoc x map) row in
      variants := renamed :: !variants
    end
    else
      for v = 1 to d do
        if not (List.mem v used) then choose (v :: chosen) (v :: used)
      done
  in
  choose [] [];
  !variants

let check_dims m =
  let p, q = Matrix.dims m in
  if p > 4 || q > 4 then invalid_arg "Orbit: keep p, q <= 4";
  (p, q)

(* Orbit elements are deduplicated through bit-packed keys (Mkey)
   built in a reused scratch buffer — no per-element matrix
   allocation, and table operations hash one or two ints instead of a
   nested array. *)
let pack_permuted ~base ~scratch ~q rows sr sc =
  let p = Array.length sr in
  for i = 0 to p - 1 do
    let src = rows.(sr.(i)) and dst = scratch.(i) in
    for j = 0 to q - 1 do
      dst.(j) <- src.(sc.(j))
    done
  done;
  Mkey.of_rows ~base scratch

let size ~d m =
  let p, q = check_dims m in
  if d > 4 then invalid_arg "Orbit: keep d <= 4";
  let seen = Mkey.Tbl.create 256 in
  let scratch = Array.make_matrix p q 0 in
  let variants =
    Array.init p (fun i ->
        row_variants ~d (Array.init q (fun j -> Matrix.get m i j)))
  in
  (* choose a renaming per row, then all row orders, all column orders *)
  let rec rows_choice i acc =
    if i = p then begin
      let rows = Array.of_list (List.rev acc) in
      Perm.iter_all p (fun sr ->
          Perm.iter_all q (fun sc ->
              Mkey.Tbl.replace seen
                (pack_permuted ~base:d ~scratch ~q rows sr sc)
                ()))
    end
    else List.iter (fun r -> rows_choice (i + 1) (r :: acc)) variants.(i)
  in
  rows_choice 0 [];
  Mkey.Tbl.length seen

let size_positional m =
  let p, q = check_dims m in
  let base = Matrix.max_entry m in
  let seen = Mkey.Tbl.create 64 in
  let scratch = Array.make_matrix p q 0 in
  let rows = Array.init p (fun i -> Array.init q (fun j -> Matrix.get m i j)) in
  Perm.iter_all p (fun sr ->
      Perm.iter_all q (fun sc ->
          Mkey.Tbl.replace seen
            (pack_permuted ~base ~scratch ~q rows sr sc)
            ()));
  Mkey.Tbl.length seen

let random_raw st ~p ~q ~d =
  if p < 1 || q < 1 || d < 1 then invalid_arg "Orbit.random_raw";
  Matrix.create_relaxed
    (Array.init p (fun _ ->
         Array.init q (fun _ -> 1 + Random.State.int st d)))

type estimate = { samples : int; mean : float; std_error : float }

let estimate_classes ?(positional = false) st ~samples ~p ~q ~d =
  if samples < 2 then invalid_arg "Orbit.estimate_classes: need >= 2 samples";
  let total = Float.pow (float_of_int d) (float_of_int (p * q)) in
  let xs =
    Array.init samples (fun _ ->
        let m = random_raw st ~p ~q ~d in
        let orbit = if positional then size_positional m else size ~d m in
        total /. float_of_int orbit)
  in
  let mean = Array.fold_left ( +. ) 0.0 xs /. float_of_int samples in
  let var =
    Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 xs
    /. float_of_int (samples - 1)
  in
  { samples; mean; std_error = sqrt (var /. float_of_int samples) }
