(** Exhaustive enumeration of [dM(p,q)] — the canonical representatives
    of all [p x q] matrices with entries in [{1..d}] (the paper's
    notation for the set whose cardinality drives Theorem 1).

    The engine shards the [d^(pq)] digit space across OCaml domains
    ({!Umrs_graph.Parallel.map_ranges}): each shard canonicalizes its
    slice through a private {!Canonical.workspace} (allocation-free,
    pruned) and deduplicates through a private table of bit-packed
    {!Mkey} keys; the per-domain tables are merged and sorted at the
    end, so results are byte-identical for every domain count
    (tested). Only feasible for small parameters; this is the ground
    truth against which Lemma 1's counting bound is tested, and the
    instance generator for the end-to-end Theorem-1 reconstruction
    experiment. *)

val default_cap : int
(** [2^22] — the default guard on [d^(pq)]. *)

val checked_total : ?cap:int -> p:int -> q:int -> d:int -> unit -> int
(** The exact [d^(pq)], after validating parameters and checking it
    against [cap] (default {!default_cap}); raises [Invalid_argument]
    past the cap, with a message naming the offending value. The size
    of the digit space every sharded run (including the corpus store's
    checkpointed builds) is partitioned over. *)

val iter_matrices : p:int -> q:int -> d:int -> (Matrix.t -> unit) -> unit
(** All [d^(pq)] raw matrices (relaxed form), row-major counting
    order. *)

val iter_entries_range :
  p:int -> q:int -> d:int -> lo:int -> hi:int -> (int array array -> unit) -> unit
(** Raw matrices with counting-order indices in [lo, hi)], delivered
    as a reused entries buffer (do not retain or mutate it). The
    allocation-free primitive the shards are built on. *)

val canonical_into :
  ?progress:(done_hi:int -> unit) ->
  ?progress_every:int ->
  tbl:Matrix.t Mkey.Tbl.t ->
  variant:Canonical.variant ->
  p:int -> q:int -> d:int -> lo:int -> hi:int -> unit -> unit
(** Canonicalize every raw matrix with counting-order index in
    [[lo, hi)] and deduplicate the representatives into [tbl] (keyed by
    {!Mkey.of_rows} at base [d]). [progress ~done_hi] fires after every
    [progress_every] (default [2^14]) processed indices — never at
    [hi] itself — reporting that [[lo, done_hi)] is fully processed;
    the corpus store's checkpointing hangs off this hook. [tbl] may be
    pre-populated (resume): existing keys are kept. Thread-safe across
    domains as long as [tbl] is not shared. *)

val merged_sorted : Matrix.t Mkey.Tbl.t array -> Matrix.t list
(** Merge per-shard dedup tables and sort by {!Matrix.compare_lex} —
    the deterministic final step shared by {!canonical_set} and the
    corpus store builder: the result depends only on the union of the
    tables, not on shard boundaries or domain count. *)

val canonical_set :
  ?variant:Canonical.variant ->
  ?cap:int ->
  ?domains:int ->
  p:int -> q:int -> d:int -> unit -> Matrix.t list
(** [dM(p,q)] for entry bound [d], sorted by [Matrix.compare_lex].
    Defaults to the [Full] Definition-2 group; [Positional] reproduces
    the paper's displayed 7-element example for [p = q = d = 2].
    Raises [Invalid_argument] when [d^(pq)] exceeds [cap] (default
    {!default_cap}); the message names the offending value. [domains]
    defaults to {!Umrs_graph.Parallel.default_domains}; the result
    does not depend on it. *)

val count :
  ?variant:Canonical.variant ->
  ?cap:int ->
  ?domains:int ->
  p:int -> q:int -> d:int -> unit -> int
(** [|dM(p,q)|] = length of [canonical_set]. *)

val class_size :
  ?variant:Canonical.variant ->
  ?cap:int ->
  ?domains:int ->
  p:int -> q:int -> d:int -> Matrix.t -> int
(** Number of raw matrices (entries in [{1..d}]) equivalent to the
    given one. Summing over [canonical_set] recovers [d^(pq)]. *)
