(** Exhaustive enumeration of [dM(p,q)] — the canonical representatives
    of all [p x q] matrices with entries in [{1..d}] (the paper's
    notation for the set whose cardinality drives Theorem 1).

    The engine shards the [d^(pq)] digit space across OCaml domains
    ({!Umrs_graph.Parallel.map_ranges}): each shard canonicalizes its
    slice through a private {!Canonical.workspace} (allocation-free,
    pruned) and deduplicates through a private table of bit-packed
    {!Mkey} keys; the per-domain tables are merged and sorted at the
    end, so results are byte-identical for every domain count
    (tested). Only feasible for small parameters; this is the ground
    truth against which Lemma 1's counting bound is tested, and the
    instance generator for the end-to-end Theorem-1 reconstruction
    experiment. *)

val default_cap : int
(** [2^22] — the default guard on [d^(pq)]. *)

val iter_matrices : p:int -> q:int -> d:int -> (Matrix.t -> unit) -> unit
(** All [d^(pq)] raw matrices (relaxed form), row-major counting
    order. *)

val iter_entries_range :
  p:int -> q:int -> d:int -> lo:int -> hi:int -> (int array array -> unit) -> unit
(** Raw matrices with counting-order indices in [lo, hi)], delivered
    as a reused entries buffer (do not retain or mutate it). The
    allocation-free primitive the shards are built on. *)

val canonical_set :
  ?variant:Canonical.variant ->
  ?cap:int ->
  ?domains:int ->
  p:int -> q:int -> d:int -> unit -> Matrix.t list
(** [dM(p,q)] for entry bound [d], sorted by [Matrix.compare_lex].
    Defaults to the [Full] Definition-2 group; [Positional] reproduces
    the paper's displayed 7-element example for [p = q = d = 2].
    Raises [Invalid_argument] when [d^(pq)] exceeds [cap] (default
    {!default_cap}); the message names the offending value. [domains]
    defaults to {!Umrs_graph.Parallel.default_domains}; the result
    does not depend on it. *)

val count :
  ?variant:Canonical.variant ->
  ?cap:int ->
  ?domains:int ->
  p:int -> q:int -> d:int -> unit -> int
(** [|dM(p,q)|] = length of [canonical_set]. *)

val class_size :
  ?variant:Canonical.variant ->
  ?cap:int ->
  ?domains:int ->
  p:int -> q:int -> d:int -> Matrix.t -> int
(** Number of raw matrices (entries in [{1..d}]) equivalent to the
    given one. Summing over [canonical_set] recovers [d^(pq)]. *)
