(** Bit-packed hash keys for constraint matrices.

    The enumeration engine deduplicates canonical representatives
    through a hash table; keying it by [Matrix.to_string] costs a
    string allocation plus character-wise hashing per raw matrix. A
    [p x q] matrix over [{1..base}] needs only
    [p*q*ceil(log2 base)] bits of payload, so for the enumerable
    regime the whole key fits in one or two boxed ints (plus an
    18-bit shape header that makes keys of different [p], [q] or
    [base] distinct). A bytes fallback keeps the key total: packing
    never refuses an input.

    Keys are injective: two matrices with entries in [{1..base}]
    receive equal keys iff they have equal shape and equal entries
    (property-tested across all three representations). *)

type t

val of_rows : base:int -> int array array -> t
(** [of_rows ~base rows] packs a rectangular, non-empty matrix whose
    entries lie in [{1..base}]. Entries outside that range raise
    [Invalid_argument]. *)

val of_matrix : base:int -> Matrix.t -> t
(** [of_rows] on the matrix's entries. Requires
    [Matrix.max_entry m <= base]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val is_packed : t -> bool
(** [true] when the key fits the one- or two-int representation
    (diagnostics for tests and benchmarks). *)

module Tbl : Hashtbl.S with type key = t
