type t = { p : int; q : int; entries : int array array }

let check_shape entries =
  let p = Array.length entries in
  if p = 0 then invalid_arg "Matrix: no rows";
  let q = Array.length entries.(0) in
  if q = 0 then invalid_arg "Matrix: no columns";
  Array.iter
    (fun row ->
      if Array.length row <> q then invalid_arg "Matrix: ragged rows";
      Array.iter
        (fun x -> if x < 1 then invalid_arg "Matrix: entries must be >= 1")
        row)
    entries;
  (p, q)

let distinct_count row =
  let sorted = List.sort_uniq compare (Array.to_list row) in
  List.length sorted

let has_prefix_alphabet row =
  let k = distinct_count row in
  Array.for_all (fun x -> x >= 1 && x <= k) row

let create_relaxed entries =
  let p, q = check_shape entries in
  { p; q; entries = Array.map Array.copy entries }

let create entries =
  let m = create_relaxed entries in
  Array.iteri
    (fun i row ->
      if not (has_prefix_alphabet row) then
        invalid_arg
          (Printf.sprintf
             "Matrix: row %d does not use a prefix alphabet {1..k}" (i + 1)))
    m.entries;
  m

let get m i j =
  if i < 0 || i >= m.p || j < 0 || j >= m.q then invalid_arg "Matrix.get";
  m.entries.(i).(j)

let dims m = (m.p, m.q)

let row_alphabet m i =
  if i < 0 || i >= m.p then invalid_arg "Matrix.row_alphabet";
  distinct_count m.entries.(i)

let max_entry m =
  Array.fold_left
    (fun acc row -> Array.fold_left max acc row)
    0 m.entries

(* Monomorphic comparisons: [equal] sits on the hot path of class-size
   scans (once per raw matrix), where the polymorphic compare on nested
   arrays costs an order of magnitude more than these int loops. *)
let compare_row q (a : int array) (b : int array) =
  let rec go j =
    if j = q then 0
    else
      let x = a.(j) and y = b.(j) in
      if x < y then -1 else if x > y then 1 else go (j + 1)
  in
  go 0

let equal a b =
  a.p = b.p && a.q = b.q
  &&
  let rec rows i =
    i = a.p || (compare_row a.q a.entries.(i) b.entries.(i) = 0 && rows (i + 1))
  in
  rows 0

let compare_lex a b =
  if a.p <> b.p || a.q <> b.q then invalid_arg "Matrix.compare_lex: shape";
  let rec rows i =
    if i = a.p then 0
    else
      let c = compare_row a.q a.entries.(i) b.entries.(i) in
      if c <> 0 then c else rows (i + 1)
  in
  rows 0

let compare_lex_prefix prefix m =
  let len = Array.length prefix in
  if len > m.p * m.q then invalid_arg "Matrix.compare_lex_prefix: too long";
  let rec go k =
    if k = len then 0
    else
      let x = prefix.(k) and y = m.entries.(k / m.q).(k mod m.q) in
      if x < y then -1 else if x > y then 1 else go (k + 1)
  in
  go 0

let index m ~base =
  if base <= max_entry m - 1 then invalid_arg "Matrix.index: base too small";
  let acc = ref Bignat.zero in
  Array.iter
    (fun row ->
      Array.iter
        (fun x -> acc := Bignat.add (Bignat.mul_int !acc base) (Bignat.of_int (x - 1)))
        row)
    m.entries;
  !acc

let permute_rows m sigma =
  if Array.length sigma <> m.p then invalid_arg "Matrix.permute_rows";
  { m with entries = Array.init m.p (fun i -> Array.copy m.entries.(sigma.(i))) }

let permute_cols m sigma =
  if Array.length sigma <> m.q then invalid_arg "Matrix.permute_cols";
  {
    m with
    entries =
      Array.map (fun row -> Array.init m.q (fun j -> row.(sigma.(j)))) m.entries;
  }

let permute_row_entries m i pi =
  if i < 0 || i >= m.p then invalid_arg "Matrix.permute_row_entries: row";
  let k = distinct_count m.entries.(i) in
  if Array.length pi <> k || not (Umrs_graph.Perm.is_valid pi) then
    invalid_arg "Matrix.permute_row_entries: need a permutation of the alphabet";
  let entries =
    Array.mapi
      (fun r row ->
        if r <> i then Array.copy row
        else
          Array.map
            (fun v ->
              if v > k then
                invalid_arg "Matrix.permute_row_entries: row is not normalized";
              pi.(v - 1) + 1)
            row)
      m.entries
  in
  { m with entries }

let pp fmt m =
  Format.fprintf fmt "@[<v>";
  Array.iteri
    (fun i row ->
      if i > 0 then Format.fprintf fmt "@,";
      Array.iteri
        (fun j x ->
          if j > 0 then Format.pp_print_char fmt ' ';
          Format.pp_print_int fmt x)
        row)
    m.entries;
  Format.fprintf fmt "@]"

let to_string m =
  let row_str row =
    String.concat " " (List.map string_of_int (Array.to_list row))
  in
  "[" ^ String.concat "; " (List.map row_str (Array.to_list m.entries)) ^ "]"

let of_string s =
  let s = String.trim s in
  let len = String.length s in
  if len < 2 || s.[0] <> '[' || s.[len - 1] <> ']' then
    invalid_arg "Matrix.of_string: expected [ ... ]";
  let body = String.sub s 1 (len - 2) in
  let rows = String.split_on_char ';' body in
  let parse_row r =
    String.split_on_char ' ' (String.trim r)
    |> List.filter (fun x -> x <> "")
    |> List.map int_of_string
    |> Array.of_list
  in
  create_relaxed (Array.of_list (List.map parse_row rows))
