let total_raw ~p ~q ~d =
  if p < 1 || q < 1 || d < 1 then invalid_arg "Count.total_raw";
  Bignat.pow (Bignat.of_int d) (p * q)

let lemma1_bound ~p ~q ~d =
  if p > 20 || q > 20 || d > 20 then
    invalid_arg "Count.lemma1_bound: use log2_lemma1_bound at this scale";
  let numerator = total_raw ~p ~q ~d in
  let denominator =
    Bignat.mul
      (Bignat.mul (Bignat.factorial p) (Bignat.factorial q))
      (Bignat.pow (Bignat.factorial d) p)
  in
  Bignat.div numerator denominator

let log2_fact n = Umrs_bitcode.Rank.log2_factorial n

let log2_lemma1_bound ~p ~q ~d =
  if p < 1 || q < 1 || d < 1 then invalid_arg "Count.log2_lemma1_bound";
  (float_of_int (p * q) *. (Float.log (float_of_int d) /. Float.log 2.0))
  -. log2_fact p -. log2_fact q
  -. (float_of_int p *. log2_fact d)

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let rec gcd_ a b = if b = 0 then a else gcd_ b (a mod b)
let lcm_ a b = a / gcd_ a b * b

(* integer partitions of n, each as a descending list *)
let partitions n =
  let rec go n maxpart =
    if n = 0 then [ [] ]
    else
      List.concat_map
        (fun k -> List.map (fun rest -> k :: rest) (go (n - k) k))
        (List.init (min n maxpart) (fun i -> i + 1) |> List.rev)
  in
  go n n

(* number of permutations of S_n with the given cycle type *)
let perms_with_type n lambda =
  let denom =
    let part_product = List.fold_left ( * ) 1 lambda in
    let mult_fact =
      let tbl = Hashtbl.create 8 in
      List.iter
        (fun a ->
          Hashtbl.replace tbl a
            (1 + Option.value ~default:0 (Hashtbl.find_opt tbl a)))
        lambda;
      Hashtbl.fold
        (fun _ m acc -> acc * Umrs_graph.Perm.factorial m)
        tbl 1
    in
    part_product * mult_fact
  in
  Umrs_graph.Perm.factorial n / denom

(* Fix(tau^k) for tau of cycle type nu: cycles of length c contribute c
   fixed points when c divides k *)
let fix_power_of_type nu k =
  List.fold_left (fun acc c -> if k mod c = 0 then acc + c else acc) 0 nu

let full_exact ~p ~q ~d =
  if p < 1 || q < 1 || d < 1 then invalid_arg "Count.full_exact";
  if p > 10 || q > 10 || d > 10 then
    invalid_arg "Count.full_exact: keep p, q, d <= 10";
  let fact_d = Umrs_graph.Perm.factorial d in
  let parts_p = partitions p
  and parts_q = partitions q
  and parts_d = partitions d in
  let counts_d = List.map (fun nu -> (nu, perms_with_type d nu)) parts_d in
  (* per (row-cycle length a, column type mu):
     S(a, mu) = sum_{tau in S_d} prod_{b in mu}
                  Fix(tau^(lcm(a,b)/a))^gcd(a,b) *)
  let s_factor a mu =
    List.fold_left
      (fun acc (nu, cnt) ->
        let term = ref Bignat.one in
        List.iter
          (fun b ->
            let k = lcm_ a b / a in
            let fix = fix_power_of_type nu k in
            if fix = 0 then term := Bignat.zero
            else
              for _ = 1 to gcd_ a b do
                term := Bignat.mul_int !term fix
              done)
          mu;
        Bignat.add acc (Bignat.mul_int !term cnt))
      Bignat.zero counts_d
  in
  let total = ref Bignat.zero in
  List.iter
    (fun lambda ->
      let cl = perms_with_type p lambda in
      List.iter
        (fun mu ->
          let cm = perms_with_type q mu in
          let contrib = ref (Bignat.of_int cl) in
          contrib := Bignat.mul_int !contrib cm;
          List.iter
            (fun a ->
              let factor = ref (s_factor a mu) in
              for _ = 1 to a - 1 do
                factor := Bignat.mul_int !factor fact_d
              done;
              contrib := Bignat.mul !contrib !factor)
            lambda;
          total := Bignat.add !total !contrib)
        parts_q)
    parts_p;
  (* divide by |G| = p! q! (d!)^p, checking exactness *)
  let order =
    let o = ref (Bignat.of_int (Umrs_graph.Perm.factorial p)) in
    o := Bignat.mul_int !o (Umrs_graph.Perm.factorial q);
    for _ = 1 to p do
      o := Bignat.mul_int !o fact_d
    done;
    !o
  in
  let quotient = Bignat.div !total order in
  if not (Bignat.equal (Bignat.mul quotient order) !total) then
    invalid_arg "Count.full_exact: internal error (inexact division)";
  quotient

let positional_exact ~p ~q ~d =
  if p < 1 || q < 1 || d < 1 then invalid_arg "Count.positional_exact";
  if p > 10 || q > 10 then
    invalid_arg "Count.positional_exact: keep p, q <= 10";
  let open Umrs_graph in
  let total = ref Bignat.zero in
  List.iter
    (fun lambda ->
      let cl = perms_with_type p lambda in
      List.iter
        (fun mu ->
          let cm = perms_with_type q mu in
          let grid_cycles =
            List.fold_left
              (fun acc a ->
                List.fold_left (fun acc b -> acc + gcd a b) acc mu)
              0 lambda
          in
          let term = Bignat.pow (Bignat.of_int d) grid_cycles in
          let term = Bignat.mul_int term cl in
          let term = Bignat.mul_int term cm in
          total := Bignat.add !total term)
        (partitions q))
    (partitions p);
  let t, r = Bignat.div_int !total (Perm.factorial p) in
  assert (r = 0);
  let t, r = Bignat.div_int t (Perm.factorial q) in
  assert (r = 0);
  t

let holds_exactly ?cap ?domains ~p ~q ~d () =
  let exact = Enumerate.count ?cap ?domains ~p ~q ~d () in
  match Bignat.to_int_opt (lemma1_bound ~p ~q ~d) with
  | Some bound -> bound <= exact
  | None -> false (* a bound beyond max_int cannot be below an int count *)
