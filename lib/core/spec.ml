let definition1_figure1 () =
  let t = Petersen.instance () in
  Petersen.verify t
  && Petersen.unique_shortest_paths t.Petersen.graph
  &&
  let p, _ = Matrix.dims t.Petersen.matrix in
  List.for_all
    (fun i -> Matrix.row_alphabet t.Petersen.matrix i = 3)
    (List.init p Fun.id)

let lemma1 ~p ~q ~d = Count.holds_exactly ~p ~q ~d ()

let lemma2 m =
  let p, q = Matrix.dims m in
  let d = Matrix.max_entry m in
  let t = Cgraph.of_matrix m in
  let g = t.Cgraph.graph in
  Umrs_graph.Graph.order g <= Cgraph.order_bound ~p ~q ~d
  && Umrs_graph.Graph.is_connected g
  && (match Verify.check_cgraph t ~bound:Verify.below_two with
     | Ok () -> true
     | Error _ -> false)

let lemma2_universal ~p ~q ~d =
  List.for_all lemma2 (Enumerate.canonical_set ~p ~q ~d ())

let theorem1_mechanism ~p ~q ~d =
  let plain =
    Reconstruct.run_experiment ~p ~q ~d ~scheme:Umrs_routing.Table_scheme.build
      ()
  in
  let padded =
    Reconstruct.run_experiment
      ~pad_to:(2 * Cgraph.order_bound ~p ~q ~d)
      ~p ~q ~d ~scheme:Umrs_routing.Table_scheme.build ()
  in
  plain.Reconstruct.injective && plain.Reconstruct.all_forced
  && plain.Reconstruct.all_recovered && padded.Reconstruct.injective
  && padded.Reconstruct.all_forced && padded.Reconstruct.all_recovered

let theorem1_asymptotics ~n ~eps =
  match Lower_bound.theorem1 ~n ~eps with
  | b ->
    let b2 = Lower_bound.theorem1 ~n:(2 * n) ~eps in
    b.Lower_bound.bits_per_router > 0.0
    && b.Lower_bound.bits_per_router <= b.Lower_bound.table_upper_bits
    && b2.Lower_bound.ratio >= 0.8 *. b.Lower_bound.ratio
  | exception Invalid_argument _ -> false

let global_bound_quadratic ~n =
  let b = Lower_bound.global_theorem ~n in
  b.Lower_bound.g_bits_total >= float_of_int n *. float_of_int n /. 32.0

let table1_consistency ~n =
  List.for_all
    (fun r ->
      r.Bounds_table.local_lower.Bounds_table.bits ~n
      <= r.Bounds_table.local_upper.Bounds_table.bits ~n +. 1.0
      && r.Bounds_table.global_lower.Bounds_table.bits ~n
         <= r.Bounds_table.global_upper.Bounds_table.bits ~n +. 1.0)
    Bounds_table.rows

let stretch_two_phase_transition () =
  let m = Matrix.create [| [| 1; 2; 1 |]; [| 1; 1; 2 |] |] in
  let t = Cgraph.of_matrix m in
  Verify.forced_fraction t ~bound:Verify.below_two = 1.0
  && Verify.forced_fraction t ~bound:Verify.shortest_paths_only = 1.0
  && Verify.forced_fraction t
       ~bound:{ Verify.num = 2; den = 1; strict = false }
     < 1.0

let all () =
  [
    ("Definition 1 on Figure 1 (Petersen)", definition1_figure1 ());
    ("Lemma 1 at (2,2,3)", lemma1 ~p:2 ~q:2 ~d:3);
    ("Lemma 1 at (2,3,2)", lemma1 ~p:2 ~q:3 ~d:2);
    ("Lemma 1 at (3,3,2)", lemma1 ~p:3 ~q:3 ~d:2);
    ("Lemma 2 over dM(2,2) (d=3)", lemma2_universal ~p:2 ~q:2 ~d:3);
    ("Lemma 2 over dM(2,3) (d=2)", lemma2_universal ~p:2 ~q:3 ~d:2);
    ("Theorem 1 mechanism at (2,2,3)", theorem1_mechanism ~p:2 ~q:2 ~d:3);
    ("Theorem 1 mechanism at (2,3,2)", theorem1_mechanism ~p:2 ~q:3 ~d:2);
    ("Theorem 1 asymptotics (n=16384, eps=0.5)",
     theorem1_asymptotics ~n:16384 ~eps:0.5);
    ("Global Omega(n^2) bound (n=4096)", global_bound_quadratic ~n:4096);
    ("Table 1 consistency (n=4096)", table1_consistency ~n:4096);
    ("Stretch-2 phase transition", stretch_two_phase_transition ());
  ]
