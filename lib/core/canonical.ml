open Umrs_graph

type variant = Full | Positional

let normalize_row row =
  let next = ref 0 in
  let rename = Hashtbl.create 8 in
  Array.map
    (fun v ->
      match Hashtbl.find_opt rename v with
      | Some r -> r
      | None ->
        incr next;
        Hashtbl.add rename v !next;
        !next)
    row

(* ------------------------------------------------------------------ *)
(* Workspace-based canonicalization.

   The exact algorithm is unchanged from the seed (for each of the q!
   column orders: first-occurrence-relabel each row, sort rows, keep
   the row-major lexicographic minimum), but the enumeration engine
   calls it d^(pq) times, so the inner loop is rewritten to be
   allocation-free and to abandon losing column orders early:

   - all candidate rows are built into scratch buffers owned by a
     reusable workspace; per-row relabelling uses a stamped rename
     array instead of a fresh Hashtbl per row;
   - the row-sorting + comparison steps are fused into a selection
     loop: the k-th smallest candidate row is compared against row k
     of the best candidate as soon as it is selected, so a column
     permutation is abandoned at the first row that exceeds the
     incumbent (the common case: most permutations lose on row 0). *)
(* ------------------------------------------------------------------ *)

type workspace = {
  ws_p : int;
  ws_q : int;
  scratch : int array array; (* candidate rows under the current sigma_c *)
  best : int array array;    (* incumbent minimal candidate *)
  rename : int array;        (* value -> relabelled value, stamp-guarded *)
  stamp : int array;
  mutable clock : int;
  used : bool array;         (* selection flags over scratch rows *)
  mutable has_best : bool;
}

let workspace ~p ~q ~max_value =
  if p < 1 || q < 1 || max_value < 1 then invalid_arg "Canonical.workspace";
  {
    ws_p = p;
    ws_q = q;
    scratch = Array.make_matrix p q 0;
    best = Array.make_matrix p q 0;
    rename = Array.make (max_value + 1) 0;
    stamp = Array.make (max_value + 1) (-1);
    clock = 0;
    used = Array.make p false;
    has_best = false;
  }

let compare_rows q (a : int array) (b : int array) =
  let rec go j =
    if j = q then 0
    else
      let x = a.(j) and y = b.(j) in
      if x < y then -1 else if x > y then 1 else go (j + 1)
  in
  go 0

let fill_candidate ws ~variant entries sigma_c =
  let p = ws.ws_p and q = ws.ws_q in
  for i = 0 to p - 1 do
    let src = entries.(i) and dst = ws.scratch.(i) in
    match variant with
    | Positional ->
      for j = 0 to q - 1 do
        dst.(j) <- src.(sigma_c.(j))
      done
    | Full ->
      ws.clock <- ws.clock + 1;
      let c = ws.clock in
      let next = ref 0 in
      for j = 0 to q - 1 do
        let v = src.(sigma_c.(j)) in
        if ws.stamp.(v) <> c then begin
          incr next;
          ws.stamp.(v) <- c;
          ws.rename.(v) <- !next
        end;
        dst.(j) <- ws.rename.(v)
      done
  done

(* Index of the lexicographically smallest unused scratch row. *)
let select_min ws =
  let p = ws.ws_p and q = ws.ws_q in
  let m = ref (-1) in
  for i = 0 to p - 1 do
    if
      (not ws.used.(i))
      && (!m < 0 || compare_rows q ws.scratch.(i) ws.scratch.(!m) < 0)
    then m := i
  done;
  !m

let consider ws =
  let p = ws.ws_p and q = ws.ws_q in
  Array.fill ws.used 0 p false;
  if not ws.has_best then begin
    for k = 0 to p - 1 do
      let m = select_min ws in
      ws.used.(m) <- true;
      Array.blit ws.scratch.(m) 0 ws.best.(k) 0 q
    done;
    ws.has_best <- true
  end
  else begin
    let k = ref 0 and verdict = ref 0 in
    while !verdict = 0 && !k < p do
      let m = select_min ws in
      let c = compare_rows q ws.scratch.(m) ws.best.(!k) in
      if c > 0 then verdict := 1 (* prune: candidate already exceeds best *)
      else begin
        ws.used.(m) <- true;
        if c < 0 then begin
          (* strictly better: adopt from row k onward, no more compares *)
          verdict := -1;
          Array.blit ws.scratch.(m) 0 ws.best.(!k) 0 q
        end
        else incr k
      end
    done;
    if !verdict = -1 then
      for k' = !k + 1 to p - 1 do
        let m = select_min ws in
        ws.used.(m) <- true;
        Array.blit ws.scratch.(m) 0 ws.best.(k') 0 q
      done
  end

let canonical_rows ws ~variant entries =
  if Array.length entries <> ws.ws_p then
    invalid_arg "Canonical.canonical_rows: row count mismatch";
  ws.has_best <- false;
  Perm.iter_all ws.ws_q (fun sigma_c ->
      fill_candidate ws ~variant entries sigma_c;
      consider ws);
  ws.best

let canonical ?(variant = Full) m =
  let p, q = Matrix.dims m in
  let ws = workspace ~p ~q ~max_value:(Matrix.max_entry m) in
  let best = canonical_rows ws ~variant (m : Matrix.t).Matrix.entries in
  match variant with
  | Full -> Matrix.create best
  | Positional -> Matrix.create_relaxed best

let is_canonical ?variant m = Matrix.equal m (canonical ?variant m)

let equivalent ?variant a b =
  let pa, qa = Matrix.dims a and pb, qb = Matrix.dims b in
  pa = pb && qa = qb
  && Matrix.equal (canonical ?variant a) (canonical ?variant b)

let random_equivalent st m =
  let p, q = Matrix.dims m in
  let m = Matrix.permute_rows m (Perm.random st p) in
  let m = Matrix.permute_cols m (Perm.random st q) in
  let rec per_row m i =
    if i >= p then m
    else begin
      let k = Matrix.row_alphabet m i in
      per_row (Matrix.permute_row_entries m i (Perm.random st k)) (i + 1)
    end
  in
  per_row m 0
