open Umrs_graph

(* Overflow-safe power with a cap: returns [cap + 1] as soon as the
   true value exceeds [cap]. *)
let pow_capped b e ~cap =
  if e < 0 then invalid_arg "pow_capped";
  let rec go acc e =
    if e = 0 then acc
    else if acc > cap / b then cap + 1
    else go (acc * b) (e - 1)
  in
  go 1 e

let default_cap = 1 lsl 22

(* The exact d^(pq), after checking it against the cap. The error
   message names the offending value so callers know how far over the
   cap the instance is (and that ?cap can raise it). *)
let checked_total ?(cap = default_cap) ~p ~q ~d () =
  if p < 1 || q < 1 || d < 1 then invalid_arg "Enumerate: p, q, d must be >= 1";
  let cells = p * q in
  let total = pow_capped d cells ~cap in
  if total > cap then
    invalid_arg
      (Printf.sprintf
         "Enumerate: d^(pq) = %d^%d = %s exceeds the enumeration cap %d \
          (pass ~cap to raise it)"
         d cells
         (Bignat.to_string (Bignat.pow (Bignat.of_int d) cells))
         cap);
  total

(* Iterate raw matrices with indices in [lo, hi) of the row-major
   counting order (cell (0,0) is the most significant digit). The
   entries buffer is owned by the iterator and reused across calls —
   [f] must not retain or mutate it. *)
let iter_entries_range ~p ~q ~d ~lo ~hi f =
  let cells = p * q in
  let entries = Array.make_matrix p q 0 in
  let r = ref lo in
  for c = cells - 1 downto 0 do
    entries.(c / q).(c mod q) <- (!r mod d) + 1;
    r := !r / d
  done;
  let bump () =
    let c = ref (cells - 1) in
    let continue = ref true in
    while !continue && !c >= 0 do
      let i = !c / q and j = !c mod q in
      if entries.(i).(j) < d then begin
        entries.(i).(j) <- entries.(i).(j) + 1;
        continue := false
      end
      else begin
        entries.(i).(j) <- 1;
        decr c
      end
    done
  in
  for _ = lo to hi - 1 do
    f entries;
    bump ()
  done

let iter_matrices ~p ~q ~d f =
  if p < 1 || q < 1 || d < 1 then invalid_arg "Enumerate.iter_matrices";
  let total = pow_capped d (p * q) ~cap:(max_int / 2) in
  iter_entries_range ~p ~q ~d ~lo:0 ~hi:total (fun entries ->
      f (Matrix.create_relaxed entries))

let matrix_of_rows ~variant rows =
  match (variant : Canonical.variant) with
  | Canonical.Full -> Matrix.create rows
  | Canonical.Positional -> Matrix.create_relaxed rows

(* One shard of the digit space: canonicalize every raw matrix in
   [lo, hi) through a private workspace and deduplicate into the given
   table of packed keys. Thread-safe by construction as long as [tbl]
   (and the progress callback's state) is private to the caller.
   [progress] fires after every [progress_every] processed indices
   with the exclusive position reached — the hook the corpus store's
   checkpointing hangs off. *)
let canonical_into ?progress ?(progress_every = 1 lsl 14) ~tbl ~variant ~p ~q
    ~d ~lo ~hi () =
  if progress_every < 1 then invalid_arg "Enumerate.canonical_into: progress_every";
  let ws = Canonical.workspace ~p ~q ~max_value:d in
  let pos = ref lo in
  let next_tick =
    ref (match progress with None -> max_int | Some _ -> lo + progress_every)
  in
  iter_entries_range ~p ~q ~d ~lo ~hi (fun entries ->
      let best = Canonical.canonical_rows ws ~variant entries in
      let key = Mkey.of_rows ~base:d best in
      if not (Mkey.Tbl.mem tbl key) then
        Mkey.Tbl.add tbl key (matrix_of_rows ~variant best);
      incr pos;
      if !pos >= !next_tick && !pos < hi then begin
        (match progress with Some f -> f ~done_hi:!pos | None -> ());
        next_tick := !pos + progress_every
      end)

let shard_canonical ~variant ~p ~q ~d ~lo ~hi =
  let tbl = Mkey.Tbl.create 256 in
  canonical_into ~tbl ~variant ~p ~q ~d ~lo ~hi ();
  tbl

(* Per-domain tables hold identical representatives for classes seen
   by several shards; merging keeps one of each. The final sort makes
   the output independent of shard boundaries and domain count. *)
let merged_sorted tables =
  let merged = Mkey.Tbl.create 256 in
  Array.iter
    (fun t ->
      Mkey.Tbl.iter
        (fun k v -> if not (Mkey.Tbl.mem merged k) then Mkey.Tbl.add merged k v)
        t)
    tables;
  Mkey.Tbl.fold (fun _ v acc -> v :: acc) merged []
  |> List.sort Matrix.compare_lex

let canonical_set ?(variant = Canonical.Full) ?cap ?domains ~p ~q ~d () =
  let total = checked_total ?cap ~p ~q ~d () in
  let t0 = if Telemetry.enabled () then Telemetry.now () else 0.0 in
  if Telemetry.enabled () then
    Telemetry.emit "enumerate.start"
      [ ("p", Telemetry.Int p); ("q", Telemetry.Int q); ("d", Telemetry.Int d);
        ("total", Telemetry.Int total) ];
  let tables =
    Parallel.map_ranges ?domains total (fun ~lo ~hi ->
        let tbl = shard_canonical ~variant ~p ~q ~d ~lo ~hi in
        if Telemetry.enabled () then
          Telemetry.emit "enumerate.shard"
            [ ("lo", Telemetry.Int lo); ("hi", Telemetry.Int hi);
              ("classes", Telemetry.Int (Mkey.Tbl.length tbl)) ];
        tbl)
  in
  let sorted = merged_sorted tables in
  if Telemetry.enabled () then
    Telemetry.emit "enumerate.done"
      [ ("p", Telemetry.Int p); ("q", Telemetry.Int q); ("d", Telemetry.Int d);
        ("classes", Telemetry.Int (List.length sorted));
        ("seconds", Telemetry.Float (Telemetry.now () -. t0)) ];
  sorted

let count ?variant ?cap ?domains ~p ~q ~d () =
  List.length (canonical_set ?variant ?cap ?domains ~p ~q ~d ())

let class_size ?(variant = Canonical.Full) ?cap ?domains ~p ~q ~d m =
  let total = checked_total ?cap ~p ~q ~d () in
  let target = (Canonical.canonical ~variant m : Matrix.t).Matrix.entries in
  let counts =
    Parallel.map_ranges ?domains total (fun ~lo ~hi ->
        let ws = Canonical.workspace ~p ~q ~max_value:d in
        let n = ref 0 in
        iter_entries_range ~p ~q ~d ~lo ~hi (fun entries ->
            let best = Canonical.canonical_rows ws ~variant entries in
            let equal =
              let rec rows i =
                i = p
                || Canonical.compare_rows q best.(i) target.(i) = 0
                   && rows (i + 1)
              in
              rows 0
            in
            if equal then incr n);
        !n)
  in
  Array.fold_left ( + ) 0 counts
