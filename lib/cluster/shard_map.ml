module Wire = Umrs_server.Wire
module Corpus = Umrs_store.Corpus
module Io = Umrs_fault.Io

let magic = "UMRSSMAP"
let schema_version = 1
let header_bytes = 22

let build ~source ~version ~pieces ~endpoints =
  let n = Array.length pieces in
  if n = 0 then invalid_arg "Shard_map.build: no pieces";
  if Array.length endpoints <> n then
    invalid_arg "Shard_map.build: one endpoint group per piece required";
  let shards =
    Array.map2
      (fun pc (primary, replicas) ->
        { Wire.sh_lo = pc.Umrs_store.Shard.pc_lo;
          sh_hi = pc.Umrs_store.Shard.pc_hi;
          sh_key = pc.Umrs_store.Shard.pc_key;
          sh_primary = primary; sh_replicas = replicas })
      pieces endpoints
  in
  let sm =
    { Wire.sm_version = version;
      sm_corpus_version = source.Corpus.version;
      sm_variant = source.Corpus.variant;
      sm_p = source.Corpus.p; sm_q = source.Corpus.q; sm_d = source.Corpus.d;
      sm_count = source.Corpus.count; sm_checksum = source.Corpus.checksum;
      sm_shards = shards }
  in
  match Wire.validate_shard_map sm with
  | Ok () -> sm
  | Error m -> invalid_arg ("Shard_map.build: " ^ m)

let save ~path sm =
  let payload = Wire.shard_map_to_bytes sm in
  let hdr = Bytes.create header_bytes in
  Bytes.blit_string magic 0 hdr 0 8;
  Bytes.set_uint16_le hdr 8 schema_version;
  Bytes.set_int32_le hdr 10 (Int32.of_int (Bytes.length payload));
  Bytes.set_int64_le hdr 14 (Corpus.fnv64 Corpus.fnv64_seed payload);
  (* tmp + fsync + rename + dir fsync: the map is either the old
     topology or the new one, never a torn hybrid *)
  let tmp = path ^ ".tmp" in
  let o = Io.open_out tmp in
  (try
     Io.output_bytes o hdr;
     Io.output_bytes o payload;
     Io.fsync o;
     Io.close o
   with e ->
     Io.close_noerr o;
     raise e);
  Io.rename ~src:tmp ~dst:path;
  Io.fsync_dir (Filename.dirname path)

let load ~path =
  match In_channel.open_bin path with
  | exception Sys_error m -> Error m
  | ic ->
    let b = Bytes.of_string (In_channel.input_all ic) in
    In_channel.close ic;
    if Bytes.length b < header_bytes then Error "shard map file too short"
    else if Bytes.sub_string b 0 8 <> magic then
      Error "not a shard map file (bad magic)"
    else begin
      let sv = Bytes.get_uint16_le b 8 in
      if sv <> schema_version then
        Error (Printf.sprintf "unsupported shard map schema %d" sv)
      else begin
        let len = Int32.to_int (Bytes.get_int32_le b 10) in
        if len < 0 || Bytes.length b <> header_bytes + len then
          Error "shard map payload length mismatch"
        else begin
          let payload = Bytes.sub b header_bytes len in
          if
            Bytes.get_int64_le b 14
            <> Corpus.fnv64 Corpus.fnv64_seed payload
          then Error "shard map checksum mismatch"
          else
            match Wire.shard_map_of_bytes payload with
            | exception Invalid_argument m -> Error m
            | sm -> (
              match Wire.validate_shard_map sm with
              | Error m -> Error m
              | Ok () -> Ok sm)
        end
      end
    end
