module Wire = Umrs_server.Wire
module Corpus = Umrs_store.Corpus
module Io = Umrs_fault.Io

let magic = "UMRSSMAP"
let schema_version = 1
let header_bytes = 22

let build ~source ~version ~pieces ~endpoints =
  let n = Array.length pieces in
  if n = 0 then invalid_arg "Shard_map.build: no pieces";
  if Array.length endpoints <> n then
    invalid_arg "Shard_map.build: one endpoint group per piece required";
  let shards =
    Array.map2
      (fun pc (primary, replicas) ->
        { Wire.sh_lo = pc.Umrs_store.Shard.pc_lo;
          sh_hi = pc.Umrs_store.Shard.pc_hi;
          sh_key = pc.Umrs_store.Shard.pc_key;
          sh_primary = primary; sh_replicas = replicas })
      pieces endpoints
  in
  let sm =
    { Wire.sm_version = version;
      sm_corpus_version = source.Corpus.version;
      sm_variant = source.Corpus.variant;
      sm_p = source.Corpus.p; sm_q = source.Corpus.q; sm_d = source.Corpus.d;
      sm_count = source.Corpus.count; sm_checksum = source.Corpus.checksum;
      sm_shards = shards }
  in
  match Wire.validate_shard_map sm with
  | Ok () -> sm
  | Error m -> invalid_arg ("Shard_map.build: " ^ m)

let save ~path sm =
  let payload = Wire.shard_map_to_bytes sm in
  let hdr = Bytes.create header_bytes in
  Bytes.blit_string magic 0 hdr 0 8;
  Bytes.set_uint16_le hdr 8 schema_version;
  Bytes.set_int32_le hdr 10 (Int32.of_int (Bytes.length payload));
  Bytes.set_int64_le hdr 14 (Corpus.fnv64 Corpus.fnv64_seed payload);
  (* tmp + fsync + rename + dir fsync: the map is either the old
     topology or the new one, never a torn hybrid *)
  let tmp = path ^ ".tmp" in
  let o = Io.open_out tmp in
  (try
     Io.output_bytes o hdr;
     Io.output_bytes o payload;
     Io.fsync o;
     Io.close o
   with e ->
     Io.close_noerr o;
     raise e);
  Io.rename ~src:tmp ~dst:path;
  Io.fsync_dir (Filename.dirname path)

let load ~path =
  (* Every verdict names the file and the field that failed: a map
     file surfaces in error reports from nodes that did not write it,
     so "checksum mismatch" without a path is a dead end for the
     operator holding three data dirs. *)
  let err field msg =
    Error (Printf.sprintf "%s: shard map %s: %s" path field msg)
  in
  match In_channel.open_bin path with
  | exception Sys_error m -> Error m
  | ic ->
    let b = Bytes.of_string (In_channel.input_all ic) in
    In_channel.close ic;
    if Bytes.length b < header_bytes then
      err "header"
        (Printf.sprintf "file is %d bytes, header needs %d" (Bytes.length b)
           header_bytes)
    else if Bytes.sub_string b 0 8 <> magic then
      err "magic"
        (Printf.sprintf "%S is not %S — not a shard map file"
           (Bytes.sub_string b 0 8) magic)
    else begin
      let sv = Bytes.get_uint16_le b 8 in
      if sv <> schema_version then
        err "schema"
          (Printf.sprintf "version %d unsupported (this build reads %d)" sv
             schema_version)
      else begin
        let len = Int32.to_int (Bytes.get_int32_le b 10) in
        if len < 0 || Bytes.length b <> header_bytes + len then
          err "payload length"
            (Printf.sprintf "header says %d bytes, file carries %d" len
               (Bytes.length b - header_bytes))
        else begin
          let payload = Bytes.sub b header_bytes len in
          let got = Corpus.fnv64 Corpus.fnv64_seed payload in
          let want = Bytes.get_int64_le b 14 in
          if want <> got then
            err "checksum"
              (Printf.sprintf "header %Lx, payload hashes to %Lx" want got)
          else
            match Wire.shard_map_of_bytes payload with
            | exception Invalid_argument m -> err "payload" m
            | sm -> (
              match Wire.validate_shard_map sm with
              | Error m -> err "topology" m
              | Ok () -> Ok sm)
        end
      end
    end
