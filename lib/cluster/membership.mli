(** Cluster node agent: join, heartbeat, catch-up, reshard execution.

    Wraps one {!Umrs_server.Server} (started empty — no corpus, no
    shard state) and drives it through the membership protocol against
    a {!Coordinator}:

    {ol
    {- {b Join.} Register; learn the assigned range, donor and
       canonical checksum. Reuse the piece file already on disk iff
       its checksum matches ({e catch-up re-fetches only what is
       actually stale}); otherwise stream the range from the donor in
       pipelined batches, write it through the atomic-publication
       seam, verify, index. Then swap the piece into the server,
       ready-join, and adopt the published map.}
    {- {b Heartbeat.} A dedicated thread beats every [heartbeat]
       seconds. The ack carries the coordinator's topology version
       (a mismatch triggers a map refetch), a pending reshard command
       (executed off-thread so a long acquire never stops the beat),
       and the known/dead verdict — an unknown node re-joins from
       scratch.}
    {- {b Topology application.} Shard state is swapped {e before} the
       piece is narrowed: a superset piece answers correctly under the
       narrowed state (same low bound), the reverse would read past
       the piece's end — the node-side half of the double-serving
       invariant.}}

    Two {!Umrs_fault.Fault} points instrument the beat loop:
    [Heartbeat_loss] (fires before each send; non-[Pass] drops that
    beat) and [Partition] (fires once per iteration; non-[Pass] skips
    the whole coordinator exchange) — enough consecutive hits and a
    healthy node is declared dead, exercising the false-positive
    failover path deterministically. *)

val clean_dir : string -> (unit, string) result
(** Sweep a node data dir after a crash: stale Unix socket paths are
    probed with {!Umrs_server.Server.clear_stale_socket} (a socket a
    live server answers on is an error, never deleted) and [*.tmp]
    leftovers of interrupted atomic publications are removed. Creates
    the directory when missing. Called by {!start}, {!Coordinator.start}
    and {!Cluster.start}. *)

val piece_path : string -> int -> int -> string
(** [piece_path dir lo hi] — where this node stores records [lo, hi).
    The range lives in the name so a returning node can tell what it
    holds by listing its dir; whether the bytes are current is decided
    by checksum, never by the name. *)

type config = {
  coordinator : Umrs_server.Wire.addr;
  dir : string;                (* piece-file home *)
  listen : Umrs_server.Wire.addr;
  advertise : Umrs_server.Wire.addr option;
      (** address registered with the coordinator — what {e other}
          processes connect to; default: the resolved listen address *)
  heartbeat : float;
  workers : int;
  backend : Umrs_server.Server.backend option;
  join_attempts : int;  (** retries before {!start} gives up joining *)
}

val default_config :
  coordinator:Umrs_server.Wire.addr -> dir:string ->
  listen:Umrs_server.Wire.addr -> config
(** 0.5 s heartbeat, 2 workers, 10 join attempts. *)

type t

val start : config -> (t, string) result
(** Sweep the dir, start the server, join (with catch-up) until ready,
    spawn the heartbeat thread. On a join that never succeeds the
    server is torn down and the error returned. *)

val server : t -> Umrs_server.Server.t
val self_addr : t -> Umrs_server.Wire.addr
val version : t -> int
(** Last coordinator topology version this node applied. *)

val range : t -> (int * int) option
(** The global record range currently held. *)

val checksum : t -> int64
val catchups : t -> int
(** Piece fetches completed (join catch-up + reshard acquisitions). *)

val last_error : t -> string option
(** Most recent internal failure (failed acquire, rejected handoff…) —
    the agent keeps running; this surfaces what it last struggled
    with. *)

val stop : ?leave:bool -> t -> unit
(** Stop beating and drain the server. [leave] (default [true]) sends
    a graceful [Leave] first; [~leave:false] abandons silently — the
    coordinator finds out via missed beats, which is exactly what a
    kill test wants. *)

val wait : t -> unit
(** Join the heartbeat thread and the server drain. *)
