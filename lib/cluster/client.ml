module Wire = Umrs_server.Wire
module C = Umrs_client

(* Cluster failover wants to move to a replica within a second of a
   node dying, so the per-endpoint policy is much snappier than
   Robust's single-server default: the group, not the endpoint, is the
   unit of availability. *)
let default_policy =
  { C.Robust.default_policy with
    connect_retries = 1; call_retries = 1; max_total_wait = 1.0;
    breaker_cooldown = 0.1 }

type group = {
  g_addrs : Wire.addr array;  (* primary first, then replicas *)
  g_conns : C.Robust.conn option array;
  mutable g_active : int;  (* endpoint currently preferred *)
}

type stats = {
  s_calls : int;
  s_failovers : int;
  s_refreshes : int;
}

type t = {
  mutable map : Wire.shard_map;
  policy : C.Robust.policy;
  rng : Random.State.t;
  mutable groups : group array;
  mutable rr : int;  (* round-robin cursor for unrouted requests *)
  nonce : int ref;
  mutable k_calls : int;
  mutable k_failovers : int;
  mutable k_refreshes : int;
}

let group_of_shard sh =
  let addrs = Array.of_list (sh.Wire.sh_primary :: sh.Wire.sh_replicas) in
  { g_addrs = addrs;
    g_conns = Array.make (Array.length addrs) None;
    g_active = 0 }

let groups_of_map map = Array.map group_of_shard map.Wire.sm_shards

let of_map ?(policy = default_policy) ?rng map =
  (match Wire.validate_shard_map map with
  | Ok () -> ()
  | Error m -> invalid_arg ("Cluster client: " ^ m));
  let rng =
    match rng with Some r -> r | None -> Random.State.make_self_init ()
  in
  { map; policy; rng; groups = groups_of_map map; rr = 0; nonce = ref 0;
    k_calls = 0; k_failovers = 0; k_refreshes = 0 }

let fetch ?policy ?rng addr =
  let pol = match policy with Some p -> p | None -> default_policy in
  let c = C.Robust.create ~policy:pol ?rng addr in
  let r = C.Robust.call c Wire.Get_shard_map in
  C.Robust.close c;
  match r with
  | Ok (Wire.R_shard_map sm) -> (
    match Wire.validate_shard_map sm with
    | Ok () -> Ok (of_map ?policy ?rng sm)
    | Error m -> Error (C.Protocol ("fetched shard map invalid: " ^ m)))
  | Ok _ -> Error (C.Protocol "response is not a shard map")
  | Error _ as e -> e

let map t = t.map

let stats t =
  { s_calls = t.k_calls; s_failovers = t.k_failovers;
    s_refreshes = t.k_refreshes }

let close_groups groups =
  Array.iter
    (fun g ->
      Array.iter
        (function Some c -> C.Robust.close c | None -> ())
        g.g_conns)
    groups

let close t = close_groups t.groups

let conn t g i =
  match g.g_conns.(i) with
  | Some c -> c
  | None ->
    let c = C.Robust.create ~policy:t.policy ~rng:t.rng g.g_addrs.(i) in
    g.g_conns.(i) <- Some c;
    c

(* ---------- failover ---------- *)

(* Drive [f] against shard [k]'s endpoints starting from the group's
   preferred one. A transport-level failure (Io — which covers refused
   connections and the breaker's fast-fail alike) rotates to the next
   endpoint, and so does an Overloaded shed: the server sheds BEFORE
   executing (bounded-queue overflow, or the drain path of a node on
   its way down), so re-driving the request against a replica serving
   the same piece is always safe — and it is exactly what makes a
   graceful node loss invisible. Other server verdicts and protocol
   violations return as-is. The preferred index sticks, so once a
   primary dies the group keeps talking to its replica instead of
   re-probing the corpse on every call. *)
let with_group t k f =
  let g = t.groups.(k) in
  let n = Array.length g.g_addrs in
  let rec go tries =
    match f (conn t g g.g_active) with
    | Error (C.Io _ | C.Overloaded) as e ->
      if tries + 1 >= n then e
      else begin
        g.g_active <- (g.g_active + 1) mod n;
        t.k_failovers <- t.k_failovers + 1;
        go (tries + 1)
      end
    | r -> r
  in
  go 0

(* Batched transport against one group with the same rotation: slots
   that still carry a transport error or an Overloaded shed after
   {!C.Robust.call_many}'s own retries are re-driven — corpus requests
   are all idempotent, and sheds never executed — against the next
   endpoint; everything already answered stays answered. *)
let with_group_many t k ?deadline_ms reqs =
  let g = t.groups.(k) in
  let n = Array.length g.g_addrs in
  let arr = Array.of_list reqs in
  let out = Array.make (Array.length arr) (Error (C.Io "unsent")) in
  let rec go tries pending =
    let rs =
      C.Robust.call_many (conn t g g.g_active) ?deadline_ms
        (List.map (fun s -> arr.(s)) pending)
    in
    List.iter2 (fun s r -> out.(s) <- r) pending rs;
    let failed =
      List.filter
        (fun s ->
          match out.(s) with
          | Error (C.Io _ | C.Overloaded) -> true
          | _ -> false)
        pending
    in
    if failed <> [] && tries + 1 < n then begin
      g.g_active <- (g.g_active + 1) mod n;
      t.k_failovers <- t.k_failovers + 1;
      go (tries + 1) failed
    end
  in
  go 0 (List.init (Array.length arr) Fun.id);
  Array.to_list out

(* ---------- map refresh ---------- *)

let install_map t sm =
  close_groups t.groups;
  t.map <- sm;
  t.groups <- groups_of_map sm;
  t.k_refreshes <- t.k_refreshes + 1

let refresh t =
  (* any live node can serve the map; ask each group in turn *)
  let n = Array.length t.groups in
  let rec go k =
    if k >= n then Error (C.Io "no node answered the shard-map refresh")
    else
      match with_group t k (fun c -> C.Robust.call c Wire.Get_shard_map) with
      | Ok (Wire.R_shard_map sm) -> (
        match Wire.validate_shard_map sm with
        | Ok () ->
          install_map t sm;
          Ok ()
        | Error m -> Error (C.Protocol ("refreshed shard map invalid: " ^ m)))
      | Ok _ -> Error (C.Protocol "response is not a shard map")
      | Error _ -> go (k + 1)
  in
  go 0

(* ---------- routing plans ---------- *)

type plan =
  | To of int             (* exactly one shard owns the answer *)
  | Scatter of int * int  (* inclusive shard span; merge the replies *)
  | Anywhere              (* not corpus-routed: any node can serve it *)

let plan_of t req =
  match req with
  | Wire.Nth i | Wire.Cgraph_of i -> To (Wire.route_index t.map i)
  | Wire.Mem m | Wire.Rank m -> To (Wire.route_matrix t.map m)
  | Wire.Range_prefix prefix ->
    let a, b = Wire.route_prefix t.map prefix in
    if a = b then To a else Scatter (a, b)
  | Wire.Ping _ | Wire.Stats | Wire.Corpus_info | Wire.Evaluate _
  | Wire.Sleep_ms _ | Wire.Get_shard_map ->
    Anywhere

let next_rr t =
  let k = t.rr in
  t.rr <- (t.rr + 1) mod Array.length t.groups;
  k

(* Merge scatter replies for a range-prefix, given in shard order over
   the span. Every shard reports its slice of the global range (already
   in global coordinates); non-empty slices are contiguous across
   consecutive shards, so the union is (min lo, max hi). When every
   slice is empty the anchor shard — the last of the span, the one
   whose key range contains the prefix's insertion point — holds the
   true global (lo, lo). *)
let merge_ranges results =
  match List.find_opt Result.is_error results with
  | Some e -> e
  | None -> (
    match
      List.map
        (function Ok (Wire.R_range (lo, hi)) -> (lo, hi) | _ -> raise Exit)
        results
    with
    | exception Exit -> Error (C.Protocol "response is not a range")
    | [] -> Error (C.Protocol "scatter produced no replies")
    | ranges -> (
      match List.filter (fun (lo, hi) -> lo < hi) ranges with
      | [] ->
        let lo, hi = List.nth ranges (List.length ranges - 1) in
        Ok (Wire.R_range (lo, hi))
      | nonempty ->
        let lo = List.fold_left (fun a (l, _) -> min a l) max_int nonempty in
        let hi = List.fold_left (fun a (_, h) -> max a h) min_int nonempty in
        Ok (Wire.R_range (lo, hi))))

(* ---------- single calls ---------- *)

(* A stale-shard rejection means this client routed with an outdated
   map: refresh and re-route exactly once — a second stale verdict
   surfaces to the caller, so topology churn can never loop a call. *)
let rec dispatch t ?deadline_ms ~retried req =
  match plan_of t req with
  | exception Invalid_argument m -> Error (C.Refused m)
  | Anywhere ->
    with_group t (next_rr t) (fun c -> C.Robust.call c ?deadline_ms req)
  | To k ->
    finish t ?deadline_ms ~retried req
      (with_group t k (fun c -> C.Robust.call c ?deadline_ms req))
  | Scatter (a, b) ->
    let results =
      List.init (b - a + 1) (fun off ->
          with_group t (a + off) (fun c -> C.Robust.call c ?deadline_ms req))
    in
    finish t ?deadline_ms ~retried req (merge_ranges results)

and finish t ?deadline_ms ~retried req r =
  match r with
  | Error (C.Refused msg)
    when (not retried) && Wire.stale_shard_version msg <> None -> (
    match refresh t with
    | Ok () -> dispatch t ?deadline_ms ~retried:true req
    | Error _ -> r)
  | r -> r

let call t ?deadline_ms req =
  t.k_calls <- t.k_calls + 1;
  dispatch t ?deadline_ms ~retried:false req

(* ---------- typed wrappers ---------- *)

let shape what = Error (C.Protocol ("response is not " ^ what))

let corpus_info t =
  (* the map carries the unsharded corpus's identity: answered locally *)
  Ok (Wire.corpus_header_of_map t.map)

let nth t i =
  match call t (Wire.Nth i) with
  | Ok (Wire.R_matrix m) -> Ok m
  | Ok _ -> shape "a matrix"
  | Error _ as e -> e

let mem t m =
  match call t (Wire.Mem m) with
  | Ok (Wire.R_found b) -> Ok b
  | Ok _ -> shape "a membership bit"
  | Error _ as e -> e

let rank t m =
  match call t (Wire.Rank m) with
  | Ok (Wire.R_rank r) -> Ok r
  | Ok _ -> shape "a rank"
  | Error _ as e -> e

let range_prefix t prefix =
  match call t (Wire.Range_prefix prefix) with
  | Ok (Wire.R_range (lo, hi)) -> Ok (lo, hi)
  | Ok _ -> shape "a range"
  | Error _ as e -> e

let cgraph t i =
  match call t (Wire.Cgraph_of i) with
  | Ok (Wire.R_graph g) -> Ok g
  | Ok _ -> shape "a constraint graph"
  | Error _ as e -> e

let ping t =
  (* every shard group must answer through some endpoint *)
  let n = Array.length t.groups in
  let rec go k =
    if k >= n then Ok ()
    else begin
      incr t.nonce;
      let nonce = !(t.nonce) land 0xFFFFFFFF in
      match with_group t k (fun c -> C.Robust.call c (Wire.Ping nonce)) with
      | Ok (Wire.R_pong m) when m = nonce -> go (k + 1)
      | Ok _ -> shape "a pong"
      | Error _ as e -> e
    end
  in
  go 0

(* ---------- scatter-gather batches ---------- *)

(* One bucket per shard, filled in request order; each bucket goes out
   as a single pipelined {!C.Robust.call_many} through the group's
   failover rotation, so a batch costs one flush per shard touched
   rather than one round-trip per request. Results reassemble by slot;
   scatter slots merge their per-shard replies in key order; stale
   verdicts re-drive through the single-call path after one refresh. *)
let batch t ?deadline_ms reqs =
  let reqs = Array.of_list reqs in
  let n = Array.length reqs in
  t.k_calls <- t.k_calls + n;
  let nshards = Array.length t.groups in
  let buckets = Array.make nshards [] in  (* (slot, req), newest first *)
  let plans = Array.make n Anywhere in
  let precomputed = Array.make n None in
  Array.iteri
    (fun slot req ->
      match plan_of t req with
      | exception Invalid_argument m ->
        precomputed.(slot) <- Some (Error (C.Refused m))
      | p ->
        plans.(slot) <- p;
        let targets =
          match p with
          | To k -> [ k ]
          | Scatter (a, b) -> List.init (b - a + 1) (fun off -> a + off)
          | Anywhere -> [ next_rr t ]
        in
        List.iter (fun k -> buckets.(k) <- (slot, req) :: buckets.(k)) targets)
    reqs;
  let replies = Array.make n [] in  (* (shard, result), newest first *)
  Array.iteri
    (fun k bucket ->
      match List.rev bucket with
      | [] -> ()
      | items ->
        let rs = with_group_many t k ?deadline_ms (List.map snd items) in
        List.iter2
          (fun (slot, _) r -> replies.(slot) <- (k, r) :: replies.(slot))
          items rs)
    buckets;
  Array.to_list
    (Array.mapi
       (fun slot req ->
         match precomputed.(slot) with
         | Some e -> e
         | None -> (
           (* ascending shard order — the order merge_ranges expects *)
           let rs = List.map snd (List.rev replies.(slot)) in
           let merged =
             match plans.(slot) with
             | Scatter _ -> merge_ranges rs
             | To _ | Anywhere -> (
               match rs with
               | [ r ] -> r
               | _ -> Error (C.Protocol "batch slot lost its reply"))
           in
           match merged with
           | Error (C.Refused msg) when Wire.stale_shard_version msg <> None
             -> (
             match refresh t with
             | Ok () -> dispatch t ?deadline_ms ~retried:true req
             | Error _ -> merged)
           | r -> r))
       reqs)
