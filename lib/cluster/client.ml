module Wire = Umrs_server.Wire
module C = Umrs_client

(* Cluster failover wants to move to a replica within a second of a
   node dying, so the per-endpoint policy is much snappier than
   Robust's single-server default: the group, not the endpoint, is the
   unit of availability. *)
let default_policy =
  { C.Robust.default_policy with
    connect_retries = 1; call_retries = 1; max_total_wait = 1.0;
    breaker_cooldown = 0.1 }

type group = {
  g_addrs : Wire.addr array;  (* primary first, then replicas *)
  g_conns : C.Robust.conn option array;
  mutable g_active : int;  (* endpoint currently preferred *)
  g_lock : Mutex.t;  (* serializes use of this group's connections *)
}

(* A consistent (map, groups) pair. Callers route against one epoch
   for the whole call; a concurrent refresh installs a fresh epoch and
   the old one's connections are closed only once its last caller
   leaves — a thread mid-call can never have its connection closed
   under it. *)
type epoch = {
  e_map : Wire.shard_map;
  e_groups : group array;
  mutable e_busy : int;     (* callers inside; under the owner's lock *)
  mutable e_retired : bool; (* replaced; close when e_busy drains *)
}

type stats = {
  s_calls : int;
  s_failovers : int;
  s_refreshes : int;
}

type t = {
  policy : C.Robust.policy;
  rng : Random.State.t;  (* seed source only; under [lock] *)
  lock : Mutex.t;  (* epoch pointer, retired list, counters, rr *)
  refresh_lock : Mutex.t;  (* single-flight: at most one fetch in flight *)
  mutable epoch : epoch;
  mutable retired : epoch list;  (* replaced epochs still busy *)
  mutable rr : int;  (* round-robin cursor for unrouted requests *)
  nonce : int ref;
  mutable k_calls : int;
  mutable k_failovers : int;
  mutable k_refreshes : int;
}

let locked lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let group_of_shard sh =
  let addrs = Array.of_list (sh.Wire.sh_primary :: sh.Wire.sh_replicas) in
  { g_addrs = addrs;
    g_conns = Array.make (Array.length addrs) None;
    g_active = 0;
    g_lock = Mutex.create () }

let epoch_of_map map =
  { e_map = map; e_groups = Array.map group_of_shard map.Wire.sm_shards;
    e_busy = 0; e_retired = false }

let of_map ?(policy = default_policy) ?rng map =
  (match Wire.validate_shard_map map with
  | Ok () -> ()
  | Error m -> invalid_arg ("Cluster client: " ^ m));
  let rng =
    match rng with Some r -> r | None -> Random.State.make_self_init ()
  in
  { policy; rng; lock = Mutex.create (); refresh_lock = Mutex.create ();
    epoch = epoch_of_map map; retired = []; rr = 0; nonce = ref 0;
    k_calls = 0; k_failovers = 0; k_refreshes = 0 }

let fetch ?policy ?rng addr =
  let pol = match policy with Some p -> p | None -> default_policy in
  let c = C.Robust.create ~policy:pol ?rng addr in
  let r = C.Robust.call c Wire.Get_shard_map in
  C.Robust.close c;
  match r with
  | Ok (Wire.R_shard_map sm) -> (
    match Wire.validate_shard_map sm with
    | Ok () -> Ok (of_map ?policy ?rng sm)
    | Error m -> Error (C.Protocol ("fetched shard map invalid: " ^ m)))
  | Ok _ -> Error (C.Protocol "response is not a shard map")
  | Error _ as e -> e

let map t = locked t.lock (fun () -> t.epoch.e_map)

let stats t =
  locked t.lock (fun () ->
      { s_calls = t.k_calls; s_failovers = t.k_failovers;
        s_refreshes = t.k_refreshes })

let close_epoch e =
  Array.iter
    (fun g ->
      Array.iteri
        (fun i -> function
          | Some c ->
            g.g_conns.(i) <- None;
            C.Robust.close c
          | None -> ())
        g.g_conns)
    e.e_groups

(* ---------- epoch entry/exit ---------- *)

let enter t =
  locked t.lock (fun () ->
      let e = t.epoch in
      e.e_busy <- e.e_busy + 1;
      e)

let leave t e =
  let close_now =
    locked t.lock (fun () ->
        e.e_busy <- e.e_busy - 1;
        if e.e_retired && e.e_busy = 0 then begin
          t.retired <- List.filter (fun r -> r != e) t.retired;
          true
        end
        else false)
  in
  if close_now then close_epoch e

let with_epoch t f =
  let e = enter t in
  Fun.protect ~finally:(fun () -> leave t e) (fun () -> f e)

let close t =
  let epochs =
    locked t.lock (fun () ->
        let es = t.epoch :: t.retired in
        t.retired <- [];
        es)
  in
  List.iter close_epoch epochs

(* Connection creation happens under the group's lock; the shared seed
   source is touched under [t.lock] only, and each connection gets a
   private stream so backoff jitter never races across groups. *)
let conn t g i =
  match g.g_conns.(i) with
  | Some c -> c
  | None ->
    let rng =
      locked t.lock (fun () ->
          Random.State.make
            [| Random.State.bits t.rng; Random.State.bits t.rng;
               Random.State.bits t.rng |])
    in
    let c = C.Robust.create ~policy:t.policy ~rng g.g_addrs.(i) in
    g.g_conns.(i) <- Some c;
    c

(* ---------- failover ---------- *)

(* Drive [f] against shard [k]'s endpoints starting from the group's
   preferred one. A transport-level failure (Io — which covers refused
   connections and the breaker's fast-fail alike) rotates to the next
   endpoint, and so does an Overloaded shed: the server sheds BEFORE
   executing (bounded-queue overflow, or the drain path of a node on
   its way down), so re-driving the request against a replica serving
   the same piece is always safe — and it is exactly what makes a
   graceful node loss invisible. Other server verdicts and protocol
   violations return as-is. The preferred index sticks, so once a
   primary dies the group keeps talking to its replica instead of
   re-probing the corpse on every call. *)
let with_group t e k f =
  let g = e.e_groups.(k) in
  locked g.g_lock (fun () ->
      let n = Array.length g.g_addrs in
      let rec go tries =
        match f (conn t g g.g_active) with
        | Error (C.Io _ | C.Overloaded) as err ->
          if tries + 1 >= n then err
          else begin
            g.g_active <- (g.g_active + 1) mod n;
            locked t.lock (fun () -> t.k_failovers <- t.k_failovers + 1);
            go (tries + 1)
          end
        | r -> r
      in
      go 0)

(* Batched transport against one group with the same rotation: slots
   that still carry a transport error or an Overloaded shed after
   {!C.Robust.call_many}'s own retries are re-driven — corpus requests
   are all idempotent, and sheds never executed — against the next
   endpoint; everything already answered stays answered. *)
let with_group_many t e k ?deadline_ms reqs =
  let g = e.e_groups.(k) in
  locked g.g_lock (fun () ->
      let n = Array.length g.g_addrs in
      let arr = Array.of_list reqs in
      let out = Array.make (Array.length arr) (Error (C.Io "unsent")) in
      let rec go tries pending =
        let rs =
          C.Robust.call_many (conn t g g.g_active) ?deadline_ms
            (List.map (fun s -> arr.(s)) pending)
        in
        List.iter2 (fun s r -> out.(s) <- r) pending rs;
        let failed =
          List.filter
            (fun s ->
              match out.(s) with
              | Error (C.Io _ | C.Overloaded) -> true
              | _ -> false)
            pending
        in
        if failed <> [] && tries + 1 < n then begin
          g.g_active <- (g.g_active + 1) mod n;
          locked t.lock (fun () -> t.k_failovers <- t.k_failovers + 1);
          go (tries + 1) failed
        end
      in
      go 0 (List.init (Array.length arr) Fun.id);
      Array.to_list out)

(* ---------- map refresh ---------- *)

let install_map t sm =
  let close_now =
    locked t.lock (fun () ->
        let old = t.epoch in
        old.e_retired <- true;
        t.epoch <- epoch_of_map sm;
        t.k_refreshes <- t.k_refreshes + 1;
        if old.e_busy = 0 then Some old
        else begin
          t.retired <- old :: t.retired;
          None
        end)
  in
  Option.iter close_epoch close_now

(* Single-flight: [seen] is the map version the caller routed with,
   [want] the version the stale verdict named. Whoever takes
   [refresh_lock] first fetches; everyone else queued behind it finds
   the version already moved past [seen] and returns without a second
   [Get_shard_map] — N concurrent stale verdicts cost one fetch, not
   N. *)
let refresh t ~seen ~want =
  (* strictly newer than [seen]: a node one heartbeat behind must not
     be able to roll the epoch backwards *)
  let fresh_enough v =
    v > seen && (match want with None -> true | Some w -> v >= w)
  in
  locked t.refresh_lock (fun () ->
      if fresh_enough (locked t.lock (fun () -> t.epoch.e_map.Wire.sm_version))
      then Ok ()  (* a concurrent refresh already replaced the map *)
      else
        with_epoch t (fun e ->
            (* Any live node can serve the map — but mid-flip some still
               hold the previous version (a node adopts a new topology on
               its next heartbeat). Take the first map as new as the
               verdict demanded; settle for the newest found when nobody
               has caught up yet. *)
            let n = Array.length e.e_groups in
            let best = ref None in
            let note sm =
              match !best with
              | Some b when b.Wire.sm_version >= sm.Wire.sm_version -> ()
              | _ -> best := Some sm
            in
            let rec go k =
              if k >= n then
                match !best with
                | Some sm when sm.Wire.sm_version > seen ->
                  install_map t sm;
                  Ok ()
                | _ -> Error (C.Io "no node answered the shard-map refresh")
              else
                match
                  with_group t e k (fun c ->
                      C.Robust.call c Wire.Get_shard_map)
                with
                | Ok (Wire.R_shard_map sm) -> (
                  match Wire.validate_shard_map sm with
                  | Ok () ->
                    if fresh_enough sm.Wire.sm_version then begin
                      install_map t sm;
                      Ok ()
                    end
                    else begin
                      note sm;
                      go (k + 1)
                    end
                  | Error m ->
                    Error (C.Protocol ("refreshed shard map invalid: " ^ m)))
                | Ok _ -> Error (C.Protocol "response is not a shard map")
                | Error _ -> go (k + 1)
            in
            go 0))

(* ---------- routing plans ---------- *)

type plan =
  | To of int             (* exactly one shard owns the answer *)
  | Scatter of int * int  (* inclusive shard span; merge the replies *)
  | Anywhere              (* not corpus-routed: any node can serve it *)

let plan_of map req =
  match req with
  | Wire.Nth i | Wire.Cgraph_of i -> To (Wire.route_index map i)
  | Wire.Mem m | Wire.Rank m -> To (Wire.route_matrix map m)
  | Wire.Range_prefix prefix ->
    let a, b = Wire.route_prefix map prefix in
    if a = b then To a else Scatter (a, b)
  | Wire.Ping _ | Wire.Stats | Wire.Corpus_info | Wire.Evaluate _
  | Wire.Sleep_ms _ | Wire.Get_shard_map
  | Wire.Join _ | Wire.Leave _ | Wire.Heartbeat _ | Wire.Reshard _
  | Wire.Handoff_done _ | Wire.Cluster_status ->
    Anywhere

let next_rr t e =
  locked t.lock (fun () ->
      let k = t.rr in
      t.rr <- t.rr + 1;
      k mod Array.length e.e_groups)

(* Merge scatter replies for a range-prefix, given in shard order over
   the span. Every shard reports its slice of the global range (already
   in global coordinates); non-empty slices are contiguous across
   consecutive shards, so the union is (min lo, max hi). When every
   slice is empty the anchor shard — the last of the span, the one
   whose key range contains the prefix's insertion point — holds the
   true global (lo, lo).

   Slices arrive stamped with the map version they were computed
   under. A stamp NEWER than the epoch this client scattered with
   means the topology moved mid-flight: the span it chose may miss a
   shard that now owns part of the answer, so the merge is refused
   with the same verdict a mis-routed rank gets and the caller
   refreshes and re-scatters. A stamp at or below [seen] merges as
   usual — a node still mid-handoff serves a superset of what the
   newer map expects of it, so its slice can widen the union but
   never punch a hole in it. *)
let merge_ranges ~seen results =
  let ahead = ref 0 in
  let results =
    List.map
      (function
        | Ok (Wire.R_slice { sl_version; sl_lo; sl_hi }) ->
          if sl_version > seen then ahead := max !ahead sl_version;
          Ok (Wire.R_range (sl_lo, sl_hi))
        | r -> r)
      results
  in
  if !ahead > 0 then Error (C.Refused (Wire.stale_shard_msg ~version:!ahead))
  else
  match List.find_opt Result.is_error results with
  | Some e -> e
  | None -> (
    match
      List.map
        (function Ok (Wire.R_range (lo, hi)) -> (lo, hi) | _ -> raise Exit)
        results
    with
    | exception Exit -> Error (C.Protocol "response is not a range")
    | [] -> Error (C.Protocol "scatter produced no replies")
    | ranges -> (
      match List.filter (fun (lo, hi) -> lo < hi) ranges with
      | [] ->
        let lo, hi = List.nth ranges (List.length ranges - 1) in
        Ok (Wire.R_range (lo, hi))
      | nonempty ->
        let lo = List.fold_left (fun a (l, _) -> min a l) max_int nonempty in
        let hi = List.fold_left (fun a (_, h) -> max a h) min_int nonempty in
        Ok (Wire.R_range (lo, hi))))

(* ---------- single calls ---------- *)

(* A stale-shard rejection means this client routed with an outdated
   map: refresh and re-route exactly once — a second stale verdict
   surfaces to the caller, so topology churn can never loop a call. *)
let rec dispatch t ?deadline_ms ~retried req =
  let seen, r =
    with_epoch t (fun e ->
        let seen = e.e_map.Wire.sm_version in
        match plan_of e.e_map req with
        | exception Invalid_argument m -> (seen, Error (C.Refused m))
        | Anywhere ->
          ( seen,
            with_group t e (next_rr t e) (fun c ->
                C.Robust.call c ?deadline_ms req) )
        | To k ->
          ( seen,
            with_group t e k (fun c -> C.Robust.call c ?deadline_ms req) )
        | Scatter (a, b) ->
          let results =
            List.init (b - a + 1) (fun off ->
                with_group t e (a + off) (fun c ->
                    C.Robust.call c ?deadline_ms req))
          in
          (seen, merge_ranges ~seen results))
  in
  finish t ?deadline_ms ~retried ~seen req r

and finish t ?deadline_ms ~retried ~seen req r =
  (* a single-shard slice normalizes to a plain range, with the same
     future-stamp check a scatter merge applies *)
  let r =
    match r with
    | Ok (Wire.R_slice { sl_version; sl_lo; sl_hi }) ->
      if sl_version > seen then
        Error (C.Refused (Wire.stale_shard_msg ~version:sl_version))
      else Ok (Wire.R_range (sl_lo, sl_hi))
    | r -> r
  in
  match r with
  | Error (C.Refused msg) when not retried -> (
    match Wire.stale_shard_version msg with
    | None -> r
    | Some want -> (
      match refresh t ~seen ~want:(Some want) with
      | Ok () -> dispatch t ?deadline_ms ~retried:true req
      | Error _ -> r))
  | r -> r

let call t ?deadline_ms req =
  locked t.lock (fun () -> t.k_calls <- t.k_calls + 1);
  dispatch t ?deadline_ms ~retried:false req

(* ---------- typed wrappers ---------- *)

let shape what = Error (C.Protocol ("response is not " ^ what))

let corpus_info t =
  (* the map carries the unsharded corpus's identity: answered locally *)
  Ok (Wire.corpus_header_of_map (map t))

let nth t i =
  match call t (Wire.Nth i) with
  | Ok (Wire.R_matrix m) -> Ok m
  | Ok _ -> shape "a matrix"
  | Error _ as e -> e

let mem t m =
  match call t (Wire.Mem m) with
  | Ok (Wire.R_found b) -> Ok b
  | Ok _ -> shape "a membership bit"
  | Error _ as e -> e

let rank t m =
  match call t (Wire.Rank m) with
  | Ok (Wire.R_rank r) -> Ok r
  | Ok _ -> shape "a rank"
  | Error _ as e -> e

let range_prefix t prefix =
  match call t (Wire.Range_prefix prefix) with
  | Ok (Wire.R_range (lo, hi)) -> Ok (lo, hi)
  | Ok _ -> shape "a range"
  | Error _ as e -> e

let cgraph t i =
  match call t (Wire.Cgraph_of i) with
  | Ok (Wire.R_graph g) -> Ok g
  | Ok _ -> shape "a constraint graph"
  | Error _ as e -> e

let ping t =
  (* every shard group must answer through some endpoint *)
  with_epoch t (fun e ->
      let n = Array.length e.e_groups in
      let rec go k =
        if k >= n then Ok ()
        else begin
          let nonce =
            locked t.lock (fun () ->
                incr t.nonce;
                !(t.nonce) land 0xFFFFFFFF)
          in
          match
            with_group t e k (fun c -> C.Robust.call c (Wire.Ping nonce))
          with
          | Ok (Wire.R_pong m) when m = nonce -> go (k + 1)
          | Ok _ -> shape "a pong"
          | Error _ as err -> err
        end
      in
      go 0)

(* ---------- scatter-gather batches ---------- *)

(* One bucket per shard, filled in request order; each bucket goes out
   as a single pipelined {!C.Robust.call_many} through the group's
   failover rotation, so a batch costs one flush per shard touched
   rather than one round-trip per request. Results reassemble by slot;
   scatter slots merge their per-shard replies in key order; stale
   verdicts re-drive through the single-call path after one refresh. *)
let batch t ?deadline_ms reqs =
  let reqs = Array.of_list reqs in
  let n = Array.length reqs in
  locked t.lock (fun () -> t.k_calls <- t.k_calls + n);
  with_epoch t (fun e ->
      let seen = e.e_map.Wire.sm_version in
      let nshards = Array.length e.e_groups in
      let buckets = Array.make nshards [] in  (* (slot, req), newest first *)
      let plans = Array.make n Anywhere in
      let precomputed = Array.make n None in
      Array.iteri
        (fun slot req ->
          match plan_of e.e_map req with
          | exception Invalid_argument m ->
            precomputed.(slot) <- Some (Error (C.Refused m))
          | p ->
            plans.(slot) <- p;
            let targets =
              match p with
              | To k -> [ k ]
              | Scatter (a, b) -> List.init (b - a + 1) (fun off -> a + off)
              | Anywhere -> [ next_rr t e ]
            in
            List.iter
              (fun k -> buckets.(k) <- (slot, req) :: buckets.(k))
              targets)
        reqs;
      let replies = Array.make n [] in  (* (shard, result), newest first *)
      Array.iteri
        (fun k bucket ->
          match List.rev bucket with
          | [] -> ()
          | items ->
            let rs =
              with_group_many t e k ?deadline_ms (List.map snd items)
            in
            List.iter2
              (fun (slot, _) r -> replies.(slot) <- (k, r) :: replies.(slot))
              items rs)
        buckets;
      Array.to_list
        (Array.mapi
           (fun slot req ->
             match precomputed.(slot) with
             | Some err -> err
             | None -> (
               (* ascending shard order — the order merge_ranges expects *)
               let rs = List.map snd (List.rev replies.(slot)) in
               let merged =
                 match plans.(slot) with
                 | Scatter _ -> merge_ranges ~seen rs
                 | To _ | Anywhere -> (
                   match rs with
                   | [ r ] -> r
                   | _ -> Error (C.Protocol "batch slot lost its reply"))
               in
               finish t ?deadline_ms ~retried:false ~seen req merged))
           reqs))
