(** Cluster coordinator: membership, failure detection, resharding.

    One process owns the topology. It serves the {e full} unsharded
    corpus through a normal {!Umrs_server.Server} (so it can answer any
    record fetch and is always a valid donor), and handles the
    membership control plane through the server's [membership] hook:

    {ul
    {- {b Join.} An independently started node registers, is assigned
       the least-populated shard, and is told the global record range
       it must hold, a donor that can stream it, and the {e canonical
       checksum} the piece must match. A ready-join whose checksum
       disagrees is refused — a node can never serve bytes the
       coordinator cannot vouch for.}
    {- {b Failure detection.} A detector thread declares dead any
       member silent for [miss_limit] heartbeat intervals: it leaves
       every owners list, a dead primary's first replica is promoted,
       and the topology version bumps so clients and nodes migrate.}
    {- {b Online resharding.} [Split k] halves shard [k]'s range: a
       node poached from the best-staffed group (and unlisted from the
       map {e first}, so no client routes to it mid-swap) streams the
       upper half, reports [Handoff_done], and the map flips — the
       donor keeps its superset piece until the next version, so both
       map versions answer correctly throughout (double-serving).
       [Merge k] collapses shards [k] and [k+1]: group [k] acquires
       the union range and the first finisher flips the map; laggards
       re-enter through their own handoff, orphans re-join fresh.}
    {- {b Catch-up verification.} The canonical checksum of any range
       is computed from the coordinator's own corpus (the fold equals
       a piece file's header checksum), cached per range — whether a
       returning node's piece is current is never the node's opinion.}}

    Every topology change bumps the version; a map is {e published}
    (atomically, through the {!Umrs_fault.Io} seam) only while every
    range has at least one ready owner. On restart the coordinator
    adopts the ranges of an existing map file, so a resharded topology
    survives it; owners repopulate as nodes re-join. *)

type config = {
  dir : string;          (** map file home (swept by
                             {!Membership.clean_dir} on start) *)
  corpus : string;       (** the full unsharded corpus to serve *)
  listen : Umrs_server.Wire.addr;
  shards : int;          (** initial shard count when no map file exists *)
  heartbeat : float;     (** expected beat interval, seconds *)
  miss_limit : int;      (** missed beats before a node is declared dead *)
  workers : int;
  backend : Umrs_server.Server.backend option;
}

val default_config :
  dir:string -> corpus:string -> listen:Umrs_server.Wire.addr -> config
(** 2 shards, 0.5 s heartbeat, 4 missed beats, 2 workers. *)

type t

val start : config -> (t, string) result
(** Open the corpus, adopt or cut the initial topology, start the
    server with the membership hook, spawn the detector. [Error] on a
    bad config, an unreadable corpus, a map file describing a
    different corpus, or an unbindable address. *)

val server : t -> Umrs_server.Server.t
val addr : t -> Umrs_server.Wire.addr
(** The resolved listening address (TCP port 0 resolved). *)

val map_path : t -> string
val version : t -> int
val published : t -> Umrs_server.Wire.shard_map option
val deaths : t -> int
(** Members declared dead (missed beats or explicit leave). *)

val promotions : t -> int
(** Times a dead primary's replica took over its shard. *)

val shutdown : t -> unit
val wait : t -> unit
