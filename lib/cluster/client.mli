(** Routing client for a sharded cluster.

    Sits on top of {!Umrs_client.Robust} — one robust connection per
    endpoint, created lazily — and adds the three things a cluster
    needs beyond a resilient point-to-point call:

    {ul
    {- {b Key-range routing.} Point queries ([Nth], [Cgraph_of] by
       global rank; [Mem], [Rank] by key) go to exactly the shard the
       map says owns them ({!Umrs_server.Wire.route_index}/[route_key]);
       prefix ranges scatter over the owning span and the replies merge
       in key order, so every answer is in {e global} coordinates —
       byte-identical to a single server over the unsharded corpus.}
    {- {b Failover.} Each shard group rotates primary → replicas on
       transport failures ([Io] — refused connections and the circuit
       breaker's fast-fail included) and on [Overloaded] sheds, which
       the server issues {e before} executing (queue overflow, or the
       drain path of a node shutting down) — so re-driving a replica is
       always safe and a graceful node loss stays invisible. The
       preferred endpoint sticks across calls, so a dead primary is not
       re-probed per request. [Refused] and [Timed_out] verdicts pass
       through: they prove the path works.}
    {- {b Map refresh.} A {!Umrs_server.Wire.stale_shard_reject}
       verdict triggers one refresh and one re-route; a second stale
       verdict surfaces, so topology churn can never loop a call. The
       refresh is {e version-aware}: mid-flip some nodes still answer
       [Get_shard_map] with the previous topology, so the fetch walks
       the groups until it finds a map as new as the verdict named.}}

    {2 Thread safety}

    Unlike the handles it wraps, a client {e is} thread-safe: any
    number of threads may share one. Internally each topology version
    is an immutable {e epoch} (map + connection groups); a call routes
    against the epoch it entered with, and a concurrent refresh
    installs a fresh epoch while the old one's connections are closed
    only after its last caller leaves. Per-group locks serialize the
    underlying robust connections, so two threads targeting the same
    shard take turns on the wire while threads targeting different
    shards proceed in parallel.

    Refreshes are {e single-flight}: when N threads hit stale-shard
    verdicts against the same map version at once, one of them fetches
    [Get_shard_map] and the rest piggyback on the map it installs —
    the cluster sees one fetch, not a stampede of N. *)

type t

val default_policy : Umrs_client.Robust.policy
(** {!Umrs_client.Robust.default_policy} tightened for failover duty
    (1 connect retry, 1 call retry, 1 s total connect wait, 0.1 s
    breaker cooldown): the group, not the endpoint, is the unit of
    availability, so a dead endpoint should be abandoned for a replica
    in well under a second. *)

val of_map :
  ?policy:Umrs_client.Robust.policy -> ?rng:Random.State.t ->
  Umrs_server.Wire.shard_map -> t
(** No I/O: connections are created on first use. Raises
    [Invalid_argument] on a map that fails
    {!Umrs_server.Wire.validate_shard_map}. *)

val fetch :
  ?policy:Umrs_client.Robust.policy -> ?rng:Random.State.t ->
  Umrs_server.Wire.addr -> (t, Umrs_client.error) result
(** Bootstrap from any cluster node: ask it [Get_shard_map] and build a
    client from the answer. *)

val map : t -> Umrs_server.Wire.shard_map
(** The map currently routed by (updated by stale-shard refreshes). *)

val close : t -> unit

(** {1 Calls} *)

val call :
  t -> ?deadline_ms:int -> Umrs_server.Wire.request
  -> (Umrs_server.Wire.response, Umrs_client.error) result
(** Route one request. Unrouted requests ([Ping], [Stats], [Evaluate],
    [Sleep_ms], the membership control plane, ...) go to the shard
    groups round-robin. A globally out-of-range index comes back
    [Refused], as a single server would answer. *)

val batch :
  t -> ?deadline_ms:int -> Umrs_server.Wire.request list
  -> (Umrs_server.Wire.response, Umrs_client.error) result list
(** Scatter-gather: requests bucket by owning shard, each bucket is one
    pipelined {!Umrs_client.Robust.call_many} (so a batch costs one
    flush per shard touched), and results reassemble in request order —
    multi-shard range slots merging their per-shard replies in key
    order. One result per request. *)

(** {1 Typed wrappers}

    Same contracts as the corresponding {!Umrs_client} calls, global
    coordinates throughout. *)

val corpus_info : t -> (Umrs_store.Corpus.header, Umrs_client.error) result
(** Answered locally from the map (which carries the unsharded corpus's
    identity) — no round-trip. *)

val ping : t -> (unit, Umrs_client.error) result
(** Round-trips a nonce through {e every} shard group (via any of its
    endpoints): the cluster-is-serving probe. *)

val nth : t -> int -> (Umrs_core.Matrix.t, Umrs_client.error) result
val mem : t -> Umrs_core.Matrix.t -> (bool, Umrs_client.error) result
val rank : t -> Umrs_core.Matrix.t -> (int, Umrs_client.error) result
val range_prefix : t -> int array -> (int * int, Umrs_client.error) result
val cgraph : t -> int -> (Umrs_core.Cgraph.t, Umrs_client.error) result

(** {1 Introspection} *)

type stats = {
  s_calls : int;      (** routed calls (batch slots included) *)
  s_failovers : int;  (** endpoint rotations on transport failure *)
  s_refreshes : int;  (** shard-map refreshes after stale verdicts *)
}

val stats : t -> stats
