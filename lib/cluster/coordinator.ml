module Wire = Umrs_server.Wire
module Server = Umrs_server.Server
module Corpus = Umrs_store.Corpus
module Query = Umrs_store.Query
module Shard = Umrs_store.Shard


let c_joins = Telemetry.counter "cluster.joins"
let c_deaths = Telemetry.counter "cluster.deaths"
let c_promotions = Telemetry.counter "cluster.promotions"
let c_publishes = Telemetry.counter "cluster.publishes"
let c_resharded = Telemetry.counter "cluster.reshards_completed"

let map_file = "cluster.umrsm"

type member = {
  m_addr : Wire.addr;
  mutable m_shard : int;       (* -1 = unassigned (orphaned by a merge) *)
  mutable m_ready : bool;
  mutable m_dead : bool;
  mutable m_checksum : int64;  (* last piece checksum the node reported *)
  mutable m_last : float;      (* wall-clock time of its last beat *)
  mutable m_cmd : Wire.node_cmd option;  (* delivered on its next beat *)
}

type pending =
  | Op_split of { ps_k : int; ps_mid : int; ps_owner : string }
  | Op_merge of { pm_k : int }

type config = {
  dir : string;          (* map file home *)
  corpus : string;       (* the FULL unsharded corpus *)
  listen : Wire.addr;
  shards : int;          (* initial topology when no map file exists *)
  heartbeat : float;     (* expected beat interval, seconds *)
  miss_limit : int;      (* beats missed before a node is declared dead *)
  workers : int;
  backend : Server.backend option;
}

let default_config ~dir ~corpus ~listen =
  { dir; corpus; listen; shards = 2; heartbeat = 0.5; miss_limit = 4;
    workers = 2; backend = None }

type t = {
  cfg : config;
  co_map_path : string;
  co_source : Corpus.header;
  co_query : Query.t;  (* full corpus: the canonical-checksum authority *)
  co_lock : Mutex.t;
  co_members : (string, member) Hashtbl.t;  (* keyed by addr_to_string *)
  mutable co_ranges : (int * int) array;
  mutable co_keys : int array array;
  mutable co_owners : string list array;  (* head = primary *)
  mutable co_version : int;
  mutable co_published : Wire.shard_map option;
  mutable co_pending : pending option;
  co_canon : (int * int, int64) Hashtbl.t;
  mutable co_self : Wire.addr;  (* resolved listen address *)
  mutable co_server : Server.t option;
  mutable co_stop : bool;
  mutable co_detector : Thread.t option;
  mutable co_deaths : int;
  mutable co_promotions : int;
}

let locked t f =
  Mutex.lock t.co_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.co_lock) f

(* The canonical checksum of record range [lo, hi): exactly the header
   checksum of a piece file holding those records, computed from the
   coordinator's own full corpus. This is what removes authority
   ambiguity from catch-up — a node's piece is correct iff its header
   checksum equals this fold, no matter which donor streamed it. *)
let canon t lo hi =
  match Hashtbl.find_opt t.co_canon (lo, hi) with
  | Some c -> c
  | None ->
    let h = t.co_source in
    let acc = ref Corpus.fnv64_seed in
    for i = lo to hi - 1 do
      acc :=
        Corpus.fnv64 !acc
          (Corpus.Record.encode ~p:h.Corpus.p ~q:h.Corpus.q ~d:h.Corpus.d
             (Query.nth t.co_query i))
    done;
    Hashtbl.add t.co_canon (lo, hi) !acc;
    !acc

let key_at t rank = Shard.matrix_key (Query.nth t.co_query rank)

let member t key = Hashtbl.find t.co_members key

let nranges t = Array.length t.co_ranges

(* ---------- map publication ---------- *)

exception Unpublishable

let shard_entry_locked t ~range:(lo, hi) ~key ~owners =
  match owners with
  | [] -> raise Unpublishable
  | p :: rs ->
    { Wire.sh_lo = lo; sh_hi = hi; sh_key = key;
      sh_primary = (member t p).m_addr;
      sh_replicas = List.map (fun r -> (member t r).m_addr) rs }

let assemble_map_locked t ~version shards =
  let h = t.co_source in
  { Wire.sm_version = version;
    sm_corpus_version = h.Corpus.version; sm_variant = h.Corpus.variant;
    sm_p = h.Corpus.p; sm_q = h.Corpus.q; sm_d = h.Corpus.d;
    sm_count = h.Corpus.count; sm_checksum = h.Corpus.checksum;
    sm_shards = shards }

let build_map_locked t =
  assemble_map_locked t ~version:t.co_version
    (Array.init (nranges t) (fun k ->
         shard_entry_locked t ~range:t.co_ranges.(k) ~key:t.co_keys.(k)
           ~owners:t.co_owners.(k)))

(* The post-flip topologies a reshard will produce, computed at command
   time: the acquiring node adopts the prospective map the moment its
   piece is local — BEFORE its handoff flips the real one — so a client
   routing under the flipped map can never catch it serving the old
   topology (a stale node answering a scatter with a slice from another
   version would corrupt the merge). The version is a floor — the real
   flip may land higher — which only stale verdicts see; the node syncs
   the true map once its handoff is accepted. [None] (degraded group)
   falls back to exactly that post-accept sync. *)
let prospective_split_locked t ~k ~mid ~owner =
  let n = nranges t in
  match
    assemble_map_locked t ~version:(t.co_version + 1)
      (Array.init (n + 1) (fun i ->
           if i = k then
             shard_entry_locked t
               ~range:(fst t.co_ranges.(k), mid)
               ~key:t.co_keys.(k) ~owners:t.co_owners.(k)
           else if i = k + 1 then
             shard_entry_locked t
               ~range:(mid, snd t.co_ranges.(k))
               ~key:(key_at t mid) ~owners:[ owner ]
           else
             let j = if i < k then i else i - 1 in
             shard_entry_locked t ~range:t.co_ranges.(j) ~key:t.co_keys.(j)
               ~owners:t.co_owners.(j)))
  with
  | sm -> Some sm
  | exception Unpublishable -> None

let prospective_merge_locked t ~k ~target =
  let n = nranges t in
  match
    assemble_map_locked t ~version:(t.co_version + 1)
      (Array.init (n - 1) (fun i ->
           if i = k then
             shard_entry_locked t
               ~range:(fst t.co_ranges.(k), snd t.co_ranges.(k + 1))
               ~key:t.co_keys.(k) ~owners:[ target ]
           else
             let j = if i < k then i else i + 1 in
             shard_entry_locked t ~range:t.co_ranges.(j) ~key:t.co_keys.(j)
               ~owners:t.co_owners.(j)))
  with
  | sm -> Some sm
  | exception Unpublishable -> None

(* Every topology change bumps the version — agents learn something
   moved from the version riding their heartbeat ack. Publication is
   gated harder: a map routes clients, so it only goes out while every
   range has at least one ready owner. A degraded cluster keeps its
   last good map (clients failover within the stale endpoint groups)
   until re-joins make the topology whole again. *)
let bump_and_publish_locked t =
  t.co_version <- t.co_version + 1;
  match build_map_locked t with
  | sm ->
    Shard_map.save ~path:t.co_map_path sm;
    t.co_published <- Some sm;
    Telemetry.add c_publishes 1
  | exception Unpublishable -> ()

(* ---------- failure handling ---------- *)

let die_locked t key reason =
  let m = member t key in
  if not m.m_dead then begin
    m.m_dead <- true;
    m.m_ready <- false;
    m.m_cmd <- None;
    t.co_deaths <- t.co_deaths + 1;
    Telemetry.add c_deaths 1;
    if Telemetry.enabled () then
      Telemetry.emit "cluster.death"
        [ ("node", Telemetry.Str key); ("reason", Telemetry.Str reason) ];
    if m.m_shard >= 0 && m.m_shard < nranges t then begin
      (match t.co_owners.(m.m_shard) with
      | p :: _ :: _ when p = key ->
        (* the primary fell; its first replica takes over at the bump *)
        t.co_promotions <- t.co_promotions + 1;
        Telemetry.add c_promotions 1
      | _ -> ());
      t.co_owners.(m.m_shard) <-
        List.filter (fun o -> o <> key) t.co_owners.(m.m_shard)
    end;
    (* a reshard whose moving parts died restarts from scratch *)
    (match t.co_pending with
    | Some (Op_split { ps_owner; _ }) when ps_owner = key ->
      t.co_pending <- None
    | Some (Op_merge { pm_k })
      when m.m_shard = pm_k || m.m_shard = pm_k + 1 ->
      t.co_pending <- None
    | _ -> ());
    bump_and_publish_locked t
  end

let detector_loop t =
  let tick = t.cfg.heartbeat /. 2.0 in
  while not t.co_stop do
    Unix.sleepf tick;
    if not t.co_stop then
      locked t (fun () ->
          let now = Unix.gettimeofday () in
          let deadline = float_of_int t.cfg.miss_limit *. t.cfg.heartbeat in
          Hashtbl.iter
            (fun key m ->
              if (not m.m_dead) && now -. m.m_last > deadline then
                die_locked t key
                  (Printf.sprintf "missed %d beats" t.cfg.miss_limit))
            t.co_members)
  done

(* ---------- membership handlers (all under the lock) ---------- *)

let live_count_locked t k =
  Hashtbl.fold
    (fun _ m acc -> if (not m.m_dead) && m.m_shard = k then acc + 1 else acc)
    t.co_members 0

let assign_shard_locked t m =
  if m.m_shard >= 0 && m.m_shard < nranges t then m.m_shard
  else begin
    (* least-populated group, counting joiners so simultaneous joins
       spread instead of piling onto the emptiest shard *)
    let best = ref 0 and best_n = ref max_int in
    for k = 0 to nranges t - 1 do
      let n = live_count_locked t k in
      if n < !best_n then begin
        best := k;
        best_n := n
      end
    done;
    !best
  end

let donor_locked t k ~self_key =
  match t.co_owners.(k) with
  | p :: _ when p <> self_key -> (member t p).m_addr
  | _ -> t.co_self  (* the coordinator serves the full corpus *)

let handle_join t ~addr ~ready ~checksum =
  let key = Wire.addr_to_string addr in
  let now = Unix.gettimeofday () in
  let m =
    match Hashtbl.find_opt t.co_members key with
    | Some m ->
      if m.m_dead then begin
        (* a returning corpse restarts its life as a joiner *)
        m.m_dead <- false;
        m.m_ready <- false;
        m.m_cmd <- None
      end;
      m.m_last <- now;
      m
    | None ->
      let m =
        { m_addr = addr; m_shard = -1; m_ready = false; m_dead = false;
          m_checksum = 0L; m_last = now; m_cmd = None }
      in
      Hashtbl.add t.co_members key m;
      Telemetry.add c_joins 1;
      m
  in
  let k = assign_shard_locked t m in
  m.m_shard <- k;
  let lo, hi = t.co_ranges.(k) in
  let want = canon t lo hi in
  if ready && checksum <> want then
    Wire.Rejected
      (Printf.sprintf
         "join refused: piece checksum %Lx does not match canonical %Lx for \
          records [%d, %d)"
         checksum want lo hi)
  else begin
    if ready then begin
      m.m_ready <- true;
      m.m_checksum <- checksum;
      if not (List.mem key t.co_owners.(k)) then
        t.co_owners.(k) <- t.co_owners.(k) @ [ key ];
      bump_and_publish_locked t
    end;
    Wire.Reply
      (Wire.R_joined
         { jr_shard = k; jr_lo = lo; jr_hi = hi;
           jr_donor = donor_locked t k ~self_key:key; jr_checksum = want;
           jr_version = t.co_version; jr_map = t.co_published })
  end

let handle_heartbeat t ~addr ~version:_ ~checksum =
  let key = Wire.addr_to_string addr in
  match Hashtbl.find_opt t.co_members key with
  | None | Some { m_dead = true; _ } ->
    (* unknown or declared dead: the node must re-join — its piece may
       be stale against a topology that moved while it was gone *)
    Wire.Reply
      (Wire.R_heartbeat
         { rh_version = t.co_version; rh_known = false; rh_cmd = None })
  | Some m ->
    m.m_last <- Unix.gettimeofday ();
    m.m_checksum <- checksum;
    let cmd = m.m_cmd in
    m.m_cmd <- None;
    Wire.Reply
      (Wire.R_heartbeat
         { rh_version = t.co_version; rh_known = true; rh_cmd = cmd })

let handle_leave t ~addr =
  let key = Wire.addr_to_string addr in
  match Hashtbl.find_opt t.co_members key with
  | None -> Wire.Rejected ("leave: unknown node " ^ key)
  | Some _ ->
    die_locked t key "leave";
    Wire.Reply (Wire.R_accepted (key ^ " left"))

let handle_reshard t op =
  if t.co_pending <> None then
    Wire.Rejected "reshard refused: another reshard is in flight"
  else if t.co_published = None then
    Wire.Rejected "reshard refused: no published map to reshard"
  else
    match op with
    | Wire.Split k ->
      if k < 0 || k >= nranges t then
        Wire.Rejected (Printf.sprintf "split refused: no shard %d" k)
      else begin
        let lo, hi = t.co_ranges.(k) in
        if hi - lo < 2 then
          Wire.Rejected
            (Printf.sprintf "split refused: shard %d holds %d record(s)" k
               (hi - lo))
        else begin
          (* the new range's owner is poached from the best-staffed
             group — and unlisted from the map BEFORE it starts
             acquiring, so no client routes to it while it swaps *)
          let big = ref (-1) and big_n = ref 1 in
          Array.iteri
            (fun g os ->
              let n = List.length os in
              if n > !big_n then begin
                big := g;
                big_n := n
              end)
            t.co_owners;
          if !big < 0 then
            Wire.Rejected
              "split refused: no group can spare a node for the new range"
          else begin
            let owner = List.nth t.co_owners.(!big) (!big_n - 1) in
            let om = member t owner in
            t.co_owners.(!big) <-
              List.filter (fun o -> o <> owner) t.co_owners.(!big);
            om.m_ready <- false;
            let mid = lo + ((hi - lo) / 2) in
            om.m_cmd <-
              Some
                (Wire.Cmd_acquire
                   { aq_lo = mid; aq_hi = hi;
                     aq_donor = donor_locked t k ~self_key:owner;
                     aq_map = prospective_split_locked t ~k ~mid ~owner });
            t.co_pending <- Some (Op_split { ps_k = k; ps_mid = mid;
                                             ps_owner = owner });
            bump_and_publish_locked t;
            Wire.Reply
              (Wire.R_accepted
                 (Printf.sprintf
                    "splitting shard %d at record %d; %s is acquiring [%d, %d)"
                    k mid owner mid hi))
          end
        end
      end
    | Wire.Merge k ->
      if k < 0 || k >= nranges t - 1 then
        Wire.Rejected
          (Printf.sprintf "merge refused: no adjacent pair (%d, %d)" k (k + 1))
      else begin
        let lo, _ = t.co_ranges.(k) in
        let _, hi = t.co_ranges.(k + 1) in
        let targets = t.co_owners.(k) in
        if targets = [] then
          Wire.Rejected
            (Printf.sprintf "merge refused: shard %d has no ready owner" k)
        else begin
          List.iter
            (fun o ->
              (member t o).m_cmd <-
                Some
                  (Wire.Cmd_acquire
                     { aq_lo = lo; aq_hi = hi; aq_donor = t.co_self;
                       aq_map = prospective_merge_locked t ~k ~target:o }))
            targets;
          t.co_pending <- Some (Op_merge { pm_k = k });
          Wire.Reply
            (Wire.R_accepted
               (Printf.sprintf
                  "merging shards %d and %d; group %d is acquiring [%d, %d)" k
                  (k + 1) k lo hi))
        end
      end

(* Insert the new range after a completed split: [k] narrows to
   [lo, mid), the acquiring owner becomes shard [k+1] = [mid, hi). *)
let flip_split_locked t ~k ~mid ~owner ~key =
  let lo, hi = t.co_ranges.(k) in
  let n = nranges t in
  let insert arr v =
    Array.init (n + 1) (fun i ->
        if i <= k then arr.(i) else if i = k + 1 then v else arr.(i - 1))
  in
  t.co_ranges <- insert t.co_ranges (mid, hi);
  t.co_ranges.(k) <- (lo, mid);
  t.co_keys <- insert t.co_keys key;
  t.co_owners <- insert t.co_owners [ owner ];
  Hashtbl.iter
    (fun mk m ->
      if mk = owner then m.m_shard <- k + 1
      else if m.m_shard > k then m.m_shard <- m.m_shard + 1)
    t.co_members;
  let om = member t owner in
  om.m_ready <- true;
  t.co_pending <- None;
  Telemetry.add c_resharded 1;
  bump_and_publish_locked t

(* Collapse [k] and [k+1] after the first group-[k] node holds the
   merged range. Laggards of group [k] drop out of the map until their
   own Handoff_done upserts them back; group [k+1] is orphaned and its
   members re-enter through a fresh join. *)
let flip_merge_locked t ~k ~reporter =
  let lo, _ = t.co_ranges.(k) in
  let _, hi = t.co_ranges.(k + 1) in
  let n = nranges t in
  let remove arr =
    Array.init (n - 1) (fun i -> if i <= k then arr.(i) else arr.(i + 1))
  in
  t.co_ranges <- remove t.co_ranges;
  t.co_ranges.(k) <- (lo, hi);
  t.co_keys <- remove t.co_keys;
  t.co_owners <- remove t.co_owners;
  t.co_owners.(k) <- [ reporter ];
  Hashtbl.iter
    (fun mk m ->
      if m.m_shard = k && mk <> reporter then m.m_ready <- false
      else if m.m_shard = k + 1 then begin
        m.m_shard <- -1;
        m.m_ready <- false;
        m.m_cmd <- None
      end
      else if m.m_shard > k + 1 then m.m_shard <- m.m_shard - 1)
    t.co_members;
  (member t reporter).m_ready <- true;
  t.co_pending <- None;
  Telemetry.add c_resharded 1;
  bump_and_publish_locked t

let handle_handoff t ~addr ~lo ~hi ~key ~checksum =
  let mkey = Wire.addr_to_string addr in
  match Hashtbl.find_opt t.co_members mkey with
  | None | Some { m_dead = true; _ } ->
    Wire.Rejected ("handoff from unknown or dead node " ^ mkey)
  | Some m ->
    let want = canon t lo hi in
    if checksum <> want then
      Wire.Rejected
        (Printf.sprintf
           "handoff refused: checksum %Lx does not match canonical %Lx for \
            [%d, %d)"
           checksum want lo hi)
    else if key <> key_at t lo then
      Wire.Rejected "handoff refused: boundary key does not match record"
    else begin
      m.m_checksum <- checksum;
      m.m_last <- Unix.gettimeofday ();
      match t.co_pending with
      | Some (Op_split { ps_k; ps_mid; ps_owner })
        when ps_owner = mkey && lo = ps_mid
             && hi = snd t.co_ranges.(ps_k) ->
        flip_split_locked t ~k:ps_k ~mid:ps_mid ~owner:mkey ~key;
        Wire.Reply
          (Wire.R_accepted
             (Printf.sprintf "split complete: shard %d now [%d, %d)"
                (ps_k + 1) lo hi))
      | Some (Op_merge { pm_k })
        when m.m_shard = pm_k && lo = fst t.co_ranges.(pm_k)
             && hi = snd t.co_ranges.(pm_k + 1) ->
        flip_merge_locked t ~k:pm_k ~reporter:mkey;
        Wire.Reply
          (Wire.R_accepted
             (Printf.sprintf "merge complete: shard %d now [%d, %d)" pm_k lo
                hi))
      | _ ->
        (* no pending op matches: a laggard finishing after the flip.
           If it now holds exactly its shard's current range, upsert
           it back into rotation. *)
        if
          m.m_shard >= 0
          && m.m_shard < nranges t
          && t.co_ranges.(m.m_shard) = (lo, hi)
        then begin
          m.m_ready <- true;
          if not (List.mem mkey t.co_owners.(m.m_shard)) then
            t.co_owners.(m.m_shard) <- t.co_owners.(m.m_shard) @ [ mkey ];
          bump_and_publish_locked t;
          Wire.Reply
            (Wire.R_accepted
               (Printf.sprintf "%s re-entered rotation for shard %d" mkey
                  m.m_shard))
        end
        else
          Wire.Rejected
            (Printf.sprintf
               "handoff for [%d, %d) matches no pending operation or owned \
                range"
               lo hi)
    end

let handle_status t =
  let now = Unix.gettimeofday () in
  let members =
    Hashtbl.fold
      (fun key m acc ->
        let in_map =
          m.m_shard >= 0
          && m.m_shard < nranges t
          && List.mem key t.co_owners.(m.m_shard)
        in
        let primary =
          in_map
          && match t.co_owners.(m.m_shard) with
             | p :: _ -> p = key
             | [] -> false
        in
        { Wire.mi_addr = m.m_addr; mi_shard = m.m_shard;
          mi_state =
            (if m.m_dead then Wire.Dead
             else if m.m_ready then Wire.Ready
             else Wire.Joining);
          mi_in_map = in_map; mi_primary = primary;
          mi_checksum = m.m_checksum; mi_beat_age = now -. m.m_last }
        :: acc)
      t.co_members []
  in
  Wire.Reply
    (Wire.R_status
       { cs_version = t.co_version;
         cs_published = t.co_published <> None;
         cs_members = members })

let handle t req =
  locked t (fun () ->
      match req with
      | Wire.Join { jn_addr; jn_ready; jn_checksum } ->
        handle_join t ~addr:jn_addr ~ready:jn_ready ~checksum:jn_checksum
      | Wire.Leave addr -> handle_leave t ~addr
      | Wire.Heartbeat { hb_addr; hb_version; hb_checksum } ->
        handle_heartbeat t ~addr:hb_addr ~version:hb_version
          ~checksum:hb_checksum
      | Wire.Reshard op -> handle_reshard t op
      | Wire.Handoff_done { hd_addr; hd_lo; hd_hi; hd_key; hd_checksum } ->
        handle_handoff t ~addr:hd_addr ~lo:hd_lo ~hi:hd_hi ~key:hd_key
          ~checksum:hd_checksum
      | Wire.Cluster_status -> handle_status t
      | Wire.Get_shard_map -> (
        match t.co_published with
        | Some sm -> Wire.Reply (Wire.R_shard_map sm)
        | None -> Wire.Rejected "no shard map published yet")
      | _ -> Wire.Rejected "not a membership request")

(* ---------- lifecycle ---------- *)

let start cfg =
  if cfg.shards < 1 then Error "Coordinator.start: shards must be >= 1"
  else if cfg.heartbeat <= 0.0 then
    Error "Coordinator.start: heartbeat must be > 0"
  else if cfg.miss_limit < 1 then
    Error "Coordinator.start: miss_limit must be >= 1"
  else begin
    (match Membership.clean_dir cfg.dir with Ok () | Error _ -> ());
    match Query.open_ ~corpus:cfg.corpus () with
    | Error e -> Error (Query.error_to_string e)
    | Ok query -> (
      let source = Query.header query in
      let map_path = Filename.concat cfg.dir map_file in
      let adopt =
        if Sys.file_exists map_path then
          match Shard_map.load ~path:map_path with
          | Ok sm ->
            if sm.Wire.sm_checksum <> source.Corpus.checksum
               || sm.Wire.sm_count <> source.Corpus.count
            then
              Error
                (map_path
               ^ ": existing shard map describes a different corpus")
            else Ok (Some sm)
          | Error m -> Error m
        else Ok None
      in
      match adopt with
      | Error m ->
        Query.close query;
        Error m
      | Ok prior ->
        let ranges, keys, version =
          match prior with
          | Some sm ->
            (* a coordinator restart keeps the resharded topology;
               owners repopulate as the nodes re-join *)
            ( Array.map
                (fun sh -> (sh.Wire.sh_lo, sh.Wire.sh_hi))
                sm.Wire.sm_shards,
              Array.map (fun sh -> sh.Wire.sh_key) sm.Wire.sm_shards,
              sm.Wire.sm_version + 1 )
          | None ->
            if source.Corpus.count < cfg.shards then
              invalid_arg "Coordinator.start: fewer records than shards";
            ( Array.init cfg.shards
                (Shard.bounds ~count:source.Corpus.count ~shards:cfg.shards),
              [||], 1 )
        in
        let t =
          { cfg; co_map_path = map_path; co_source = source;
            co_query = query; co_lock = Mutex.create ();
            co_members = Hashtbl.create 16; co_ranges = ranges;
            co_keys = keys; co_owners = Array.make (Array.length ranges) [];
            co_version = version; co_published = None; co_pending = None;
            co_canon = Hashtbl.create 8; co_self = cfg.listen;
            co_server = None; co_stop = false; co_detector = None;
            co_deaths = 0; co_promotions = 0 }
        in
        if t.co_keys = [||] then
          t.co_keys <- Array.map (fun (lo, _) -> key_at t lo) t.co_ranges;
        let scfg =
          { (Server.default_config cfg.listen) with
            Server.workers = cfg.workers; corpus = Some cfg.corpus;
            membership = Some (handle t);
            backend =
              (match cfg.backend with
              | Some b -> b
              | None -> (Server.default_config cfg.listen).Server.backend) }
        in
        (match Server.start scfg with
        | Error m ->
          Query.close query;
          Error m
        | Ok srv ->
          t.co_self <- Server.addr srv;
          t.co_server <- Some srv;
          t.co_detector <- Some (Thread.create detector_loop t);
          Ok t))
  end

let server t =
  match t.co_server with Some s -> s | None -> assert false

let addr t = t.co_self
let map_path t = t.co_map_path
let version t = locked t (fun () -> t.co_version)
let published t = locked t (fun () -> t.co_published)
let deaths t = locked t (fun () -> t.co_deaths)
let promotions t = locked t (fun () -> t.co_promotions)

let shutdown t =
  t.co_stop <- true;
  Server.shutdown (server t)

let wait t =
  Server.wait (server t);
  t.co_stop <- true;
  (match t.co_detector with
  | Some th ->
    Thread.join th;
    t.co_detector <- None
  | None -> ());
  Query.close t.co_query
