module Wire = Umrs_server.Wire
module Server = Umrs_server.Server
module C = Umrs_client
module Corpus = Umrs_store.Corpus
module Query = Umrs_store.Query
module Shard = Umrs_store.Shard
module Io = Umrs_fault.Io
module Fault = Umrs_fault.Fault


let c_beats = Telemetry.counter "cluster.node.heartbeats"
let c_catchups = Telemetry.counter "cluster.node.catchups"
let c_rejoins = Telemetry.counter "cluster.node.rejoins"

(* ---------- data-dir hygiene ---------- *)

(* Unix socket paths and atomic-publication tempfiles survive SIGKILL;
   a restarting node must sweep them or its own bind fails on its own
   corpse. The socket probe is the server's: a *connectable* socket is
   a live server and an address-in-use error, never a delete. *)
let clean_dir dir =
  if not (Sys.file_exists dir) then
    match Unix.mkdir dir 0o755 with
    | () -> Ok ()
    | exception Unix.Unix_error (e, _, _) ->
      Error (dir ^ ": " ^ Unix.error_message e)
  else if not (Sys.is_directory dir) then Error (dir ^ ": not a directory")
  else begin
    let failure = ref None in
    Array.iter
      (fun f ->
        if !failure = None then begin
          let path = Filename.concat dir f in
          if Filename.check_suffix f ".sock" then (
            match Server.clear_stale_socket path with
            | Ok () -> ()
            | Error m -> failure := Some m)
          else if Filename.check_suffix f ".tmp" then
            try Sys.remove path with Sys_error _ -> ()
        end)
      (Sys.readdir dir);
    match !failure with None -> Ok () | Some m -> Error m
  end

(* ---------- piece files ---------- *)

(* The range is in the name, so a returning node can tell what it
   holds by listing its dir; whether the bytes are still CURRENT is
   decided by checksum against the coordinator's canonical value,
   never by the name. *)
let piece_path dir lo hi =
  Filename.concat dir (Printf.sprintf "piece.%d-%d.corpus" lo hi)

let local_piece dir lo hi =
  let path = piece_path dir lo hi in
  if not (Sys.file_exists path) then None
  else
    match Corpus.info ~path with
    | h -> Some (path, h.Corpus.checksum)
    | exception (Sys_error _ | Invalid_argument _) -> None

let ensure_index path =
  let idx = Query.index_path path in
  if Sys.file_exists idx then Ok ()
  else
    match Query.build ~corpus:path () with
    | Ok _ -> Ok ()
    | Error e -> Error (Query.error_to_string e)

(* ---------- configuration ---------- *)

type config = {
  coordinator : Wire.addr;
  dir : string;
  listen : Wire.addr;
  advertise : Wire.addr option;  (* default: the resolved listen addr *)
  heartbeat : float;
  workers : int;
  backend : Server.backend option;
  join_attempts : int;
}

let default_config ~coordinator ~dir ~listen =
  { coordinator; dir; listen; advertise = None; heartbeat = 0.5;
    workers = 2; backend = None; join_attempts = 10 }

type t = {
  cfg : config;
  ms_server : Server.t;
  ms_self : Wire.addr;
  ms_conn : C.Robust.conn;  (* heartbeat-thread channel; single-threaded *)
  ms_lock : Mutex.t;
  mutable ms_version : int;
  mutable ms_range : (int * int) option;
  mutable ms_checksum : int64;
  mutable ms_ready : bool;
  mutable ms_stop : bool;
  mutable ms_hb : Thread.t option;
  mutable ms_acquiring : bool;
  mutable ms_catchups : int;  (* piece fetches completed *)
  mutable ms_last_error : string option;
  (* Topology/piece installation is a multi-step swap (shard state,
     piece file, bookkeeping) racing between the heartbeat thread
     (map refetches) and an acquire thread (command handoffs).
     [ms_apply] serializes every such swap, and [ms_map_version]
     (under [ms_lock]) records the version of the topology currently
     installed so a map fetched before a flip can never be applied
     after it — a stale application would narrow away a piece a newer
     topology already claimed. *)
  ms_apply : Mutex.t;
  mutable ms_map_version : int;
}

let locked t f =
  Mutex.lock t.ms_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.ms_lock) f

let applying t f =
  Mutex.lock t.ms_apply;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.ms_apply) f

let fail t m =
  locked t (fun () -> t.ms_last_error <- Some m);
  Error m

(* ---------- acquiring a range from a donor ---------- *)

let batch_size = 256

(* Stream records [lo, hi) from [donor] into a fresh piece file.
   Records travel as pipelined [Nth] batches — the donor may be the
   coordinator (full corpus) or any node whose range covers [lo, hi):
   both serve GLOBAL indices, so the fetch loop cannot tell them
   apart. The piece is written in canonical record order through the
   atomic-publication seam, so any two nodes acquiring the same range
   hold byte-identical files. Returns the piece path, its checksum and
   its first record's routing key. *)
let acquire t ~donor ~lo ~hi ~want =
  let conn = C.Robust.create ~policy:Client.default_policy donor in
  Fun.protect ~finally:(fun () -> C.Robust.close conn) @@ fun () ->
  match C.Robust.call conn Wire.Corpus_info with
  | Error e -> Error ("donor corpus info: " ^ C.error_to_string e)
  | Ok (Wire.R_header h) -> (
    let final = piece_path t.cfg.dir lo hi in
    let tmp = final ^ ".tmp" in
    let w =
      Corpus.create_writer ~path:tmp ~variant:h.Corpus.variant
        ~p:h.Corpus.p ~q:h.Corpus.q ~d:h.Corpus.d
    in
    let first_key = ref [||] in
    let rec pull i =
      if i >= hi then Ok ()
      else begin
        let n = min batch_size (hi - i) in
        let rs =
          C.Robust.call_many conn (List.init n (fun j -> Wire.Nth (i + j)))
        in
        let rec store j = function
          | [] -> pull (i + n)
          | Ok (Wire.R_matrix m) :: rest ->
            if i + j = lo then first_key := Shard.matrix_key m;
            Corpus.write w m;
            store (j + 1) rest
          | Ok _ :: _ -> Error "donor answered Nth with a non-matrix"
          | Error e :: _ ->
            Error
              (Printf.sprintf "fetching record %d: %s" (i + j)
                 (C.error_to_string e))
        in
        store 0 rs
      end
    in
    match pull lo with
    | Error m ->
      (try Corpus.close_writer w |> ignore with _ -> ());
      (try Sys.remove tmp with Sys_error _ -> ());
      Error m
    | Ok () -> (
      let hdr = Corpus.close_writer w in
      match want with
      | Some want when hdr.Corpus.checksum <> want ->
        (try Sys.remove tmp with Sys_error _ -> ());
        Error
          (Printf.sprintf
             "acquired piece checksum %Lx does not match canonical %Lx"
             hdr.Corpus.checksum want)
      | _ -> (
        Io.rename ~src:tmp ~dst:final;
        Io.fsync_dir (Filename.dirname final);
        match ensure_index final with
        | Error m -> Error m
        | Ok () ->
          locked t (fun () -> t.ms_catchups <- t.ms_catchups + 1);
          Telemetry.add c_catchups 1;
          Ok (final, hdr.Corpus.checksum, !first_key))))
  | Ok _ -> Error "donor answered Corpus_info with a non-header"

(* ---------- map application ---------- *)

(* Shard state first, piece narrowing second: the superset piece
   answers correctly under the narrowed state (same [lo], global→local
   translation unchanged), while a narrowed piece under the old state
   would read past its own end. This ordering is the double-serving
   invariant seen from the node's side. *)
let narrow t ~lo ~hi =
  match locked t (fun () -> t.ms_range) with
  | Some (plo, phi) when plo = lo && phi > hi -> (
    let old = piece_path t.cfg.dir plo phi in
    let final = piece_path t.cfg.dir lo hi in
    let tmp = final ^ ".tmp" in
    match Corpus.open_reader ~path:old with
    | exception (Sys_error m | Invalid_argument m) -> ignore (fail t m)
    | r ->
      let h = Corpus.reader_header r in
      let w =
        Corpus.create_writer ~path:tmp ~variant:h.Corpus.variant
          ~p:h.Corpus.p ~q:h.Corpus.q ~d:h.Corpus.d
      in
      for _ = lo to hi - 1 do
        match Corpus.read_next r with
        | Some m -> Corpus.write w m
        | None -> ()
      done;
      Corpus.close_reader r;
      let hdr = Corpus.close_writer w in
      Io.rename ~src:tmp ~dst:final;
      Io.fsync_dir (Filename.dirname final);
      (match ensure_index final with
      | Error m -> ignore (fail t m)
      | Ok () -> (
        match Server.set_corpus t.ms_server ~corpus:(Some final) ~origin:lo ()
        with
        | Error m -> ignore (fail t m)
        | Ok () ->
          locked t (fun () ->
              t.ms_range <- Some (lo, hi);
              t.ms_checksum <- hdr.Corpus.checksum);
          (* the retired superset is garbage now *)
          (try Sys.remove old with Sys_error _ -> ());
          (try Sys.remove (Query.index_path old) with Sys_error _ -> ()))))
  | _ -> ()

(* Adopt a published map: [true] iff this node appears in it.

   Version-monotonic: a map older than the topology this node already
   installed is ignored (reported as [true] — a stale map carries no
   authority about current membership either). Without the guard, a
   map fetched just before a flip and applied just after an acquire
   thread swapped in the post-flip state would narrow the freshly
   acquired piece back down to the pre-flip range and delete the
   bytes the new topology claims this node holds. *)
let apply_map_unlocked t sm =
  if locked t (fun () -> sm.Wire.sm_version < t.ms_map_version) then true
  else begin
    let me = Wire.addr_to_string t.ms_self in
    let mine = ref None in
    Array.iteri
      (fun k sh ->
        if
          Wire.addr_to_string sh.Wire.sh_primary = me
          || List.exists
               (fun a -> Wire.addr_to_string a = me)
               sh.Wire.sh_replicas
        then mine := Some k)
      sm.Wire.sm_shards;
    match !mine with
    | None -> false
    | Some k ->
      locked t (fun () ->
          t.ms_map_version <- max t.ms_map_version sm.Wire.sm_version);
      (match Server.set_shard t.ms_server (Some (sm, k)) with
      | Ok () ->
        let sh = sm.Wire.sm_shards.(k) in
        narrow t ~lo:sh.Wire.sh_lo ~hi:sh.Wire.sh_hi
      | Error m -> ignore (fail t m));
      true
  end

let apply_map t sm = applying t (fun () -> apply_map_unlocked t sm)

(* Adopt a topology the coordinator has commanded but not yet
   published (a reshard's post-flip map, or a join assignment): the
   node locates its shard by the range it is taking over and serves
   under the new map so a client routing under the flipped topology
   can never catch it answering from the old one. NOT advertised —
   [Get_shard_map] keeps returning the last published map, so a
   refreshing client cannot install a map the coordinator hasn't
   flipped. Returns [true] iff the range was found and adopted. *)
let adopt_prospective_unlocked t sm ~lo ~hi =
  let mine = ref None in
  Array.iteri
    (fun k sh ->
      if sh.Wire.sh_lo = lo && sh.Wire.sh_hi = hi then mine := Some k)
    sm.Wire.sm_shards;
  match !mine with
  | None -> false
  | Some k -> (
    match Server.set_shard t.ms_server ~advertise:false (Some (sm, k)) with
    | Ok () ->
      (* claim the prospective version: once the post-flip topology is
         installed, no pre-flip map fetch may roll it back *)
      locked t (fun () ->
          t.ms_map_version <- max t.ms_map_version sm.Wire.sm_version);
      true
    | Error m ->
      ignore (fail t m);
      false)

(* ---------- joining ---------- *)

let join_once t =
  let my_checksum =
    match locked t (fun () -> t.ms_range) with
    | Some (lo, hi) -> (
      match local_piece t.cfg.dir lo hi with
      | Some (_, ck) -> ck
      | None -> 0L)
    | None -> 0L
  in
  match
    C.Robust.call t.ms_conn
      (Wire.Join
         { jn_addr = t.ms_self; jn_ready = false; jn_checksum = my_checksum })
  with
  | Error e -> fail t ("join: " ^ C.error_to_string e)
  | Ok (Wire.R_joined { jr_lo; jr_hi; jr_donor; jr_checksum; jr_map; _ }) -> (
    (* reuse the piece on disk iff its bytes are provably current;
       otherwise catch up by re-fetching the range from the donor *)
    let piece =
      match local_piece t.cfg.dir jr_lo jr_hi with
      | Some (path, ck) when ck = jr_checksum -> (
        match ensure_index path with
        | Ok () -> Ok (path, ck)
        | Error m -> Error m)
      | _ -> (
        match
          acquire t ~donor:jr_donor ~lo:jr_lo ~hi:jr_hi
            ~want:(Some jr_checksum)
        with
        | Ok (path, ck, _) -> Ok (path, ck)
        | Error m -> Error m)
    in
    match piece with
    | Error m -> fail t m
    | Ok (path, ck) -> (
      (* Shard state before corpus: a returning node may still be held
         (at its old address) in stale client epochs, and until it
         routes under its newly assigned range those clients must get
         stale verdicts — never records translated under the wrong
         shard origin (the server compares the piece origin shipped
         with [set_corpus] against its shard state and answers the
         mismatch window as stale). A genuinely fresh node is in
         nobody's epoch, so the ordering costs it nothing. *)
      match
        applying t (fun () ->
            (match jr_map with
            | Some sm ->
              ignore (adopt_prospective_unlocked t sm ~lo:jr_lo ~hi:jr_hi)
            | None -> ());
            Server.set_corpus t.ms_server ~corpus:(Some path) ~origin:jr_lo ())
      with
      | Error m -> fail t m
      | Ok () -> (
        match
          C.Robust.call t.ms_conn
            (Wire.Join
               { jn_addr = t.ms_self; jn_ready = true; jn_checksum = ck })
        with
        | Error e -> fail t ("ready join: " ^ C.error_to_string e)
        | Ok (Wire.R_joined { jr_shard = _; jr_version; jr_map; _ }) ->
          locked t (fun () ->
              t.ms_range <- Some (jr_lo, jr_hi);
              t.ms_checksum <- ck;
              t.ms_ready <- true;
              t.ms_version <- jr_version);
          (match jr_map with
          | Some sm -> ignore (apply_map t sm)
          | None ->
            (* the cluster is not whole yet; the map arrives via a
               later heartbeat's version bump *)
            ());
          Ok ()
        | Ok (Wire.R_accepted _ | _) -> fail t "ready join: unexpected reply")))
  | Ok _ -> fail t "join: unexpected reply"

let rec join t attempts =
  match join_once t with
  | Ok () -> Ok ()
  | Error m ->
    if attempts <= 1 then Error m
    else begin
      Unix.sleepf t.cfg.heartbeat;
      join t (attempts - 1)
    end

let rejoin t =
  Telemetry.add c_rejoins 1;
  locked t (fun () -> t.ms_ready <- false);
  ignore (join t 1)

(* ---------- command execution ---------- *)

(* Resharding commands run off the heartbeat thread: an acquire can
   take many beat intervals, and a node that stops beating while it
   streams would be declared dead by the very coordinator that gave it
   the work. *)
let run_acquire t ~lo ~hi ~donor ~prospective =
  let report path ck key =
    let conn = C.Robust.create ~policy:Client.default_policy t.cfg.coordinator in
    Fun.protect ~finally:(fun () -> C.Robust.close conn) @@ fun () ->
    let same_lo =
      match locked t (fun () -> t.ms_range) with
      | Some (plo, _) -> plo = lo
      | None -> false
    in
    (* Before reporting, move to the post-flip state the command
       shipped, in per-case order. A merge keeps our [lo]: superset
       piece first (it serves the current shard state correctly —
       same origin, wider file), then the prospective map. A split
       owner takes a range with a NEW origin: prospective map first —
       the new range is unroutable until the flip, and old-range
       requests from stale epochs get verdicts — then the piece. Both
       orders guarantee the flip never catches this node routing
       under the old topology while the coordinator publishes the new
       one (a well-formed answer from the wrong version would be
       silently merged by a scattering client). *)
    let adopted = ref false in
    applying t (fun () ->
        if same_lo then (
          match
            Server.set_corpus t.ms_server ~corpus:(Some path) ~origin:lo ()
          with
          | Ok () ->
            locked t (fun () ->
                t.ms_range <- Some (lo, hi);
                t.ms_checksum <- ck);
            (match prospective with
            | Some sm -> adopted := adopt_prospective_unlocked t sm ~lo ~hi
            | None -> ())
          | Error m -> ignore (fail t m))
        else
          match prospective with
          | None -> ()
          | Some sm ->
            if adopt_prospective_unlocked t sm ~lo ~hi then (
              match
                Server.set_corpus t.ms_server ~corpus:(Some path) ~origin:lo
                  ()
              with
              | Ok () ->
                adopted := true;
                locked t (fun () ->
                    t.ms_range <- Some (lo, hi);
                    t.ms_checksum <- ck)
              | Error m -> ignore (fail t m)));
    match
      C.Robust.call conn
        (Wire.Handoff_done
           { hd_addr = t.ms_self; hd_lo = lo; hd_hi = hi; hd_key = key;
             hd_checksum = ck })
    with
    | Ok (Wire.R_accepted _) ->
      (* fallback for a command without a prospective map (degraded
         group at command time): swap after the accept — late, but
         the only option left *)
      if (not same_lo) && not !adopted then
        applying t (fun () ->
            ignore (Server.set_shard t.ms_server None);
            match
              Server.set_corpus t.ms_server ~corpus:(Some path) ~origin:lo ()
            with
            | Ok () ->
              locked t (fun () ->
                  t.ms_range <- Some (lo, hi);
                  t.ms_checksum <- ck)
            | Error m -> ignore (fail t m));
      (* the flip happened inside the accept: fetch the new map now
         rather than waiting out a heartbeat interval *)
      (match C.Robust.call conn Wire.Get_shard_map with
      | Ok (Wire.R_shard_map sm) ->
        if apply_map t sm then
          locked t (fun () -> t.ms_version <- sm.Wire.sm_version)
      | Ok _ | Error _ -> ());
      Ok ()
    | Ok _ -> fail t "handoff: unexpected reply"
    | Error e -> fail t ("handoff: " ^ C.error_to_string e)
  in
  match acquire t ~donor ~lo ~hi ~want:None with
  | Error m -> ignore (fail t m)
  | Ok (path, ck, key) -> ignore (report path ck key)

let start_acquire t ~lo ~hi ~donor ~prospective =
  let already = locked t (fun () ->
      if t.ms_acquiring then true
      else begin
        t.ms_acquiring <- true;
        false
      end)
  in
  if not already then begin
    (* The command supersedes every older topology right now, not when
       the handoff completes: claiming its version here (synchronously,
       on the heartbeat thread that delivered it) stops a concurrent
       refetch of the pre-command map from being applied mid-acquire —
       such an application would narrow the node's piece under the
       in-flight command's feet and retire the very piece file the
       acquire is writing (epochs share canonical piece paths). *)
    (match prospective with
    | Some sm ->
      locked t (fun () ->
          t.ms_map_version <- max t.ms_map_version sm.Wire.sm_version)
    | None -> ());
    ignore
      (Thread.create
         (fun () ->
           Fun.protect
             ~finally:(fun () -> locked t (fun () -> t.ms_acquiring <- false))
             (fun () -> run_acquire t ~lo ~hi ~donor ~prospective))
         ())
  end

(* ---------- heartbeat loop ---------- *)

let refetch_map t rh_version =
  match C.Robust.call t.ms_conn Wire.Get_shard_map with
  | Ok (Wire.R_shard_map sm) ->
    let in_map = apply_map t sm in
    locked t (fun () -> t.ms_version <- rh_version);
    if (not in_map) && locked t (fun () -> t.ms_ready) && not
         (locked t (fun () -> t.ms_acquiring))
    then
      (* ready but written out of the topology (e.g. orphaned by a
         merge): come back as a fresh joiner *)
      rejoin t
  | Ok _ | Error _ -> ()  (* degraded: try again next beat *)

let heartbeat_loop t =
  while not t.ms_stop do
    Unix.sleepf t.cfg.heartbeat;
    if not t.ms_stop then
      match Fault.fire Fault.Partition with
      | Fault.Pass -> (
        let beat =
          match Fault.fire Fault.Heartbeat_loss with
          | Fault.Pass -> true
          | _ -> false  (* this beat is lost in the network *)
        in
        if beat then begin
          Telemetry.add c_beats 1;
          let version, checksum =
            locked t (fun () -> (t.ms_version, t.ms_checksum))
          in
          match
            C.Robust.call t.ms_conn
              (Wire.Heartbeat
                 { hb_addr = t.ms_self; hb_version = version;
                   hb_checksum = checksum })
          with
          | Ok (Wire.R_heartbeat { rh_version; rh_known; rh_cmd }) ->
            if not rh_known then rejoin t
            else begin
              (match rh_cmd with
              | Some (Wire.Cmd_acquire { aq_lo; aq_hi; aq_donor; aq_map }) ->
                start_acquire t ~lo:aq_lo ~hi:aq_hi ~donor:aq_donor
                  ~prospective:aq_map
              | None -> ());
              if rh_version <> version then refetch_map t rh_version
            end
          | Ok _ | Error _ -> ()  (* unreachable beat; the next may land *)
        end)
      | _ -> ()  (* partitioned: the whole exchange is lost *)
  done

(* ---------- lifecycle ---------- *)

let start cfg =
  if cfg.heartbeat <= 0.0 then Error "Membership.start: heartbeat must be > 0"
  else
    match clean_dir cfg.dir with
    | Error m -> Error m
    | Ok () -> (
      let scfg =
        { (Server.default_config cfg.listen) with
          Server.workers = cfg.workers;
          backend =
            (match cfg.backend with
            | Some b -> b
            | None -> (Server.default_config cfg.listen).Server.backend) }
      in
      match Server.start scfg with
      | Error m -> Error m
      | Ok srv -> (
        let self =
          match cfg.advertise with Some a -> a | None -> Server.addr srv
        in
        let t =
          { cfg; ms_server = srv; ms_self = self;
            ms_conn =
              C.Robust.create ~policy:Client.default_policy cfg.coordinator;
            ms_lock = Mutex.create (); ms_version = 0; ms_range = None;
            ms_checksum = 0L; ms_ready = false; ms_stop = false;
            ms_hb = None; ms_acquiring = false; ms_catchups = 0;
            ms_last_error = None; ms_apply = Mutex.create ();
            ms_map_version = 0 }
        in
        match join t cfg.join_attempts with
        | Error m ->
          C.Robust.close t.ms_conn;
          Server.shutdown srv;
          Server.wait srv;
          Error m
        | Ok () ->
          t.ms_hb <- Some (Thread.create heartbeat_loop t);
          Ok t))

let server t = t.ms_server
let self_addr t = t.ms_self
let version t = locked t (fun () -> t.ms_version)
let range t = locked t (fun () -> t.ms_range)
let checksum t = locked t (fun () -> t.ms_checksum)
let catchups t = locked t (fun () -> t.ms_catchups)
let last_error t = locked t (fun () -> t.ms_last_error)

let stop ?(leave = true) t =
  if not t.ms_stop then begin
    t.ms_stop <- true;
    if leave then begin
      (* [ms_conn] belongs to the heartbeat thread, which may be
         mid-call right now — a second caller interleaving reads on
         the same socket would corrupt both frames. The goodbye gets
         its own connection. *)
      let conn =
        C.Robust.create ~policy:Client.default_policy t.cfg.coordinator
      in
      Fun.protect
        ~finally:(fun () -> C.Robust.close conn)
        (fun () -> ignore (C.Robust.call conn (Wire.Leave t.ms_self)))
    end;
    Server.shutdown t.ms_server
  end

let wait t =
  (match t.ms_hb with
  | Some th ->
    Thread.join th;
    t.ms_hb <- None
  | None -> ());
  Server.wait t.ms_server;
  C.Robust.close t.ms_conn
