(** In-process cluster supervisor.

    Splits one corpus into contiguous key-range pieces
    ({!Umrs_store.Shard.split}), builds and persists the shard map, and
    runs one {!Umrs_server.Server} per node — primary plus [replicas]
    failover nodes per shard group, each serving the {e same} piece
    under the same map slice, every one listening on its own
    Unix-domain socket under [dir]. Failover is therefore a pure
    client-side endpoint change; no data moves when a node dies.

    The supervisor runs the servers in the calling process (each server
    owns its own poller thread and worker domains). That is what the
    differential tests, the chaos storms and the bench need — and the
    CLI gets a real multi-process topology for free by running one
    supervisor per machine over the same shard map. *)

type t

val start :
  corpus:string -> shards:int -> dir:string -> ?replicas:int ->
  ?workers:int -> ?queue_capacity:int -> ?cache_capacity:int ->
  ?backend:Umrs_server.Server.backend -> ?map_version:int -> unit ->
  (t, string) result
(** Split [corpus] into [shards] pieces under [dir], write the shard
    map to [dir/cluster.umrsm], and start [shards * (replicas + 1)]
    servers (default [replicas = 0], 1 worker domain each). [dir] is
    first swept with {!Membership.clean_dir}, so socket paths and
    publication tempfiles left by a SIGKILLed predecessor never block
    the restart. On any node-start failure every already-started node
    is shut down before the error returns. [replicas < 0] raises
    [Invalid_argument]. *)

val map : t -> Umrs_server.Wire.shard_map
val map_path : t -> string
(** The persisted {!Shard_map} file under [dir]. *)

val addr : t -> shard:int -> role:int -> Umrs_server.Wire.addr
(** Role 0 is the primary, role [j > 0] replica [j-1]. *)

val shard_count : t -> int
val replica_count : t -> int

val live_nodes : t -> int
(** Nodes currently running (started and not yet killed/drained). *)

val kill : t -> shard:int -> role:int -> unit
(** Gracefully stop one node (drain + join) — the node-loss primitive
    chaos tests use. Idempotent. *)

val kill_primary : t -> int -> unit
(** [kill] role 0 of the given shard. *)

val worker_crashes : t -> int
(** Total worker-domain crashes across all nodes, including nodes
    already stopped. *)

val shutdown : t -> unit
(** Request graceful drain of every live node; returns immediately. *)

val wait : t -> unit
(** Block until every live node has fully drained. *)
