(** Building and persisting {!Umrs_server.Wire.shard_map} values.

    The wire layer owns the shard-map {e type} and codec (both sides of
    every connection link against it); this module owns its life
    outside a connection: construction from the pieces a
    {!Umrs_store.Shard.split} produced, and a small checksummed file
    format so a supervisor restart or an offline client can recover the
    topology without a live node.

    File layout (integers little-endian):

    {v offset  size  field
       0       8     magic "UMRSSMAP"
       8       2     schema version (currently 1)
       10      4     payload byte length
       14      8     FNV-1a 64 of the payload
       22      -     payload: the map's wire image
                     ({!Umrs_server.Wire.shard_map_to_bytes}) v} *)

val build :
  source:Umrs_store.Corpus.header -> version:int ->
  pieces:Umrs_store.Shard.piece array ->
  endpoints:(Umrs_server.Wire.addr * Umrs_server.Wire.addr list) array ->
  Umrs_server.Wire.shard_map
(** Assemble a map: identity from the {e unsharded} source corpus's
    header, ranges and boundary keys from the pieces, one
    [(primary, replicas)] endpoint group per piece. The result is
    validated ({!Umrs_server.Wire.validate_shard_map}); a mismatched or
    malformed assembly raises [Invalid_argument]. *)

val save : path:string -> Umrs_server.Wire.shard_map -> unit
(** Atomic publication through the {!Umrs_fault.Io} seam (tmp + fsync +
    rename + directory fsync): readers see the old map or the new map,
    never a torn hybrid. *)

val load : path:string -> (Umrs_server.Wire.shard_map, string) result
(** Never raises on file content: bad magic, schema, length, checksum,
    undecodable payload and invalid topology all come back as
    [Error], and every such message names the file path and the field
    that failed (["/dir/cluster.umrsm: shard map checksum: header …"])
    — a map file travels between nodes, so an error that cannot say
    {e which} file it condemns is useless to the operator. *)
