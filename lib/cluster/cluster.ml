module Wire = Umrs_server.Wire
module Server = Umrs_server.Server

type node = {
  nd_shard : int;
  nd_role : int;  (* 0 = primary, j > 0 = replica j-1 *)
  nd_addr : Wire.addr;
  mutable nd_server : Server.t option;
}

type t = {
  cl_map : Wire.shard_map;
  cl_map_path : string;
  cl_nodes : node array array;  (* [shard].[role] *)
  mutable cl_dead_crashes : int;  (* worker crashes of stopped nodes *)
}

let map t = t.cl_map
let map_path t = t.cl_map_path

let node_sock dir k role =
  Filename.concat dir
    (if role = 0 then Printf.sprintf "node%dp.sock" k
     else Printf.sprintf "node%dr%d.sock" k (role - 1))

let default_map_file = "cluster.umrsm"

let stop_node t nd =
  match nd.nd_server with
  | None -> ()
  | Some srv ->
    Server.shutdown srv;
    Server.wait srv;
    t.cl_dead_crashes <- t.cl_dead_crashes + Server.worker_crashes srv;
    nd.nd_server <- None

let start ~corpus ~shards ~dir ?(replicas = 0) ?(workers = 1)
    ?(queue_capacity = 64) ?(cache_capacity = 8) ?backend
    ?(map_version = 1) () =
  if replicas < 0 then invalid_arg "Cluster.start: replicas must be >= 0";
  match Umrs_store.Corpus.info ~path:corpus with
  | exception Sys_error m -> Error m
  | exception Invalid_argument m -> Error m
  | source -> (
    (* a previous cluster killed in this dir leaves socket paths and
       publication tempfiles behind; sweep them or our own binds fail *)
    match Membership.clean_dir dir with
    | Error _ as e -> e
    | Ok () ->
    match Umrs_store.Shard.split ~corpus ~shards ~out_dir:dir () with
    | Error _ as e -> e
    | Ok pieces ->
      let endpoints =
        Array.mapi
          (fun k _ ->
            ( Wire.Unix_sock (node_sock dir k 0),
              List.init replicas (fun j ->
                  Wire.Unix_sock (node_sock dir k (j + 1))) ))
          pieces
      in
      let map =
        Shard_map.build ~source ~version:map_version ~pieces ~endpoints
      in
      let map_path = Filename.concat dir default_map_file in
      Shard_map.save ~path:map_path map;
      (* Every node of shard group k — primary and replicas alike —
         serves the same piece under the same map slice, so failover is
         a pure client-side endpoint change. *)
      let nodes =
        Array.init (Array.length pieces) (fun k ->
            Array.init (replicas + 1) (fun role ->
                { nd_shard = k; nd_role = role;
                  nd_addr = Wire.Unix_sock (node_sock dir k role);
                  nd_server = None }))
      in
      let t =
        { cl_map = map; cl_map_path = map_path; cl_nodes = nodes;
          cl_dead_crashes = 0 }
      in
      let failure = ref None in
      Array.iteri
        (fun k group ->
          Array.iter
            (fun nd ->
              if !failure = None then begin
                let cfg =
                  { (Server.default_config nd.nd_addr) with
                    Server.workers; queue_capacity; cache_capacity;
                    corpus = Some pieces.(k).Umrs_store.Shard.pc_corpus;
                    shard = Some (map, k);
                    backend =
                      (match backend with
                      | Some b -> b
                      | None ->
                        (Server.default_config nd.nd_addr).Server.backend) }
                in
                match Server.start cfg with
                | Ok srv -> nd.nd_server <- Some srv
                | Error m ->
                  failure :=
                    Some
                      (Printf.sprintf "node %d/%d failed to start: %s" k
                         nd.nd_role m)
              end)
            group)
        nodes;
      match !failure with
      | None -> Ok t
      | Some m ->
        (* a half-started cluster never leaks servers *)
        Array.iter (Array.iter (stop_node t)) nodes;
        Error m)

let addr t ~shard ~role = t.cl_nodes.(shard).(role).nd_addr

let shard_count t = Array.length t.cl_nodes
let replica_count t = Array.length t.cl_nodes.(0) - 1

let live_nodes t =
  Array.fold_left
    (fun acc group ->
      Array.fold_left
        (fun acc nd -> if nd.nd_server = None then acc else acc + 1)
        acc group)
    0 t.cl_nodes

let kill t ~shard ~role = stop_node t t.cl_nodes.(shard).(role)
let kill_primary t shard = kill t ~shard ~role:0

let worker_crashes t =
  Array.fold_left
    (fun acc group ->
      Array.fold_left
        (fun acc nd ->
          match nd.nd_server with
          | None -> acc
          | Some srv -> acc + Server.worker_crashes srv)
        acc group)
    t.cl_dead_crashes t.cl_nodes

let shutdown t =
  Array.iter
    (fun group ->
      Array.iter
        (fun nd ->
          match nd.nd_server with Some srv -> Server.shutdown srv | None -> ())
        group)
    t.cl_nodes

let wait t = Array.iter (Array.iter (stop_node t)) t.cl_nodes
