type 'a t = {
  buf : 'a Queue.t;
  cap : int;
  m : Mutex.t;
  nonempty : Condition.t;
  mutable is_closed : bool;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Jobqueue.create: capacity must be >= 1";
  { buf = Queue.create (); cap = capacity; m = Mutex.create ();
    nonempty = Condition.create (); is_closed = false }

let capacity t = t.cap

let with_lock t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let length t = with_lock t (fun () -> Queue.length t.buf)

let try_push t x =
  with_lock t (fun () ->
      if t.is_closed || Queue.length t.buf >= t.cap then false
      else begin
        Queue.push x t.buf;
        Condition.signal t.nonempty;
        true
      end)

let pop t =
  with_lock t (fun () ->
      let rec wait () =
        if not (Queue.is_empty t.buf) then Some (Queue.pop t.buf)
        else if t.is_closed then None
        else begin
          Condition.wait t.nonempty t.m;
          wait ()
        end
      in
      wait ())

let close t =
  with_lock t (fun () ->
      t.is_closed <- true;
      Condition.broadcast t.nonempty)

let closed t = with_lock t (fun () -> t.is_closed)
