(* Re-export so server users name the loop [Umrs_server.Evloop] without
   depending on the standalone [umrs_evloop] library directly. *)
include Umrs_evloop
