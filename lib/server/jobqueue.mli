(** Bounded multi-producer/multi-consumer job queue (mutex + condition).

    The backpressure point of the server: connection readers push,
    worker domains pop. [try_push] never blocks — a full queue is the
    signal to shed load (the server answers [Overloaded]) instead of
    stalling the reader and silently growing latency. [pop] blocks
    until a job or until the queue is closed {e and} drained, which is
    exactly the graceful-shutdown contract: closing stops admission
    while every job already accepted is still handed to a worker. *)

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] if [capacity < 1]. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Jobs currently queued (racy by nature; for gauges and stats). *)

val try_push : 'a t -> 'a -> bool
(** [false] when the queue is full or closed; never blocks. *)

val pop : 'a t -> 'a option
(** Blocks for the next job; [None] once the queue is closed and every
    accepted job has been popped. *)

val close : 'a t -> unit
(** Stop admitting; wake every blocked [pop]. Idempotent. *)

val closed : 'a t -> bool
