(** Concurrent corpus/evaluation server.

    Serves the suite's heavy artifacts over a socket: indexed corpus
    queries ({!Umrs_store.Query}), on-demand Lemma-2 graph
    construction, and routing-scheme evaluation
    ({!Umrs_routing.Registry} + {!Umrs_routing.Scheme.evaluate}),
    speaking the {!Wire} protocol over TCP or a Unix-domain socket.

    {2 Architecture}

    Two interchangeable connection backends share one worker pool and
    one backpressure/drain policy:

    {e Epoll} (default): a single {e poller} thread owns the listening
    socket and every connection fd, all non-blocking, multiplexed
    through {!Evloop} (Linux epoll, [poll(2)]-based select fallback
    elsewhere). The poller accepts, performs the hello exchange,
    accumulates per-connection read buffers, decodes complete frames,
    answers control-plane requests ([Ping], [Stats]) inline, and pushes
    everything else onto a bounded {!Jobqueue} consumed by a pool of
    {e worker domains} (OCaml 5 [Domain.spawn]). A worker encodes its
    reply off-thread, queues it keyed by connection id (never fd, which
    the kernel recycles), and wakes the poller through an
    eventfd/self-pipe; the poller appends the frame to the connection's
    write buffer and flushes opportunistically, arming write interest
    only while bytes remain. A connection is a few KiB of buffer, not a
    thread — 10k+ concurrent connections are a Hashtbl, not a stack
    farm.

    {e Threads}: the PR-4 model — an {e acceptor} thread plus a
    {e reader} thread per connection, blocking channel I/O, responses
    written by whichever thread produced them under a per-connection
    write mutex. Simpler to reason about under ptrace/strace and kept
    as a behavioral reference; it tops out near the thread and
    FD_SETSIZE limits the epoll backend exists to remove.

    Out-of-order completion is expected under both backends; clients
    match responses by request id.

    A {e supervisor} thread watches the worker pool. An exception that
    escapes a request handler answers that request [Rejected], kills
    its domain (never reused: a poisoned handler must not bleed state
    into later requests), and the supervisor joins the corpse and
    spawns a replacement — the pool size is an invariant, even during
    drain. Crashes are counted ({!worker_crashes}, telemetry counter
    [server.worker_crashes]).

    {2 Backpressure, deadlines, caching}

    A full job queue sheds load: the request is answered [Overloaded]
    immediately instead of blocking, so a saturated server stays
    responsive and never builds unbounded latency. On the epoll backend
    a slow-reading client gets per-connection write backpressure too:
    above [wbuf_hwm] buffered reply bytes the poller stops reading that
    connection (the client feels TCP backpressure) and resumes below
    half the mark. Each request may carry a deadline; a job whose
    deadline expires while queued is answered [Timed_out] without being
    executed, and one that finishes past its deadline is answered
    [Timed_out] rather than returning a stale result late. Evaluation
    results are memoized in an {!Lru} cache keyed by (scheme name,
    graph name, {!Wire.graph_key}) — the key is the graph's full wire
    encoding, ports included, so two different graphs (even two that
    differ only in local port numbering) can never alias, not even by
    hash collision.

    With [mmap] set (the default) workers read the corpus through
    {!Umrs_store.Mmap} file mappings: every worker shares one mapping
    of the corpus and one of the index, record ranges come out of the
    page cache with a single [memcpy], and byte-for-byte identical
    results to the channel path (tested).

    {2 Shutdown}

    {!shutdown} (or SIGTERM/SIGINT after
    {!install_signal_handlers}) stops admission; every request already
    accepted is still executed and answered, workers drain the queue
    and exit, pending replies are flushed to their sockets (the epoll
    backend bounds the flush with a grace period against unreachable
    peers), telemetry metrics are flushed ({!Telemetry.flush}), and
    only then are connections closed. Per-worker {!Umrs_store.Query}
    handles are closed on the way out. *)

type backend =
  | Epoll   (** single poller thread, edge-level event loop ({!Evloop});
                falls back to [poll]/[select] multiplexing off-Linux *)
  | Threads (** acceptor + reader thread per connection (PR-4 model) *)

type config = {
  addr : Wire.addr;
  workers : int;             (** worker-domain count, >= 1 *)
  queue_capacity : int;      (** bounded job queue, >= 1 *)
  cache_capacity : int;      (** evaluation LRU entries, >= 1 *)
  corpus : string option;    (** corpus file to serve (optional) *)
  index : string option;     (** sidecar index (default: corpus + .umrsx) *)
  max_frame_bytes : int;     (** reject larger frames before allocating *)
  max_sleep_ms : int;        (** cap on [Sleep_ms] requests *)
  max_conns : int;           (** concurrent connections; excess are
                                 closed at accept, >= 1 *)
  handshake_timeout : float; (** seconds a fresh connection may take to
                                 send its hello; <= 0 disables *)
  backend : backend;         (** connection multiplexing model *)
  mmap : bool;               (** workers read the corpus through shared
                                 file mappings instead of channels *)
  wbuf_hwm : int;            (** epoll backend: buffered reply bytes per
                                 connection above which its reads pause
                                 (resume at half), >= 1 *)
  shard : (Wire.shard_map * int) option;
      (** when this node is one shard of a cluster: the shard map it
          serves under and its own index in [sm_shards]. The node then
          serves {e global} indices and ranks (validated against its key
          range, translated to its local slice), answers
          [Get_shard_map] inline, and rejects mis-routed requests with
          {!Wire.stale_shard_reject} so stale clients refresh. Runtime
          mutable through {!set_shard}. *)
  membership : (Wire.request -> Wire.outcome) option;
      (** a coordinator's handler for the membership control plane
          ([Join]/[Leave]/[Heartbeat]/[Reshard]/[Handoff_done]/
          [Cluster_status], and [Get_shard_map] when present). Runs on
          the poller/reader thread — it must stay fast and must not
          block on the data plane. Escaped exceptions answer the
          request [Rejected]. *)
}

val default_config : Wire.addr -> config
(** 2 workers, queue 64, cache 128, no corpus, {!Wire.default_max_frame},
    sleep cap 60000 ms, 10240 connections, 10 s handshake timeout,
    [Epoll] backend, [mmap] on, 256 KiB write high-water mark. *)

type t

val start : config -> (t, string) result
(** Validate the corpus/index (when configured), bind and listen, spawn
    the poller (or acceptor) and the worker pool. [Error] (not an
    exception) on a bad config, unbindable address, or a corpus that
    fails {!Umrs_store.Query.open_}. A TCP port of 0 is resolved by the
    kernel; see {!addr}. *)

val addr : t -> Wire.addr
(** The actual listening address ([Tcp] with the resolved port). *)

val worker_crashes : t -> int
(** Worker domains lost to escaped handler exceptions (each one was
    replaced by the supervisor). *)

(** {2 Runtime topology}

    A cluster node adopts new topology without restarting: when the
    coordinator bumps the shard map, the membership agent swaps the
    map (and, after a reshard or catch-up, the corpus piece) into the
    running server. Requests already in flight finish under whichever
    state they started with — during a shard split the donor keeps its
    superset piece until the narrowed map is applied, so both map
    versions answer correctly and no request window is lost. *)

val shard : t -> (Wire.shard_map * int) option
(** The shard map and own index this node currently serves under. *)

val set_shard :
  t -> ?advertise:bool -> (Wire.shard_map * int) option -> (unit, string) result
(** Replace the shard state. Validates like {!start}; [None] returns
    the node to unsharded serving. [advertise] (default [true]) also
    makes the new map the one [Get_shard_map] answers with; pass
    [false] when adopting a {e prospective} (commanded but not yet
    published) topology mid-handoff — the node then routes and issues
    stale verdicts under the new map while still advertising the last
    published one, so a refreshing client can never install a map the
    coordinator hasn't actually flipped. *)

val set_corpus : t -> corpus:string option -> ?index:string -> ?origin:int ->
  unit -> (unit, string) result
(** Swap the served corpus file. The new piece is validated by opening
    it before publication; each worker reopens its private
    {!Umrs_store.Query} handle before its next job, so the swap never
    interrupts a request in flight.

    [origin] is the global rank of the piece's first record when the
    corpus is a shard piece. It is snapshotted together with the path:
    a sharded request whose shard state disagrees with the origin of
    the piece actually open (a transient mid-handoff or mid-rejoin
    window — the two are swapped in separate steps) is answered with a
    stale-shard verdict the client can act on, never translated under
    the wrong origin and never surfaced as a bare out-of-range error.
    Omit it for a whole, unsharded corpus. *)

val clear_stale_socket : string -> (unit, string) result
(** The stale-socket probe [bind_listen] uses, exported for data-dir
    cleanup after a crash: unlink [path] only if it is a Unix socket no
    live server answers on. A connectable socket is an
    address-in-use error; a non-socket path is never deleted. *)

val shutdown : t -> unit
(** Request graceful drain; returns immediately. Idempotent. *)

val wait : t -> unit
(** Block until the server has fully drained and released every
    resource. Call once, after {!shutdown} or with handlers installed;
    with neither it blocks forever. *)

val install_signal_handlers : t -> unit
(** SIGTERM and SIGINT trigger {!shutdown}; SIGPIPE is ignored (a
    worker writing to a dead connection must not kill the process). *)

val run : config -> (unit, string) result
(** [start] + {!install_signal_handlers} + [wait] — the CLI serving
    loop. *)
