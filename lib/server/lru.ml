(* Classic doubly-linked list threaded through a hash table, with a
   sentinel node so unlink/push need no option cases. The sentinel's
   [next] is the most recently used node, its [prev] the least. *)

type ('k, 'v) node = {
  mutable key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node;
  mutable next : ('k, 'v) node;
}

type ('k, 'v) t = {
  cap : int;
  tbl : ('k, ('k, 'v) node) Hashtbl.t;
  sentinel : ('k, 'v) node;
  mutable evicted : int;  (* entries pushed out by capacity, ever *)
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be >= 1";
  let rec sentinel =
    { key = Obj.magic 0; value = Obj.magic 0; prev = sentinel; next = sentinel }
  in
  { cap = capacity; tbl = Hashtbl.create (2 * capacity); sentinel; evicted = 0 }

let capacity t = t.cap
let length t = Hashtbl.length t.tbl
let evictions t = t.evicted

let unlink n =
  n.prev.next <- n.next;
  n.next.prev <- n.prev

let push_front t n =
  n.next <- t.sentinel.next;
  n.prev <- t.sentinel;
  t.sentinel.next.prev <- n;
  t.sentinel.next <- n

let find t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> None
  | Some n ->
    unlink n;
    push_front t n;
    Some n.value

let mem t k = Hashtbl.mem t.tbl k

let add t k v =
  match Hashtbl.find_opt t.tbl k with
  | Some n ->
    n.value <- v;
    unlink n;
    push_front t n
  | None ->
    if Hashtbl.length t.tbl >= t.cap then begin
      let lru = t.sentinel.prev in
      (* cap >= 1 and the table is non-empty, so [lru] is a real node *)
      unlink lru;
      Hashtbl.remove t.tbl lru.key;
      t.evicted <- t.evicted + 1
    end;
    let n = { key = k; value = v; prev = t.sentinel; next = t.sentinel } in
    push_front t n;
    Hashtbl.replace t.tbl k n

let clear t =
  Hashtbl.reset t.tbl;
  t.sentinel.next <- t.sentinel;
  t.sentinel.prev <- t.sentinel

let to_list t =
  let rec go acc n =
    if n == t.sentinel then List.rev acc else go ((n.key, n.value) :: acc) n.next
  in
  go [] t.sentinel.next
