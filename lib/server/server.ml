type config = {
  addr : Wire.addr;
  workers : int;
  queue_capacity : int;
  cache_capacity : int;
  corpus : string option;
  index : string option;
  max_frame_bytes : int;
  max_sleep_ms : int;
  max_conns : int;
  handshake_timeout : float;
}

let default_config addr =
  { addr; workers = 2; queue_capacity = 64; cache_capacity = 128;
    corpus = None; index = None; max_frame_bytes = Wire.default_max_frame;
    max_sleep_ms = 60_000; max_conns = 256; handshake_timeout = 10.0 }

(* ---------- telemetry ---------- *)

let c_accepted = Telemetry.counter "server.connections"
let c_requests = Telemetry.counter "server.requests"
let c_overloaded = Telemetry.counter "server.overloaded"
let c_timeouts = Telemetry.counter "server.timeouts"
let c_rejected = Telemetry.counter "server.rejected"
let c_cache_hits = Telemetry.counter "server.cache_hits"
let c_cache_misses = Telemetry.counter "server.cache_misses"
let c_conn_refused = Telemetry.counter "server.connections_refused"
let c_worker_crashes = Telemetry.counter "server.worker_crashes"
let g_queue_depth = Telemetry.gauge "server.queue_depth"

(* ---------- connections ---------- *)

type conn = {
  c_id : int;
  c_fd : Unix.file_descr;
  c_ic : in_channel;
  c_oc : out_channel;
  c_wlock : Mutex.t;
  mutable c_alive : bool;  (* cleared (under [c_wlock]) before close *)
}

type job = {
  j_conn : conn;
  j_id : int;
  j_deadline : float;  (* absolute seconds; [infinity] = none *)
  j_req : Wire.request;
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  actual_addr : Wire.addr;
  queue : job Jobqueue.t;
  stop : bool Atomic.t;
  conns : (int, conn) Hashtbl.t;
  conns_lock : Mutex.t;
  cache : (string * string * string, Umrs_routing.Scheme.evaluation) Lru.t;
  cache_lock : Mutex.t;
  n_conns : int Atomic.t;
  n_requests : int Atomic.t;
  n_overloaded : int Atomic.t;
  n_timeouts : int Atomic.t;
  n_rejected : int Atomic.t;
  n_cache_hits : int Atomic.t;
  n_cache_misses : int Atomic.t;
  n_worker_crashes : int Atomic.t;
  mutable acceptor : Thread.t option;
  (* Worker pool under supervision: [workers_arr.(slot)] is the live
     domain for that slot; a domain killed by an escaped exception
     reports its slot on [sup_deaths] and the supervisor thread joins
     it and spawns a replacement, bumping [sup_generation]. All four
     are guarded by [sup_lock]/[sup_cond]. *)
  mutable workers_arr : unit Domain.t array;
  sup_lock : Mutex.t;
  sup_cond : Condition.t;
  sup_deaths : int Queue.t;
  mutable sup_generation : int;
  mutable sup_stop : bool;
  mutable supervisor : Thread.t option;
  mutable readers : Thread.t list;  (* under [conns_lock] *)
  mutable waited : bool;
}

let addr t = t.actual_addr
let worker_crashes t = Atomic.get t.n_worker_crashes

let stats_of srv =
  { Wire.st_connections = Atomic.get srv.n_conns;
    st_requests = Atomic.get srv.n_requests;
    st_overloaded = Atomic.get srv.n_overloaded;
    st_timeouts = Atomic.get srv.n_timeouts;
    st_rejected = Atomic.get srv.n_rejected;
    st_cache_hits = Atomic.get srv.n_cache_hits;
    st_cache_misses = Atomic.get srv.n_cache_misses;
    st_queue_depth = Jobqueue.length srv.queue;
    st_queue_capacity = srv.cfg.queue_capacity;
    st_workers = srv.cfg.workers;
    st_draining = Atomic.get srv.stop }

(* Only the reader thread ever closes a connection's descriptor;
   everyone else at most marks it dead and writes under [c_wlock], so a
   worker can never touch a recycled fd. *)
let send_outcome conn ~id outcome =
  Mutex.lock conn.c_wlock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.c_wlock)
    (fun () ->
      if conn.c_alive then
        try Wire.write_frame conn.c_oc (Wire.encode_outcome ~id outcome)
        with Sys_error _ | Unix.Unix_error _ -> conn.c_alive <- false)

(* ---------- request execution (worker side) ---------- *)

let exec_corpus query f =
  match query with
  | None -> Wire.Rejected "no corpus attached to this server"
  | Some q -> f q

let exec srv query req =
  match req with
  | Wire.Ping nonce -> Wire.Reply (Wire.R_pong nonce)
  | Wire.Stats -> Wire.Reply (Wire.R_stats (stats_of srv))
  | Wire.Corpus_info ->
    exec_corpus query (fun q ->
        Wire.Reply (Wire.R_header (Umrs_store.Query.header q)))
  | Wire.Nth i ->
    exec_corpus query (fun q ->
        Wire.Reply (Wire.R_matrix (Umrs_store.Query.nth q i)))
  | Wire.Mem m ->
    exec_corpus query (fun q ->
        Wire.Reply (Wire.R_found (Umrs_store.Query.mem q m)))
  | Wire.Rank m ->
    exec_corpus query (fun q ->
        Wire.Reply (Wire.R_rank (Umrs_store.Query.rank q m)))
  | Wire.Range_prefix prefix ->
    exec_corpus query (fun q ->
        let lo, hi = Umrs_store.Query.range_prefix q prefix in
        Wire.Reply (Wire.R_range (lo, hi)))
  | Wire.Cgraph_of i ->
    exec_corpus query (fun q ->
        Wire.Reply (Wire.R_graph (Umrs_store.Query.cgraph q i)))
  | Wire.Evaluate { scheme; graph_name; graph } -> (
    match Umrs_routing.Registry.find scheme with
    | None -> Wire.Rejected (Printf.sprintf "unknown scheme %S" scheme)
    | Some s ->
      (* the key carries the graph's full encoding, not a digest: a
         hash collision must never serve another graph's result *)
      let key = (scheme, graph_name, Wire.graph_key graph) in
      let cached =
        Mutex.lock srv.cache_lock;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock srv.cache_lock)
          (fun () -> Lru.find srv.cache key)
      in
      (match cached with
      | Some e ->
        Atomic.incr srv.n_cache_hits;
        Telemetry.add c_cache_hits 1;
        Wire.Reply (Wire.R_evaluation e)
      | None ->
        Atomic.incr srv.n_cache_misses;
        Telemetry.add c_cache_misses 1;
        (* The expensive build runs outside the cache lock: two workers
           racing on the same graph duplicate work once rather than
           serializing every evaluation. *)
        let e = Umrs_routing.Scheme.evaluate s ~graph_name graph in
        Mutex.lock srv.cache_lock;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock srv.cache_lock)
          (fun () -> Lru.add srv.cache key e);
        Wire.Reply (Wire.R_evaluation e)))
  | Wire.Sleep_ms ms ->
    if ms < 0 || ms > srv.cfg.max_sleep_ms then
      Wire.Rejected
        (Printf.sprintf "sleep %d outside [0, %d] ms" ms srv.cfg.max_sleep_ms)
    else begin
      if ms > 0 then Unix.sleepf (float_of_int ms /. 1000.0);
      Wire.Reply (Wire.R_slept ms)
    end

let handle_job srv query job =
  let now = Unix.gettimeofday () in
  if now > job.j_deadline then begin
    Atomic.incr srv.n_timeouts;
    Telemetry.add c_timeouts 1;
    send_outcome job.j_conn ~id:job.j_id Wire.Timed_out
  end
  else begin
    Umrs_fault.Io.worker_hook ();
    let outcome =
      (* A request the library layer refuses (out-of-range record, shape
         mismatch, undecodable graph...) is the caller's problem, never
         the server's: report it, keep serving. *)
      try exec srv query job.j_req with
      | Invalid_argument msg | Failure msg -> Wire.Rejected msg
      | Not_found -> Wire.Rejected "not found"
      | e -> Wire.Rejected (Printexc.to_string e)
    in
    let finished = Unix.gettimeofday () in
    let outcome =
      if finished > job.j_deadline then begin
        Atomic.incr srv.n_timeouts;
        Telemetry.add c_timeouts 1;
        Wire.Timed_out
      end
      else begin
        (match outcome with
        | Wire.Rejected _ ->
          Atomic.incr srv.n_rejected;
          Telemetry.add c_rejected 1
        | _ -> ());
        outcome
      end
    in
    if Telemetry.enabled () then
      Telemetry.emit "server.request"
        [ ("op", Telemetry.Str (Wire.opcode_name (Wire.opcode job.j_req)));
          ("seconds", Telemetry.Float (finished -. now));
          ("ok", Telemetry.Bool (match outcome with Wire.Reply _ -> true | _ -> false)) ];
    send_outcome job.j_conn ~id:job.j_id outcome
  end

let worker_loop srv =
  (* Each worker owns a private Query handle: the point lookups share a
     seekable cursor that is single-threaded by design. *)
  let query =
    match srv.cfg.corpus with
    | None -> None
    | Some corpus -> (
      match Umrs_store.Query.open_ ~corpus ?index:srv.cfg.index () with
      | Ok q -> Some q
      | Error _ -> None (* validated at [start]; raced file damage only *))
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Umrs_store.Query.close query)
    (fun () ->
      let rec loop () =
        match Jobqueue.pop srv.queue with
        | None -> ()
        | Some job ->
          Telemetry.set_gauge g_queue_depth
            (float_of_int (Jobqueue.length srv.queue));
          (match handle_job srv query job with
          | () -> ()
          | exception e ->
            (* An exception escaping the per-request handler is a server
               bug (or an injected fault): answer the request so its
               client is never left hanging, then let this domain die —
               the supervisor replaces it, so one poisoned handler can't
               bleed state into later requests. *)
            Atomic.incr srv.n_worker_crashes;
            Telemetry.add c_worker_crashes 1;
            Atomic.incr srv.n_rejected;
            Telemetry.add c_rejected 1;
            send_outcome job.j_conn ~id:job.j_id
              (Wire.Rejected ("internal error: " ^ Printexc.to_string e));
            raise e);
          loop ()
      in
      loop ())

let worker_body srv slot () =
  try worker_loop srv
  with _ ->
    (* the job that killed this domain was already answered and counted
       in [worker_loop]; report the slot so the supervisor respawns *)
    Mutex.lock srv.sup_lock;
    Queue.push slot srv.sup_deaths;
    Condition.broadcast srv.sup_cond;
    Mutex.unlock srv.sup_lock

(* Replaces dead workers for as long as the server lives — including
   during drain, where the replacement finishes draining the queue so
   accepted jobs are still answered even if the last worker died. *)
let supervisor_loop srv =
  let rec loop () =
    Mutex.lock srv.sup_lock;
    while Queue.is_empty srv.sup_deaths && not srv.sup_stop do
      Condition.wait srv.sup_cond srv.sup_lock
    done;
    if Queue.is_empty srv.sup_deaths then Mutex.unlock srv.sup_lock
    else begin
      let slot = Queue.pop srv.sup_deaths in
      let dead = srv.workers_arr.(slot) in
      Mutex.unlock srv.sup_lock;
      Domain.join dead;
      let replacement = Domain.spawn (worker_body srv slot) in
      Mutex.lock srv.sup_lock;
      srv.workers_arr.(slot) <- replacement;
      srv.sup_generation <- srv.sup_generation + 1;
      Mutex.unlock srv.sup_lock;
      if Telemetry.enabled () then
        Telemetry.emit "server.worker.respawned" [ ("slot", Telemetry.Int slot) ];
      loop ()
    end
  in
  loop ()

(* ---------- connection reader ---------- *)

let close_conn srv conn =
  Mutex.lock conn.c_wlock;
  conn.c_alive <- false;
  Mutex.unlock conn.c_wlock;
  Mutex.lock srv.conns_lock;
  Hashtbl.remove srv.conns conn.c_id;
  Mutex.unlock srv.conns_lock;
  (* closes the fd too; the reader is the single closure point *)
  close_out_noerr conn.c_oc

let handshake conn =
  let b = Bytes.create Wire.hello_bytes in
  really_input conn.c_ic b 0 Wire.hello_bytes;
  match Wire.check_hello b with
  | Error _ -> false
  | Ok () ->
    output_bytes conn.c_oc (Wire.hello ());
    flush conn.c_oc;
    true

(* best-effort: some socket families refuse the option, and a missing
   timeout only costs slowloris protection, not correctness *)
let set_rcvtimeo fd seconds =
  try Unix.setsockopt_float fd Unix.SO_RCVTIMEO seconds
  with Unix.Unix_error _ | Invalid_argument _ -> ()

let reader_loop srv conn =
  (try
     (* a client that connects and sends nothing must not pin a thread
        and an fd forever: the hello read is on the clock *)
     if srv.cfg.handshake_timeout > 0.0 then
       set_rcvtimeo conn.c_fd srv.cfg.handshake_timeout;
     if handshake conn then begin
       if srv.cfg.handshake_timeout > 0.0 then set_rcvtimeo conn.c_fd 0.0;
       let continue = ref true in
       while !continue do
         match Wire.read_frame ~max_bytes:srv.cfg.max_frame_bytes conn.c_ic with
         | None -> continue := false
         | Some payload -> (
           match Wire.decode_request payload with
           | exception _ ->
             (* protocol violation: drop the connection, don't guess *)
             continue := false
           | id, deadline_ms, req -> (
             Atomic.incr srv.n_requests;
             Telemetry.add c_requests 1;
             match req with
             | Wire.Ping _ | Wire.Stats ->
               (* control plane: answered inline so a saturated worker
                  pool never blinds monitoring *)
               send_outcome conn ~id (exec srv None req)
             | _ ->
               let deadline =
                 if deadline_ms <= 0 then infinity
                 else Unix.gettimeofday () +. (float_of_int deadline_ms /. 1000.)
               in
               let job = { j_conn = conn; j_id = id; j_deadline = deadline; j_req = req } in
               if Atomic.get srv.stop || not (Jobqueue.try_push srv.queue job)
               then begin
                 Atomic.incr srv.n_overloaded;
                 Telemetry.add c_overloaded 1;
                 send_outcome conn ~id Wire.Overloaded
               end
               else
                 Telemetry.set_gauge g_queue_depth
                   (float_of_int (Jobqueue.length srv.queue))))
       done
     end
   with
   | End_of_file | Sys_error _ | Sys_blocked_io | Unix.Unix_error _
   | Umrs_fault.Fault.Injected _ -> ());
  close_conn srv conn;
  (* self-prune so a long-lived server accepting many short-lived
     connections does not grow [readers] (and the channels each entry
     retains) without bound; [wait] joins whoever is still listed *)
  let self = Thread.id (Thread.self ()) in
  Mutex.lock srv.conns_lock;
  srv.readers <- List.filter (fun th -> Thread.id th <> self) srv.readers;
  Mutex.unlock srv.conns_lock

(* ---------- acceptor ---------- *)

let accept_loop srv =
  let next_id = ref 0 in
  while not (Atomic.get srv.stop) do
    match Unix.select [ srv.listen_fd ] [] [] 0.05 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
      match Umrs_fault.Io.accept srv.listen_fd with
      | exception Unix.Unix_error _ -> ()
      | fd, _ ->
        Mutex.lock srv.conns_lock;
        let live = Hashtbl.length srv.conns in
        Mutex.unlock srv.conns_lock;
        if live >= srv.cfg.max_conns then begin
          (* at capacity: shed the connection instead of minting a
             reader thread per socket until fd exhaustion *)
          Telemetry.add c_conn_refused 1;
          try Unix.close fd with Unix.Unix_error _ -> ()
        end
        else begin
          Atomic.incr srv.n_conns;
          Telemetry.add c_accepted 1;
          incr next_id;
          let conn =
            { c_id = !next_id; c_fd = fd;
              c_ic = Unix.in_channel_of_descr fd;
              c_oc = Unix.out_channel_of_descr fd;
              c_wlock = Mutex.create (); c_alive = true }
          in
          Mutex.lock srv.conns_lock;
          Hashtbl.replace srv.conns conn.c_id conn;
          let th = Thread.create (fun () -> reader_loop srv conn) () in
          srv.readers <- th :: srv.readers;
          Mutex.unlock srv.conns_lock
        end)
  done;
  Unix.close srv.listen_fd

(* ---------- lifecycle ---------- *)

let validate_corpus cfg =
  match cfg.corpus with
  | None -> Ok ()
  | Some corpus -> (
    match Umrs_store.Query.open_ ~corpus ?index:cfg.index () with
    | Ok q ->
      Umrs_store.Query.close q;
      Ok ()
    | Error e -> Error (Umrs_store.Query.error_to_string e))

(* Only ever unlink a *stale* socket: a path holding a live server (a
   probe connect succeeds) is an address-in-use error, and a path
   holding anything that is not a socket is never deleted. *)
let clear_unix_path path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> Ok ()
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | { Unix.st_kind = Unix.S_SOCK; _ } ->
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      (* EINTR-retrying connect: a signal here must not make a live
         server's socket look stale *)
      try
        Umrs_fault.Io.connect probe (Unix.ADDR_UNIX path);
        true
      with Unix.Unix_error _ -> false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if live then Error (Printf.sprintf "address already in use: %s" path)
    else (try Ok (Sys.remove path) with Sys_error e -> Error e)
  | _ ->
    Error
      (Printf.sprintf "%s exists and is not a socket; refusing to replace it"
         path)

let bind_listen addr =
  match addr with
  | Wire.Unix_sock path -> (
    match clear_unix_path path with
    | Error _ as e -> e
    | Ok () ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try
         Unix.bind fd (Unix.ADDR_UNIX path);
         Unix.listen fd 64;
         Ok (fd, addr)
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         Error (Printexc.to_string e)))
  | Wire.Tcp (host, port) ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt fd Unix.SO_REUSEADDR true;
       let inet =
         try Unix.inet_addr_of_string host
         with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
       in
       Unix.bind fd (Unix.ADDR_INET (inet, port));
       Unix.listen fd 64;
       let actual =
         match Unix.getsockname fd with
         | Unix.ADDR_INET (_, p) -> Wire.Tcp (host, p)
         | _ -> addr
       in
       Ok (fd, actual)
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       Error (Printexc.to_string e))

let start cfg =
  if cfg.workers < 1 then Error "Server: workers must be >= 1"
  else if cfg.queue_capacity < 1 then Error "Server: queue_capacity must be >= 1"
  else if cfg.cache_capacity < 1 then Error "Server: cache_capacity must be >= 1"
  else if cfg.max_conns < 1 then Error "Server: max_conns must be >= 1"
  else
    match validate_corpus cfg with
    | Error e -> Error e
    | Ok () -> (
      match bind_listen cfg.addr with
      | Error e -> Error e
      | Ok (listen_fd, actual_addr) ->
        (* a worker writing to a connection its client abandoned must
           not kill the process *)
        (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
         with Invalid_argument _ -> ());
        let srv =
          { cfg; listen_fd; actual_addr;
            queue = Jobqueue.create ~capacity:cfg.queue_capacity;
            stop = Atomic.make false;
            conns = Hashtbl.create 16; conns_lock = Mutex.create ();
            cache = Lru.create ~capacity:cfg.cache_capacity;
            cache_lock = Mutex.create ();
            n_conns = Atomic.make 0; n_requests = Atomic.make 0;
            n_overloaded = Atomic.make 0; n_timeouts = Atomic.make 0;
            n_rejected = Atomic.make 0; n_cache_hits = Atomic.make 0;
            n_cache_misses = Atomic.make 0; n_worker_crashes = Atomic.make 0;
            acceptor = None; workers_arr = [||];
            sup_lock = Mutex.create (); sup_cond = Condition.create ();
            sup_deaths = Queue.create (); sup_generation = 0;
            sup_stop = false; supervisor = None; readers = [];
            waited = false }
        in
        srv.workers_arr <-
          Array.init cfg.workers (fun slot -> Domain.spawn (worker_body srv slot));
        srv.supervisor <- Some (Thread.create supervisor_loop srv);
        srv.acceptor <- Some (Thread.create (fun () -> accept_loop srv) ());
        Ok srv)

let shutdown srv = Atomic.set srv.stop true

let wait srv =
  if not srv.waited then begin
    srv.waited <- true;
    (* 0. poll [stop] from an interruptible sleep rather than blocking
       straight away in a join: OCaml runs signal handlers in the main
       thread, and a main thread parked in [Thread.join] leaves a
       SIGTERM pending for over a second, while one waking from
       [sleepf] handles it within a tick *)
    while not (Atomic.get srv.stop) do
      (try Unix.sleepf 0.05 with Unix.Unix_error (Unix.EINTR, _, _) -> ())
    done;
    (* 1. the acceptor exits once [stop] is set and closes the listener *)
    Option.iter Thread.join srv.acceptor;
    (* 2. stop admission; workers drain every accepted job, answer it,
       then exit. A worker that dies mid-drain is replaced by the
       supervisor (the replacement finishes the drain), so the pool is
       joined until no death is pending and its generation is stable. *)
    Jobqueue.close srv.queue;
    let rec join_pool () =
      Mutex.lock srv.sup_lock;
      let pending = not (Queue.is_empty srv.sup_deaths) in
      let gen = srv.sup_generation in
      let snapshot = Array.copy srv.workers_arr in
      Mutex.unlock srv.sup_lock;
      if pending then begin
        (* let the supervisor process the report first: its join and
           ours on the same domain are both safe, but the replacement
           must land in [workers_arr] before we can see it *)
        (try Unix.sleepf 0.001
         with Unix.Unix_error (Unix.EINTR, _, _) -> ());
        join_pool ()
      end
      else begin
        Array.iter Domain.join snapshot;
        Mutex.lock srv.sup_lock;
        let stable =
          gen = srv.sup_generation && Queue.is_empty srv.sup_deaths
        in
        Mutex.unlock srv.sup_lock;
        if not stable then join_pool ()
      end
    in
    join_pool ();
    Mutex.lock srv.sup_lock;
    srv.sup_stop <- true;
    Condition.broadcast srv.sup_cond;
    Mutex.unlock srv.sup_lock;
    Option.iter Thread.join srv.supervisor;
    (* 3. responses are all written: flush telemetry so the JSONL sink
       holds whole records even if the process dies right after *)
    Telemetry.flush_metrics ();
    Telemetry.flush ();
    (* 4. wake readers blocked mid-read; they close their own fds *)
    Mutex.lock srv.conns_lock;
    Hashtbl.iter
      (fun _ conn ->
        try Unix.shutdown conn.c_fd Unix.SHUTDOWN_ALL
        with Unix.Unix_error _ -> ())
      srv.conns;
    let readers = srv.readers in
    Mutex.unlock srv.conns_lock;
    List.iter Thread.join readers;
    match srv.actual_addr with
    | Wire.Unix_sock path -> (try Sys.remove path with Sys_error _ -> ())
    | Wire.Tcp _ -> ()
  end

let install_signal_handlers srv =
  let stop_now _ = Atomic.set srv.stop true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle stop_now);
  Sys.set_signal Sys.sigint (Sys.Signal_handle stop_now);
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let run cfg =
  match start cfg with
  | Error e -> Error e
  | Ok srv ->
    install_signal_handlers srv;
    wait srv;
    Ok ()
