type backend =
  | Epoll
  | Threads

type config = {
  addr : Wire.addr;
  workers : int;
  queue_capacity : int;
  cache_capacity : int;
  corpus : string option;
  index : string option;
  max_frame_bytes : int;
  max_sleep_ms : int;
  max_conns : int;
  handshake_timeout : float;
  backend : backend;
  mmap : bool;
  wbuf_hwm : int;
  shard : (Wire.shard_map * int) option;
  membership : (Wire.request -> Wire.outcome) option;
}

let default_config addr =
  { addr; workers = 2; queue_capacity = 64; cache_capacity = 128;
    corpus = None; index = None; max_frame_bytes = Wire.default_max_frame;
    max_sleep_ms = 60_000; max_conns = 10_240; handshake_timeout = 10.0;
    backend = Epoll; mmap = true; wbuf_hwm = 256 * 1024; shard = None;
    membership = None }

(* ---------- telemetry ---------- *)

let c_accepted = Telemetry.counter "server.connections"
let c_requests = Telemetry.counter "server.requests"
let c_overloaded = Telemetry.counter "server.overloaded"
let c_timeouts = Telemetry.counter "server.timeouts"
let c_rejected = Telemetry.counter "server.rejected"
let c_cache_hits = Telemetry.counter "server.cache_hits"
let c_cache_misses = Telemetry.counter "server.cache_misses"
let c_conn_refused = Telemetry.counter "server.connections_refused"
let c_worker_crashes = Telemetry.counter "server.worker_crashes"
let g_queue_depth = Telemetry.gauge "server.queue_depth"
let g_queue_hwm = Telemetry.gauge "server.queue_hwm"
let g_live_conns = Telemetry.gauge "server.live_connections"
let g_loop_wakeups = Telemetry.gauge "server.loop_wakeups"
let g_cache_evictions = Telemetry.gauge "server.cache_evictions"

(* ---------- connections (threads backend) ---------- *)

type conn = {
  c_id : int;
  c_fd : Unix.file_descr;
  c_ic : in_channel;
  c_oc : out_channel;
  c_wlock : Mutex.t;
  mutable c_alive : bool;  (* cleared (under [c_wlock]) before close *)
}

(* ---------- connections (epoll backend) ----------

   One [econn] per socket, owned exclusively by the poller thread:
   only [ec_id] ever escapes it (inside a worker's respond closure),
   and completions come back keyed by that id, so a worker finishing
   after the connection died — and after the fd number was recycled —
   can never touch the wrong socket. *)

type econn = {
  ec_id : int;
  ec_fd : Unix.file_descr;
  mutable ec_hs_done : bool;
  ec_hs_deadline : float;  (* absolute; [infinity] = no timeout *)
  mutable ec_rbuf : Bytes.t;  (* unparsed input, always at offset 0 *)
  mutable ec_rlen : int;
  mutable ec_wbuf : Bytes.t;  (* unsent output at [ec_woff, ec_woff+ec_wlen) *)
  mutable ec_woff : int;
  mutable ec_wlen : int;
  mutable ec_int_r : bool;  (* interest currently armed in the loop *)
  mutable ec_int_w : bool;
  mutable ec_paused : bool;  (* reads paused: write buffer above hwm *)
  mutable ec_dirty : bool;   (* batching flag for completion delivery *)
  mutable ec_closed : bool;
}

type epoll_state = {
  ep_loop : Umrs_evloop.t;
  ep_by_fd : (int, econn) Hashtbl.t;  (* poller-only *)
  ep_by_id : (int, econn) Hashtbl.t;  (* poller-only *)
  ep_comp_lock : Mutex.t;
  mutable ep_completions : (int * Bytes.t) list;  (* newest first *)
  ep_finish : bool Atomic.t;  (* workers drained: flush and exit *)
  mutable ep_poller : Thread.t option;
}

(* A job is backend-neutral: the worker pool only ever answers through
   [j_respond] (threads: write the frame under the connection's lock;
   epoll: queue a completion and wake the poller). *)
type job = {
  j_id : int;
  j_deadline : float;  (* absolute seconds; [infinity] = none *)
  j_req : Wire.request;
  j_respond : Wire.outcome -> unit;
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  actual_addr : Wire.addr;
  (* Both of these are runtime-mutable so a cluster node can adopt a
     new topology (or a freshly acquired corpus piece) without a
     restart.  [shard_state] is read once per request; [corpus_gen]
     tells workers their private Query handle is stale — the pair is
     published ref-then-generation, so a worker that observes the new
     generation always observes the new path. *)
  shard_state : (Wire.shard_map * int) option Atomic.t;
  (* The map [Get_shard_map] answers with. Usually mirrors
     [shard_state], but a node mid-handoff serves under a prospective
     (not yet published) topology — [set_shard ~advertise:false] —
     and must keep advertising the last published map so a refreshing
     client can never install a map the coordinator hasn't flipped. *)
  advert_map : Wire.shard_map option Atomic.t;
  (* (path, index, piece origin): the third component is the global
     rank of the piece's first record when the corpus is a shard piece
     rather than the whole corpus. It travels with the path so a worker
     snapshotting its Query handle also snapshots the origin that
     describes it — [exec_sharded] compares it against the shard state
     to detect a mid-handoff piece/topology mismatch. *)
  corpus_ref : (string option * string option * int option) Atomic.t;
  corpus_gen : int Atomic.t;
  queue : job Jobqueue.t;
  stop : bool Atomic.t;
  conns : (int, conn) Hashtbl.t;
  conns_lock : Mutex.t;
  cache : (string * string * string, Umrs_routing.Scheme.evaluation) Lru.t;
  cache_lock : Mutex.t;
  n_conns : int Atomic.t;  (* accepted, cumulative *)
  n_live : int Atomic.t;   (* currently open *)
  n_requests : int Atomic.t;
  n_overloaded : int Atomic.t;
  n_timeouts : int Atomic.t;
  n_rejected : int Atomic.t;
  n_cache_hits : int Atomic.t;
  n_cache_misses : int Atomic.t;
  n_worker_crashes : int Atomic.t;
  n_queue_hwm : int Atomic.t;
  mutable acceptor : Thread.t option;
  (* Worker pool under supervision: [workers_arr.(slot)] is the live
     domain for that slot; a domain killed by an escaped exception
     reports its slot on [sup_deaths] and the supervisor thread joins
     it and spawns a replacement, bumping [sup_generation]. All four
     are guarded by [sup_lock]/[sup_cond]. *)
  mutable workers_arr : unit Domain.t array;
  sup_lock : Mutex.t;
  sup_cond : Condition.t;
  sup_deaths : int Queue.t;
  mutable sup_generation : int;
  mutable sup_stop : bool;
  mutable supervisor : Thread.t option;
  mutable readers : Thread.t list;  (* under [conns_lock] *)
  ep : epoll_state option;  (* Some iff [cfg.backend = Epoll] *)
  mutable waited : bool;
}

let addr t = t.actual_addr
let worker_crashes t = Atomic.get t.n_worker_crashes
let shard t = Atomic.get t.shard_state

let set_shard t ?(advertise = true) = function
  | None ->
    Atomic.set t.shard_state None;
    if advertise then Atomic.set t.advert_map None;
    Ok ()
  | Some (map, me) ->
    if me < 0 || me >= Array.length map.Wire.sm_shards then
      Error "Server: shard index out of range"
    else (
      match Wire.validate_shard_map map with
      | Error e -> Error ("Server: invalid shard map: " ^ e)
      | Ok () ->
        Atomic.set t.shard_state (Some (map, me));
        if advertise then Atomic.set t.advert_map (Some map);
        Ok ())

let set_corpus t ~corpus ?index ?origin () =
  match corpus with
  | None ->
    Atomic.set t.corpus_ref (None, None, None);
    Atomic.incr t.corpus_gen;
    Ok ()
  | Some path -> (
    (* validate before publishing, like [start] does: a worker finding
       the new piece unopenable would silently serve nothing *)
    match Umrs_store.Query.open_ ~corpus:path ?index ~mmap:t.cfg.mmap () with
    | Error e -> Error (Umrs_store.Query.error_to_string e)
    | Ok q ->
      Umrs_store.Query.close q;
      (* path first, then generation: a worker that observes the new
         generation is guaranteed to reopen the new path *)
      Atomic.set t.corpus_ref (Some path, index, origin);
      Atomic.incr t.corpus_gen;
      Ok ())

let stats_of srv =
  let evictions =
    Mutex.lock srv.cache_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock srv.cache_lock)
      (fun () -> Lru.evictions srv.cache)
  in
  { Wire.st_connections = Atomic.get srv.n_conns;
    st_requests = Atomic.get srv.n_requests;
    st_overloaded = Atomic.get srv.n_overloaded;
    st_timeouts = Atomic.get srv.n_timeouts;
    st_rejected = Atomic.get srv.n_rejected;
    st_cache_hits = Atomic.get srv.n_cache_hits;
    st_cache_misses = Atomic.get srv.n_cache_misses;
    st_queue_depth = Jobqueue.length srv.queue;
    st_queue_capacity = srv.cfg.queue_capacity;
    st_workers = srv.cfg.workers;
    st_draining = Atomic.get srv.stop;
    st_live_conns = Atomic.get srv.n_live;
    st_cache_evictions = evictions;
    st_loop_wakeups =
      (match srv.ep with
      | Some es -> Umrs_evloop.wakeups es.ep_loop
      | None -> 0);
    st_queue_hwm = Atomic.get srv.n_queue_hwm }

let note_queue_depth srv =
  let d = Jobqueue.length srv.queue in
  let rec bump () =
    let cur = Atomic.get srv.n_queue_hwm in
    if d > cur && not (Atomic.compare_and_set srv.n_queue_hwm cur d) then
      bump ()
  in
  bump ();
  Telemetry.set_gauge g_queue_depth (float_of_int d)

(* Only the reader thread ever closes a connection's descriptor;
   everyone else at most marks it dead and writes under [c_wlock], so a
   worker can never touch a recycled fd. *)
let send_outcome conn ~id outcome =
  Mutex.lock conn.c_wlock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.c_wlock)
    (fun () ->
      if conn.c_alive then
        try Wire.write_frame conn.c_oc (Wire.encode_outcome ~id outcome)
        with Sys_error _ | Unix.Unix_error _ -> conn.c_alive <- false)

(* ---------- request execution (worker side) ---------- *)

let exec_corpus query f =
  match query with
  | None -> Wire.Rejected "no corpus attached to this server"
  | Some (q, _) -> f q

(* A shard node serves *global* indices and ranks: corpus requests are
   validated against the node's slice of the shard map, translated to
   local coordinates inward and back to global outward, so a sharded
   cluster is byte-identical to a single node over the whole corpus. A
   request the map routes elsewhere gets a structured stale-shard
   rejection carrying this node's map version — the client's cue to
   refresh its map and re-route.

   A node mid-handoff or mid-rejoin can transiently hold a piece from
   a different epoch than the shard state it serves under (the two are
   swapped in separate atomic steps). Global↔local translation is only
   sound when the piece's recorded origin equals the shard's [lo] and
   the piece is long enough for the answer — so any mismatch is
   answered as a stale topology, which a client can act on (refresh,
   re-route), never as a bare library error it cannot, and never as
   records translated under the wrong origin. A piece that is a
   *superset* of the claim with the same origin (double-serving during
   a merge) still serves normally. *)
let exec_sharded query map me req =
  let sh = map.Wire.sm_shards.(me) in
  let lo = sh.Wire.sh_lo in
  let claimed = sh.Wire.sh_hi - lo in
  let stale () = Wire.stale_shard_reject ~version:map.Wire.sm_version in
  let with_piece f =
    match query with
    | None -> Wire.Rejected "no corpus attached to this server"
    | Some (_, Some origin) when origin <> lo -> stale ()
    | Some (q, _) -> f q (Umrs_store.Query.header q).Umrs_store.Corpus.count
  in
  match req with
  | Wire.Nth i ->
    if Wire.route_index map i <> me then stale ()
    else
      with_piece (fun q count ->
          if i - lo >= count then stale ()
          else Wire.Reply (Wire.R_matrix (Umrs_store.Query.nth q (i - lo))))
  | Wire.Cgraph_of i ->
    if Wire.route_index map i <> me then stale ()
    else
      with_piece (fun q count ->
          if i - lo >= count then stale ()
          else Wire.Reply (Wire.R_graph (Umrs_store.Query.cgraph q (i - lo))))
  | Wire.Mem m ->
    if Wire.route_matrix map m <> me then stale ()
    else
      with_piece (fun q count ->
          if Umrs_store.Query.mem q m then Wire.Reply (Wire.R_found true)
          else if count < claimed then
            (* the piece is short of the claim: the record could live in
               the part this node doesn't hold yet *)
            stale ()
          else Wire.Reply (Wire.R_found false))
  | Wire.Rank m ->
    if Wire.route_matrix map m <> me then stale ()
    else
      with_piece (fun q count ->
          let r = Umrs_store.Query.rank q m in
          if r >= count && count < claimed then stale ()
          else Wire.Reply (Wire.R_rank (lo + r)))
  | Wire.Range_prefix prefix ->
    let a, b = Wire.route_prefix map prefix in
    if me < a || me > b then stale ()
    else
      with_piece (fun q count ->
          if count < claimed then stale ()
          else
            let l, h = Umrs_store.Query.range_prefix q prefix in
            (* clamp to the claimed range: under double-serving the
               piece extends past [sh_hi], and those records belong to
               a neighbour's slice in the scatter the client merges *)
            let l = min l claimed and h = min h claimed in
            (* version-stamped: a scatter carries no rank to validate,
               so the stamp is the only evidence a merging client gets
               that this slice was computed under a different topology *)
            Wire.Reply
              (Wire.R_slice
                 { sl_version = map.Wire.sm_version; sl_lo = lo + l;
                   sl_hi = lo + h }))
  | _ -> assert false (* only corpus-query requests are dispatched here *)

let exec_unsharded query req =
  match req with
  | Wire.Nth i ->
    exec_corpus query (fun q ->
        Wire.Reply (Wire.R_matrix (Umrs_store.Query.nth q i)))
  | Wire.Mem m ->
    exec_corpus query (fun q ->
        Wire.Reply (Wire.R_found (Umrs_store.Query.mem q m)))
  | Wire.Rank m ->
    exec_corpus query (fun q ->
        Wire.Reply (Wire.R_rank (Umrs_store.Query.rank q m)))
  | Wire.Range_prefix prefix ->
    exec_corpus query (fun q ->
        let lo, hi = Umrs_store.Query.range_prefix q prefix in
        Wire.Reply (Wire.R_range (lo, hi)))
  | Wire.Cgraph_of i ->
    exec_corpus query (fun q ->
        Wire.Reply (Wire.R_graph (Umrs_store.Query.cgraph q i)))
  | _ -> assert false (* only corpus-query requests are dispatched here *)

let exec srv query req =
  match req with
  | Wire.Ping nonce -> Wire.Reply (Wire.R_pong nonce)
  | Wire.Stats -> Wire.Reply (Wire.R_stats (stats_of srv))
  | Wire.Get_shard_map -> (
    (* a coordinator answers from its membership table; a plain shard
       node from the map it currently serves under *)
    match srv.cfg.membership with
    | Some handle -> handle req
    | None -> (
      match Atomic.get srv.advert_map with
      | Some map -> Wire.Reply (Wire.R_shard_map map)
      | None -> (
        match Atomic.get srv.shard_state with
        | Some (map, _) -> Wire.Reply (Wire.R_shard_map map)
        | None -> Wire.Rejected "this server is not part of a cluster")))
  | Wire.Join _ | Wire.Leave _ | Wire.Heartbeat _ | Wire.Reshard _
  | Wire.Handoff_done _ | Wire.Cluster_status -> (
    match srv.cfg.membership with
    | Some handle -> handle req
    | None -> Wire.Rejected "this server is not a cluster coordinator")
  | Wire.Nth _ | Wire.Mem _ | Wire.Rank _ | Wire.Range_prefix _
  | Wire.Cgraph_of _ -> (
    match Atomic.get srv.shard_state with
    | Some (map, me) -> exec_sharded query map me req
    | None -> exec_unsharded query req)
  | Wire.Corpus_info ->
    exec_corpus query (fun q ->
        Wire.Reply (Wire.R_header (Umrs_store.Query.header q)))
  | Wire.Evaluate { scheme; graph_name; graph } -> (
    match Umrs_routing.Registry.find scheme with
    | None -> Wire.Rejected (Printf.sprintf "unknown scheme %S" scheme)
    | Some s ->
      (* the key carries the graph's full encoding, not a digest: a
         hash collision must never serve another graph's result *)
      let key = (scheme, graph_name, Wire.graph_key graph) in
      let cached =
        Mutex.lock srv.cache_lock;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock srv.cache_lock)
          (fun () -> Lru.find srv.cache key)
      in
      (match cached with
      | Some e ->
        Atomic.incr srv.n_cache_hits;
        Telemetry.add c_cache_hits 1;
        Wire.Reply (Wire.R_evaluation e)
      | None ->
        Atomic.incr srv.n_cache_misses;
        Telemetry.add c_cache_misses 1;
        (* The expensive build runs outside the cache lock: two workers
           racing on the same graph duplicate work once rather than
           serializing every evaluation. *)
        let e = Umrs_routing.Scheme.evaluate s ~graph_name graph in
        Mutex.lock srv.cache_lock;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock srv.cache_lock)
          (fun () -> Lru.add srv.cache key e);
        Wire.Reply (Wire.R_evaluation e)))
  | Wire.Sleep_ms ms ->
    if ms < 0 || ms > srv.cfg.max_sleep_ms then
      Wire.Rejected
        (Printf.sprintf "sleep %d outside [0, %d] ms" ms srv.cfg.max_sleep_ms)
    else begin
      if ms > 0 then Unix.sleepf (float_of_int ms /. 1000.0);
      Wire.Reply (Wire.R_slept ms)
    end

let handle_job srv query job =
  let now = Unix.gettimeofday () in
  if now > job.j_deadline then begin
    Atomic.incr srv.n_timeouts;
    Telemetry.add c_timeouts 1;
    job.j_respond Wire.Timed_out
  end
  else begin
    Umrs_fault.Io.worker_hook ();
    let outcome =
      (* A request the library layer refuses (out-of-range record, shape
         mismatch, undecodable graph...) is the caller's problem, never
         the server's: report it, keep serving. *)
      try exec srv query job.j_req with
      | Invalid_argument msg | Failure msg -> Wire.Rejected msg
      | Not_found -> Wire.Rejected "not found"
      | e -> Wire.Rejected (Printexc.to_string e)
    in
    let finished = Unix.gettimeofday () in
    let outcome =
      if finished > job.j_deadline then begin
        Atomic.incr srv.n_timeouts;
        Telemetry.add c_timeouts 1;
        Wire.Timed_out
      end
      else begin
        (match outcome with
        | Wire.Rejected _ ->
          Atomic.incr srv.n_rejected;
          Telemetry.add c_rejected 1
        | _ -> ());
        outcome
      end
    in
    if Telemetry.enabled () then
      Telemetry.emit "server.request"
        [ ("op", Telemetry.Str (Wire.opcode_name (Wire.opcode job.j_req)));
          ("seconds", Telemetry.Float (finished -. now));
          ("ok", Telemetry.Bool (match outcome with Wire.Reply _ -> true | _ -> false)) ];
    job.j_respond outcome
  end

let open_worker_query srv =
  match Atomic.get srv.corpus_ref with
  | None, _, _ -> None
  | Some corpus, index, origin -> (
    match Umrs_store.Query.open_ ~corpus ?index ~mmap:srv.cfg.mmap () with
    | Ok q -> Some (q, origin)
    | Error _ -> None (* validated at [start]/[set_corpus]; raced damage *))

let worker_loop srv =
  (* Each worker owns a private Query handle: the point lookups share a
     seekable cursor that is single-threaded by design.  Under [mmap]
     every handle shares one file mapping, so a pool of N workers costs
     one mapping, not N channel buffers.  The generation counter is
     read before the path: a corpus swap publishes path first, so a
     worker that sees the new generation reopens the new piece. *)
  let my_gen = ref (Atomic.get srv.corpus_gen) in
  let query = ref (open_worker_query srv) in
  Fun.protect
    ~finally:(fun () ->
      Option.iter (fun (q, _) -> Umrs_store.Query.close q) !query)
    (fun () ->
      let rec loop () =
        match Jobqueue.pop srv.queue with
        | None -> ()
        | Some job ->
          let gen = Atomic.get srv.corpus_gen in
          if gen <> !my_gen then begin
            Option.iter (fun (q, _) -> Umrs_store.Query.close q) !query;
            query := open_worker_query srv;
            my_gen := gen
          end;
          Telemetry.set_gauge g_queue_depth
            (float_of_int (Jobqueue.length srv.queue));
          (match handle_job srv !query job with
          | () -> ()
          | exception e ->
            (* An exception escaping the per-request handler is a server
               bug (or an injected fault): answer the request so its
               client is never left hanging, then let this domain die —
               the supervisor replaces it, so one poisoned handler can't
               bleed state into later requests. *)
            Atomic.incr srv.n_worker_crashes;
            Telemetry.add c_worker_crashes 1;
            Atomic.incr srv.n_rejected;
            Telemetry.add c_rejected 1;
            job.j_respond
              (Wire.Rejected ("internal error: " ^ Printexc.to_string e));
            raise e);
          loop ()
      in
      loop ())

let worker_body srv slot () =
  try worker_loop srv
  with _ ->
    (* the job that killed this domain was already answered and counted
       in [worker_loop]; report the slot so the supervisor respawns *)
    Mutex.lock srv.sup_lock;
    Queue.push slot srv.sup_deaths;
    Condition.broadcast srv.sup_cond;
    Mutex.unlock srv.sup_lock

(* Replaces dead workers for as long as the server lives — including
   during drain, where the replacement finishes draining the queue so
   accepted jobs are still answered even if the last worker died. *)
let supervisor_loop srv =
  let rec loop () =
    Mutex.lock srv.sup_lock;
    while Queue.is_empty srv.sup_deaths && not srv.sup_stop do
      Condition.wait srv.sup_cond srv.sup_lock
    done;
    if Queue.is_empty srv.sup_deaths then Mutex.unlock srv.sup_lock
    else begin
      let slot = Queue.pop srv.sup_deaths in
      let dead = srv.workers_arr.(slot) in
      Mutex.unlock srv.sup_lock;
      Domain.join dead;
      let replacement = Domain.spawn (worker_body srv slot) in
      Mutex.lock srv.sup_lock;
      srv.workers_arr.(slot) <- replacement;
      srv.sup_generation <- srv.sup_generation + 1;
      Mutex.unlock srv.sup_lock;
      if Telemetry.enabled () then
        Telemetry.emit "server.worker.respawned" [ ("slot", Telemetry.Int slot) ];
      loop ()
    end
  in
  loop ()

(* ---------- shared admission ---------- *)

(* Control-plane requests run on the poller/reader thread itself; with
   a membership hook attached they can raise (bad reshard argument,
   racing topology), and that must cost the request, not the thread. *)
let exec_control srv req =
  try exec srv None req with
  | Invalid_argument msg | Failure msg -> Wire.Rejected msg
  | Not_found -> Wire.Rejected "not found"
  | e -> Wire.Rejected (Printexc.to_string e)

let deadline_of deadline_ms =
  if deadline_ms <= 0 then infinity
  else Unix.gettimeofday () +. (float_of_int deadline_ms /. 1000.)

(* Admit a decoded data-plane request to the worker pool, or answer
   [Overloaded] through [respond] — the one backpressure policy both
   backends share. *)
let admit srv ~id ~deadline_ms req ~respond =
  let job =
    { j_id = id; j_deadline = deadline_of deadline_ms; j_req = req;
      j_respond = respond }
  in
  if Atomic.get srv.stop || not (Jobqueue.try_push srv.queue job) then begin
    Atomic.incr srv.n_overloaded;
    Telemetry.add c_overloaded 1;
    respond Wire.Overloaded
  end
  else note_queue_depth srv

(* ---------- connection reader (threads backend) ---------- *)

let close_conn srv conn =
  Mutex.lock conn.c_wlock;
  let was_alive = conn.c_alive in
  conn.c_alive <- false;
  Mutex.unlock conn.c_wlock;
  Mutex.lock srv.conns_lock;
  Hashtbl.remove srv.conns conn.c_id;
  Mutex.unlock srv.conns_lock;
  if was_alive || true then Atomic.decr srv.n_live;
  Telemetry.set_gauge g_live_conns (float_of_int (Atomic.get srv.n_live));
  (* closes the fd too; the reader is the single closure point *)
  close_out_noerr conn.c_oc

let handshake conn =
  let b = Bytes.create Wire.hello_bytes in
  really_input conn.c_ic b 0 Wire.hello_bytes;
  match Wire.check_hello b with
  | Error _ -> false
  | Ok () ->
    output_bytes conn.c_oc (Wire.hello ());
    flush conn.c_oc;
    true

(* best-effort: some socket families refuse the option, and a missing
   timeout only costs slowloris protection, not correctness *)
let set_rcvtimeo fd seconds =
  try Unix.setsockopt_float fd Unix.SO_RCVTIMEO seconds
  with Unix.Unix_error _ | Invalid_argument _ -> ()

let reader_loop srv conn =
  (try
     (* a client that connects and sends nothing must not pin a thread
        and an fd forever: the hello read is on the clock *)
     if srv.cfg.handshake_timeout > 0.0 then
       set_rcvtimeo conn.c_fd srv.cfg.handshake_timeout;
     if handshake conn then begin
       if srv.cfg.handshake_timeout > 0.0 then set_rcvtimeo conn.c_fd 0.0;
       let continue = ref true in
       while !continue do
         match Wire.read_frame ~max_bytes:srv.cfg.max_frame_bytes conn.c_ic with
         | None -> continue := false
         | Some payload -> (
           match Wire.decode_request payload with
           | exception _ ->
             (* protocol violation: drop the connection, don't guess *)
             continue := false
           | id, deadline_ms, req -> (
             Atomic.incr srv.n_requests;
             Telemetry.add c_requests 1;
             match req with
             | Wire.Ping _ | Wire.Stats | Wire.Get_shard_map
             | Wire.Join _ | Wire.Leave _ | Wire.Heartbeat _
             | Wire.Reshard _ | Wire.Handoff_done _ | Wire.Cluster_status ->
               (* control plane: answered inline so a saturated worker
                  pool never blinds monitoring, map refresh, or
                  heartbeats (a busy data plane must not read as a dead
                  node) *)
               send_outcome conn ~id (exec_control srv req)
             | _ ->
               admit srv ~id ~deadline_ms req ~respond:(fun outcome ->
                   send_outcome conn ~id outcome)))
       done
     end
   with
   | End_of_file | Sys_error _ | Sys_blocked_io | Unix.Unix_error _
   | Umrs_fault.Fault.Injected _ -> ());
  close_conn srv conn;
  (* self-prune so a long-lived server accepting many short-lived
     connections does not grow [readers] (and the channels each entry
     retains) without bound; [wait] joins whoever is still listed *)
  let self = Thread.id (Thread.self ()) in
  Mutex.lock srv.conns_lock;
  srv.readers <- List.filter (fun th -> Thread.id th <> self) srv.readers;
  Mutex.unlock srv.conns_lock

(* ---------- acceptor (threads backend) ---------- *)

let accept_loop srv =
  let next_id = ref 0 in
  while not (Atomic.get srv.stop) do
    (* poll(2), not select: the listener may be numbered past
       FD_SETSIZE when the process holds many descriptors.  The 50 ms
       tick only bounds shutdown latency — a pending connection is
       accepted as soon as the kernel reports it. *)
    if Umrs_evloop.wait_readable srv.listen_fd ~timeout_ms:50 then begin
      match Umrs_fault.Io.accept srv.listen_fd with
      | exception Unix.Unix_error _ -> ()
      | fd, _ ->
        Mutex.lock srv.conns_lock;
        let live = Hashtbl.length srv.conns in
        Mutex.unlock srv.conns_lock;
        if live >= srv.cfg.max_conns then begin
          (* at capacity: shed the connection instead of minting a
             reader thread per socket until fd exhaustion *)
          Telemetry.add c_conn_refused 1;
          try Unix.close fd with Unix.Unix_error _ -> ()
        end
        else begin
          Atomic.incr srv.n_conns;
          Atomic.incr srv.n_live;
          Telemetry.add c_accepted 1;
          Telemetry.set_gauge g_live_conns
            (float_of_int (Atomic.get srv.n_live));
          incr next_id;
          let conn =
            { c_id = !next_id; c_fd = fd;
              c_ic = Unix.in_channel_of_descr fd;
              c_oc = Unix.out_channel_of_descr fd;
              c_wlock = Mutex.create (); c_alive = true }
          in
          Mutex.lock srv.conns_lock;
          Hashtbl.replace srv.conns conn.c_id conn;
          let th = Thread.create (fun () -> reader_loop srv conn) () in
          srv.readers <- th :: srv.readers;
          Mutex.unlock srv.conns_lock
        end
    end
  done;
  Unix.close srv.listen_fd

(* ---------- epoll backend: buffers ---------- *)

let initial_rbuf = 4096
let initial_wbuf = 1024
let read_chunk = 65536

let grow_to b needed =
  let cap = ref (max 1 (Bytes.length b)) in
  while !cap < needed do
    cap := !cap * 2
  done;
  let nb = Bytes.create !cap in
  Bytes.blit b 0 nb 0 (Bytes.length b);
  nb

(* Make room for [extra] more output bytes: compact first (cheap, the
   sent prefix is dead), grow only when the live tail cannot fit. *)
let wbuf_reserve ec extra =
  let cap = Bytes.length ec.ec_wbuf in
  if ec.ec_woff + ec.ec_wlen + extra > cap then begin
    if ec.ec_woff > 0 then begin
      Bytes.blit ec.ec_wbuf ec.ec_woff ec.ec_wbuf 0 ec.ec_wlen;
      ec.ec_woff <- 0
    end;
    if ec.ec_wlen + extra > cap then begin
      let nb = grow_to ec.ec_wbuf (ec.ec_wlen + extra) in
      (* grow_to copied the whole old buffer; only the live prefix
         matters and it is already at offset 0 *)
      ec.ec_wbuf <- nb
    end
  end

let append_raw ec b =
  let n = Bytes.length b in
  wbuf_reserve ec n;
  Bytes.blit b 0 ec.ec_wbuf (ec.ec_woff + ec.ec_wlen) n;
  ec.ec_wlen <- ec.ec_wlen + n

(* The frame header is written straight into the connection's scratch
   buffer: one reserve, no intermediate 4-byte allocation per reply. *)
let append_frame ec payload =
  let n = Bytes.length payload in
  wbuf_reserve ec (4 + n);
  let tail = ec.ec_woff + ec.ec_wlen in
  Bytes.set_int32_le ec.ec_wbuf tail (Int32.of_int n);
  Bytes.blit payload 0 ec.ec_wbuf (tail + 4) n;
  ec.ec_wlen <- ec.ec_wlen + 4 + n

(* ---------- epoll backend: poller ---------- *)

let close_econn srv es ec =
  if not ec.ec_closed then begin
    ec.ec_closed <- true;
    Umrs_evloop.remove es.ep_loop ec.ec_fd;
    Hashtbl.remove es.ep_by_fd (Umrs_evloop.int_of_fd ec.ec_fd);
    Hashtbl.remove es.ep_by_id ec.ec_id;
    Atomic.decr srv.n_live;
    try Unix.close ec.ec_fd with Unix.Unix_error _ -> ()
  end

let set_interest es ec ~readable ~writable =
  if readable <> ec.ec_int_r || writable <> ec.ec_int_w then begin
    ec.ec_int_r <- readable;
    ec.ec_int_w <- writable;
    Umrs_evloop.modify es.ep_loop ec.ec_fd ~readable ~writable
  end

(* Write until the socket blocks or the buffer empties.  Goes through
   the fault seam so storms can reset, delay, or shorten the write. *)
let flush_wbuf srv es ec =
  let continue = ref true in
  while !continue && ec.ec_wlen > 0 do
    match
      Umrs_fault.Io.write_once ec.ec_fd ec.ec_wbuf ec.ec_woff ec.ec_wlen
    with
    | 0 -> continue := false
    | n ->
      ec.ec_woff <- ec.ec_woff + n;
      ec.ec_wlen <- ec.ec_wlen - n;
      if ec.ec_wlen = 0 then ec.ec_woff <- 0
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      continue := false
    | exception (Unix.Unix_error _ | Sys_error _ | Umrs_fault.Fault.Injected _)
      ->
      (* an injected storm fault (or a real error) on this socket is
         this connection's problem, never the poller's.  [continue]
         must clear too: the buffer still holds bytes, and retrying a
         write on the closed — possibly already recycled — descriptor
         would spin this loop forever *)
      close_econn srv es ec;
      continue := false
  done

(* Flush, then re-derive pause state and loop interest from the buffer
   level — the single place the backpressure policy lives.  Above
   [wbuf_hwm] buffered bytes the socket stops being read (the client
   feels TCP backpressure); reads resume below half the mark.  In
   [finishing] mode the connection's only remaining job is emptying
   its buffer, after which it closes. *)
let pump srv es ec ~finishing =
  if not ec.ec_closed then begin
    flush_wbuf srv es ec;
    if not ec.ec_closed then begin
      if finishing && ec.ec_wlen = 0 then close_econn srv es ec
      else begin
        if (not ec.ec_paused) && ec.ec_wlen > srv.cfg.wbuf_hwm then
          ec.ec_paused <- true
        else if ec.ec_paused && ec.ec_wlen <= srv.cfg.wbuf_hwm / 2 then
          ec.ec_paused <- false;
        set_interest es ec
          ~readable:((not finishing) && not ec.ec_paused)
          ~writable:(ec.ec_wlen > 0)
      end
    end
  end

let process_frame srv es ec payload =
  match Wire.decode_request payload with
  | exception _ ->
    (* protocol violation: drop the connection, don't guess *)
    close_econn srv es ec
  | id, deadline_ms, req -> (
    Atomic.incr srv.n_requests;
    Telemetry.add c_requests 1;
    match req with
    | Wire.Ping _ | Wire.Stats | Wire.Get_shard_map
    | Wire.Join _ | Wire.Leave _ | Wire.Heartbeat _
    | Wire.Reshard _ | Wire.Handoff_done _ | Wire.Cluster_status ->
      (* control plane: answered inline by the poller so a saturated
         worker pool never blinds monitoring, map refresh, or
         heartbeats (a busy data plane must not read as a dead node) *)
      append_frame ec (Wire.encode_outcome ~id (exec_control srv req))
    | _ ->
      let conn_id = ec.ec_id in
      admit srv ~id ~deadline_ms req ~respond:(fun outcome ->
          (* worker side: encode here (in parallel), deliver by conn
             id — never by fd, which may have been recycled *)
          let b = Wire.encode_outcome ~id outcome in
          Mutex.lock es.ep_comp_lock;
          es.ep_completions <- (conn_id, b) :: es.ep_completions;
          Mutex.unlock es.ep_comp_lock;
          Umrs_evloop.wakeup es.ep_loop))

(* Parse everything complete in the read buffer: the 10-byte hello
   first, then length-prefixed frames.  Partial input stays buffered —
   a slowloris client holds one connection and one buffer, not a
   thread. *)
let parse_input srv es ec =
  let off = ref 0 in
  if not ec.ec_hs_done && ec.ec_rlen >= Wire.hello_bytes then begin
    match Wire.check_hello (Bytes.sub ec.ec_rbuf 0 Wire.hello_bytes) with
    | Error _ -> close_econn srv es ec
    | Ok () ->
      ec.ec_hs_done <- true;
      off := Wire.hello_bytes;
      append_raw ec (Wire.hello ())
  end;
  if (not ec.ec_closed) && ec.ec_hs_done then begin
    let continue = ref true in
    while !continue && ec.ec_rlen - !off >= 4 do
      let len = Int32.to_int (Bytes.get_int32_le ec.ec_rbuf !off) in
      if len < 0 || len > srv.cfg.max_frame_bytes then begin
        close_econn srv es ec;
        continue := false
      end
      else if ec.ec_rlen - !off - 4 >= len then begin
        let payload = Bytes.sub ec.ec_rbuf (!off + 4) len in
        off := !off + 4 + len;
        process_frame srv es ec payload;
        if ec.ec_closed then continue := false
      end
      else continue := false
    done
  end;
  if (not ec.ec_closed) && !off > 0 then begin
    let rem = ec.ec_rlen - !off in
    if rem > 0 then Bytes.blit ec.ec_rbuf !off ec.ec_rbuf 0 rem;
    ec.ec_rlen <- rem
  end

let handle_readable srv es ec =
  (* one read per readiness event; the loop is level-triggered, so
     leftover input re-arms immediately and no connection can starve
     the others by streaming *)
  if Bytes.length ec.ec_rbuf - ec.ec_rlen < read_chunk then
    ec.ec_rbuf <- grow_to ec.ec_rbuf (ec.ec_rlen + read_chunk);
  match
    Umrs_fault.Io.read ec.ec_fd ec.ec_rbuf ec.ec_rlen
      (Bytes.length ec.ec_rbuf - ec.ec_rlen)
  with
  | 0 -> close_econn srv es ec (* peer EOF (or injected half-close) *)
  | n ->
    ec.ec_rlen <- ec.ec_rlen + n;
    parse_input srv es ec
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception (Unix.Unix_error _ | Sys_error _ | Umrs_fault.Fault.Injected _)
    ->
    close_econn srv es ec

let accept_burst srv es next_id =
  let continue = ref true in
  while !continue do
    match Umrs_fault.Io.accept ~cloexec:true srv.listen_fd with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      continue := false
    | exception (Unix.Unix_error _ | Umrs_fault.Fault.Injected _) ->
      continue := false
    | fd, _ ->
      if Atomic.get srv.stop then begin
        try Unix.close fd with Unix.Unix_error _ -> ()
      end
      else if Hashtbl.length es.ep_by_id >= srv.cfg.max_conns then begin
        (* at capacity: shed the connection at accept *)
        Telemetry.add c_conn_refused 1;
        try Unix.close fd with Unix.Unix_error _ -> ()
      end
      else begin
        (try Unix.set_nonblock fd with Unix.Unix_error _ -> ());
        Atomic.incr srv.n_conns;
        Atomic.incr srv.n_live;
        Telemetry.add c_accepted 1;
        incr next_id;
        let ec =
          { ec_id = !next_id; ec_fd = fd; ec_hs_done = false;
            ec_hs_deadline =
              (if srv.cfg.handshake_timeout > 0.0 then
                 Unix.gettimeofday () +. srv.cfg.handshake_timeout
               else infinity);
            ec_rbuf = Bytes.create initial_rbuf; ec_rlen = 0;
            ec_wbuf = Bytes.create initial_wbuf; ec_woff = 0; ec_wlen = 0;
            ec_int_r = true; ec_int_w = false; ec_paused = false;
            ec_dirty = false; ec_closed = false }
        in
        Hashtbl.replace es.ep_by_fd (Umrs_evloop.int_of_fd fd) ec;
        Hashtbl.replace es.ep_by_id ec.ec_id ec;
        Umrs_evloop.add es.ep_loop fd ~readable:true ~writable:false
      end
  done

(* Deliver worker completions queued since the last pass.  Frames are
   appended per connection first and each touched connection is pumped
   once — a pipelined burst of replies costs one flush, not one write
   syscall per reply. *)
let process_completions srv es ~finishing =
  Mutex.lock es.ep_comp_lock;
  let batch = es.ep_completions in
  es.ep_completions <- [];
  Mutex.unlock es.ep_comp_lock;
  match batch with
  | [] -> ()
  | _ ->
    let touched = ref [] in
    List.iter
      (fun (cid, payload) ->
        match Hashtbl.find_opt es.ep_by_id cid with
        | None -> () (* connection died with the job in flight *)
        | Some ec ->
          if not ec.ec_closed then begin
            append_frame ec payload;
            if not ec.ec_dirty then begin
              ec.ec_dirty <- true;
              touched := ec :: !touched
            end
          end)
      (List.rev batch);
    List.iter
      (fun ec ->
        ec.ec_dirty <- false;
        pump srv es ec ~finishing)
      !touched

let sweep_handshakes srv es now =
  let overdue = ref [] in
  Hashtbl.iter
    (fun _ ec ->
      if (not ec.ec_hs_done) && now > ec.ec_hs_deadline then
        overdue := ec :: !overdue)
    es.ep_by_id;
  List.iter (fun ec -> close_econn srv es ec) !overdue

let sweep_interval = 0.25

let poller_loop srv es =
  let loop = es.ep_loop in
  (try Unix.set_nonblock srv.listen_fd with Unix.Unix_error _ -> ());
  Umrs_evloop.add loop srv.listen_fd ~readable:true ~writable:false;
  let listen_open = ref true in
  let next_id = ref 0 in
  let next_sweep = ref (Unix.gettimeofday () +. sweep_interval) in
  let finish_deadline = ref infinity in
  let running = ref true in
  while !running do
    let finishing = Atomic.get es.ep_finish in
    let timeout_ms = if finishing then 20 else 250 in
    let handler fd ~readable ~writable ~hup =
      if fd == srv.listen_fd && !listen_open then accept_burst srv es next_id
      else
        match Hashtbl.find_opt es.ep_by_fd (Umrs_evloop.int_of_fd fd) with
        | None -> ()
        | Some ec -> (
          (* last-resort containment, mirroring [reader_loop]: whatever
             a storm injects (or a raced descriptor raises) takes down
             this one connection, never the poller *)
          try
            if readable && not finishing then handle_readable srv es ec;
            if not ec.ec_closed then begin
              if writable || ec.ec_wlen > 0 then pump srv es ec ~finishing
              else if hup && not readable then close_econn srv es ec
            end
          with
          | Unix.Unix_error _ | Sys_error _ | Sys_blocked_io
          | Umrs_fault.Fault.Injected _ ->
            close_econn srv es ec)
    in
    ignore (Umrs_evloop.wait loop ~timeout_ms ~handler);
    process_completions srv es ~finishing;
    if Atomic.get srv.stop && !listen_open then begin
      (* drain begins: no new connections, existing ones keep being
         read and answered ([admit] sheds to Overloaded) *)
      Umrs_evloop.remove loop srv.listen_fd;
      (try Unix.close srv.listen_fd with Unix.Unix_error _ -> ());
      listen_open := false
    end;
    let now = Unix.gettimeofday () in
    if now >= !next_sweep then begin
      next_sweep := now +. sweep_interval;
      sweep_handshakes srv es now;
      Telemetry.set_gauge g_live_conns (float_of_int (Atomic.get srv.n_live));
      Telemetry.set_gauge g_loop_wakeups
        (float_of_int (Umrs_evloop.wakeups loop));
      Telemetry.set_gauge g_queue_hwm
        (float_of_int (Atomic.get srv.n_queue_hwm));
      if Telemetry.enabled () then
        Telemetry.set_gauge g_cache_evictions
          (float_of_int
             (let () = Mutex.lock srv.cache_lock in
              let e = Lru.evictions srv.cache in
              Mutex.unlock srv.cache_lock;
              e))
    end;
    if finishing then begin
      if !finish_deadline = infinity then begin
        (* every accepted job is answered and queued by now (workers
           are joined); what's left is flushing write buffers *)
        finish_deadline := now +. 5.0;
        let all = Hashtbl.fold (fun _ ec acc -> ec :: acc) es.ep_by_id [] in
        List.iter (fun ec -> pump srv es ec ~finishing:true) all
      end;
      if Hashtbl.length es.ep_by_id = 0 || now > !finish_deadline then
        running := false
    end
  done;
  (* stragglers that never drained their buffers within the grace
     period lose the tail, exactly like a thread-backend shutdown *)
  let all = Hashtbl.fold (fun _ ec acc -> ec :: acc) es.ep_by_id [] in
  List.iter (fun ec -> close_econn srv es ec) all;
  if !listen_open then (try Unix.close srv.listen_fd with Unix.Unix_error _ -> ());
  Umrs_evloop.close loop

(* ---------- lifecycle ---------- *)

let validate_corpus cfg =
  match cfg.corpus with
  | None -> Ok ()
  | Some corpus -> (
    match
      Umrs_store.Query.open_ ~corpus ?index:cfg.index ~mmap:cfg.mmap ()
    with
    | Ok q ->
      Umrs_store.Query.close q;
      Ok ()
    | Error e -> Error (Umrs_store.Query.error_to_string e))

(* Only ever unlink a *stale* socket: a path holding a live server (a
   probe connect succeeds) is an address-in-use error, and a path
   holding anything that is not a socket is never deleted. *)
let clear_unix_path path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> Ok ()
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | { Unix.st_kind = Unix.S_SOCK; _ } ->
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      (* EINTR-retrying connect: a signal here must not make a live
         server's socket look stale *)
      try
        Umrs_fault.Io.connect probe (Unix.ADDR_UNIX path);
        true
      with Unix.Unix_error _ -> false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if live then Error (Printf.sprintf "address already in use: %s" path)
    else (try Ok (Sys.remove path) with Sys_error e -> Error e)
  | _ ->
    Error
      (Printf.sprintf "%s exists and is not a socket; refusing to replace it"
         path)

let bind_listen addr =
  match addr with
  | Wire.Unix_sock path -> (
    match clear_unix_path path with
    | Error _ as e -> e
    | Ok () ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try
         Unix.bind fd (Unix.ADDR_UNIX path);
         Unix.listen fd 1024;
         Ok (fd, addr)
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         Error (Printexc.to_string e)))
  | Wire.Tcp (host, port) ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt fd Unix.SO_REUSEADDR true;
       let inet =
         try Unix.inet_addr_of_string host
         with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
       in
       Unix.bind fd (Unix.ADDR_INET (inet, port));
       Unix.listen fd 1024;
       let actual =
         match Unix.getsockname fd with
         | Unix.ADDR_INET (_, p) -> Wire.Tcp (host, p)
         | _ -> addr
       in
       Ok (fd, actual)
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       Error (Printexc.to_string e))

let start cfg =
  if cfg.workers < 1 then Error "Server: workers must be >= 1"
  else if cfg.queue_capacity < 1 then Error "Server: queue_capacity must be >= 1"
  else if cfg.cache_capacity < 1 then Error "Server: cache_capacity must be >= 1"
  else if cfg.max_conns < 1 then Error "Server: max_conns must be >= 1"
  else if cfg.wbuf_hwm < 1 then Error "Server: wbuf_hwm must be >= 1"
  else if
    (match cfg.shard with
    | None -> false
    | Some (map, me) ->
      me < 0 || me >= Array.length map.Wire.sm_shards
      || Result.is_error (Wire.validate_shard_map map))
  then Error "Server: invalid shard configuration"
  else
    match validate_corpus cfg with
    | Error e -> Error e
    | Ok () -> (
      match bind_listen cfg.addr with
      | Error e -> Error e
      | Ok (listen_fd, actual_addr) ->
        (* a worker writing to a connection its client abandoned must
           not kill the process *)
        (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
         with Invalid_argument _ -> ());
        let ep =
          match cfg.backend with
          | Threads -> None
          | Epoll ->
            Some
              { ep_loop = Umrs_evloop.create ();
                ep_by_fd = Hashtbl.create 64; ep_by_id = Hashtbl.create 64;
                ep_comp_lock = Mutex.create (); ep_completions = [];
                ep_finish = Atomic.make false; ep_poller = None }
        in
        let srv =
          { cfg; listen_fd; actual_addr;
            shard_state = Atomic.make cfg.shard;
            advert_map = Atomic.make (Option.map fst cfg.shard);
            (* a server started sharded serves the piece its config
               pairs with its assignment, so its origin is the slice's
               own lo; unsharded corpora have no origin to declare *)
            corpus_ref =
              Atomic.make
                ( cfg.corpus, cfg.index,
                  Option.map
                    (fun (m, k) -> m.Wire.sm_shards.(k).Wire.sh_lo)
                    cfg.shard );
            corpus_gen = Atomic.make 0;
            queue = Jobqueue.create ~capacity:cfg.queue_capacity;
            stop = Atomic.make false;
            conns = Hashtbl.create 16; conns_lock = Mutex.create ();
            cache = Lru.create ~capacity:cfg.cache_capacity;
            cache_lock = Mutex.create ();
            n_conns = Atomic.make 0; n_live = Atomic.make 0;
            n_requests = Atomic.make 0;
            n_overloaded = Atomic.make 0; n_timeouts = Atomic.make 0;
            n_rejected = Atomic.make 0; n_cache_hits = Atomic.make 0;
            n_cache_misses = Atomic.make 0; n_worker_crashes = Atomic.make 0;
            n_queue_hwm = Atomic.make 0;
            acceptor = None; workers_arr = [||];
            sup_lock = Mutex.create (); sup_cond = Condition.create ();
            sup_deaths = Queue.create (); sup_generation = 0;
            sup_stop = false; supervisor = None; readers = [];
            ep; waited = false }
        in
        srv.workers_arr <-
          Array.init cfg.workers (fun slot -> Domain.spawn (worker_body srv slot));
        srv.supervisor <- Some (Thread.create supervisor_loop srv);
        (match srv.ep with
        | Some es ->
          es.ep_poller <- Some (Thread.create (fun () -> poller_loop srv es) ())
        | None ->
          srv.acceptor <- Some (Thread.create (fun () -> accept_loop srv) ()));
        Ok srv)

let shutdown srv =
  Atomic.set srv.stop true;
  match srv.ep with
  | Some es -> Umrs_evloop.wakeup es.ep_loop
  | None -> ()

let wait srv =
  if not srv.waited then begin
    srv.waited <- true;
    (* 0. poll [stop] from an interruptible sleep rather than blocking
       straight away in a join: OCaml runs signal handlers in the main
       thread, and a main thread parked in [Thread.join] leaves a
       SIGTERM pending for over a second, while one waking from
       [sleepf] handles it within a tick *)
    while not (Atomic.get srv.stop) do
      (try Unix.sleepf 0.05 with Unix.Unix_error (Unix.EINTR, _, _) -> ())
    done;
    (* 1. stop admission of connections.  Threads: the acceptor exits
       once [stop] is set and closes the listener.  Epoll: the poller
       notices [stop] on its next tick (kick it awake) and closes the
       listener itself; data-plane requests shed to Overloaded from
       here on ([admit] checks [stop]). *)
    (match srv.ep with
    | Some es -> Umrs_evloop.wakeup es.ep_loop
    | None -> Option.iter Thread.join srv.acceptor);
    (* 2. stop admission of jobs; workers drain every accepted job,
       answer it, then exit. A worker that dies mid-drain is replaced
       by the supervisor (the replacement finishes the drain), so the
       pool is joined until no death is pending and its generation is
       stable. *)
    Jobqueue.close srv.queue;
    let rec join_pool () =
      Mutex.lock srv.sup_lock;
      let pending = not (Queue.is_empty srv.sup_deaths) in
      let gen = srv.sup_generation in
      let snapshot = Array.copy srv.workers_arr in
      Mutex.unlock srv.sup_lock;
      if pending then begin
        (* let the supervisor process the report first: its join and
           ours on the same domain are both safe, but the replacement
           must land in [workers_arr] before we can see it *)
        (try Unix.sleepf 0.001
         with Unix.Unix_error (Unix.EINTR, _, _) -> ());
        join_pool ()
      end
      else begin
        Array.iter Domain.join snapshot;
        Mutex.lock srv.sup_lock;
        let stable =
          gen = srv.sup_generation && Queue.is_empty srv.sup_deaths
        in
        Mutex.unlock srv.sup_lock;
        if not stable then join_pool ()
      end
    in
    join_pool ();
    Mutex.lock srv.sup_lock;
    srv.sup_stop <- true;
    Condition.broadcast srv.sup_cond;
    Mutex.unlock srv.sup_lock;
    Option.iter Thread.join srv.supervisor;
    (match srv.ep with
    | Some es ->
      (* 3. every job is answered; its reply sits in the completion
         list or a write buffer.  Tell the poller to flush them all,
         close every connection, and exit. *)
      Atomic.set es.ep_finish true;
      Umrs_evloop.wakeup es.ep_loop;
      Option.iter Thread.join es.ep_poller;
      (* 4. responses are on the wire: flush telemetry so the JSONL
         sink holds whole records even if the process dies right
         after *)
      Telemetry.flush_metrics ();
      Telemetry.flush ()
    | None ->
      (* 3. responses are all written: flush telemetry so the JSONL
         sink holds whole records even if the process dies right
         after *)
      Telemetry.flush_metrics ();
      Telemetry.flush ();
      (* 4. wake readers blocked mid-read; they close their own fds *)
      Mutex.lock srv.conns_lock;
      Hashtbl.iter
        (fun _ conn ->
          try Unix.shutdown conn.c_fd Unix.SHUTDOWN_ALL
          with Unix.Unix_error _ -> ())
        srv.conns;
      let readers = srv.readers in
      Mutex.unlock srv.conns_lock;
      List.iter Thread.join readers);
    match srv.actual_addr with
    | Wire.Unix_sock path -> (try Sys.remove path with Sys_error _ -> ())
    | Wire.Tcp _ -> ()
  end

(* the probe is also what cluster node startup uses to clean a data
   directory after a SIGKILL left socket paths behind *)
let clear_stale_socket = clear_unix_path

let install_signal_handlers srv =
  let stop_now _ = shutdown srv in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle stop_now);
  Sys.set_signal Sys.sigint (Sys.Signal_handle stop_now);
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let run cfg =
  match start cfg with
  | Error e -> Error e
  | Ok srv ->
    install_signal_handlers srv;
    wait srv;
    Ok ()
