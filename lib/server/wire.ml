open Umrs_core
open Umrs_graph
module Bitbuf = Umrs_bitcode.Bitbuf

type addr =
  | Unix_sock of string
  | Tcp of string * int

let pp_addr fmt = function
  | Unix_sock path -> Format.fprintf fmt "unix:%s" path
  | Tcp (host, port) -> Format.fprintf fmt "tcp:%s:%d" host port

let addr_to_string a = Format.asprintf "%a" pp_addr a

type shard = {
  sh_lo : int;
  sh_hi : int;
  sh_key : int array;
  sh_primary : addr;
  sh_replicas : addr list;
}

type shard_map = {
  sm_version : int;
  sm_corpus_version : int;
  sm_variant : Umrs_core.Canonical.variant;
  sm_p : int;
  sm_q : int;
  sm_d : int;
  sm_count : int;
  sm_checksum : int64;
  sm_shards : shard array;
}

(* ---------- cluster membership ---------- *)

type member_state =
  | Joining
  | Ready
  | Dead

type member_info = {
  mi_addr : addr;
  mi_shard : int;
  mi_state : member_state;
  mi_in_map : bool;
  mi_primary : bool;
  mi_checksum : int64;
  mi_beat_age : float;
}

type node_cmd =
  | Cmd_acquire of { aq_lo : int; aq_hi : int; aq_donor : addr;
                     aq_map : shard_map option }

type reshard_op =
  | Split of int
  | Merge of int

type request =
  | Ping of int
  | Stats
  | Corpus_info
  | Nth of int
  | Mem of Matrix.t
  | Rank of Matrix.t
  | Range_prefix of int array
  | Cgraph_of of int
  | Evaluate of { scheme : string; graph_name : string; graph : Graph.t }
  | Sleep_ms of int
  | Get_shard_map
  | Join of { jn_addr : addr; jn_ready : bool; jn_checksum : int64 }
  | Leave of addr
  | Heartbeat of { hb_addr : addr; hb_version : int; hb_checksum : int64 }
  | Reshard of reshard_op
  | Handoff_done of { hd_addr : addr; hd_lo : int; hd_hi : int;
                      hd_key : int array; hd_checksum : int64 }
  | Cluster_status

let opcode = function
  | Ping _ -> 0
  | Stats -> 1
  | Corpus_info -> 2
  | Nth _ -> 3
  | Mem _ -> 4
  | Rank _ -> 5
  | Range_prefix _ -> 6
  | Cgraph_of _ -> 7
  | Evaluate _ -> 8
  | Sleep_ms _ -> 9
  | Get_shard_map -> 10
  | Join _ -> 11
  | Leave _ -> 12
  | Heartbeat _ -> 13
  | Reshard _ -> 14
  | Handoff_done _ -> 15
  | Cluster_status -> 16

let opcode_name = function
  | 0 -> "ping"
  | 1 -> "stats"
  | 2 -> "corpus_info"
  | 3 -> "nth"
  | 4 -> "mem"
  | 5 -> "rank"
  | 6 -> "range_prefix"
  | 7 -> "cgraph"
  | 8 -> "evaluate"
  | 9 -> "sleep"
  | 10 -> "shard_map"
  | 11 -> "join"
  | 12 -> "leave"
  | 13 -> "heartbeat"
  | 14 -> "reshard"
  | 15 -> "handoff_done"
  | 16 -> "cluster_status"
  | n -> Printf.sprintf "opcode-%d" n

type server_stats = {
  st_connections : int;
  st_requests : int;
  st_overloaded : int;
  st_timeouts : int;
  st_rejected : int;
  st_cache_hits : int;
  st_cache_misses : int;
  st_queue_depth : int;
  st_queue_capacity : int;
  st_workers : int;
  st_draining : bool;
  (* protocol v2: cache and event-loop health *)
  st_live_conns : int;
  st_cache_evictions : int;
  st_loop_wakeups : int;
  st_queue_hwm : int;
}

type response =
  | R_pong of int
  | R_stats of server_stats
  | R_header of Umrs_store.Corpus.header
  | R_matrix of Matrix.t
  | R_found of bool
  | R_rank of int
  | R_range of int * int
  | R_slice of { sl_version : int; sl_lo : int; sl_hi : int }
  | R_graph of Cgraph.t
  | R_evaluation of Umrs_routing.Scheme.evaluation
  | R_slept of int
  | R_shard_map of shard_map
  | R_joined of { jr_shard : int; jr_lo : int; jr_hi : int; jr_donor : addr;
                  jr_checksum : int64; jr_version : int;
                  jr_map : shard_map option }
  | R_heartbeat of { rh_version : int; rh_known : bool;
                     rh_cmd : node_cmd option }
  | R_status of { cs_version : int; cs_published : bool;
                  cs_members : member_info list }
  | R_accepted of string

type outcome =
  | Reply of response
  | Rejected of string
  | Overloaded
  | Timed_out

(* ---------- field primitives ---------- *)

let u8 b x =
  if x < 0 || x > 0xFF then invalid_arg "Wire: u8 out of range";
  Bitbuf.add_bits b x ~width:8

let u16 b x =
  if x < 0 || x > 0xFFFF then invalid_arg "Wire: u16 out of range";
  Bitbuf.add_bits b x ~width:16

let u32 b x =
  if x < 0 || x > 0xFFFFFFFF then invalid_arg "Wire: u32 out of range";
  Bitbuf.add_bits b x ~width:32

let r8 rd = Bitbuf.read_bits rd ~width:8
let r16 rd = Bitbuf.read_bits rd ~width:16
let r32 rd = Bitbuf.read_bits rd ~width:32

(* 64-bit quantities as two 32-bit halves, high first (add_bits caps
   widths at 62, so a single field cannot carry an int64). *)
let i64 b (x : int64) =
  u32 b (Int64.to_int (Int64.shift_right_logical x 32));
  u32 b (Int64.to_int (Int64.logand x 0xFFFFFFFFL))

let ri64 rd =
  let hi = Int64.of_int (r32 rd) in
  let lo = Int64.of_int (r32 rd) in
  Int64.logor (Int64.shift_left hi 32) lo

(* Non-negative OCaml ints that may exceed 32 bits (memory totals,
   record counts) travel as i64. *)
let int64_of_nonneg name x =
  if x < 0 then invalid_arg (Printf.sprintf "Wire: negative %s" name);
  Int64.of_int x

let rint64 rd name =
  let x = ri64 rd in
  if Int64.compare x 0L < 0 || Int64.compare x (Int64.of_int max_int) > 0 then
    invalid_arg (Printf.sprintf "Wire: %s out of range" name);
  Int64.to_int x

let f64 b x = i64 b (Int64.bits_of_float x)
let rf64 rd = Int64.float_of_bits (ri64 rd)

let str b s =
  u32 b (String.length s);
  String.iter (fun c -> u8 b (Char.code c)) s

let rstr rd =
  let n = r32 rd in
  (* Each character costs 8 bits: bound the allocation by what the
     buffer can actually hold before trusting the length. *)
  if n * 8 > Bitbuf.remaining rd then invalid_arg "Wire: truncated string";
  String.init n (fun _ -> Char.chr (r8 rd))

let wbool b x = Bitbuf.add_bit b x
let rbool rd = Bitbuf.read_bit rd

(* ---------- composite codecs ---------- *)

let enc_matrix b (m : Matrix.t) =
  u16 b m.Matrix.p;
  u16 b m.Matrix.q;
  Array.iter (Array.iter (fun x -> u16 b x)) m.Matrix.entries

let dec_matrix rd =
  let p = r16 rd in
  let q = r16 rd in
  if p < 1 || q < 1 then invalid_arg "Wire: bad matrix dimensions";
  if p * q * 16 > Bitbuf.remaining rd then invalid_arg "Wire: truncated matrix";
  let rows = Array.init p (fun _ -> Array.init q (fun _ -> r16 rd)) in
  Matrix.create_relaxed rows

(* Adjacency rows in port order: the round-trip preserves the local
   port numbering the routing model depends on. *)
let enc_graph b g =
  let n = Graph.order g in
  u32 b n;
  for v = 0 to n - 1 do
    let nb = Graph.neighbors g v in
    u16 b (Array.length nb);
    Array.iter (fun u -> u32 b u) nb
  done

let dec_graph rd =
  let n = r32 rd in
  if n < 1 then invalid_arg "Wire: bad graph order";
  (* Every vertex costs at least a 16-bit degree field: an order the
     payload cannot possibly carry is rejected here, before Array.init
     can allocate n slots off an attacker-controlled u32. *)
  if n * 16 > Bitbuf.remaining rd then invalid_arg "Wire: truncated graph";
  let adj =
    Array.init n (fun _ ->
        let deg = r16 rd in
        if deg * 32 > Bitbuf.remaining rd then
          invalid_arg "Wire: truncated graph";
        Array.init deg (fun _ -> r32 rd))
  in
  Graph.of_adjacency adj

let enc_header b (h : Umrs_store.Corpus.header) =
  u16 b h.Umrs_store.Corpus.version;
  u8 b (match h.Umrs_store.Corpus.variant with
        | Canonical.Full -> 0
        | Canonical.Positional -> 1);
  u16 b h.Umrs_store.Corpus.p;
  u16 b h.Umrs_store.Corpus.q;
  u16 b h.Umrs_store.Corpus.d;
  i64 b (int64_of_nonneg "count" h.Umrs_store.Corpus.count);
  i64 b h.Umrs_store.Corpus.checksum

let dec_header rd : Umrs_store.Corpus.header =
  let version = r16 rd in
  let variant =
    match r8 rd with
    | 0 -> Canonical.Full
    | 1 -> Canonical.Positional
    | v -> invalid_arg (Printf.sprintf "Wire: unknown variant byte %d" v)
  in
  let p = r16 rd in
  let q = r16 rd in
  let d = r16 rd in
  let count = rint64 rd "count" in
  let checksum = ri64 rd in
  { Umrs_store.Corpus.version; variant; p; q; d; count; checksum }

let enc_stats b st =
  u32 b st.st_connections;
  u32 b st.st_requests;
  u32 b st.st_overloaded;
  u32 b st.st_timeouts;
  u32 b st.st_rejected;
  u32 b st.st_cache_hits;
  u32 b st.st_cache_misses;
  u32 b st.st_queue_depth;
  u32 b st.st_queue_capacity;
  u32 b st.st_workers;
  wbool b st.st_draining;
  u32 b st.st_live_conns;
  i64 b (int64_of_nonneg "cache_evictions" st.st_cache_evictions);
  i64 b (int64_of_nonneg "loop_wakeups" st.st_loop_wakeups);
  u32 b st.st_queue_hwm

let dec_stats rd =
  let st_connections = r32 rd in
  let st_requests = r32 rd in
  let st_overloaded = r32 rd in
  let st_timeouts = r32 rd in
  let st_rejected = r32 rd in
  let st_cache_hits = r32 rd in
  let st_cache_misses = r32 rd in
  let st_queue_depth = r32 rd in
  let st_queue_capacity = r32 rd in
  let st_workers = r32 rd in
  let st_draining = rbool rd in
  let st_live_conns = r32 rd in
  let st_cache_evictions = rint64 rd "cache_evictions" in
  let st_loop_wakeups = rint64 rd "loop_wakeups" in
  let st_queue_hwm = r32 rd in
  { st_connections; st_requests; st_overloaded; st_timeouts; st_rejected;
    st_cache_hits; st_cache_misses; st_queue_depth; st_queue_capacity;
    st_workers; st_draining; st_live_conns; st_cache_evictions;
    st_loop_wakeups; st_queue_hwm }

let enc_evaluation b (e : Umrs_routing.Scheme.evaluation) =
  str b e.Umrs_routing.Scheme.scheme_name;
  str b e.Umrs_routing.Scheme.graph_name;
  u32 b e.Umrs_routing.Scheme.order;
  u32 b e.Umrs_routing.Scheme.edges;
  i64 b (int64_of_nonneg "mem_local" e.Umrs_routing.Scheme.mem_local_bits);
  i64 b (int64_of_nonneg "mem_global" e.Umrs_routing.Scheme.mem_global_bits);
  let s = e.Umrs_routing.Scheme.stretch in
  f64 b s.Umrs_routing.Routing_function.max_ratio;
  u32 b (fst s.Umrs_routing.Routing_function.worst_pair);
  u32 b (snd s.Umrs_routing.Routing_function.worst_pair);
  u32 b s.Umrs_routing.Routing_function.worst_route;
  u32 b s.Umrs_routing.Routing_function.worst_dist;
  f64 b s.Umrs_routing.Routing_function.mean_ratio;
  f64 b s.Umrs_routing.Routing_function.p50_ratio;
  f64 b s.Umrs_routing.Routing_function.p95_ratio

let dec_evaluation rd : Umrs_routing.Scheme.evaluation =
  let scheme_name = rstr rd in
  let graph_name = rstr rd in
  let order = r32 rd in
  let edges = r32 rd in
  let mem_local_bits = rint64 rd "mem_local" in
  let mem_global_bits = rint64 rd "mem_global" in
  let max_ratio = rf64 rd in
  let wa = r32 rd in
  let wb = r32 rd in
  let worst_route = r32 rd in
  let worst_dist = r32 rd in
  let mean_ratio = rf64 rd in
  let p50_ratio = rf64 rd in
  let p95_ratio = rf64 rd in
  { Umrs_routing.Scheme.scheme_name; graph_name; order; edges;
    mem_local_bits; mem_global_bits;
    stretch =
      { Umrs_routing.Routing_function.max_ratio; worst_pair = (wa, wb);
        worst_route; worst_dist; mean_ratio; p50_ratio; p95_ratio } }

(* ---------- shard maps ---------- *)

let enc_addr b = function
  | Unix_sock path ->
    u8 b 0;
    str b path
  | Tcp (host, port) ->
    u8 b 1;
    str b host;
    u16 b port

let dec_addr rd =
  match r8 rd with
  | 0 -> Unix_sock (rstr rd)
  | 1 ->
    let host = rstr rd in
    let port = r16 rd in
    Tcp (host, port)
  | t -> invalid_arg (Printf.sprintf "Wire: unknown address tag %d" t)

let enc_shard b sh =
  i64 b (int64_of_nonneg "shard lo" sh.sh_lo);
  i64 b (int64_of_nonneg "shard hi" sh.sh_hi);
  u16 b (Array.length sh.sh_key);
  Array.iter (fun x -> u16 b x) sh.sh_key;
  enc_addr b sh.sh_primary;
  u16 b (List.length sh.sh_replicas);
  List.iter (enc_addr b) sh.sh_replicas

let dec_shard rd =
  let sh_lo = rint64 rd "shard lo" in
  let sh_hi = rint64 rd "shard hi" in
  let nk = r16 rd in
  if nk * 16 > Bitbuf.remaining rd then invalid_arg "Wire: truncated shard key";
  let sh_key = Array.init nk (fun _ -> r16 rd) in
  let sh_primary = dec_addr rd in
  let nr = r16 rd in
  (* An address costs at least a tag byte plus a length word: bound the
     list allocation before trusting the count. *)
  if nr * 40 > Bitbuf.remaining rd then invalid_arg "Wire: truncated replicas";
  let sh_replicas = List.init nr (fun _ -> dec_addr rd) in
  { sh_lo; sh_hi; sh_key; sh_primary; sh_replicas }

let enc_shard_map b sm =
  u32 b sm.sm_version;
  u16 b sm.sm_corpus_version;
  u8 b (match sm.sm_variant with
        | Canonical.Full -> 0
        | Canonical.Positional -> 1);
  u16 b sm.sm_p;
  u16 b sm.sm_q;
  u16 b sm.sm_d;
  i64 b (int64_of_nonneg "count" sm.sm_count);
  i64 b sm.sm_checksum;
  u16 b (Array.length sm.sm_shards);
  Array.iter (enc_shard b) sm.sm_shards

let dec_shard_map rd =
  let sm_version = r32 rd in
  let sm_corpus_version = r16 rd in
  let sm_variant =
    match r8 rd with
    | 0 -> Canonical.Full
    | 1 -> Canonical.Positional
    | v -> invalid_arg (Printf.sprintf "Wire: unknown variant byte %d" v)
  in
  let sm_p = r16 rd in
  let sm_q = r16 rd in
  let sm_d = r16 rd in
  let sm_count = rint64 rd "count" in
  let sm_checksum = ri64 rd in
  let ns = r16 rd in
  (* Each shard carries at minimum two i64 bounds: bound the array
     allocation before trusting the count. *)
  if ns * 128 > Bitbuf.remaining rd then invalid_arg "Wire: truncated shards";
  let sm_shards = Array.init ns (fun _ -> dec_shard rd) in
  { sm_version; sm_corpus_version; sm_variant; sm_p; sm_q; sm_d;
    sm_count; sm_checksum; sm_shards }

let shard_map_to_bytes sm =
  let b = Bitbuf.create () in
  enc_shard_map b sm;
  Bitbuf.to_bytes b

let shard_map_of_bytes bytes =
  let buf = Bitbuf.of_bytes bytes ~len:(8 * Bytes.length bytes) in
  dec_shard_map (Bitbuf.reader buf)

let validate_shard_map sm =
  let n = Array.length sm.sm_shards in
  if n = 0 then Error "shard map has no shards"
  else if sm.sm_shards.(0).sh_lo <> 0 then
    Error "first shard does not start at rank 0"
  else if sm.sm_shards.(n - 1).sh_hi <> sm.sm_count then
    Error "last shard does not end at the corpus count"
  else begin
    let err = ref None in
    let fail msg = if !err = None then err := Some msg in
    Array.iteri
      (fun i sh ->
        if sh.sh_lo >= sh.sh_hi then
          fail (Printf.sprintf "shard %d is empty" i);
        if Array.length sh.sh_key <> sm.sm_p * sm.sm_q then
          fail (Printf.sprintf "shard %d key has wrong arity" i);
        if i > 0 then begin
          let prev = sm.sm_shards.(i - 1) in
          if prev.sh_hi <> sh.sh_lo then
            fail (Printf.sprintf "gap between shards %d and %d" (i - 1) i);
          if compare prev.sh_key sh.sh_key >= 0 then
            fail (Printf.sprintf "shard keys not increasing at %d" i)
        end)
      sm.sm_shards;
    match !err with Some msg -> Error msg | None -> Ok ()
  end

(* ---------- membership codecs ---------- *)

let enc_node_cmd b = function
  | Cmd_acquire { aq_lo; aq_hi; aq_donor; aq_map } ->
    u8 b 0;
    i64 b (int64_of_nonneg "acquire lo" aq_lo);
    i64 b (int64_of_nonneg "acquire hi" aq_hi);
    enc_addr b aq_donor;
    (match aq_map with
    | None -> wbool b false
    | Some m ->
      wbool b true;
      enc_shard_map b m)

let dec_node_cmd rd =
  match r8 rd with
  | 0 ->
    let aq_lo = rint64 rd "acquire lo" in
    let aq_hi = rint64 rd "acquire hi" in
    let aq_donor = dec_addr rd in
    let aq_map = if rbool rd then Some (dec_shard_map rd) else None in
    Cmd_acquire { aq_lo; aq_hi; aq_donor; aq_map }
  | t -> invalid_arg (Printf.sprintf "Wire: unknown node command tag %d" t)

let enc_member_info b mi =
  enc_addr b mi.mi_addr;
  (* Shards are u16-sized; -1 (unassigned) travels as 0 with everything
     else shifted up by one. *)
  u16 b (mi.mi_shard + 1);
  u8 b (match mi.mi_state with Joining -> 0 | Ready -> 1 | Dead -> 2);
  wbool b mi.mi_in_map;
  wbool b mi.mi_primary;
  i64 b mi.mi_checksum;
  f64 b mi.mi_beat_age

let dec_member_info rd =
  let mi_addr = dec_addr rd in
  let mi_shard = r16 rd - 1 in
  let mi_state =
    match r8 rd with
    | 0 -> Joining
    | 1 -> Ready
    | 2 -> Dead
    | s -> invalid_arg (Printf.sprintf "Wire: unknown member state %d" s)
  in
  let mi_in_map = rbool rd in
  let mi_primary = rbool rd in
  let mi_checksum = ri64 rd in
  let mi_beat_age = rf64 rd in
  { mi_addr; mi_shard; mi_state; mi_in_map; mi_primary; mi_checksum;
    mi_beat_age }

let corpus_header_of_map sm : Umrs_store.Corpus.header =
  { Umrs_store.Corpus.version = sm.sm_corpus_version;
    variant = sm.sm_variant; p = sm.sm_p; q = sm.sm_q; d = sm.sm_d;
    count = sm.sm_count; checksum = sm.sm_checksum }

(* ---------- key-range routing ---------- *)

let matrix_key (m : Matrix.t) = Array.concat (Array.to_list m.Matrix.entries)

(* Lexicographic comparison of [prefix] against the first |prefix|
   elements of [key].  A key shorter than the prefix compares as
   smaller once its elements run out. *)
let cmp_prefix prefix key =
  let np = Array.length prefix and nk = Array.length key in
  let rec go i =
    if i >= np then 0
    else if i >= nk then 1
    else
      let c = compare prefix.(i) key.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let route_index sm i =
  if i < 0 || i >= sm.sm_count then
    invalid_arg (Printf.sprintf "Wire: record index %d out of range" i);
  let j = ref 0 in
  Array.iteri (fun k sh -> if i >= sh.sh_lo then j := k) sm.sm_shards;
  !j

let route_key sm key =
  (* Largest shard whose boundary key is <= [key]; shard 0 owns
     everything below the second boundary by construction. *)
  let j = ref 0 in
  Array.iteri
    (fun k sh -> if k > 0 && cmp_prefix sh.sh_key key <= 0 then j := k)
    sm.sm_shards;
  !j

let route_matrix sm m = route_key sm (matrix_key m)

let route_prefix sm prefix =
  (* Records matching [prefix] are contiguous in key order.  They can
     only live in shards a..b where b is the largest shard whose
     boundary key truncated to |prefix| is <= prefix (the anchor: a
     prefix below every boundary belongs to shard 0), and a is the
     largest shard whose truncated boundary key is strictly < prefix
     (every earlier boundary precedes all matches). *)
  let a = ref 0 and b = ref 0 in
  Array.iteri
    (fun k sh ->
      if k > 0 then begin
        let c = cmp_prefix prefix sh.sh_key in
        if c >= 0 then b := k;
        if c > 0 then a := k
      end)
    sm.sm_shards;
  (!a, !b)

(* ---------- stale-shard redirect ---------- *)

(* A shard server that receives a request outside its key range answers
   with a structured rejection carrying its own map version, so a
   client holding an outdated map can refresh and re-route instead of
   surfacing a spurious error. *)
let stale_shard_prefix = "stale shard map: server has version "
let stale_shard_msg ~version = stale_shard_prefix ^ string_of_int version
let stale_shard_reject ~version = Rejected (stale_shard_msg ~version)

let stale_shard_version msg =
  let n = String.length stale_shard_prefix in
  if String.length msg > n && String.sub msg 0 n = stale_shard_prefix then
    int_of_string_opt (String.sub msg n (String.length msg - n))
  else None

(* ---------- hello ---------- *)

let magic = "UMRSSRVC"

(* v2: server_stats gained live-connection, cache-eviction and
   event-loop health fields.  v3: the Get_shard_map request and
   R_shard_map response for cluster routing.  v4: stretch-distribution
   fields in evaluations.  v5: cluster membership — Join/Leave/
   Heartbeat/Reshard/Handoff_done/Cluster_status requests and their
   responses.  The hello version is part of the handshake, so
   mixed-version pairs fail fast instead of misparsing a reply. *)
let protocol_version = 5
let hello_bytes = 10

let hello () =
  let b = Bytes.create hello_bytes in
  Bytes.blit_string magic 0 b 0 8;
  Bytes.set_uint16_le b 8 protocol_version;
  b

let check_hello b =
  if Bytes.length b <> hello_bytes || Bytes.sub_string b 0 8 <> magic then
    Error `Bad_magic
  else
    let v = Bytes.get_uint16_le b 8 in
    if v <> protocol_version then Error (`Bad_version v) else Ok ()

(* ---------- requests ---------- *)

let encode_request ~id ~deadline_ms req =
  let b = Bitbuf.create () in
  u32 b (id land 0xFFFFFFFF);
  u32 b (max 0 deadline_ms land 0xFFFFFFFF);
  u8 b (opcode req);
  (match req with
  | Ping nonce -> u32 b nonce
  | Stats | Corpus_info -> ()
  | Nth i | Cgraph_of i -> u32 b i
  | Mem m | Rank m -> enc_matrix b m
  | Range_prefix prefix ->
    u16 b (Array.length prefix);
    Array.iter (fun x -> u16 b x) prefix
  | Evaluate { scheme; graph_name; graph } ->
    str b scheme;
    str b graph_name;
    enc_graph b graph
  | Sleep_ms ms -> u32 b ms
  | Get_shard_map -> ()
  | Join { jn_addr; jn_ready; jn_checksum } ->
    enc_addr b jn_addr;
    wbool b jn_ready;
    i64 b jn_checksum
  | Leave a -> enc_addr b a
  | Heartbeat { hb_addr; hb_version; hb_checksum } ->
    enc_addr b hb_addr;
    u32 b hb_version;
    i64 b hb_checksum
  | Reshard op ->
    (match op with
    | Split k ->
      u8 b 0;
      u16 b k
    | Merge k ->
      u8 b 1;
      u16 b k)
  | Handoff_done { hd_addr; hd_lo; hd_hi; hd_key; hd_checksum } ->
    enc_addr b hd_addr;
    i64 b (int64_of_nonneg "handoff lo" hd_lo);
    i64 b (int64_of_nonneg "handoff hi" hd_hi);
    u16 b (Array.length hd_key);
    Array.iter (fun x -> u16 b x) hd_key;
    i64 b hd_checksum
  | Cluster_status -> ());
  Bitbuf.to_bytes b

let decode_request bytes =
  let buf = Bitbuf.of_bytes bytes ~len:(8 * Bytes.length bytes) in
  let rd = Bitbuf.reader buf in
  let id = r32 rd in
  let deadline_ms = r32 rd in
  let req =
    match r8 rd with
    | 0 -> Ping (r32 rd)
    | 1 -> Stats
    | 2 -> Corpus_info
    | 3 -> Nth (r32 rd)
    | 4 -> Mem (dec_matrix rd)
    | 5 -> Rank (dec_matrix rd)
    | 6 ->
      let n = r16 rd in
      if n * 16 > Bitbuf.remaining rd then
        invalid_arg "Wire: truncated prefix";
      Range_prefix (Array.init n (fun _ -> r16 rd))
    | 7 -> Cgraph_of (r32 rd)
    | 8 ->
      let scheme = rstr rd in
      let graph_name = rstr rd in
      let graph = dec_graph rd in
      Evaluate { scheme; graph_name; graph }
    | 9 -> Sleep_ms (r32 rd)
    | 10 -> Get_shard_map
    | 11 ->
      let jn_addr = dec_addr rd in
      let jn_ready = rbool rd in
      let jn_checksum = ri64 rd in
      Join { jn_addr; jn_ready; jn_checksum }
    | 12 -> Leave (dec_addr rd)
    | 13 ->
      let hb_addr = dec_addr rd in
      let hb_version = r32 rd in
      let hb_checksum = ri64 rd in
      Heartbeat { hb_addr; hb_version; hb_checksum }
    | 14 ->
      (match r8 rd with
      | 0 -> Reshard (Split (r16 rd))
      | 1 -> Reshard (Merge (r16 rd))
      | t -> invalid_arg (Printf.sprintf "Wire: unknown reshard op %d" t))
    | 15 ->
      let hd_addr = dec_addr rd in
      let hd_lo = rint64 rd "handoff lo" in
      let hd_hi = rint64 rd "handoff hi" in
      let nk = r16 rd in
      if nk * 16 > Bitbuf.remaining rd then
        invalid_arg "Wire: truncated handoff key";
      let hd_key = Array.init nk (fun _ -> r16 rd) in
      let hd_checksum = ri64 rd in
      Handoff_done { hd_addr; hd_lo; hd_hi; hd_key; hd_checksum }
    | 16 -> Cluster_status
    | op -> invalid_arg (Printf.sprintf "Wire: unknown opcode %d" op)
  in
  (id, deadline_ms, req)

(* ---------- outcomes ---------- *)

let response_tag = function
  | R_pong _ -> 0
  | R_stats _ -> 1
  | R_header _ -> 2
  | R_matrix _ -> 3
  | R_found _ -> 4
  | R_rank _ -> 5
  | R_range _ -> 6
  | R_graph _ -> 7
  | R_evaluation _ -> 8
  | R_slept _ -> 9
  | R_shard_map _ -> 10
  | R_joined _ -> 11
  | R_heartbeat _ -> 12
  | R_status _ -> 13
  | R_accepted _ -> 14
  | R_slice _ -> 15

let encode_outcome ~id outcome =
  let b = Bitbuf.create () in
  u32 b (id land 0xFFFFFFFF);
  (match outcome with
  | Reply r ->
    u8 b 0;
    u8 b (response_tag r);
    (match r with
    | R_pong nonce -> u32 b nonce
    | R_stats st -> enc_stats b st
    | R_header h -> enc_header b h
    | R_matrix m -> enc_matrix b m
    | R_found found -> wbool b found
    | R_rank r -> i64 b (int64_of_nonneg "rank" r)
    | R_range (lo, hi) ->
      i64 b (int64_of_nonneg "range lo" lo);
      i64 b (int64_of_nonneg "range hi" hi)
    | R_slice { sl_version; sl_lo; sl_hi } ->
      u32 b sl_version;
      i64 b (int64_of_nonneg "slice lo" sl_lo);
      i64 b (int64_of_nonneg "slice hi" sl_hi)
    | R_graph t -> enc_matrix b t.Cgraph.matrix
    | R_evaluation e -> enc_evaluation b e
    | R_slept ms -> u32 b ms
    | R_shard_map sm -> enc_shard_map b sm
    | R_joined { jr_shard; jr_lo; jr_hi; jr_donor; jr_checksum; jr_version;
                 jr_map } ->
      u16 b jr_shard;
      i64 b (int64_of_nonneg "joined lo" jr_lo);
      i64 b (int64_of_nonneg "joined hi" jr_hi);
      enc_addr b jr_donor;
      i64 b jr_checksum;
      u32 b jr_version;
      (match jr_map with
      | None -> wbool b false
      | Some m ->
        wbool b true;
        enc_shard_map b m)
    | R_heartbeat { rh_version; rh_known; rh_cmd } ->
      u32 b rh_version;
      wbool b rh_known;
      (match rh_cmd with
      | None -> wbool b false
      | Some cmd ->
        wbool b true;
        enc_node_cmd b cmd)
    | R_status { cs_version; cs_published; cs_members } ->
      u32 b cs_version;
      wbool b cs_published;
      u16 b (List.length cs_members);
      List.iter (enc_member_info b) cs_members
    | R_accepted msg -> str b msg)
  | Rejected msg ->
    u8 b 1;
    str b msg
  | Overloaded -> u8 b 2
  | Timed_out -> u8 b 3);
  Bitbuf.to_bytes b

let decode_outcome bytes =
  let buf = Bitbuf.of_bytes bytes ~len:(8 * Bytes.length bytes) in
  let rd = Bitbuf.reader buf in
  let id = r32 rd in
  let outcome =
    match r8 rd with
    | 0 ->
      Reply
        (match r8 rd with
        | 0 -> R_pong (r32 rd)
        | 1 -> R_stats (dec_stats rd)
        | 2 -> R_header (dec_header rd)
        | 3 -> R_matrix (dec_matrix rd)
        | 4 -> R_found (rbool rd)
        | 5 -> R_rank (rint64 rd "rank")
        | 6 ->
          let lo = rint64 rd "range lo" in
          let hi = rint64 rd "range hi" in
          R_range (lo, hi)
        | 7 ->
          (* The matrix fully determines the Lemma-2 graph; rebuild it
             locally. Rows arrive normalized (Matrix.create checks). *)
          let m = dec_matrix rd in
          R_graph (Cgraph.of_matrix (Matrix.create m.Matrix.entries))
        | 8 -> R_evaluation (dec_evaluation rd)
        | 9 -> R_slept (r32 rd)
        | 10 -> R_shard_map (dec_shard_map rd)
        | 11 ->
          let jr_shard = r16 rd in
          let jr_lo = rint64 rd "joined lo" in
          let jr_hi = rint64 rd "joined hi" in
          let jr_donor = dec_addr rd in
          let jr_checksum = ri64 rd in
          let jr_version = r32 rd in
          let jr_map = if rbool rd then Some (dec_shard_map rd) else None in
          R_joined { jr_shard; jr_lo; jr_hi; jr_donor; jr_checksum;
                     jr_version; jr_map }
        | 12 ->
          let rh_version = r32 rd in
          let rh_known = rbool rd in
          let rh_cmd = if rbool rd then Some (dec_node_cmd rd) else None in
          R_heartbeat { rh_version; rh_known; rh_cmd }
        | 13 ->
          let cs_version = r32 rd in
          let cs_published = rbool rd in
          let nm = r16 rd in
          (* A member entry costs at least an address plus two i64s:
             bound the list allocation before trusting the count. *)
          if nm * 160 > Bitbuf.remaining rd then
            invalid_arg "Wire: truncated members";
          let cs_members = List.init nm (fun _ -> dec_member_info rd) in
          R_status { cs_version; cs_published; cs_members }
        | 14 -> R_accepted (rstr rd)
        | 15 ->
          let sl_version = r32 rd in
          let sl_lo = rint64 rd "slice lo" in
          let sl_hi = rint64 rd "slice hi" in
          R_slice { sl_version; sl_lo; sl_hi }
        | tag -> invalid_arg (Printf.sprintf "Wire: unknown response tag %d" tag))
    | 1 -> Rejected (rstr rd)
    | 2 -> Overloaded
    | 3 -> Timed_out
    | s -> invalid_arg (Printf.sprintf "Wire: unknown status byte %d" s)
  in
  (id, outcome)

(* ---------- frames ---------- *)

let default_max_frame = 16 * 1024 * 1024

let write_frame ?(flush = true) oc payload =
  Umrs_fault.Io.on_sock_write ();
  let n = Bytes.length payload in
  let hdr = Bytes.create 4 in
  Bytes.set_int32_le hdr 0 (Int32.of_int n);
  output_bytes oc hdr;
  output_bytes oc payload;
  if flush then Stdlib.flush oc

let read_frame ?(max_bytes = default_max_frame) ic =
  Umrs_fault.Io.on_sock_read ();
  let hdr = Bytes.create 4 in
  match really_input ic hdr 0 4 with
  | exception End_of_file -> None
  | () ->
    let n = Int32.to_int (Bytes.get_int32_le hdr 0) in
    if n < 0 || n > max_bytes then
      invalid_arg (Printf.sprintf "Wire: frame length %d out of bounds" n);
    let payload = Bytes.create n in
    really_input ic payload 0 n;
    Some payload

(* ---------- digests ---------- *)

let graph_key g =
  let b = Bitbuf.create () in
  enc_graph b g;
  Bytes.to_string (Bitbuf.to_bytes b)

let graph_digest g =
  Umrs_store.Corpus.fnv64 Umrs_store.Corpus.fnv64_seed
    (Bytes.of_string (graph_key g))
