(** Bounded least-recently-used cache (hash table + intrusive list).

    The server's evaluation cache: scheme evaluation on a graph is
    orders of magnitude more expensive than a table lookup, and serving
    workloads repeat (the same benchmark graph, the same hot corpus
    record), so a small LRU in front of {!Umrs_routing.Scheme.evaluate}
    absorbs the repeats. [find] and [add] are O(1); eviction removes
    the least recently touched binding.

    Not thread-safe: callers serialize access (the server wraps one
    instance in a mutex shared by its worker pool). *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t
(** Raises [Invalid_argument] if [capacity < 1]. *)

val capacity : ('k, 'v) t -> int

val length : ('k, 'v) t -> int

val evictions : ('k, 'v) t -> int
(** Entries pushed out by capacity over the cache's lifetime
    (overwrites and {!clear} do not count). *)

val find : ('k, 'v) t -> 'k -> 'v option
(** Looks a key up and, on a hit, marks it most recently used. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or overwrite a binding as most recently used, evicting the
    least recently used binding when the cache is full. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Pure membership test — does {e not} touch recency. *)

val clear : ('k, 'v) t -> unit

val to_list : ('k, 'v) t -> ('k * 'v) list
(** Bindings from most to least recently used (test observability). *)
