(** Wire protocol of the corpus/evaluation service.

    The serving layer ({!Server}, {!Umrs_client}) speaks a
    length-prefixed binary protocol whose payloads are bit-packed with
    {!Umrs_bitcode.Bitbuf} — the same codec discipline as the corpus
    store, so two processes that encode the same value produce the same
    bytes. This module is the single definition both sides link
    against; neither re-implements any field layout.

    {2 Framing}

    A connection starts with a 10-byte hello in each direction: the
    8-byte magic ["UMRSSRVC"] then the protocol version as a 16-bit
    little-endian integer. After the exchange, each message is a frame:

    {v 4 bytes   payload byte length N (little-endian, >= 0)
       N bytes   payload (a Bitbuf byte image, padding bits zero) v}

    {2 Payloads}

    Integers are written MSB-first within Bitbuf fields ([u8]/[u16]/
    [u32]); 64-bit quantities are two 32-bit halves, high first; floats
    are their IEEE-754 bit image; strings are a [u32] length plus one
    byte per character. A request payload is

    {v req_id:u32  deadline_ms:u32  opcode:u8  body v}

    and a response payload is

    {v req_id:u32  status:u8  body v}

    with status 0 = reply (body is the response), 1 = rejected (body is
    a message string: the request was well-formed but unservable — out
    of range, unknown scheme, no corpus attached), 2 = overloaded (the
    bounded job queue was full; no body), 3 = timed out (the request's
    deadline expired before or during execution; no body). A frame that
    does not decode is a protocol violation: the receiver drops the
    connection rather than guessing. *)

open Umrs_core
open Umrs_graph

(** {1 Addresses} *)

type addr =
  | Unix_sock of string        (** Unix-domain socket path *)
  | Tcp of string * int        (** host, port *)

val pp_addr : Format.formatter -> addr -> unit
val addr_to_string : addr -> string

(** {1 Shard maps}

    A cluster serves one corpus split into contiguous key ranges. The
    shard map is the routing contract every node and client shares: the
    corpus identity (so a client can detect it is talking to the wrong
    corpus entirely) plus, per shard, the global record-rank range
    [\[sh_lo, sh_hi)], the boundary key (the row-major entries of record
    [sh_lo] — shards are ordered by it), and the endpoints that serve
    the range. [sm_version] increments whenever the topology changes;
    servers embed their version in stale-shard rejections so clients
    refresh instead of erroring. *)

type shard = {
  sh_lo : int;                 (** first global rank served, inclusive *)
  sh_hi : int;                 (** one past the last global rank *)
  sh_key : int array;          (** row-major entries of record [sh_lo] *)
  sh_primary : addr;
  sh_replicas : addr list;     (** failover targets, in preference order *)
}

type shard_map = {
  sm_version : int;            (** topology version, monotonically increasing *)
  sm_corpus_version : int;     (** {!Umrs_store.Corpus.header} version field *)
  sm_variant : Umrs_core.Canonical.variant;
  sm_p : int;
  sm_q : int;
  sm_d : int;
  sm_count : int;              (** total records across all shards *)
  sm_checksum : int64;         (** checksum of the unsharded corpus *)
  sm_shards : shard array;     (** ordered by [sh_lo]; contiguous cover *)
}

(** {1 Cluster membership}

    Protocol v5: independently started server processes register into a
    coordinator's versioned shard map over the same wire protocol the
    data plane uses. A node announces itself with [Join] (first with
    [jn_ready = false] to learn its assignment, then [jn_ready = true]
    once its corpus piece matches the coordinator's canonical checksum),
    beats with [Heartbeat], and receives topology work — a range to
    acquire from a donor — piggybacked on the heartbeat reply.
    [Reshard] and [Cluster_status] are operator requests. *)

type member_state =
  | Joining                    (** announced, piece not yet verified *)
  | Ready                      (** serving; eligible for the map *)
  | Dead                       (** missed too many heartbeats *)

type member_info = {
  mi_addr : addr;
  mi_shard : int;              (** assigned shard, [-1] when unassigned *)
  mi_state : member_state;
  mi_in_map : bool;            (** listed in the published map *)
  mi_primary : bool;           (** head of its shard's endpoint group *)
  mi_checksum : int64;         (** piece checksum last reported *)
  mi_beat_age : float;         (** seconds since the last heartbeat *)
}

type node_cmd =
  | Cmd_acquire of { aq_lo : int; aq_hi : int; aq_donor : addr;
                     aq_map : shard_map option }
      (** stream global ranks [\[aq_lo, aq_hi)] from [aq_donor] into a
          local piece, then report [Handoff_done]. [aq_map] is the
          {e prospective} post-flip topology: the node adopts it the
          moment the piece is local — {e before} reporting — so a
          client that reaches it under the flipped map never catches
          it serving the old one. Its version is a floor (the real
          flip may land higher); the node syncs the true map after its
          handoff is accepted. *)

type reshard_op =
  | Split of int               (** cut shard [k] at its midpoint *)
  | Merge of int               (** fold shard [k+1] into shard [k] *)

(** {1 Requests}

    [Ping] and [Stats] are control-plane: the server answers them from
    the connection reader without queueing, so they respond even when
    the worker pool is saturated. Everything else is data-plane and
    subject to backpressure. [Sleep_ms] occupies a worker for the given
    time — the controllable-work primitive load tests are built on.
    The membership requests are control-plane too: a saturated data
    plane must never delay a heartbeat into a false death verdict. *)

type request =
  | Ping of int                (** echo the nonce *)
  | Stats                      (** server counters and queue depth *)
  | Corpus_info                (** header of the served corpus *)
  | Nth of int                 (** {!Umrs_store.Query.nth} *)
  | Mem of Matrix.t            (** {!Umrs_store.Query.mem} *)
  | Rank of Matrix.t           (** {!Umrs_store.Query.rank} *)
  | Range_prefix of int array  (** {!Umrs_store.Query.range_prefix} *)
  | Cgraph_of of int           (** {!Umrs_store.Query.cgraph} *)
  | Evaluate of { scheme : string; graph_name : string; graph : Graph.t }
      (** {!Umrs_routing.Registry.find} + {!Umrs_routing.Scheme.evaluate} *)
  | Sleep_ms of int            (** hold a worker for this many ms *)
  | Get_shard_map              (** the cluster topology this node belongs
                                   to; control-plane, answered inline *)
  | Join of { jn_addr : addr; jn_ready : bool; jn_checksum : int64 }
      (** register [jn_addr]; [jn_checksum] is the local piece checksum
          (0 when no piece is held yet) *)
  | Leave of addr              (** graceful departure *)
  | Heartbeat of { hb_addr : addr; hb_version : int; hb_checksum : int64 }
      (** liveness beat carrying the map version the node has applied *)
  | Reshard of reshard_op      (** operator: start an online reshard *)
  | Handoff_done of { hd_addr : addr; hd_lo : int; hd_hi : int;
                      hd_key : int array; hd_checksum : int64 }
      (** a commanded acquire finished; [hd_key] is the boundary key of
          rank [hd_lo] *)
  | Cluster_status             (** operator: membership table snapshot *)

val opcode : request -> int
val opcode_name : int -> string

type server_stats = {
  st_connections : int;     (** connections accepted since start *)
  st_requests : int;        (** frames decoded (all opcodes) *)
  st_overloaded : int;      (** requests shed by the bounded queue *)
  st_timeouts : int;        (** requests whose deadline expired *)
  st_rejected : int;        (** well-formed but unservable requests *)
  st_cache_hits : int;      (** evaluation LRU hits *)
  st_cache_misses : int;    (** evaluation LRU misses *)
  st_queue_depth : int;     (** jobs waiting right now *)
  st_queue_capacity : int;
  st_workers : int;
  st_draining : bool;       (** shutdown requested, drain in progress *)
  st_live_conns : int;      (** connections open right now *)
  st_cache_evictions : int; (** evaluation LRU capacity evictions *)
  st_loop_wakeups : int;    (** poller wakeups (eventfd/self-pipe);
                                0 on the threads backend *)
  st_queue_hwm : int;       (** deepest the job queue has been *)
}

(** {1 Responses}

    A graph of constraints travels as its (normalized) matrix only:
    {!Umrs_core.Cgraph.of_matrix} is deterministic, so the receiver
    rebuilds an identical structure and the frame stays a few bytes
    instead of carrying an adjacency dump. *)

type response =
  | R_pong of int
  | R_stats of server_stats
  | R_header of Umrs_store.Corpus.header
  | R_matrix of Matrix.t
  | R_found of bool
  | R_rank of int
  | R_range of int * int
  | R_slice of { sl_version : int; sl_lo : int; sl_hi : int }
      (** a shard's answer to [Range_prefix]: its slice of the global
          range, stamped with the map version it was computed under.
          Range scatters have no rank for the server to validate, so
          the version is the only way a client can tell that a reply
          was produced under a different topology than the one it
          scattered with — a slice from the future means the span the
          client chose may no longer cover every matching record. *)
  | R_graph of Cgraph.t
  | R_evaluation of Umrs_routing.Scheme.evaluation
  | R_slept of int
  | R_shard_map of shard_map
  | R_joined of { jr_shard : int; jr_lo : int; jr_hi : int; jr_donor : addr;
                  jr_checksum : int64; jr_version : int;
                  jr_map : shard_map option }
      (** assignment for a [Join]: the shard index and global range the
          node must hold, a donor endpoint that can stream it, the
          canonical checksum the piece must match, the coordinator's
          topology version, and the published map when one exists *)
  | R_heartbeat of { rh_version : int; rh_known : bool;
                     rh_cmd : node_cmd option }
      (** [rh_known = false] tells a node the coordinator no longer
          counts it a member (it was declared dead) — it must re-join *)
  | R_status of { cs_version : int; cs_published : bool;
                  cs_members : member_info list }
  | R_accepted of string       (** generic acknowledgement (leave,
                                   reshard start, handoff) *)

type outcome =
  | Reply of response
  | Rejected of string
  | Overloaded
  | Timed_out

(** {1 Codecs}

    Encoders never fail on values their types admit (dimensions beyond
    16 bits raise [Invalid_argument], matching the corpus store's
    limits). Decoders raise [Invalid_argument] on any byte sequence
    that is not a valid payload; callers treat that as a protocol
    violation, not data. *)

val protocol_version : int

val hello : unit -> Bytes.t
(** The 10-byte hello each side sends on connect. *)

val hello_bytes : int

val check_hello : Bytes.t -> (unit, [ `Bad_magic | `Bad_version of int ]) result

val encode_request : id:int -> deadline_ms:int -> request -> Bytes.t
val decode_request : Bytes.t -> int * int * request
(** [(id, deadline_ms, request)]. *)

val encode_outcome : id:int -> outcome -> Bytes.t
val decode_outcome : Bytes.t -> int * outcome

(** {1 Shard-map codec and routing}

    The routing helpers live here — next to the codec — so the server's
    bounds validation and the cluster client's dispatch share one
    definition of who owns what. All of them assume a map that passed
    {!validate_shard_map}. *)

val shard_map_to_bytes : shard_map -> Bytes.t
val shard_map_of_bytes : Bytes.t -> shard_map
(** Standalone Bitbuf image of a map — the payload the cluster's
    on-disk format and the [R_shard_map] response both embed. The
    decoder raises [Invalid_argument] on malformed bytes. *)

val validate_shard_map : shard_map -> (unit, string) result
(** Structural invariants: at least one shard, ranges contiguous from 0
    to [sm_count] with every shard non-empty, boundary keys strictly
    increasing with arity [p*q]. *)

val corpus_header_of_map : shard_map -> Umrs_store.Corpus.header
(** The identity of the unsharded corpus the map was cut from. *)

val matrix_key : Matrix.t -> int array
(** Row-major entries — the key by which records are ordered. *)

val route_index : shard_map -> int -> int
(** Shard owning global rank [i]; raises [Invalid_argument] when [i] is
    outside [\[0, sm_count)]. *)

val route_key : shard_map -> int array -> int
(** Shard owning the given full key: the largest shard whose boundary
    key is [<=] the key. Keys below every boundary route to shard 0,
    whose membership answer is correctly [false]. *)

val route_matrix : shard_map -> Matrix.t -> int
(** [route_key] on {!matrix_key}. *)

val route_prefix : shard_map -> int array -> int * int
(** Inclusive shard span [(a, b)] that can hold records matching the
    prefix: [b] is the largest shard whose boundary key truncated to
    the prefix length is [<=] the prefix (the anchor), [a] the largest
    whose truncated key is strictly [<]. Always [a <= b]. *)

(** {2 Stale-shard redirects}

    [stale_shard_reject ~version] is the structured [Rejected] a shard
    server sends for a well-formed request outside its key range —
    evidence the client routed with an outdated map. The client parses
    the server's map version back out with [stale_shard_version]
    ([None] for ordinary rejection messages), refreshes, and re-routes
    once. *)

val stale_shard_msg : version:int -> string
val stale_shard_reject : version:int -> outcome
val stale_shard_version : string -> int option

(** {1 Frames} *)

val default_max_frame : int
(** 16 MiB — no legitimate payload comes close; larger length prefixes
    are treated as protocol violations before any allocation. *)

val write_frame : ?flush:bool -> out_channel -> Bytes.t -> unit
(** Length prefix + payload, then flush (default). [~flush:false] lets
    a pipelining sender coalesce a burst of frames into one flush. *)

val read_frame : ?max_bytes:int -> in_channel -> Bytes.t option
(** [None] on EOF at a frame boundary; raises [Invalid_argument] on an
    oversized or negative length prefix, [End_of_file] on a frame cut
    mid-payload. *)

(** {1 Graph identity} *)

val graph_key : Graph.t -> string
(** The graph's full wire encoding as an immutable string — the
    evaluation cache key component identifying the topology (ports
    included). The complete bytes, not a hash: equal keys mean equal
    graphs, so a cache hit can never serve another graph's result. *)

val graph_digest : Graph.t -> int64
(** FNV-1a 64 over {!graph_key} — a compact identifier for logs and
    telemetry. Not collision-resistant; never used for cache lookups. *)
