(** Wire protocol of the corpus/evaluation service.

    The serving layer ({!Server}, {!Umrs_client}) speaks a
    length-prefixed binary protocol whose payloads are bit-packed with
    {!Umrs_bitcode.Bitbuf} — the same codec discipline as the corpus
    store, so two processes that encode the same value produce the same
    bytes. This module is the single definition both sides link
    against; neither re-implements any field layout.

    {2 Framing}

    A connection starts with a 10-byte hello in each direction: the
    8-byte magic ["UMRSSRVC"] then the protocol version as a 16-bit
    little-endian integer. After the exchange, each message is a frame:

    {v 4 bytes   payload byte length N (little-endian, >= 0)
       N bytes   payload (a Bitbuf byte image, padding bits zero) v}

    {2 Payloads}

    Integers are written MSB-first within Bitbuf fields ([u8]/[u16]/
    [u32]); 64-bit quantities are two 32-bit halves, high first; floats
    are their IEEE-754 bit image; strings are a [u32] length plus one
    byte per character. A request payload is

    {v req_id:u32  deadline_ms:u32  opcode:u8  body v}

    and a response payload is

    {v req_id:u32  status:u8  body v}

    with status 0 = reply (body is the response), 1 = rejected (body is
    a message string: the request was well-formed but unservable — out
    of range, unknown scheme, no corpus attached), 2 = overloaded (the
    bounded job queue was full; no body), 3 = timed out (the request's
    deadline expired before or during execution; no body). A frame that
    does not decode is a protocol violation: the receiver drops the
    connection rather than guessing. *)

open Umrs_core
open Umrs_graph

(** {1 Addresses} *)

type addr =
  | Unix_sock of string        (** Unix-domain socket path *)
  | Tcp of string * int        (** host, port *)

val pp_addr : Format.formatter -> addr -> unit
val addr_to_string : addr -> string

(** {1 Requests}

    [Ping] and [Stats] are control-plane: the server answers them from
    the connection reader without queueing, so they respond even when
    the worker pool is saturated. Everything else is data-plane and
    subject to backpressure. [Sleep_ms] occupies a worker for the given
    time — the controllable-work primitive load tests are built on. *)

type request =
  | Ping of int                (** echo the nonce *)
  | Stats                      (** server counters and queue depth *)
  | Corpus_info                (** header of the served corpus *)
  | Nth of int                 (** {!Umrs_store.Query.nth} *)
  | Mem of Matrix.t            (** {!Umrs_store.Query.mem} *)
  | Rank of Matrix.t           (** {!Umrs_store.Query.rank} *)
  | Range_prefix of int array  (** {!Umrs_store.Query.range_prefix} *)
  | Cgraph_of of int           (** {!Umrs_store.Query.cgraph} *)
  | Evaluate of { scheme : string; graph_name : string; graph : Graph.t }
      (** {!Umrs_routing.Registry.find} + {!Umrs_routing.Scheme.evaluate} *)
  | Sleep_ms of int            (** hold a worker for this many ms *)

val opcode : request -> int
val opcode_name : int -> string

type server_stats = {
  st_connections : int;     (** connections accepted since start *)
  st_requests : int;        (** frames decoded (all opcodes) *)
  st_overloaded : int;      (** requests shed by the bounded queue *)
  st_timeouts : int;        (** requests whose deadline expired *)
  st_rejected : int;        (** well-formed but unservable requests *)
  st_cache_hits : int;      (** evaluation LRU hits *)
  st_cache_misses : int;    (** evaluation LRU misses *)
  st_queue_depth : int;     (** jobs waiting right now *)
  st_queue_capacity : int;
  st_workers : int;
  st_draining : bool;       (** shutdown requested, drain in progress *)
  st_live_conns : int;      (** connections open right now *)
  st_cache_evictions : int; (** evaluation LRU capacity evictions *)
  st_loop_wakeups : int;    (** poller wakeups (eventfd/self-pipe);
                                0 on the threads backend *)
  st_queue_hwm : int;       (** deepest the job queue has been *)
}

(** {1 Responses}

    A graph of constraints travels as its (normalized) matrix only:
    {!Umrs_core.Cgraph.of_matrix} is deterministic, so the receiver
    rebuilds an identical structure and the frame stays a few bytes
    instead of carrying an adjacency dump. *)

type response =
  | R_pong of int
  | R_stats of server_stats
  | R_header of Umrs_store.Corpus.header
  | R_matrix of Matrix.t
  | R_found of bool
  | R_rank of int
  | R_range of int * int
  | R_graph of Cgraph.t
  | R_evaluation of Umrs_routing.Scheme.evaluation
  | R_slept of int

type outcome =
  | Reply of response
  | Rejected of string
  | Overloaded
  | Timed_out

(** {1 Codecs}

    Encoders never fail on values their types admit (dimensions beyond
    16 bits raise [Invalid_argument], matching the corpus store's
    limits). Decoders raise [Invalid_argument] on any byte sequence
    that is not a valid payload; callers treat that as a protocol
    violation, not data. *)

val protocol_version : int

val hello : unit -> Bytes.t
(** The 10-byte hello each side sends on connect. *)

val hello_bytes : int

val check_hello : Bytes.t -> (unit, [ `Bad_magic | `Bad_version of int ]) result

val encode_request : id:int -> deadline_ms:int -> request -> Bytes.t
val decode_request : Bytes.t -> int * int * request
(** [(id, deadline_ms, request)]. *)

val encode_outcome : id:int -> outcome -> Bytes.t
val decode_outcome : Bytes.t -> int * outcome

(** {1 Frames} *)

val default_max_frame : int
(** 16 MiB — no legitimate payload comes close; larger length prefixes
    are treated as protocol violations before any allocation. *)

val write_frame : ?flush:bool -> out_channel -> Bytes.t -> unit
(** Length prefix + payload, then flush (default). [~flush:false] lets
    a pipelining sender coalesce a burst of frames into one flush. *)

val read_frame : ?max_bytes:int -> in_channel -> Bytes.t option
(** [None] on EOF at a frame boundary; raises [Invalid_argument] on an
    oversized or negative length prefix, [End_of_file] on a frame cut
    mid-payload. *)

(** {1 Graph identity} *)

val graph_key : Graph.t -> string
(** The graph's full wire encoding as an immutable string — the
    evaluation cache key component identifying the topology (ports
    included). The complete bytes, not a hash: equal keys mean equal
    graphs, so a cache hit can never serve another graph's result. *)

val graph_digest : Graph.t -> int64
(** FNV-1a 64 over {!graph_key} — a compact identifier for logs and
    telemetry. Not collision-resistant; never used for cache lookups. *)
