(** Stretch {e distributions} of a routing function — the evaluation
    axis behind [routing_lab table2] and the TZ bench: the paper's
    worst-case stretch column says nothing about the typical pair, and
    on Internet-like graphs the interesting claim (Krioukov, Fall &
    Yang) is about the p50/mean, not the max.

    Below a node cutoff the distribution is exact over all ordered
    pairs (one shared APSP via {!Umrs_graph.Dist_cache}); above it a
    seeded pair sample is measured with one BFS per sampled source,
    fanned out over {!Umrs_graph.Parallel} domains. Either way the
    result is a deterministic function of the graph and the seed. *)

type summary = {
  ds_pairs : int;    (** ratios measured (all ordered pairs if exact) *)
  ds_exact : bool;
  ds_mean : float;
  ds_p50 : float;
  ds_p95 : float;
  ds_p99 : float;
  ds_max : float;    (** max over measured pairs — a lower bound on the
                         true worst case when sampled *)
}

val default_cutoff : int
(** 1200 — a 1000-node acceptance run stays exact. *)

val default_sample_pairs : int
(** 20000. *)

val of_ratios : exact:bool -> float array -> summary
(** Summarize a per-pair ratio array (quantiles via
    {!Umrs_bench.Quantile}, nearest rank). Raises on empty input. *)

val exact : ?dist:int array array -> Routing_function.t -> summary
(** All ordered pairs, via {!Routing_function.stretch_ratios}. *)

val sampled :
  ?seed:int -> ?pairs:int -> ?domains:int -> Routing_function.t -> summary
(** [pairs] seeded uniform source/destination pairs; distances from one
    BFS per sampled source, parallel over sources. *)

val measure :
  ?cutoff:int -> ?pairs:int -> ?seed:int -> ?domains:int ->
  Routing_function.t -> summary
(** {!exact} when [order <= cutoff] (default {!default_cutoff}), else
    {!sampled}. *)

val pp : Format.formatter -> summary -> unit
