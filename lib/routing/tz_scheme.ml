open Umrs_graph
open Umrs_bitcode

let default_rate n =
  if n < 1 then invalid_arg "Tz_scheme.default_rate";
  1.0 /. sqrt (float_of_int n)

type data = {
  graph : Graph.t;
  landmark : int array;               (* the sampled set A, sorted *)
  landmark_index : int array;         (* vertex -> index in [landmark], -1 *)
  dist_to_a : int array;              (* d(v, A) per vertex *)
  home : int array;                   (* vertex -> index of p(v), nearest
                                         landmark, smallest id on ties *)
  cluster : (int * int) array array;  (* cluster.(x) = sorted (dst, port):
                                         destinations v with
                                         d(x,v) < d(v,A) *)
  trees : Tree_labels.t array;        (* BFS tree per landmark *)
  up : int array array;               (* up.(i).(v) = port toward the
                                         parent in tree i, 0 at the root *)
}

let sample_landmarks ~seed ~rate n =
  let st = Random.State.make [| seed; n; 0x72A9 |] in
  let picked = ref [] in
  for v = n - 1 downto 0 do
    if Random.State.float st 1.0 < rate then picked := v :: !picked
  done;
  (* An empty sample leaves nothing to route through; fall back to a
     single deterministic landmark so the scheme is total. *)
  let picked = if !picked = [] then [ 0 ] else !picked in
  Array.of_list picked

let prepare ?(seed = 0x72) ?rate g =
  let n = Graph.order g in
  if n < 1 || not (Graph.is_connected g) then
    invalid_arg "Tz_scheme: need a non-empty connected graph";
  let rate =
    match rate with
    | Some r ->
      if r <= 0.0 || r > 1.0 then invalid_arg "Tz_scheme: rate in (0,1]";
      r
    | None -> default_rate n
  in
  let landmark = sample_landmarks ~seed ~rate n in
  let l = Array.length landmark in
  let landmark_index = Array.make n (-1) in
  Array.iteri (fun i v -> landmark_index.(v) <- i) landmark;
  let ldist = Array.map (fun v -> Bfs.distances g v) landmark in
  let dist_to_a =
    Array.init n (fun v ->
        Array.fold_left (fun acc d -> min acc d.(v)) max_int ldist)
  in
  let home =
    Array.init n (fun v ->
        let best = ref 0 in
        for i = 1 to l - 1 do
          if ldist.(i).(v) < ldist.(!best).(v) then best := i
        done;
        !best)
  in
  (* Cluster tables: x stores a shortest-path port for every destination
     v with d(x,v) < d(v,A) — i.e. x ∈ C(v) in Thorup–Zwick notation,
     equivalently v's bunch condition seen from x. Computed by one BFS
     out of each destination v bounded by its landmark radius. *)
  let cluster_lists = Array.make n [] in
  for v = 0 to n - 1 do
    let radius = dist_to_a.(v) in
    if radius > 0 then begin
      let dist = Array.make n (-1) in
      let queue = Queue.create () in
      dist.(v) <- 0;
      Queue.add v queue;
      while not (Queue.is_empty queue) do
        let x = Queue.pop queue in
        if dist.(x) < radius - 1 then
          Array.iter
            (fun y ->
              if dist.(y) = -1 then begin
                dist.(y) <- dist.(x) + 1;
                Queue.add y queue
              end)
            (Graph.neighbors g x)
      done;
      for x = 0 to n - 1 do
        if x <> v && dist.(x) >= 0 then begin
          let deg = Graph.degree g x in
          let rec find k =
            if k > deg then assert false
            else begin
              let y = Graph.neighbor g x ~port:k in
              if dist.(y) = dist.(x) - 1 then k else find (k + 1)
            end
          in
          cluster_lists.(x) <- (v, find 1) :: cluster_lists.(x)
        end
      done
    end
  done;
  let cluster =
    Array.map
      (fun entries ->
        let a = Array.of_list entries in
        Array.sort compare a;
        a)
      cluster_lists
  in
  let trees = Array.map (Tree_labels.of_bfs g) landmark in
  let up = Array.map (Tree_labels.parent_ports g) trees in
  { graph = g; landmark; landmark_index; dist_to_a; home; cluster; trees; up }

let landmarks d = Array.copy d.landmark
let home d v = d.home.(v)
let dist_to_landmarks d v = d.dist_to_a.(v)

let cluster_members d x = Array.map fst d.cluster.(x)

let bunch d v =
  (* B(v) = { w : d(v,w) < d(v,A) } — exactly the set of vertices whose
     cluster table stores v, by the TZ symmetry w ∈ B(v) ⇔ v ∈ C(w).
     Recomputed from first principles (a bounded BFS out of v) so tests
     can check that symmetry against the stored tables. *)
  let g = d.graph in
  let n = Graph.order g in
  let radius = d.dist_to_a.(v) in
  let acc = ref [] in
  if radius > 0 then begin
    let dist = Array.make n (-1) in
    let queue = Queue.create () in
    dist.(v) <- 0;
    Queue.add v queue;
    while not (Queue.is_empty queue) do
      let x = Queue.pop queue in
      if dist.(x) < radius - 1 then
        Array.iter
          (fun y ->
            if dist.(y) = -1 then begin
              dist.(y) <- dist.(x) + 1;
              Queue.add y queue
            end)
          (Graph.neighbors g x)
    done;
    for w = n - 1 downto 0 do
      if w <> v && dist.(w) >= 0 then acc := w :: !acc
    done
  end;
  Array.of_list !acc

let cluster_lookup d x dst =
  let a = d.cluster.(x) in
  let rec bin lo hi =
    if lo > hi then None
    else begin
      let mid = (lo + hi) / 2 in
      let w, p = a.(mid) in
      if w = dst then Some p else if w < dst then bin (mid + 1) hi else bin lo (mid - 1)
    end
  in
  bin 0 (Array.length a - 1)

let routing_function d =
  let g = d.graph in
  let init _u v =
    let li = d.home.(v) in
    Routing_function.Packed [| v; li; d.trees.(li).Tree_labels.dfs_number.(v) |]
  in
  let port x h =
    match h with
    | Routing_function.Dest _ -> invalid_arg "tz: unexpected header"
    | Routing_function.Packed [| v; li; dfs |] ->
      if x = v then None
      else begin
        (* Tie-broken TZ decision: a cluster hit routes on a shortest
           path (and keeps hitting, since d(x,v) only decreases);
           otherwise walk v's home tree — down if v is below x, else up
           toward the landmark p(v). *)
        match cluster_lookup d x v with
        | Some p -> Some p
        | None ->
          (match Tree_labels.child_port d.trees.(li) x ~dfs with
          | Some p -> Some p
          | None -> Some d.up.(li).(x))
      end
    | Routing_function.Packed _ -> invalid_arg "tz: malformed header"
  in
  { Routing_function.graph = g; init; port; next_header = (fun _ h -> h) }

let encode_vertex d v =
  let g = d.graph in
  let n = Graph.order g in
  let l = Array.length d.landmark in
  let deg = Graph.degree g v in
  let pwidth = Codes.ceil_log2 (max 2 deg) in
  let vwidth = Codes.ceil_log2 (max 2 n) in
  let buf = Bitbuf.create () in
  Codes.write_delta buf n;
  Codes.write_fixed buf v ~width:vwidth;
  Codes.write_gamma buf (l + 1);
  (* port toward the parent in each landmark tree (0 at the root) *)
  for i = 0 to l - 1 do
    Codes.write_fixed buf d.up.(i).(v) ~width:(pwidth + 1)
  done;
  (* cluster table *)
  Codes.write_gamma buf (Array.length d.cluster.(v) + 1);
  Array.iter
    (fun (w, p) ->
      Codes.write_fixed buf w ~width:vwidth;
      Codes.write_fixed buf (p - 1) ~width:pwidth)
    d.cluster.(v);
  (* child intervals in each landmark tree *)
  Array.iter
    (fun tree ->
      let row = tree.Tree_labels.children.(v) in
      Codes.write_gamma buf (Array.length row + 1);
      Array.iter
        (fun (p, lo, hi) ->
          Codes.write_fixed buf (p - 1) ~width:pwidth;
          Codes.write_fixed buf lo ~width:vwidth;
          Codes.write_fixed buf hi ~width:vwidth)
        row)
    d.trees;
  buf

type decoded = {
  dec_order : int;
  dec_self : Graph.vertex;
  dec_up_ports : int array;
  dec_cluster : (Graph.vertex * Graph.port) array;
  dec_children : (Graph.port * int * int) array array;
}

let decode_vertex buf ~degree =
  let r = Bitbuf.reader buf in
  let n = Codes.read_delta r in
  let vwidth = Codes.ceil_log2 (max 2 n) in
  let pwidth = Codes.ceil_log2 (max 2 degree) in
  let self = Codes.read_fixed r ~width:vwidth in
  let l = Codes.read_gamma r - 1 in
  let up_ports = Array.init l (fun _ -> Codes.read_fixed r ~width:(pwidth + 1)) in
  let csize = Codes.read_gamma r - 1 in
  let cluster =
    Array.init csize (fun _ ->
        let w = Codes.read_fixed r ~width:vwidth in
        let p = 1 + Codes.read_fixed r ~width:pwidth in
        (w, p))
  in
  let children =
    Array.init l (fun _ ->
        let k = Codes.read_gamma r - 1 in
        Array.init k (fun _ ->
            let p = 1 + Codes.read_fixed r ~width:pwidth in
            let lo = Codes.read_fixed r ~width:vwidth in
            let hi = Codes.read_fixed r ~width:vwidth in
            (p, lo, hi)))
  in
  {
    dec_order = n;
    dec_self = self;
    dec_up_ports = up_ports;
    dec_cluster = cluster;
    dec_children = children;
  }

let build ?seed ?rate g =
  let d = prepare ?seed ?rate g in
  {
    Scheme.rf = routing_function d;
    local_encoding = encode_vertex d;
    description =
      Printf.sprintf "Thorup-Zwick stretch-3, %d sampled landmarks"
        (Array.length d.landmark);
  }

let scheme =
  {
    Scheme.name = "tz-3";
    stretch_bound = Some 3.0;
    build = (fun g -> build g);
  }

let cluster_sizes ?seed ?rate g =
  let d = prepare ?seed ?rate g in
  Array.map Array.length d.cluster
