(** Synchronous store-and-forward network simulator.

    Executes a routing function as an actual packet-switched network:
    one packet may cross each arc per round; contending packets queue
    FIFO (ties broken by packet id). This turns the paper's static
    model into the point-to-point communication network it describes,
    and measures congestion effects that path lengths alone miss. *)

open Umrs_graph

type packet_result = {
  src : Graph.vertex;
  dst : Graph.vertex;
  hops : int;             (** edges traversed *)
  delivered_at : int;     (** round of arrival (>= hops under contention) *)
}

type stats = {
  packets : int;
  delivered : int;
  rounds : int;             (** rounds until the last delivery *)
  total_hops : int;
  max_queue : int;          (** largest arc queue observed *)
  max_arc_load : int;       (** total traversals of the busiest arc *)
  results : packet_result array;
}

val run :
  ?round_limit:int ->
  Routing_function.t ->
  pairs:(Graph.vertex * Graph.vertex) list ->
  stats
(** Injects one packet per pair at round 0 and runs to completion or
    [round_limit] (default [16 * order + 16 * #pairs]). Raises
    [Invalid_argument] on a [src = dst] pair. *)

val all_pairs : ?round_limit:int -> Routing_function.t -> stats
(** Total-exchange workload: every ordered pair. *)

val random_pairs :
  ?round_limit:int -> Random.State.t -> Routing_function.t -> count:int -> stats
(** [count] uniform random (src <> dst) pairs. *)

val permutation_traffic :
  ?round_limit:int -> Random.State.t -> Routing_function.t -> stats
(** The classical parallel-computing workload: every vertex sends one
    packet, destinations form a uniform random derangement-ish
    permutation (fixed points are skipped). *)

(** {1 Failure injection} *)

val run_flaky :
  ?round_limit:int ->
  Random.State.t ->
  loss:float ->
  Routing_function.t ->
  pairs:(Graph.vertex * Graph.vertex) list ->
  stats
(** Transient link faults: each arc crossing independently fails with
    probability [loss] (the packet retries next round). Measures the
    delay inflation of an unreliable network; with [loss < 1] every
    packet is eventually delivered (within the round limit). The
    boundaries behave as the probabilities say: [loss = 0.0] reproduces
    {!run} exactly (same seed irrelevant — no draw changes a crossing),
    and [loss = 1.0] delivers nothing, spinning until [round_limit]
    (mandatory there unless [pairs] has only same-vertex traffic).
    Raises [Invalid_argument] outside [0 <= loss <= 1]. *)

val run_with_dead_links :
  ?round_limit:int ->
  dead:(Graph.vertex * Graph.vertex) list ->
  Routing_function.t ->
  pairs:(Graph.vertex * Graph.vertex) list ->
  stats
(** Permanent link failures, invisible to the (static) routing
    function: a packet forwarded onto a dead edge is dropped and stays
    undelivered ([delivered_at = -1]). Quantifies how brittle a routing
    function is to topology drift. *)

val run_hot_potato :
  ?round_limit:int ->
  Random.State.t ->
  Routing_function.t ->
  pairs:(Graph.vertex * Graph.vertex) list ->
  stats
(** Deflection ("hot potato") switching: per round each arc still
    carries at most one packet, but a packet that loses arbitration is
    {e deflected} onto a uniformly random free out-arc of its current
    vertex instead of queueing (it waits only when every out-arc is
    taken). The routing function re-evaluates at the new position, so
    destination-addressed schemes recover. Hops inflate instead of
    queues; livelock is possible and shows up as undelivered packets at
    the round limit — both phenomena this mode exists to measure. *)

val mean_delay : stats -> float
(** Average delivery round over delivered packets. *)

val delays : stats -> float array
(** Delivery rounds of the delivered packets (empty if none). *)

val delay_summary : stats -> string
(** {!Umrs_graph.Stats.summary} of the delivery rounds, or
    ["(no deliveries)"]. *)

val pp_stats : Format.formatter -> stats -> unit
