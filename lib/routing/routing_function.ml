open Umrs_graph

type header = Dest of Graph.vertex | Packed of int array

let pp_header fmt = function
  | Dest v -> Format.fprintf fmt "dest(%d)" v
  | Packed a ->
    Format.fprintf fmt "packed(%a)"
      (Format.pp_print_array
         ~pp_sep:(fun f () -> Format.pp_print_char f ',')
         Format.pp_print_int)
      a

type t = {
  graph : Graph.t;
  init : Graph.vertex -> Graph.vertex -> header;
  port : Graph.vertex -> header -> Graph.port option;
  next_header : Graph.vertex -> header -> header;
}

let of_next_hop graph f =
  {
    graph;
    init = (fun _ v -> Dest v);
    port =
      (fun u h ->
        match h with
        | Dest v -> if u = v then None else Some (f u v)
        | Packed _ -> invalid_arg "of_next_hop: unexpected header");
    next_header = (fun _ h -> h);
  }

type trace = { path : Graph.vertex list; headers : header list; hops : int }

exception Routing_loop of Graph.vertex * Graph.vertex

let route ?max_hops rf src dst =
  if src = dst then invalid_arg "Routing_function.route: src = dst";
  let budget =
    match max_hops with
    | Some b -> b
    | None -> (4 * Graph.order rf.graph) + 16
  in
  let rec go cur h hops rpath rheaders =
    match rf.port cur h with
    | None ->
      if cur <> dst then
        invalid_arg
          (Printf.sprintf
             "Routing_function.route: delivered at %d instead of %d" cur dst);
      { path = List.rev rpath; headers = List.rev rheaders; hops }
    | Some k ->
      if hops >= budget then raise (Routing_loop (src, dst));
      let next = Graph.neighbor rf.graph cur ~port:k in
      let h' = rf.next_header cur h in
      go next h' (hops + 1) (next :: rpath) (h' :: rheaders)
  in
  let h0 = rf.init src dst in
  go src h0 0 [ src ] [ h0 ]

let route_length ?max_hops rf src dst = (route ?max_hops rf src dst).hops

let delivers_all rf =
  let n = Graph.order rf.graph in
  try
    for u = 0 to n - 1 do
      for v = 0 to n - 1 do
        if u <> v then ignore (route rf u v)
      done
    done;
    true
  with Routing_loop _ | Invalid_argument _ -> false

type stretch_report = {
  max_ratio : float;
  worst_pair : Graph.vertex * Graph.vertex;
  worst_route : int;
  worst_dist : int;
  mean_ratio : float;
  p50_ratio : float;
  p95_ratio : float;
}

let with_dist ?dist rf f =
  let d =
    match dist with Some d -> d | None -> Dist_cache.distances rf.graph
  in
  f d

let stretch ?dist rf =
  with_dist ?dist rf (fun d ->
      let n = Graph.order rf.graph in
      if n < 2 then
        {
          max_ratio = 1.0;
          worst_pair = (0, 0);
          worst_route = 0;
          worst_dist = 0;
          mean_ratio = 1.0;
          p50_ratio = 1.0;
          p95_ratio = 1.0;
        }
      else begin
        let worst = ref (0, 0) and wr = ref 0 and wd = ref 1 in
        let sum = ref 0.0 and count = ref 0 in
        let ratios = Array.make (n * (n - 1)) 1.0 in
        for u = 0 to n - 1 do
          for v = 0 to n - 1 do
            if u <> v then begin
              let dr = route_length rf u v in
              let dg = d.(u).(v) in
              if dg = Bfs.infinity then
                invalid_arg "stretch: disconnected graph";
              (* compare dr/dg > wr/wd without floats *)
              if dr * !wd > !wr * dg then begin
                worst := (u, v);
                wr := dr;
                wd := dg
              end;
              ratios.(!count) <- float_of_int dr /. float_of_int dg;
              sum := !sum +. ratios.(!count);
              incr count
            end
          done
        done;
        let q = Umrs_bench.Quantile.of_array ratios in
        {
          max_ratio = float_of_int !wr /. float_of_int !wd;
          worst_pair = !worst;
          worst_route = !wr;
          worst_dist = !wd;
          mean_ratio = !sum /. float_of_int !count;
          p50_ratio = Umrs_bench.Quantile.p50 q;
          p95_ratio = Umrs_bench.Quantile.p95 q;
        }
      end)

let sampled_stretch st rf ~pairs =
  let n = Graph.order rf.graph in
  if n < 2 then 1.0
  else begin
    let worst = ref 1.0 in
    for _ = 1 to pairs do
      let u = Random.State.int st n in
      let rec draw () =
        let v = Random.State.int st n in
        if v = u then draw () else v
      in
      let v = draw () in
      let d = (Bfs.distances rf.graph u).(v) in
      if d <> Bfs.infinity && d > 0 then begin
        let dr = route_length rf u v in
        let r = float_of_int dr /. float_of_int d in
        if r > !worst then worst := r
      end
    done;
    !worst
  end

let stretch_ratios ?dist rf =
  with_dist ?dist rf (fun d ->
      let n = Graph.order rf.graph in
      let acc = ref [] in
      for u = n - 1 downto 0 do
        for v = n - 1 downto 0 do
          if u <> v then begin
            let dr = route_length rf u v in
            acc := (float_of_int dr /. float_of_int d.(u).(v)) :: !acc
          end
        done
      done;
      Array.of_list !acc)

let header_bits ~order h =
  let width_of x = max 1 (Umrs_bitcode.Codes.bits_needed (max 1 x)) in
  match h with
  | Dest _ -> max 1 (Umrs_bitcode.Codes.ceil_log2 (max 2 order))
  | Packed a -> Array.fold_left (fun acc x -> acc + width_of x) 0 a

let max_header_bits rf =
  let n = Graph.order rf.graph in
  let worst = ref 0 in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v then
        List.iter
          (fun h -> worst := max !worst (header_bits ~order:n h))
          (route rf u v).headers
    done
  done;
  !worst

let stretch_at_most ?dist rf ~num ~den =
  with_dist ?dist rf (fun d ->
      let n = Graph.order rf.graph in
      try
        for u = 0 to n - 1 do
          for v = 0 to n - 1 do
            if u <> v then begin
              let dr = route_length rf u v in
              if den * dr > num * d.(u).(v) then raise Exit
            end
          done
        done;
        true
      with Exit | Routing_loop _ -> false)
