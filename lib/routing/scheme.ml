open Umrs_graph

type built = {
  rf : Routing_function.t;
  local_encoding : Graph.vertex -> Umrs_bitcode.Bitbuf.t;
  description : string;
}

type t = {
  name : string;
  stretch_bound : float option;
  build : Graph.t -> built;
}

let mem_at b v = Umrs_bitcode.Bitbuf.length (b.local_encoding v)

let mem_profile b =
  Array.init (Graph.order b.rf.Routing_function.graph) (mem_at b)

let mem_local b = Array.fold_left max 0 (mem_profile b)
let mem_global b = Array.fold_left ( + ) 0 (mem_profile b)

type evaluation = {
  scheme_name : string;
  graph_name : string;
  order : int;
  edges : int;
  mem_local_bits : int;
  mem_global_bits : int;
  stretch : Routing_function.stretch_report;
}

let evaluate ?dist scheme ~graph_name g =
  (* All schemes evaluated on the same graph share one APSP matrix. *)
  let dist =
    match dist with Some d -> d | None -> Dist_cache.distances g
  in
  let b = scheme.build g in
  let e =
    {
      scheme_name = scheme.name;
      graph_name;
      order = Graph.order g;
      edges = Graph.size g;
      mem_local_bits = mem_local b;
      mem_global_bits = mem_global b;
      stretch = Routing_function.stretch ~dist b.rf;
    }
  in
  if Telemetry.enabled () then
    Telemetry.emit "scheme.evaluate"
      [ ("scheme", Telemetry.Str e.scheme_name);
        ("graph", Telemetry.Str e.graph_name);
        ("order", Telemetry.Int e.order);
        ("edges", Telemetry.Int e.edges);
        ("mem_local_bits", Telemetry.Int e.mem_local_bits);
        ("mem_global_bits", Telemetry.Int e.mem_global_bits);
        ("stretch_max", Telemetry.Float e.stretch.Routing_function.max_ratio);
        ("stretch_mean", Telemetry.Float e.stretch.Routing_function.mean_ratio);
        ("stretch_p50", Telemetry.Float e.stretch.Routing_function.p50_ratio);
        ("stretch_p95", Telemetry.Float e.stretch.Routing_function.p95_ratio)
      ];
  e

let pp_evaluation fmt e =
  Format.fprintf fmt
    "%-18s %-18s n=%-5d m=%-6d local=%-8d global=%-10d stretch=%.3f (mean \
     %.3f p50 %.3f p95 %.3f)"
    e.scheme_name e.graph_name e.order e.edges e.mem_local_bits
    e.mem_global_bits e.stretch.Routing_function.max_ratio
    e.stretch.Routing_function.mean_ratio
    e.stretch.Routing_function.p50_ratio
    e.stretch.Routing_function.p95_ratio
