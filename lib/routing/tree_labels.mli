(** DFS-interval labellings of BFS trees — the shared machinery behind
    every landmark-style scheme (Cowen landmark routing, Thorup–Zwick):
    route down a shortest-path tree by matching the destination's DFS
    number against per-child subtree intervals, or up toward the root
    through the parent port. *)

open Umrs_graph

type t = {
  parent : int array;  (** [-1] at the root *)
  dfs_number : int array;
  children : (int * int * int) array array;
      (** [children.(x)] lists [(port at x, dfs lo, dfs hi)] per child,
          ordered by port. A vertex [v] lies in the subtree of the child
          iff [lo <= dfs_number.(v) <= hi]. *)
}

val of_bfs : Graph.t -> Graph.vertex -> t
(** BFS tree rooted at the vertex (smallest-port-first parents), DFS
    numbered with children visited in port order — deterministic for a
    given graph. *)

val parent_ports : Graph.t -> t -> int array
(** Port from each vertex toward its tree parent; [0] at the root. *)

val child_port : t -> Graph.vertex -> dfs:int -> Graph.port option
(** The port of the child of [x] whose subtree interval contains [dfs],
    if any — the descent step of interval tree routing. *)
