(** Central registry of the suite's universal routing schemes.

    One place to enumerate every scheme that accepts an arbitrary
    connected graph — the comparison set behind Table 1's measured
    columns, the CLI's [--scheme] argument, and downstream users'
    sweeps. Specialized (partial) schemes like e-cube live in
    {!Specialized} and are not listed here. *)

val universal : unit -> Scheme.t list
(** All universal schemes, deterministic order: tables, tables-rle,
    interval (DFS and identity), landmark-3, tz-3, spanner-3, spanner-5,
    hierarchical, tree-cover. *)

val find : string -> Scheme.t option
(** Look a scheme up by its [Scheme.name]. *)

val names : unit -> string list

val compare_on :
  ?dist:int array array ->
  graph_name:string ->
  Umrs_graph.Graph.t ->
  Scheme.t list ->
  Scheme.evaluation list
(** Evaluate several schemes on one graph (sharing the distance
    matrix). *)

val csv_header : string
(** Column names matching {!to_csv_row}. *)

val to_csv_row : Scheme.evaluation -> string
(** One comma-separated line per evaluation (no quoting needed: fields
    are identifiers and numbers). *)

val to_csv : Scheme.evaluation list -> string
(** Header plus one row per evaluation. *)
