open Umrs_graph
module Q = Umrs_bench.Quantile

type summary = {
  ds_pairs : int;
  ds_exact : bool;
  ds_mean : float;
  ds_p50 : float;
  ds_p95 : float;
  ds_p99 : float;
  ds_max : float;
}

let default_cutoff = 1200
let default_sample_pairs = 20_000

let of_ratios ~exact ratios =
  if Array.length ratios = 0 then invalid_arg "Stretch_dist.of_ratios: empty";
  let q = Q.of_array ratios in
  {
    ds_pairs = Array.length ratios;
    ds_exact = exact;
    ds_mean = Q.mean q;
    ds_p50 = Q.p50 q;
    ds_p95 = Q.p95 q;
    ds_p99 = Q.p99 q;
    ds_max = Q.max q;
  }

let exact ?dist rf =
  of_ratios ~exact:true (Routing_function.stretch_ratios ?dist rf)

let sampled ?(seed = 0xD157) ?(pairs = default_sample_pairs) ?domains rf =
  let g = rf.Routing_function.graph in
  let n = Graph.order g in
  if n < 2 then invalid_arg "Stretch_dist.sampled: need n >= 2";
  let pairs = max 1 pairs in
  (* Draw the pair sample up front (seeded, sequential), group the
     destinations by source, then fan the per-source BFS + routes out
     over domains. The result is a deterministic function of the seed
     regardless of the domain count. *)
  let st = Random.State.make [| seed; n; pairs; 0xD157 |] in
  let by_src = Array.make n [] in
  for _ = 1 to pairs do
    let u = Random.State.int st n in
    let rec draw () =
      let v = Random.State.int st n in
      if v = u then draw () else v
    in
    by_src.(u) <- draw () :: by_src.(u)
  done;
  let sources =
    Array.of_list
      (List.filter (fun u -> by_src.(u) <> []) (List.init n Fun.id))
  in
  let per_source =
    Parallel.map_range ?domains (Array.length sources) (fun i ->
        let u = sources.(i) in
        let d = Bfs.distances g u in
        List.rev_map
          (fun v ->
            let dr = Routing_function.route_length rf u v in
            float_of_int dr /. float_of_int d.(v))
          by_src.(u))
  in
  let ratios = Array.make pairs 1.0 in
  let k = ref 0 in
  Array.iter
    (List.iter (fun r ->
         ratios.(!k) <- r;
         incr k))
    per_source;
  assert (!k = pairs);
  of_ratios ~exact:false ratios

let measure ?(cutoff = default_cutoff) ?pairs ?seed ?domains rf =
  let n = Graph.order rf.Routing_function.graph in
  if n <= cutoff then exact rf else sampled ?seed ?pairs ?domains rf

let pp fmt s =
  Format.fprintf fmt
    "%s over %d pairs: mean=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f"
    (if s.ds_exact then "exact" else "sampled")
    s.ds_pairs s.ds_mean s.ds_p50 s.ds_p95 s.ds_p99 s.ds_max
