(** The routing-function model of Peleg & Upfal as used by Fraigniaud &
    Gavoille: a triple [R = (I, H, P)] of initialization, header, and
    port functions.

    For two distinct nodes [u], [v], [R] produces a path
    [u = u_0, u_1, ..., u_k = v] and headers [h_0, ..., h_k] with
    [h_0 = I u v], [P u_k h_k = None] (delivered), and for all
    [0 <= i < k], [H u_i h_i = h_{i+1}] and the arc leaving [u_i] on
    port [P u_i h_i] goes to [u_{i+1}].

    Headers are arbitrary values (the paper allows unbounded headers);
    we keep them abstract per routing function via a universal [header]
    type. *)

open Umrs_graph

type header =
  | Dest of Graph.vertex  (** plain destination-address header *)
  | Packed of int array   (** scheme-specific fields *)

val pp_header : Format.formatter -> header -> unit

type t = {
  graph : Graph.t;
  init : Graph.vertex -> Graph.vertex -> header;
      (** [init u v] is the header attached at source [u] for
          destination [v] ([u <> v]). *)
  port : Graph.vertex -> header -> Graph.port option;
      (** [port u h]: [None] means the message is delivered at [u];
          [Some k] forwards on local port [k]. *)
  next_header : Graph.vertex -> header -> header;
      (** [next_header u h] is the header accompanying the message on
          the next arc (the paper's [H]). *)
}

val of_next_hop : Graph.t -> (Graph.vertex -> Graph.vertex -> Graph.port) -> t
(** [of_next_hop g f] wraps a next-port table [f cur dst] into the
    [(I,H,P)] model with destination-address headers. *)

(** {1 Executing a routing function} *)

type trace = {
  path : Graph.vertex list;   (** [u_0; ...; u_k] *)
  headers : header list;      (** [h_0; ...; h_k] *)
  hops : int;                 (** [k] *)
}

exception Routing_loop of Graph.vertex * Graph.vertex
(** Raised by [route] when the hop budget is exhausted. *)

val route : ?max_hops:int -> t -> Graph.vertex -> Graph.vertex -> trace
(** Runs the function from source to destination. Default hop budget is
    [4 * order + 16]. Raises [Routing_loop] on budget exhaustion and
    [Invalid_argument] if the function delivers at a wrong vertex. *)

val route_length : ?max_hops:int -> t -> Graph.vertex -> Graph.vertex -> int
(** Hop count of [route]. *)

val delivers_all : t -> bool
(** All ordered pairs are delivered without looping. *)

(** {1 Stretch} *)

type stretch_report = {
  max_ratio : float;
  worst_pair : Graph.vertex * Graph.vertex;
  worst_route : int;      (** [dR] on the worst pair *)
  worst_dist : int;       (** [dG] on the worst pair *)
  mean_ratio : float;     (** average over ordered pairs *)
  p50_ratio : float;      (** median per-pair ratio (nearest rank) *)
  p95_ratio : float;      (** 95th-percentile per-pair ratio *)
}

val stretch : ?dist:int array array -> t -> stretch_report
(** Exhaustive stretch over all ordered pairs of distinct vertices. A
    precomputed distance matrix may be supplied. Raises if some pair is
    not delivered. *)

val sampled_stretch :
  Random.State.t -> t -> pairs:int -> float
(** Maximum ratio over [pairs] uniform random source/destination pairs —
    a lower bound on the true worst-case stretch, usable at orders where
    the exhaustive [O(n^2)] scan is too slow. Distances are computed per
    sampled source only. *)

val stretch_ratios : ?dist:int array array -> t -> float array
(** The per-pair ratio [dR/dG] for every ordered pair of distinct
    vertices (row-major) — feed to {!Umrs_graph.Stats} for
    distributional views of a scheme's stretch. *)

val stretch_at_most : ?dist:int array array -> t -> num:int -> den:int -> bool
(** [stretch_at_most rf ~num ~den]: every routing path satisfies
    [den * dR <= num * dG] — exact rational comparison, no floats. *)

(** {1 Header accounting}

    The paper's [MEM] deliberately excludes header size ("we allow
    headers to be of unbounded size"); these helpers measure what that
    exclusion hides. *)

val header_bits : order:int -> header -> int
(** Bits of a straightforward header encoding: [Dest v] costs
    [ceil(log2 order)]; [Packed a] costs the sum of the fields' widths
    (each at least 1 bit). *)

val max_header_bits : t -> int
(** Maximum header size over all ordered pairs and all hops of their
    routes (exhaustive). *)
