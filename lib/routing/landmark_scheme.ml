open Umrs_graph
open Umrs_bitcode

let default_landmark_count n =
  if n < 1 then invalid_arg "Landmark_scheme.default_landmark_count";
  let f = float_of_int n in
  let l = int_of_float (Float.ceil (sqrt (f *. (1.0 +. (Float.log f /. Float.log 2.0))))) in
  max 1 (min n l)

type data = {
  graph : Graph.t;
  landmark : int array;              (* the landmark set, sorted *)
  landmark_index : int array;        (* vertex -> index in [landmark], -1 *)
  home : int array;                  (* vertex -> index of nearest landmark *)
  to_landmark : int array array;     (* to_landmark.(v).(i) = port toward landmark i *)
  cluster : (int * int) array array; (* cluster.(v) = sorted (dst, port) *)
  trees : Tree_labels.t array;       (* one per landmark *)
}

type strategy = Random_landmarks | High_degree | K_center

let pick_landmarks ~strategy ~seed g l =
  let n = Graph.order g in
  match strategy with
  | Random_landmarks ->
    let st = Random.State.make [| seed; n; l |] in
    Array.sub (Perm.random st n) 0 l
  | High_degree ->
    let vs = Array.init n (fun v -> v) in
    Array.sort
      (fun a b ->
        match compare (Graph.degree g b) (Graph.degree g a) with
        | 0 -> compare a b
        | c -> c)
      vs;
    Array.sub vs 0 l
  | K_center ->
    (* greedy farthest-point: start from vertex 0, repeatedly add the
       vertex furthest from the current set *)
    let chosen = ref [ 0 ] in
    let dist_to_set = Bfs.distances g 0 in
    let dist_to_set = Array.copy dist_to_set in
    for _ = 2 to l do
      let far = ref 0 in
      for v = 1 to n - 1 do
        if dist_to_set.(v) > dist_to_set.(!far) then far := v
      done;
      chosen := !far :: !chosen;
      let d = Bfs.distances g !far in
      for v = 0 to n - 1 do
        if d.(v) < dist_to_set.(v) then dist_to_set.(v) <- d.(v)
      done
    done;
    Array.of_list !chosen

let prepare ?(seed = 0xC0C0A) ?landmarks ?(strategy = Random_landmarks) g =
  let n = Graph.order g in
  if n < 1 || not (Graph.is_connected g) then
    invalid_arg "Landmark_scheme: need a non-empty connected graph";
  let l = match landmarks with Some l -> max 1 (min n l) | None -> default_landmark_count n in
  let chosen = pick_landmarks ~strategy ~seed g l in
  Array.sort compare chosen;
  let landmark_index = Array.make n (-1) in
  Array.iteri (fun i v -> landmark_index.(v) <- i) chosen;
  (* distances from every landmark *)
  let ldist = Array.map (fun v -> Bfs.distances g v) chosen in
  let dist_to_l v =
    Array.fold_left (fun acc d -> min acc d.(v)) max_int ldist
  in
  let home =
    Array.init n (fun v ->
        let best = ref 0 in
        for i = 1 to l - 1 do
          if ldist.(i).(v) < ldist.(!best).(v) then best := i
        done;
        !best)
  in
  (* port toward each landmark: neighbour one closer, smallest port *)
  let to_landmark =
    Array.init n (fun v ->
        Array.init l (fun i ->
            if chosen.(i) = v then 0
            else begin
              let deg = Graph.degree g v in
              let rec find k =
                if k > deg then assert false
                else if ldist.(i).(Graph.neighbor g v ~port:k) = ldist.(i).(v) - 1
                then k
                else find (k + 1)
              in
              find 1
            end))
  in
  (* cluster entries: w in cluster(u) iff 0 < d(u,w) < d(w, L);
     computed from BFS out of each w limited by its landmark radius *)
  let cluster_lists = Array.make n [] in
  for w = 0 to n - 1 do
    let radius = dist_to_l w in
    if radius > 0 then begin
      (* all u with d(u,w) < radius; BFS from w bounded by radius-1 *)
      let dist = Array.make n (-1) in
      let queue = Queue.create () in
      dist.(w) <- 0;
      Queue.add w queue;
      while not (Queue.is_empty queue) do
        let x = Queue.pop queue in
        if dist.(x) < radius - 1 then
          Array.iter
            (fun y ->
              if dist.(y) = -1 then begin
                dist.(y) <- dist.(x) + 1;
                Queue.add y queue
              end)
            (Graph.neighbors g x)
      done;
      (* next hop from u toward w: smallest port one closer *)
      for u = 0 to n - 1 do
        if u <> w && dist.(u) >= 0 then begin
          let deg = Graph.degree g u in
          let rec find k =
            if k > deg then assert false
            else begin
              let y = Graph.neighbor g u ~port:k in
              if dist.(y) = dist.(u) - 1 then k else find (k + 1)
            end
          in
          cluster_lists.(u) <- (w, find 1) :: cluster_lists.(u)
        end
      done
    end
  done;
  let cluster =
    Array.map
      (fun entries ->
        let a = Array.of_list entries in
        Array.sort compare a;
        a)
      cluster_lists
  in
  let trees = Array.map (Tree_labels.of_bfs g) chosen in
  { graph = g; landmark = chosen; landmark_index; home; to_landmark; cluster; trees }

let cluster_lookup d v dst =
  let a = d.cluster.(v) in
  let rec bin lo hi =
    if lo > hi then None
    else begin
      let mid = (lo + hi) / 2 in
      let w, p = a.(mid) in
      if w = dst then Some p else if w < dst then bin (mid + 1) hi else bin lo (mid - 1)
    end
  in
  bin 0 (Array.length a - 1)

let routing_function d =
  let g = d.graph in
  let init _u v =
    let li = d.home.(v) in
    Routing_function.Packed [| v; li; d.trees.(li).Tree_labels.dfs_number.(v) |]
  in
  let port x h =
    match h with
    | Routing_function.Dest _ -> invalid_arg "landmark: unexpected header"
    | Routing_function.Packed [| v; li; dfs |] ->
      if x = v then None
      else begin
        match cluster_lookup d x v with
        | Some p -> Some p
        | None ->
          (* descend if v sits in one of my child subtrees of tree li *)
          (match Tree_labels.child_port d.trees.(li) x ~dfs with
          | Some p -> Some p
          | None ->
            (* head toward the landmark of v *)
            Some d.to_landmark.(x).(li))
      end
    | Routing_function.Packed _ -> invalid_arg "landmark: malformed header"
  in
  {
    Routing_function.graph = g;
    init;
    port;
    next_header = (fun _ h -> h);
  }

let encode_vertex d v =
  let g = d.graph in
  let n = Graph.order g in
  let l = Array.length d.landmark in
  let deg = Graph.degree g v in
  let pwidth = Codes.ceil_log2 (max 2 deg) in
  let vwidth = Codes.ceil_log2 (max 2 n) in
  let buf = Bitbuf.create () in
  Codes.write_delta buf n;
  Codes.write_fixed buf v ~width:vwidth;
  Codes.write_gamma buf (l + 1);
  (* ports to each landmark (0 if self) *)
  Array.iter (fun p -> Codes.write_fixed buf p ~width:(pwidth + 1)) d.to_landmark.(v);
  (* cluster table *)
  Codes.write_gamma buf (Array.length d.cluster.(v) + 1);
  Array.iter
    (fun (w, p) ->
      Codes.write_fixed buf w ~width:vwidth;
      Codes.write_fixed buf (p - 1) ~width:pwidth)
    d.cluster.(v);
  (* child intervals in each landmark tree *)
  Array.iter
    (fun tree ->
      let row = tree.Tree_labels.children.(v) in
      Codes.write_gamma buf (Array.length row + 1);
      Array.iter
        (fun (p, lo, hi) ->
          Codes.write_fixed buf (p - 1) ~width:pwidth;
          Codes.write_fixed buf lo ~width:vwidth;
          Codes.write_fixed buf hi ~width:vwidth)
        row)
    d.trees;
  buf

type decoded = {
  dec_order : int;
  dec_self : Graph.vertex;
  dec_landmark_ports : int array;
  dec_cluster : (Graph.vertex * Graph.port) array;
  dec_children : (Graph.port * int * int) array array;
}

let decode_vertex buf ~degree =
  let r = Bitbuf.reader buf in
  let n = Codes.read_delta r in
  let vwidth = Codes.ceil_log2 (max 2 n) in
  let pwidth = Codes.ceil_log2 (max 2 degree) in
  let self = Codes.read_fixed r ~width:vwidth in
  let l = Codes.read_gamma r - 1 in
  let landmark_ports =
    Array.init l (fun _ -> Codes.read_fixed r ~width:(pwidth + 1))
  in
  let csize = Codes.read_gamma r - 1 in
  let cluster =
    Array.init csize (fun _ ->
        let w = Codes.read_fixed r ~width:vwidth in
        let p = 1 + Codes.read_fixed r ~width:pwidth in
        (w, p))
  in
  let children =
    Array.init l (fun _ ->
        let k = Codes.read_gamma r - 1 in
        Array.init k (fun _ ->
            let p = 1 + Codes.read_fixed r ~width:pwidth in
            let lo = Codes.read_fixed r ~width:vwidth in
            let hi = Codes.read_fixed r ~width:vwidth in
            (p, lo, hi)))
  in
  {
    dec_order = n;
    dec_self = self;
    dec_landmark_ports = landmark_ports;
    dec_cluster = cluster;
    dec_children = children;
  }

let build ?seed ?landmarks ?strategy g =
  let d = prepare ?seed ?landmarks ?strategy g in
  {
    Scheme.rf = routing_function d;
    local_encoding = encode_vertex d;
    description =
      Printf.sprintf "landmark routing, %d landmarks, stretch <= 3"
        (Array.length d.landmark);
  }

let scheme =
  {
    Scheme.name = "landmark-3";
    stretch_bound = Some 3.0;
    build = (fun g -> build g);
  }

let cluster_sizes ?seed ?landmarks ?strategy g =
  let d = prepare ?seed ?landmarks ?strategy g in
  Array.map Array.length d.cluster
