open Umrs_graph

type t = {
  parent : int array;        (* -1 at the root *)
  dfs_number : int array;
  children : (int * int * int) array array;
      (* children.(x) = (port at x, interval lo, interval hi) per child *)
}

let of_bfs g root =
  let n = Graph.order g in
  let _, parent = Bfs.distances_with_parents g root in
  let kids = Array.make n [] in
  for v = n - 1 downto 0 do
    if v <> root && parent.(v) >= 0 then kids.(parent.(v)) <- v :: kids.(parent.(v))
  done;
  (* order children by the port leading to them, for determinism *)
  let port_of u w =
    match Graph.port_to g ~src:u ~dst:w with Some k -> k | None -> assert false
  in
  let kids =
    Array.mapi
      (fun u l -> List.sort (fun a b -> compare (port_of u a) (port_of u b)) l)
      kids
  in
  let dfs_number = Array.make n (-1) in
  let subtree_hi = Array.make n (-1) in
  let counter = ref 0 in
  let rec visit x =
    dfs_number.(x) <- !counter;
    incr counter;
    List.iter visit kids.(x);
    subtree_hi.(x) <- !counter - 1
  in
  visit root;
  let children =
    Array.mapi
      (fun u l ->
        Array.of_list
          (List.map (fun c -> (port_of u c, dfs_number.(c), subtree_hi.(c))) l))
      kids
  in
  { parent; dfs_number; children }

let parent_ports g t =
  Array.init (Graph.order g) (fun v ->
      if t.parent.(v) < 0 then 0
      else
        match Graph.port_to g ~src:v ~dst:t.parent.(v) with
        | Some k -> k
        | None -> assert false)

let child_port t x ~dfs =
  let row = t.children.(x) in
  let rec scan i =
    if i >= Array.length row then None
    else begin
      let p, lo, hi = row.(i) in
      if lo <= dfs && dfs <= hi then Some p else scan (i + 1)
    end
  in
  scan 0
