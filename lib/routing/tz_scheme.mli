(** The Thorup–Zwick universal compact routing scheme for stretch 3
    ("Compact routing schemes", SPAA 2001, with k = 2 levels) — the
    concrete nearly-memory-optimal point on the paper's stretch-3 row,
    and the scheme whose *average* stretch collapses to ~1.1 on
    Internet-like power-law graphs (Krioukov, Fall & Yang).

    Construction, seeded for deterministic replay:
    - sample a landmark set [A] with Bernoulli rate [~ n^(-1/2)]
      (expected [sqrt n] landmarks);
    - [p(v)] is the landmark nearest to [v], smallest id on ties, and
      [d(v,A) = d(v, p(v))];
    - the {e bunch} [B(v) = { w : d(v,w) < d(v,A) }];
    - the {e cluster} table at [x] stores a shortest-path port for every
      destination [v] with [d(x,v) < d(v,A)]; by definition
      [w ∈ B(v) ⇔ v ∈ C(w)] (the tables and bunches are transposes);
    - every vertex also stores, per landmark BFS tree, its parent port
      and one DFS interval per child arc.

    Routing [u -> v] (handshake-free, headers
    [(v, index of p(v), DFS number of v in p(v)'s tree)]): deliver if
    local; take the cluster port if [v] is in the table (it then stays
    in every table en route — [d(x,v)] is strictly decreasing); else
    descend into the child interval containing [v] in [p(v)]'s tree, or
    go up toward [p(v)].

    Stretch [<= 3]: a cluster hit at the source is a shortest path;
    otherwise [d(u,v) >= d(v,A)] and the tree route costs at most
    [d(u, p(v)) + d(p(v), v) <= d(u,v) + 2 d(v,A) <= 3 d(u,v)]
    (switching into a cluster mid-route only shortens the tail). *)

open Umrs_graph

val default_rate : int -> float
(** [1 / sqrt n] — expected [sqrt n] landmarks, balancing the
    [~sqrt n] expected cluster size against the per-tree state. *)

type data
(** The prepared per-graph state (landmarks, bunches/clusters, trees). *)

val prepare : ?seed:int -> ?rate:float -> Graph.t -> data
(** Sample and precompute on a non-empty connected graph. [seed]
    defaults to a fixed constant (builds are reproducible); [rate]
    defaults to {!default_rate} and must lie in [(0, 1]]. An empty
    sample falls back to the single landmark [{0}]. *)

val landmarks : data -> int array
(** The sampled set [A], sorted ascending. *)

val home : data -> Graph.vertex -> int
(** Index into {!landmarks} of [p(v)]. *)

val dist_to_landmarks : data -> Graph.vertex -> int
(** [d(v, A)]; [0] iff [v] is a landmark. *)

val bunch : data -> Graph.vertex -> int array
(** [B(v) = { w : d(v,w) < d(v,A) }], sorted — recomputed directly from
    distances, so tests can check the [w ∈ B(v) ⇔ v ∈ C(w)] transpose
    property against {!cluster_members}. *)

val cluster_members : data -> Graph.vertex -> int array
(** Destinations in [x]'s stored cluster table
    [{ v : d(x,v) < d(v,A) }], sorted. *)

val routing_function : data -> Routing_function.t

val build : ?seed:int -> ?rate:float -> Graph.t -> Scheme.built

val scheme : Scheme.t
(** ["tz-3"] with default parameters; stretch bound 3. *)

val cluster_sizes : ?seed:int -> ?rate:float -> Graph.t -> int array
(** Per-vertex cluster-table sizes (the memory-dominant term). *)

(** {1 Decoding} *)

type decoded = {
  dec_order : int;
  dec_self : Graph.vertex;
  dec_up_ports : int array;
      (** per landmark tree: port toward the parent, 0 at the root *)
  dec_cluster : (Graph.vertex * Graph.port) array;
  dec_children : (Graph.port * int * int) array array;
      (** per landmark tree: (port, dfs lo, dfs hi) per child *)
}

val decode_vertex : Umrs_bitcode.Bitbuf.t -> degree:int -> decoded
(** Inverse of the per-router encoding (round-trip tested): everything
    a TZ router stores is recoverable from its bits plus its degree. *)
