open Umrs_graph

type packet_result = {
  src : Graph.vertex;
  dst : Graph.vertex;
  hops : int;
  delivered_at : int;
}

type stats = {
  packets : int;
  delivered : int;
  rounds : int;
  total_hops : int;
  max_queue : int;
  max_arc_load : int;
  results : packet_result array;
}

type packet = {
  id : int;
  p_src : Graph.vertex;
  p_dst : Graph.vertex;
  mutable at : Graph.vertex;
  mutable header : Routing_function.header;
  mutable p_hops : int;
  mutable done_at : int; (* -1 in flight, -2 dropped, >= 0 delivered *)
}

type crossing = Cross | Retry | Drop

(* Core engine. [on_cross u k] decides the fate of the packet that won
   arc (u, port k) this round. *)
let run_hooked ?round_limit ~on_cross rf ~pairs =
  let g = rf.Routing_function.graph in
  let n = Graph.order g in
  let npackets = List.length pairs in
  let limit =
    match round_limit with
    | Some l -> l
    | None -> (16 * n) + (16 * npackets)
  in
  let packets =
    List.mapi
      (fun id (src, dst) ->
        if src = dst then invalid_arg "Simulator: src = dst";
        {
          id;
          p_src = src;
          p_dst = dst;
          at = src;
          header = rf.Routing_function.init src dst;
          p_hops = 0;
          done_at = -1;
        })
      pairs
    |> Array.of_list
  in
  let arc_key v port = (v * (Graph.max_degree g + 1)) + port in
  let loads = Hashtbl.create 64 in
  let bump key =
    let cur = Option.value ~default:0 (Hashtbl.find_opt loads key) in
    Hashtbl.replace loads key (cur + 1);
    cur + 1
  in
  let max_queue = ref 0 in
  let max_arc_load = ref 0 in
  let in_flight = ref npackets in
  let round = ref 0 in
  let last_delivery = ref 0 in
  let try_deliver p =
    if p.done_at = -1 then begin
      match rf.Routing_function.port p.at p.header with
      | None ->
        if p.at <> p.p_dst then
          invalid_arg "Simulator: delivered at a wrong vertex";
        p.done_at <- !round;
        last_delivery := max !last_delivery !round;
        decr in_flight
      | Some _ -> ()
    end
  in
  Array.iter try_deliver packets;
  while !in_flight > 0 && !round < limit do
    incr round;
    let requests = Hashtbl.create 64 in
    Array.iter
      (fun p ->
        if p.done_at = -1 then begin
          match rf.Routing_function.port p.at p.header with
          | None -> assert false
          | Some k ->
            let key = arc_key p.at k in
            let queue =
              Option.value ~default:[] (Hashtbl.find_opt requests key)
            in
            Hashtbl.replace requests key (p :: queue)
        end)
      packets;
    Hashtbl.iter
      (fun key queue ->
        let queue = List.sort (fun a b -> compare a.id b.id) queue in
        max_queue := max !max_queue (List.length queue);
        match queue with
        | [] -> ()
        | winner :: _ -> (
          match rf.Routing_function.port winner.at winner.header with
          | None -> assert false
          | Some k -> (
            match on_cross winner.at k with
            | Retry -> ()
            | Drop ->
              winner.done_at <- -2;
              decr in_flight
            | Cross ->
              let load = bump key in
              max_arc_load := max !max_arc_load load;
              let next = Graph.neighbor g winner.at ~port:k in
              winner.header <-
                rf.Routing_function.next_header winner.at winner.header;
              winner.at <- next;
              winner.p_hops <- winner.p_hops + 1)))
      requests;
    Array.iter try_deliver packets
  done;
  let results =
    Array.map
      (fun p ->
        {
          src = p.p_src;
          dst = p.p_dst;
          hops = p.p_hops;
          delivered_at = (if p.done_at >= 0 then p.done_at else -1);
        })
      packets
  in
  {
    packets = npackets;
    delivered =
      Array.fold_left
        (fun acc p -> if p.done_at >= 0 then acc + 1 else acc)
        0 packets;
    rounds = !last_delivery;
    total_hops = Array.fold_left (fun acc p -> acc + p.p_hops) 0 packets;
    max_queue = !max_queue;
    max_arc_load = !max_arc_load;
    results;
  }

let run ?round_limit rf ~pairs =
  let stats = run_hooked ?round_limit ~on_cross:(fun _ _ -> Cross) rf ~pairs in
  if Telemetry.enabled () then
    Telemetry.emit "simulator.run"
      [ ("order", Telemetry.Int (Graph.order rf.Routing_function.graph));
        ("packets", Telemetry.Int stats.packets);
        ("delivered", Telemetry.Int stats.delivered);
        ("rounds", Telemetry.Int stats.rounds);
        ("total_hops", Telemetry.Int stats.total_hops);
        ("max_queue", Telemetry.Int stats.max_queue);
        ("max_arc_load", Telemetry.Int stats.max_arc_load) ];
  stats

let run_flaky ?round_limit st ~loss rf ~pairs =
  if loss < 0.0 || loss > 1.0 then
    invalid_arg "Simulator.run_flaky: need 0 <= loss <= 1";
  let on_cross _ _ = if Random.State.float st 1.0 < loss then Retry else Cross in
  run_hooked ?round_limit ~on_cross rf ~pairs

let run_with_dead_links ?round_limit ~dead rf ~pairs =
  let g = rf.Routing_function.graph in
  let dead_set = Hashtbl.create (List.length dead) in
  List.iter
    (fun (u, v) ->
      Hashtbl.replace dead_set (u, v) ();
      Hashtbl.replace dead_set (v, u) ())
    dead;
  let on_cross u k =
    let v = Graph.neighbor g u ~port:k in
    if Hashtbl.mem dead_set (u, v) then Drop else Cross
  in
  run_hooked ?round_limit ~on_cross rf ~pairs

let run_hot_potato ?round_limit st rf ~pairs =
  let g = rf.Routing_function.graph in
  let n = Graph.order g in
  let npackets = List.length pairs in
  let limit =
    match round_limit with
    | Some l -> l
    | None -> (16 * n) + (16 * npackets)
  in
  let packets =
    List.mapi
      (fun id (src, dst) ->
        if src = dst then invalid_arg "Simulator: src = dst";
        {
          id;
          p_src = src;
          p_dst = dst;
          at = src;
          header = rf.Routing_function.init src dst;
          p_hops = 0;
          done_at = -1;
        })
      pairs
    |> Array.of_list
  in
  let arc_key v port = (v * (Graph.max_degree g + 1)) + port in
  let loads = Hashtbl.create 64 in
  let max_queue = ref 0 in
  let max_arc_load = ref 0 in
  let in_flight = ref npackets in
  let round = ref 0 in
  let last_delivery = ref 0 in
  let try_deliver p =
    if p.done_at = -1 then begin
      match rf.Routing_function.port p.at p.header with
      | None ->
        if p.at <> p.p_dst then
          invalid_arg "Simulator: delivered at a wrong vertex";
        p.done_at <- !round;
        last_delivery := max !last_delivery !round;
        decr in_flight
      | Some _ -> ()
    end
  in
  Array.iter try_deliver packets;
  let cross used p k =
    Hashtbl.replace used (arc_key p.at k) ();
    let load =
      1 + Option.value ~default:0 (Hashtbl.find_opt loads (arc_key p.at k))
    in
    Hashtbl.replace loads (arc_key p.at k) load;
    max_arc_load := max !max_arc_load load;
    let next = Graph.neighbor g p.at ~port:k in
    p.header <- rf.Routing_function.next_header p.at p.header;
    p.at <- next;
    p.p_hops <- p.p_hops + 1
  in
  while !in_flight > 0 && !round < limit do
    incr round;
    let used = Hashtbl.create 64 in
    let requests = Hashtbl.create 64 in
    Array.iter
      (fun p ->
        if p.done_at = -1 then begin
          match rf.Routing_function.port p.at p.header with
          | None -> assert false
          | Some k ->
            let key = arc_key p.at k in
            let queue =
              Option.value ~default:[] (Hashtbl.find_opt requests key)
            in
            Hashtbl.replace requests key (p :: queue)
        end)
      packets;
    (* preferred-arc winners cross first *)
    let losers = ref [] in
    Hashtbl.iter
      (fun _ queue ->
        let queue = List.sort (fun a b -> compare a.id b.id) queue in
        max_queue := max !max_queue (List.length queue);
        match queue with
        | [] -> ()
        | winner :: rest ->
          (match rf.Routing_function.port winner.at winner.header with
          | Some k -> cross used winner k
          | None -> assert false);
          losers := rest @ !losers)
      requests;
    (* losers deflect onto a random free out-arc, by packet id *)
    let losers = List.sort (fun a b -> compare a.id b.id) !losers in
    List.iter
      (fun p ->
        let deg = Graph.degree g p.at in
        let free =
          List.filter
            (fun k -> not (Hashtbl.mem used (arc_key p.at k)))
            (List.init deg (fun k -> k + 1))
        in
        match free with
        | [] -> () (* fully blocked: wait a round *)
        | _ ->
          let k = List.nth free (Random.State.int st (List.length free)) in
          cross used p k)
      losers;
    Array.iter try_deliver packets
  done;
  let results =
    Array.map
      (fun p ->
        {
          src = p.p_src;
          dst = p.p_dst;
          hops = p.p_hops;
          delivered_at = (if p.done_at >= 0 then p.done_at else -1);
        })
      packets
  in
  {
    packets = npackets;
    delivered =
      Array.fold_left
        (fun acc p -> if p.done_at >= 0 then acc + 1 else acc)
        0 packets;
    rounds = !last_delivery;
    total_hops = Array.fold_left (fun acc p -> acc + p.p_hops) 0 packets;
    max_queue = !max_queue;
    max_arc_load = !max_arc_load;
    results;
  }

let all_pairs ?round_limit rf =
  let n = Graph.order rf.Routing_function.graph in
  let pairs = ref [] in
  for u = n - 1 downto 0 do
    for v = n - 1 downto 0 do
      if u <> v then pairs := (u, v) :: !pairs
    done
  done;
  run ?round_limit rf ~pairs:!pairs

let random_pairs ?round_limit st rf ~count =
  let n = Graph.order rf.Routing_function.graph in
  if n < 2 then invalid_arg "Simulator.random_pairs: need >= 2 vertices";
  let pairs =
    List.init count (fun _ ->
        let u = Random.State.int st n in
        let rec draw () =
          let v = Random.State.int st n in
          if v = u then draw () else v
        in
        (u, draw ()))
  in
  run ?round_limit rf ~pairs

let permutation_traffic ?round_limit st rf =
  let n = Graph.order rf.Routing_function.graph in
  let p = Perm.random st n in
  let pairs =
    List.filter_map
      (fun u -> if p.(u) = u then None else Some (u, p.(u)))
      (List.init n Fun.id)
  in
  run ?round_limit rf ~pairs

let mean_delay s =
  let sum = ref 0 and k = ref 0 in
  Array.iter
    (fun r ->
      if r.delivered_at >= 0 then begin
        sum := !sum + r.delivered_at;
        incr k
      end)
    s.results;
  if !k = 0 then 0.0 else float_of_int !sum /. float_of_int !k

let delays s =
  Array.of_list
    (List.filter_map
       (fun r ->
         if r.delivered_at >= 0 then Some (float_of_int r.delivered_at)
         else None)
       (Array.to_list s.results))

let delay_summary s =
  let d = delays s in
  if Array.length d = 0 then "(no deliveries)" else Stats.summary d

let pp_stats fmt s =
  Format.fprintf fmt
    "packets=%d delivered=%d rounds=%d hops=%d mean_delay=%.2f max_queue=%d max_arc_load=%d"
    s.packets s.delivered s.rounds s.total_hops (mean_delay s) s.max_queue
    s.max_arc_load
