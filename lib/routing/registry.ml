let universal () =
  [
    Table_scheme.scheme;
    Compressed_tables.scheme;
    Interval_routing.scheme;
    Interval_routing.scheme_identity;
    Landmark_scheme.scheme;
    Tz_scheme.scheme;
    Spanner_scheme.scheme ~k:2;
    Spanner_scheme.scheme ~k:3;
    Hierarchical_scheme.scheme;
    Tree_cover_scheme.scheme;
  ]

let find name =
  List.find_opt (fun s -> s.Scheme.name = name) (universal ())

let names () = List.map (fun s -> s.Scheme.name) (universal ())

let compare_on ?dist ~graph_name g schemes =
  let dist =
    match dist with Some d -> d | None -> Umrs_graph.Bfs.all_pairs g
  in
  List.map (fun s -> Scheme.evaluate ~dist s ~graph_name g) schemes

let csv_header =
  "scheme,graph,n,m,mem_local_bits,mem_global_bits,max_stretch,mean_stretch,p50_stretch,p95_stretch"

let to_csv_row e =
  Printf.sprintf "%s,%s,%d,%d,%d,%d,%.6f,%.6f,%.6f,%.6f" e.Scheme.scheme_name
    e.Scheme.graph_name e.Scheme.order e.Scheme.edges e.Scheme.mem_local_bits
    e.Scheme.mem_global_bits
    e.Scheme.stretch.Routing_function.max_ratio
    e.Scheme.stretch.Routing_function.mean_ratio
    e.Scheme.stretch.Routing_function.p50_ratio
    e.Scheme.stretch.Routing_function.p95_ratio

let to_csv evals =
  String.concat "\n" (csv_header :: List.map to_csv_row evals) ^ "\n"
