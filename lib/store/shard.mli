(** Cutting a corpus into contiguous key-range shards.

    The cluster layer serves one corpus from many nodes by giving each
    node a contiguous slice of the global record-rank order. This
    module produces those slices: a single streaming pass over the
    source corpus writes one well-formed corpus file per shard (each
    with its own header, count and checksum — {!Corpus.verify} passes
    on every piece), optionally with a fresh [.umrsx] sidecar so each
    node can answer indexed queries over its slice.

    Because records are stored in strictly increasing
    {!Umrs_core.Matrix.compare_lex} order, rank ranges {e are} key
    ranges: piece [k]'s first record key is the boundary key the shard
    map routes by. *)

open Umrs_core

type piece = {
  pc_index : int;          (** shard number, [0 .. shards-1] *)
  pc_lo : int;             (** first global rank, inclusive *)
  pc_hi : int;             (** one past the last global rank *)
  pc_key : int array;      (** row-major entries of record [pc_lo] *)
  pc_corpus : string;      (** path of the piece's corpus file *)
  pc_header : Corpus.header;  (** header of the written piece *)
}

val matrix_key : Matrix.t -> int array
(** Row-major entries — the ordering key of the store. *)

val bounds : count:int -> shards:int -> int -> int * int
(** [bounds ~count ~shards k] is shard [k]'s half-open global rank
    range [(k*count/shards, (k+1)*count/shards)]: near-equal,
    contiguous, non-empty whenever [count >= shards]. *)

val piece_path : out_dir:string -> base:string -> int -> string
(** [out_dir/base.shardK] — where {!split} writes piece [K]. *)

val split :
  corpus:string -> shards:int -> ?out_dir:string -> ?stride:int ->
  ?index:bool -> unit -> (piece array, string) result
(** Cut [corpus] into [shards] near-equal contiguous pieces under
    [out_dir] (default: the corpus's own directory, created if
    missing), building a sidecar index per piece ([index], default
    [true], with [stride], default {!Query.default_stride}). Streaming:
    memory stays one record regardless of corpus size.

    Returns the pieces in shard order. A corpus with fewer records
    than shards, an unreadable or malformed source, or an index-build
    failure comes back as [Error]; [shards < 1] or [stride < 1] raise
    [Invalid_argument] (caller errors). Writes go through the
    {!Umrs_fault.Io} seam like every other store path. *)
