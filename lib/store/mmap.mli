(** Read-only file mappings ([Unix.map_file] + [Bigarray]).

    Backs the zero-copy corpus read path: record ranges are copied
    straight out of the page-cache-backed mapping with one bounds
    check and one [memcpy], bypassing channel buffers and per-read
    syscalls.  A mapping is immutable, GC-managed, and safe to share
    across threads and domains for reading. *)

type t

val map : string -> t
(** Map a whole file read-only.  Raises [Unix.Unix_error] on open/map
    failure.  The descriptor is closed before returning; the mapping
    survives it. *)

val length : t -> int
(** File size at [map] time, in bytes. *)

val path : t -> string

val blit_to_bytes : t -> src_off:int -> Bytes.t -> dst_off:int -> len:int -> unit
(** Bounds-checked copy out of the mapping.
    Raises [Invalid_argument] if either range is out of bounds. *)

val sub : t -> off:int -> len:int -> Bytes.t
(** Fresh bytes holding [len] bytes at [off]. *)

val get : t -> int -> char
