(** Versioned binary on-disk format for canonical matrix sets.

    A corpus file holds the result of {!Umrs_core.Enumerate.canonical_set}
    for one [(p, q, d, variant)] instance so downstream workloads
    (reconstruction, Theorem-1 experiments, benchmarks) can load the set
    instead of re-enumerating it.

    Layout (all integers little-endian):

    {v offset  size  field
       0       8     magic "UMRSCORP"
       8       2     schema version (currently 1)
       10      1     variant (0 = Full, 1 = Positional)
       11      1     reserved (0)
       12      2     p
       14      2     q
       16      2     d
       18      2     reserved (0)
       20      8     count (number of records)
       28      8     FNV-1a 64 checksum of the record bytes
       36      4     reserved (0)
       40      -     records v}

    Each record is one matrix, bit-packed by {!Umrs_bitcode.Bitbuf}:
    [p*q] fields of [ceil(log2 d)] bits each (entry value minus one,
    row-major, MSB-first within a field), padded to a whole number of
    bytes. The file carries no timestamps or machine-dependent data, so
    two runs that produce the same set produce byte-identical files —
    the property the checkpoint/resume tests pin down.

    Write paths stream records one at a time (the header is patched on
    close), and read paths decode one record at a time, so neither side
    needs the whole set in memory beyond what the caller retains. *)

open Umrs_core

type header = {
  version : int;
  variant : Canonical.variant;
  p : int;
  q : int;
  d : int;
  count : int;
  checksum : int64;
}

val header_bytes : int
(** Size of the fixed header (40). *)

(** {1 Record codec} (shared with {!Checkpoint}) *)

module Record : sig
  val bits : p:int -> q:int -> d:int -> int
  val bytes : p:int -> q:int -> d:int -> int

  val encode : p:int -> q:int -> d:int -> Matrix.t -> Bytes.t
  (** Raises [Invalid_argument] on a dimension mismatch or an entry
      outside [{1..d}]. *)

  val decode :
    p:int -> q:int -> d:int -> variant:Canonical.variant -> Bytes.t -> Matrix.t
  (** Raises [Invalid_argument] on a short buffer or a decoded entry
      outside [{1..d}] ([Full] additionally revalidates the prefix-
      alphabet row property via {!Matrix.create}). *)
end

val fnv64 : int64 -> Bytes.t -> int64
(** Fold FNV-1a 64 over a byte block, seeded by the accumulator (use
    [fnv64_seed] to start). *)

val fnv64_seed : int64

(** {1 Streaming writer} *)

type writer

val create_writer :
  path:string -> variant:Canonical.variant -> p:int -> q:int -> d:int -> writer
(** Opens [path] for writing and emits a placeholder header. *)

val write : writer -> Matrix.t -> unit
(** Appends one record. Records must arrive in strictly increasing
    {!Matrix.compare_lex} order (the canonical-set order); a violation
    raises [Invalid_argument]. *)

val close_writer : writer -> header
(** Patches count and checksum into the header and closes the file.
    Returns the final header. *)

(** {1 Streaming reader} *)

type reader

val open_reader : path:string -> reader
(** Validates magic, version, variant and dimensions; raises
    [Invalid_argument] (with a message naming the problem) on a file
    that is not a corpus, [Sys_error] if unreadable. *)

val reader_header : reader -> header

val read_next : reader -> Matrix.t option
(** Next record, or [None] after [count] records. Raises
    [Invalid_argument "Corpus: truncated record"] if the file ends
    mid-record. *)

val close_reader : reader -> unit

(** {1 Whole-file conveniences} *)

val write_list :
  path:string ->
  variant:Canonical.variant ->
  p:int -> q:int -> d:int -> Matrix.t list -> header
(** Stream a (sorted) list to disk; returns the final header. *)

val load : path:string -> header * Matrix.t list
(** Read the whole corpus, in stored (sorted) order. Verifies the
    checksum and count; raises [Invalid_argument] on any mismatch. *)

val iter : path:string -> (Matrix.t -> unit) -> header
(** Stream every record through [f]; verifies checksum and count. *)

val info : path:string -> header
(** Header only (no record decoding). *)

(** {1 Verification} *)

type verification = {
  v_header : header;
  v_records_read : int;  (** records successfully decoded *)
  v_computed_checksum : int64;
  v_problems : string list;  (** empty iff the corpus is intact *)
}

val verify : path:string -> verification
(** Full integrity check: record bytes present (no truncation, no
    trailing garbage), checksum matches, every record decodes with
    entries in range, and records are strictly sorted. Content problems
    are returned, not raised; only an unreadable or non-corpus file
    raises. *)
