(** Structured telemetry: counters, gauges, timers and a JSONL event
    sink, default off.

    Long enumeration and simulation runs are opaque while they execute;
    this module gives every layer a single cheap way to report progress
    and metrics without printing to the user's terminal. Events are
    appended to a JSONL file, one object per line:

    {v {"ts": <seconds since sink open>, "event": "<name>",
        "fields": {"<key>": <int|float|string|bool>, ...}} v}

    The schema is documented in DESIGN.md section 8 together with the
    event names each subsystem emits.

    {b Zero-overhead contract.} With no sink configured (the default)
    every emission site must allocate nothing: instrumented code guards
    each [emit] with {!enabled}, so the field list is only built when a
    sink is attached. Counters and gauges mutate preallocated records
    and are always free to update. This contract is asserted by a test
    that measures minor-heap words across a burst of disabled events.

    The sink is process-global and writes are serialized by a mutex, so
    domains spawned by {!Umrs_graph.Parallel} can emit concurrently. *)

type value = Int of int | Float of float | Str of string | Bool of bool

val enabled : unit -> bool
(** [true] iff a sink is attached. Guard every [emit] call site with
    this so the no-op path builds no field list. *)

val emit : string -> (string * value) list -> unit
(** Append one event line to the sink; no-op without a sink. *)

val now : unit -> float
(** Seconds since the sink was opened (or since the first call when no
    sink is attached) — the value written to the [ts] field. *)

val open_file : string -> unit
(** Attach a JSONL sink appending to the given path (truncates an
    existing file). Replaces any previously attached sink. *)

val flush : unit -> unit
(** Push buffered event lines to the OS without detaching the sink, so
    the JSONL file holds only whole records at a safe point (a server's
    drain path calls this before closing connections). No-op without a
    sink. *)

val close : unit -> unit
(** Emit a final [metrics] event summarizing every registered counter
    and gauge, detach and flush the sink. No-op without a sink. *)

val with_file : string -> (unit -> 'a) -> 'a
(** [with_file path f] opens the sink, runs [f], and closes the sink
    even on exceptions. *)

(** {1 Metrics}

    Counters and gauges are registered once (typically at module
    initialization), updated for free, and flushed as a single
    [metrics] event by {!close} or {!flush_metrics}. *)

type counter

val counter : string -> counter
(** Register (or look up) a counter by name. *)

val add : counter -> int -> unit
(** Increment; allocation-free, sink or not. *)

val counter_value : counter -> int

type gauge

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val flush_metrics : unit -> unit
(** Emit one [metrics] event carrying every registered counter and
    gauge; no-op without a sink. *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] runs [f]; with a sink attached it also emits [name]
    with a [seconds] field measuring [f]'s wall time. Without a sink it
    is exactly [f ()]. *)

val reset_for_tests : unit -> unit
(** Detach any sink and forget registered metrics. Test isolation
    only. *)
