open Umrs_graph
open Umrs_core

type outcome = {
  o_classes : int;
  o_total : int;
  o_shards : int;
  o_resumed_from : int;
  o_checkpoints : int;
  o_header : Corpus.header;
}

let c_ckpt_corrupt = Telemetry.counter "store.checkpoint_corrupt"

(* A checkpoint that does not load cleanly must never kill recovery —
   the whole point of resume is surviving ungraceful exits, and a
   half-written file (e.g. an fsync the disk lied about) is one of the
   states such an exit can leave. The lost range is rebuilt instead. *)
let corrupt_artifact ~what ~detail =
  Telemetry.add c_ckpt_corrupt 1;
  if Telemetry.enabled () then
    Telemetry.emit "corpus.checkpoint.corrupt"
      [ ("artifact", Telemetry.Str what); ("detail", Telemetry.Str detail) ]

let build ?(variant = Canonical.Full) ?cap ?domains ?checkpoint_dir
    ?(checkpoint_every = 1 lsl 14) ?(resume = false) ?on_checkpoint ~p ~q ~d
    ~out () =
  if checkpoint_every < 1 then invalid_arg "Builder.build: checkpoint_every";
  let total = Enumerate.checked_total ?cap ~p ~q ~d () in
  let loaded_manifest =
    match checkpoint_dir with
    | Some dir when resume && Checkpoint.manifest_exists ~dir -> (
      match Checkpoint.load_manifest ~dir with
      | m ->
        (* A parameter mismatch is a user error and stays fatal; only
           unreadable content degrades to a fresh build. *)
        Checkpoint.check_manifest m ~p ~q ~d ~variant ~total;
        Some m
      | exception Invalid_argument detail ->
        corrupt_artifact ~what:"manifest" ~detail;
        None)
    | _ -> None
  in
  let manifest, resuming =
    match loaded_manifest with
    | Some m -> (m, true)
    | None ->
      let dcount =
        match domains with
        | Some k -> max 1 k
        | None -> Parallel.default_domains ()
      in
      let m =
        { Checkpoint.m_p = p; m_q = q; m_d = d; m_variant = variant;
          m_total = total; m_checkpoint_every = checkpoint_every;
          m_ranges = Parallel.chunks ~domains:dcount total }
      in
      (match checkpoint_dir with
      | Some dir ->
        (* A fresh (non-resume) run must not pick up stale shards. *)
        Checkpoint.init_dir ~dir;
        Checkpoint.clear ~dir;
        Checkpoint.save_manifest ~dir m
      | None -> ());
      (m, false)
  in
  let ranges = manifest.Checkpoint.m_ranges in
  let nshards = Array.length ranges in
  let every = manifest.Checkpoint.m_checkpoint_every in
  if Telemetry.enabled () then
    Telemetry.emit "corpus.build.start"
      [ ("p", Telemetry.Int p); ("q", Telemetry.Int q); ("d", Telemetry.Int d);
        ("total", Telemetry.Int total); ("shards", Telemetry.Int nshards);
        ("resume", Telemetry.Bool resuming) ];
  let run_shard i =
    let lo, hi = ranges.(i) in
    let tbl = Mkey.Tbl.create 256 in
    let start =
      match checkpoint_dir with
      | Some dir when resuming -> (
        match Checkpoint.load_shard ~dir ~p ~q ~d ~variant ~shard:i with
        | Some s ->
          List.iter
            (fun m -> Mkey.Tbl.replace tbl (Mkey.of_matrix ~base:d m) m)
            s.Checkpoint.s_matrices;
          s.Checkpoint.s_done
        | None -> lo
        | exception Invalid_argument detail ->
          corrupt_artifact ~what:(Printf.sprintf "shard_%d" i) ~detail;
          lo)
      | _ -> lo
    in
    let written = ref 0 in
    let progress =
      match checkpoint_dir with
      | None -> None
      | Some dir ->
        Some
          (fun ~done_hi ->
            let matrices = Mkey.Tbl.fold (fun _ v acc -> v :: acc) tbl [] in
            Checkpoint.save_shard ~dir ~p ~q ~d ~variant
              { Checkpoint.s_shard = i; s_lo = lo; s_hi = hi; s_done = done_hi;
                s_matrices = matrices };
            incr written;
            if Telemetry.enabled () then
              Telemetry.emit "corpus.checkpoint"
                [ ("shard", Telemetry.Int i);
                  ("done_hi", Telemetry.Int done_hi);
                  ("hi", Telemetry.Int hi);
                  ("classes", Telemetry.Int (Mkey.Tbl.length tbl)) ];
            match on_checkpoint with
            | Some f -> f ~shard:i ~done_hi
            | None -> ())
    in
    if start < hi then
      Enumerate.canonical_into ?progress ~progress_every:every ~tbl ~variant
        ~p ~q ~d ~lo:start ~hi ();
    (tbl, start - lo, !written)
  in
  (* One domain per shard: ranges may come from a manifest whose shard
     count differs from today's domain budget, and resume correctness
     requires reproducing exactly those ranges. *)
  let results = Parallel.map_range ~domains:nshards nshards run_shard in
  let sorted = Enumerate.merged_sorted (Array.map (fun (t, _, _) -> t) results) in
  let header = Corpus.write_list ~path:out ~variant ~p ~q ~d sorted in
  (match checkpoint_dir with
  | Some dir -> Checkpoint.clear ~dir
  | None -> ());
  let outcome =
    { o_classes = List.length sorted; o_total = total; o_shards = nshards;
      o_resumed_from = Array.fold_left (fun a (_, s, _) -> a + s) 0 results;
      o_checkpoints = Array.fold_left (fun a (_, _, w) -> a + w) 0 results;
      o_header = header }
  in
  if Telemetry.enabled () then
    Telemetry.emit "corpus.build.done"
      [ ("classes", Telemetry.Int outcome.o_classes);
        ("total", Telemetry.Int total);
        ("resumed_from", Telemetry.Int outcome.o_resumed_from);
        ("checkpoints", Telemetry.Int outcome.o_checkpoints);
        ("path", Telemetry.Str out) ];
  outcome
