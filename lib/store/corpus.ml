open Umrs_core
module Io = Umrs_fault.Io

type header = {
  version : int;
  variant : Canonical.variant;
  p : int;
  q : int;
  d : int;
  count : int;
  checksum : int64;
}

let magic = "UMRSCORP"
let current_version = 1
let header_bytes = 40

let variant_byte = function Canonical.Full -> 0 | Canonical.Positional -> 1

let variant_of_byte = function
  | 0 -> Canonical.Full
  | 1 -> Canonical.Positional
  | b -> invalid_arg (Printf.sprintf "Corpus: unknown variant byte %d" b)

let fnv64_seed = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv64 h bytes =
  let h = ref h in
  for i = 0 to Bytes.length bytes - 1 do
    h :=
      Int64.mul
        (Int64.logxor !h (Int64.of_int (Char.code (Bytes.get bytes i))))
        fnv_prime
  done;
  !h

module Record = struct
  let bits ~p ~q ~d = p * q * Umrs_bitcode.Codes.bits_needed (d - 1)
  let bytes ~p ~q ~d = (bits ~p ~q ~d + 7) / 8

  let encode ~p ~q ~d (m : Matrix.t) =
    if m.Matrix.p <> p || m.Matrix.q <> q then
      invalid_arg "Corpus.Record.encode: dimension mismatch";
    let width = Umrs_bitcode.Codes.bits_needed (d - 1) in
    let buf = Umrs_bitcode.Bitbuf.create () in
    for i = 0 to p - 1 do
      for j = 0 to q - 1 do
        let x = m.Matrix.entries.(i).(j) in
        if x < 1 || x > d then
          invalid_arg
            (Printf.sprintf "Corpus.Record.encode: entry %d outside {1..%d}" x d);
        Umrs_bitcode.Bitbuf.add_bits buf (x - 1) ~width
      done
    done;
    Umrs_bitcode.Bitbuf.to_bytes buf

  let decode ~p ~q ~d ~variant bytes =
    let width = Umrs_bitcode.Codes.bits_needed (d - 1) in
    let nbits = p * q * width in
    if Bytes.length bytes * 8 < nbits then
      invalid_arg "Corpus.Record.decode: short record";
    let buf = Umrs_bitcode.Bitbuf.of_bytes bytes ~len:nbits in
    let r = Umrs_bitcode.Bitbuf.reader buf in
    let rows =
      Array.init p (fun _ ->
          Array.init q (fun _ ->
              let x = 1 + Umrs_bitcode.Bitbuf.read_bits r ~width in
              if x > d then
                invalid_arg
                  (Printf.sprintf
                     "Corpus.Record.decode: entry %d outside {1..%d}" x d);
              x))
    in
    match variant with
    | Canonical.Full -> Matrix.create rows
    | Canonical.Positional -> Matrix.create_relaxed rows
end

(* ---------- header codec ---------- *)

let header_image h =
  let b = Bytes.make header_bytes '\000' in
  Bytes.blit_string magic 0 b 0 8;
  Bytes.set_uint16_le b 8 h.version;
  Bytes.set_uint8 b 10 (variant_byte h.variant);
  Bytes.set_uint16_le b 12 h.p;
  Bytes.set_uint16_le b 14 h.q;
  Bytes.set_uint16_le b 16 h.d;
  Bytes.set_int64_le b 20 (Int64.of_int h.count);
  Bytes.set_int64_le b 28 h.checksum;
  b

let header_of_image b =
  if Bytes.length b < header_bytes then invalid_arg "Corpus: truncated header";
  if Bytes.sub_string b 0 8 <> magic then invalid_arg "Corpus: bad magic";
  let version = Bytes.get_uint16_le b 8 in
  if version <> current_version then
    invalid_arg (Printf.sprintf "Corpus: unsupported schema version %d" version);
  let variant = variant_of_byte (Bytes.get_uint8 b 10) in
  let p = Bytes.get_uint16_le b 12 in
  let q = Bytes.get_uint16_le b 14 in
  let d = Bytes.get_uint16_le b 16 in
  if p < 1 || q < 1 || d < 1 then invalid_arg "Corpus: bad dimensions";
  let count = Int64.to_int (Bytes.get_int64_le b 20) in
  if count < 0 then invalid_arg "Corpus: bad count";
  let checksum = Bytes.get_int64_le b 28 in
  { version; variant; p; q; d; count; checksum }

(* ---------- writer ---------- *)

(* A corpus is written to [path ^ ".tmp"] and renamed into place only
   after the patched header is fsynced, with a directory fsync pinning
   the name — so [path], whenever it exists, is a complete corpus even
   across power loss. A crashed build leaves at worst a stale temp
   file that the next build truncates. *)
type writer = {
  w_o : Io.out;
  w_tmp : string;
  w_path : string;
  w_variant : Canonical.variant;
  w_p : int;
  w_q : int;
  w_d : int;
  mutable w_count : int;
  mutable w_checksum : int64;
  mutable w_last : Matrix.t option;
  mutable w_closed : bool;
}

let create_writer ~path ~variant ~p ~q ~d =
  if p < 1 || q < 1 || d < 1 then invalid_arg "Corpus.create_writer: dimensions";
  if p > 0xFFFF || q > 0xFFFF || d > 0xFFFF then
    invalid_arg "Corpus.create_writer: dimension exceeds 65535";
  let tmp = path ^ ".tmp" in
  let o = Io.open_out tmp in
  match
    let w =
      { w_o = o; w_tmp = tmp; w_path = path; w_variant = variant; w_p = p;
        w_q = q; w_d = d; w_count = 0; w_checksum = fnv64_seed; w_last = None;
        w_closed = false }
    in
    (* Placeholder header; count and checksum are patched on close. *)
    Io.output_bytes o
      (header_image
         { version = current_version; variant; p; q; d; count = 0;
           checksum = fnv64_seed });
    w
  with
  | w -> w
  | exception e ->
    Io.close_noerr o;
    raise e

let write w m =
  if w.w_closed then invalid_arg "Corpus.write: writer is closed";
  (match w.w_last with
  | Some prev when Matrix.compare_lex prev m >= 0 ->
    invalid_arg "Corpus.write: records must be strictly compare_lex-increasing"
  | _ -> ());
  let rec_bytes = Record.encode ~p:w.w_p ~q:w.w_q ~d:w.w_d m in
  Io.output_bytes w.w_o rec_bytes;
  w.w_checksum <- fnv64 w.w_checksum rec_bytes;
  w.w_count <- w.w_count + 1;
  w.w_last <- Some m

let close_writer w =
  if w.w_closed then invalid_arg "Corpus.close_writer: writer is closed";
  w.w_closed <- true;
  let h =
    { version = current_version; variant = w.w_variant; p = w.w_p; q = w.w_q;
      d = w.w_d; count = w.w_count; checksum = w.w_checksum }
  in
  (match
     Io.seek w.w_o 0;
     Io.output_bytes w.w_o (header_image h);
     Io.fsync w.w_o
   with
  | () -> ()
  | exception (Umrs_fault.Fault.Crashed as e) ->
    (* simulated power loss: run no cleanup, like a dead process *)
    raise e
  | exception e ->
    (* the file is unusable either way, but the descriptor must go *)
    Io.close_noerr w.w_o;
    raise e);
  Io.close w.w_o;
  Io.rename ~src:w.w_tmp ~dst:w.w_path;
  Io.fsync_dir (Filename.dirname w.w_path);
  h

(* ---------- reader ---------- *)

type reader = {
  r_ic : in_channel;
  r_header : header;
  r_record_bytes : int;
  r_file_bytes : int;
  mutable r_read : int;
}

let open_reader ~path =
  let ic = open_in_bin path in
  (* everything after the open is protected: [Record.bytes] rejects
     absurd claimed dimensions and [in_channel_length] can fail on a
     vanished file, and neither may leak the descriptor *)
  match
    let b = Bytes.create header_bytes in
    (try really_input ic b 0 header_bytes
     with End_of_file -> invalid_arg "Corpus: truncated header");
    let h = header_of_image b in
    { r_ic = ic; r_header = h;
      r_record_bytes = Record.bytes ~p:h.p ~q:h.q ~d:h.d;
      r_file_bytes = in_channel_length ic; r_read = 0 }
  with
  | r -> r
  | exception e ->
    close_in_noerr ic;
    raise e

let reader_header r = r.r_header

(* A corrupt header can claim record sizes far beyond the actual file
   (p, q, d are only bounded by 16 bits), so every read checks the
   bytes are present BEFORE allocating a record buffer — the file-layer
   analogue of Bitbuf's up-front bounds check. *)
let read_next r =
  if r.r_read >= r.r_header.count then None
  else begin
    if r.r_file_bytes - pos_in r.r_ic < r.r_record_bytes then
      invalid_arg "Corpus: truncated record";
    let b = Bytes.create r.r_record_bytes in
    (try really_input r.r_ic b 0 r.r_record_bytes
     with End_of_file -> invalid_arg "Corpus: truncated record");
    r.r_read <- r.r_read + 1;
    Some
      (Record.decode ~p:r.r_header.p ~q:r.r_header.q ~d:r.r_header.d
         ~variant:r.r_header.variant b)
  end

let close_reader r = close_in r.r_ic

(* ---------- whole-file conveniences ---------- *)

let write_list ~path ~variant ~p ~q ~d ms =
  let w = create_writer ~path ~variant ~p ~q ~d in
  match List.iter (write w) ms with
  | () -> close_writer w
  | exception (Umrs_fault.Fault.Crashed as e) -> raise e
  | exception e ->
    Io.close_noerr w.w_o;
    raise e

let with_reader path f =
  let r = open_reader ~path in
  Fun.protect ~finally:(fun () -> close_reader r) (fun () -> f r)

let iter ~path f =
  with_reader path (fun r ->
      let h = r.r_header in
      let checksum = ref fnv64_seed in
      (* re-read bytes for the checksum by re-encoding each record: the
         codec is bijective on valid records, so the re-encoded bytes
         equal the stored ones. *)
      let rec go () =
        match read_next r with
        | None -> ()
        | Some m ->
          checksum :=
            fnv64 !checksum (Record.encode ~p:h.p ~q:h.q ~d:h.d m);
          f m;
          go ()
      in
      go ();
      if !checksum <> h.checksum then
        invalid_arg "Corpus: checksum mismatch";
      h)

let load ~path =
  let acc = ref [] in
  let h = iter ~path (fun m -> acc := m :: !acc) in
  (h, List.rev !acc)

let info ~path = with_reader path (fun r -> r.r_header)

(* ---------- verification ---------- *)

type verification = {
  v_header : header;
  v_records_read : int;
  v_computed_checksum : int64;
  v_problems : string list;
}

let verify ~path =
  with_reader path (fun r ->
      let h = r.r_header in
      let problems = ref [] in
      let problem fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
      let checksum = ref fnv64_seed in
      let read = ref 0 in
      let prev = ref None in
      let rec_bytes = r.r_record_bytes in
      (* Size the scan by what is actually on disk, not by the header's
         claims: a corrupt count or dimensions must not trigger a huge
         allocation or an End_of_file surprise. *)
      let avail = r.r_file_bytes - header_bytes in
      (* d = 1 packs to zero-byte records; only one matrix exists then,
         so anything beyond a single record is bogus, not truncation. *)
      if rec_bytes = 0 && h.count > 1 then
        problem "count %d impossible for zero-byte records" h.count;
      let present =
        if rec_bytes = 0 then min h.count 1 else min h.count (avail / rec_bytes)
      in
      if rec_bytes > 0 && present < h.count then
        problem "truncated: %d of %d records present" present h.count;
      if present > 0 then begin
        let buf = Bytes.create rec_bytes in
        while !read < present do
          really_input r.r_ic buf 0 rec_bytes;
          checksum := fnv64 !checksum buf;
          (match
             Record.decode ~p:h.p ~q:h.q ~d:h.d ~variant:h.variant buf
           with
          | m ->
            (match !prev with
            | Some pm when Matrix.compare_lex pm m >= 0 ->
              problem "record %d not in strictly increasing order" !read
            | _ -> ());
            prev := Some m
          | exception Invalid_argument msg ->
            problem "record %d undecodable: %s" !read msg);
          incr read
        done
      end;
      if avail > h.count * rec_bytes then
        problem "trailing bytes after the last record";
      if !read = h.count && !checksum <> h.checksum then
        problem "checksum mismatch (stored %Lx, computed %Lx)" h.checksum
          !checksum;
      { v_header = h; v_records_read = !read;
        v_computed_checksum = !checksum; v_problems = List.rev !problems })
