type value = Int of int | Float of float | Str of string | Bool of bool

type counter = { c_name : string; mutable c_value : int }
type gauge = { g_name : string; mutable g_value : float }

type sink = { oc : out_channel; opened_at : float }

let sink : sink option ref = ref None
let lock = Mutex.create ()
let counters : counter list ref = ref []
let gauges : gauge list ref = ref []
let epoch = ref nan

let enabled () = !sink <> None

let now () =
  let base =
    match !sink with
    | Some s -> s.opened_at
    | None ->
      if Float.is_nan !epoch then epoch := Unix.gettimeofday ();
      !epoch
  in
  Unix.gettimeofday () -. base

(* Minimal JSON string escaping: quotes, backslashes, control bytes.
   Event names and field keys are code-controlled identifiers; values
   may carry arbitrary strings (graph names, paths). *)
let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_value buf = function
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.9g" f)
    else Buffer.add_string buf "null"
  | Str s ->
    Buffer.add_char buf '"';
    escape buf s;
    Buffer.add_char buf '"'
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")

let emit name fields =
  match !sink with
  | None -> ()
  | Some s ->
    let buf = Buffer.create 128 in
    Buffer.add_string buf (Printf.sprintf "{\"ts\": %.6f, \"event\": \"" (now ()));
    escape buf name;
    Buffer.add_string buf "\", \"fields\": {";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ", ";
        Buffer.add_char buf '"';
        escape buf k;
        Buffer.add_string buf "\": ";
        add_value buf v)
      fields;
    Buffer.add_string buf "}}\n";
    Mutex.lock lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock lock)
      (fun () -> Buffer.output_buffer s.oc buf)

let counter name =
  match List.find_opt (fun c -> c.c_name = name) !counters with
  | Some c -> c
  | None ->
    let c = { c_name = name; c_value = 0 } in
    counters := c :: !counters;
    c

let add c n = c.c_value <- c.c_value + n
let counter_value c = c.c_value

let gauge name =
  match List.find_opt (fun g -> g.g_name = name) !gauges with
  | Some g -> g
  | None ->
    let g = { g_name = name; g_value = 0.0 } in
    gauges := g :: !gauges;
    g

let set_gauge g v = g.g_value <- v
let gauge_value g = g.g_value

let flush_metrics () =
  if enabled () then begin
    let fields =
      List.rev_map (fun c -> (c.c_name, Int c.c_value)) !counters
      @ List.rev_map (fun g -> (g.g_name, Float g.g_value)) !gauges
    in
    if fields <> [] then emit "metrics" fields
  end

let flush () =
  match !sink with
  | None -> ()
  | Some s ->
    Mutex.lock lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock lock)
      (fun () -> flush s.oc)

let close () =
  match !sink with
  | None -> ()
  | Some s ->
    flush_metrics ();
    sink := None;
    close_out s.oc

let open_file path =
  close ();
  let oc = open_out path in
  sink := Some { oc; opened_at = Unix.gettimeofday () }

let with_file path f =
  open_file path;
  Fun.protect ~finally:close f

let span name f =
  if enabled () then begin
    let t0 = Unix.gettimeofday () in
    let finished = ref false in
    Fun.protect
      ~finally:(fun () ->
        emit name
          [ ("seconds", Float (Unix.gettimeofday () -. t0));
            ("ok", Bool !finished) ])
      (fun () ->
        let x = f () in
        finished := true;
        x)
  end
  else f ()

let reset_for_tests () =
  close ();
  counters := [];
  gauges := []
