open Umrs_core
module Io = Umrs_fault.Io

type manifest = {
  m_p : int;
  m_q : int;
  m_d : int;
  m_variant : Canonical.variant;
  m_total : int;
  m_checkpoint_every : int;
  m_ranges : (int * int) array;
}

let manifest_name = "manifest"
let shard_name i = Printf.sprintf "shard_%d.ckpt" i

let rec init_dir ~dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir && not (Sys.file_exists parent) then init_dir ~dir:parent;
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end
  else if not (Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "Checkpoint: %s exists and is not a directory" dir)

(* Durable atomic write: dump to a temp file in the same directory,
   fsync it, rename over the target, then fsync the directory. Rename
   alone is atomic against concurrent readers but not against power
   loss — without the fsyncs the new name can point at a torn file, or
   vanish, after a crash. The file content is produced into a buffer
   and written in one piece so the fault seam sees a bounded number of
   write points per checkpoint. *)
let atomic_write ~path f =
  let tmp = path ^ ".tmp" in
  let buf = Buffer.create 512 in
  f buf;
  let o = Io.open_out tmp in
  (match
     Io.output_string o (Buffer.contents buf);
     Io.fsync o
   with
  | () -> Io.close o
  | exception (Umrs_fault.Fault.Crashed as e) ->
    (* simulated power loss: a dead process removes nothing *)
    raise e
  | exception e ->
    Io.close_noerr o;
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e);
  Io.rename ~src:tmp ~dst:path;
  Io.fsync_dir (Filename.dirname path)

let variant_name = function
  | Canonical.Full -> "full"
  | Canonical.Positional -> "positional"

let variant_of_name = function
  | "full" -> Canonical.Full
  | "positional" -> Canonical.Positional
  | s -> invalid_arg (Printf.sprintf "Checkpoint: unknown variant %S" s)

(* ---------- manifest (line-oriented text) ---------- *)

let manifest_exists ~dir = Sys.file_exists (Filename.concat dir manifest_name)

let save_manifest ~dir m =
  init_dir ~dir;
  atomic_write ~path:(Filename.concat dir manifest_name) (fun b ->
      Buffer.add_string b "umrs-corpus-checkpoint v1\n";
      Printf.bprintf b "p=%d q=%d d=%d variant=%s total=%d every=%d shards=%d\n"
        m.m_p m.m_q m.m_d (variant_name m.m_variant) m.m_total
        m.m_checkpoint_every (Array.length m.m_ranges);
      Array.iteri
        (fun i (lo, hi) -> Printf.bprintf b "shard %d %d %d\n" i lo hi)
        m.m_ranges)

let load_manifest ~dir =
  let path = Filename.concat dir manifest_name in
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let fail fmt =
        Printf.ksprintf
          (fun s -> invalid_arg (Printf.sprintf "Checkpoint manifest %s: %s" path s))
          fmt
      in
      let line () = try input_line ic with End_of_file -> fail "truncated" in
      if line () <> "umrs-corpus-checkpoint v1" then fail "bad magic line";
      let params = line () in
      let p, q, d, variant, total, every, shards =
        try
          Scanf.sscanf params "p=%d q=%d d=%d variant=%s@ total=%d every=%d shards=%d"
            (fun p q d v t e s -> (p, q, d, variant_of_name v, t, e, s))
        with Scanf.Scan_failure _ | Failure _ | End_of_file ->
          fail "bad parameter line %S" params
      in
      if shards < 1 then fail "bad shard count %d" shards;
      let ranges =
        Array.init shards (fun i ->
            let l = line () in
            try
              Scanf.sscanf l "shard %d %d %d" (fun j lo hi ->
                  if j <> i || lo < 0 || hi < lo then fail "bad shard line %S" l;
                  (lo, hi))
            with Scanf.Scan_failure _ | Failure _ | End_of_file ->
              fail "bad shard line %S" l)
      in
      { m_p = p; m_q = q; m_d = d; m_variant = variant; m_total = total;
        m_checkpoint_every = every; m_ranges = ranges })

let check_manifest m ~p ~q ~d ~variant ~total =
  let mismatch name want got =
    invalid_arg
      (Printf.sprintf
         "Checkpoint: --resume parameter mismatch: %s is %s in the checkpoint \
          but %s was requested"
         name want got)
  in
  if m.m_p <> p then mismatch "p" (string_of_int m.m_p) (string_of_int p);
  if m.m_q <> q then mismatch "q" (string_of_int m.m_q) (string_of_int q);
  if m.m_d <> d then mismatch "d" (string_of_int m.m_d) (string_of_int d);
  if m.m_variant <> variant then
    mismatch "variant" (variant_name m.m_variant) (variant_name variant);
  if m.m_total <> total then
    mismatch "total" (string_of_int m.m_total) (string_of_int total)

(* ---------- shard files ---------- *)

(* Layout: magic "UMRSCKPT" (8) | version u16 | variant u8 | pad u8 |
   p u16 | q u16 | d u16 | shard u16 | lo i64 | hi i64 | done i64 |
   count i64 | checksum i64 | records (Corpus.Record codec). *)

type shard_state = {
  s_shard : int;
  s_lo : int;
  s_hi : int;
  s_done : int;
  s_matrices : Matrix.t list;
}

let shard_magic = "UMRSCKPT"
let shard_header_bytes = 60
let shard_version = 1

let save_shard ~dir ~p ~q ~d ~variant s =
  atomic_write ~path:(Filename.concat dir (shard_name s.s_shard)) (fun out ->
      let records = List.map (Corpus.Record.encode ~p ~q ~d) s.s_matrices in
      let checksum = List.fold_left Corpus.fnv64 Corpus.fnv64_seed records in
      let b = Bytes.make shard_header_bytes '\000' in
      Bytes.blit_string shard_magic 0 b 0 8;
      Bytes.set_uint16_le b 8 shard_version;
      Bytes.set_uint8 b 10
        (match variant with Canonical.Full -> 0 | Canonical.Positional -> 1);
      Bytes.set_uint16_le b 12 p;
      Bytes.set_uint16_le b 14 q;
      Bytes.set_uint16_le b 16 d;
      Bytes.set_uint16_le b 18 s.s_shard;
      Bytes.set_int64_le b 20 (Int64.of_int s.s_lo);
      Bytes.set_int64_le b 28 (Int64.of_int s.s_hi);
      Bytes.set_int64_le b 36 (Int64.of_int s.s_done);
      Bytes.set_int64_le b 44 (Int64.of_int (List.length s.s_matrices));
      Bytes.set_int64_le b 52 checksum;
      Buffer.add_bytes out b;
      List.iter (Buffer.add_bytes out) records)

let load_shard ~dir ~p ~q ~d ~variant ~shard =
  let path = Filename.concat dir (shard_name shard) in
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let fail fmt =
          Printf.ksprintf
            (fun s ->
              invalid_arg (Printf.sprintf "Checkpoint shard %s: %s" path s))
            fmt
        in
        let b = Bytes.create shard_header_bytes in
        (try really_input ic b 0 shard_header_bytes
         with End_of_file -> fail "truncated header");
        if Bytes.sub_string b 0 8 <> shard_magic then fail "bad magic";
        if Bytes.get_uint16_le b 8 <> shard_version then
          fail "unsupported version %d" (Bytes.get_uint16_le b 8);
        let v =
          match Bytes.get_uint8 b 10 with
          | 0 -> Canonical.Full
          | 1 -> Canonical.Positional
          | x -> fail "unknown variant byte %d" x
        in
        if Bytes.get_uint16_le b 12 <> p || Bytes.get_uint16_le b 14 <> q
           || Bytes.get_uint16_le b 16 <> d || v <> variant then
          fail "parameter mismatch with the requested instance";
        if Bytes.get_uint16_le b 18 <> shard then
          fail "shard index mismatch (%d)" (Bytes.get_uint16_le b 18);
        let lo = Int64.to_int (Bytes.get_int64_le b 20) in
        let hi = Int64.to_int (Bytes.get_int64_le b 28) in
        let done_hi = Int64.to_int (Bytes.get_int64_le b 36) in
        let count = Int64.to_int (Bytes.get_int64_le b 44) in
        let stored_checksum = Bytes.get_int64_le b 52 in
        if lo < 0 || hi < lo || done_hi < lo || done_hi > hi || count < 0 then
          fail "inconsistent positions";
        let rec_bytes = Corpus.Record.bytes ~p ~q ~d in
        let checksum = ref Corpus.fnv64_seed in
        let matrices = ref [] in
        let buf = Bytes.create rec_bytes in
        for i = 0 to count - 1 do
          (try really_input ic buf 0 rec_bytes
           with End_of_file -> fail "truncated at record %d of %d" i count);
          checksum := Corpus.fnv64 !checksum buf;
          matrices := Corpus.Record.decode ~p ~q ~d ~variant buf :: !matrices
        done;
        if !checksum <> stored_checksum then fail "checksum mismatch";
        Some
          { s_shard = shard; s_lo = lo; s_hi = hi; s_done = done_hi;
            s_matrices = List.rev !matrices })
  end

let clear ~dir =
  if Sys.file_exists dir && Sys.is_directory dir then
    Array.iter
      (fun name ->
        if name = manifest_name
           || name = manifest_name ^ ".tmp"
           || (String.length name > 6 && String.sub name 0 6 = "shard_")
        then
          try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
      (Sys.readdir dir)
