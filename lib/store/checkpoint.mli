(** Checkpoint protocol for resumable corpus builds.

    A checkpoint directory holds one [manifest] plus one
    [shard_<i>.ckpt] file per enumeration shard. The manifest pins
    everything a resumed run must reproduce — instance parameters,
    total digit-space size, checkpoint interval, and the exact shard
    ranges — so a [--resume] run re-creates the interrupted run's
    sharding regardless of the domain count it is launched with.

    Shard files carry the shard's last completed position [done_hi]
    (the enumeration of [[lo, hi)] has been fully processed on
    [[lo, done_hi)]) and its partial dedup table, serialized with the
    {!Corpus.Record} codec. All manifest and shard writes go through a
    temp file that is fsynced, renamed over the target, and pinned by
    an fsync of the directory, so after a crash — power loss included
    — a checkpoint file is expected to be absent, the previous
    complete snapshot, or the new complete snapshot. The one window
    left open is an fsync the platform silently lied about; {!Builder}
    therefore treats a corrupt shard or manifest as absent rather than
    fatal and rebuilds the lost range. *)

open Umrs_core

type manifest = {
  m_p : int;
  m_q : int;
  m_d : int;
  m_variant : Canonical.variant;
  m_total : int;  (** [d^(pq)] — size of the sharded digit space *)
  m_checkpoint_every : int;
  m_ranges : (int * int) array;  (** half-open [\[lo, hi)] per shard *)
}

val init_dir : dir:string -> unit
(** Create the directory (and parents) if missing. *)

val manifest_exists : dir:string -> bool

val save_manifest : dir:string -> manifest -> unit
(** Atomic and durable (temp file + fsync + rename + directory
    fsync). *)

val load_manifest : dir:string -> manifest
(** Raises [Invalid_argument] on a malformed manifest, [Sys_error] if
    unreadable. *)

val check_manifest :
  manifest ->
  p:int -> q:int -> d:int -> variant:Canonical.variant -> total:int -> unit
(** Raises [Invalid_argument] naming the first mismatched parameter —
    the guard that [--resume] is resuming the same instance. *)

type shard_state = {
  s_shard : int;
  s_lo : int;
  s_hi : int;
  s_done : int;  (** enumeration complete on [\[s_lo, s_done)] *)
  s_matrices : Matrix.t list;  (** partial dedup table (unordered) *)
}

val save_shard :
  dir:string ->
  p:int -> q:int -> d:int -> variant:Canonical.variant -> shard_state -> unit
(** Atomic and durable (temp file + fsync + rename + directory
    fsync). *)

val load_shard :
  dir:string ->
  p:int -> q:int -> d:int -> variant:Canonical.variant ->
  shard:int -> shard_state option
(** [None] when no checkpoint exists for the shard. Raises
    [Invalid_argument] on a corrupt file or a parameter mismatch. *)

val clear : dir:string -> unit
(** Remove the manifest and every shard file (directory itself is
    kept). Called after a successful build. *)
