(* Read-only file mappings for the zero-copy corpus path.

   [Unix.map_file] hands back a [Bigarray], whose pages are shared
   with the page cache: a record-range read is one bounds check and
   one memcpy, with no seek/read syscalls and no channel buffer in
   between.  The mapping is reference-counted by the GC like any other
   bigarray, so cursors across worker domains can share one [t]. *)

type ba =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  m_ba : ba;
  m_len : int;
  m_path : string;
}

external blit_to_bytes_unsafe : ba -> int -> Bytes.t -> int -> int -> unit
  = "umrs_mmap_blit_to_bytes"

let map path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let len = (Unix.fstat fd).Unix.st_size in
      (* mapping zero bytes is an error on some platforms; a 1-byte
         dummy keeps [t] total while [m_len] stays honest *)
      let g =
        Unix.map_file fd Bigarray.char Bigarray.c_layout false
          [| (if len = 0 then 1 else len) |]
      in
      { m_ba = Bigarray.array1_of_genarray g; m_len = len; m_path = path })

let length t = t.m_len
let path t = t.m_path

let blit_to_bytes t ~src_off buf ~dst_off ~len =
  if len < 0 || src_off < 0 || src_off + len > t.m_len then
    invalid_arg "Mmap.blit_to_bytes: source range out of bounds";
  if dst_off < 0 || dst_off + len > Bytes.length buf then
    invalid_arg "Mmap.blit_to_bytes: destination range out of bounds";
  if len > 0 then blit_to_bytes_unsafe t.m_ba src_off buf dst_off len

let sub t ~off ~len =
  let b = Bytes.create len in
  blit_to_bytes t ~src_off:off b ~dst_off:0 ~len;
  b

let get t i =
  if i < 0 || i >= t.m_len then invalid_arg "Mmap.get: out of bounds";
  Bigarray.Array1.get t.m_ba i
