(** Indexed point and batched queries over corpus files.

    {!Corpus} gives whole-file [load]/[iter] only; this module answers
    point and batched questions about a corpus {e without} loading it:
    order queries ([nth]), membership and rank queries ([mem], [rank]),
    contiguous ranges by row-major entry prefix ([range_prefix]), and
    materialization of the Lemma-2 graph of constraints for a stored
    record ([cgraph]) — the access layer for serving precomputed
    [dM(p,q)] sets.

    {2 The sidecar index ([.umrsx])}

    Records are fixed-size and stored in strictly increasing
    {!Umrs_core.Matrix.compare_lex} order (the stable ordering contract
    documented there), so an index only needs a sparse {e rank
    structure}: every [stride]-th record's bit offset and key image,
    checksummed and bound to the corpus it describes. Layout (integers
    little-endian):

    {v offset  size  field
       0       8     magic "UMRSXIDX"
       8       2     schema version (currently 1)
       10      1     variant (0 = Full, 1 = Positional)
       11      1     reserved (0)
       12      2     p
       14      2     q
       16      2     d
       18      2     reserved (0)
       20      8     record count of the indexed corpus
       28      8     checksum of the indexed corpus (binding)
       36      4     stride (records between samples)
       40      4     sample count = ceil(count / stride)
       44      8     FNV-1a 64 over the header image (this field
                     zeroed) and the sample payload
       52      4     reserved (0)
       56      -     samples: per sample an 8-byte absolute bit offset
                     of the record in the corpus file, then the
                     record's key image (record-size bytes) v}

    Unlike the corpus header, the index checksum covers its own header
    bytes, so any mutation of the file is detected by {!open_}.

    A lookup binary-searches the in-memory samples ([O(log(n/k))]
    compares), then scans at most [stride] records read in one
    contiguous block and decoded through a single seekable
    {!Umrs_bitcode.Bitbuf.reader} — [O(log n + k)] with one bounded
    I/O burst per query, independent of corpus size. *)

open Umrs_core

(** {1 Errors}

    Opening and building never raise on damaged or mismatched files —
    corruption is data, not a programming error. [Io] wraps
    [Sys_error]; [Malformed] is a file that is not (or no longer) a
    valid corpus/index; [Mismatch] is a well-formed index that does not
    describe this corpus. *)

type error =
  | Io of string
  | Malformed of string
  | Mismatch of string

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

(** {1 Index files} *)

type meta = {
  x_version : int;
  x_variant : Canonical.variant;
  x_p : int;
  x_q : int;
  x_d : int;
  x_count : int;             (** records in the indexed corpus *)
  x_corpus_checksum : int64; (** binding to the corpus file *)
  x_stride : int;            (** records between samples *)
  x_samples : int;           (** ceil(count / stride) *)
  x_checksum : int64;        (** index self-checksum *)
}

val default_stride : int
(** 64 — block scans stay a few KiB for every enumerable instance. *)

val index_path : string -> string
(** Conventional sidecar path: the corpus path with [".umrsx"]
    appended. *)

val build :
  corpus:string -> ?stride:int -> ?out:string -> unit -> (meta, error) result
(** Scan [corpus] once (validating record decodability, strict sort
    order and the checksum as it goes) and write its index to [out]
    (default [index_path corpus]). Raises [Invalid_argument] only on a
    caller error ([stride < 1]); everything about the files is
    reported through [error]. *)

(** {1 Query handles} *)

type t

val open_ :
  corpus:string -> ?index:string -> ?mmap:bool -> unit -> (t, error) result
(** Validate the index (header, self-checksum, sample payload, binding
    to the corpus header, file sizes) and load its samples; the corpus
    records themselves are {e not} scanned — binding to the stored
    checksum plus the exact file-size check make later seeks safe.
    Never raises on file content: any damage or mismatch, including
    truncations and mutated bytes anywhere in the index, comes back as
    [Error].

    With [~mmap:true] (default false) the corpus and the index are
    read through {!Mmap} file mappings instead of buffered channels:
    record ranges come out of the page cache with one bounds check and
    one memcpy, every cursor (including the per-domain cursors minted
    by {!batch}) shares the single mapping, and [open_cursor] costs no
    descriptor.  Results are byte-identical to the channel path. *)

val close : t -> unit
(** Release the underlying channels. Further queries raise
    [Invalid_argument]. *)

val header : t -> Corpus.header
val meta : t -> meta

(** {1 Point queries}

    All raise [Invalid_argument] on caller errors (index out of range,
    shape mismatch, closed handle) and on a corpus that changed on
    disk after {!open_}. *)

val nth : t -> int -> Matrix.t
(** Record [i] of the sorted corpus, by direct seek. *)

val mem : t -> Matrix.t -> bool
(** Membership of a matrix (same [p x q] shape, entries in [{1..d}]). *)

val rank : t -> Matrix.t -> int
(** Number of records strictly [compare_lex]-below the argument; the
    position at which it would be inserted. [mem t m] iff
    [rank t m < count] and [nth t (rank t m) = m]. *)

val range_prefix : t -> int array -> int * int
(** [range_prefix t prefix] is the half-open record-index range
    [(lo, hi)] of all records whose row-major entries start with
    [prefix] (1-based values, length [<= p*q]; [[||]] gives the whole
    corpus). *)

val cgraph : t -> int -> Cgraph.t
(** The Lemma-2 graph of constraints of record [i]. Rows are
    first-occurrence relabelled before building ({!Canonical.normalize_row});
    for the [Positional] variant this picks one member of the row-
    relabelling class, which leaves the constraint structure intact. *)

(** {1 Batched queries} *)

type request =
  | Nth of int
  | Mem of Matrix.t
  | Rank of Matrix.t
  | Range_prefix of int array
  | Cgraph_of of int

type response =
  | R_matrix of Matrix.t
  | R_found of bool
  | R_rank of int
  | R_range of int * int
  | R_graph of Cgraph.t

val batch : ?domains:int -> t -> request array -> response array
(** Answer a batch, one response per request in request order.
    Requests are validated up front ([Invalid_argument] before any
    work), sorted by estimated corpus position so file access is
    monotone, and fanned out across [domains] (default
    {!Umrs_graph.Parallel.default_domains}) via
    {!Umrs_graph.Parallel.map_range_with}, each domain sharing one
    cursor (its own channel and decode buffers) across its whole
    slice. Answers are identical to the one-at-a-time functions for
    every domain count (tested). Emits a [query.batch] telemetry event
    with per-batch latency when a sink is attached. *)
