(** Checkpointed, resumable corpus builds.

    [build] shards the [d^(pq)] digit space exactly like
    {!Umrs_core.Enumerate.canonical_set} (same shard primitive, same
    merge, same sort), but optionally persists per-shard progress to a
    checkpoint directory at a configurable interval and streams the
    final sorted set to a {!Corpus} file. A run killed at any instant
    and re-invoked with [resume:true] continues from the last
    checkpoints and produces a corpus {e byte-identical} to an
    uninterrupted run — the corpus format carries no timestamps, the
    final set is a pure function of the instance, and the sort order
    is total. *)

open Umrs_core

type outcome = {
  o_classes : int;       (** [|dM(p,q)|] written to the corpus *)
  o_total : int;         (** [d^(pq)] raw matrices covered *)
  o_shards : int;        (** shard count actually used *)
  o_resumed_from : int;  (** raw indices skipped thanks to checkpoints *)
  o_checkpoints : int;   (** shard checkpoints written by this run *)
  o_header : Corpus.header;  (** header of the corpus written *)
}

val build :
  ?variant:Canonical.variant ->
  ?cap:int ->
  ?domains:int ->
  ?checkpoint_dir:string ->
  ?checkpoint_every:int ->
  ?resume:bool ->
  ?on_checkpoint:(shard:int -> done_hi:int -> unit) ->
  p:int -> q:int -> d:int -> out:string -> unit -> outcome
(** Enumerate [dM(p,q)] and write it to [out].

    - [checkpoint_dir]: enable checkpointing into this directory
      (created if missing). Without it the build is in-memory-only,
      exactly like [canonical_set].
    - [checkpoint_every]: raw indices between shard checkpoints
      (default [2^14]).
    - [resume]: if the directory holds a manifest, validate it against
      the requested instance ([Invalid_argument] on mismatch), reuse
      its shard ranges (ignoring [domains]) and restart every shard
      from its last checkpoint. With no manifest present the flag is a
      no-op and a fresh run starts.
    - [on_checkpoint]: test hook, called after each shard checkpoint
      reaches disk; raising from it simulates a crash between
      checkpoints (the files already renamed into place stay valid).

    On success the checkpoint files are removed (the directory is
    kept). Raises like {!Umrs_core.Enumerate.canonical_set} on an
    over-cap instance. *)
