/* One memcpy from a read-only file mapping into an OCaml bytes
   buffer.  The OCaml side bounds-checks both ranges before calling;
   this stub exists because the stdlib has no Bigarray->Bytes blit and
   a per-char loop would put a byte-at-a-time interpreter between the
   page cache and the record decoder. */

#include <caml/mlvalues.h>
#include <caml/bigarray.h>
#include <string.h>

CAMLprim value umrs_mmap_blit_to_bytes(value vba, value vsrc, value vbuf,
                                       value vdst, value vlen)
{
  memcpy(Bytes_val(vbuf) + Long_val(vdst),
         (const char *)Caml_ba_data_val(vba) + Long_val(vsrc),
         (size_t)Long_val(vlen));
  return Val_unit;
}
